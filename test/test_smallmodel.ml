(* Small-model systematic exploration (the executable stand-in for the
   paper's TLA+ model checking, §8).

   One object, three-to-four nodes, two concurrent ownership requesters
   plus a concurrent writer — swept systematically over the cross product
   of crash target × crash time × network perturbation.  After every
   scenario the cluster must quiesce into a state satisfying all paper
   invariants, and if any node still owns the object it must be writable. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Fabric = Zeus_net.Fabric

let tc = Helpers.tc

type perturbation = Clean | Lossy | Duplicating | Reordering

let fabric_of = function
  | Clean -> Fabric.default_config
  | Lossy -> { Fabric.default_config with Fabric.loss_prob = 0.10 }
  | Duplicating -> { Fabric.default_config with Fabric.dup_prob = 0.15 }
  | Reordering ->
    { Fabric.default_config with Fabric.delay_prob = 0.5; delay_extra_us = 25.0 }

let pp_scenario ~crash ~crash_at ~pert ~seed =
  Printf.sprintf "crash=%s at=%.0f pert=%s seed=%Ld"
    (match crash with Some n -> string_of_int n | None -> "-")
    crash_at
    (match pert with
    | Clean -> "clean"
    | Lossy -> "lossy"
    | Duplicating -> "dup"
    | Reordering -> "reorder")
    seed

let run_scenario ~nodes ~crash ~crash_at ~pert ~seed =
  let config =
    {
      Config.default with
      Config.nodes;
      record_history = true;
      seed;
      fabric = fabric_of pert;
    }
  in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  let engine = Cluster.engine c in
  (* two contending requesters *)
  ignore
    (Engine.schedule engine ~after:1.0 (fun () ->
         Node.acquire_ownership (Cluster.node c 1) 1 (fun _ -> ())));
  ignore
    (Engine.schedule engine ~after:1.5 (fun () ->
         Node.acquire_ownership (Cluster.node c 2) 1 (fun _ -> ())));
  (* a writer on the original owner *)
  ignore
    (Engine.schedule engine ~after:2.0 (fun () ->
         Node.run_write (Cluster.node c 0) ~thread:0
           ~body:(fun ctx commit ->
             Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
                 commit ()))
           (fun _ -> ())));
  (match crash with
  | Some victim -> ignore (Engine.schedule engine ~after:crash_at (fun () -> Cluster.kill c victim))
  | None -> ());
  Helpers.drain c ~max_us:2_000_000.0;
  (match Cluster.check_invariants c with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "[%s] %s" (pp_scenario ~crash ~crash_at ~pert ~seed) msg);
  (* liveness: some live node must be able to take over and write *)
  let taker =
    List.find_opt
      (fun i -> Fabric.is_alive (Cluster.fabric c) i)
      [ 1; 2; 0 ]
  in
  match taker with
  | None -> ()
  | Some i ->
    let ok = ref false in
    Node.run_write (Cluster.node c i) ~thread:1
      ~body:(fun ctx commit ->
        Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
            commit ()))
      (fun o -> ok := o = Zeus_store.Txn.Committed);
    Helpers.drain c ~max_us:2_000_000.0;
    if not !ok then
      Alcotest.failf "[%s] survivor cannot write"
        (pp_scenario ~crash ~crash_at ~pert ~seed)

let sweep ~nodes ~perts () =
  List.iter
    (fun pert ->
      List.iter
        (fun crash ->
          List.iter
            (fun crash_at ->
              List.iter
                (fun seed -> run_scenario ~nodes ~crash ~crash_at ~pert ~seed)
                [ 11L; 23L ])
            (match crash with None -> [ 0.0 ] | Some _ -> [ 3.0; 8.0; 15.0; 40.0 ]))
        [ None; Some 0; Some 1; Some 2 ])
    perts

let suite =
  [
    tc "3 nodes, clean network: all crash points" (sweep ~nodes:3 ~perts:[ Clean ]);
    tc "3 nodes, lossy network: all crash points" (sweep ~nodes:3 ~perts:[ Lossy ]);
    tc "3 nodes, duplicating network: all crash points"
      (sweep ~nodes:3 ~perts:[ Duplicating ]);
    tc "3 nodes, reordering network: all crash points"
      (sweep ~nodes:3 ~perts:[ Reordering ]);
    tc "4 nodes (non-replica requesters): all crash points"
      (sweep ~nodes:4 ~perts:[ Clean; Lossy ]);
  ]
