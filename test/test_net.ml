(* Tests for the message fabric and the reliable transport. *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport

let tc = Helpers.tc
let check = Alcotest.check

type Zeus_net.Msg.payload += Ping of int

let setup ?(nodes = 3) ?(config = Fabric.default_config) () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes config in
  (e, f)

let collect f node =
  let log = ref [] in
  Fabric.set_handler f node (fun ~src payload ->
      match payload with Ping n -> log := (src, n) :: !log | _ -> ());
  log

(* ---------- fabric ---------- *)

let fabric_delivers () =
  let e, f = setup () in
  let log = collect f 1 in
  Fabric.send f ~src:0 ~dst:1 (Ping 7);
  Engine.run e;
  check Alcotest.(list (pair int int)) "delivered" [ (0, 7) ] !log;
  check Alcotest.bool "latency > base" true (Engine.now e >= 4.0)

let fabric_size_latency () =
  (* a 1 MB payload at 40 Gbps should take ~200 µs of serialization *)
  let e, f = setup () in
  let _ = collect f 1 in
  Fabric.send f ~src:0 ~dst:1 ~size:1_000_000 (Ping 0);
  Engine.run e;
  if Engine.now e < 150.0 then Alcotest.failf "big message too fast: %f" (Engine.now e)

let fabric_loss () =
  let e, f = setup ~config:{ Fabric.default_config with Fabric.loss_prob = 1.0 } () in
  let log = collect f 1 in
  for _ = 1 to 20 do
    Fabric.send f ~src:0 ~dst:1 (Ping 1)
  done;
  Engine.run e;
  check Alcotest.(list (pair int int)) "all lost" [] !log;
  check Alcotest.int "counted" 20 (Fabric.messages_dropped f)

let fabric_duplication () =
  let e, f = setup ~config:{ Fabric.default_config with Fabric.dup_prob = 1.0 } () in
  let log = collect f 1 in
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Engine.run e;
  check Alcotest.int "two copies" 2 (List.length !log)

let fabric_partition () =
  let e, f = setup () in
  let log1 = collect f 1 and log2 = collect f 2 in
  Fabric.partition f 0 1;
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Fabric.send f ~src:0 ~dst:2 (Ping 2);
  Engine.run e;
  check Alcotest.int "partitioned" 0 (List.length !log1);
  check Alcotest.int "other path open" 1 (List.length !log2);
  Fabric.heal f 0 1;
  Fabric.send f ~src:0 ~dst:1 (Ping 3);
  Engine.run e;
  check Alcotest.int "healed" 1 (List.length !log1)

let fabric_crash () =
  let e, f = setup () in
  let log = collect f 1 in
  Fabric.crash f 1;
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Engine.run e;
  check Alcotest.int "dead node" 0 (List.length !log);
  Fabric.crash f 0;
  Fabric.recover f 1;
  Fabric.send f ~src:0 ~dst:1 (Ping 2);
  Engine.run e;
  check Alcotest.int "dead sender" 0 (List.length !log)

let fabric_in_flight_to_crashed () =
  (* a message in flight to a node that crashes before arrival is dropped *)
  let e, f = setup () in
  let log = collect f 1 in
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  ignore (Engine.schedule e ~after:0.5 (fun () -> Fabric.crash f 1));
  Engine.run e;
  check Alcotest.int "dropped mid-flight" 0 (List.length !log)

let fabric_self_send () =
  let e, f = setup () in
  let log = collect f 0 in
  Fabric.send f ~src:0 ~dst:0 (Ping 9);
  Engine.run e;
  check Alcotest.(list (pair int int)) "self" [ (0, 9) ] !log;
  check Alcotest.bool "fast" true (Engine.now e < 1.0)

let fabric_counters () =
  let e, f = setup () in
  let _ = collect f 1 in
  Fabric.send f ~src:0 ~dst:1 ~size:100 (Ping 1);
  Fabric.send f ~src:0 ~dst:1 ~size:200 (Ping 2);
  Engine.run e;
  check Alcotest.int "messages" 2 (Fabric.messages_sent f);
  check Alcotest.int "bytes" 300 (Fabric.bytes_sent f);
  Fabric.reset_counters f;
  check Alcotest.int "reset" 0 (Fabric.messages_sent f)

let fabric_oneway_partition () =
  let e, f = setup () in
  let log0 = collect f 0 and log1 = collect f 1 in
  Fabric.partition_oneway f ~src:0 ~dst:1;
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Fabric.send f ~src:1 ~dst:0 (Ping 2);
  Engine.run e;
  check Alcotest.int "src->dst dropped" 0 (List.length !log1);
  check Alcotest.(list (pair int int)) "reverse direction open" [ (1, 2) ] !log0;
  Fabric.heal_oneway f ~src:0 ~dst:1;
  Fabric.send f ~src:0 ~dst:1 (Ping 3);
  Engine.run e;
  check Alcotest.(list (pair int int)) "healed" [ (0, 3) ] !log1

let fabric_heal_all_clears_both_kinds () =
  let e, f = setup () in
  let log1 = collect f 1 and log2 = collect f 2 in
  Fabric.partition f 0 1;
  Fabric.partition_oneway f ~src:0 ~dst:2;
  Fabric.heal_all f;
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Fabric.send f ~src:0 ~dst:2 (Ping 2);
  Engine.run e;
  check Alcotest.int "symmetric healed" 1 (List.length !log1);
  check Alcotest.int "one-way healed" 1 (List.length !log2)

let fabric_perturb_spike () =
  let e, f = setup () in
  let log = collect f 1 in
  Fabric.set_perturb f (Some { Fabric.p_loss = 1.0; p_dup = 0.0; p_delay_us = 0.0 });
  for _ = 1 to 10 do
    Fabric.send f ~src:0 ~dst:1 (Ping 1)
  done;
  Engine.run e;
  check Alcotest.int "spike loses everything" 0 (List.length !log);
  Fabric.set_perturb f None;
  Fabric.send f ~src:0 ~dst:1 (Ping 2);
  Engine.run e;
  check Alcotest.(list (pair int int)) "spike over" [ (0, 2) ] !log

let fabric_perturb_delay_and_dup () =
  let e, f = setup () in
  let log = collect f 1 in
  Fabric.set_perturb f (Some { Fabric.p_loss = 0.0; p_dup = 1.0; p_delay_us = 50.0 });
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Engine.run e;
  check Alcotest.int "duplicated" 2 (List.length !log);
  check Alcotest.bool "spike delay applied" true (Engine.now e >= 50.0)

let fabric_slow_node () =
  (* measure a baseline delivery, then the same with a 10x gray sender *)
  let e, f = setup () in
  let _ = collect f 1 in
  Fabric.send f ~src:0 ~dst:1 (Ping 1);
  Engine.run e;
  let baseline = Engine.now e in
  let e2, f2 = setup () in
  let _ = collect f2 1 in
  Fabric.set_slow f2 0 10.0;
  Fabric.send f2 ~src:0 ~dst:1 (Ping 1);
  Engine.run e2;
  if Engine.now e2 < 5.0 *. baseline then
    Alcotest.failf "gray node not slowed: %.2f vs baseline %.2f" (Engine.now e2) baseline;
  Fabric.set_slow f2 0 1.0;
  check Alcotest.bool "factor cleared" true (Fabric.slow_factor f2 0 = 1.0)

let send_burst f n =
  for i = 0 to n - 1 do
    Fabric.send f ~src:0 ~dst:1 (Ping i)
  done

let fabric_permute_swaps_order () =
  (* [permute_prob] genuinely swaps per-link delivery order — unlike the
     [delay_prob] straggler, which only stretches arrival times *)
  let e, f =
    setup ~config:{ Fabric.default_config with Fabric.permute_prob = 1.0 } ()
  in
  let log = collect f 1 in
  send_burst f 12;
  Engine.run e;
  let got = List.rev_map snd !log in
  check
    Alcotest.(list int)
    "all delivered" (List.init 12 Fun.id)
    (List.sort compare got);
  check Alcotest.bool "order permuted" true (got <> List.init 12 Fun.id)

let fabric_scramble_knob () =
  (* the nemesis knob: same permutation, armed and disarmed at runtime.
     Jitter off so the disarmed burst has a deterministic baseline order. *)
  let e, f = setup ~config:{ Fabric.default_config with Fabric.jitter_us = 0.0 } () in
  let log = collect f 1 in
  Fabric.set_scramble f 1.0;
  check (Alcotest.float 0.0) "armed" 1.0 (Fabric.scramble f);
  send_burst f 12;
  Engine.run e;
  check Alcotest.bool "scramble permutes" true
    (List.rev_map snd !log <> List.init 12 Fun.id);
  log := [];
  Fabric.set_scramble f 0.0;
  send_burst f 12;
  Engine.run e;
  check
    Alcotest.(list int)
    "disarmed: in order again" (List.init 12 Fun.id)
    (List.rev_map snd !log);
  check Alcotest.bool "out-of-range rejected" true
    (match Fabric.set_scramble f 1.5 with
    | exception Invalid_argument _ -> true
    | () -> false)

let fabric_rejects_invalid_config () =
  let rejects config =
    match Fabric.create (Engine.create ()) ~nodes:3 config with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  List.iter
    (fun (name, config) ->
      check Alcotest.bool name true (rejects config))
    [
      ("loss > 1", { Fabric.default_config with Fabric.loss_prob = 1.5 });
      ("negative dup", { Fabric.default_config with Fabric.dup_prob = -0.1 });
      ("nan permute", { Fabric.default_config with Fabric.permute_prob = Float.nan });
      ("negative jitter", { Fabric.default_config with Fabric.jitter_us = -1.0 });
      ( "zero bandwidth",
        { Fabric.default_config with Fabric.bandwidth_gbps = 0.0 } );
    ];
  check Alcotest.bool "nodes <= 0" true
    (match Fabric.create (Engine.create ()) ~nodes:0 Fabric.default_config with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- transport ---------- *)

let transport_setup ?(fabric_config = Fabric.default_config) ?config () =
  let e, f = setup ~config:fabric_config () in
  let t = Transport.create ?config f in
  (e, t)

let tcollect t node =
  let log = ref [] in
  Transport.set_handler t node (fun ~src payload ->
      match payload with Ping n -> log := (src, n) :: !log | _ -> ());
  log

let transport_delivers () =
  let e, t = transport_setup () in
  let log = tcollect t 1 in
  Transport.send t ~src:0 ~dst:1 (Ping 3);
  Engine.run e;
  check Alcotest.(list (pair int int)) "delivered" [ (0, 3) ] !log

let transport_survives_loss () =
  let e, t =
    transport_setup
      ~fabric_config:{ Fabric.default_config with Fabric.loss_prob = 0.4 }
      ()
  in
  let log = tcollect t 1 in
  for i = 1 to 50 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  check Alcotest.int "all delivered despite 40% loss" 50 (List.length !log);
  check Alcotest.bool "retransmitted" true (Transport.retransmissions t > 0);
  (* exactly once: no duplicates *)
  let sorted = List.sort compare (List.map snd !log) in
  check Alcotest.(list int) "exactly once" (List.init 50 (fun i -> i + 1)) sorted

let transport_dedup_duplication () =
  let e, t =
    transport_setup
      ~fabric_config:{ Fabric.default_config with Fabric.dup_prob = 1.0 }
      ()
  in
  let log = tcollect t 1 in
  for i = 1 to 10 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  check Alcotest.int "deduplicated" 10 (List.length !log)

let transport_no_dedup_mode () =
  let e, t =
    transport_setup
      ~fabric_config:{ Fabric.default_config with Fabric.dup_prob = 1.0 }
      ~config:{ Transport.default_config with Transport.dedup = false }
      ()
  in
  let log = tcollect t 1 in
  Transport.send t ~src:0 ~dst:1 (Ping 1);
  Engine.run e;
  check Alcotest.bool "duplicates visible" true (List.length !log >= 2)

let transport_gives_up_on_dead_peer () =
  let e, t = transport_setup () in
  let _ = tcollect t 1 in
  Transport.crash t 1;
  Transport.send t ~src:0 ~dst:1 (Ping 1);
  (* must terminate: retransmissions stop once the peer is known dead *)
  Engine.run ~max_events:100_000 e;
  check Alcotest.bool "terminates" true (Engine.pending e = 0)

let transport_crash_clears_timers () =
  let e, t =
    transport_setup
      ~fabric_config:{ Fabric.default_config with Fabric.loss_prob = 1.0 }
      ()
  in
  let _ = tcollect t 1 in
  Transport.send t ~src:0 ~dst:1 (Ping 1);
  Engine.run ~until:50.0 e;
  Transport.crash t 0;
  Engine.run ~max_events:10_000 e;
  check Alcotest.int "no stuck retransmit timers" 0 (Engine.pending e)

let transport_backoff_deterministic () =
  let c = Transport.default_config in
  let rto = Transport.rto_after c in
  (* pure: same flow and retry count, same timeout — twice *)
  check (Alcotest.float 0.0) "deterministic" (rto ~src:0 ~dst:1 ~retries:3)
    (rto ~src:0 ~dst:1 ~retries:3);
  (* first shot starts at the base (plus at most 10% jitter) *)
  let r0 = rto ~src:0 ~dst:1 ~retries:0 in
  check Alcotest.bool "base rto" true (r0 >= c.Transport.rto_us && r0 <= 1.1 *. c.Transport.rto_us);
  (* grows while under the cap, never exceeds cap + jitter *)
  for r = 0 to 4 do
    let a = rto ~src:0 ~dst:1 ~retries:r and b = rto ~src:0 ~dst:1 ~retries:(r + 1) in
    if b < a && a < c.Transport.rto_max_us then
      Alcotest.failf "backoff shrank below the cap: retries=%d %.1f -> %.1f" r a b
  done;
  for r = 0 to 20 do
    let v = rto ~src:0 ~dst:1 ~retries:r in
    if v > 1.1 *. c.Transport.rto_max_us then
      Alcotest.failf "backoff exceeded cap: retries=%d %.1f" r v
  done;
  (* distinct flows jitter apart (desynchronizing simultaneous probers) *)
  check Alcotest.bool "per-flow jitter" true
    (rto ~src:0 ~dst:1 ~retries:4 <> rto ~src:1 ~dst:2 ~retries:4)

let transport_backoff_collapses_probe_rate () =
  (* against an unreachable peer, backoff must spend far fewer
     retransmissions than the historical fixed-rate transport over the
     same virtual-time horizon *)
  let probe config =
    let e, t = transport_setup ~config () in
    let _ = tcollect t 1 in
    Fabric.partition (Transport.fabric t) 0 1;
    Transport.send t ~src:0 ~dst:1 (Ping 1);
    Engine.run ~until:5_000.0 e;
    Transport.retransmissions t
  in
  let fixed = probe { Transport.default_config with Transport.rto_backoff = 1.0 } in
  let backed = probe Transport.default_config in
  if backed * 3 > fixed then
    Alcotest.failf "backoff did not collapse probing: fixed=%d backed-off=%d" fixed backed

let transport_backoff_resets_on_progress () =
  (* loss makes some bursts retransmit (counting backoffs), but once the
     partition heals and the window advances, delivery completes *)
  let e, t = transport_setup () in
  let log = tcollect t 1 in
  Fabric.partition (Transport.fabric t) 0 1;
  Transport.send t ~src:0 ~dst:1 (Ping 1);
  ignore
    (Engine.schedule e ~after:600.0 (fun () -> Fabric.heal (Transport.fabric t) 0 1));
  Engine.run e;
  check Alcotest.int "delivered after heal" 1 (List.length !log);
  check Alcotest.bool "bursts were backed off" true (Transport.backoffs t > 0);
  (* fresh traffic after progress goes back to the base timeout: a second
     outage retransmits promptly rather than starting at the cap *)
  Fabric.partition (Transport.fabric t) 0 1;
  let before = Transport.retransmissions t in
  Transport.send t ~src:0 ~dst:1 (Ping 2);
  Engine.run ~until:(Engine.now e +. 200.0) e;
  check Alcotest.bool "prompt first retransmission" true
    (Transport.retransmissions t > before);
  Fabric.heal (Transport.fabric t) 0 1;
  Engine.run e;
  check Alcotest.int "second message delivered" 2 (List.length !log)

(* ---------- batching ---------- *)

let transport_coalesces_same_instant () =
  (* Three same-instant sends to one peer must leave as ONE fabric frame;
     the receiver's single cumulative ack makes it two messages total
     (the legacy transport used six: 3 Data + 3 Ack). *)
  let e, t = transport_setup () in
  let log = tcollect t 1 in
  for i = 1 to 3 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  check Alcotest.(list (pair int int)) "in order" [ (0, 1); (0, 2); (0, 3) ] (List.rev !log);
  let st = Transport.stats t in
  check Alcotest.int "one data frame" 1 st.Transport.frames;
  check Alcotest.int "three payloads" 3 st.Transport.payloads;
  check Alcotest.int "one batch + one ack on the fabric" 2
    (Fabric.messages_sent (Transport.fabric t))

let transport_unbatched_message_counts () =
  (* Legacy mode: pre-PR wire behaviour — one Data + one Ack per message. *)
  let e, t =
    transport_setup ~config:(Transport.unbatched Transport.default_config) ()
  in
  let _ = tcollect t 1 in
  for i = 1 to 5 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  check Alcotest.int "5 Data + 5 Ack" 10 (Fabric.messages_sent (Transport.fabric t))

let transport_batched_in_order_under_reorder () =
  let e, t =
    transport_setup
      ~fabric_config:
        { Fabric.default_config with Fabric.delay_prob = 0.6; loss_prob = 0.2 }
      ()
  in
  let log = tcollect t 1 in
  for i = 1 to 30 do
    ignore
      (Engine.schedule e
         ~after:(3.0 *. float_of_int i)
         (fun () -> Transport.send t ~src:0 ~dst:1 (Ping i)))
  done;
  Engine.run e;
  check Alcotest.(list int) "in-order exactly-once"
    (List.init 30 (fun i -> i + 1))
    (List.rev_map snd !log)

let transport_doorbell_flushes_early () =
  (* With a large flush window, the doorbell must release the batch at the
     current instant instead of waiting out the window. *)
  let config = { Transport.default_config with Transport.flush_window_us = 500.0 } in
  let e, t = transport_setup ~config () in
  let log = tcollect t 1 in
  Transport.send t ~src:0 ~dst:1 (Ping 1);
  Transport.send t ~src:0 ~dst:1 (Ping 2);
  Transport.flush t 0;
  Engine.run e;
  check Alcotest.int "delivered" 2 (List.length !log);
  (* fabric latency only: base 4µs + jitter, nowhere near the 500µs window *)
  check Alcotest.bool "no window delay" true (Engine.now e < 100.0)

let transport_crash_symmetric_cleanup () =
  (* Peers' send-side state toward a crashed node is dropped at crash time
     (not leaked until RTO), and the crashed node's receive windows die
     with it. *)
  let e, t =
    transport_setup
      ~fabric_config:{ Fabric.default_config with Fabric.loss_prob = 0.5 }
      ()
  in
  let _ = tcollect t 1 in
  for i = 1 to 10 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  ignore (Engine.schedule e ~after:10.0 (fun () -> Transport.crash t 1));
  Engine.run ~max_events:100_000 e;
  check Alcotest.int "no timers left" 0 (Engine.pending e);
  check Alcotest.int "sender state dropped" 0 (Transport.tx_backlog t);
  check Alcotest.int "receiver state dropped" 0 (Transport.rx_backlog t)

let rejoin_seq0_not_swallowed config () =
  (* Regression: a crashed-and-rejoined sender restarts at sequence 0; the
     receiver's dedup state must not swallow the fresh stream as
     duplicates of the old incarnation. *)
  let e, t = transport_setup ~config () in
  let log = tcollect t 1 in
  for i = 1 to 5 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  check Alcotest.int "first incarnation delivered" 5 (List.length !log);
  Transport.crash t 0;
  Engine.run e;
  Transport.recover t 0;
  for i = 6 to 10 do
    Transport.send t ~src:0 ~dst:1 (Ping i)
  done;
  Engine.run e;
  let sorted = List.sort compare (List.map snd !log) in
  check Alcotest.(list int) "rejoined incarnation delivered too"
    (List.init 10 (fun i -> i + 1))
    sorted

let suite =
  [
    tc "fabric: delivers with latency" fabric_delivers;
    tc "fabric: size adds serialization delay" fabric_size_latency;
    tc "fabric: loss injection" fabric_loss;
    tc "fabric: duplication injection" fabric_duplication;
    tc "fabric: partitions" fabric_partition;
    tc "fabric: crash-stop" fabric_crash;
    tc "fabric: in-flight to crashed node dropped" fabric_in_flight_to_crashed;
    tc "fabric: self-send" fabric_self_send;
    tc "fabric: traffic counters" fabric_counters;
    tc "fabric: one-way partitions" fabric_oneway_partition;
    tc "fabric: heal_all clears both partition kinds" fabric_heal_all_clears_both_kinds;
    tc "fabric: perturbation spike (loss)" fabric_perturb_spike;
    tc "fabric: perturbation spike (delay+dup)" fabric_perturb_delay_and_dup;
    tc "fabric: gray node latency multiplier" fabric_slow_node;
    tc "fabric: permutation swaps delivery order" fabric_permute_swaps_order;
    tc "fabric: scramble knob arms and disarms at runtime" fabric_scramble_knob;
    tc "fabric: invalid configs rejected at construction" fabric_rejects_invalid_config;
    tc "transport: delivers" transport_delivers;
    tc "transport: exactly-once under 40% loss" transport_survives_loss;
    tc "transport: dedup under duplication" transport_dedup_duplication;
    tc "transport: dedup can be disabled" transport_no_dedup_mode;
    tc "transport: gives up on dead peer" transport_gives_up_on_dead_peer;
    tc "transport: crash clears retransmit state" transport_crash_clears_timers;
    tc "transport: backoff schedule is deterministic" transport_backoff_deterministic;
    tc "transport: backoff collapses probe rate" transport_backoff_collapses_probe_rate;
    tc "transport: backoff resets on window progress" transport_backoff_resets_on_progress;
    tc "transport: same-instant sends coalesce into one frame"
      transport_coalesces_same_instant;
    tc "transport: unbatched mode keeps legacy message counts"
      transport_unbatched_message_counts;
    tc "transport: batched delivery is in order under reorder+loss"
      transport_batched_in_order_under_reorder;
    tc "transport: doorbell flushes before the window expires"
      transport_doorbell_flushes_early;
    tc "transport: crash cleanup is symmetric" transport_crash_symmetric_cleanup;
    tc "transport: rejoined seq 0 not swallowed (batched)"
      (rejoin_seq0_not_swallowed Transport.default_config);
    tc "transport: rejoined seq 0 not swallowed (unbatched)"
      (rejoin_seq0_not_swallowed (Transport.unbatched Transport.default_config));
  ]
