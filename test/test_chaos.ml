(* Tests for the chaos engine: schedules, nemesis execution, online
   monitors, and the safety property under randomized fault plans. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module History = Zeus_core.History
module Value = Zeus_store.Value
module Hub = Zeus_telemetry.Hub
module Metrics = Zeus_telemetry.Metrics
module Chaos = Zeus_chaos
module Schedule = Zeus_chaos.Schedule
module Nemesis = Zeus_chaos.Nemesis
module Monitor = Zeus_chaos.Monitor
module W = Zeus_workload

let tc = Helpers.tc
let check = Alcotest.check

(* Pin the qcheck sampling: the default self-seeded state makes each CI run
   draw different case seeds, and a handful of known protocol corners (the
   trim-wedge family, see ROADMAP) turn that into a coin-flip suite.  A
   fixed state keeps the property honest — 12 real random schedules per
   mode — and every run reproducible, which is the whole point of the
   simulator. *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 7 |]) t

(* ---------- schedules (pure data) ---------- *)

let schedule_sorted_and_seeded () =
  let s =
    Schedule.v ~name:"x"
      [
        { Schedule.at_us = 300.0; fault = Schedule.Crash 1 };
        { Schedule.at_us = 100.0; fault = Schedule.Heal_all };
        { Schedule.at_us = 200.0; fault = Schedule.Restart 1 };
      ]
  in
  check Alcotest.(list (float 0.0)) "sorted by time" [ 100.0; 200.0; 300.0 ]
    (List.map (fun (st : Schedule.step) -> st.Schedule.at_us) (Schedule.steps s));
  let a = Schedule.random ~seed:5L ~nodes:3 ~start_us:100.0 ~duration_us:4_000.0 () in
  let b = Schedule.random ~seed:5L ~nodes:3 ~start_us:100.0 ~duration_us:4_000.0 () in
  check Alcotest.bool "same seed, same plan" true (Schedule.equal a b);
  let c = Schedule.random ~seed:6L ~nodes:3 ~start_us:100.0 ~duration_us:4_000.0 () in
  check Alcotest.bool "different seed, different plan" false (Schedule.equal a c);
  (* every random plan ends in a healed cluster *)
  let has_heal_all =
    List.exists (fun (st : Schedule.step) -> st.Schedule.fault = Schedule.Heal_all)
      (Schedule.steps a)
  in
  check Alcotest.bool "closes with heal_all" true has_heal_all;
  check Alcotest.bool "printable" true (String.length (Schedule.to_string a) > 0)

(* ---------- recovery extraction (pure) ---------- *)

let recovery_extraction () =
  let w = 100.0 in
  let tl at v = (at, v) in
  (* flat 10/window, outage in [500,700), back at 10 from 700 *)
  let timeline =
    [
      tl 0.0 10; tl 100.0 10; tl 200.0 10; tl 300.0 10; tl 400.0 10;
      tl 500.0 0; tl 600.0 2; tl 700.0 10; tl 800.0 10; tl 900.0 10;
    ]
  in
  let r =
    Monitor.recovery_of_timeline ~window_us:w ~frac:0.9 ~baseline_windows:4
      ~fault_at_us:500.0 timeline
  in
  (match r with
  | Some x -> check (Alcotest.float 0.001) "recovers at the 700 window" 300.0 x
  | None -> Alcotest.fail "expected recovery");
  (* a single good window is not recovery (needs two consecutive) *)
  let bumpy =
    [
      tl 0.0 10; tl 100.0 10; tl 200.0 10; tl 300.0 10; tl 400.0 10;
      tl 500.0 0; tl 600.0 10; tl 700.0 2; tl 800.0 2; tl 900.0 2;
    ]
  in
  check Alcotest.bool "one good window is a retry burst, not recovery" true
    (Monitor.recovery_of_timeline ~window_us:w ~frac:0.9 ~baseline_windows:4
       ~fault_at_us:500.0 bumpy
    = None);
  (* no pre-fault baseline -> no recovery claim *)
  check Alcotest.bool "needs a baseline" true
    (Monitor.recovery_of_timeline ~window_us:w ~frac:0.9 ~baseline_windows:4
       ~fault_at_us:0.0 [ tl 0.0 5 ]
    = None)

(* ---------- nemesis execution ---------- *)

let chaos_cluster ?(nodes = 3) ?(seed = 42L) ?(record_history = false)
    ?(detected = false) () =
  let config =
    {
      Config.default with
      Config.nodes;
      seed;
      record_history;
      membership_mode =
        (if detected then Zeus_membership.Service.Detected
         else Zeus_membership.Service.Oracle);
    }
  in
  let c = Cluster.create ~config () in
  for k = 0 to 11 do
    Cluster.populate c ~key:k ~owner:(k mod nodes) (Value.of_int 0)
  done;
  c

let drive c ~txns_per_thread =
  let n = Cluster.nodes c in
  let engine = Cluster.engine c in
  let rng = Engine.fork_rng engine in
  for home = 0 to n - 1 do
    for thread = 0 to 1 do
      let node = Cluster.node c home in
      let rec loop i =
        if i < txns_per_thread && Node.is_alive node then begin
          let key () = Zeus_sim.Rng.int rng 12 in
          let spec =
            if Zeus_sim.Rng.chance rng 0.3 then W.Spec.read_txn [ key () ]
            else W.Spec.write_txn [ key () ]
          in
          W.Spec.run_on_zeus node ~thread spec (fun _ -> loop (i + 1))
        end
      in
      ignore
        (Engine.schedule engine
           ~after:(0.1 *. float_of_int ((home * 2) + thread))
           (fun () -> loop 0))
    done
  done

let nemesis_applies_and_guards () =
  let c = chaos_cluster () in
  let s =
    Schedule.v ~name:"guards"
      [
        { Schedule.at_us = 100.0; fault = Schedule.Crash 2 };
        (* crash of an already-dead node must be skipped, not applied *)
        { Schedule.at_us = 200.0; fault = Schedule.Crash 2 };
        { Schedule.at_us = 300.0; fault = Schedule.Restart 2 };
        (* restart of a live node must be skipped *)
        { Schedule.at_us = 400.0; fault = Schedule.Restart 2 };
      ]
  in
  let nem = Nemesis.attach c s in
  Cluster.run c ~until_us:10_000.0;
  check Alcotest.bool "all steps fired" true (Nemesis.done_ nem);
  check Alcotest.int "two skipped" 2 (Nemesis.skipped nem);
  check Alcotest.(list (pair (float 0.0) string)) "applied timeline"
    [ (100.0, "crash(2)"); (300.0, "restart(2)") ]
    (List.map (fun (at, f) -> (at, Schedule.fault_to_string f)) (Nemesis.applied nem));
  let m = Hub.metrics (Cluster.telemetry c) in
  check Alcotest.int "chaos.crashes" 1 (Metrics.Counter.get (Metrics.Counter.v m "chaos.crashes"));
  check Alcotest.int "chaos.skipped" 2 (Metrics.Counter.get (Metrics.Counter.v m "chaos.skipped"))

let same_seed_reproduces_timeline () =
  let run () =
    let c = chaos_cluster () in
    drive c ~txns_per_thread:10;
    let s = Schedule.random ~seed:9L ~nodes:3 ~start_us:150.0 ~duration_us:4_000.0 () in
    let nem = Nemesis.attach c s in
    Cluster.run_quiesce c ~max_us:3_000_000.0 ();
    List.map (fun (at, f) -> (at, Schedule.fault_to_string f)) (Nemesis.applied nem)
  in
  let a = run () and b = run () in
  check Alcotest.(list (pair (float 0.0) string)) "identical fault timeline" a b;
  check Alcotest.bool "non-trivial" true (List.length a > 0)

let empty_schedule_is_zero_overhead () =
  (* a run with an empty nemesis must be telemetry-identical to a run with
     no nemesis at all: no counters registered, no events scheduled *)
  let run ~nemesis =
    let c = chaos_cluster () in
    drive c ~txns_per_thread:10;
    if nemesis then begin
      let nem = Nemesis.attach c Schedule.empty in
      check Alcotest.bool "empty schedule completes immediately" true
        (Nemesis.done_ nem)
    end;
    Cluster.run_quiesce c ~max_us:3_000_000.0 ();
    (Cluster.total_committed c, Metrics.counters (Hub.metrics (Cluster.telemetry c)))
  in
  let committed0, counters0 = run ~nemesis:false in
  let committed1, counters1 = run ~nemesis:true in
  check Alcotest.int "same committed" committed0 committed1;
  check
    Alcotest.(list (pair string int))
    "identical counter registry and values" counters0 counters1

let monitor_clean_on_healthy_run () =
  let c = chaos_cluster () in
  drive c ~txns_per_thread:15;
  let mon = Monitor.attach c in
  Cluster.run c ~until_us:8_000.0;
  Monitor.stop mon;
  Cluster.run_quiesce c ~max_us:3_000_000.0 ();
  check Alcotest.bool "sampled" true (Monitor.samples mon > 10);
  check Alcotest.(list string) "no violations" [] (Monitor.violations mon);
  (match Monitor.check_final mon with
  | Ok () -> ()
  | Error e -> Alcotest.failf "final check: %s" e);
  (* goodput timeline is non-empty and non-negative *)
  let tl = Monitor.timeline mon in
  check Alcotest.bool "windows recorded" true (List.length tl > 10);
  check Alcotest.bool "counts non-negative" true (List.for_all (fun (_, n) -> n >= 0) tl);
  check Alcotest.bool "work observed" true (List.exists (fun (_, n) -> n > 0) tl)

let monitor_stop_is_idempotent_and_quiesces () =
  let c = chaos_cluster () in
  let mon = Monitor.attach c in
  Cluster.run c ~until_us:1_000.0;
  Monitor.stop mon;
  Monitor.stop mon;
  (* with the recurring sampling events cancelled the engine must drain *)
  Cluster.run_quiesce c ~max_us:50_000.0 ();
  check Alcotest.int "engine drained" 0 (Engine.pending (Cluster.engine c))

(* ---------- scrambled delivery order ---------- *)

(* A cluster on the unordered transport with the nemesis scrambling
   per-link delivery order mid-run: the sequence-aware clear marks must
   keep every stream draining — monitors clean, history linearizable,
   schedule fully applied.  (On the ordered default transport the same
   window would be invisible: the receiver reassembles order below the
   protocol.) *)
let scrambled_delivery_stays_safe () =
  let config =
    {
      Config.default with
      Config.nodes = 3;
      seed = 11L;
      record_history = true;
      transport = Zeus_net.Transport.unordered Zeus_net.Transport.default_config;
    }
  in
  let c = Cluster.create ~config () in
  for k = 0 to 11 do
    Cluster.populate c ~key:k ~owner:(k mod 3) (Value.of_int 0)
  done;
  drive c ~txns_per_thread:20;
  let mon = Monitor.attach c in
  let s =
    Schedule.v ~name:"scramble"
      (Schedule.scramble_window ~at_us:500.0 ~duration_us:4_000.0 ~prob:0.6 ())
  in
  let nem = Nemesis.attach ~monitor:mon c s in
  Cluster.run c ~until_us:8_000.0;
  Monitor.stop mon;
  Cluster.run_quiesce c ~max_us:3_000_000.0 ();
  check Alcotest.bool "schedule finished" true (Nemesis.done_ nem);
  check
    Alcotest.(list (pair (float 0.0) string))
    "scramble window applied"
    [ (500.0, "scramble(p=0.600)"); (4_500.0, "scramble_end") ]
    (List.map (fun (at, f) -> (at, Schedule.fault_to_string f)) (Nemesis.applied nem));
  (match Monitor.check_final mon with
  | Ok () -> ()
  | Error e -> Alcotest.failf "monitor: %s" e);
  match Cluster.history c with
  | Some h -> (
    match History.check h with
    | Ok () -> ()
    | Error e -> Alcotest.failf "history: %s" e)
  | None -> Alcotest.fail "history recording off"

(* ---------- detected mode: the oracle-free acceptance test ---------- *)

(* PR acceptance: under [membership_mode = Detected] a follower crash with
   nothing announcing it must be detected, lease-fenced and reconfigured,
   with the crash-to-view latency inside the configuration's analytical
   bound and goodput back at baseline afterwards — and a real crash must
   not be misclassified as a false suspicion. *)
let detected_follower_crash_recovers () =
  let module Service = Zeus_membership.Service in
  let module View = Zeus_membership.View in
  let config =
    {
      Config.default with
      Config.nodes = 4;
      dir_replicas = 2;
      seed = 7L;
      app_threads = 4;
      auto_trim = false;
      membership_mode = Service.Detected;
    }
  in
  let c = Cluster.create ~config () in
  let eng = Cluster.engine c in
  let rng = Engine.fork_rng eng in
  let w = W.Smallbank.create ~accounts_per_node:60 ~nodes:3 ~remote_frac:0.2 rng in
  Cluster.populate_n c ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  let mon = Monitor.attach ~observed:[ 0; 1; 2 ] c in
  let svc = Cluster.membership c in
  let bound = Service.detection_bound_us svc in
  let fault_at = 4_000.0 in
  let end_us = fault_at +. bound +. 4_000.0 in
  let issuing = ref true in
  List.iter
    (fun n ->
      let node = Cluster.node c n in
      for thread = 0 to 3 do
        let rec loop () =
          if !issuing then
            W.Spec.run_on_zeus node ~thread
              (W.Smallbank.gen w ~home:n)
              (fun _ -> loop ())
        in
        ignore
          (Engine.schedule eng
             ~after:(0.1 *. float_of_int ((n * 4) + thread))
             (fun () -> loop ()))
      done)
    [ 0; 1; 2 ];
  let installed_at = ref None in
  Zeus_membership.Service.subscribe svc 0 (fun v ->
      if !installed_at = None && not (View.is_live v 3) then
        installed_at := Some (Engine.now eng));
  ignore
    (Engine.schedule eng ~after:fault_at (fun () ->
         Cluster.kill c 3;
         Monitor.note_fault mon));
  Cluster.run c ~until_us:end_us;
  issuing := false;
  Monitor.stop mon;
  Cluster.run_quiesce c ~max_us:3_000_000.0 ();
  (match !installed_at with
  | None -> Alcotest.fail "crash was never detected"
  | Some at ->
    check Alcotest.bool
      (Printf.sprintf "detected in %.0f us <= bound %.0f us" (at -. fault_at) bound)
      true
      (at -. fault_at <= bound));
  (match Monitor.check_final mon with
  | Ok () -> ()
  | Error e -> Alcotest.failf "monitor: %s" e);
  check Alcotest.bool "goodput recovered to baseline" true
    (Monitor.recovery_us mon ~fault_at_us:fault_at <> None);
  let s = Service.det_stats svc in
  check Alcotest.int "a real crash is not a false suspicion" 0
    s.Service.false_suspicions;
  check Alcotest.bool "survivors suspected the crashed node" true
    (s.Service.suspicions >= 2)

(* ---------- the property: random chaos preserves safety ---------- *)

let random_chaos_safe ~detected ~name =
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      (* nodes = replication degree, so every node replicates every key and
         any single crash still leaves live copies *)
      let c =
        chaos_cluster ~seed:(Int64.of_int (seed + 1)) ~record_history:true ~detected
          ()
      in
      drive c ~txns_per_thread:15;
      let mon = Monitor.attach c in
      let s =
        Schedule.random ~seed:(Int64.of_int seed) ~nodes:3 ~start_us:200.0
          ~duration_us:5_000.0 ~faults:2 ()
      in
      let nem = Nemesis.attach ~monitor:mon c s in
      Cluster.run c ~until_us:12_000.0;
      Monitor.stop mon;
      Cluster.run_quiesce c ~max_us:3_000_000.0 ();
      if not (Nemesis.done_ nem) then QCheck.Test.fail_report "schedule did not finish";
      (match Monitor.check_final mon with
      | Ok () -> ()
      | Error e ->
        QCheck.Test.fail_report
          (Printf.sprintf "seed %d: %s\n%s" seed e (Schedule.to_string s)));
      (match Cluster.history c with
      | Some h -> (
        match History.check h with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_report (Printf.sprintf "seed %d: history: %s" seed e))
      | None -> QCheck.Test.fail_report "history recording off");
      true)

let prop_random_chaos_safe =
  random_chaos_safe ~detected:false ~name:"chaos: random schedules preserve safety"

(* Same property with no membership oracle: convergence after the final
   heal must come out of the detectors alone. *)
let prop_random_chaos_safe_detected =
  random_chaos_safe ~detected:true
    ~name:"chaos: random schedules preserve safety (detected membership)"

let suite =
  [
    tc "schedule: sorted, seeded, printable" schedule_sorted_and_seeded;
    tc "monitor: recovery extraction from timelines" recovery_extraction;
    tc "nemesis: applies faults, guards stale steps" nemesis_applies_and_guards;
    tc "nemesis: same seed reproduces the fault timeline" same_seed_reproduces_timeline;
    tc "nemesis: empty schedule is zero overhead" empty_schedule_is_zero_overhead;
    tc "monitor: clean on a healthy run" monitor_clean_on_healthy_run;
    tc "monitor: stop is idempotent and lets the engine drain" monitor_stop_is_idempotent_and_quiesces;
    tc "scramble: reordered delivery stays safe on unordered transport"
      scrambled_delivery_stays_safe;
    tc "detected: follower crash detected, fenced, recovered within bound"
      detected_follower_crash_recovers;
    qtest prop_random_chaos_safe;
    qtest prop_random_chaos_safe_detected;
  ]
