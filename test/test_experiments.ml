(* Smoke tests for the experiment harness itself: the registry resolves,
   quick runs complete, and the scale presets are sane.  (The heavyweight
   figures run in the bench, not here.) *)

let tc = Helpers.tc
let check = Alcotest.check

let registry_ids () =
  let ids = Zeus_experiments.Experiments.names () in
  List.iter
    (fun required ->
      if not (List.mem required ids) then Alcotest.failf "missing experiment %s" required)
    [
      "table2"; "verify"; "locality"; "fig7"; "fig8"; "fig9"; "fig10-12";
      "fig13-15"; "tpcc"; "ablations";
    ]

let unknown_id_rejected () =
  check Alcotest.bool "unknown id" false
    (Zeus_experiments.Experiments.run_one ~quick:true "nope")

let scales () =
  let q = Zeus_experiments.Exp.scale_of ~quick:true in
  let f = Zeus_experiments.Exp.scale_of ~quick:false in
  check Alcotest.bool "quick smaller" true
    (q.Zeus_experiments.Exp.objects_per_node < f.Zeus_experiments.Exp.objects_per_node);
  check Alcotest.bool "quick shorter" true
    (q.Zeus_experiments.Exp.duration_us < f.Zeus_experiments.Exp.duration_us)

let table2_runs () =
  check Alcotest.bool "table2" true
    (Zeus_experiments.Experiments.run_one ~quick:true "table2")

let locality_runs () =
  check Alcotest.bool "locality" true
    (Zeus_experiments.Experiments.run_one ~quick:true "locality")

(* ---------- Sweep: domain-parallel maps ---------- *)

let sweep_map_order () =
  let xs = List.init 37 (fun i -> i) in
  let sq = Zeus_experiments.Sweep.map ~jobs:1 (fun x -> x * x) xs in
  let par = Zeus_experiments.Sweep.map ~jobs:4 (fun x -> x * x) xs in
  check Alcotest.(list int) "in input order" sq par;
  check Alcotest.(list int) "correct" (List.map (fun x -> x * x) xs) par

(* One tiny Smallbank simulation per point: each builds its own cluster, so
   [-j 1] and [-j 4] must produce identical committed/abort/event counts. *)
let mini_point remote_frac =
  let module Engine = Zeus_sim.Engine in
  let module Cluster = Zeus_core.Cluster in
  let module Config = Zeus_core.Config in
  let module Node = Zeus_core.Node in
  let module W = Zeus_workload in
  let config = { Config.default with Config.nodes = 3 } in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w = W.Smallbank.create ~accounts_per_node:200 ~nodes:3 ~remote_frac rng in
  Cluster.populate_n cluster ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  let r =
    W.Driver.run cluster ~warmup_us:200.0 ~duration_us:1_500.0
      ~issue:(fun node ~thread ~seq:_ done_ ->
        W.Spec.run_on_zeus node ~thread
          (W.Smallbank.gen w ~home:(Node.id node))
          (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed)))
      ()
  in
  ( r.W.Driver.committed,
    r.W.Driver.aborted,
    Engine.events_dispatched (Cluster.engine cluster) )

let sweep_deterministic () =
  let fracs = [ 0.0; 0.1; 0.2; 0.3 ] in
  let j1 = Zeus_experiments.Sweep.map ~jobs:1 mini_point fracs in
  let j4 = Zeus_experiments.Sweep.map ~jobs:4 mini_point fracs in
  check
    Alcotest.(list (triple int int int))
    "-j1 and -j4 bit-identical" j1 j4;
  List.iter (fun (c, _, _) -> check Alcotest.bool "work happened" true (c > 0)) j1

let sweep_global_jobs () =
  Zeus_experiments.Sweep.set_jobs 3;
  let got = Zeus_experiments.Sweep.get_jobs () in
  Zeus_experiments.Sweep.set_jobs 1;
  check Alcotest.int "set/get" 3 got;
  check Alcotest.int "clamped at 1" 1 (Zeus_experiments.Sweep.get_jobs ())

let suite =
  [
    tc "registry: all paper artifacts present" registry_ids;
    tc "registry: unknown ids rejected" unknown_id_rejected;
    tc "scales: quick < full" scales;
    tc "table2 runs" table2_runs;
    tc "locality analysis runs" locality_runs;
    tc "sweep: map preserves order across domains" sweep_map_order;
    tc "sweep: -j1 vs -j4 bit-identical simulations" sweep_deterministic;
    tc "sweep: global job knob" sweep_global_jobs;
  ]
