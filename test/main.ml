let () =
  Alcotest.run "zeus"
    [
      ("sim", Test_sim.suite);
      ("telemetry", Test_telemetry.suite);
      ("net", Test_net.suite);
      ("membership", Test_membership.suite);
      ("store", Test_store.suite);
      ("ownership", Test_ownership.suite);
      ("commit", Test_commit.suite);
      ("core", Test_core.suite);
      ("lb", Test_lb.suite);
      ("locality", Test_locality.suite);
      ("baseline", Test_baseline.suite);
      ("workloads", Test_workloads.suite);
      ("apps", Test_apps.suite);
      ("integration", Test_integration.suite);
      ("smallmodel", Test_smallmodel.suite);
      ("edge", Test_edge.suite);
      ("model", Test_model.suite);
      ("distdir", Test_distdir.suite);
      ("regressions", Test_regressions.suite);
      ("tpcc", Test_tpcc.suite);
      ("experiments", Test_experiments.suite);
      ("properties", Test_properties.suite);
      ("replay", Test_replay.suite);
      ("transport-props", Test_transport_props.suite);
      ("chaos", Test_chaos.suite);
    ]
