(* Tests for the reliable commit protocol (§5): replication, pipelining,
   partial streams, and replay after coordinator crashes. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Com = Zeus_commit
module Value = Zeus_store.Value
module Table = Zeus_store.Table
module Types = Zeus_store.Types

let tc = Helpers.tc
let check = Alcotest.check

let obj_at c node key = Table.find (Node.table (Cluster.node c node)) key

let value_at c node key =
  Option.map (fun o -> Value.to_int o.Zeus_store.Obj.data) (obj_at c node key)

let replicates_to_followers () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  Helpers.expect_committed "write" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 42));
  List.iter
    (fun n ->
      check Alcotest.(option int) (Printf.sprintf "replica %d" n) (Some 42) (value_at c n 1))
    [ 0; 1; 2 ];
  (* all replicas validated after drain *)
  List.iter
    (fun n ->
      match obj_at c n 1 with
      | Some o -> check Alcotest.bool "valid" true (o.Zeus_store.Obj.t_state = Types.T_valid)
      | None -> Alcotest.fail "missing replica")
    [ 0; 1; 2 ]

let multi_object_atomic () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.populate c ~key:2 ~owner:0 (Value.of_int 0);
  Helpers.expect_committed "multi write"
    (Helpers.write_txn c 0 ~keys:[ 1; 2 ] ~value:(Value.of_int 9));
  List.iter
    (fun n ->
      check Alcotest.(option int) "k1" (Some 9) (value_at c n 1);
      check Alcotest.(option int) "k2" (Some 9) (value_at c n 2))
    [ 1; 2 ]

let pipelining_does_not_block () =
  (* K back-to-back transactions on the same object from one thread: the
     k-th local commit must not wait for the (k-1)-th reliable commit *)
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  let n0 = Cluster.node c 0 in
  let commit_times = ref [] in
  let rec chain i =
    if i < 8 then
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
              commit ()))
        (fun outcome ->
          Helpers.expect_committed "chain" outcome;
          commit_times := Engine.now (Cluster.engine c) :: !commit_times;
          chain (i + 1))
  in
  chain 0;
  Helpers.drain c;
  check Alcotest.int "all committed" 8 (List.length !commit_times);
  (* with a ~12 µs replication RTT, 8 blocking commits would need ~100 µs;
     pipelined they complete in a fraction of that *)
  let last = List.hd !commit_times in
  if last > 40.0 then Alcotest.failf "commits were not pipelined: %.1f us" last;
  check Alcotest.(option int) "final value replicated" (Some 8) (value_at c 1 1)

let followers_apply_in_pipeline_order () =
  (* heavy reordering on the fabric; versions must still end up exact *)
  let fabric =
    { Zeus_net.Fabric.default_config with
      Zeus_net.Fabric.delay_prob = 0.5;
      delay_extra_us = 30.0;
    }
  in
  let c = Helpers.default_cluster ~fabric () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  let n0 = Cluster.node c 0 in
  let done_count = ref 0 in
  let rec chain i =
    if i < 20 then
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
              commit ()))
        (fun _ ->
          incr done_count;
          chain (i + 1))
  in
  chain 0;
  Helpers.drain c;
  check Alcotest.int "all committed" 20 !done_count;
  List.iter
    (fun n ->
      check Alcotest.(option int) (Printf.sprintf "replica %d converged" n) (Some 20)
        (value_at c n 1))
    [ 0; 1; 2 ];
  Helpers.expect_invariants c

let partial_stream_follower () =
  (* node 0 owns two objects with different reader sets; each follower sees
     only part of the pipeline and needs the prev-VAL machinery (§5.2) *)
  let config = { Config.default with Config.nodes = 4; replication_degree = 2 } in
  let c = Cluster.create ~config () in
  (* key 1 replicated on {0,1}; key 2 on {0,2}: install by hand *)
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.populate c ~key:2 ~owner:0 (Value.of_int 0);
  (* move key 2's reader from node 1 to node 2 *)
  let n0 = Cluster.node c 0 in
  let r = ref None in
  Node.add_reader (Cluster.node c 2) 2 (fun x -> r := Some x);
  Helpers.drain c;
  (match !r with Some (Ok ()) -> () | _ -> Alcotest.fail "add reader");
  (* interleave writes to both keys on one thread/pipeline *)
  let rec chain i =
    if i < 10 then begin
      let key = if i mod 2 = 0 then 1 else 2 in
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx key (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
              commit ()))
        (fun _ -> chain (i + 1))
    end
  in
  chain 0;
  Helpers.drain c;
  check Alcotest.(option int) "key1 at node1" (Some 5) (value_at c 1 1);
  check Alcotest.(option int) "key2 at node2" (Some 5) (value_at c 2 2);
  Helpers.expect_invariants c

let version_monotonic_apply () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  for i = 1 to 5 do
    Helpers.expect_committed "w" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int i))
  done;
  List.iter
    (fun n ->
      match obj_at c n 1 with
      | Some o -> check Alcotest.int "version" 6 o.Zeus_store.Obj.t_version
      | None -> Alcotest.fail "replica missing")
    [ 0; 1; 2 ]

let coordinator_dies_followers_replay () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 1);
  let n0 = Cluster.node c 0 in
  (* commit locally, then kill the coordinator before R-VALs settle *)
  Node.run_write n0 ~thread:0
    ~body:(fun ctx commit ->
      Node.read_write ctx 1 (fun _ -> Value.of_int 99) (fun _ -> commit ()))
    (fun _ -> ());
  ignore (Engine.schedule (Cluster.engine c) ~after:6.0 (fun () -> Cluster.kill c 0));
  Helpers.drain c ~max_us:300_000.0;
  (* both survivors must have converged on the same value, fully validated *)
  let v1 = value_at c 1 1 and v2 = value_at c 2 1 in
  check Alcotest.(option int) "followers agree" v1 v2;
  (match (obj_at c 1 1, obj_at c 2 1) with
  | Some a, Some b ->
    check Alcotest.bool "validated after replay" true
      (a.Zeus_store.Obj.t_state = Types.T_valid && b.Zeus_store.Obj.t_state = Types.T_valid)
  | _ -> Alcotest.fail "replicas missing");
  (* survivors can take over and keep writing *)
  Helpers.expect_committed "post-crash write"
    (Helpers.write_txn c 1 ~keys:[ 1 ] ~value:(Value.of_int 100));
  check Alcotest.(option int) "new value" (Some 100) (value_at c 2 1);
  Helpers.expect_invariants c

let pipeline_crash_replay_burst () =
  (* a burst of pipelined commits in flight when the coordinator dies:
     replay must deliver a prefix, identically everywhere *)
  let c = Helpers.default_cluster ~seed:7L () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.populate c ~key:2 ~owner:0 (Value.of_int 0);
  let n0 = Cluster.node c 0 in
  let rec chain i =
    if i < 30 then begin
      let key = 1 + (i mod 2) in
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx key (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
              commit ()))
        (fun _ -> chain (i + 1))
    end
  in
  chain 0;
  ignore (Engine.schedule (Cluster.engine c) ~after:10.0 (fun () -> Cluster.kill c 0));
  Helpers.drain c ~max_us:300_000.0;
  check Alcotest.(option int) "key1 agree" (value_at c 1 1) (value_at c 2 1);
  check Alcotest.(option int) "key2 agree" (value_at c 1 2) (value_at c 2 2);
  Helpers.expect_invariants c

let follower_dies_commit_completes () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 1);
  Cluster.kill c 2;
  (* commit while one follower is dead: must complete with the live one *)
  Helpers.expect_committed "write with dead follower"
    (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 50));
  check Alcotest.(option int) "live follower has it" (Some 50) (value_at c 1 1);
  Helpers.expect_invariants c

let follower_dies_mid_commit () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 1);
  let n0 = Cluster.node c 0 in
  Node.run_write n0 ~thread:0
    ~body:(fun ctx commit ->
      Node.read_write ctx 1 (fun _ -> Value.of_int 77) (fun _ -> commit ()))
    (fun _ -> ());
  ignore (Engine.schedule (Cluster.engine c) ~after:5.0 (fun () -> Cluster.kill c 2));
  Helpers.drain c ~max_us:300_000.0;
  check Alcotest.int "no stuck slots" 0 (Com.Agent.inflight (Node.commit_agent n0));
  check Alcotest.(option int) "survivor replicated" (Some 77) (value_at c 1 1);
  Helpers.expect_invariants c

let created_objects_replicate () =
  let c = Helpers.default_cluster () in
  let n0 = Cluster.node c 0 in
  Node.run_write n0 ~thread:0
    ~body:(fun ctx commit ->
      Node.insert ctx 42 (Value.of_int 4242);
      commit ())
    (fun o -> Helpers.expect_committed "insert" o);
  Helpers.drain c;
  (* readers got installed by the R-INV *)
  check Alcotest.(option int) "reader 1" (Some 4242) (value_at c 1 42);
  check Alcotest.(option int) "reader 2" (Some 4242) (value_at c 2 42);
  Helpers.expect_invariants c

let freed_objects_disappear_everywhere () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  let n0 = Cluster.node c 0 in
  Node.run_write n0 ~thread:0
    ~body:(fun ctx commit -> Node.delete ctx 1 (fun () -> commit ()))
    (fun o -> Helpers.expect_committed "delete" o);
  Helpers.drain c;
  List.iter
    (fun n ->
      check Alcotest.bool (Printf.sprintf "gone at %d" n) false
        (Table.mem (Node.table (Cluster.node c n)) 1))
    [ 0; 1; 2 ]

let stored_invs_are_discarded () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  for i = 1 to 10 do
    Helpers.expect_committed "w" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int i))
  done;
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "no retained R-INVs at %d" n)
        0
        (Com.Agent.stored_invs (Node.commit_agent (Cluster.node c n))))
    [ 1; 2 ]

(* ---- deterministic clear-mark unit tests: drive Com.Core directly ------- *)

module CC = Com.Core
module M = Com.Messages

let pipe0 = { M.node = 0; thread = 0 }
let tx slot = { M.pipe = pipe0; slot }

let upd slot =
  { Zeus_store.Txn.key = 1; version = slot + 1; data = Value.empty; freed = false }

let env ?(epoch = 0) () = { CC.epoch; live = [| true; true; true |]; trace_on = false }

let deliver ?epoch st payload =
  CC.handle st (CC.Deliver { src = 0; payload; env = env ?epoch () })

let inv ?(prev_val = false) ?(epoch = 0) slot =
  M.R_inv
    {
      tx = tx slot;
      epoch;
      followers = [ 1 ];
      writes = [ upd slot ];
      prev_val;
      replay = false;
    }

let rval ?(upto = -1) ?(epoch = 0) slot = M.R_val { tx = tx slot; upto; epoch }

let count_acks effs =
  List.length
    (List.filter (function CC.Send { payload = M.R_ack _; _ } -> true | _ -> false) effs)

let has_validate_stored effs =
  List.exists (function CC.Validate_stored _ -> true | _ -> false) effs

let overtaking_val_is_adopted () =
  (* the seeded deadlock, at the unit level: an extra-val R-VAL for slot 0
     reaches a follower with no state for the pipe, then the pipe's first
     R-INV (slot 1, open predecessor) lands.  Sequenced adopts the VAL, so
     the INV finds its predecessor cleared and applies immediately. *)
  let st = CC.create ~self:1 ~nodes:3 () in
  let st, _ = deliver st (rval ~upto:0 0) in
  let st, effs = deliver st (inv 1) in
  check Alcotest.int "ack sent" 1 (count_acks effs);
  check Alcotest.int "nothing buffered" 0 (CC.buffered_invs st)

let legacy_drops_overtaking_val () =
  (* same delivery order under the Legacy compat knob: the unknown-pipe VAL
     is dropped and the first INV wedges — the pinned negative control. *)
  let st = CC.create ~clear_marks:CC.Legacy ~self:1 ~nodes:3 () in
  let st, _ = deliver st (rval ~upto:0 0) in
  let st, effs = deliver st (inv 1) in
  check Alcotest.int "no ack" 0 (count_acks effs);
  check Alcotest.int "INV wedged" 1 (CC.buffered_invs st)

let stale_incarnation_val_is_fenced () =
  (* a VAL from a fenced-and-reset incarnation (older epoch, unknown pipe)
     must not resurrect pipe state: adoption is refused, so the INV that
     follows still waits for a legitimate clear mark. *)
  let st = CC.create ~self:1 ~nodes:3 () in
  let st, _ = deliver ~epoch:1 st (rval ~upto:0 ~epoch:0 0) in
  let st, _ = deliver ~epoch:1 st (inv ~epoch:1 1) in
  check Alcotest.int "stale VAL ignored, INV buffered" 1 (CC.buffered_invs st)

let upto_watermark_clears_unseen_slots () =
  (* VAL(3, upto = 2) vouches for slots this follower never saw: a later
     INV(4) with an open predecessor applies without buffering. *)
  let st = CC.create ~self:1 ~nodes:3 () in
  let st, effs0 = deliver st (inv 0) in
  check Alcotest.int "slot 0 acked" 1 (count_acks effs0);
  let st, _ = deliver st (rval ~upto:2 3) in
  let st, effs = deliver st (inv 4) in
  check Alcotest.int "slot 4 acked" 1 (count_acks effs);
  check Alcotest.int "nothing buffered" 0 (CC.buffered_invs st)

let unvouched_gap_still_buffers () =
  (* soundness half: the VAL's own slot is a mark, not a watermark jump —
     slots in (upto, slot) stay uncleared, so an INV behind the gap buffers
     until a voucher for its predecessor arrives. *)
  let st = CC.create ~self:1 ~nodes:3 () in
  let st, _ = deliver st (rval ~upto:0 3) in
  let st, _ = deliver st (inv 2) in
  check Alcotest.int "gap INV buffered" 1 (CC.buffered_invs st);
  (* the voucher arrives: VAL(1) clears the predecessor and drains *)
  let st, effs = deliver st (rval ~upto:1 1) in
  check Alcotest.int "drained on voucher" 1 (count_acks effs);
  check Alcotest.int "buffer empty" 0 (CC.buffered_invs st)

let val_validates_stored_inv () =
  let st = CC.create ~self:1 ~nodes:3 () in
  let st, _ = deliver st (inv 0) in
  check Alcotest.int "stored until validated" 1 (CC.stored_invs st);
  let st, effs = deliver st (rval ~upto:0 0) in
  check Alcotest.bool "Validate_stored emitted" true (has_validate_stored effs);
  check Alcotest.int "stored discarded" 0 (CC.stored_invs st)

let suite =
  [
    tc "replicates to all followers" replicates_to_followers;
    tc "multi-object transaction is atomic" multi_object_atomic;
    tc "pipelining never blocks the thread (§5.2)" pipelining_does_not_block;
    tc "pipeline order preserved under reordering" followers_apply_in_pipeline_order;
    tc "partial-stream followers (prev-VAL, §5.2)" partial_stream_follower;
    tc "version-monotonic application" version_monotonic_apply;
    tc "coordinator crash: followers replay (§5.1)" coordinator_dies_followers_replay;
    tc "coordinator crash mid-pipeline burst" pipeline_crash_replay_burst;
    tc "dead follower does not block commits" follower_dies_commit_completes;
    tc "follower dies mid-commit" follower_dies_mid_commit;
    tc "created objects replicate to readers" created_objects_replicate;
    tc "freed objects disappear everywhere" freed_objects_disappear_everywhere;
    tc "R-INVs discarded after validation" stored_invs_are_discarded;
    tc "clear marks: overtaking VAL adopted (unit)" overtaking_val_is_adopted;
    tc "clear marks: legacy drops overtaking VAL (unit)" legacy_drops_overtaking_val;
    tc "clear marks: stale-incarnation VAL fenced (unit)" stale_incarnation_val_is_fenced;
    tc "clear marks: upto watermark clears unseen slots (unit)"
      upto_watermark_clears_unseen_slots;
    tc "clear marks: unvouched gap still buffers (unit)" unvouched_gap_still_buffers;
    tc "clear marks: VAL validates stored R-INV (unit)" val_validates_stored_inv;
  ]
