(* Property-based tests (qcheck): randomized operation schedules and fault
   injections, checked against the paper's invariants. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Replicas = Zeus_store.Replicas
module W = Zeus_workload

let qtest = QCheck_alcotest.to_alcotest

(* ---------- pure-structure properties ---------- *)

let prop_replicas_promote_keeps_membership =
  QCheck.Test.make ~name:"replicas: promote preserves old members" ~count:300
    QCheck.(pair (int_bound 7) (list_of_size Gen.(0 -- 5) (int_bound 7)))
    (fun (new_owner, readers) ->
      let r = Replicas.v ~owner:0 ~readers in
      let r' = Replicas.promote r ~new_owner in
      Replicas.is_owner r' new_owner
      && List.for_all (fun m -> List.mem m (Replicas.all r')) (Replicas.all r))

let prop_replicas_drop_dead_subset =
  QCheck.Test.make ~name:"replicas: drop_dead removes exactly the dead" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 6) (int_bound 9)) (int_bound 9))
    (fun (readers, dead) ->
      let r = Replicas.v ~owner:0 ~readers in
      let r' = Replicas.drop_dead r ~live:(fun n -> n <> dead) in
      (not (List.mem dead (Replicas.all r')))
      && List.for_all
           (fun m -> m = dead || List.mem m (Replicas.all r'))
           (Replicas.all r))

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value: of_ints/to_ints roundtrip" ~count:300
    QCheck.(list_of_size Gen.(0 -- 10) int)
    (fun ints -> Value.to_ints (Value.of_ints ints) = ints)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"stats: percentile within [min,max]" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (values, p) ->
      let a = Array.of_list values in
      Array.sort compare a;
      let v = Zeus_sim.Stats.percentile_of_sorted a p in
      v >= a.(0) && v <= a.(Array.length a - 1))

(* ---------- cluster-level randomized schedules ---------- *)

(* A compact schedule: per step, who does what to which key, plus an
   optional crash point.  Running it must preserve all invariants. *)
type op = Write of int * int | Read of int * int | Migrate of int * int

let op_gen ~nodes ~keys =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun n k -> Write (n mod nodes, k mod keys)) nat nat);
        (3, map2 (fun n k -> Read (n mod nodes, k mod keys)) nat nat);
        (1, map2 (fun n k -> Migrate (n mod nodes, k mod keys)) nat nat);
      ])

let schedule_gen =
  QCheck.Gen.(
    let* ops = list_size (5 -- 60) (op_gen ~nodes:3 ~keys:8) in
    let* crash = opt (0 -- 2) in
    let* seed = 1 -- 1_000_000 in
    return (ops, crash, seed))

let print_schedule (ops, crash, seed) =
  Printf.sprintf "ops=%d crash=%s seed=%d" (List.length ops)
    (match crash with Some n -> string_of_int n | None -> "-")
    seed

(* Run the ops with at most one in-flight operation per node (the API's
   contract: a worker thread runs one transaction at a time), interleaving
   across nodes. *)
let schedule_ops c ops crash =
  let engine = Cluster.engine c in
  let per_node = Array.make 3 [] in
  List.iter
    (fun op ->
      let n = match op with Write (n, _) | Read (n, _) | Migrate (n, _) -> n in
      per_node.(n) <- op :: per_node.(n))
    ops;
  Array.iteri
    (fun n ops ->
      let ops = List.rev ops in
      let node = Cluster.node c n in
      let rec run = function
        | [] -> ()
        | op :: rest ->
          let next () =
            ignore (Engine.schedule engine ~after:2.0 (fun () -> run rest))
          in
          if not (Node.is_alive node) then ()
          else begin
            match op with
            | Write (_, k) ->
              Node.run_write node ~thread:0
                ~body:(fun ctx commit ->
                  Node.read_write ctx k
                    (fun v -> Value.of_int (Value.to_int v + 1))
                    (fun _ -> commit ()))
                (fun _ -> next ())
            | Read (_, k) ->
              Node.run_read node ~thread:1
                ~body:(fun ctx commit -> Node.read ctx k (fun _ -> commit ()))
                (fun _ -> next ())
            | Migrate (_, k) -> Node.acquire_ownership node k (fun _ -> next ())
          end
      in
      ignore (Engine.schedule engine ~after:(1.0 +. float_of_int n) (fun () -> run ops)))
    per_node;
  match crash with
  | Some victim ->
    ignore
      (Engine.schedule engine
         ~after:(10.0 +. (3.0 *. float_of_int (List.length ops) /. 2.0))
         (fun () -> Cluster.kill c victim))
  | None -> ()

let run_schedule (ops, crash, seed) =
  let c = Helpers.default_cluster ~seed:(Int64.of_int seed) () in
  for k = 0 to 7 do
    Cluster.populate c ~key:k ~owner:(k mod 3) (Value.of_int 0)
  done;
  schedule_ops c ops crash;
  Helpers.drain c ~max_us:5_000_000.0;
  match Cluster.check_invariants c with
  | Ok () -> true
  | Error msg ->
    QCheck.Test.fail_reportf "invariants: %s" msg

let prop_random_schedules_safe =
  QCheck.Test.make ~name:"cluster: random schedules preserve invariants" ~count:40
    (QCheck.make ~print:print_schedule schedule_gen)
    run_schedule

let prop_random_fault_schedules_safe =
  let gen =
    QCheck.Gen.(
      let* base = schedule_gen in
      let* loss = 0 -- 8 in
      return (base, loss))
  in
  QCheck.Test.make ~name:"cluster: random schedules + lossy network" ~count:25
    (QCheck.make
       ~print:(fun (b, loss) -> Printf.sprintf "%s loss=%d%%" (print_schedule b) loss)
       gen)
    (fun ((ops, crash, seed), loss) ->
      let fabric =
        {
          Zeus_net.Fabric.default_config with
          Zeus_net.Fabric.loss_prob = float_of_int loss /. 100.0;
          dup_prob = 0.02;
          delay_prob = 0.2;
        }
      in
      let c = Helpers.default_cluster ~fabric ~seed:(Int64.of_int seed) () in
      for k = 0 to 7 do
        Cluster.populate c ~key:k ~owner:(k mod 3) (Value.of_int 0)
      done;
      schedule_ops c ops crash;
      Helpers.drain c ~max_us:8_000_000.0;
      match Cluster.check_invariants c with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "invariants: %s" msg)

(* Concurrent acquires from every node: exactly one owner at quiescence,
   whatever the interleaving. *)
let prop_single_owner_under_contention =
  QCheck.Test.make ~name:"ownership: single owner under random contention" ~count:30
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 5))
    (fun (seed, requesters) ->
      let c = Helpers.default_cluster ~nodes:6 ~seed:(Int64.of_int seed) () in
      Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
      let engine = Cluster.engine c in
      let rng = Engine.fork_rng engine in
      for i = 1 to requesters do
        ignore
          (Engine.schedule engine
             ~after:(Zeus_sim.Rng.float rng 10.0)
             (fun () -> Node.acquire_ownership (Cluster.node c i) 1 (fun _ -> ())))
      done;
      Helpers.drain c ~max_us:3_000_000.0;
      let owners =
        List.filter
          (fun i -> Node.role (Cluster.node c i) 1 = Some Zeus_store.Types.Owner)
          [ 0; 1; 2; 3; 4; 5 ]
      in
      List.length owners = 1)

(* Increment counters from several nodes; the final value must equal the
   number of committed increments (no lost updates through migrations). *)
let prop_no_lost_updates =
  QCheck.Test.make ~name:"txn: no lost updates across migrations" ~count:25
    QCheck.(pair (int_range 1 1_000_000) (int_range 5 30))
    (fun (seed, increments) ->
      let c = Helpers.default_cluster ~seed:(Int64.of_int seed) () in
      Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
      let engine = Cluster.engine c in
      let rng = Engine.fork_rng engine in
      let committed = ref 0 in
      (* each node runs its share of increments sequentially; nodes race
         with each other through ownership migration *)
      for node = 0 to 2 do
        let mine = (increments + node) / 3 in
        let rec chain i =
          if i < mine then
            ignore
              (Engine.schedule engine
                 ~after:(Zeus_sim.Rng.float rng 10.0)
                 (fun () ->
                   Node.run_write (Cluster.node c node) ~thread:0
                     ~body:(fun ctx commit ->
                       Node.read_write ctx 1
                         (fun v -> Value.of_int (Value.to_int v + 1))
                         (fun _ -> commit ()))
                     (fun o ->
                       if o = Zeus_store.Txn.Committed then incr committed;
                       chain (i + 1))))
        in
        chain 0
      done;
      Helpers.drain c ~max_us:5_000_000.0;
      match Helpers.read_value c 0 1 with
      | Some v -> v = !committed
      | None -> false)

let suite =
  [
    qtest prop_replicas_promote_keeps_membership;
    qtest prop_replicas_drop_dead_subset;
    qtest prop_value_roundtrip;
    qtest prop_percentile_within_range;
    qtest prop_random_schedules_safe;
    qtest prop_random_fault_schedules_safe;
    qtest prop_single_owner_under_contention;
    qtest prop_no_lost_updates;
  ]
