(* Telemetry layer: typed metrics (bucketing, percentile edge cases),
   trace spans (nesting, ordering, idempotent finish, drop accounting),
   exporter JSON validity, and an end-to-end Smallbank trace check. *)

module Metrics = Zeus_telemetry.Metrics
module Trace = Zeus_telemetry.Trace
module Jsonv = Zeus_telemetry.Jsonv
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module W = Zeus_workload

let tc = Helpers.tc
let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---- histogram bucketing ---- *)

let bucket_index_bounds () =
  let h = Metrics.Histogram.create ~lo:1.0 ~decades:3 ~per_decade:5 "t" in
  (* Every in-range value must land in a bucket whose [lo, hi) contains it. *)
  List.iter
    (fun v ->
      let i = Metrics.Histogram.index h v in
      let lo = Metrics.Histogram.bucket_lo h i in
      let hi = Metrics.Histogram.bucket_hi h i in
      if not (lo <= v && v < hi) then
        Alcotest.failf "value %g in bucket %d [%g, %g)" v i lo hi)
    [ 1.0; 1.5; 2.0; 9.99; 10.0; 123.0; 999.0 ];
  (* Below [lo] is underflow (index 0 with bucket_lo 0); past the top
     decade is overflow (bucket_hi infinite). *)
  let u = Metrics.Histogram.index h 0.5 in
  check Alcotest.int "underflow index" 0 u;
  checkf "underflow lo" 0.0 (Metrics.Histogram.bucket_lo h u);
  let o = Metrics.Histogram.index h 5_000.0 in
  check Alcotest.bool "overflow hi is inf" true
    (Metrics.Histogram.bucket_hi h o = infinity);
  check Alcotest.int "nan index" (-1) (Metrics.Histogram.index h nan)

let bucket_index_monotone () =
  let h = Metrics.Histogram.create ~lo:0.01 ~decades:8 ~per_decade:5 "t" in
  let prev = ref (-1) in
  let v = ref 0.005 in
  while !v < 1.0e7 do
    let i = Metrics.Histogram.index h !v in
    if i < !prev then Alcotest.failf "index not monotone at %g" !v;
    prev := i;
    v := !v *. 1.07
  done

let bucketed_percentile_close () =
  let h = Metrics.Histogram.create ~lo:0.01 ~decades:8 ~per_decade:5 "t" in
  for i = 1 to 1_000 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  List.iter
    (fun p ->
      let exact = Metrics.Histogram.percentile h p in
      let est = Metrics.Histogram.percentile_bucketed h p in
      (* A 5-per-decade log bucket spans a factor of 10^(1/5) ~ 1.58; the
         estimate must stay within one bucket of the exact value. *)
      if est < exact /. 1.6 || est > exact *. 1.6 then
        Alcotest.failf "p%g: bucketed %g vs exact %g" p est exact)
    [ 10.0; 50.0; 90.0; 99.0 ];
  let total =
    List.fold_left
      (fun acc (_, _, n) -> acc + n)
      0
      (Metrics.Histogram.nonzero_buckets h)
  in
  check Alcotest.int "bucket counts sum to observations" 1_000 total

(* ---- percentile edge cases ---- *)

let percentile_edges () =
  let h = Metrics.Histogram.create "t" in
  check Alcotest.bool "empty p50 is nan" true
    (Float.is_nan (Metrics.Histogram.percentile h 50.0));
  check Alcotest.bool "empty mean is nan" true
    (Float.is_nan (Metrics.Histogram.mean h));
  Metrics.Histogram.observe h 7.0;
  checkf "single p0" 7.0 (Metrics.Histogram.percentile h 0.0);
  checkf "single p50" 7.0 (Metrics.Histogram.percentile h 50.0);
  checkf "single p100" 7.0 (Metrics.Histogram.percentile h 100.0);
  Metrics.Histogram.observe h 1.0;
  Metrics.Histogram.observe h 3.0;
  checkf "p0 is min" 1.0 (Metrics.Histogram.percentile h 0.0);
  checkf "p100 is max" 7.0 (Metrics.Histogram.percentile h 100.0);
  (* NaN observations are dropped, not poisoning the distribution. *)
  Metrics.Histogram.observe h nan;
  check Alcotest.int "nan dropped from count" 3 (Metrics.Histogram.count h);
  check Alcotest.bool "p50 still finite" true
    (Float.is_finite (Metrics.Histogram.percentile h 50.0))

let registry_idempotent () =
  let m = Metrics.create () in
  let a = Metrics.Counter.v m "c" in
  let b = Metrics.Counter.v m "c" in
  Metrics.Counter.incr a;
  Metrics.Counter.incr ~by:2 b;
  check Alcotest.int "same cell" 3 (Metrics.Counter.get a);
  check
    Alcotest.(list (pair string int))
    "one registered counter" [ ("c", 3) ] (Metrics.counters m);
  let h1 = Metrics.Histogram.v m "h" in
  let h2 = Metrics.Histogram.v m "h" in
  Metrics.Histogram.observe h1 1.0;
  Metrics.Histogram.observe h2 2.0;
  check Alcotest.int "same histogram" 2 (Metrics.Histogram.count h1)

(* ---- trace spans ---- *)

let manual_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun t -> now := t)

let span_nesting_and_ordering () =
  let now, set = manual_clock () in
  let tr = Trace.create ~enabled:true ~now () in
  set 10.0;
  let root = Trace.start_span tr ~cat:"txn" ~pid:0 ~tid:1 "txn" in
  set 12.0;
  let child = Trace.start_span tr ~cat:"txn" ~pid:0 ~tid:1 ~parent:root "own" in
  set 15.0;
  Trace.finish tr child;
  Trace.complete tr ~cat:"txn" ~pid:0 ~tid:1 ~parent:root ~start:15.0 ~stop:18.0
    "exec";
  set 20.0;
  Trace.finish tr ~args:[ ("result", "committed") ] root;
  check Alcotest.int "three spans" 3 (Trace.count tr);
  let roots = Trace.roots tr in
  check Alcotest.int "one root" 1 (List.length roots);
  let r = List.hd roots in
  checkf "root start" 10.0 r.Trace.start;
  checkf "root stop" 20.0 r.Trace.stop;
  check
    Alcotest.(option string)
    "root args" (Some "committed")
    (List.assoc_opt "result" r.Trace.args);
  (match Trace.children tr r with
  | [ a; b ] ->
    check Alcotest.string "children sorted by start" "own" a.Trace.name;
    check Alcotest.string "second child" "exec" b.Trace.name;
    check Alcotest.bool "nested in root" true
      (r.Trace.start <= a.Trace.start && b.Trace.stop <= r.Trace.stop)
  | kids -> Alcotest.failf "expected 2 children, got %d" (List.length kids));
  (* [spans] comes back sorted by start time. *)
  let starts = List.map (fun s -> s.Trace.start) (Trace.spans tr) in
  check Alcotest.bool "spans sorted" true (List.sort compare starts = starts)

let finish_idempotent () =
  let now, set = manual_clock () in
  let tr = Trace.create ~enabled:true ~now () in
  let sp = Trace.start_span tr ~cat:"c" ~pid:0 "s" in
  set 5.0;
  Trace.finish tr sp;
  set 9.0;
  Trace.finish tr sp;
  (* The late duplicate must not move the recorded stop. *)
  checkf "first finish wins" 5.0 sp.Trace.stop

let disabled_trace_is_null () =
  let tr = Trace.create ~now:(fun () -> 0.0) () in
  let sp = Trace.start_span tr ~cat:"c" ~pid:0 "s" in
  check Alcotest.bool "null span" true (Trace.is_null sp);
  Trace.finish tr sp;
  Trace.complete tr ~cat:"c" ~pid:0 ~start:0.0 ~stop:1.0 "x";
  check Alcotest.int "nothing recorded" 0 (Trace.count tr)

let max_spans_drops () =
  let tr = Trace.create ~enabled:true ~max_spans:2 ~now:(fun () -> 0.0) () in
  for i = 0 to 4 do
    Trace.complete tr ~cat:"c" ~pid:0 ~start:0.0 ~stop:1.0 (string_of_int i)
  done;
  check Alcotest.int "capped" 2 (Trace.count tr);
  check Alcotest.int "drops counted" 3 (Trace.dropped tr)

(* ---- exporters ---- *)

let chrome_export_parses () =
  let now, set = manual_clock () in
  let tr = Trace.create ~enabled:true ~now () in
  let root = Trace.start_span tr ~cat:"txn" ~pid:0 "txn \"quoted\"\n" in
  set 3.5;
  Trace.finish tr root;
  let s = Trace.to_chrome_string tr in
  match Jsonv.parse s with
  | Error e -> Alcotest.failf "chrome export unparseable: %s" e
  | Ok v -> (
    match Option.bind (Jsonv.member "traceEvents" v) Jsonv.to_list with
    | None -> Alcotest.fail "no traceEvents array"
    | Some events ->
      (* span + process-name metadata; the escaped name survives a round
         trip through the JSON reader. *)
      check Alcotest.bool "at least span + metadata" true (List.length events >= 2);
      let names =
        List.filter_map (fun e -> Option.bind (Jsonv.member "name" e) Jsonv.to_string) events
      in
      check Alcotest.bool "escaped name round-trips" true
        (List.mem "txn \"quoted\"\n" names))

let jsonl_export_parses () =
  let tr = Trace.create ~enabled:true ~now:(fun () -> 1.0) () in
  Trace.complete tr ~cat:"c" ~pid:0 ~args:[ ("k", "v") ] ~start:1.0 ~stop:2.0 "a";
  Trace.complete tr ~cat:"c" ~pid:1 ~start:2.0 ~stop:3.0 "b";
  let lines =
    String.split_on_char '\n' (String.trim (Trace.to_jsonl_string tr))
  in
  check Alcotest.int "one line per span" 2 (List.length lines);
  List.iter
    (fun l ->
      match Jsonv.parse l with
      | Error e -> Alcotest.failf "bad jsonl line %S: %s" l e
      | Ok v ->
        check Alcotest.bool "has name" true (Jsonv.member "name" v <> None))
    lines

(* ---- end to end: Smallbank under tracing ---- *)

(* Deterministic small run; every committed transaction must carry the
   ownership -> execute -> replicate phase decomposition with monotone,
   nested sim-time bounds (the zeus_cli trace acceptance check, in-tree). *)
let smallbank_phases () =
  let nodes = 3 in
  let config = { Config.default with Config.nodes; record_history = false } in
  let cluster = Cluster.create ~config ~tracing:true () in
  let rng = Zeus_sim.Engine.fork_rng (Cluster.engine cluster) in
  let w = W.Smallbank.create ~accounts_per_node:200 ~nodes ~remote_frac:0.0 rng in
  Cluster.populate_n cluster ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  let r =
    W.Driver.run cluster ~warmup_us:200.0 ~duration_us:1_000.0
      ~issue:(fun node ~thread ~seq:_ done_ ->
        W.Spec.run_on_zeus node ~thread
          (W.Smallbank.gen w ~home:(Zeus_core.Node.id node))
          (fun o -> done_ (o = Zeus_store.Txn.Committed)))
      ()
  in
  check Alcotest.bool "committed some" true (r.W.Driver.committed > 50);
  let tr = Cluster.trace cluster in
  check Alcotest.int "no dropped spans" 0 (Trace.dropped tr);
  let all = Trace.spans tr in
  let by_parent = Hashtbl.create 1024 in
  List.iter
    (fun (sp : Trace.span) ->
      if sp.Trace.parent >= 0 then
        Hashtbl.replace by_parent sp.Trace.parent
          (sp :: Option.value ~default:[] (Hashtbl.find_opt by_parent sp.Trace.parent)))
    all;
  let committed_roots =
    List.filter
      (fun (sp : Trace.span) ->
        sp.Trace.parent < 0
        && sp.Trace.name = "txn"
        && List.assoc_opt "result" sp.Trace.args = Some "committed")
      all
  in
  check Alcotest.bool "committed txns traced" true (committed_roots <> []);
  List.iter
    (fun (root : Trace.span) ->
      let kids = Option.value ~default:[] (Hashtbl.find_opt by_parent root.Trace.id) in
      let find n = List.find_opt (fun (k : Trace.span) -> k.Trace.name = n) kids in
      match (find "ownership", find "execute", find "replicate") with
      | Some o, Some e, Some r ->
        let ok =
          root.Trace.start <= o.Trace.start
          && o.Trace.start <= o.Trace.stop
          && o.Trace.stop <= e.Trace.start
          && e.Trace.start <= e.Trace.stop
          && e.Trace.stop <= r.Trace.start
          && r.Trace.start <= r.Trace.stop
          && r.Trace.stop <= root.Trace.stop
        in
        if not ok then
          Alcotest.failf "txn span %d: phases not monotone/nested" root.Trace.id
      | _ -> Alcotest.failf "txn span %d: missing phase spans" root.Trace.id)
    committed_roots;
  (* The shared phase histograms fed from the same places the spans did. *)
  let hm = Zeus_telemetry.Hub.metrics (Cluster.telemetry cluster) in
  let e2e = Metrics.Histogram.v hm "txn.e2e_us" in
  check Alcotest.bool "e2e histogram populated" true
    (Metrics.Histogram.count e2e >= List.length committed_roots)

let suite =
  [
    tc "histogram: bucket index bounds" bucket_index_bounds;
    tc "histogram: bucket index monotone" bucket_index_monotone;
    tc "histogram: bucketed percentile near exact" bucketed_percentile_close;
    tc "histogram: percentile edge cases" percentile_edges;
    tc "metrics: registration idempotent" registry_idempotent;
    tc "trace: span nesting and ordering" span_nesting_and_ordering;
    tc "trace: finish idempotent" finish_idempotent;
    tc "trace: disabled is free" disabled_trace_is_null;
    tc "trace: max_spans drop accounting" max_spans_drops;
    tc "trace: chrome export parses" chrome_export_parses;
    tc "trace: jsonl export parses" jsonl_export_parses;
    tc "integration: smallbank phase spans" smallbank_phases;
  ]
