(* Integration tests: whole-cluster runs mixing workloads, network fault
   injection and crash-stop failures, checked against the paper's
   invariants and the serializability history checker. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module History = Zeus_core.History
module Value = Zeus_store.Value
module W = Zeus_workload

let tc = Helpers.tc
let check = Alcotest.check

(* Fault injection goes through a declarative chaos schedule (printable and
   replayable), not hand-rolled engine callbacks. *)
let crash_at c ~at_us node =
  let module S = Zeus_chaos.Schedule in
  ignore
    (Zeus_chaos.Nemesis.attach c
       (S.v
          ~name:(Printf.sprintf "crash-n%d" node)
          [ { S.at_us; fault = S.Crash node } ]))

let mixed_workload_setup ?(nodes = 3) ?(keys = 40) ?fabric ?(seed = 42L) () =
  let c = Helpers.default_cluster ~nodes ?fabric ~seed () in
  for k = 0 to keys - 1 do
    Cluster.populate c ~key:k ~owner:(k mod nodes) (Value.of_int 0)
  done;
  c

let drive c ~keys ~txns_per_thread ~threads =
  let n = Cluster.nodes c in
  let engine = Cluster.engine c in
  let rng = Engine.fork_rng engine in
  let completed = ref 0 in
  for home = 0 to n - 1 do
    for thread = 0 to threads - 1 do
      let node = Cluster.node c home in
      let rec loop i =
        if i < txns_per_thread && Node.is_alive node then begin
          let ro = Zeus_sim.Rng.chance rng 0.3 in
          let key () = Zeus_sim.Rng.int rng keys in
          let spec =
            if ro then W.Spec.read_txn [ key () ]
            else if Zeus_sim.Rng.chance rng 0.5 then W.Spec.write_txn [ key () ]
            else W.Spec.write_txn [ key (); key () ]
          in
          W.Spec.run_on_zeus node ~thread spec (fun _ ->
              incr completed;
              loop (i + 1))
        end
      in
      ignore
        (Engine.schedule engine
           ~after:(0.1 *. float_of_int ((home * threads) + thread))
           (fun () -> loop 0))
    done
  done;
  completed

let healthy_cluster_serializable () =
  let c = mixed_workload_setup () in
  let completed = drive c ~keys:40 ~txns_per_thread:30 ~threads:4 in
  Helpers.drain c ~max_us:2_000_000.0;
  check Alcotest.bool "made progress" true (!completed > 200);
  Helpers.expect_invariants c

let contended_hot_keys () =
  (* every node hammers the same three keys: heavy ownership migration *)
  let c = mixed_workload_setup ~keys:3 () in
  let completed = drive c ~keys:3 ~txns_per_thread:25 ~threads:3 in
  Helpers.drain c ~max_us:5_000_000.0;
  check Alcotest.bool "made progress" true (!completed > 100);
  Helpers.expect_invariants c

let lossy_network () =
  let fabric =
    {
      Zeus_net.Fabric.default_config with
      Zeus_net.Fabric.loss_prob = 0.05;
      dup_prob = 0.05;
      delay_prob = 0.3;
      delay_extra_us = 20.0;
    }
  in
  let c = mixed_workload_setup ~fabric () in
  let completed = drive c ~keys:40 ~txns_per_thread:20 ~threads:3 in
  Helpers.drain c ~max_us:5_000_000.0;
  check Alcotest.bool "progress despite faults" true (!completed > 100);
  Helpers.expect_invariants c

let crash_during_load () =
  let c = mixed_workload_setup ~keys:30 () in
  let completed = drive c ~keys:30 ~txns_per_thread:40 ~threads:3 in
  crash_at c ~at_us:120.0 2;
  Helpers.drain c ~max_us:5_000_000.0;
  check Alcotest.bool "survivors progressed" true (!completed > 100);
  Helpers.expect_invariants c

let crash_directory_member_during_load () =
  let c = mixed_workload_setup ~nodes:4 ~keys:30 () in
  let completed = drive c ~keys:30 ~txns_per_thread:30 ~threads:3 in
  crash_at c ~at_us:150.0 0;
  Helpers.drain c ~max_us:5_000_000.0;
  check Alcotest.bool "progress after directory loss" true (!completed > 80);
  Helpers.expect_invariants c

let crash_and_lossy_combined () =
  let fabric =
    { Zeus_net.Fabric.default_config with Zeus_net.Fabric.loss_prob = 0.03; dup_prob = 0.03 }
  in
  let c = mixed_workload_setup ~fabric ~keys:25 ~seed:99L () in
  let completed = drive c ~keys:25 ~txns_per_thread:30 ~threads:3 in
  crash_at c ~at_us:200.0 1;
  Helpers.drain c ~max_us:8_000_000.0;
  check Alcotest.bool "progress" true (!completed > 50);
  Helpers.expect_invariants c

let reads_never_see_torn_transfers () =
  (* transfers conserve a total; read-only transactions at any replica must
     always see the invariant sum *)
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 500);
  Cluster.populate c ~key:2 ~owner:0 (Value.of_int 500);
  let engine = Cluster.engine c in
  let rng = Engine.fork_rng engine in
  let bad = ref 0 and reads = ref 0 and writes = ref 0 in
  (* writer: transfers on node 0 *)
  let n0 = Cluster.node c 0 in
  let rec write_loop i =
    if i < 60 then begin
      let amount = 1 + Zeus_sim.Rng.int rng 10 in
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v - amount)) (fun _ ->
              Node.read_write ctx 2
                (fun v -> Value.of_int (Value.to_int v + amount))
                (fun _ -> commit ())))
        (fun o ->
          if o = Zeus_store.Txn.Committed then incr writes;
          write_loop (i + 1))
    end
  in
  ignore (Engine.schedule engine ~after:0.0 (fun () -> write_loop 0));
  (* readers on the two backups *)
  List.iter
    (fun reader ->
      let node = Cluster.node c reader in
      let rec read_loop i =
        if i < 80 then
          Node.run_read node ~thread:0
            ~body:(fun ctx commit ->
              Node.read ctx 1 (fun a ->
                  Node.read ctx 2 (fun b ->
                      commit ();
                      incr reads;
                      if Value.to_int a + Value.to_int b <> 1000 then incr bad)))
            (fun _ -> read_loop (i + 1))
      in
      ignore (Engine.schedule engine ~after:0.5 (fun () -> read_loop 0)))
    [ 1; 2 ];
  Helpers.drain c ~max_us:2_000_000.0;
  check Alcotest.bool "writers ran" true (!writes > 30);
  check Alcotest.bool "readers ran" true (!reads > 30);
  check Alcotest.int "no torn snapshot ever observed" 0 !bad;
  Helpers.expect_invariants c

let migration_under_write_load () =
  (* objects keep being written on node 0 while node 1 bulk-migrates them *)
  let c = mixed_workload_setup ~keys:20 () in
  let engine = Cluster.engine c in
  let completed = drive c ~keys:20 ~txns_per_thread:30 ~threads:2 in
  let migrated = ref 0 in
  ignore
    (Engine.schedule engine ~after:50.0 (fun () ->
         let n1 = Cluster.node c 1 in
         let rec go k =
           if k < 20 then
             Node.acquire_ownership n1 k (fun _ ->
                 incr migrated;
                 go (k + 1))
         in
         go 0));
  Helpers.drain c ~max_us:5_000_000.0;
  check Alcotest.int "migration finished" 20 !migrated;
  check Alcotest.bool "load progressed" true (!completed > 60);
  Helpers.expect_invariants c

let history_checked_under_faults () =
  let c = mixed_workload_setup ~keys:15 ~seed:1234L () in
  let _ = drive c ~keys:15 ~txns_per_thread:25 ~threads:2 in
  crash_at c ~at_us:180.0 2;
  Helpers.drain c ~max_us:5_000_000.0;
  match Cluster.history c with
  | Some h ->
    check Alcotest.bool "non-trivial history" true (History.writes h > 50);
    (match History.check h with
    | Ok () -> ()
    | Error e -> Alcotest.failf "history violation: %s" e)
  | None -> Alcotest.fail "history recording off"

let suite =
  [
    tc "healthy cluster: invariants + serializability" healthy_cluster_serializable;
    tc "hot-key ownership churn" contended_hot_keys;
    tc "lossy/duplicating/reordering network" lossy_network;
    tc "node crash during load" crash_during_load;
    tc "directory member crash during load" crash_directory_member_during_load;
    tc "crash + lossy network combined" crash_and_lossy_combined;
    tc "read-only snapshots never torn" reads_never_see_torn_transfers;
    tc "bulk migration under write load" migration_under_write_load;
    tc "history checker on faulty run" history_checked_under_faults;
  ]
