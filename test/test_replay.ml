(* Record/replay determinism of the sans-I/O protocol cores.

   The agents' I/O taps record every (input, effect list) pair a live
   cluster feeds its cores; replaying the recorded inputs into a fresh
   core must reproduce every effect list and the final canonical
   fingerprint.  This is the property that makes post-mortem replay
   debugging sound — a core's behaviour is a pure function of its input
   sequence, with no hidden dependence on the engine, transport or wall
   clock it happened to be wired to. *)

module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Txn = Zeus_store.Txn
module OwnA = Zeus_ownership.Agent
module OwnC = Zeus_ownership.Core
module ComA = Zeus_commit.Agent
module ComC = Zeus_commit.Core

let tc = Helpers.tc
let qtest = QCheck_alcotest.to_alcotest

(* ---------- recording from a live cluster --------------------------------- *)

(* Taps are attached before [populate] so the logs open with the seeding
   inputs a fresh core needs (Api_seed / Api_register). *)
let record_cluster () =
  let nodes = 3 in
  let c = Helpers.default_cluster ~nodes () in
  let own_logs = Array.init nodes (fun _ -> ref []) in
  let com_logs = Array.init nodes (fun _ -> ref []) in
  for i = 0 to nodes - 1 do
    OwnA.set_io_tap
      (Node.ownership_agent (Cluster.node c i))
      (fun input effs -> own_logs.(i) := (input, effs) :: !(own_logs.(i)));
    ComA.set_io_tap
      (Node.commit_agent (Cluster.node c i))
      (fun input effs -> com_logs.(i) := (input, effs) :: !(com_logs.(i)))
  done;
  for k = 0 to 5 do
    Cluster.populate c ~key:k ~owner:(k mod nodes) (Value.of_int 0)
  done;
  (* Local and remote writes: the remote ones force full ownership
     handovers, the multi-key ones multi-follower commit streams. *)
  List.iter
    (fun (node, keys) ->
      Helpers.expect_committed "recorded write"
        (Helpers.write_txn c node ~keys ~value:(Value.of_int 7)))
    [ (0, [ 0 ]); (1, [ 0 ]); (2, [ 1; 2 ]); (0, [ 3; 4 ]); (1, [ 5 ]); (2, [ 0; 5 ]) ];
  let finish l = List.rev !l in
  (c, Array.map finish own_logs, Array.map finish com_logs)

let check_steps name replayed recorded =
  List.iteri
    (fun step (effs', effs) ->
      if effs' <> effs then
        Alcotest.failf "%s: step %d diverged (%d effects replayed, %d recorded)" name
          step (List.length effs') (List.length effs))
    (List.combine replayed recorded)

let commit_agent_replay () =
  let c, _, com_logs = record_cluster () in
  let nodes = Cluster.nodes c in
  for i = 0 to nodes - 1 do
    let log = com_logs.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "n%d recorded commit traffic" i)
      true (log <> []);
    let fresh = ComC.create ~self:i ~nodes () in
    let replayed = List.map (fun (input, _) -> snd (ComC.handle fresh input)) log in
    check_steps (Printf.sprintf "commit n%d" i) replayed (List.map snd log);
    Alcotest.(check string)
      (Printf.sprintf "commit n%d final state" i)
      (ComA.core_fingerprint (Node.commit_agent (Cluster.node c i)))
      (ComC.fingerprint fresh)
  done

let ownership_agent_replay () =
  let c, own_logs, _ = record_cluster () in
  let nodes = Cluster.nodes c in
  let config = Cluster.config c in
  let dir key = Config.dir_nodes_for config ~key in
  for i = 0 to nodes - 1 do
    let log = own_logs.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "n%d recorded ownership traffic" i)
      true (log <> []);
    let fresh = OwnC.create ~config:config.Config.ownership ~self:i ~nodes () in
    let replayed = List.map (fun (input, _) -> snd (OwnC.handle ~dir fresh input)) log in
    check_steps (Printf.sprintf "ownership n%d" i) replayed (List.map snd log);
    Alcotest.(check string)
      (Printf.sprintf "ownership n%d final state" i)
      (OwnA.core_fingerprint (Node.ownership_agent (Cluster.node c i)))
      (OwnC.fingerprint fresh)
  done

(* ---------- qcheck: arbitrary commit schedules ---------------------------- *)

(* A closed-loop mini-interpreter (the Core_harness pattern): the
   coordinator pipelines a random schedule over object 0 (replicated on
   everyone) and object 1 (a partial stream), with the network drained at
   random points so stream shapes vary.  Every node's log must replay. *)

let nnodes = 3
let replicas_of k = if k = 0 then [ 0; 1; 2 ] else [ 0; 1 ]

let env = { ComC.epoch = 0; live = Array.make nnodes true; trace_on = false }

let run_schedule schedule =
  let cores = Array.init nnodes (fun i -> ComC.create ~self:i ~nodes:nnodes ()) in
  let logs = Array.init nnodes (fun _ -> ref []) in
  let net = Queue.create () in
  let feed i input =
    let _, effs = ComC.handle cores.(i) input in
    logs.(i) := (input, effs) :: !(logs.(i));
    List.iter
      (function
        | ComC.Send { dst; payload; _ } -> Queue.add (i, dst, payload) net
        | _ -> ())
      effs
  in
  let drain () =
    while not (Queue.is_empty net) do
      let src, dst, payload = Queue.pop net in
      feed dst (ComC.Deliver { src; payload; env })
    done
  in
  let vers = Array.make 2 0 in
  List.iter
    (fun (objs, drain_now) ->
      let updates =
        List.map
          (fun k ->
            vers.(k) <- vers.(k) + 1;
            { Txn.key = k; version = vers.(k); data = Value.empty; freed = false })
          objs
      in
      let replica_sets = List.map (fun (u : Txn.update) -> replicas_of u.Txn.key) updates in
      feed 0
        (ComC.Api_commit { thread = 0; updates; replica_sets; has_durable = false; env });
      if drain_now then drain ())
    schedule;
  drain ();
  (cores, Array.map (fun l -> List.rev !l) logs)

let schedule_gen =
  QCheck.(
    list_of_size
      Gen.(1 -- 6)
      (pair (oneofl [ [ 0 ]; [ 1 ]; [ 0; 1 ] ]) bool))

let commit_schedule_replays =
  QCheck.Test.make ~name:"commit core: any recorded schedule replays" ~count:100
    schedule_gen (fun schedule ->
      let cores, logs = run_schedule schedule in
      Array.to_list cores
      |> List.mapi (fun i core -> (i, core, logs.(i)))
      |> List.for_all (fun (i, core, log) ->
             let fresh = ComC.create ~self:i ~nodes:nnodes () in
             List.for_all
               (fun (input, effs) -> snd (ComC.handle fresh input) = effs)
               log
             && ComC.fingerprint fresh = ComC.fingerprint core))

let suite =
  [
    tc "commit cores replay from live-agent tap" commit_agent_replay;
    tc "ownership cores replay from live-agent tap" ownership_agent_replay;
    qtest commit_schedule_replays;
  ]
