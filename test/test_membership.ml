(* Tests for the lease-based membership service. *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module View = Zeus_membership.View
module Service = Zeus_membership.Service
module Detector = Zeus_membership.Detector

let tc = Helpers.tc
let check = Alcotest.check

let setup ?(nodes = 3) () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes Fabric.default_config in
  let t = Transport.create f in
  let m = Service.create ~lease_us:100.0 ~detect_us:50.0 ~skew_us:2.0 t in
  (e, f, m)

(* Detected-mode fixture: fast heartbeats and a short lease so the whole
   suspect -> lease -> install pipeline fits in a few hundred virtual µs. *)
let det_config =
  {
    Service.detector =
      {
        Detector.period_us = 50.0;
        phi_factor = 4.0;
        min_timeout_us = 200.0;
        max_timeout_us = 400.0;
        min_samples = 3;
      };
    rejoin_backoff_us = 400.0;
  }

let setup_detected ?(nodes = 4) () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes Fabric.default_config in
  let t = Transport.create f in
  let m =
    Service.create ~lease_us:300.0 ~detect_us:50.0 ~skew_us:2.0
      ~mode:Service.Detected ~detection:det_config t
  in
  (e, f, m)

let view_ops () =
  let v = View.initial ~nodes:3 in
  check Alcotest.int "epoch 0" 0 v.View.epoch;
  check Alcotest.(list int) "all live" [ 0; 1; 2 ] (View.live_list v);
  let v1 = View.without v 1 in
  check Alcotest.int "epoch bumps" 1 v1.View.epoch;
  check Alcotest.(list int) "1 dead" [ 0; 2 ] (View.live_list v1);
  check Alcotest.bool "is_live" false (View.is_live v1 1);
  let v2 = View.with_node v1 1 in
  check Alcotest.(list int) "rejoined" [ 0; 1; 2 ] (View.live_list v2);
  check Alcotest.int "epoch 2" 2 v2.View.epoch

let kill_updates_after_lease () =
  let e, f, m = setup () in
  Service.kill m 1;
  check Alcotest.bool "fabric crash immediate" false (Fabric.is_alive f 1);
  Engine.run ~until:100.0 e;
  check Alcotest.int "not yet (lease)" 0 (Service.view m).View.epoch;
  Engine.run ~until:400.0 e;
  check Alcotest.int "epoch bumped" 1 (Service.view m).View.epoch;
  check Alcotest.bool "view excludes" false (View.is_live (Service.view m) 1)

let nodes_get_view_with_skew () =
  let e, _, m = setup () in
  let seen = ref [] in
  Service.subscribe m 0 (fun v -> seen := v.View.epoch :: !seen);
  Service.subscribe m 2 (fun v -> seen := (100 + v.View.epoch) :: !seen);
  Service.kill m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.bool "node0 notified" true (List.mem 1 !seen);
  check Alcotest.bool "node2 notified" true (List.mem 101 !seen);
  check Alcotest.int "node epoch" 1 (Service.epoch_at m 0)

let dead_node_not_notified () =
  let e, _, m = setup () in
  let fired = ref false in
  Service.subscribe m 1 (fun _ -> fired := true);
  Service.kill m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.bool "dead node silent" false !fired

let rejoin_bumps_epoch () =
  let e, f, m = setup () in
  Service.kill m 1;
  Engine.run ~until:500.0 e;
  Service.rejoin m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.int "epoch 2" 2 (Service.view m).View.epoch;
  check Alcotest.bool "alive again" true (Fabric.is_alive f 1);
  check Alcotest.bool "in view" true (View.is_live (Service.view m) 1)

let two_kills_two_epochs () =
  let e, _, m = setup () in
  Service.kill m 1;
  Engine.run ~until:500.0 e;
  Service.kill m 2;
  Engine.run ~until:1_500.0 e;
  check Alcotest.int "epoch 2" 2 (Service.view m).View.epoch;
  check Alcotest.(list int) "only node0" [ 0 ] (View.live_list (Service.view m))

(* ---------- failure detector ---------------------------------------------- *)

let detector_grace_then_adapts () =
  let cfg =
    {
      Detector.default_config with
      Detector.period_us = 100.0;
      min_timeout_us = 150.0;
      max_timeout_us = 1_000.0;
      min_samples = 3;
    }
  in
  let d = Detector.create cfg ~node:0 ~nodes:2 ~now:0.0 in
  check (Alcotest.float 1e-6) "grace window: timeout at the cap" 1_000.0
    (Detector.timeout_us d ~peer:1);
  let now = ref 0.0 in
  for _ = 1 to 10 do
    now := !now +. 100.0;
    Detector.note_arrival d ~src:1 ~now:!now
  done;
  (* Regular 100 µs arrivals: zero deviation, so the timeout sits on the
     floor — well below the cap. *)
  check (Alcotest.float 1e-6) "steady arrivals: timeout on the floor" 150.0
    (Detector.timeout_us d ~peer:1);
  check Alcotest.bool "fresh traffic: not suspected" false
    (Detector.suspects d ~peer:1 ~now:!now);
  check Alcotest.bool "long silence: suspected" true
    (Detector.suspects d ~peer:1 ~now:(!now +. 1_200.0))

let detector_widens_under_jitter () =
  let cfg =
    {
      Detector.default_config with
      Detector.period_us = 100.0;
      min_timeout_us = 150.0;
      max_timeout_us = 1_000.0;
      min_samples = 3;
    }
  in
  let d = Detector.create cfg ~node:0 ~nodes:2 ~now:0.0 in
  let now = ref 0.0 in
  for i = 1 to 20 do
    (* Alternate 60/140 µs gaps: same mean, large deviation. *)
    now := !now +. (if i mod 2 = 0 then 140.0 else 60.0);
    Detector.note_arrival d ~src:1 ~now:!now
  done;
  let t = Detector.timeout_us d ~peer:1 in
  check Alcotest.bool "jitter widens the timeout above the floor" true (t > 150.0);
  check Alcotest.bool "but stays under the cap" true (t <= 1_000.0)

(* ---------- detected mode -------------------------------------------------- *)

let detected_fault_free_no_suspicions () =
  let e, _, m = setup_detected () in
  Engine.run ~until:5_000.0 e;
  let s = Service.det_stats m in
  check Alcotest.int "no suspicions without a fault" 0 s.Service.suspicions;
  check Alcotest.int "no false suspicions" 0 s.Service.false_suspicions;
  check Alcotest.int "no views installed" 0 s.Service.views_installed;
  check Alcotest.int "epoch still 0" 0 (Service.view m).View.epoch;
  check Alcotest.bool "heartbeats flowed" true (s.Service.heartbeats > 0)

let detected_crash_installs_within_bound () =
  let e, f, m = setup_detected () in
  Engine.run ~until:1_000.0 e;
  let fault_at = Engine.now e in
  Service.kill m 3;
  check Alcotest.bool "fabric crash immediate" false (Fabric.is_alive f 3);
  check Alcotest.int "no oracle announcement" 0 (Service.view m).View.epoch;
  let installed_at = ref None in
  Service.subscribe m 0 (fun v ->
      if !installed_at = None && not (View.is_live v 3) then
        installed_at := Some (Engine.now e));
  let bound = Service.detection_bound_us m in
  Engine.run ~until:(fault_at +. bound +. 100.0) e;
  (match !installed_at with
  | None -> Alcotest.fail "crash was never detected"
  | Some at ->
    check Alcotest.bool
      (Printf.sprintf "detected in %.0f us <= bound %.0f us" (at -. fault_at) bound)
      true
      (at -. fault_at <= bound));
  check Alcotest.bool "view excludes the crashed node" false
    (View.is_live (Service.view m) 3);
  let s = Service.det_stats m in
  check Alcotest.int "a real crash is not a false suspicion" 0
    s.Service.false_suspicions;
  check Alcotest.bool "survivors suspected it" true (s.Service.suspicions >= 2)

let detected_eviction_averted_by_heal () =
  let e, f, m = setup_detected () in
  Engine.run ~until:1_000.0 e;
  (* Transient full isolation of node 3 — the paper's "unreliable
     detection" case: silence long enough to be suspected, healed before
     the lease runs out, so the node keeps its state and its place. *)
  List.iter
    (fun d ->
      Fabric.partition_oneway f ~src:3 ~dst:d;
      Fabric.partition_oneway f ~src:d ~dst:3)
    [ 0; 1; 2 ];
  (* Long enough for the suspicion quorum to form (timeout floor 200 µs),
     short of the 300 µs lease expiry that follows it. *)
  Engine.run ~until:(Engine.now e +. 350.0) e;
  check Alcotest.bool "quorum suspicion formed" true
    (Service.suspected m ~by:0 3 || Service.suspected m ~by:1 3
   || Service.suspected m ~by:2 3);
  List.iter
    (fun d ->
      Fabric.heal_oneway f ~src:3 ~dst:d;
      Fabric.heal_oneway f ~src:d ~dst:3)
    [ 0; 1; 2 ];
  Engine.run ~until:(Engine.now e +. 2_000.0) e;
  let s = Service.det_stats m in
  check Alcotest.int "no eviction: epoch unchanged" 0 (Service.view m).View.epoch;
  check Alcotest.bool "lease expiry was averted" true (s.Service.evictions_averted >= 1);
  check Alcotest.bool "suspicions were retracted" true (s.Service.retractions >= 1);
  check Alcotest.int "no fence" 0 s.Service.fences

let detected_oneway_partition_fences_and_rejoins () =
  let e, f, m = setup_detected () in
  Engine.run ~until:1_000.0 e;
  (* Node 3 can hear everyone but nobody hears node 3: a gray failure the
     oracle mode cannot even express. *)
  List.iter (fun d -> Fabric.partition_oneway f ~src:3 ~dst:d) [ 0; 1; 2 ];
  let part_at = Engine.now e in
  Engine.run ~until:(part_at +. Service.detection_bound_us m +. 100.0) e;
  check Alcotest.bool "silent-to-others node evicted" false
    (View.is_live (Service.view m) 3);
  let s = Service.det_stats m in
  check Alcotest.bool "eviction was a false suspicion" true
    (s.Service.false_suspicions >= 1);
  (* The fence force-crashed it at the fabric; by now the automatic rejoin
     may already have revived it (it will just be fenced again while the
     partition stands), so assert the counter, not the instantaneous state. *)
  check Alcotest.bool "the live node was fenced" true (s.Service.fences >= 1);
  (* Heal the links; the automatic post-fence rejoin then sticks. *)
  List.iter (fun d -> Fabric.heal_oneway f ~src:3 ~dst:d) [ 0; 1; 2 ];
  Engine.run ~until:(Engine.now e +. 3_000.0) e;
  check Alcotest.bool "rejoined after heal" true (View.is_live (Service.view m) 3);
  check Alcotest.bool "alive after heal" true (Fabric.is_alive f 3);
  let s1 = Service.det_stats m in
  (* Stable from here: another window adds no fences and no view changes. *)
  Engine.run ~until:(Engine.now e +. 3_000.0) e;
  let s2 = Service.det_stats m in
  check Alcotest.int "no further fences once healed" s1.Service.fences
    s2.Service.fences;
  check Alcotest.int "no further view churn once healed" s1.Service.views_installed
    s2.Service.views_installed;
  check Alcotest.bool "still in the view" true (View.is_live (Service.view m) 3)

let subscribe_preserves_order () =
  let e, _, m = setup () in
  let order = ref [] in
  for i = 0 to 4 do
    Service.subscribe m 0 (fun _ -> order := i :: !order)
  done;
  Service.kill m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.(list int) "subscribers fire in subscription order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let suite =
  [
    tc "view: algebra" view_ops;
    tc "kill: view installed after detection + lease" kill_updates_after_lease;
    tc "subscribers notified with skew" nodes_get_view_with_skew;
    tc "dead node gets no view" dead_node_not_notified;
    tc "rejoin" rejoin_bumps_epoch;
    tc "two failures, two epochs" two_kills_two_epochs;
    tc "detector: grace window then adaptive timeout" detector_grace_then_adapts;
    tc "detector: jitter widens the timeout" detector_widens_under_jitter;
    tc "detected: fault-free run raises nothing" detected_fault_free_no_suspicions;
    tc "detected: crash detected within the bound" detected_crash_installs_within_bound;
    tc "detected: heal before lease expiry averts eviction"
      detected_eviction_averted_by_heal;
    tc "detected: one-way partition fenced, rejoins after heal"
      detected_oneway_partition_fences_and_rejoins;
    tc "subscribe: order preserved" subscribe_preserves_order;
  ]
