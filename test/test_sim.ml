(* Unit and property tests for the simulation substrate. *)

module Rng = Zeus_sim.Rng
module Heap = Zeus_sim.Heap
module Engine = Zeus_sim.Engine
module Resource = Zeus_sim.Resource
module Stats = Zeus_sim.Stats

let tc = Helpers.tc
let check = Alcotest.check

(* ---------- rng ---------- *)

let rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_bounds () =
  let r = Rng.create 1L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v;
    let f = Rng.float r 3.0 in
    if f < 0.0 || f >= 3.0 then Alcotest.failf "float out of bounds: %f" f
  done

let rng_split_independent () =
  let r = Rng.create 9L in
  let s = Rng.split r in
  let a = Rng.int64 r and b = Rng.int64 s in
  if a = b then Alcotest.fail "split stream equals parent stream"

let rng_chance_extremes () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    if Rng.chance r 0.0 then Alcotest.fail "chance 0 fired";
    if not (Rng.chance r 1.0) then Alcotest.fail "chance 1 missed"
  done

let rng_exponential_mean () =
  let r = Rng.create 5L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 10.0) > 0.5 then Alcotest.failf "exp mean %f" mean

let rng_shuffle_permutation () =
  let r = Rng.create 11L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 (fun i -> i)) sorted

let zipf_skew () =
  let r = Rng.create 13L in
  let z = Rng.Zipf.create ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.Zipf.sample z r in
    if v < 0 || v >= 1000 then Alcotest.failf "zipf out of range %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  (* rank 0 should dominate: > 5% of all samples for theta=.99, n=1000 *)
  if counts.(0) < n / 20 then Alcotest.failf "zipf not skewed: top=%d" counts.(0)

let zipf_uniform_theta0 () =
  let r = Rng.create 17L in
  let z = Rng.Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    counts.(Rng.Zipf.sample z r) <- counts.(Rng.Zipf.sample z r) + 1
  done;
  Array.iter (fun c -> if c < 500 then Alcotest.fail "theta=0 not uniform") counts

(* ---------- heap ---------- *)

let heap_orders () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  let rec pop () =
    match Heap.pop h with
    | Some v ->
      out := v :: !out;
      pop ()
    | None -> ()
  in
  pop ();
  check Alcotest.(list int) "sorted" [ 9; 5; 4; 3; 1; 1; 0 ] !out

let heap_qcheck =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare l)

let heap_interleaved () =
  let h = Heap.create ~leq:(fun (a : int) b -> a <= b) in
  Heap.push h 5;
  Heap.push h 2;
  check Alcotest.(option int) "min" (Some 2) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 7;
  check Alcotest.(option int) "min2" (Some 1) (Heap.pop h);
  check Alcotest.(option int) "min3" (Some 5) (Heap.pop h);
  check Alcotest.(option int) "min4" (Some 7) (Heap.pop h);
  check Alcotest.(option int) "empty" None (Heap.pop h);
  check Alcotest.bool "is_empty" true (Heap.is_empty h)

(* ---------- engine event heap (specialized heap: qcheck properties) ----- *)

(* Schedule a batch of random delays; dispatch order must equal a stable
   sort by time — the engine's (time, seq) heap key makes equal-time events
   fire in scheduling order. *)
let engine_heap_order_qcheck =
  QCheck.Test.make ~name:"engine: dispatch order is stable time sort" ~count:200
    QCheck.(list (int_bound 50))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i d ->
          let after = float_of_int d in
          ignore (Engine.schedule e ~after (fun () -> fired := (d, i) :: !fired)))
        delays;
      Engine.run e;
      let expect =
        List.stable_sort
          (fun (d1, _) (d2, _) -> compare d1 d2)
          (List.mapi (fun i d -> (d, i)) delays)
      in
      List.rev !fired = expect)

(* Equal-time events keep scheduling order even through interleaved pops:
   everything fires at the same instant, so the dispatch log is exactly the
   scheduling sequence. *)
let engine_heap_fifo_qcheck =
  QCheck.Test.make ~name:"engine: equal-time FIFO under load" ~count:100
    QCheck.(int_range 1 200)
    (fun n ->
      let e = Engine.create () in
      let fired = ref [] in
      for i = 0 to n - 1 do
        ignore (Engine.schedule e ~after:1.0 (fun () -> fired := i :: !fired))
      done;
      Engine.run e;
      List.rev !fired = List.init n (fun i -> i))

(* Cancel a random subset, run: only survivors fire, in stable time order,
   and the queue reports empty.  Large cancelled fractions also push the
   engine through its eager-compaction path. *)
let engine_cancel_qcheck =
  QCheck.Test.make ~name:"engine: cancel-then-run fires exactly survivors" ~count:200
    QCheck.(list (pair (int_bound 50) bool))
    (fun spec ->
      let e = Engine.create () in
      let fired = ref [] in
      let ids =
        List.mapi
          (fun i (d, _) ->
            Engine.schedule e ~after:(float_of_int d) (fun () -> fired := (d, i) :: !fired))
          spec
      in
      List.iteri (fun i (_, keep) -> if not keep then Engine.cancel e (List.nth ids i)) spec;
      Engine.run e;
      let expect =
        List.stable_sort
          (fun (d1, _) (d2, _) -> compare d1 d2)
          (List.filteri (fun i _ -> snd (List.nth spec i)) (List.mapi (fun i (d, _) -> (d, i)) spec))
      in
      List.rev !fired = expect && Engine.pending e = 0)

(* Mass cancellation forces the heap's eager compaction (stale > live);
   survivors must still dispatch correctly afterwards. *)
let engine_compaction () =
  let e = Engine.create () in
  let fired = ref 0 in
  let ids =
    List.init 1000 (fun i ->
        Engine.schedule e ~after:(float_of_int (i mod 97)) (fun () -> incr fired))
  in
  List.iteri (fun i id -> if i mod 10 <> 0 then Engine.cancel e id) ids;
  check Alcotest.int "pending survivors" 100 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "fired survivors" 100 !fired;
  check Alcotest.int "drained" 0 (Engine.pending e)

(* ---------- engine ---------- *)

let engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~after:5.0 (fun () -> log := 5 :: !log));
  ignore (Engine.schedule e ~after:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~after:3.0 (fun () -> log := 3 :: !log));
  Engine.run e;
  check Alcotest.(list int) "order" [ 1; 3; 5 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock" 5.0 (Engine.now e)

let engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~after:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check Alcotest.(list int) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let ev = Engine.schedule e ~after:1.0 (fun () -> fired := true) in
  Engine.cancel e ev;
  Engine.run e;
  check Alcotest.bool "cancelled" false !fired;
  check Alcotest.int "pending" 0 (Engine.pending e)

let engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~after:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.5 e;
  check Alcotest.int "only first 5" 5 !count;
  check (Alcotest.float 1e-9) "clock at bound" 5.5 (Engine.now e);
  Engine.run e;
  check Alcotest.int "rest run" 10 !count

let engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~after:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule e ~after:1.0 (fun () -> log := "b" :: !log))));
  Engine.run e;
  check Alcotest.(list string) "nested" [ "a"; "b" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock" 2.0 (Engine.now e)

let engine_max_events () =
  let e = Engine.create () in
  let rec forever () = ignore (Engine.schedule e ~after:1.0 forever) in
  forever ();
  Engine.run ~max_events:100 e;
  check Alcotest.int "bounded" 100 (Engine.events_dispatched e)

(* ---------- resource ---------- *)

let resource_serializes () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 in
  let log = ref [] in
  Resource.submit r ~service:2.0 (fun () -> log := (1, Engine.now e) :: !log);
  Resource.submit r ~service:3.0 (fun () -> log := (2, Engine.now e) :: !log);
  Engine.run e;
  check
    Alcotest.(list (pair int (float 1e-9)))
    "sequential" [ (1, 2.0); (2, 5.0) ] (List.rev !log)

let resource_parallel () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:2 in
  let done_at = ref [] in
  Resource.submit r ~service:2.0 (fun () -> done_at := Engine.now e :: !done_at);
  Resource.submit r ~service:2.0 (fun () -> done_at := Engine.now e :: !done_at);
  Engine.run e;
  check Alcotest.(list (float 1e-9)) "parallel" [ 2.0; 2.0 ] !done_at

let resource_stats () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 in
  for _ = 1 to 5 do
    Resource.submit r ~service:1.0 (fun () -> ())
  done;
  check Alcotest.int "queued" 4 (Resource.queue_length r);
  Engine.run e;
  check Alcotest.int "completed" 5 (Resource.completed r);
  check (Alcotest.float 1e-9) "busy time" 5.0 (Resource.busy_time r);
  check Alcotest.int "idle" 0 (Resource.busy r)

(* ---------- stats ---------- *)

let percentile_interpolates () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile_of_sorted a 0.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile_of_sorted a 100.0);
  check (Alcotest.float 1e-9) "p50" 3.0 (Stats.percentile_of_sorted a 50.0);
  check (Alcotest.float 1e-9) "p25" 2.0 (Stats.percentile_of_sorted a 25.0)

let summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 5.0; 3.0 ];
  check Alcotest.int "count" 3 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.Summary.max s)

let samples_exact_when_small () =
  let s = Stats.Samples.create ~cap:1000 (Rng.create 1L) in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-6) "mean" 50.5 (Stats.Samples.mean s);
  check (Alcotest.float 1.0) "p99" 99.0 (Stats.Samples.percentile s 99.0)

let samples_reservoir_bounded () =
  let s = Stats.Samples.create ~cap:100 (Rng.create 2L) in
  for i = 1 to 10_000 do
    Stats.Samples.add s (float_of_int i)
  done;
  check Alcotest.int "count tracks all" 10_000 (Stats.Samples.count s);
  check Alcotest.int "storage bounded" 100 (Array.length (Stats.Samples.values s));
  (* the reservoir median should be near the true median *)
  let p50 = Stats.Samples.percentile s 50.0 in
  if p50 < 2_000.0 || p50 > 8_000.0 then Alcotest.failf "median drifted: %f" p50

let timeseries_buckets () =
  let ts = Stats.Timeseries.create ~bucket:10.0 in
  Stats.Timeseries.add ts ~time:1.0 1.0;
  Stats.Timeseries.add ts ~time:5.0 1.0;
  Stats.Timeseries.add ts ~time:25.0 2.0;
  check
    Alcotest.(list (pair (float 1e-9) (float 1e-9)))
    "buckets"
    [ (0.0, 2.0); (10.0, 0.0); (20.0, 2.0) ]
    (Stats.Timeseries.buckets ts)

let cdf_monotone () =
  let s = Stats.Samples.create (Rng.create 3L) in
  for _ = 1 to 1000 do
    Stats.Samples.add s (Rng.float (Rng.create (Int64.of_int (Stats.Samples.count s))) 10.0)
  done;
  let cdf = Stats.Samples.cdf s ~points:20 in
  let rec monotone = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) ->
      if v1 > v2 || f1 > f2 then false else monotone rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "monotone" true (monotone cdf);
  check (Alcotest.float 1e-9) "ends at 1" 1.0 (snd (List.nth cdf (List.length cdf - 1)))

let suite =
  [
    tc "rng: deterministic per seed" rng_deterministic;
    tc "rng: int/float bounds" rng_bounds;
    tc "rng: split independence" rng_split_independent;
    tc "rng: chance extremes" rng_chance_extremes;
    tc "rng: exponential mean" rng_exponential_mean;
    tc "rng: shuffle is a permutation" rng_shuffle_permutation;
    tc "rng: zipf skew" zipf_skew;
    tc "rng: zipf theta=0 uniform" zipf_uniform_theta0;
    tc "heap: pops sorted" heap_orders;
    tc "heap: interleaved push/pop" heap_interleaved;
    QCheck_alcotest.to_alcotest heap_qcheck;
    tc "engine: time order" engine_time_order;
    QCheck_alcotest.to_alcotest engine_heap_order_qcheck;
    QCheck_alcotest.to_alcotest engine_heap_fifo_qcheck;
    QCheck_alcotest.to_alcotest engine_cancel_qcheck;
    tc "engine: compaction after mass cancel" engine_compaction;
    tc "engine: FIFO at equal times" engine_fifo_same_time;
    tc "engine: cancel" engine_cancel;
    tc "engine: run until bound" engine_until;
    tc "engine: nested scheduling" engine_nested_schedule;
    tc "engine: max_events bound" engine_max_events;
    tc "resource: single server serializes" resource_serializes;
    tc "resource: two servers in parallel" resource_parallel;
    tc "resource: accounting" resource_stats;
    tc "stats: percentile interpolation" percentile_interpolates;
    tc "stats: summary" summary_basics;
    tc "stats: samples exact under cap" samples_exact_when_small;
    tc "stats: reservoir bounded and sane" samples_reservoir_bounded;
    tc "stats: timeseries buckets" timeseries_buckets;
    tc "stats: cdf monotone" cdf_monotone;
  ]
