(* Tests for the benchmark workload generators and locality models. *)

module Rng = Zeus_sim.Rng
module W = Zeus_workload

let tc = Helpers.tc
let check = Alcotest.check

let keys_of (s : W.Spec.t) = s.W.Spec.reads @ s.W.Spec.writes

(* ---------- smallbank ---------- *)

let smallbank_keys_in_range () =
  let rng = Rng.create 1L in
  let w = W.Smallbank.create ~accounts_per_node:100 ~nodes:3 rng in
  for _ = 1 to 2_000 do
    let s = W.Smallbank.gen w ~home:1 in
    List.iter
      (fun k ->
        if k < 0 || k >= W.Smallbank.total_keys w then Alcotest.failf "key %d" k)
      (keys_of s)
  done

let smallbank_local_when_no_drift () =
  let rng = Rng.create 2L in
  let w = W.Smallbank.create ~accounts_per_node:100 ~nodes:3 ~remote_frac:0.0 rng in
  for _ = 1 to 1_000 do
    let s = W.Smallbank.gen w ~home:2 in
    List.iter
      (fun k ->
        check Alcotest.int "home" 2 (W.Smallbank.home_of_key w k))
      (keys_of s)
  done

let smallbank_mix_ratios () =
  let rng = Rng.create 3L in
  let w = W.Smallbank.create ~accounts_per_node:100 ~nodes:3 rng in
  let ro = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if (W.Smallbank.gen w ~home:0).W.Spec.read_only then incr ro
  done;
  let frac = float_of_int !ro /. float_of_int n in
  if frac < 0.12 || frac > 0.18 then Alcotest.failf "read fraction %f (want ~0.15)" frac

let smallbank_remote_frac_respected () =
  let rng = Rng.create 4L in
  let w = W.Smallbank.create ~accounts_per_node:100 ~nodes:3 ~remote_frac:0.5 rng in
  let remote = ref 0 and writes = ref 0 in
  for _ = 1 to 10_000 do
    let s = W.Smallbank.gen w ~home:0 in
    if not s.W.Spec.read_only then begin
      incr writes;
      if List.exists (fun k -> W.Smallbank.home_of_key w k <> 0) (keys_of s) then
        incr remote
    end
  done;
  let frac = float_of_int !remote /. float_of_int !writes in
  if frac < 0.4 || frac > 0.6 then Alcotest.failf "remote fraction %f (want ~0.5)" frac

(* ---------- tatp ---------- *)

let tatp_read_ratio () =
  let rng = Rng.create 5L in
  let w = W.Tatp.create ~subscribers_per_node:100 ~nodes:3 rng in
  let ro = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if (W.Tatp.gen w ~home:0).W.Spec.read_only then incr ro
  done;
  let frac = float_of_int !ro /. float_of_int n in
  if frac < 0.77 || frac > 0.83 then Alcotest.failf "read fraction %f (want ~0.8)" frac

let tatp_reads_local_by_default () =
  let rng = Rng.create 6L in
  let w = W.Tatp.create ~subscribers_per_node:100 ~nodes:3 ~remote_frac:0.9 rng in
  for _ = 1 to 2_000 do
    let s = W.Tatp.gen w ~home:1 in
    if s.W.Spec.read_only then
      List.iter
        (fun k -> check Alcotest.int "read stays home" 1 (W.Tatp.home_of_key w k))
        (keys_of s)
  done

let tatp_baseline_reads_drift () =
  let rng = Rng.create 7L in
  let w =
    W.Tatp.create ~subscribers_per_node:100 ~nodes:3 ~remote_frac:0.9 ~local_reads:false
      rng
  in
  let remote = ref 0 and reads = ref 0 in
  for _ = 1 to 5_000 do
    let s = W.Tatp.gen w ~home:1 in
    if s.W.Spec.read_only then begin
      incr reads;
      if List.exists (fun k -> W.Tatp.home_of_key w k <> 1) (keys_of s) then incr remote
    end
  done;
  if float_of_int !remote /. float_of_int !reads < 0.5 then
    Alcotest.fail "baseline reads should drift remote"

(* ---------- voter ---------- *)

let voter_contestant_thread_binding () =
  let rng = Rng.create 8L in
  let w = W.Voter.create ~contestants:20 ~voters:3_000 ~nodes:3 rng in
  for _ = 1 to 1_000 do
    let s = W.Voter.gen w ~home:1 ~thread:2 ~threads:5 in
    match s.W.Spec.writes with
    | [ contestant; voter ] ->
      check Alcotest.int "contestant home" 1 (W.Voter.home_of_key w contestant);
      check Alcotest.int "voter home" 1 (W.Voter.home_of_key w voter);
      check Alcotest.int "thread binding" 2 (contestant mod 5)
    | _ -> Alcotest.fail "vote must write two objects"
  done

let voter_hot_contestant () =
  let rng = Rng.create 9L in
  let w =
    W.Voter.create ~contestants:20 ~voters:3_000 ~nodes:3 ~hot_contestant:(Some 0)
      ~hot_frac:0.5 rng
  in
  let hot = ref 0 and n = 4_000 in
  for _ = 1 to n do
    let s = W.Voter.gen w ~home:0 ~thread:0 ~threads:10 in
    match s.W.Spec.writes with
    | c :: _ when c = 0 -> incr hot
    | _ -> ()
  done;
  if float_of_int !hot /. float_of_int n < 0.4 then Alcotest.fail "hot skew missing"

(* ---------- handover + mobility ---------- *)

let handover_two_txn_structure () =
  let rng = Rng.create 10L in
  let w =
    W.Handover.create ~users_per_node:100 ~stations_per_node:10 ~nodes:3
      ~handover_frac:1.0 ~remote_handover_frac:0.0 rng
  in
  let s1, s2 = W.Handover.gen w ~home:0 ~thread:0 ~threads:10 in
  check Alcotest.bool "local handover has an end txn" true (s2 <> None);
  check Alcotest.int "start txn: user + old bs" 2 (List.length s1.W.Spec.writes)

let handover_remote_crosses_nodes () =
  let rng = Rng.create 11L in
  let w =
    W.Handover.create ~users_per_node:100 ~stations_per_node:10 ~nodes:3
      ~handover_frac:1.0 ~remote_handover_frac:1.0 rng
  in
  let s1, s2 = W.Handover.gen w ~home:0 ~thread:0 ~threads:10 in
  check Alcotest.bool "remote handover is single incoming txn" true (s2 = None);
  (match s1.W.Spec.writes with
  | [ user; station ] ->
    check Alcotest.int "user from neighbour" 1 (W.Handover.home_of_key w user);
    check Alcotest.int "station local" 0 (W.Handover.home_of_key w station)
  | _ -> Alcotest.fail "unexpected write set")

let handover_payload_size () =
  let rng = Rng.create 12L in
  let w =
    W.Handover.create ~users_per_node:100 ~stations_per_node:10 ~nodes:3
      ~handover_frac:0.0 ~remote_handover_frac:0.0 rng
  in
  let s, _ = W.Handover.gen w ~home:0 ~thread:0 ~threads:10 in
  check Alcotest.int "~400B contexts" 400 s.W.Spec.payload

let mobility_fraction_sane () =
  let rng = Rng.create 13L in
  let f6 = W.Mobility.remote_handover_fraction ~trips:4_000 ~nodes:6 rng in
  let f1 = W.Mobility.remote_handover_fraction ~trips:4_000 ~nodes:1 rng in
  check (Alcotest.float 1e-9) "1 node: no remote" 0.0 f1;
  if f6 < 0.02 || f6 > 0.12 then
    Alcotest.failf "6-node remote handover fraction %f (paper: 6.2%%)" f6

let mobility_more_nodes_more_remote () =
  let rng = Rng.create 14L in
  let f2 = W.Mobility.remote_handover_fraction ~trips:6_000 ~nodes:2 rng in
  let f6 = W.Mobility.remote_handover_fraction ~trips:6_000 ~nodes:6 rng in
  if f6 <= f2 then Alcotest.failf "expected monotone-ish: f2=%f f6=%f" f2 f6

let mobility_trip_structure () =
  let rng = Rng.create 15L in
  let trip = W.Mobility.sample_trip ~nodes:6 rng in
  check Alcotest.bool "nonempty" true (List.length trip >= 1);
  List.iter
    (fun (station, node) ->
      if station < 0 || station >= W.Mobility.(stations default_params) then
        Alcotest.fail "station out of range";
      if node < 0 || node >= 6 then Alcotest.fail "node out of range")
    trip

(* ---------- venmo + tpcc ---------- *)

let venmo_remote_fraction_calibrated () =
  let rng = Rng.create 16L in
  let v3 = W.Venmo.create ~nodes:3 rng in
  let f3 = W.Venmo.remote_fraction ~samples:100_000 v3 in
  if f3 < 0.004 || f3 > 0.02 then Alcotest.failf "3-node venmo %f (paper 0.7%%)" f3

let venmo_pairs_valid () =
  let rng = Rng.create 17L in
  let v = W.Venmo.create ~users:1_000 ~nodes:3 rng in
  for _ = 1 to 2_000 do
    let a, b = W.Venmo.gen_pair v in
    if a = b then Alcotest.fail "self-payment";
    if a < 0 || a >= 1_000 || b < 0 || b >= 1_000 then Alcotest.fail "user range"
  done

let tpcc_analytics () =
  let txn = W.Tpcc.remote_txn_fraction () in
  (* spec-standard: 45% * (1-.99^10) + 43% * 15% ~ 10.8% *)
  if txn < 0.09 || txn > 0.12 then Alcotest.failf "tpcc txn fraction %f" txn;
  let acc = W.Tpcc.remote_access_fraction () in
  if acc < 0.003 || acc > 0.03 then Alcotest.failf "tpcc access fraction %f" acc

(* ---------- driver ---------- *)

let driver_counts_in_window () =
  let c = Helpers.default_cluster () in
  Zeus_core.Cluster.populate c ~key:1 ~owner:0 (Zeus_store.Value.of_int 0);
  let r =
    W.Driver.run c ~nodes:[ 0 ] ~threads:1 ~warmup_us:100.0 ~duration_us:1_000.0
      ~issue:(fun node ~thread ~seq:_ done_ ->
        W.Spec.run_on_zeus node ~thread (W.Spec.write_txn [ 1 ]) (fun o ->
            done_ (o = Zeus_store.Txn.Committed)))
      ()
  in
  Alcotest.(check bool) "some commits" true (r.W.Driver.committed > 0);
  let expected = float_of_int r.W.Driver.committed /. 1_000.0 in
  Alcotest.(check (float 1e-6)) "mtps math" expected r.W.Driver.mtps

(* An issue function that always aborts the first attempt of every logical
   transaction and commits the second: with retry on, every transaction
   commits (once) after exactly one retry; with retry off, nothing ever
   commits.  Failures are delivered asynchronously so simulated time
   advances between attempts. *)
let flaky_issue c calls _node ~thread ~seq done_ =
  let eng = Zeus_core.Cluster.engine c in
  let key = (thread, seq) in
  let n = (try Hashtbl.find calls key with Not_found -> 0) + 1 in
  Hashtbl.replace calls key n;
  ignore (Zeus_sim.Engine.schedule eng ~after:10.0 (fun () -> done_ (n >= 2)))

let driver_retry_commits_once () =
  let c = Helpers.default_cluster () in
  let calls = Hashtbl.create 64 in
  let r =
    W.Driver.run c ~nodes:[ 0 ] ~threads:2 ~retry:W.Driver.default_retry
      ~warmup_us:0.0 ~duration_us:2_000.0 ~issue:(flaky_issue c calls) ()
  in
  Alcotest.(check bool) "commits under retry" true (r.W.Driver.committed > 0);
  Alcotest.(check int) "retried commits are not aborts" 0 r.W.Driver.aborted;
  Alcotest.(check bool) "one retry per commit" true
    (r.W.Driver.retries >= r.W.Driver.committed);
  Hashtbl.iter
    (fun (thread, seq) n ->
      if n > 2 then Alcotest.failf "txn %d/%d issued %d times" thread seq n)
    calls

let driver_no_retry_surfaces_aborts () =
  let c = Helpers.default_cluster () in
  let calls = Hashtbl.create 64 in
  let r =
    W.Driver.run c ~nodes:[ 0 ] ~threads:2 ~warmup_us:0.0 ~duration_us:2_000.0
      ~issue:(flaky_issue c calls) ()
  in
  Alcotest.(check int) "first attempts always abort" 0 r.W.Driver.committed;
  Alcotest.(check int) "no retries without opt-in" 0 r.W.Driver.retries;
  Alcotest.(check bool) "aborts surface" true (r.W.Driver.aborted > 0)

let driver_retry_deterministic () =
  let go () =
    let c = Helpers.default_cluster () in
    let calls = Hashtbl.create 64 in
    let r =
      W.Driver.run c ~nodes:[ 0 ] ~threads:3 ~retry:W.Driver.default_retry
        ~warmup_us:0.0 ~duration_us:1_500.0 ~issue:(flaky_issue c calls) ()
    in
    (r.W.Driver.committed, r.W.Driver.retries)
  in
  let c1, r1 = go () and c2, r2 = go () in
  Alcotest.(check int) "committed reproducible" c1 c2;
  Alcotest.(check int) "retries reproducible" r1 r2

let suite =
  [
    tc "smallbank: keys in range" smallbank_keys_in_range;
    tc "smallbank: local without drift" smallbank_local_when_no_drift;
    tc "smallbank: 15% read transactions" smallbank_mix_ratios;
    tc "smallbank: remote_frac respected" smallbank_remote_frac_respected;
    tc "tatp: 80% read transactions" tatp_read_ratio;
    tc "tatp: reads local by default" tatp_reads_local_by_default;
    tc "tatp: baseline reads drift" tatp_baseline_reads_drift;
    tc "voter: LB binds contestants to node+thread" voter_contestant_thread_binding;
    tc "voter: hot contestant skew" voter_hot_contestant;
    tc "handover: two-transaction structure" handover_two_txn_structure;
    tc "handover: remote crosses nodes" handover_remote_crosses_nodes;
    tc "handover: 400B contexts" handover_payload_size;
    tc "mobility: remote fraction near paper's" mobility_fraction_sane;
    tc "mobility: more nodes, more remote" mobility_more_nodes_more_remote;
    tc "mobility: trips well-formed" mobility_trip_structure;
    tc "venmo: calibrated remote fraction" venmo_remote_fraction_calibrated;
    tc "venmo: valid pairs" venmo_pairs_valid;
    tc "tpcc: analytical fractions" tpcc_analytics;
    tc "driver: measurement window math" driver_counts_in_window;
    tc "driver: retry commits once, counts retries" driver_retry_commits_once;
    tc "driver: no retry without opt-in" driver_no_retry_surfaces_aborts;
    tc "driver: retry backoff is deterministic" driver_retry_deterministic;
  ]
