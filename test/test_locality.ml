(* Locality engine (lib/locality): unit coverage of the access log,
   predictor, planner and migrator; properties for the memory bound and
   determinism; and an end-to-end anti-ping-pong integration check. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Loc = Zeus_locality
open Helpers

let qtest = QCheck_alcotest.to_alcotest

(* ---------- access log ---------- *)

let log_config = { Loc.Access_log.half_life_us = 100.0; capacity = 64 }

let test_log_decay () =
  let log = Loc.Access_log.create ~config:log_config ~nodes:2 () in
  Loc.Access_log.record log ~key:1 ~node:0 ~now:0.0;
  let r0 = Loc.Access_log.rate log ~key:1 ~node:0 ~now:0.0 in
  let r1 = Loc.Access_log.rate log ~key:1 ~node:0 ~now:100.0 in
  check (Alcotest.float 1e-9) "one half-life halves the rate" (r0 /. 2.0) r1;
  check (Alcotest.float 1e-9) "other node unaffected" 0.0
    (Loc.Access_log.rate log ~key:1 ~node:1 ~now:100.0)

let test_log_top_node () =
  let log = Loc.Access_log.create ~config:log_config ~nodes:3 () in
  for _ = 1 to 5 do
    Loc.Access_log.record log ~key:7 ~node:2 ~now:10.0
  done;
  Loc.Access_log.record log ~key:7 ~node:0 ~now:10.0;
  (match Loc.Access_log.top_node log ~key:7 ~now:10.0 with
  | Some (n, _) -> check Alcotest.int "hottest accessor wins" 2 n
  | None -> Alcotest.fail "expected a top node");
  check Alcotest.(option (pair int unit |> fun _ -> int)) "untracked key"
    None
    (Option.map fst (Loc.Access_log.top_node log ~key:999 ~now:10.0))

(* ---------- predictor ---------- *)

let test_predictor_directional () =
  let p = Loc.Predictor.create ~nodes:4 () in
  let log = Loc.Access_log.create ~nodes:4 () in
  Loc.Predictor.note_owner p ~key:5 ~owner:0 ~now:0.0;
  Loc.Predictor.note_owner p ~key:5 ~owner:1 ~now:100.0;
  Loc.Predictor.note_owner p ~key:5 ~owner:2 ~now:200.0;
  match Loc.Predictor.predict p ~log ~key:5 ~now:250.0 with
  | Some pr ->
    check Alcotest.int "trajectory 0,1,2 continues to 3" 3 pr.Loc.Predictor.target;
    check Alcotest.bool "directional pattern fired" true pr.Loc.Predictor.directional
  | None -> Alcotest.fail "expected a directional prediction"

let test_predictor_frequency () =
  let p = Loc.Predictor.create ~nodes:3 () in
  let log = Loc.Access_log.create ~config:log_config ~nodes:3 () in
  for _ = 1 to 9 do
    Loc.Access_log.record log ~key:4 ~node:1 ~now:5.0
  done;
  Loc.Access_log.record log ~key:4 ~node:2 ~now:5.0;
  match Loc.Predictor.predict p ~log ~key:4 ~now:5.0 with
  | Some pr ->
    check Alcotest.int "dominant accessor predicted" 1 pr.Loc.Predictor.target;
    check Alcotest.bool "frequency mode" false pr.Loc.Predictor.directional
  | None -> Alcotest.fail "expected a frequency prediction"

(* ---------- planner ---------- *)

let test_planner_hysteresis () =
  let planner = Loc.Planner.create () in
  let predictor = Loc.Predictor.create ~nodes:2 () in
  let log = Loc.Access_log.create ~config:log_config ~nodes:2 () in
  (* node 1 at 3 accesses vs holder 0 at 2: confident prediction, but under
     the 2x hysteresis bar -> Stay *)
  for _ = 1 to 3 do
    Loc.Access_log.record log ~key:9 ~node:1 ~now:50.0
  done;
  for _ = 1 to 2 do
    Loc.Access_log.record log ~key:9 ~node:0 ~now:50.0
  done;
  (match Loc.Planner.decide planner ~predictor ~log ~key:9 ~holder:0 ~now:50.0 with
  | Loc.Planner.Stay -> ()
  | d -> Alcotest.failf "expected Stay, got %a" Loc.Planner.pp_decision d);
  (* push node 1 past 2x the holder's rate -> Prefetch *)
  for _ = 1 to 3 do
    Loc.Access_log.record log ~key:9 ~node:1 ~now:50.0
  done;
  match Loc.Planner.decide planner ~predictor ~log ~key:9 ~holder:0 ~now:50.0 with
  | Loc.Planner.Prefetch { target; directional } ->
    check Alcotest.int "prefetch to the hotter node" 1 target;
    check Alcotest.bool "frequency-driven" false directional
  | d -> Alcotest.failf "expected Prefetch, got %a" Loc.Planner.pp_decision d

let test_planner_pin_and_expiry () =
  let config = Loc.Planner.default_config in
  let planner = Loc.Planner.create ~config () in
  (* 4 alternating moves inside the window: thrash, pinned where it landed *)
  Loc.Planner.note_migration planner ~key:3 ~owner:0 ~now:0.0;
  Loc.Planner.note_migration planner ~key:3 ~owner:1 ~now:50.0;
  Loc.Planner.note_migration planner ~key:3 ~owner:0 ~now:100.0;
  check Alcotest.int "no pin before the threshold" 0 (Loc.Planner.pins_set planner);
  Loc.Planner.note_migration planner ~key:3 ~owner:1 ~now:150.0;
  check Alcotest.int "pin after 4 moves between 2 nodes" 1
    (Loc.Planner.pins_set planner);
  check
    Alcotest.(option int)
    "pinned at the landing node" (Some 1)
    (Loc.Planner.pinned planner ~key:3 ~now:200.0);
  (* while pinned: no re-pin, and decide reports the pin *)
  Loc.Planner.note_migration planner ~key:3 ~owner:0 ~now:250.0;
  check Alcotest.int "no re-pin while pinned" 1 (Loc.Planner.pins_set planner);
  let expiry = 150.0 +. config.Loc.Planner.pin_us in
  check
    Alcotest.(option int)
    "pin expires" None
    (Loc.Planner.pinned planner ~key:3 ~now:(expiry +. 1.0))

(* ---------- migrator (token bucket, through a live cluster) ---------- *)

let locality_on ?(migrator = Loc.Migrator.default_config) () =
  { Loc.Engine.enabled_default with Loc.Engine.migrator }

let cluster_with_locality ?migrator () =
  let config =
    {
      Config.default with
      Config.nodes = 3;
      seed = 7L;
      locality = locality_on ?migrator ();
    }
  in
  Cluster.create ~config ()

let engine_of cluster i =
  match Node.locality (Cluster.node cluster i) with
  | Some e -> e
  | None -> Alcotest.fail "locality engine missing with enabled config"

let test_migrator_rate_limit () =
  let c =
    cluster_with_locality
      ~migrator:{ Loc.Migrator.bucket = 2.0; refill_per_ms = 1.0 }
      ()
  in
  Cluster.populate_n c ~n:6 ~owner_of:(fun _ -> 0) (fun _ -> Value.of_int 0);
  let m = Loc.Engine.migrator (engine_of c 1) in
  check Alcotest.bool "first prefetch admitted" true
    (Loc.Migrator.prefetch m ~key:0 ~k:(fun _ -> ()));
  check Alcotest.bool "second prefetch admitted" true
    (Loc.Migrator.prefetch m ~key:1 ~k:(fun _ -> ()));
  check Alcotest.bool "third prefetch rate-limited" false
    (Loc.Migrator.prefetch m ~key:2 ~k:(fun _ -> ()));
  check Alcotest.int "rate_limited counted" 1 (Loc.Migrator.rate_limited m);
  drain c;
  (* 1 req/ms: two virtual milliseconds refill the bucket *)
  ignore (Engine.schedule (Cluster.engine c) ~after:2000.0 (fun () -> ()));
  Cluster.run c ~until_us:(Engine.now (Cluster.engine c) +. 2001.0);
  check Alcotest.bool "bucket refills with virtual time" true
    (Loc.Migrator.prefetch m ~key:3 ~k:(fun _ -> ()));
  drain c;
  check Alcotest.int "admitted prefetches were issued" 3 (Loc.Migrator.issued m);
  check Alcotest.int "prefetches won ownership" 3 (Loc.Migrator.won m)

(* ---------- integration: anti-ping-pong ---------- *)

let test_pingpong_bounded () =
  let c = cluster_with_locality () in
  Cluster.populate c ~key:9 ~owner:0 (Value.of_int 0);
  (* two frontends fight over key 9 until the planner pins it *)
  for i = 1 to 6 do
    expect_committed "fighting write" (write_txn c (i mod 2) ~keys:[ 9 ] ~value:(Value.of_int i))
  done;
  let planner = Loc.Engine.planner (engine_of c 0) in
  check Alcotest.bool "thrash detected and pinned" true
    (Loc.Planner.pins_set planner >= 1);
  let target =
    match Loc.Engine.route_for_key (engine_of c 0) 9 with
    | Some t -> t
    | None -> Alcotest.fail "pin not visible through route_for_key"
  in
  (* re-routed traffic (what the balancer does with the pin) stops the churn:
     no further ownership movement once both sides execute at the target *)
  let moves_at_pin = Loc.Planner.migrations planner ~key:9 in
  for i = 7 to 16 do
    expect_committed "pinned write" (write_txn c target ~keys:[ 9 ] ~value:(Value.of_int i))
  done;
  check Alcotest.int "no migrations after the pin" moves_at_pin
    (Loc.Planner.migrations planner ~key:9)

let test_disabled_is_seed () =
  (* locality off (the default): no engine is constructed, and the normal
     write path behaves exactly as the seed *)
  let c = default_cluster () in
  check Alcotest.bool "no engine when disabled" true
    (Node.locality (Cluster.node c 0) = None);
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  expect_committed "seed write path" (write_txn c 1 ~keys:[ 1 ] ~value:(Value.of_int 5));
  check Alcotest.(option int) "value visible" (Some 5) (read_value c 1 1)

(* ---------- properties ---------- *)

let prop_log_bounded =
  QCheck.Test.make ~name:"access_log: tracked keys never exceed capacity"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 200) (pair (int_bound 100) (int_bound 2)))
    (fun events ->
      let log =
        Loc.Access_log.create
          ~config:{ Loc.Access_log.half_life_us = 50.0; capacity = 8 }
          ~nodes:3 ()
      in
      List.iteri
        (fun i (key, node) ->
          Loc.Access_log.record log ~key ~node ~now:(float_of_int i))
        events;
      Loc.Access_log.tracked log <= 8)

let prop_predictor_deterministic =
  QCheck.Test.make ~name:"predictor: identical event feeds agree" ~count:100
    QCheck.(list_of_size Gen.(0 -- 60) (pair (int_bound 10) (int_bound 3)))
    (fun events ->
      let feed () =
        let p = Loc.Predictor.create ~nodes:4 () in
        let log = Loc.Access_log.create ~nodes:4 () in
        List.iteri
          (fun i (key, owner) ->
            let now = 10.0 *. float_of_int i in
            Loc.Predictor.note_owner p ~key ~owner ~now;
            Loc.Access_log.record log ~key ~node:owner ~now)
          events;
        List.init 11 (fun key ->
            Loc.Predictor.predict p ~log ~key ~now:1000.0)
      in
      feed () = feed ())

let suite =
  [
    tc "access_log: exponential decay" test_log_decay;
    tc "access_log: top_node" test_log_top_node;
    tc "predictor: directional trajectory" test_predictor_directional;
    tc "predictor: frequency fallback" test_predictor_frequency;
    tc "planner: hysteresis" test_planner_hysteresis;
    tc "planner: anti-ping-pong pin + expiry" test_planner_pin_and_expiry;
    tc "migrator: token-bucket rate limit" test_migrator_rate_limit;
    tc "integration: pin ends ping-pong" test_pingpong_bounded;
    tc "disabled config keeps seed behaviour" test_disabled_is_seed;
    qtest prop_log_bounded;
    qtest prop_predictor_deterministic;
  ]
