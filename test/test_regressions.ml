(* Regression tests for protocol bugs found by the model checker and the
   deterministic fault-injection sweeps (see EXPERIMENTS.md, "Formal
   verification").  Each case replays the class of schedule that exposed
   the bug.

   1. A RESP reaching a requester that already applied its win must still
      re-broadcast VALs (arbiters were stuck pending forever).
   2. A stale RESP must not clobber a newer pending arbitration.
   3. Replacing a buffered arbitration with its successor (base_ts match)
      must first apply it: its VAL may never arrive, and losing the
      demotion left two live owners. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

let tc = Helpers.tc

(* The deterministic schedule generator that exposed bugs 1-3: per-node
   sequential chains of random writes/reads/migrations over 8 keys, with a
   timed crash, under loss + duplication + reordering. *)
let run_schedule ~seed ~loss ~crash ~nops =
  let fabric =
    {
      Zeus_net.Fabric.default_config with
      Zeus_net.Fabric.loss_prob = float_of_int loss /. 100.0;
      dup_prob = 0.02;
      delay_prob = 0.2;
    }
  in
  let config =
    {
      Config.default with
      Config.nodes = 3;
      record_history = true;
      seed = Int64.of_int seed;
      fabric;
    }
  in
  let c = Cluster.create ~config () in
  for k = 0 to 7 do
    Cluster.populate c ~key:k ~owner:(k mod 3) (Value.of_int 0)
  done;
  let engine = Cluster.engine c in
  let rng = Zeus_sim.Rng.create (Int64.of_int ((seed * 7) + 1)) in
  for n = 0 to 2 do
    let node = Cluster.node c n in
    let rec chain i =
      if i < nops && Node.is_alive node then begin
        let k = Zeus_sim.Rng.int rng 8 in
        let roll = Zeus_sim.Rng.int rng 9 in
        let next () = ignore (Engine.schedule engine ~after:2.0 (fun () -> chain (i + 1))) in
        if roll < 5 then
          Node.run_write node ~thread:0
            ~body:(fun ctx commit ->
              Node.read_write ctx k
                (fun v -> Value.of_int (Value.to_int v + 1))
                (fun _ -> commit ()))
            (fun _ -> next ())
        else if roll < 8 then
          Node.run_read node ~thread:1
            ~body:(fun ctx commit -> Node.read ctx k (fun _ -> commit ()))
            (fun _ -> next ())
        else Node.acquire_ownership node k (fun _ -> next ())
      end
    in
    ignore (Engine.schedule engine ~after:(1.0 +. float_of_int n) (fun () -> chain 0))
  done;
  (match crash with
  | Some (victim, at) ->
    ignore (Engine.schedule engine ~after:at (fun () -> Cluster.kill c victim))
  | None -> ());
  Cluster.run_quiesce c ~max_us:8_000_000.0 ();
  match Cluster.check_invariants c with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "seed=%d loss=%d: %s" seed loss msg

(* The exact schedules that exposed bug 3 (two live owners). *)
let known_bad_schedules () =
  run_schedule ~seed:112 ~loss:8 ~crash:(Some (0, 90.0)) ~nops:25;
  run_schedule ~seed:158 ~loss:8 ~crash:(Some (0, 90.0)) ~nops:25;
  run_schedule ~seed:91 ~loss:4 ~crash:(Some (1, 70.0)) ~nops:25

(* A compact sweep across the fault configurations that found the bugs. *)
let sweep () =
  for seed = 1 to 60 do
    List.iter
      (fun (loss, crash) -> run_schedule ~seed ~loss ~crash ~nops:20)
      [ (4, Some (1, 30.0)); (8, Some (0, 90.0)); (6, Some (2, 25.0)); (5, None) ]
  done

(* Bugs 1-2 are covered exhaustively by the model tests; this checks the
   concrete implementation path: a VAL lost across an epoch change is
   recovered by arb-replay + RESP even when the requester already applied. *)
let lost_val_recovered_by_replay () =
  (* drop every 15th message: occasionally a VAL, forcing replays *)
  let fabric = { Zeus_net.Fabric.default_config with Zeus_net.Fabric.loss_prob = 0.15 } in
  let c = Helpers.default_cluster ~fabric ~seed:5L () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  for i = 1 to 10 do
    Helpers.expect_committed "migrating write"
      (Helpers.write_txn c (i mod 3) ~keys:[ 1 ] ~value:(Value.of_int i))
  done;
  Helpers.drain c ~max_us:3_000_000.0;
  Helpers.expect_invariants c

let suite =
  [
    tc "known-bad schedules (two-owners bug)" known_bad_schedules;
    tc "fault-schedule sweep (240 runs)" sweep;
    tc "lost VAL recovered by arb-replay" lost_val_recovered_by_replay;
  ]
