(* qcheck properties for the reliable transport under fault injection:
   random loss/duplication/reorder rates and a random send schedule over a
   3-node fabric.  Both transport modes must deliver every payload exactly
   once per flow with bounded state; the batched mode must additionally
   deliver in order. *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport

type Zeus_net.Msg.payload += Msg of int

let qtest = QCheck_alcotest.to_alcotest

(* (loss, dup, reorder), [(src, dst, at_us); ...] — loss stays well under
   the give-up threshold (max_retries = 50 go-back-N rounds), so delivery
   always completes and exactly-once is the right property. *)
let case_gen =
  QCheck.Gen.(
    pair
      (triple
         (float_bound_inclusive 0.35)
         (float_bound_inclusive 0.5)
         (float_bound_inclusive 0.5))
      (list_size (1 -- 80)
         (triple (int_bound 2) (int_bound 2) (float_bound_inclusive 300.0))))

let print_case ((loss, dup, reorder), sends) =
  Printf.sprintf "loss=%.2f dup=%.2f reorder=%.2f sends=[%s]" loss dup reorder
    (String.concat "; "
       (List.map (fun (s, d, at) -> Printf.sprintf "%d->%d@%.0f" s d at) sends))

let case = QCheck.make ~print:print_case case_gen

let log tbl key v =
  let r =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace tbl key r;
      r
  in
  r := v :: !r

(* Returns per-flow send and delivery sequences (in order) plus the engine
   and transport for state assertions. *)
let run_case ~batched ((loss, dup, reorder), sends) =
  let e = Engine.create () in
  let fcfg =
    {
      Fabric.default_config with
      Fabric.loss_prob = loss;
      dup_prob = dup;
      reorder_prob = reorder;
    }
  in
  let f = Fabric.create e ~nodes:3 fcfg in
  let config =
    if batched then Transport.default_config
    else Transport.unbatched Transport.default_config
  in
  let t = Transport.create ~config f in
  let sent = Hashtbl.create 16 and delivered = Hashtbl.create 16 in
  for node = 0 to 2 do
    Transport.set_handler t node (fun ~src payload ->
        match payload with Msg i -> log delivered (src, node) i | _ -> ())
  done;
  List.iteri
    (fun i (src, dst, at) ->
      ignore
        (Engine.schedule e ~after:at (fun () ->
             log sent (src, dst) i;
             Transport.send t ~src ~dst (Msg i))))
    sends;
  Engine.run ~max_events:5_000_000 e;
  (e, t, sent, delivered)

let flows sent delivered =
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) sent;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) delivered;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

let got tbl key = match Hashtbl.find_opt tbl key with Some r -> List.rev !r | None -> []

let exactly_once ~batched c =
  let _, _, sent, delivered = run_case ~batched c in
  List.for_all
    (fun key ->
      let s = List.sort compare (got sent key)
      and d = List.sort compare (got delivered key) in
      if s <> d then
        QCheck.Test.fail_reportf "flow %d->%d: sent %d payloads, delivered %d (%s)"
          (fst key) (snd key) (List.length s) (List.length d)
          (if List.length d > List.length s then "duplicates" else "losses")
      else true)
    (flows sent delivered)

let in_order_batched c =
  let _, _, sent, delivered = run_case ~batched:true c in
  List.for_all
    (fun key ->
      let s = got sent key and d = got delivered key in
      s = d
      || QCheck.Test.fail_reportf "flow %d->%d delivered out of order" (fst key)
           (snd key))
    (flows sent delivered)

let bounded_state ~batched c =
  let e, t, _, _ = run_case ~batched c in
  Engine.pending e = 0
  && Transport.tx_backlog t = 0
  && Transport.rx_backlog t = 0
  || QCheck.Test.fail_reportf "residual state: pending=%d tx_backlog=%d rx_backlog=%d"
       (Engine.pending e) (Transport.tx_backlog t) (Transport.rx_backlog t)

let suite =
  [
    qtest
      (QCheck.Test.make ~name:"transport: exactly-once per flow (batched)" ~count:30
         case (exactly_once ~batched:true));
    qtest
      (QCheck.Test.make ~name:"transport: exactly-once per flow (unbatched)" ~count:30
         case (exactly_once ~batched:false));
    qtest
      (QCheck.Test.make ~name:"transport: in-order delivery per flow (batched)"
         ~count:30 case in_order_batched);
    qtest
      (QCheck.Test.make ~name:"transport: quiescent and bounded state (batched)"
         ~count:30 case (bounded_state ~batched:true));
    qtest
      (QCheck.Test.make ~name:"transport: quiescent and bounded state (unbatched)"
         ~count:30 case (bounded_state ~batched:false));
  ]
