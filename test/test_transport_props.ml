(* qcheck properties for the reliable transport under fault injection:
   random loss/duplication/straggler-delay/permutation rates and a random
   send schedule over a 3-node fabric.  Every transport mode must deliver
   every payload exactly once per flow with bounded state; the ordered
   batched mode must additionally deliver in order, and on the unordered
   mode the commit protocol's sequence-aware clear marks must still drain
   every committed transaction's VAL/INV stream. *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport

type Zeus_net.Msg.payload += Msg of int

let qtest = QCheck_alcotest.to_alcotest

(* (loss, dup, reorder), [(src, dst, at_us); ...] — loss stays well under
   the give-up threshold (max_retries = 50 go-back-N rounds), so delivery
   always completes and exactly-once is the right property. *)
let case_gen =
  QCheck.Gen.(
    pair
      (triple
         (float_bound_inclusive 0.35)
         (float_bound_inclusive 0.5)
         (float_bound_inclusive 0.5))
      (list_size (1 -- 80)
         (triple (int_bound 2) (int_bound 2) (float_bound_inclusive 300.0))))

let print_case ((loss, dup, reorder), sends) =
  Printf.sprintf "loss=%.2f dup=%.2f reorder=%.2f sends=[%s]" loss dup reorder
    (String.concat "; "
       (List.map (fun (s, d, at) -> Printf.sprintf "%d->%d@%.0f" s d at) sends))

let case = QCheck.make ~print:print_case case_gen

let log tbl key v =
  let r =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace tbl key r;
      r
  in
  r := v :: !r

(* Returns per-flow send and delivery sequences (in order) plus the engine
   and transport for state assertions. *)
let run_case ?(permute = 0.0) ?(unordered = false) ~batched
    ((loss, dup, reorder), sends) =
  let e = Engine.create () in
  let fcfg =
    {
      Fabric.default_config with
      Fabric.loss_prob = loss;
      dup_prob = dup;
      delay_prob = reorder;
      permute_prob = permute;
    }
  in
  let f = Fabric.create e ~nodes:3 fcfg in
  let config =
    if batched then Transport.default_config
    else Transport.unbatched Transport.default_config
  in
  let config = if unordered then Transport.unordered config else config in
  let t = Transport.create ~config f in
  let sent = Hashtbl.create 16 and delivered = Hashtbl.create 16 in
  for node = 0 to 2 do
    Transport.set_handler t node (fun ~src payload ->
        match payload with Msg i -> log delivered (src, node) i | _ -> ())
  done;
  List.iteri
    (fun i (src, dst, at) ->
      ignore
        (Engine.schedule e ~after:at (fun () ->
             log sent (src, dst) i;
             Transport.send t ~src ~dst (Msg i))))
    sends;
  Engine.run ~max_events:5_000_000 e;
  (e, t, sent, delivered)

let flows sent delivered =
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) sent;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) delivered;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

let got tbl key = match Hashtbl.find_opt tbl key with Some r -> List.rev !r | None -> []

let exactly_once ?permute ?unordered ~batched c =
  let _, _, sent, delivered = run_case ?permute ?unordered ~batched c in
  List.for_all
    (fun key ->
      let s = List.sort compare (got sent key)
      and d = List.sort compare (got delivered key) in
      if s <> d then
        QCheck.Test.fail_reportf "flow %d->%d: sent %d payloads, delivered %d (%s)"
          (fst key) (snd key) (List.length s) (List.length d)
          (if List.length d > List.length s then "duplicates" else "losses")
      else true)
    (flows sent delivered)

let in_order_batched c =
  let _, _, sent, delivered = run_case ~batched:true c in
  List.for_all
    (fun key ->
      let s = got sent key and d = got delivered key in
      s = d
      || QCheck.Test.fail_reportf "flow %d->%d delivered out of order" (fst key)
           (snd key))
    (flows sent delivered)

let bounded_state ?permute ?unordered ~batched c =
  let e, t, _, _ = run_case ?permute ?unordered ~batched c in
  Engine.pending e = 0
  && Transport.tx_backlog t = 0
  && Transport.rx_backlog t = 0
  || QCheck.Test.fail_reportf "residual state: pending=%d tx_backlog=%d rx_backlog=%d"
       (Engine.pending e) (Transport.tx_backlog t) (Transport.rx_backlog t)

(* ---- commit streams on a hostile fabric ----------------------------------
   A real cluster on [Transport.unordered] over a lossy, duplicating,
   permuting fabric: every committed transaction's VAL/INV stream must
   still terminate — no wedged coordinator slots, no stored or buffered
   R-INVs left behind, and every replica converged on the final value.
   This is the qcheck face of the model checker's reordered-links
   scenarios: same protocol property, driven through the full runtime. *)

module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Com = Zeus_commit
module Value = Zeus_store.Value

let commit_case_gen =
  QCheck.Gen.(
    triple
      (triple
         (float_bound_inclusive 0.25)
         (float_bound_inclusive 0.4)
         (float_bound_inclusive 0.5))
      (5 -- 25) (* txns per thread *)
      (0 -- 1000) (* seed *))

let print_commit_case ((loss, dup, permute), txns, seed) =
  Printf.sprintf "loss=%.2f dup=%.2f permute=%.2f txns=%d seed=%d" loss dup permute
    txns seed

let commit_case = QCheck.make ~print:print_commit_case commit_case_gen

let commit_streams_terminate ((loss, dup, permute), txns, seed) =
  let config =
    {
      Config.default with
      Config.nodes = 3;
      seed = Int64.of_int seed;
      fabric =
        {
          Fabric.default_config with
          Fabric.loss_prob = loss;
          dup_prob = dup;
          permute_prob = permute;
        };
      transport = Transport.unordered Transport.default_config;
    }
  in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.populate c ~key:2 ~owner:0 (Value.of_int 0);
  (* two pipelines on the coordinator, interleaved keys: partial streams
     and extra-val VALs both occur *)
  let n0 = Cluster.node c 0 in
  for thread = 0 to 1 do
    let rec chain i =
      if i < txns then begin
        let key = 1 + (i mod 2) in
        Node.run_write n0 ~thread
          ~body:(fun ctx commit ->
            Node.read_write ctx key
              (fun v -> Value.of_int (Value.to_int v + 1))
              (fun _ -> commit ()))
          (fun _ -> chain (i + 1))
      end
    in
    chain 0
  done;
  Cluster.run_quiesce c ~max_us:3_000_000.0 ();
  let stuck ~what n =
    QCheck.Test.fail_reportf "node %d: %s after quiesce" n what
  in
  for n = 0 to 2 do
    let a = Node.commit_agent (Cluster.node c n) in
    if Com.Agent.inflight a <> 0 then stuck ~what:"open coordinator slots" n;
    if Com.Agent.stored_invs a <> 0 then stuck ~what:"stored R-INVs" n;
    if Com.Agent.buffered_invs a <> 0 then stuck ~what:"buffered R-INVs" n
  done;
  List.for_all
    (fun key ->
      let v n =
        Option.map
          (fun o -> Value.to_int o.Zeus_store.Obj.data)
          (Zeus_store.Table.find (Node.table (Cluster.node c n)) key)
      in
      let v0 = v 0 in
      (v0 <> None && v 1 = v0 && v 2 = v0)
      || QCheck.Test.fail_reportf "key %d: replicas diverged" key)
    [ 1; 2 ]

let suite =
  [
    qtest
      (QCheck.Test.make ~name:"transport: exactly-once per flow (batched)" ~count:30
         case (exactly_once ~batched:true));
    qtest
      (QCheck.Test.make ~name:"transport: exactly-once per flow (unbatched)" ~count:30
         case (exactly_once ~batched:false));
    qtest
      (QCheck.Test.make ~name:"transport: in-order delivery per flow (batched)"
         ~count:30 case in_order_batched);
    qtest
      (QCheck.Test.make ~name:"transport: quiescent and bounded state (batched)"
         ~count:30 case (bounded_state ~batched:true));
    qtest
      (QCheck.Test.make ~name:"transport: quiescent and bounded state (unbatched)"
         ~count:30 case (bounded_state ~batched:false));
    qtest
      (QCheck.Test.make
         ~name:"transport: exactly-once per flow (unordered + permuting)" ~count:30
         case
         (exactly_once ~permute:0.4 ~unordered:true ~batched:true));
    qtest
      (QCheck.Test.make
         ~name:"transport: quiescent and bounded state (unordered + permuting)"
         ~count:30 case
         (bounded_state ~permute:0.4 ~unordered:true ~batched:true));
    qtest
      (QCheck.Test.make
         ~name:"commit: streams terminate on lossy/dup/unordered fabric" ~count:25
         commit_case commit_streams_terminate);
  ]
