(* Benchmark harness.

   Default: regenerate every table and figure of the paper's evaluation
   (Table 2, the locality analysis, Figures 7-15) plus the ablations --
   printed as text tables with the paper-reported shapes alongside.

     dune exec bench/main.exe                 # everything (a few minutes)
     dune exec bench/main.exe -- --quick      # small smoke sweep
     dune exec bench/main.exe -- fig8 fig9    # selected experiments
     dune exec bench/main.exe -- --micro      # bechamel microbenchmarks

   The microbenchmarks time the protocol-critical code paths of this
   implementation (one simulated operation per iteration): useful for
   regressions of the simulator and protocol engines themselves. *)

module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

type Zeus_net.Msg.payload += Bench_ping

let drain cluster = Cluster.run_quiesce cluster ~max_us:1e7 ()

let micro_tests () =
  let open Bechamel in
  (* rng *)
  let rng = Zeus_sim.Rng.create 1L in
  let zipf = Zeus_sim.Rng.Zipf.create ~n:1_000_000 ~theta:0.99 in
  let t_rng =
    Test.make ~name:"rng/zipf-sample"
      (Staged.stage (fun () -> ignore (Zeus_sim.Rng.Zipf.sample zipf rng)))
  in
  (* heap *)
  let heap = Zeus_sim.Heap.create ~leq:(fun (a : int) b -> a <= b) in
  let t_heap =
    Test.make ~name:"sim/heap-push-pop"
      (Staged.stage (fun () ->
           Zeus_sim.Heap.push heap 42;
           ignore (Zeus_sim.Heap.pop heap)))
  in
  (* fabric round trip *)
  let engine = Zeus_sim.Engine.create () in
  let fabric = Zeus_net.Fabric.create engine ~nodes:2 Zeus_net.Fabric.default_config in
  Zeus_net.Fabric.set_handler fabric 1 (fun ~src:_ _ -> ());
  let t_fabric =
    Test.make ~name:"net/fabric-send-deliver"
      (Staged.stage (fun () ->
           Zeus_net.Fabric.send fabric ~src:0 ~dst:1 Bench_ping;
           Zeus_sim.Engine.run engine))
  in
  (* single-node local transaction *)
  let c1 =
    Cluster.create
      ~config:
        { Config.default with Config.nodes = 1; replication_degree = 1; dir_replicas = 1 }
      ()
  in
  Cluster.populate c1 ~key:1 ~owner:0 (Value.of_int 0);
  let n1 = Cluster.node c1 0 in
  let t_local =
    Test.make ~name:"txn/local-write-commit"
      (Staged.stage (fun () ->
           Node.run_write n1 ~thread:0
             ~body:(fun ctx commit ->
               Node.read_write ctx 1
                 (fun v -> Value.of_int (Value.to_int v + 1))
                 (fun _ -> commit ()))
             (fun _ -> ());
           drain c1))
  in
  (* 3-way replicated commit *)
  let c3 = Cluster.create () in
  Cluster.populate c3 ~key:1 ~owner:0 (Value.of_int 0);
  let n3 = Cluster.node c3 0 in
  let t_commit =
    Test.make ~name:"commit/3-way-reliable-commit"
      (Staged.stage (fun () ->
           Node.run_write n3 ~thread:0
             ~body:(fun ctx commit ->
               Node.read_write ctx 1
                 (fun v -> Value.of_int (Value.to_int v + 1))
                 (fun _ -> commit ()))
             (fun _ -> ());
           drain c3))
  in
  (* ownership ping-pong *)
  let cown = Cluster.create () in
  Cluster.populate cown ~key:7 ~owner:0 (Value.of_int 0);
  let flip = ref 1 in
  let t_own =
    Test.make ~name:"ownership/acquire-ping-pong"
      (Staged.stage (fun () ->
           Node.acquire_ownership (Cluster.node cown !flip) 7 (fun _ -> ());
           flip := (!flip + 1) mod 3;
           drain cown))
  in
  (* read-only transaction on a reader *)
  let t_ro =
    Test.make ~name:"txn/read-only-on-replica"
      (Staged.stage (fun () ->
           Node.run_read (Cluster.node c3 1) ~thread:0
             ~body:(fun ctx commit -> Node.read ctx 1 (fun _ -> commit ()))
             (fun _ -> ());
           drain c3))
  in
  (* hermes write *)
  let he = Zeus_sim.Engine.create () in
  let hf = Zeus_net.Fabric.create he ~nodes:3 Zeus_net.Fabric.default_config in
  let ht = Zeus_net.Transport.create hf in
  let replicas = [ 0; 1; 2 ] in
  let hs = List.map (fun n -> Zeus_lb.Hermes.create ~node:n ~replicas ht) replicas in
  List.iteri
    (fun i h ->
      Zeus_net.Transport.set_handler ht i (fun ~src payload ->
          ignore (Zeus_lb.Hermes.handle h ~src payload)))
    hs;
  let h0 = List.hd hs in
  let t_hermes =
    Test.make ~name:"lb/hermes-replicated-write"
      (Staged.stage (fun () ->
           Zeus_lb.Hermes.write h0 ~key:3 (Value.of_int 9) (fun () -> ());
           Zeus_sim.Engine.run he))
  in
  (* baseline distributed transaction *)
  let be = Zeus_baseline.Engine.create ~primary_of:(fun k -> k mod 3) () in
  let t_base =
    Test.make ~name:"baseline/occ-2pc-txn"
      (Staged.stage (fun () ->
           Zeus_baseline.Engine.submit be ~home:0
             (Zeus_workload.Spec.write_txn [ 1; 2 ])
             (fun _ -> ());
           Zeus_sim.Engine.run (Zeus_baseline.Engine.engine be)))
  in
  [ t_rng; t_heap; t_fabric; t_local; t_commit; t_own; t_ro; t_hermes; t_base ]

let run_micro () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"zeus" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n== microbenchmarks (ns per simulated operation) ==\n";
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> Printf.printf "  %-44s %12.1f\n" name est
      | Some [] | None -> Printf.printf "  %-44s %12s\n" name "n/a")
    (List.sort compare rows);
  Printf.printf "%!"

(* Machine-readable results for the locality experiment (CI trend tracking;
   no JSON library in the tree, so emit by hand with non-finite guards). *)
let emit_locality_json path =
  match Zeus_experiments.Predictive.last_results () with
  | None -> ()
  | Some r ->
    let module P = Zeus_experiments.Predictive in
    let num x = if Float.is_finite x then Printf.sprintf "%.3f" x else "null" in
    let arm (a : P.arm) =
      Printf.sprintf
        "{\"committed\": %d, \"remote_fraction\": %s, \"p50_us\": %s, \"p99_us\": %s, \
         \"prefetch_hits\": %d, \"prefetch_misses\": %d, \"hints\": %d, \"pins\": %d, \
         \"reassigns\": %d}"
        a.P.committed
        (num (P.remote_fraction a))
        (num a.P.p50) (num a.P.p99) a.P.hits a.P.misses a.P.hints a.P.pins a.P.reassigns
    in
    let pair (reactive, predictive) =
      Printf.sprintf "{\"reactive\": %s, \"predictive\": %s}" (arm reactive)
        (arm predictive)
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\"quick\": %b,\n \"trajectory\": %s,\n \"skew\": %s,\n \"uniform\": %s}\n"
      r.P.quick (pair r.P.trajectory) (pair r.P.skew) (pair r.P.uniform);
    close_out oc;
    Printf.printf "wrote %s\n%!" path

(* Machine-readable results for the transport ablation (consumed by the
   bench-smoke CI check). *)
let emit_transport_json path =
  match Zeus_experiments.Transport_ab.last_results () with
  | None -> ()
  | Some r ->
    let module T = Zeus_experiments.Transport_ab in
    let num x = if Float.is_finite x then Printf.sprintf "%.4f" x else "null" in
    let arm (a : T.arm) =
      Printf.sprintf
        "{\"committed\": %d, \"mtps\": %s, \"abort_rate\": %s, \"p50_us\": %s, \
         \"p99_us\": %s, \"messages\": %d, \"bytes\": %d, \"events\": %d, \
         \"messages_per_txn\": %s, \"bytes_per_txn\": %s, \"events_per_txn\": %s, \
         \"retransmissions\": %d, \"frames\": %d, \"payloads\": %d, \
         \"mean_occupancy\": %s, \"acks_piggybacked\": %d, \"acks_standalone\": %d}"
        a.T.committed (num a.T.mtps) (num a.T.abort_rate) (num a.T.p50) (num a.T.p99)
        a.T.messages a.T.bytes a.T.events
        (num (T.msgs_per_txn a))
        (num (T.bytes_per_txn a))
        (num (T.events_per_txn a))
        a.T.retransmissions a.T.frames a.T.payloads (num a.T.mean_occupancy)
        a.T.piggybacked_acks a.T.standalone_acks
    in
    let pair (unbatched, batched) =
      Printf.sprintf "{\"unbatched\": %s, \"batched\": %s}" (arm unbatched) (arm batched)
    in
    let oc = open_out path in
    Printf.fprintf oc "{\"quick\": %b,\n \"smallbank\": %s,\n \"handover\": %s}\n"
      r.T.quick (pair r.T.smallbank) (pair r.T.handover);
    close_out oc;
    Printf.printf "wrote %s\n%!" path

(* Machine-readable results for the fault-injection experiment (consumed
   by the chaos-smoke CI check). *)
let emit_faults_json path =
  match Zeus_experiments.Faults.last_results () with
  | None -> ()
  | Some r ->
    Zeus_chaos.Report.write ~path (Zeus_experiments.Faults.report r);
    Printf.printf "wrote %s\n%!" path

(* Machine-readable results for the failure-detection sweep (consumed by
   the detect-smoke CI check). *)
let emit_detection_json path =
  match Zeus_experiments.Detection.last_results () with
  | None -> ()
  | Some r ->
    let module D = Zeus_experiments.Detection in
    let num x = if Float.is_finite x then Printf.sprintf "%.1f" x else "null" in
    let opt_num = function Some x -> num x | None -> "null" in
    let combo (c : D.combo) =
      Printf.sprintf
        "{\"period_us\": %s, \"min_timeout_us\": %s, \"bound_us\": %s, \
         \"detect_latency_us\": %s, \"within_bound\": %b, \"recovered\": %b, \
         \"crash_suspicions\": %d, \"noise_suspicions\": %d, \
         \"noise_retractions\": %d, \"noise_false_suspicions\": %d, \
         \"noise_evictions_averted\": %d, \"noise_views_installed\": %d}"
        (num c.D.period_us) (num c.D.min_timeout_us) (num c.D.bound_us)
        (opt_num c.D.detect_latency_us) c.D.within_bound c.D.recovered
        c.D.crash_suspicions c.D.noise_suspicions c.D.noise_retractions
        c.D.noise_false_suspicions c.D.noise_evictions_averted
        c.D.noise_views_installed
    in
    let oc = open_out path in
    Printf.fprintf oc "{\"quick\": %b,\n \"seed\": %Ld,\n \"combos\": [\n  %s\n ]}\n"
      r.D.quick r.D.seed
      (String.concat ",\n  " (List.map combo r.D.combos));
    close_out oc;
    Printf.printf "wrote %s\n%!" path

(* Machine-readable results for the perf harness (consumed by the
   perf-smoke CI check: events/sec trajectory + -j sweep scaling). *)
let emit_perf_json path =
  match Zeus_experiments.Perf.last_results () with
  | None -> ()
  | Some r ->
    let module P = Zeus_experiments.Perf in
    let num x = if Float.is_finite x then Printf.sprintf "%.3f" x else "null" in
    let opt_num = function Some x -> num x | None -> "null" in
    let s = r.P.smallbank in
    let oc = open_out path in
    Printf.fprintf oc
      "{\"quick\": %b,\n \"repeats\": %d,\n \"cores\": %d,\n \
       \"smallbank\": {\"events_per_sec\": %s, \"events\": %d, \"wall_s\": %s, \
       \"committed\": %d, \"sim_us\": %s, \"minor_words\": %s, \
       \"major_words\": %s, \"words_per_event\": %s},\n \
       \"baseline_events_per_sec\": %s,\n \"speedup\": %s,\n \
       \"regression_ok\": %b,\n \
       \"sweep\": {\"points\": %d, \"jobs\": %d, \"j1_wall_s\": %s, \
       \"jn_wall_s\": %s, \"speedup\": %s, \"identical\": %b}}\n"
      r.P.quick r.P.repeats r.P.cores
      (num s.P.events_per_sec) s.P.events (num s.P.wall_s) s.P.committed
      (num s.P.sim_us) (num s.P.minor_words) (num s.P.major_words)
      (num s.P.words_per_event)
      (opt_num r.P.baseline_events_per_sec)
      (opt_num r.P.speedup) r.P.regression_ok r.P.sweep_points r.P.sweep_jobs
      (num r.P.sweep_j1_wall_s) (num r.P.sweep_jn_wall_s)
      (num r.P.sweep_speedup) r.P.sweep_identical;
    close_out oc;
    Printf.printf "wrote %s\n%!" path

let () =
  (* A simulation run allocates ~10^8 short-lived words (events, messages,
     closures) whose lifetime is a few virtual µs; with the default 256 kw
     minor heap a large fraction is promoted only to die in the next major
     cycle.  A 16 Mw minor heap lets that garbage die young, and a relaxed
     space_overhead keeps the major GC off the hot loop — together worth
     ~25 % events/sec on the smallbank perf run (DESIGN.md §12). *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024; Gc.space_overhead = 400 };
  (* Experiment tables go through Tlog at Info; the library default (Warn)
     would silence them for this user-facing entry point. *)
  Zeus_telemetry.Tlog.set_level Zeus_telemetry.Tlog.Info;
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let micro = List.mem "--micro" args in
  (* -j N: run independent sweep points on N domains (default 1). *)
  let rec parse_jobs = function
    | "-j" :: n :: _ -> int_of_string_opt n
    | a :: rest ->
      (match String.length a > 2 && String.sub a 0 2 = "-j" with
      | true -> int_of_string_opt (String.sub a 2 (String.length a - 2))
      | false -> parse_jobs rest)
    | [] -> None
  in
  Option.iter Zeus_experiments.Sweep.set_jobs (parse_jobs args);
  let args =
    (* Drop "-j" "N" so the N isn't mistaken for an experiment id. *)
    let rec strip = function
      | "-j" :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  if micro then run_micro ()
  else begin
    Printf.printf "Zeus benchmark harness -- regenerating the paper's evaluation\n";
    Printf.printf "(%s)\n%!" (Zeus_experiments.Exp.scale_note ~quick);
    (match ids with
    | [] -> Zeus_experiments.Experiments.run_all ~quick
    | ids ->
      List.iter
        (fun id ->
          if not (Zeus_experiments.Experiments.run_one ~quick id) then
            Printf.printf "unknown experiment %S; known: %s\n" id
              (String.concat ", " (Zeus_experiments.Experiments.names ())))
        ids);
    emit_locality_json "BENCH_locality.json";
    emit_transport_json "BENCH_transport.json";
    emit_faults_json "BENCH_faults.json";
    emit_detection_json "BENCH_detection.json";
    emit_perf_json "BENCH_perf.json";
    Printf.printf "\nAll experiments done.\n%!"
  end
