(* Command-line front end.

     zeus_cli list                 # show reproducible experiments
     zeus_cli run fig8 [--quick]   # regenerate one table/figure
     zeus_cli run all [--quick]    # the whole evaluation
     zeus_cli bench smallbank --nodes 3 --remote 0.02
                                   # one-off Zeus throughput measurement
     zeus_cli chaos --seed 7 --faults 4 --quick
                                   # Smallbank under a random fault schedule
     zeus_cli trace --workload smallbank --quick --out trace.json
                                   # per-transaction phase trace capture *)

open Cmdliner
module Tel = Zeus_telemetry

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small populations and short runs.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent sweep points on $(docv) domains (cores).  \
           Results are bit-identical to -j 1; only wall-clock changes.")

(* ---- list ---- *)

let list_cmd =
  let run () =
    Printf.printf "%-10s %s\n" "id" "description";
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-10s %s\n" id descr)
      Zeus_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see $(b,list)) or $(b,all).")
  in
  let run quick jobs id =
    Zeus_experiments.Sweep.set_jobs jobs;
    if id = "all" then begin
      Zeus_experiments.Experiments.run_all ~quick;
      `Ok ()
    end
    else if Zeus_experiments.Experiments.run_one ~quick id then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "unknown experiment %S; known: all, %s" id
            (String.concat ", " (Zeus_experiments.Experiments.names ())) )
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate one of the paper's tables/figures (or $(b,all)).")
    Term.(ret (const run $ quick $ jobs $ id))

(* ---- bench ---- *)

let bench_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some (enum [ ("smallbank", `Smallbank); ("tatp", `Tatp) ])) None
      & info [] ~docv:"WORKLOAD" ~doc:"smallbank or tatp.")
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Cluster size.") in
  let remote =
    Arg.(
      value
      & opt float 0.0
      & info [ "remote" ] ~doc:"Fraction of write transactions with drifted accesses.")
  in
  let duration =
    Arg.(value & opt float 15_000.0 & info [ "duration-us" ] ~doc:"Measured window.")
  in
  let run workload nodes remote duration =
    let config = { Zeus_core.Config.default with Zeus_core.Config.nodes } in
    let cluster = Zeus_core.Cluster.create ~config () in
    let rng = Zeus_sim.Engine.fork_rng (Zeus_core.Cluster.engine cluster) in
    let issue, name =
      match workload with
      | `Smallbank ->
        let w =
          Zeus_workload.Smallbank.create ~accounts_per_node:10_000 ~nodes
            ~remote_frac:remote rng
        in
        Zeus_core.Cluster.populate_n cluster ~n:(Zeus_workload.Smallbank.total_keys w)
          ~owner_of:(fun k -> Zeus_workload.Smallbank.home_of_key w k)
          (fun _ -> Bytes.copy Zeus_workload.Smallbank.initial_value);
        ( (fun node ~thread -> Zeus_workload.Smallbank.gen w ~home:(Zeus_core.Node.id node) |> fun s -> (s, thread)),
          "smallbank" )
      | `Tatp ->
        let w =
          Zeus_workload.Tatp.create ~subscribers_per_node:10_000 ~nodes
            ~remote_frac:remote rng
        in
        Zeus_core.Cluster.populate_n cluster ~n:(Zeus_workload.Tatp.total_keys w)
          ~owner_of:(fun k -> Zeus_workload.Tatp.home_of_key w k)
          (fun _ -> Bytes.copy Zeus_workload.Tatp.initial_value);
        ( (fun node ~thread -> Zeus_workload.Tatp.gen w ~home:(Zeus_core.Node.id node) |> fun s -> (s, thread)),
          "tatp" )
    in
    let r =
      Zeus_workload.Driver.run cluster ~warmup_us:2_000.0 ~duration_us:duration
        ~issue:(fun node ~thread ~seq:_ done_ ->
          let spec, thread = issue node ~thread in
          Zeus_workload.Spec.run_on_zeus node ~thread spec (fun o ->
              done_ (o = Zeus_store.Txn.Committed)))
        ()
    in
    Format.printf "%s on %d nodes (remote %.1f%%): %a@." name nodes (100.0 *. remote)
      Zeus_workload.Driver.pp_result r
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"One-off Zeus throughput measurement.")
    Term.(const run $ workload $ nodes $ remote $ duration)

(* ---- chaos ---- *)

let chaos_cmd =
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Schedule seed (same seed, same fault timeline).")
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Cluster size.") in
  let faults =
    Arg.(value & opt int 3 & info [ "faults" ] ~doc:"Incident windows in the random schedule.")
  in
  let duration =
    Arg.(
      value
      & opt float 20_000.0
      & info [ "duration-us" ] ~doc:"Virtual time under chaos (after warm-up).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH" ~doc:"Write the machine-readable report (JSON).")
  in
  let detected =
    Arg.(
      value & flag
      & info [ "detected" ]
          ~doc:
            "No membership oracle: crashes must be detected end-to-end \
             (heartbeat silence, quorum suspicion, lease expiry) before the \
             view changes.")
  in
  let run quick seed nodes faults duration out detected =
    let module Chaos = Zeus_chaos in
    let module Cluster = Zeus_core.Cluster in
    let module Node = Zeus_core.Node in
    let module Engine = Zeus_sim.Engine in
    (* auto_trim off for the same reason as the faults experiment: the
       known trim-wedge corner would read as a chaos-found regression. *)
    let config =
      {
        Zeus_core.Config.default with
        Zeus_core.Config.nodes;
        auto_trim = false;
        membership_mode =
          (if detected then Zeus_membership.Service.Detected
           else Zeus_membership.Service.Oracle);
      }
    in
    let cluster = Cluster.create ~config () in
    let eng = Cluster.engine cluster in
    let rng = Engine.fork_rng eng in
    let w =
      Zeus_workload.Smallbank.create
        ~accounts_per_node:(if quick then 50 else 200)
        ~nodes ~remote_frac:0.1 rng
    in
    Cluster.populate_n cluster ~n:(Zeus_workload.Smallbank.total_keys w)
      ~owner_of:(fun k -> Zeus_workload.Smallbank.home_of_key w k)
      (fun _ -> Bytes.copy Zeus_workload.Smallbank.initial_value);
    let warmup_us = if quick then 1_000.0 else 3_000.0 in
    let duration = if quick then Float.min duration 10_000.0 else duration in
    let schedule =
      Chaos.Schedule.random ~seed ~nodes ~start_us:warmup_us ~duration_us:duration
        ~faults ()
    in
    Tel.Tlog.info_string (Chaos.Schedule.to_string schedule ^ "\n");
    let monitor = Chaos.Monitor.attach cluster in
    let nemesis = Chaos.Nemesis.attach ~monitor cluster schedule in
    let end_us = warmup_us +. duration +. 6_000.0 in
    let issuing = ref true in
    for n = 0 to nodes - 1 do
      let node = Cluster.node cluster n in
      for thread = 0 to 3 do
        let rec loop () =
          if !issuing then begin
            if Node.is_alive node then
              Zeus_workload.Spec.run_on_zeus node ~thread
                (Zeus_workload.Smallbank.gen w ~home:(Node.id node))
                (fun _ -> loop ())
            else ignore (Engine.schedule eng ~after:250.0 (fun () -> loop ()))
          end
        in
        ignore
          (Engine.schedule eng
             ~after:(0.1 *. float_of_int ((n * 4) + thread))
             (fun () -> loop ()))
      done
    done;
    Cluster.run cluster ~until_us:end_us;
    issuing := false;
    Chaos.Monitor.stop monitor;
    Cluster.run_quiesce cluster ~max_us:(end_us +. 100_000.0) ();
    List.iter
      (fun (at, f) ->
        Tel.Tlog.infof "%10.1f us  %s" at (Chaos.Schedule.fault_to_string f))
      (Chaos.Nemesis.applied nemesis);
    Tel.Tlog.infof "%d committed, %d aborted, %d monitor samples"
      (Cluster.total_committed cluster)
      (Cluster.total_aborted cluster)
      (Chaos.Monitor.samples monitor);
    if Chaos.Nemesis.no_oracle nemesis then begin
      let d = Zeus_membership.Service.det_stats (Cluster.membership cluster) in
      Tel.Tlog.infof
        "detection: %d heartbeats, %d suspicions (%d retracted), %d false, %d \
         fenced, %d averted, %d views"
        d.Zeus_membership.Service.heartbeats d.Zeus_membership.Service.suspicions
        d.Zeus_membership.Service.retractions
        d.Zeus_membership.Service.false_suspicions d.Zeus_membership.Service.fences
        d.Zeus_membership.Service.evictions_averted
        d.Zeus_membership.Service.views_installed
    end;
    let fault_at_us =
      match Chaos.Nemesis.applied nemesis with (at, _) :: _ -> at | [] -> warmup_us
    in
    let scenario =
      Chaos.Report.of_monitor
        ~name:(Printf.sprintf "random-%Ld" seed)
        ~fault_at_us
        ~detection:(Chaos.Report.detection_of_service (Cluster.membership cluster))
        ~committed:(Cluster.total_committed cluster)
        ~aborted:(Cluster.total_aborted cluster)
        monitor
    in
    Option.iter
      (fun path ->
        Chaos.Report.write ~path
          { Chaos.Report.quick; seed; scenarios = [ scenario ] };
        Tel.Tlog.infof "wrote %s" path)
      out;
    match Chaos.Monitor.check_final monitor with
    | Ok () ->
      Tel.Tlog.infof "all invariants held under %d applied faults"
        (List.length (Chaos.Nemesis.applied nemesis));
      `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run Smallbank under a seeded random fault schedule with the online \
          invariant monitors armed; non-zero exit on any violation.")
    Term.(ret (const run $ quick $ seed $ nodes $ faults $ duration $ out $ detected))

(* ---- model ---- *)

let model_cmd =
  let max_states =
    Arg.(
      value & opt int 200_000
      & info [ "max-states" ] ~docv:"N" ~doc:"Exploration cap per scenario.")
  in
  let show_trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"On a violation, print the whole offending interleaving.")
  in
  let run quick max_states show_trace =
    let module E = Zeus_model.Explorer in
    let module O = Zeus_model.Core_harness.Ownership in
    let module C = Zeus_model.Core_harness.Commit in
    let cap = if quick then min max_states 30_000 else max_states in
    let total = ref 0 in
    let failed = ref false in
    let report name pp (stats : _ E.stats) =
      total := !total + stats.E.explored;
      match stats.E.violation with
      | None ->
        Tel.Tlog.infof "%-48s %7d states, %8d transitions, depth %3d, %5d quiescent"
          name stats.E.explored stats.E.transitions stats.E.max_depth
          stats.E.quiescent
      | Some (bad, msg) ->
        failed := true;
        Tel.Tlog.infof "%-48s VIOLATION after %d states (trace length %d): %s" name
          stats.E.explored (List.length stats.E.trace) msg;
        if show_trace then
          List.iteri (fun i s -> Format.eprintf "--- step %d ---@.%a@." i pp s) stats.E.trace
        else Format.eprintf "%a@." pp bad
    in
    report "ownership core: contention, no faults" O.pp_state
      (O.explore
         ~config:{ O.default_config with O.crashable = []; dup_budget = 0 }
         ~max_states:cap ());
    report "ownership core: contention + duplication" O.pp_state
      (O.explore
         ~config:{ O.default_config with O.crashable = []; dup_budget = 1 }
         ~max_states:cap ());
    report "ownership core: owner/driver crash, 1 requester" O.pp_state
      (O.explore ~config:{ O.default_config with O.requesters = [ 3 ] } ~max_states:cap ());
    report "ownership core: contention + crash" O.pp_state (O.explore ~max_states:cap ());
    (* The ownership scenarios above all run with [fifo = false] — the net
       is an arbitrarily reordered multiset, pinning that the ownership
       protocol never leans on link order.  The FIFO run below is the
       strict-subset sanity check (ordered transport). *)
    report "ownership core: contention + crash, FIFO links" O.pp_state
      (O.explore ~config:{ O.default_config with O.fifo = true } ~max_states:cap ());
    report "commit core: pipelined, partial streams" C.pp_state
      (C.explore ~config:{ C.default_config with C.crash = false } ~max_states:cap ());
    report "commit core: duplication" C.pp_state
      (C.explore
         ~config:{ C.default_config with C.crash = false; dup_budget = 1 }
         ~max_states:cap ());
    report "commit core: coordinator crash + replay" C.pp_state
      (C.explore ~max_states:cap ());
    (* Reordering runs: with the sequence-aware clear marks (the default)
       the commit protocol must stay safe AND live on links that permute
       delivery — the historical VAL-overtakes-first-INV deadlock is
       closed by protocol, not by leaning on the transport. *)
    report "commit core: reordered links" C.pp_state
      (C.explore
         ~config:{ C.default_config with C.crash = false; fifo = false }
         ~max_states:cap ());
    report "commit core: reordered links + crash/replay" C.pp_state
      (C.explore ~config:{ C.default_config with C.fifo = false } ~max_states:cap ());
    (* Negative control: the historical arrival-order clearing
       ([clear_marks = Legacy]) HAS the liveness hole under reordering (an
       R-VAL overtaking a pipe's first R-INV leaves that INV buffered
       forever).  The checker must still find that seeded counterexample —
       losing it would mean the harness lost its nondeterminism. *)
    (let stats =
       C.explore
         ~config:
           {
             C.default_config with
             C.crash = false;
             fifo = false;
             clear_marks = Zeus_commit.Core.Legacy;
           }
         ~max_states:(min cap 20_000) ()
     in
     total := !total + stats.E.explored;
     match stats.E.violation with
     | Some (_, msg) ->
       Tel.Tlog.infof "%-48s deadlock reproduced after %d states (expected): %s"
         "commit core: reordered links, legacy clear marks" stats.E.explored msg;
       (* the pinned counterexample is the artifact model-smoke archives *)
       if show_trace then
         List.iteri
           (fun i s -> Format.eprintf "--- step %d ---@.%a@." i C.pp_state s)
           stats.E.trace
     | None ->
       failed := true;
       Tel.Tlog.infof "%-48s FAILED to reproduce the seeded reordering deadlock"
         "commit core: reordered links, legacy clear marks");
    Tel.Tlog.infof "total: %d states explored across 11 scenarios" !total;
    if !failed then `Error (false, "model checking found a violation")
    else if !total < 10_000 then
      `Error
        ( false,
          Printf.sprintf
            "suspiciously small state space (%d < 10000 states): the harness \
             lost its nondeterminism"
            !total )
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Bounded model checking of the real sans-I/O protocol cores \
          (interleavings, duplication, crash + replay/recovery); non-zero \
          exit on any invariant violation.")
    Term.(ret (const run $ quick $ max_states $ show_trace))

(* ---- trace ---- *)

(* Structural acceptance check on the recorded spans: every committed
   transaction must carry ownership -> execute -> replicate phase children
   with monotone, nested sim-time bounds. *)
let check_spans tr =
  let all = Tel.Trace.spans tr in
  (* One pass to index children by parent id: [Trace.children] re-sorts the
     whole list per call, far too slow for tens of thousands of roots. *)
  let by_parent = Hashtbl.create 4096 in
  List.iter
    (fun (sp : Tel.Trace.span) ->
      let p = sp.Tel.Trace.parent in
      if p >= 0 then
        Hashtbl.replace by_parent p
          (sp :: Option.value ~default:[] (Hashtbl.find_opt by_parent p)))
    all;
  let committed =
    List.filter
      (fun (sp : Tel.Trace.span) ->
        sp.Tel.Trace.parent < 0
        && sp.Tel.Trace.name = "txn"
        && List.assoc_opt "result" sp.Tel.Trace.args = Some "committed")
      all
  in
  if committed = [] then Error "no committed transactions were traced"
  else begin
    let bad = ref None in
    List.iter
      (fun (root : Tel.Trace.span) ->
        if !bad = None then begin
          let kids =
            Option.value ~default:[]
              (Hashtbl.find_opt by_parent root.Tel.Trace.id)
          in
          let find n =
            List.find_opt (fun (k : Tel.Trace.span) -> k.Tel.Trace.name = n) kids
          in
          match (find "ownership", find "execute", find "replicate") with
          | Some o, Some e, Some r ->
            let open Tel.Trace in
            let ordered =
              root.start <= o.start && o.start <= o.stop && o.stop <= e.start
              && e.start <= e.stop && e.stop <= r.start && r.start <= r.stop
              && r.stop <= root.stop
            in
            if not ordered then
              bad :=
                Some
                  (Printf.sprintf "txn span %d: phase bounds not monotone/nested"
                     root.id)
          | _ ->
            bad :=
              Some
                (Printf.sprintf "txn span %d: missing phase spans" root.Tel.Trace.id)
        end)
      committed;
    match !bad with None -> Ok (List.length committed) | Some e -> Error e
  end

(* The written file must be loadable Chrome trace JSON. *)
let check_json file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Tel.Jsonv.parse s with
  | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" file e)
  | Ok v -> (
    match Option.bind (Tel.Jsonv.member "traceEvents" v) Tel.Jsonv.to_list with
    | None -> Error (Printf.sprintf "%s: no traceEvents array" file)
    | Some events -> Ok (List.length events))

let trace_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("smallbank", `Smallbank); ("tatp", `Tatp) ]) `Smallbank
      & info [ "workload" ] ~docv:"WORKLOAD" ~doc:"smallbank or tatp.")
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Cluster size.") in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Chrome trace_event output file.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"PATH" ~doc:"Also write one JSON object per span.")
  in
  let run quick workload nodes out jsonl =
    let config = { Zeus_core.Config.default with Zeus_core.Config.nodes } in
    let cluster = Zeus_core.Cluster.create ~config ~tracing:true () in
    let rng = Zeus_sim.Engine.fork_rng (Zeus_core.Cluster.engine cluster) in
    let per_node = if quick then 2_000 else 10_000 in
    let warmup_us = if quick then 500.0 else 2_000.0 in
    let duration_us = if quick then 3_000.0 else 15_000.0 in
    let issue, name =
      match workload with
      | `Smallbank ->
        let w =
          Zeus_workload.Smallbank.create ~accounts_per_node:per_node ~nodes
            ~remote_frac:0.0 rng
        in
        Zeus_core.Cluster.populate_n cluster ~n:(Zeus_workload.Smallbank.total_keys w)
          ~owner_of:(fun k -> Zeus_workload.Smallbank.home_of_key w k)
          (fun _ -> Bytes.copy Zeus_workload.Smallbank.initial_value);
        ( (fun node -> Zeus_workload.Smallbank.gen w ~home:(Zeus_core.Node.id node)),
          "smallbank" )
      | `Tatp ->
        let w =
          Zeus_workload.Tatp.create ~subscribers_per_node:per_node ~nodes
            ~remote_frac:0.0 rng
        in
        Zeus_core.Cluster.populate_n cluster ~n:(Zeus_workload.Tatp.total_keys w)
          ~owner_of:(fun k -> Zeus_workload.Tatp.home_of_key w k)
          (fun _ -> Bytes.copy Zeus_workload.Tatp.initial_value);
        ((fun node -> Zeus_workload.Tatp.gen w ~home:(Zeus_core.Node.id node)), "tatp")
    in
    let r =
      Zeus_workload.Driver.run cluster ~warmup_us ~duration_us
        ~issue:(fun node ~thread ~seq:_ done_ ->
          Zeus_workload.Spec.run_on_zeus node ~thread (issue node) (fun o ->
              done_ (o = Zeus_store.Txn.Committed)))
        ()
    in
    let tr = Zeus_core.Cluster.trace cluster in
    Tel.Trace.write_chrome tr out;
    Option.iter (Tel.Trace.write_jsonl tr) jsonl;
    match (check_spans tr, check_json out) with
    | Ok txns, Ok events ->
      Tel.Tlog.infof "%s on %d nodes: %d committed, %d spans (%d dropped)" name
        nodes r.Zeus_workload.Driver.committed (Tel.Trace.count tr)
        (Tel.Trace.dropped tr);
      Tel.Tlog.infof
        "%s: %d trace events, all committed txns have \
         ownership/execute/replicate phases (%d checked)"
        out events txns;
      Option.iter (Tel.Tlog.infof "%s: span-per-line JSONL written") jsonl;
      Zeus_experiments.Exp.print_phase_breakdown "per-phase txn latency" cluster;
      `Ok ()
    | Error e, _ | _, Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced workload and export per-transaction phase spans as \
          Chrome trace_event JSON (chrome://tracing, Perfetto).")
    Term.(ret (const run $ quick $ workload $ nodes $ out $ jsonl))

let () =
  (* Large minor heap: simulation garbage (events, messages, closures) is
     short-lived; the default 256 kw nursery promotes much of it only to
     die in the next major cycle.  See DESIGN.md §12. *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 16 * 1024 * 1024; Gc.space_overhead = 400 };
  Tel.Tlog.set_level Tel.Tlog.Info;
  let doc = "Zeus: locality-aware distributed transactions (EuroSys '21 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "zeus_cli" ~doc)
          [ list_cmd; run_cmd; bench_cmd; chaos_cmd; model_cmd; trace_cmd ]))
