(** Deployment and cost-model configuration — every knob in one record.

    One {!t} value configures a whole cluster: topology and replication
    degree, the CPU cost model, application-level retry/pipelining policy,
    the message fabric and reliable transport, the ownership agent's
    timeouts, predictive locality, and the membership/failure-detection
    mode.  Fault injection is not a field here: faults are either fabric
    knobs ({!Zeus_net.Fabric.config} — loss, duplication, reordering,
    partitions) set through [fabric], or declarative chaos schedules
    ({!Zeus_chaos.Schedule}) attached to a running cluster by
    {!Zeus_chaos.Nemesis}.

    The CPU costs (in µs) model the paper's testbed: dual-socket Skylake
    at 2.7 GHz with DPDK kernel-bypass messaging, where processing one
    small protocol message costs a few hundred nanoseconds and payloads
    pay a per-byte copy cost.  Absolute throughput depends on these
    constants; the comparisons between Zeus and the baselines depend only
    on message counts and blocking structure, which the protocols
    determine. *)

type t = {
  nodes : int;  (** cluster size (paper testbed: 3-6) *)
  replication_degree : int;  (** replicas per object, owner included (paper: 3) *)
  dir_replicas : int;  (** directory replication (paper: 3) *)
  app_threads : int;  (** application worker threads per node (paper: 10) *)
  ds_threads : int;  (** datastore worker threads per node (paper: 10) *)
  (* CPU cost model, µs *)
  msg_proc_us : float;  (** handling one received protocol message *)
  byte_proc_us : float;  (** per payload byte (copy in/out) *)
  local_commit_us : float;  (** single-node local commit *)
  txn_dispatch_us : float;  (** fixed per-transaction overhead at the app thread *)
  ownership_dispatch_us : float;
      (** app-side thread time to issue one ownership request and install
          the result, on top of the request's 1.5-RTT blocking wait (§3.2).
          Calibrated from the paper's own figures: one worker thread
          sustains 25 K ownership ops/s while the request latency is
          17 µs (§8.4), i.e. ~40 µs of thread time per op. *)
  (* application-level policies *)
  pipeline_depth : int;  (** max in-flight reliable commits per thread (§5.2) *)
  backoff_base_us : float;  (** exponential back-off on aborts (§6.2) *)
  backoff_max_us : float;  (** back-off cap *)
  max_retries : int;  (** transaction retry budget before giving up *)
  auto_trim : bool;
      (** issue Remove_reader out of the critical path to restore the
          replication degree after a non-replica acquired ownership (§6.2) *)
  distributed_directory : bool;
      (** place each object's directory replicas by consistent hashing over
          all nodes instead of on one fixed replicated directory — the
          scalable scheme §6.2 prescribes for large deployments or limited
          locality *)
  record_history : bool;  (** feed the serializability checker (tests) *)
  locality : Zeus_locality.Engine.config;
      (** predictive ownership placement (access tracking, prefetch,
          anti-ping-pong pinning); disabled by default — with
          [locality.enabled = false] no engine is created and placement is
          exactly the paper's reactive behaviour *)
  fabric : Zeus_net.Fabric.config;
      (** message fabric: per-hop latency and bandwidth model, message CPU
          cost, and fault injection (loss, duplication, extra reordering
          delay, partitions, crash-stop) *)
  transport : Zeus_net.Transport.config;
      (** reliable-messaging layer; [transport.batching] (on by default)
          coalesces same-destination protocol messages within
          [transport.flush_window_us] into multi-payload frames with
          cumulative acks and per-link in-order delivery (the RDMA RC
          contract of §3.1).  Since the sequence-aware clear marks of
          [Zeus_commit.Core], in-order delivery is a latency optimization,
          not a correctness requirement: [Zeus_net.Transport.unordered]
          relaxes it (out-of-window payloads deliver immediately) and the
          protocols stay live — model-checked by [zeus_cli model]'s
          reordering scenarios.  Set [Zeus_net.Transport.unbatched] for
          the historical one-frame-per-message behaviour (model checking,
          ablations). *)
  ownership : Zeus_ownership.Agent.config;
      (** ownership-protocol timeouts: request timeout, arb-replay delay,
          replay sweep period *)
  commit_clear_marks : Zeus_commit.Core.clear_marks;
      (** follower-side R-VAL discipline of the reliable-commit protocol.
          [Sequenced] (default): R-VALs carry explicit slot watermarks, so
          commit streams tolerate arbitrary per-link reordering.
          [Legacy]: the historical arrival-order scheme, only live on FIFO
          links — kept as a compat knob pinning the known
          VAL-overtakes-first-INV deadlock as a model-checker negative
          control. *)
  lease_us : float;  (** membership lease length (§3.1) *)
  detect_us : float;  (** Oracle-mode failure-detection latency by fiat *)
  membership_mode : Zeus_membership.Service.mode;
      (** [Oracle] (default): the membership service is told about crashes
          and installs the excluding view after [detect_us + lease_us] by
          fiat.  [Detected]: failures are detected end-to-end — heartbeat
          silence, quorum suspicion, lease expiry, fencing — per
          [detection] below. *)
  detection : Zeus_membership.Service.detection;
      (** heartbeat period, adaptive suspicion timeout bounds, and the
          fenced-node rejoin backoff; only read in [Detected] mode *)
  seed : int64;  (** root RNG seed — same seed, same simulation *)
}

val default : t
(** 3 nodes, 3-way replication, batched transport, Oracle membership,
    locality engine off — the paper's baseline deployment. *)

val dir_nodes : t -> Zeus_store.Types.node_id list
(** The first [dir_replicas] nodes host the (replicated) ownership
    directory (§4: a single replicated directory; §6.2 discusses
    distributing it at larger scales). *)

val dir_nodes_for : t -> key:Zeus_store.Types.key -> Zeus_store.Types.node_id list
(** Directory replicas responsible for [key]: the fixed set, or — with the
    distributed directory of §6.2 — [dir_replicas] consecutive nodes
    starting at a hash of the key. *)

val default_replicas : t -> owner:Zeus_store.Types.node_id -> Zeus_store.Replicas.t
(** Default replica placement for bootstrap and creation: the owner plus
    the next [replication_degree - 1] nodes in ring order. *)
