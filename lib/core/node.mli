(** A Zeus node: object table + ownership agent + reliable-commit agent +
    datastore worker pool, exposing the transactional-memory API of §7.

    Transactions are written in continuation-passing style because an open
    may block the application thread on an ownership request (§3.2) — the
    only blocking point in Zeus.  A body receives a [ctx] and a [commit]
    thunk:

    {[
      Node.run_write node ~thread:0
        ~body:(fun ctx commit ->
          Node.read ctx account_a (fun a ->
            Node.read ctx account_b (fun b ->
              Node.write ctx account_a Value.(of_int (to_int a - 10)) (fun () ->
                Node.write ctx account_b Value.(of_int (to_int b + 10)) (fun () ->
                  commit ())))))
        (fun outcome -> ...)
    ]}

    Failed operations (lock conflict, ownership NACK) short-circuit: the
    pending continuations are dropped and the runner retries the whole body
    with exponential back-off (§6.2), reporting [Aborted] only after
    [max_retries].  [k Committed] fires at {e local} commit — replication is
    pipelined and never blocks the thread (§5.2).

    As on real worker threads, at most one transaction may be in flight per
    [thread] at a time: issue the next one from the previous one's
    continuation (the closed-loop drivers in {!Zeus_workload.Driver} do
    exactly this). *)

open Zeus_store

type t

val create :
  ?telemetry:Zeus_telemetry.Hub.t ->
  config:Config.t ->
  id:Types.node_id ->
  transport:Zeus_net.Transport.t ->
  membership:Zeus_membership.Service.t ->
  history:History.t option ->
  unit ->
  t

val id : t -> Types.node_id
val table : t -> Table.t
val engine : t -> Zeus_sim.Engine.t
val config : t -> Config.t
val ownership_agent : t -> Zeus_ownership.Agent.t
val commit_agent : t -> Zeus_commit.Agent.t

(** The predictive locality engine, when [config.locality.enabled];
    [None] means placement is exactly the seed's reactive behaviour. *)
val locality : t -> Zeus_locality.Engine.t option
val ds : t -> Zeus_sim.Resource.t
val is_alive : t -> bool

val reset : t -> unit
(** Fresh-incarnation reset used by {!Cluster.rejoin}: a node that returns
    after a crash knows nothing (crash-stop, §3.1) — it re-learns objects
    through the ownership and commit protocols. *)

val set_app_handler : t -> (src:Types.node_id -> Zeus_net.Msg.payload -> unit) -> unit
(** Receive application-level messages (after protocol dispatch), already
    charged to the datastore worker pool. *)

val send_app : t -> dst:Types.node_id -> ?size:int -> Zeus_net.Msg.payload -> unit

(** {1 Transactions} *)

type ctx

val run_write :
  t ->
  thread:int ->
  ?exec_us:float ->
  body:(ctx -> (unit -> unit) -> unit) ->
  (Txn.outcome -> unit) ->
  unit
(** [exec_us] models the transaction's compute time on the app thread. *)

val run_read :
  t ->
  thread:int ->
  ?exec_us:float ->
  body:(ctx -> (unit -> unit) -> unit) ->
  (Txn.outcome -> unit) ->
  unit
(** Read-only transaction: local on any replica, no replication (§5.3). *)

val read : ctx -> Types.key -> (Value.t -> unit) -> unit
val write : ctx -> Types.key -> Value.t -> (unit -> unit) -> unit

val read_write : ctx -> Types.key -> (Value.t -> Value.t) -> (Value.t -> unit) -> unit
(** Read-modify-write sugar; the continuation receives the new value. *)

val insert : ctx -> Types.key -> Value.t -> unit
(** [malloc] + initialize: visible at commit; replicas per
    {!Config.default_replicas}. *)

val delete : ctx -> Types.key -> (unit -> unit) -> unit

(** {1 Sharding control} *)

val acquire_ownership : t -> Types.key -> ((unit, Zeus_ownership.Messages.nack_reason) result -> unit) -> unit
(** Explicitly migrate an object to this node outside any transaction
    (bulk re-sharding, as in the Voter experiments §8.4).  Blocks the
    caller for the request's 1.5 RTT. *)

val add_reader : t -> Types.key -> ((unit, Zeus_ownership.Messages.nack_reason) result -> unit) -> unit

val role : t -> Types.key -> Types.role option

(** {1 Statistics} *)

val committed : t -> int
val aborted : t -> int
val ro_committed : t -> int
val ro_aborted : t -> int
val retries : t -> int

(** Committed write transactions that needed at least one ownership request
    (the x-axis of Figures 8 and 9). *)
val txns_with_ownership : t -> int
val ownership_latency : t -> Zeus_sim.Stats.Samples.t
