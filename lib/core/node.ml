module Engine = Zeus_sim.Engine
module Resource = Zeus_sim.Resource
module Rng = Zeus_sim.Rng
module Stats = Zeus_sim.Stats
module Metrics = Zeus_telemetry.Metrics
module Tspan = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Transport = Zeus_net.Transport
module Fabric = Zeus_net.Fabric
module Service = Zeus_membership.Service
module Own = Zeus_ownership
module Com = Zeus_commit
module Loc = Zeus_locality
open Zeus_store

type t = {
  id : Types.node_id;
  config : Config.t;
  engine : Engine.t;
  transport : Transport.t;
  membership : Service.t;
  table : Table.t;
  mutable ownership : Own.Agent.t option;  (* set right after create *)
  mutable commit : Com.Agent.t option;
  mutable locality : Loc.Engine.t option;  (* predictive placement, opt-in *)
  ds : Resource.t;
  rng : Rng.t;
  history : History.t option;
  outstanding_rc : int array;  (* per app thread: in-flight reliable commits *)
  waiters : (unit -> unit) Queue.t array;
  txn_free : Txn.t option array;
      (* per app thread: one recycled transaction, reinitialized on reuse so
         the steady-state attempt allocates no copies table *)
  mutable app_handler : (src:Types.node_id -> Zeus_net.Msg.payload -> unit) option;
  (* Phase telemetry: histograms live on the cluster hub's registry
     (Histogram.v is idempotent by name, so all nodes feed the same five);
     spans go to the hub's trace sink. *)
  tspans : Tspan.t;
  h_own : Metrics.Histogram.h;
  h_exec : Metrics.Histogram.h;
  h_lc : Metrics.Histogram.h;
  h_repl : Metrics.Histogram.h;
  h_e2e : Metrics.Histogram.h;
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_ro_committed : int;
  mutable n_ro_aborted : int;
  mutable n_retries : int;
  mutable n_txn_with_ownership : int;
}

let id t = t.id
let table t = t.table
let engine t = t.engine
let config t = t.config
let ds t = t.ds
let ownership_agent t = Option.get t.ownership
let commit_agent t = Option.get t.commit
let locality t = t.locality

let note_local_access t ~key ~write =
  match t.locality with
  | Some loc -> Loc.Engine.note_local_access loc ~key ~write
  | None -> ()
let committed t = t.n_committed
let aborted t = t.n_aborted
let ro_committed t = t.n_ro_committed
let ro_aborted t = t.n_ro_aborted
let retries t = t.n_retries
let txns_with_ownership t = t.n_txn_with_ownership
let ownership_latency t = Own.Agent.latency_samples (ownership_agent t)
let is_alive t = Fabric.is_alive (Transport.fabric t.transport) t.id
let set_app_handler t fn = t.app_handler <- Some fn

let send_app t ~dst ?size payload = Transport.send t.transport ~src:t.id ~dst ?size payload

(* ------ CPU cost of one received protocol message ------------------------ *)

let payload_cost config payload =
  let c = config.Config.msg_proc_us in
  let bytes n = float_of_int n *. config.Config.byte_proc_us in
  match payload with
  | Com.Messages.R_inv { writes; _ } ->
    c +. bytes (List.fold_left (fun a (u : Txn.update) -> a + Value.size u.data) 0 writes)
  | Own.Messages.O_ack { data = Some d; _ } | Own.Messages.O_resp { data = Some d; _ } ->
    c +. bytes (Value.size d.Own.Messages.value)
  | _ -> c

(* ------ ownership callbacks ---------------------------------------------- *)

let obj_busy t key =
  match Table.find t.table key with
  | Some obj ->
    obj.Obj.lock_thread <> None
    || obj.Obj.pending_rc > 0
    || obj.Obj.t_state <> Types.T_valid
  | None -> false

let apply_arbiter t ~key ~kind ~o_ts ~replicas ~requester =
  ignore requester;
  match Table.find t.table key with
  | None -> ()
  | Some obj -> (
    obj.Obj.o_ts <- o_ts;
    match kind with
    | Own.Messages.Acquire ->
      if Obj.is_owner obj then begin
        (* Another node took over: demote to reader (§4); we keep the data
           and keep serving read-only transactions (§5.3). *)
        obj.Obj.role <- Types.Reader;
        obj.Obj.o_replicas <- None
      end
    | Own.Messages.Add_reader ->
      if Obj.is_owner obj then obj.Obj.o_replicas <- Some replicas
    | Own.Messages.Remove_reader r ->
      if r = t.id then Table.remove t.table key
      else if Obj.is_owner obj then obj.Obj.o_replicas <- Some replicas)

let apply_requester t ~key ~kind ~o_ts ~replicas ~data =
  match kind with
  | Own.Messages.Acquire | Own.Messages.Add_reader ->
    let role =
      match kind with Own.Messages.Acquire -> Types.Owner | _ -> Types.Reader
    in
    let obj =
      match Table.find t.table key with
      | Some obj ->
        (match data with
        | Some d when d.Own.Messages.t_version > obj.Obj.t_version ->
          obj.Obj.data <- d.Own.Messages.value;
          obj.Obj.t_version <- d.Own.Messages.t_version;
          obj.Obj.t_state <- Types.T_valid
        | Some _ | None -> ());
        obj
      | None ->
        let d = Option.get data in
        let obj =
          Obj.create ~key ~role ~version:d.Own.Messages.t_version ~o_ts
            d.Own.Messages.value
        in
        Table.install t.table obj;
        obj
    in
    obj.Obj.role <- role;
    obj.Obj.o_ts <- o_ts;
    obj.Obj.o_state <- Types.O_valid;
    obj.Obj.o_replicas <- (if role = Types.Owner then Some replicas else None)
  | Own.Messages.Remove_reader r -> (
    match Table.find t.table key with
    | Some obj ->
      obj.Obj.o_ts <- o_ts;
      if r = t.id then Table.remove t.table key
      else if Obj.is_owner obj then obj.Obj.o_replicas <- Some replicas
    | None -> ())

(* ------ construction ------------------------------------------------------ *)

let create ?telemetry ~config ~id ~transport ~membership ~history () =
  let engine = Fabric.engine (Transport.fabric transport) in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let hm = Hub.metrics hub in
  let t =
    {
      id;
      config;
      engine;
      transport;
      membership;
      table = Table.create ~node:id;
      ownership = None;
      commit = None;
      locality = None;
      ds = Resource.create engine ~servers:config.Config.ds_threads;
      rng = Engine.fork_rng engine;
      history;
      outstanding_rc = Array.make config.Config.app_threads 0;
      waiters = Array.init config.Config.app_threads (fun _ -> Queue.create ());
      txn_free = Array.make config.Config.app_threads None;
      app_handler = None;
      tspans = Hub.trace hub;
      h_own = Metrics.Histogram.v hm "txn.ownership_us";
      h_exec = Metrics.Histogram.v hm "txn.execute_us";
      h_lc = Metrics.Histogram.v hm "txn.local_commit_us";
      h_repl = Metrics.Histogram.v hm "txn.replication_us";
      h_e2e = Metrics.Histogram.v hm "txn.e2e_us";
      n_committed = 0;
      n_aborted = 0;
      n_ro_committed = 0;
      n_ro_aborted = 0;
      n_retries = 0;
      n_txn_with_ownership = 0;
    }
  in
  let own_cb =
    {
      Own.Agent.is_busy = (fun key -> obj_busy t key);
      apply_arbiter =
        (fun ~key ~kind ~o_ts ~replicas ~requester ->
          apply_arbiter t ~key ~kind ~o_ts ~replicas ~requester);
      apply_requester =
        (fun ~key ~kind ~o_ts ~replicas ~data ->
          apply_requester t ~key ~kind ~o_ts ~replicas ~data);
    }
  in
  let ownership =
    Own.Agent.create ?telemetry ~config:config.Config.ownership ~node:id
      ~dir_nodes_of:(fun key -> Config.dir_nodes_for config ~key)
      ~table:t.table ~membership ~callbacks:own_cb
      transport
  in
  t.ownership <- Some ownership;
  if config.Config.locality.Loc.Engine.enabled then begin
    let loc =
      Loc.Engine.create ?telemetry ~config:config.Config.locality ~node:id
        ~nodes:config.Config.nodes ~engine ~transport ~agent:ownership
        ~is_owner:(fun key ->
          match Table.find t.table key with
          | Some obj -> Obj.is_owner obj && obj.Obj.o_state = Types.O_valid
          | None -> false)
        ()
    in
    t.locality <- Some loc;
    Own.Agent.set_observer ownership
      {
        Own.Agent.on_request =
          (fun ~key ~kind ~requester -> Loc.Engine.note_request loc ~key ~kind ~requester);
        on_owner_change =
          (fun ~key ~owner -> Loc.Engine.note_owner_change loc ~key ~owner);
      }
  end;
  let com_cb =
    {
      Com.Agent.on_freed = (fun key -> Own.Agent.forget_object ownership key);
      recovery_drained =
        (fun ~epoch -> Own.Agent.announce_recovery_done ownership ~epoch);
    }
  in
  let commit =
    Com.Agent.create ?telemetry ~clear_marks:config.Config.commit_clear_marks ~node:id
      ~table:t.table ~membership ~callbacks:com_cb transport
  in
  t.commit <- Some commit;
  Transport.set_handler transport id (fun ~src payload ->
      (* Feed the failure detector first: any traffic from [src] is a
         liveness signal, and membership heartbeats are consumed here
         (they never reach the protocol agents). *)
      if not (Service.observe membership ~dst:id ~src payload) then
      (* Every received message costs datastore-worker CPU. *)
      Resource.submit t.ds ~service:(payload_cost config payload) (fun () ->
          if not (Own.Agent.handle ownership ~src payload) then
            if not (Com.Agent.handle commit ~src payload) then
              if
                not
                  (match t.locality with
                  | Some loc -> Loc.Engine.handle loc ~src payload
                  | None -> false)
              then match t.app_handler with Some fn -> fn ~src payload | None -> ()));
  t

(* A rejoining node comes back as a fresh incarnation (§3.1 crash-stop):
   no objects, no protocol state, empty pipelines. *)
let reset t =
  List.iter (Table.remove t.table) (Table.keys t.table);
  Own.Agent.reset (ownership_agent t);
  Com.Agent.reset (commit_agent t);
  Array.fill t.outstanding_rc 0 (Array.length t.outstanding_rc) 0;
  Array.iter Queue.clear t.waiters

(* ------ sharding control -------------------------------------------------- *)

let maybe_trim t key =
  if t.config.Config.auto_trim then
    match Table.find t.table key with
    | Some obj when Obj.is_owner obj -> (
      match obj.Obj.o_replicas with
      | Some r when Replicas.count r > t.config.Config.replication_degree -> (
        match List.rev r.Replicas.readers with
        | victim :: _ ->
          (* Out of the critical path (§6.2): wait for the pipeline to
             drain, then reliably discard a reader. *)
          let rec attempt tries =
            ignore
              (Engine.schedule t.engine ~after:20.0 (fun () ->
                   if obj_busy t key && tries > 0 then attempt (tries - 1)
                   else
                     Own.Agent.request (ownership_agent t) ~key
                       ~kind:(Own.Messages.Remove_reader victim)
                       ~k:(fun _ -> ())))
          in
          attempt 10
        | [] -> ())
      | Some _ | None -> ())
    | Some _ | None -> ()

let acquire_ownership t key k =
  match Table.find t.table key with
  | Some obj when Obj.is_owner obj && obj.Obj.o_state = Types.O_valid -> k (Ok ())
  | Some _ | None ->
    ignore
      (Engine.schedule t.engine ~after:t.config.Config.ownership_dispatch_us (fun () ->
           Own.Agent.request (ownership_agent t) ~key ~kind:Own.Messages.Acquire
             ~k:(fun result ->
               if Result.is_ok result then maybe_trim t key;
               k result)))

let add_reader t key k =
  match Table.find t.table key with
  | Some _ -> k (Ok ())
  | None ->
    Own.Agent.request (ownership_agent t) ~key ~kind:Own.Messages.Add_reader ~k

let role t key =
  match Table.find t.table key with Some obj -> Some obj.Obj.role | None -> None

(* ------ transactions ------------------------------------------------------ *)

type ctx = {
  node : t;
  txn : Txn.t;
  span : Tspan.span;  (* root "txn" span, shared by all attempts *)
  mutable reads : (Types.key * int) list;
  mutable used_ownership : bool;
  mutable state : [ `Running | `Failed of Txn.abort_reason | `Done ];
  on_fail : Txn.abort_reason -> unit;
  (* Per-attempt phase bounds (sim µs): the acquisition window and the
     body dispatch time, consumed by the commit path to cut the attempt
     into ownership / execute / local-commit / replicate phases. *)
  mutable body_start : float;
  mutable own_first : float;  (* nan: no ownership request this attempt *)
  mutable own_last : float;
  mutable own_count : int;
}

let guard ctx fn = match ctx.state with `Running -> fn () | `Failed _ | `Done -> ()

let fail ctx reason =
  match ctx.state with
  | `Running ->
    ctx.state <- `Failed reason;
    Txn.abort ctx.txn;
    ctx.on_fail reason
  | `Failed _ | `Done -> ()

let note_read ctx key =
  match Table.find ctx.node.table key with
  | Some obj -> ctx.reads <- (key, obj.Obj.t_version) :: ctx.reads
  | None -> ()

(* Secure write-level ownership before touching an object in a write
   transaction (§3.2 step 1); blocks the app thread if a request is
   needed — the only blocking point in Zeus. *)
let ensure_owner ctx key k =
  guard ctx (fun () ->
      let t = ctx.node in
      note_local_access t ~key ~write:true;
      match Table.find t.table key with
      | Some obj when Obj.is_owner obj && obj.Obj.o_state = Types.O_valid -> k ()
      | Some obj when obj.Obj.o_state <> Types.O_valid ->
        (* An arbitration for this object is pending at this node (we are
           an arbiter or a requester): do not touch it; retry with
           back-off until the ownership protocol settles (§4.1). *)
        fail ctx (Txn.Ownership_refused key)
      | Some _ | None ->
        ctx.used_ownership <- true;
        let acq_start = Engine.now t.engine in
        if Float.is_nan ctx.own_first then ctx.own_first <- acq_start;
        ignore
          (Engine.schedule t.engine ~after:t.config.Config.ownership_dispatch_us
             (fun () ->
               Own.Agent.request ~parent:ctx.span (ownership_agent t) ~key
                 ~kind:Own.Messages.Acquire
                 ~k:(fun result ->
                   ctx.own_last <- Engine.now t.engine;
                   ctx.own_count <- ctx.own_count + 1;
                   guard ctx (fun () ->
                       match result with
                       | Ok () ->
                         maybe_trim t key;
                         k ()
                       | Error _ -> fail ctx (Txn.Ownership_refused key))))))

let read ctx key k =
  guard ctx (fun () ->
      if Txn.is_read_only ctx.txn then begin
        note_local_access ctx.node ~key ~write:false;
        note_read ctx key;
        match Txn.open_read ctx.txn key with
        | Ok v -> k v
        | Error reason -> fail ctx reason
      end
      else
        ensure_owner ctx key (fun () ->
            if not (Txn.written ctx.txn key) then note_read ctx key;
            match Txn.open_read ctx.txn key with
            | Ok v -> k v
            | Error reason -> fail ctx reason))

let write ctx key value k =
  guard ctx (fun () ->
      ensure_owner ctx key (fun () ->
          match Txn.open_write ctx.txn key with
          | Ok _ ->
            Txn.put ctx.txn key value;
            k ()
          | Error reason -> fail ctx reason))

let read_write ctx key f k =
  guard ctx (fun () ->
      ensure_owner ctx key (fun () ->
          if not (Txn.written ctx.txn key) then note_read ctx key;
          match Txn.open_write ctx.txn key with
          | Ok v ->
            let v' = f v in
            Txn.put ctx.txn key v';
            k v'
          | Error reason -> fail ctx reason))

let insert ctx key value = guard ctx (fun () -> Txn.create_obj ctx.txn key value)

let delete ctx key k =
  guard ctx (fun () ->
      ensure_owner ctx key (fun () ->
          match Txn.free_obj ctx.txn key with
          | Ok () -> k ()
          | Error reason -> fail ctx reason))

(* ------ commit machinery -------------------------------------------------- *)

let release_pipeline_slot t thread =
  t.outstanding_rc.(thread) <- t.outstanding_rc.(thread) - 1;
  if not (Queue.is_empty t.waiters.(thread)) then (Queue.pop t.waiters.(thread)) ()

(* Created objects need their replica set assigned (and the directory told)
   before the reliable commit picks followers. *)
let prepare_created t (updates : Txn.update list) =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj when Obj.is_owner obj && obj.Obj.o_replicas = None ->
        let replicas = Config.default_replicas t.config ~owner:t.id in
        obj.Obj.o_replicas <- Some replicas;
        Own.Agent.register_object (ownership_agent t) u.key replicas
      | Some _ | None -> ())
    updates

let start_reliable_commit t ~thread ~parent ~lc_done ~txn_start
    ~(updates : Txn.update list) =
  let bytes = List.fold_left (fun a (u : Txn.update) -> a + Value.size u.data) 0 updates in
  let followers = t.config.Config.replication_degree - 1 in
  let send_cost =
    float_of_int followers
    *. (t.config.Config.msg_proc_us
       +. (float_of_int bytes *. t.config.Config.byte_proc_us))
  in
  t.outstanding_rc.(thread) <- t.outstanding_rc.(thread) + 1;
  let write_versions = List.map (fun (u : Txn.update) -> (u.Txn.key, u.Txn.version)) updates in
  (* Broadcasting the R-INVs consumes datastore-worker CPU at the
     coordinator; the app thread does NOT wait (§5.2). *)
  Resource.submit t.ds ~service:send_cost (fun () ->
      Com.Agent.commit ~parent (commit_agent t) ~thread ~updates
        ~on_durable:(fun () ->
          let durable = Engine.now t.engine in
          Metrics.Histogram.observe t.h_repl (durable -. lc_done);
          Metrics.Histogram.observe t.h_e2e (durable -. txn_start);
          if not (Tspan.is_null parent) then
            Tspan.complete t.tspans ~cat:"txn" ~pid:t.id ~tid:thread ~parent
              ~args:[ ("writes", string_of_int (List.length updates)) ]
              ~start:lc_done ~stop:durable "replicate";
          Tspan.finish_at t.tspans ~stop:durable
            ~args:[ ("result", "committed") ]
            parent;
          (match t.history with
          | Some h ->
            History.record_durable h ~writes:write_versions ~time:(Engine.now t.engine)
          | None -> ());
          release_pipeline_slot t thread)
        ())

let backoff t attempt =
  let base = t.config.Config.backoff_base_us in
  let cap = t.config.Config.backoff_max_us in
  let d = base *. (2.0 ** float_of_int (min attempt 12)) in
  let d = Float.min d cap in
  d *. (0.5 +. Rng.float t.rng 1.0)

let run_txn ~read_only t ~thread ?(exec_us = 0.0) ~body k =
  let txn_start = Engine.now t.engine in
  let root =
    if Tspan.enabled t.tspans then
      Tspan.start_span t.tspans ~cat:"txn" ~pid:t.id ~tid:thread
        ~args:[ ("kind", if read_only then "read" else "write") ]
        "txn"
    else Tspan.null_span
  in
  (* Retrospective phase spans for the committing attempt, plus the
     always-on phase histograms.  Ownership = [first acquisition issued,
     last grant]; zero-length at body dispatch for all-local attempts.
     Execute = grant (or dispatch) to commit entry; the three phases are
     sequential and nested inside the root txn span. *)
  let finish_phases ctx ~ce ~lc_done =
    let own_start, own_end =
      if Float.is_nan ctx.own_first then (ctx.body_start, ctx.body_start)
      else (ctx.own_first, ctx.own_last)
    in
    Metrics.Histogram.observe t.h_own (own_end -. own_start);
    Metrics.Histogram.observe t.h_exec (ce -. own_end);
    Metrics.Histogram.observe t.h_lc (lc_done -. ce);
    if not (Tspan.is_null root) then begin
      let ph name start stop args =
        Tspan.complete t.tspans ~cat:"txn" ~pid:t.id ~tid:thread ~parent:root
          ~args ~start ~stop name
      in
      ph "ownership" own_start own_end
        [ ("acquisitions", string_of_int ctx.own_count) ];
      ph "execute" own_end ce [];
      ph "local_commit" ce lc_done []
    end
  in
  let rec attempt n =
    if not (is_alive t) then begin
      Tspan.finish t.tspans ~args:[ ("result", "node_dead") ] root;
      k (Txn.Aborted Txn.Node_dead)
    end
    else begin
      let txn =
        (* Per-thread pool: a thread runs one transaction at a time, so the
           previous attempt's (finished) record is free for reuse. *)
        match t.txn_free.(thread) with
        | Some txn ->
          t.txn_free.(thread) <- None;
          Txn.reinit txn ~read_only ~thread;
          txn
        | None ->
          if read_only then Txn.create_read t.table ~thread
          else Txn.create_write t.table ~thread
      in
      let on_fail reason =
        t.txn_free.(thread) <- Some txn;
        t.n_retries <- t.n_retries + 1;
        if n >= t.config.Config.max_retries then begin
          if read_only then t.n_ro_aborted <- t.n_ro_aborted + 1
          else t.n_aborted <- t.n_aborted + 1;
          Tspan.finish t.tspans
            ~args:[ ("result", "aborted"); ("attempts", string_of_int (n + 1)) ]
            root;
          k (Txn.Aborted reason)
        end
        else
          ignore
            (Engine.schedule t.engine ~after:(backoff t n) (fun () -> attempt (n + 1)))
      in
      let ctx =
        {
          node = t;
          txn;
          span = root;
          reads = [];
          used_ownership = false;
          state = `Running;
          on_fail;
          body_start = nan;
          own_first = nan;
          own_last = nan;
          own_count = 0;
        }
      in
      let commit_now () =
        guard ctx (fun () ->
            let ce = Engine.now t.engine in
            ignore
              (Engine.schedule t.engine ~after:t.config.Config.local_commit_us
                 (fun () ->
                   match Txn.local_commit ctx.txn with
                   | Error reason -> fail ctx reason
                   | Ok [] ->
                     ctx.state <- `Done;
                     t.txn_free.(thread) <- Some ctx.txn;
                     let lc_done = Engine.now t.engine in
                     if read_only then begin
                       t.n_ro_committed <- t.n_ro_committed + 1;
                       (match t.history with
                       | Some h when ctx.reads <> [] ->
                         History.record_ro h ~node:t.id ~reads:ctx.reads
                           ~time:(Engine.now t.engine)
                       | Some _ | None -> ())
                     end
                     else begin
                       t.n_committed <- t.n_committed + 1;
                       if ctx.used_ownership then
                         t.n_txn_with_ownership <- t.n_txn_with_ownership + 1
                     end;
                     finish_phases ctx ~ce ~lc_done;
                     Metrics.Histogram.observe t.h_e2e (lc_done -. txn_start);
                     (* Nothing written: durable at local commit. *)
                     if not (Tspan.is_null root) then
                       Tspan.complete t.tspans ~cat:"txn" ~pid:t.id ~tid:thread
                         ~parent:root
                         ~args:[ ("writes", "0") ]
                         ~start:lc_done ~stop:lc_done "replicate";
                     Tspan.finish_at t.tspans ~stop:lc_done
                       ~args:[ ("result", "committed") ]
                       root;
                     k Txn.Committed
                   | Ok updates ->
                     ctx.state <- `Done;
                     t.txn_free.(thread) <- Some ctx.txn;
                     t.n_committed <- t.n_committed + 1;
                     if ctx.used_ownership then
                       t.n_txn_with_ownership <- t.n_txn_with_ownership + 1;
                     prepare_created t updates;
                     let lc_done = Engine.now t.engine in
                     finish_phases ctx ~ce ~lc_done;
                     (match t.history with
                     | Some h ->
                       History.record_commit h ~node:t.id ~reads:ctx.reads
                         ~writes:
                           (List.map
                              (fun (u : Txn.update) -> (u.Txn.key, u.Txn.version))
                              updates)
                         ~time:(Engine.now t.engine)
                     | None -> ());
                     let proceed () =
                       start_reliable_commit t ~thread ~parent:root ~lc_done
                         ~txn_start ~updates
                     in
                     if t.outstanding_rc.(thread) >= t.config.Config.pipeline_depth
                     then begin
                       (* Pipeline full: flow-control the thread. *)
                       Queue.push
                         (fun () ->
                           proceed ();
                           k Txn.Committed)
                         t.waiters.(thread)
                     end
                     else begin
                       proceed ();
                       (* Pipelined: the app continues immediately. *)
                       k Txn.Committed
                     end)))
      in
      ignore
        (Engine.schedule t.engine
           ~after:(exec_us +. t.config.Config.txn_dispatch_us)
           (fun () ->
             ctx.body_start <- Engine.now t.engine;
             body ctx commit_now))
    end
  in
  attempt 0

let run_write t ~thread ?exec_us ~body k = run_txn ~read_only:false t ~thread ?exec_us ~body k
let run_read t ~thread ?exec_us ~body k = run_txn ~read_only:true t ~thread ?exec_us ~body k
