(** A complete Zeus deployment inside one simulation: engine, fabric,
    reliable transport, membership service and one {!Node} per server.

    [populate] performs the initial sharding without messaging (objects are
    installed at the owner and its readers, metadata at the directory
    replicas), matching how every evaluated system starts from the same
    static sharding (§8). *)

open Zeus_store

type t

val create : ?config:Config.t -> ?tracing:bool -> unit -> t
(** [tracing] arms per-transaction span recording from the start; it can
    also be toggled later via [Hub.set_tracing (telemetry t)]. *)

val config : t -> Config.t
val engine : t -> Zeus_sim.Engine.t
val fabric : t -> Zeus_net.Fabric.t
val transport : t -> Zeus_net.Transport.t
val membership : t -> Zeus_membership.Service.t
val history : t -> History.t option

val telemetry : t -> Zeus_telemetry.Hub.t
(** The cluster-wide hub: shared phase histograms ([txn.*]) and the trace
    sink every agent reports into. *)

val trace : t -> Zeus_telemetry.Trace.t
val nodes : t -> int
val node : t -> int -> Node.t

val populate : t -> key:Types.key -> owner:int -> Value.t -> unit
(** Install one object (owner + readers per the replication degree, plus
    directory metadata), bypassing the protocols. *)

val populate_n : t -> n:int -> ?base:int -> owner_of:(int -> int) -> (int -> Value.t) -> unit
(** [populate_n ~n ~owner_of value_of] installs keys [base..base+n-1]. *)

val live_nodes : t -> int list
(** Nodes currently alive at the fabric level (crash-stop state, not the
    membership view — the two disagree during the detection window). *)

val kill : t -> int -> unit
(** Crash a node.  Under [membership_mode = Oracle] the membership service
    reconfigures after detection + lease expiry by fiat; under [Detected]
    the crash is fabric-level only and reconfiguration happens iff the
    surviving nodes detect the heartbeat silence end-to-end. *)

val rejoin : t -> int -> unit

val run : t -> until_us:float -> unit
(** Advance virtual time. *)

val run_quiesce : t -> ?max_us:float -> unit -> unit
(** Run until no events remain or [max_us] of virtual time has passed.
    Suspends the membership service's standing heartbeat timers first
    (resume them with [Service.resume] to continue detecting). *)

val total_committed : t -> int
val total_aborted : t -> int
val total_ro_committed : t -> int

val check_invariants : t -> (unit, string) result
(** The paper's model-checked invariants (§8), evaluated on the current
    state (call at a quiescent point):
    - at most one live owner per key, agreeing with every live directory
      replica's applied metadata;
    - all live replicas in [t_state = Valid] hold identical data;
    - the owner holds the highest version of the object;
    plus, when history recording is on, the serializability checks of
    {!History.check}. *)
