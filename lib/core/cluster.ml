module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module Service = Zeus_membership.Service
module View = Zeus_membership.View
module Own = Zeus_ownership
open Zeus_store

type t = {
  config : Config.t;
  engine : Engine.t;
  fabric : Fabric.t;
  transport : Transport.t;
  membership : Service.t;
  history : History.t option;
  telemetry : Zeus_telemetry.Hub.t;
  nodes : Node.t array;
}

let create ?(config = Config.default) ?(tracing = false) () =
  let engine = Engine.create ~seed:config.Config.seed () in
  let fabric = Fabric.create engine ~nodes:config.Config.nodes config.Config.fabric in
  let telemetry =
    Zeus_telemetry.Hub.create ~tracing ~now:(fun () -> Engine.now engine) ()
  in
  let transport = Transport.create ~config:config.Config.transport ~telemetry fabric in
  let membership =
    Service.create ~lease_us:config.Config.lease_us ~detect_us:config.Config.detect_us
      ~mode:config.Config.membership_mode ~detection:config.Config.detection ~telemetry
      transport
  in
  let history = if config.Config.record_history then Some (History.create ()) else None in
  let nodes =
    Array.init config.Config.nodes (fun id ->
        Node.create ~telemetry ~config ~id ~transport ~membership ~history ())
  in
  let t = { config; engine; fabric; transport; membership; history; telemetry; nodes } in
  (* A fenced node (falsely suspected but alive — its lease died under it)
     rejoins as a fresh incarnation after a short backoff, protocol state
     wiped, unless a crash/rejoin schedule already revived it. *)
  Service.set_fence_hook membership (fun n ->
      let backoff = config.Config.detection.Service.rejoin_backoff_us in
      ignore
        (Engine.schedule engine ~after:backoff (fun () ->
             if not (Fabric.is_alive fabric n) then begin
               Node.reset t.nodes.(n);
               Service.rejoin membership n
             end)));
  t

let config t = t.config
let engine t = t.engine
let fabric t = t.fabric
let transport t = t.transport
let membership t = t.membership
let history t = t.history
let telemetry t = t.telemetry
let trace t = Zeus_telemetry.Hub.trace t.telemetry
let nodes t = Array.length t.nodes
let node t i = t.nodes.(i)

let populate t ~key ~owner value =
  let replicas = Config.default_replicas t.config ~owner in
  List.iter
    (fun n ->
      let role = if n = owner then Types.Owner else Types.Reader in
      let obj = Obj.create ~key ~role ~version:1 (Bytes.copy value) in
      if role = Types.Owner then obj.Obj.o_replicas <- Some replicas;
      Table.install (Node.table t.nodes.(n)) obj)
    (Replicas.all replicas);
  List.iter
    (fun d -> Own.Agent.seed_directory (Node.ownership_agent t.nodes.(d)) key replicas)
    (Config.dir_nodes_for t.config ~key)

let populate_n t ~n ?(base = 0) ~owner_of value_of =
  for i = 0 to n - 1 do
    populate t ~key:(base + i) ~owner:(owner_of i) (value_of i)
  done

let kill t i = Service.kill t.membership i
let rejoin t i =
  (* crash-stop: the node returns as a fresh, empty incarnation *)
  Node.reset t.nodes.(i);
  Service.rejoin t.membership i

let run t ~until_us = Engine.run ~until:until_us t.engine

let run_quiesce t ?(max_us = 1e8) () =
  (* Standing heartbeat timers would keep the engine from draining. *)
  Service.suspend t.membership;
  Engine.run ~until:(Engine.now t.engine +. max_us) t.engine

let total_committed t = Array.fold_left (fun acc n -> acc + Node.committed n) 0 t.nodes
let total_aborted t = Array.fold_left (fun acc n -> acc + Node.aborted n) 0 t.nodes

let total_ro_committed t =
  Array.fold_left (fun acc n -> acc + Node.ro_committed n) 0 t.nodes

(* ---------- invariants (§8) ---------------------------------------------- *)

let live_nodes t =
  List.filter (fun i -> Fabric.is_alive t.fabric i) (List.init (nodes t) (fun i -> i))

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let all_keys t =
  let keys = Hashtbl.create 1024 in
  List.iter
    (fun i ->
      Table.iter (Node.table t.nodes.(i)) (fun obj -> Hashtbl.replace keys obj.Obj.key ()))
    (live_nodes t);
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

let check_key t key =
  let live = live_nodes t in
  let holders =
    List.filter_map
      (fun i ->
        match Table.find (Node.table t.nodes.(i)) key with
        | Some obj -> Some (i, obj)
        | None -> None)
      live
  in
  let owners = List.filter (fun (_, o) -> Obj.is_owner o) holders in
  match owners with
  | _ :: _ :: _ ->
    err "key %d: multiple live owners (%s)" key
      (String.concat "," (List.map (fun (i, _) -> string_of_int i) owners))
  | _ ->
    let vmax = List.fold_left (fun acc (_, o) -> max acc o.Obj.t_version) 0 holders in
    let owner_ok =
      match owners with
      | [ (_, o) ] -> o.Obj.t_version = vmax
      | _ -> true
    in
    if not owner_ok then err "key %d: owner does not hold the highest version" key
    else begin
      (* All live replicas in Valid state must agree on the latest value. *)
      let valid = List.filter (fun (_, o) -> o.Obj.t_state = Types.T_valid) holders in
      let mismatch =
        List.exists
          (fun (_, o) -> o.Obj.t_version = vmax
                         && List.exists
                              (fun (_, o') ->
                                o'.Obj.t_version = vmax
                                && not (Value.equal o.Obj.data o'.Obj.data))
                              valid)
          valid
      in
      if mismatch then err "key %d: valid replicas disagree on data" key
      else begin
        (* Directory agreement is timestamp-relative: a replica whose
           pending arbitration was rolled back (busy-NACK) may lag at an
           older o_ts until the next arbitration repairs it — that is safe
           because every request is arbitrated by all live directory
           replicas plus the true owner.  What must hold: entries at the
           owner's timestamp name the owner, no entry is ahead of the
           owner, and equal-timestamp entries agree pairwise. *)
        let entries =
          List.filter_map
            (fun d ->
              if not (Fabric.is_alive t.fabric d) then None
              else
                let dir = Own.Agent.directory (Node.ownership_agent t.nodes.(d)) in
                match Own.Directory.find dir key with
                | Some entry when entry.Own.Directory.pending = None ->
                  Some (d, entry.Own.Directory.o_ts, entry.Own.Directory.replicas)
                | Some _ | None -> None)
            (Config.dir_nodes_for t.config ~key)
        in
        let pairwise_ok =
          List.for_all
            (fun (_, ts1, r1) ->
              List.for_all
                (fun (_, ts2, r2) ->
                  (not (Zeus_store.Ots.equal ts1 ts2))
                  || r1.Replicas.owner = r2.Replicas.owner)
                entries)
            entries
        in
        if not pairwise_ok then
          err "key %d: equal-timestamp directory replicas disagree" key
        else begin
          match owners with
          | [ (i, obj) ] ->
            let owner_ts = obj.Obj.o_ts in
            let ok =
              List.for_all
                (fun (_, ts, r) ->
                  if Zeus_store.Ots.equal ts owner_ts then r.Replicas.owner = Some i
                  else not Zeus_store.Ots.(ts > owner_ts))
                entries
            in
            if ok then Ok ()
            else err "key %d: directory disagrees with the owner at its o_ts" key
          | _ -> Ok ()
        end
      end
    end

let check_invariants t =
  let keys = all_keys t in
  let rec go = function
    | [] -> (
      match t.history with Some h -> History.check h | None -> Ok ())
    | key :: rest -> (
      match check_key t key with Ok () -> go rest | Error _ as e -> e)
  in
  go keys
