(** Deployment and cost-model configuration.

    The CPU costs (in µs) model the paper's testbed: dual-socket Skylake at
    2.7 GHz with DPDK kernel-bypass messaging, where processing one small
    protocol message costs a few hundred nanoseconds and payloads pay a
    per-byte copy cost.  Absolute throughput numbers depend on these
    constants; the comparisons between Zeus and the baselines depend only
    on message counts and blocking structure, which the protocols determine. *)

type t = {
  nodes : int;
  replication_degree : int;  (** replicas per object, owner included (paper: 3) *)
  dir_replicas : int;        (** directory replication (paper: 3) *)
  app_threads : int;         (** application worker threads per node (paper: 10) *)
  ds_threads : int;          (** datastore worker threads per node (paper: 10) *)
  (* CPU cost model, µs *)
  msg_proc_us : float;       (** handling one received protocol message *)
  byte_proc_us : float;      (** per payload byte (copy in/out) *)
  local_commit_us : float;   (** single-node local commit *)
  txn_dispatch_us : float;   (** fixed per-transaction overhead at the app thread *)
  ownership_dispatch_us : float;
      (** app-side thread time to issue one ownership request and install
          the result, on top of the request's 1.5-RTT blocking wait (§3.2).
          Calibrated from the paper's own figures: one worker thread
          sustains 25 K ownership ops/s while the request latency is
          17 µs (§8.4), i.e. ~40 µs of thread time per op. *)
  (* application-level policies *)
  pipeline_depth : int;      (** max in-flight reliable commits per thread *)
  backoff_base_us : float;   (** exponential back-off on aborts (§6.2) *)
  backoff_max_us : float;
  max_retries : int;
  auto_trim : bool;
      (** issue Remove_reader out of the critical path to restore the
          replication degree after a non-replica acquired ownership (§6.2) *)
  distributed_directory : bool;
      (** place each object's directory replicas by consistent hashing over
          all nodes instead of on one fixed replicated directory — the
          scalable scheme §6.2 prescribes for large deployments or limited
          locality *)
  record_history : bool;     (** feed the serializability checker (tests) *)
  locality : Zeus_locality.Engine.config;
      (** predictive ownership placement (access tracking, prefetch,
          anti-ping-pong pinning); disabled by default — with
          [locality.enabled = false] no engine is created and placement is
          exactly the paper's reactive behaviour *)
  fabric : Zeus_net.Fabric.config;
  transport : Zeus_net.Transport.config;
      (** reliable-messaging layer; [transport.batching] (on by default)
          coalesces same-destination protocol messages within
          [transport.flush_window_us] into multi-payload frames with
          cumulative acks — set [Zeus_net.Transport.unbatched] for the
          historical one-frame-per-message behaviour (model checking,
          ablations) *)
  ownership : Zeus_ownership.Agent.config;
  commit_clear_marks : Zeus_commit.Core.clear_marks;
      (** follower-side R-VAL discipline; [Sequenced] (default) carries
          ordering in the messages and stays live on reordering links,
          [Legacy] is the historical arrival-order scheme that leans on
          per-link FIFO delivery *)
  lease_us : float;
  detect_us : float;
  membership_mode : Zeus_membership.Service.mode;
      (** [Oracle] (default): the membership service is told about crashes
          and installs the excluding view after [detect_us + lease_us] by
          fiat.  [Detected]: failures are detected end-to-end — heartbeat
          silence, quorum suspicion, lease expiry, fencing — per
          [detection] below. *)
  detection : Zeus_membership.Service.detection;
      (** heartbeat period, adaptive suspicion timeout bounds, and the
          fenced-node rejoin backoff; only read in [Detected] mode *)
  seed : int64;
}

let default =
  {
    nodes = 3;
    replication_degree = 3;
    dir_replicas = 3;
    app_threads = 10;
    ds_threads = 10;
    msg_proc_us = 0.30;
    byte_proc_us = 0.0008;
    local_commit_us = 0.25;
    txn_dispatch_us = 0.15;
    ownership_dispatch_us = 28.0;
    pipeline_depth = 32;
    backoff_base_us = 3.0;
    backoff_max_us = 400.0;
    max_retries = 12;
    auto_trim = true;
    distributed_directory = false;
    record_history = false;
    locality = Zeus_locality.Engine.default_config;
    fabric = Zeus_net.Fabric.default_config;
    transport = Zeus_net.Transport.default_config;
    ownership = Zeus_ownership.Agent.default_config;
    commit_clear_marks = Zeus_commit.Core.Sequenced;
    lease_us = 2_000.0;
    detect_us = 1_000.0;
    membership_mode = Zeus_membership.Service.Oracle;
    detection = Zeus_membership.Service.default_detection;
    seed = 42L;
  }

(** The first [dir_replicas] nodes host the (replicated) ownership
    directory (§4: a single replicated directory; §6.2 discusses
    distributing it at larger scales). *)
let dir_nodes t = List.init (min t.dir_replicas t.nodes) (fun i -> i)

(* Knuth multiplicative hash: spreads contiguous keys across nodes. *)
let key_hash key = key * 2654435761 land max_int

(** Directory replicas responsible for [key]: the fixed set, or — with the
    distributed directory of §6.2 — [dir_replicas] consecutive nodes
    starting at a hash of the key. *)
let dir_nodes_for t ~key =
  if not t.distributed_directory then dir_nodes t
  else begin
    let n = t.nodes in
    let h = key_hash key mod n in
    List.init (min t.dir_replicas n) (fun i -> (h + i) mod n)
  end

(** Default replica placement for bootstrap and creation: the owner plus
    the next [replication_degree - 1] nodes in ring order. *)
let default_replicas t ~owner =
  let readers =
    List.init
      (min (t.replication_degree - 1) (t.nodes - 1))
      (fun i -> (owner + i + 1) mod t.nodes)
  in
  Zeus_store.Replicas.v ~owner ~readers
