type level = Quiet | Error | Warn | Info | Debug

let int_of_level = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" | "trace" -> Some Debug
  | _ -> None

(* Default Warn: tests and library code stay silent (nothing warns on the
   happy path) while genuine problems still reach stderr.  ZEUS_LOG
   overrides; entry points (zeus_cli, bench) raise to Info for tables. *)
let env_level () =
  match Sys.getenv_opt "ZEUS_LOG" with
  | None -> None
  | Some s -> level_of_string s

let current = ref (match env_level () with Some l -> l | None -> Warn)

let set_level l =
  (* The environment wins over programmatic defaults, so ZEUS_LOG=debug
     still works under entry points that call [set_level Info]. *)
  match env_level () with
  | Some env when int_of_level env > int_of_level l -> current := env
  | _ -> current := l

let level () = !current
let enabled l = int_of_level l <= int_of_level !current

let tag = function
  | Error -> "[zeus:error"
  | Warn -> "[zeus:warn"
  | Debug -> "[zeus:debug"
  | Quiet | Info -> "[zeus"

let logf lvl ?src fmt =
  if not (enabled lvl) then Printf.ifprintf stdout fmt
  else
    match lvl with
    | Info ->
      (* Info is user-facing application output (experiment tables etc.):
         plain lines on stdout, no severity tag. *)
      Printf.printf (fmt ^^ "\n")
    | _ ->
      let src = match src with None -> "" | Some s -> ":" ^ s in
      Printf.eprintf ("%s%s] " ^^ fmt ^^ "\n%!") (tag lvl) src

let errorf ?src fmt = logf Error ?src fmt
let warnf ?src fmt = logf Warn ?src fmt
let infof ?src fmt = logf Info ?src fmt
let debugf ?src fmt = logf Debug ?src fmt

let info_string s = if enabled Info then print_string s
let flush_info () = if enabled Info then flush stdout
