type span = {
  id : int;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  parent : int;
  start : float;
  mutable stop : float;  (* < start while the span is open *)
  mutable args : (string * string) list;
}

let null_span =
  { id = -1; name = ""; cat = ""; pid = 0; tid = 0; parent = -1;
    start = 0.0; stop = 0.0; args = [] }

type t = {
  now : unit -> float;
  mutable enabled : bool;
  max_spans : int;
  mutable items : span list;  (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable next_id : int;
}

let create ?(enabled = false) ?(max_spans = 2_000_000) ~now () =
  { now; enabled; max_spans; items = []; count = 0; dropped = 0; next_id = 0 }

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled
let dropped t = t.dropped
let count t = t.count

let record t sp =
  if t.count >= t.max_spans then t.dropped <- t.dropped + 1
  else begin
    t.items <- sp :: t.items;
    t.count <- t.count + 1
  end

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let is_null sp = sp.id < 0

let start_span t ~cat ~pid ?(tid = 0) ?(parent = null_span) ?(args = []) name =
  if not t.enabled then null_span
  else begin
    let sp =
      { id = fresh_id t; name; cat; pid; tid; parent = parent.id;
        start = t.now (); stop = neg_infinity; args }
    in
    record t sp;
    sp
  end

let add_args sp args = if not (is_null sp) then sp.args <- sp.args @ args

let finish_at t ~stop ?(args = []) sp =
  ignore t;
  if (not (is_null sp)) && sp.stop < sp.start then begin
    sp.stop <- Float.max stop sp.start;
    if args <> [] then sp.args <- sp.args @ args
  end

let finish t ?args sp = finish_at t ~stop:(t.now ()) ?args sp

let complete t ~cat ~pid ?(tid = 0) ?(parent = null_span) ?(args = [])
    ~start ~stop name =
  if t.enabled then begin
    let sp =
      { id = fresh_id t; name; cat; pid; tid; parent = parent.id;
        start; stop = Float.max stop start; args }
    in
    record t sp
  end

let spans t =
  let closed =
    List.rev_map
      (fun sp -> if sp.stop < sp.start then { sp with stop = sp.start } else sp)
      t.items
  in
  List.stable_sort (fun a b -> Float.compare a.start b.start) closed

let roots t = List.filter (fun sp -> sp.parent < 0) (spans t)
let children t parent = List.filter (fun sp -> sp.parent = parent.id) (spans t)

let find_all t name = List.filter (fun sp -> sp.name = name) (spans t)

(* ---- export ---------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf x =
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.3f" x)
  else Buffer.add_string buf "0"

let add_args_json buf sp =
  Buffer.add_string buf "{\"id\":";
  Buffer.add_string buf (string_of_int sp.id);
  Buffer.add_string buf ",\"parent\":";
  Buffer.add_string buf (string_of_int sp.parent);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      escape buf k;
      Buffer.add_string buf "\":\"";
      escape buf v;
      Buffer.add_string buf "\"")
    sp.args;
  Buffer.add_char buf '}'

(* Chrome trace_event format: "X" (complete) events.  Sim time is in µs
   and trace_event [ts]/[dur] are in µs, so timestamps map 1:1. *)
let add_chrome_event buf sp =
  Buffer.add_string buf "{\"name\":\"";
  escape buf sp.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape buf sp.cat;
  Buffer.add_string buf "\",\"ph\":\"X\",\"ts\":";
  add_num buf sp.start;
  Buffer.add_string buf ",\"dur\":";
  add_num buf (Float.max 0.0 (sp.stop -. sp.start));
  Buffer.add_string buf ",\"pid\":";
  Buffer.add_string buf (string_of_int sp.pid);
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int sp.tid);
  Buffer.add_string buf ",\"args\":";
  add_args_json buf sp;
  Buffer.add_char buf '}'

let to_chrome_string t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let pids = Hashtbl.create 8 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  List.iter
    (fun sp ->
      if not (Hashtbl.mem pids sp.pid) then begin
        Hashtbl.replace pids sp.pid ();
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
              \"args\":{\"name\":\"node %d\"}}"
             sp.pid sp.pid)
      end;
      sep ();
      add_chrome_event buf sp)
    (spans t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let add_jsonl_line buf sp =
  Buffer.add_string buf "{\"id\":";
  Buffer.add_string buf (string_of_int sp.id);
  Buffer.add_string buf ",\"parent\":";
  Buffer.add_string buf (string_of_int sp.parent);
  Buffer.add_string buf ",\"name\":\"";
  escape buf sp.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape buf sp.cat;
  Buffer.add_string buf "\",\"pid\":";
  Buffer.add_string buf (string_of_int sp.pid);
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int sp.tid);
  Buffer.add_string buf ",\"start\":";
  add_num buf sp.start;
  Buffer.add_string buf ",\"stop\":";
  add_num buf sp.stop;
  Buffer.add_string buf ",\"args\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      escape buf k;
      Buffer.add_string buf "\":\"";
      escape buf v;
      Buffer.add_char buf '"')
    sp.args;
  Buffer.add_string buf "}}\n"

let to_jsonl_string t =
  let buf = Buffer.create 65536 in
  List.iter (add_jsonl_line buf) (spans t);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_chrome t path = write_file path (to_chrome_string t)
let write_jsonl t path = write_file path (to_jsonl_string t)
