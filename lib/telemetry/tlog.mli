(** Severity-tagged structured logging for the whole stack.

    Replaces the ad-hoc [Printf.printf]/[eprintf] calls that used to live
    under [lib/]: libraries emit through {!infof}/{!debugf}/{!warnf}/
    {!errorf} and the process entry point decides how chatty to be.

    The default level is [Warn], so [dune runtest] output stays clean —
    library code never prints on the happy path.  Entry points that want
    experiment tables ([zeus_cli], [bench/main]) call [set_level Info] at
    startup.  The [ZEUS_LOG] environment variable ([quiet]/[error]/[warn]/
    [info]/[debug]) overrides in both directions and always wins over
    [set_level] when it asks for {e more} verbosity, so [ZEUS_LOG=debug
    dune runtest] works without code changes.

    [Info] is user-facing application output: plain lines on stdout with
    no tag.  [Error]/[Warn]/[Debug] are diagnostics: stderr, prefixed
    [\[zeus:level:src\]]. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Guard for log statements whose arguments are expensive to compute. *)

val logf : level -> ?src:string -> ('a, out_channel, unit) format -> 'a
val errorf : ?src:string -> ('a, out_channel, unit) format -> 'a
val warnf : ?src:string -> ('a, out_channel, unit) format -> 'a
val infof : ?src:string -> ('a, out_channel, unit) format -> 'a
val debugf : ?src:string -> ('a, out_channel, unit) format -> 'a

val info_string : string -> unit
(** Emit a pre-rendered block (e.g. a buffered table) at [Info]. *)

val flush_info : unit -> unit
(** Flush stdout iff [Info] is enabled (replaces [printf "%!"] sites). *)
