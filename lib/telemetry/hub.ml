type t = { metrics : Metrics.t; trace : Trace.t }

let create ?(tracing = false) ?max_spans ~now () =
  { metrics = Metrics.create (); trace = Trace.create ~enabled:tracing ?max_spans ~now () }

let none () =
  { metrics = Metrics.create (); trace = Trace.create ~now:(fun () -> 0.0) () }

let metrics t = t.metrics
let trace t = t.trace
let set_tracing t on = Trace.set_enabled t.trace on
let tracing t = Trace.enabled t.trace
