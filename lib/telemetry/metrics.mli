(** Typed metric registry: counters, gauges, and log-scale latency
    histograms.

    Call sites register once ([Counter.v], [Histogram.v]) and keep the
    returned {e handle} — an OCaml value, so a typo in a metric name is a
    compile error at the declaration site, not a silently fresh counter.
    {!Zeus_sim.Stats} remains the underlying storage: counter handles are
    [Stats.Counter] cells (resolved once, so the hot path is a single ref
    update) and histograms embed a [Stats.Samples] reservoir so the
    existing percentile code is reused, not duplicated.

    Histograms additionally keep fixed log-scale buckets ([per_decade]
    buckets per decade between [lo] and [lo·10^decades], plus underflow
    and overflow), giving bounded-memory distribution estimates
    ({!Histogram.percentile_bucketed}, {!Histogram.nonzero_buckets}) even
    beyond the reservoir cap. *)

type t
type hist

val create : ?seed:int64 -> unit -> t
(** A fresh registry.  [seed] feeds the histogram reservoirs'
    deterministic RNG. *)

val counters : t -> (string * int) list
(** All registered counters, sorted by name. *)

val histograms : t -> (string * hist) list
(** In registration order. *)

val gauges : t -> (string * float) list

module Counter : sig
  type h = int ref

  val v : t -> string -> h
  (** Register (or look up) a counter; idempotent per name. *)

  val incr : ?by:int -> h -> unit
  val get : h -> int
  val set : h -> int -> unit
end

module Gauge : sig
  type h = float ref

  val v : t -> string -> h
  val set : h -> float -> unit
  val add : h -> float -> unit
  val get : h -> float
end

module Histogram : sig
  type h = hist

  val v :
    t -> ?lo:float -> ?decades:int -> ?per_decade:int -> string -> h
  (** Register (or look up) a histogram.  Defaults: [lo = 0.01] µs,
      [decades = 8], [per_decade = 5] — 10 ns to 1 s of sim time. *)

  val create : ?lo:float -> ?decades:int -> ?per_decade:int -> string -> h
  (** A standalone, unregistered histogram (e.g. one per workload run). *)

  val observe : h -> float -> unit
  (** NaN observations are dropped. *)

  val name : h -> string
  val count : h -> int
  val sum : h -> float
  val mean : h -> float
  val min : h -> float
  val max : h -> float

  val percentile : h -> float -> float
  (** Exact (reservoir-based) percentile; [nan] when empty. *)

  val percentile_bucketed : h -> float -> float
  (** Log-bucket estimate with geometric interpolation — bounded memory,
      within one bucket width of the truth. *)

  val nonzero_buckets : h -> (float * float * int) list
  (** [(bucket_lo, bucket_hi, count)] for populated buckets, ascending.
      Underflow reports [lo = 0.]; overflow reports [hi = infinity]. *)

  val index : h -> float -> int
  (** Bucket index for a value ([-1] for NaN; 0 = underflow; last =
      overflow) — exposed for tests. *)

  val bucket_lo : h -> int -> float
  val bucket_hi : h -> int -> float
end
