(** Per-transaction trace spans, stamped with sim time.

    A span is a named interval [\[start, stop\]] in virtual time, tagged
    with a category, a process ([pid] = node id), a thread ([tid] = app
    thread or peer flow), string arguments, and an optional parent span —
    enough to reconstruct the paper's latency breakdown (ownership
    acquisition vs. local execution vs. pipelined replication) for every
    individual transaction.

    Tracing is {e disabled} by default: [start_span] then returns the
    shared {!null_span} and every other operation on it is a no-op, so
    instrumented hot paths cost one branch when tracing is off.
    Timestamps come from the [now] closure (wired to
    [Zeus_sim.Engine.now]); sim µs map 1:1 to Chrome trace_event µs. *)

type span = private {
  id : int;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  parent : int;  (** [-1] for roots *)
  start : float;
  mutable stop : float;
  mutable args : (string * string) list;
}

val null_span : span
(** The disabled span: operations on it are no-ops. *)

type t

val create : ?enabled:bool -> ?max_spans:int -> now:(unit -> float) -> unit -> t
(** [max_spans] bounds memory (default 2M); further spans are counted as
    {!dropped} rather than recorded. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool
val count : t -> int
val dropped : t -> int

val start_span :
  t ->
  cat:string ->
  pid:int ->
  ?tid:int ->
  ?parent:span ->
  ?args:(string * string) list ->
  string ->
  span
(** Open a span at the current sim time ({!null_span} when disabled). *)

val finish : t -> ?args:(string * string) list -> span -> unit
(** Close at the current sim time.  Idempotent: a second finish (e.g. a
    late arbitration response after a timeout already closed the span) is
    ignored. *)

val finish_at : t -> stop:float -> ?args:(string * string) list -> span -> unit

val add_args : span -> (string * string) list -> unit

val complete :
  t ->
  cat:string ->
  pid:int ->
  ?tid:int ->
  ?parent:span ->
  ?args:(string * string) list ->
  start:float ->
  stop:float ->
  string ->
  unit
(** Record a closed interval in one call (retrospective phase spans). *)

val is_null : span -> bool

(** {1 Query (tests, breakdown tables)} *)

val spans : t -> span list
(** All recorded spans, sorted by start time; still-open spans export
    with [stop = start]. *)

val roots : t -> span list
val children : t -> span -> span list
val find_all : t -> string -> span list

(** {1 Export} *)

val to_chrome_string : t -> string
(** Chrome [trace_event] JSON (["X"] complete events plus process-name
    metadata) — load in [chrome://tracing] or Perfetto. *)

val to_jsonl_string : t -> string
(** One JSON object per span per line. *)

val write_chrome : t -> string -> unit
val write_jsonl : t -> string -> unit
