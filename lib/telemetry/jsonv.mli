(** Minimal JSON reader — validates the trace exporter's output
    (trace-smoke CI check, integration tests) without adding a JSON
    dependency.  Not a general-purpose parser: non-ASCII [\u] escapes
    decode as ['?']. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

val parse : string -> (v, string) result

val member : string -> v -> v option
val to_list : v -> v list option
val to_string : v -> string option
val to_float : v -> float option
