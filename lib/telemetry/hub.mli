(** One telemetry hub per cluster: the shared typed-metric registry plus
    the trace-span sink, both stamped from the same sim clock.

    Components take an optional hub at construction; {!none} gives a
    private, tracing-disabled hub so standalone unit setups need no
    wiring. *)

type t

val create : ?tracing:bool -> ?max_spans:int -> now:(unit -> float) -> unit -> t
(** [now] is the virtual clock, normally [Zeus_sim.Engine.now]. *)

val none : unit -> t
(** A fresh disconnected hub (disabled tracing, clock pinned at 0). *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val set_tracing : t -> bool -> unit
val tracing : t -> bool
