(* Minimal recursive-descent JSON reader — just enough to validate the
   trace exporter's output (trace-smoke, integration tests) without
   pulling a JSON dependency into the tree. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Bad of string

type state = { s : string; mutable i : int }

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && (match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.i <- st.i + 1
  done

let fail st msg = raise (Bad (Printf.sprintf "%s at offset %d" msg st.i))

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.i <- st.i + 1
  | _ -> fail st (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then begin
    st.i <- st.i + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.i >= String.length st.s then fail st "unterminated string"
    else begin
      let c = st.s.[st.i] in
      st.i <- st.i + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if st.i >= String.length st.s then fail st "bad escape"
         else begin
           let e = st.s.[st.i] in
           st.i <- st.i + 1;
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if st.i + 4 > String.length st.s then fail st "bad \\u escape";
             let hex = String.sub st.s st.i 4 in
             st.i <- st.i + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> fail st "bad \\u escape"
             in
             (* Non-ASCII code points round-trip as '?' — the exporter
                only emits ASCII, this is validation, not fidelity. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_char buf '?'
           | _ -> fail st "bad escape"
         end);
        go ()
      | c -> Buffer.add_char buf c; go ()
    end
  in
  go ()

let parse_number st =
  let start = st.i in
  let isnum c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.i < String.length st.s && isnum st.s.[st.i] do
    st.i <- st.i + 1
  done;
  if st.i = start then fail st "expected number";
  match float_of_string_opt (String.sub st.s start (st.i - start)) with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then (st.i <- st.i + 1; Obj [])
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> st.i <- st.i + 1; members ((k, v) :: acc)
        | Some '}' -> st.i <- st.i + 1; Obj (List.rev ((k, v) :: acc))
        | _ -> fail st "expected , or }"
      in
      members []
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then (st.i <- st.i + 1; Arr [])
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> st.i <- st.i + 1; elems (v :: acc)
        | Some ']' -> st.i <- st.i + 1; Arr (List.rev (v :: acc))
        | _ -> fail st "expected , or ]"
      in
      elems []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; i = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.i <> String.length s then Error "trailing garbage"
    else Ok v
  with Bad msg -> Error msg

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None
