module Stats = Zeus_sim.Stats
module Rng = Zeus_sim.Rng

type t = {
  counters : Stats.Counter.t;
  mutable hists : (string * hist) list;  (* registration order, newest first *)
  mutable gauges : (string * float ref) list;
  rng : Rng.t;
}

and hist = {
  h_name : string;
  lo : float;                 (* lower bound of the first finite bucket *)
  per_decade : int;           (* log-scale resolution: buckets per decade *)
  buckets : int array;        (* [0] = underflow, last = overflow *)
  summary : Stats.Summary.t;
  samples : Stats.Samples.t;  (* reservoir: exact percentiles, reused code *)
}

let create ?(seed = 0x7e1eL) () =
  {
    counters = Stats.Counter.create ();
    hists = [];
    gauges = [];
    rng = Rng.create seed;
  }

let counters t = Stats.Counter.to_list t.counters
let histograms t = List.rev t.hists
let gauges t = List.rev_map (fun (n, g) -> (n, !g)) t.gauges

module Counter = struct
  type h = int ref

  (* The handle *is* the [Stats.Counter] storage cell: the hashtable
     lookup happens once here, call sites touch the ref directly and a
     misspelt metric is an unbound OCaml identifier, not a new counter. *)
  let v t name = Stats.Counter.cell t.counters name
  let incr ?(by = 1) c = c := !c + by
  let get c = !c
  let set c n = c := n
end

module Gauge = struct
  type h = float ref

  let v t name =
    match List.assoc_opt name t.gauges with
    | Some g -> g
    | None ->
      let g = ref 0.0 in
      t.gauges <- (name, g) :: t.gauges;
      g

  let set g x = g := x
  let add g x = g := !g +. x
  let get g = !g
end

module Histogram = struct
  type h = hist

  let default_lo = 0.01      (* 10 ns: below any modelled CPU cost *)
  let default_decades = 8    (* .. up to 1 s of sim time *)
  let default_per_decade = 5

  let make ~rng ?(lo = default_lo) ?(decades = default_decades)
      ?(per_decade = default_per_decade) name =
    assert (lo > 0.0 && decades > 0 && per_decade > 0);
    {
      h_name = name;
      lo;
      per_decade;
      (* + underflow and overflow *)
      buckets = Array.make ((decades * per_decade) + 2) 0;
      summary = Stats.Summary.create ();
      samples = Stats.Samples.create rng;
    }

  let create ?lo ?decades ?per_decade name =
    (* Standalone (unregistered) histogram, e.g. one per workload run. *)
    make ~rng:(Rng.create 0x7e1eL) ?lo ?decades ?per_decade name

  let v t ?lo ?decades ?per_decade name =
    match List.assoc_opt name t.hists with
    | Some h -> h
    | None ->
      let h = make ~rng:t.rng ?lo ?decades ?per_decade name in
      t.hists <- (name, h) :: t.hists;
      h

  let n_finite h = Array.length h.buckets - 2

  (* Bucket index for value [x]: 0 is underflow (x < lo), the last bucket
     is overflow; finite bucket [i] covers [lo*10^((i-1)/pd), lo*10^(i/pd)). *)
  let index h x =
    if Float.is_nan x then -1
    else if x < h.lo then 0
    else begin
      let i = int_of_float (floor (Float.log10 (x /. h.lo) *. float_of_int h.per_decade)) in
      if i >= n_finite h then n_finite h + 1 else 1 + max 0 i
    end

  let bucket_lo h i =
    if i <= 0 then 0.0
    else h.lo *. Float.pow 10.0 (float_of_int (i - 1) /. float_of_int h.per_decade)

  let bucket_hi h i =
    if i >= n_finite h + 1 then infinity
    else if i = 0 then h.lo
    else h.lo *. Float.pow 10.0 (float_of_int i /. float_of_int h.per_decade)

  let observe h x =
    match index h x with
    | -1 -> ()  (* NaN: never poison the distribution *)
    | i ->
      h.buckets.(i) <- h.buckets.(i) + 1;
      Stats.Summary.add h.summary x;
      Stats.Samples.add h.samples x

  let name h = h.h_name
  let count h = Stats.Summary.count h.summary
  let sum h = Stats.Summary.total h.summary
  let mean h = Stats.Summary.mean h.summary
  let min h = Stats.Summary.min h.summary
  let max h = Stats.Summary.max h.summary
  let percentile h p = Stats.Samples.percentile h.samples p

  let percentile_bucketed h p =
    (* Coarse log-bucket estimate (geometric interpolation inside the
       winning bucket) — bounded memory even past the reservoir cap. *)
    let total = Array.fold_left ( + ) 0 h.buckets in
    if total = 0 then nan
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let target = p /. 100.0 *. float_of_int total in
      let rec find i acc =
        if i >= Array.length h.buckets then Array.length h.buckets - 1
        else begin
          let acc' = acc +. float_of_int h.buckets.(i) in
          if acc' >= target && h.buckets.(i) > 0 then i else find (i + 1) acc'
        end
      in
      let i = find 0 0.0 in
      let lo = bucket_lo h i and hi = bucket_hi h i in
      if i = 0 then lo +. ((hi -. lo) /. 2.0)
      else if Float.is_finite hi then sqrt (lo *. hi)
      else lo
    end

  let nonzero_buckets h =
    let acc = ref [] in
    for i = Array.length h.buckets - 1 downto 0 do
      if h.buckets.(i) > 0 then
        acc := (bucket_lo h i, bucket_hi h i, h.buckets.(i)) :: !acc
    done;
    !acc
end
