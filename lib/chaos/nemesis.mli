(** The executor: turns a {!Schedule.t} into cluster events.

    [attach] schedules every step of the plan on the cluster's engine;
    when the virtual clock reaches a step, the nemesis applies it through
    the public fault surface — {!Zeus_core.Cluster.kill} / [rejoin] for
    crashes, {!Zeus_net.Fabric.partition} / [partition_oneway] / [heal*]
    for network cuts, and the perturbation knobs ([set_perturb],
    [set_slow]) for spikes and gray nodes.  Each applied fault bumps a
    [chaos.*] counter, emits a zero-length ["chaos"] trace instant, and is
    recorded in {!applied} — so two runs of the same seed can be compared
    timeline-for-timeline.

    Guards keep stale steps harmless: a [Crash] of an already-dead node
    and a [Restart] of a live one are skipped (and counted under
    [chaos.skipped]).

    Attaching {!Schedule.empty} is free: no counters are registered and no
    events are scheduled, so a run with an empty nemesis is
    telemetry-identical to a run with no nemesis at all.

    {b No-oracle mode.}  When the cluster runs with
    [membership_mode = Detected], the nemesis inherits it transparently:
    [Crash] steps still go through {!Zeus_core.Cluster.kill}, but that
    only silences the node at the fabric — no reconfiguration is
    scheduled by fiat.  The membership change (if any) is produced by the
    surviving nodes' failure detectors end-to-end, so chaos runs exercise
    the real detect → suspect → lease-expire → install pipeline.
    {!no_oracle} reports which regime a nemesis is operating in. *)

type t

val attach : ?monitor:Monitor.t -> Zeus_core.Cluster.t -> Schedule.t -> t
(** Schedule the plan from the current virtual time ([at_us] values are
    absolute).  [monitor] receives {!Monitor.note_fault} at every applied
    disruptive step (heals do not reset the grace window on their own). *)

val schedule : t -> Schedule.t

val no_oracle : t -> bool
(** [true] iff the attached cluster detects failures end-to-end
    ([membership_mode = Detected]) rather than being told about them. *)

val applied : t -> (float * Schedule.fault) list
(** Faults actually applied, in application order with their virtual
    times — the reproducibility witness. *)

val skipped : t -> int
(** Steps dropped by a guard (e.g. crash of a dead node). *)

val done_ : t -> bool
(** Every step has fired (applied or skipped). *)
