module Engine = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Fabric = Zeus_net.Fabric
module Service = Zeus_membership.Service
module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node
module Table = Zeus_store.Table
module Obj = Zeus_store.Obj
module Types = Zeus_store.Types

type config = {
  sample_us : float;
  window_us : float;
  grace_us : float;
  recovery_frac : float;
  baseline_windows : int;
}

let default_config =
  {
    sample_us = 200.0;
    window_us = 500.0;
    grace_us = 4_000.0;
    recovery_frac = 0.9;
    baseline_windows = 8;
  }

type t = {
  cluster : Cluster.t;
  config : config;
  observed : int list;
  started_at : float;
  mutable bins : int list;  (* newest first; current bin at the head *)
  mutable last_committed : int;
  mutable last_fault_at : float;
  mutable violations : string list;  (* newest first *)
  watermarks : (int, int) Hashtbl.t;  (* key -> highest valid version seen *)
  owner_suspect : (int, int) Hashtbl.t;  (* key -> consecutive multi-owner samples *)
  mutable stopped : bool;
  mutable sample_ev : Engine.event_id option;
  mutable window_ev : Engine.event_id option;
  c_samples : Metrics.Counter.h;
  c_violations : Metrics.Counter.h;
}

let max_recorded_violations = 32

let engine t = Cluster.engine t.cluster

let observed_committed t =
  List.fold_left (fun acc i -> acc + Node.committed (Cluster.node t.cluster i)) 0 t.observed

let violate t fmt =
  Format.kasprintf
    (fun msg ->
      Metrics.Counter.incr t.c_violations;
      if List.length t.violations < max_recorded_violations then
        t.violations <-
          Printf.sprintf "[%.1fus] %s" (Engine.now (engine t)) msg :: t.violations)
    fmt

(* ---------- steady-state detection ---------------------------------------- *)

let steady t =
  let c = t.cluster in
  let n = Cluster.nodes c in
  List.length (Cluster.live_nodes c) = n
  && Service.stable (Cluster.membership c)
  && List.for_all (fun i -> Service.is_live (Cluster.membership c) i) (List.init n Fun.id)
  && Engine.now (engine t) >= t.last_fault_at +. t.config.grace_us

(* ---------- invariant sampling --------------------------------------------- *)

(* One pass over the live tables: per key, the number of live owners, the
   highest version held by any live copy, and the highest version held by
   a valid copy (-1 when no valid copy).  The watermark tracks the former:
   an invalidated follower already carries the in-flight version (the
   commit agent bumps [t_version] at R-INV), so max-over-valid-copies dips
   transiently under pipelined writes while max-over-all-copies is
   monotone in steady state. *)
let scan t =
  let acc : (int, int * int * int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun i ->
      Table.iter (Node.table (Cluster.node t.cluster i)) (fun obj ->
          let owners, vmax, vvalid =
            Option.value ~default:(0, -1, -1) (Hashtbl.find_opt acc obj.Obj.key)
          in
          (* A stale owner mid-handover keeps role=Owner until its O-VAL
             drains through the in-order flow, but sits at o_state
             O_invalid and cannot commit; only a usable owner (role +
             O_valid) counts for the online single-owner check. *)
          let usable = Obj.is_owner obj && obj.Obj.o_state = Types.O_valid in
          let owners = owners + if usable then 1 else 0 in
          let vmax = max vmax obj.Obj.t_version in
          let vvalid =
            if obj.Obj.t_state = Types.T_valid then max vvalid obj.Obj.t_version
            else vvalid
          in
          Hashtbl.replace acc obj.Obj.key (owners, vmax, vvalid)))
    (Cluster.live_nodes t.cluster);
  acc

let sample_invariants t =
  Metrics.Counter.incr t.c_samples;
  let acc = scan t in
  (* Single owner: flag only when the same key shows more than one live
     owner in two consecutive samples — a handover caught mid-arbitration
     resolves within microseconds, a real violation persists. *)
  Hashtbl.iter
    (fun key (owners, _, _) ->
      if owners > 1 then begin
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.owner_suspect key) in
        Hashtbl.replace t.owner_suspect key n;
        if n = 2 then violate t "key %d: %d live owners (persisted)" key owners
      end
      else Hashtbl.remove t.owner_suspect key)
    acc;
  (* Version monotonicity: the highest version held by any live copy must
     never regress while the cluster is steady — a regression means a
     committed (or reliably in-flight) write vanished. *)
  Hashtbl.iter
    (fun key (_, vmax, _) ->
      if vmax >= 0 then begin
        (match Hashtbl.find_opt t.watermarks key with
        | Some w when vmax < w ->
          violate t "key %d: valid-version watermark regressed %d -> %d" key w vmax
        | _ -> ());
        Hashtbl.replace t.watermarks key
          (max vmax (Option.value ~default:(-1) (Hashtbl.find_opt t.watermarks key)))
      end)
    acc;
  (* A freed key's watermark must not outlive it. *)
  Hashtbl.iter
    (fun key _ -> if not (Hashtbl.mem acc key) then Hashtbl.remove t.watermarks key)
    (Hashtbl.copy t.watermarks)

(* ---------- sampling loops ------------------------------------------------- *)

let rec arm_sample t =
  t.sample_ev <-
    Some
      (Engine.schedule (engine t) ~after:t.config.sample_us (fun () ->
           t.sample_ev <- None;
           if not t.stopped then begin
             if steady t then sample_invariants t
             else Hashtbl.reset t.owner_suspect;
             arm_sample t
           end))

let rec arm_window t =
  t.window_ev <-
    Some
      (Engine.schedule (engine t) ~after:t.config.window_us (fun () ->
           t.window_ev <- None;
           if not t.stopped then begin
             let cur = observed_committed t in
             (* A rejoined node's counters reset with it; clamp so the
                timeline never goes negative. *)
             t.bins <- max 0 (cur - t.last_committed) :: t.bins;
             t.last_committed <- cur;
             arm_window t
           end))

let attach ?(config = default_config) ?observed cluster =
  let observed =
    Option.value observed ~default:(List.init (Cluster.nodes cluster) Fun.id)
  in
  let m = Zeus_telemetry.Hub.metrics (Cluster.telemetry cluster) in
  let t =
    {
      cluster;
      config;
      observed;
      started_at = Engine.now (Cluster.engine cluster);
      bins = [];
      last_committed = 0;
      last_fault_at = Float.neg_infinity;
      violations = [];
      watermarks = Hashtbl.create 256;
      owner_suspect = Hashtbl.create 16;
      stopped = false;
      sample_ev = None;
      window_ev = None;
      c_samples = Metrics.Counter.v m "chaos.monitor.samples";
      c_violations = Metrics.Counter.v m "chaos.monitor.violations";
    }
  in
  t.last_committed <- observed_committed t;
  arm_sample t;
  arm_window t;
  t

let config t = t.config
let note_fault t = t.last_fault_at <- Engine.now (engine t)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.sample_ev with Some ev -> Engine.cancel (engine t) ev | None -> ());
    (match t.window_ev with Some ev -> Engine.cancel (engine t) ev | None -> ());
    t.sample_ev <- None;
    t.window_ev <- None
  end

let samples t = Metrics.Counter.get t.c_samples
let violations t = List.rev t.violations
let ok t = t.violations = []

let timeline t =
  List.rev
    (List.mapi
       (fun i count ->
         let newest = List.length t.bins - 1 in
         (t.started_at +. (float_of_int (newest - i) *. t.config.window_us), count))
       t.bins)

let goodput t =
  List.map (fun (at, n) -> (at, float_of_int n /. t.config.window_us)) (timeline t)

(* ---------- recovery extraction -------------------------------------------- *)

let recovery_of_timeline ~window_us ~frac ~baseline_windows ~fault_at_us tl =
  let pre = List.filter (fun (at, _) -> at +. window_us <= fault_at_us) tl in
  let pre = List.filteri (fun i _ -> i >= List.length pre - baseline_windows) pre in
  if pre = [] then None
  else begin
    let baseline =
      List.fold_left (fun acc (_, n) -> acc +. float_of_int n) 0.0 pre
      /. float_of_int (List.length pre)
    in
    if baseline <= 0.0 then None
    else begin
      let target = frac *. baseline in
      (* Recovered at the first of two consecutive windows back at the
         target rate (one good window alone can be a retry burst). *)
      let post = List.filter (fun (at, _) -> at >= fault_at_us) tl in
      let rec find = function
        | (at, n) :: ((_, n') :: _ as rest) ->
          if float_of_int n >= target && float_of_int n' >= target then
            Some (at +. window_us -. fault_at_us)
          else find rest
        | [ (at, n) ] ->
          if float_of_int n >= target then Some (at +. window_us -. fault_at_us) else None
        | [] -> None
      in
      find post
    end
  end

let recovery_us t ~fault_at_us =
  recovery_of_timeline ~window_us:t.config.window_us ~frac:t.config.recovery_frac
    ~baseline_windows:t.config.baseline_windows ~fault_at_us (timeline t)

(* ---------- final convergence check ---------------------------------------- *)

let check_final t =
  match violations t with
  | v :: _ -> Error (Printf.sprintf "online monitor: %s" v)
  | [] -> (
    match Cluster.check_invariants t.cluster with
    | Error _ as e -> e
    | Ok () ->
      (* Replica convergence: after every fault heals and the run drains,
         each surviving key must retain at least one valid copy — a key
         whose copies are all stuck invalid lost its validation and will
         wedge every future transaction that touches it. *)
      let acc = scan t in
      let stuck = ref None in
      Hashtbl.iter
        (fun key (_, _, vvalid) -> if vvalid < 0 && !stuck = None then stuck := Some key)
        acc;
      (match !stuck with
      | Some key -> Error (Printf.sprintf "key %d: no valid copy after quiesce" key)
      | None -> Ok ()))
