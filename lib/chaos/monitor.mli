(** Online invariant monitors and the goodput timeline.

    Attached to a cluster before the workload starts, a monitor samples two
    things on the virtual clock:

    - {e invariants}, every [sample_us] of {e steady} time — all nodes
      alive, no membership reconfiguration in flight, and at least
      [grace_us] since the last injected fault.  Checked online: at most
      one {e usable} owner per key — role Owner with [o_state = O_valid];
      a stale owner mid-handover keeps its role until the O-VAL drains
      through the in-order flow but is invalidated and cannot commit —
      (flagged only when it persists across two consecutive samples, so a
      mid-arbitration handover is not a false positive) and per-key
      version monotonicity over live copies (a
      regression of the version watermark is a lost update; invalidated
      followers already carry the in-flight version, so the max over all
      copies — unlike the max over valid copies — is monotone even under
      pipelined writes);

    - the {e goodput timeline}, every [window_us]: committed transactions
      of the observed nodes per window.  {!recovery_us} extracts the
      paper's §8 recovery metric from it — time from fault injection until
      the windowed goodput is back to [recovery_frac] (default 90 %) of
      the pre-fault mean for two consecutive windows.

    {!stop} cancels the sampling events (so a drain can quiesce), and
    {!check_final} runs the full post-quiesce convergence check: the
    cluster invariants of {!Zeus_core.Cluster.check_invariants} plus
    replica convergence — every surviving key must retain at least one
    valid copy after all faults heal. *)

type config = {
  sample_us : float;       (** invariant sampling period *)
  window_us : float;       (** goodput bin width *)
  grace_us : float;        (** steady-state guard after each fault *)
  recovery_frac : float;   (** recovery threshold vs the pre-fault mean *)
  baseline_windows : int;  (** windows averaged for the pre-fault mean *)
}

val default_config : config

type t

val attach : ?config:config -> ?observed:int list -> Zeus_core.Cluster.t -> t
(** Starts sampling at the next sample/window boundary.  [observed]
    (default: all nodes) names the nodes whose committed counts feed the
    goodput timeline — pass the expected survivors when a scenario crashes
    a driving node, so the recovery metric tracks surviving capacity. *)

val config : t -> config
val note_fault : t -> unit
(** Fault injected now: opens a [grace_us] suppression window. *)

val stop : t -> unit
(** Cancel the recurring sampling events; timelines and violations remain
    readable.  Idempotent. *)

val samples : t -> int
val violations : t -> string list
(** Oldest first; empty when every online check passed. *)

val ok : t -> bool

val timeline : t -> (float * int) list
(** [(window_start_us, committed_in_window)], oldest first, including the
    currently filling window. *)

val goodput : t -> (float * float) list
(** The timeline in committed transactions per µs (Mtps). *)

val recovery_us : t -> fault_at_us:float -> float option
(** Recovery time for a fault at the given instant, or [None] if goodput
    never recovered inside the recorded timeline. *)

val recovery_of_timeline :
  window_us:float ->
  frac:float ->
  baseline_windows:int ->
  fault_at_us:float ->
  (float * int) list ->
  float option
(** Pure extraction, exposed for tests: same computation as
    {!recovery_us} over an explicit [(window_start, count)] timeline. *)

val check_final : t -> (unit, string) result
(** Post-quiesce: any recorded online violation, then the cluster
    invariant suite, then replica convergence (every key with live
    holders has at least one valid copy). *)
