type scenario = {
  name : string;
  fault_at_us : float;
  restart_at_us : float option;
  baseline_mtps : float;
  dip_mtps : float;
  recovery_us : float option;
  committed : int;
  aborted : int;
  monitors_ok : bool;
  violations : string list;
  timeline : (float * float) list;
}

type t = { quick : bool; seed : int64; scenarios : scenario list }

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let of_monitor ~name ~fault_at_us ?restart_at_us ~committed ~aborted monitor =
  let cfg = Monitor.config monitor in
  let tl = Monitor.goodput monitor in
  let pre =
    List.filter (fun (at, _) -> at +. cfg.Monitor.window_us <= fault_at_us) tl
  in
  let pre =
    List.filteri (fun i _ -> i >= List.length pre - cfg.Monitor.baseline_windows) pre
  in
  let baseline_mtps = mean (List.map snd pre) in
  let recovery_us = Monitor.recovery_us monitor ~fault_at_us in
  (* Worst window inside the outage: from the fault until recovery (or the
     end of the timeline when goodput never came back). *)
  let outage_end =
    match recovery_us with Some r -> fault_at_us +. r | None -> Float.infinity
  in
  let dip =
    List.filter_map
      (fun (at, g) -> if at >= fault_at_us && at < outage_end then Some g else None)
      tl
  in
  let dip_mtps = match dip with [] -> baseline_mtps | _ -> List.fold_left Float.min Float.infinity dip in
  let monitors_ok = Result.is_ok (Monitor.check_final monitor) in
  let violations =
    match Monitor.check_final monitor with
    | Ok () -> []
    | Error e -> [ e ]
  in
  {
    name;
    fault_at_us;
    restart_at_us;
    baseline_mtps;
    dip_mtps;
    recovery_us;
    committed;
    aborted;
    monitors_ok;
    violations;
    timeline = tl;
  }

(* ---------- JSON ----------------------------------------------------------- *)

let num x = if Float.is_finite x then Printf.sprintf "%.6f" x else "null"
let opt_num = function Some x -> num x | None -> "null"

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let scenario_to_json s =
  let timeline =
    String.concat ", "
      (List.map (fun (at, g) -> Printf.sprintf "[%s, %s]" (num at) (num g)) s.timeline)
  in
  let violations =
    String.concat ", " (List.map (fun v -> Printf.sprintf "\"%s\"" (escape v)) s.violations)
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"fault_at_us\": %s, \"restart_at_us\": %s, \
     \"baseline_mtps\": %s, \"dip_mtps\": %s, \"recovery_us\": %s, \
     \"committed\": %d, \"aborted\": %d, \"monitors_ok\": %b, \
     \"violations\": [%s], \"timeline\": [%s]}"
    (escape s.name) (num s.fault_at_us) (opt_num s.restart_at_us)
    (num s.baseline_mtps) (num s.dip_mtps) (opt_num s.recovery_us) s.committed
    s.aborted s.monitors_ok violations timeline

let to_json t =
  Printf.sprintf "{\"quick\": %b,\n \"seed\": %Ld,\n \"scenarios\": [\n  %s\n ]}\n"
    t.quick t.seed
    (String.concat ",\n  " (List.map scenario_to_json t.scenarios))

let write ~path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc
