type detection = {
  d_mode : string;
  d_heartbeats : int;
  d_suspicions : int;
  d_retractions : int;
  d_false_suspicions : int;
  d_fences : int;
  d_evictions_averted : int;
  d_views_installed : int;
}

let detection_of_service svc =
  let open Zeus_membership.Service in
  let s = det_stats svc in
  {
    d_mode = (match mode svc with Oracle -> "oracle" | Detected -> "detected");
    d_heartbeats = s.heartbeats;
    d_suspicions = s.suspicions;
    d_retractions = s.retractions;
    d_false_suspicions = s.false_suspicions;
    d_fences = s.fences;
    d_evictions_averted = s.evictions_averted;
    d_views_installed = s.views_installed;
  }

type scenario = {
  name : string;
  fault_at_us : float;
  restart_at_us : float option;
  baseline_mtps : float;
  dip_mtps : float;
  recovery_us : float option;
  committed : int;
  aborted : int;
  monitors_ok : bool;
  violations : string list;
  detection : detection option;
  timeline : (float * float) list;
}

type t = { quick : bool; seed : int64; scenarios : scenario list }

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let of_monitor ~name ~fault_at_us ?restart_at_us ?detection ~committed ~aborted monitor
    =
  let cfg = Monitor.config monitor in
  let tl = Monitor.goodput monitor in
  let pre =
    List.filter (fun (at, _) -> at +. cfg.Monitor.window_us <= fault_at_us) tl
  in
  let pre =
    List.filteri (fun i _ -> i >= List.length pre - cfg.Monitor.baseline_windows) pre
  in
  let baseline_mtps = mean (List.map snd pre) in
  let recovery_us = Monitor.recovery_us monitor ~fault_at_us in
  (* Worst window inside the outage: from the fault until recovery (or the
     end of the timeline when goodput never came back). *)
  let outage_end =
    match recovery_us with Some r -> fault_at_us +. r | None -> Float.infinity
  in
  let dip =
    List.filter_map
      (fun (at, g) -> if at >= fault_at_us && at < outage_end then Some g else None)
      tl
  in
  let dip_mtps = match dip with [] -> baseline_mtps | _ -> List.fold_left Float.min Float.infinity dip in
  let monitors_ok = Result.is_ok (Monitor.check_final monitor) in
  let violations =
    match Monitor.check_final monitor with
    | Ok () -> []
    | Error e -> [ e ]
  in
  {
    name;
    fault_at_us;
    restart_at_us;
    baseline_mtps;
    dip_mtps;
    recovery_us;
    committed;
    aborted;
    monitors_ok;
    violations;
    detection;
    timeline = tl;
  }

(* ---------- JSON ----------------------------------------------------------- *)

let num x = if Float.is_finite x then Printf.sprintf "%.6f" x else "null"
let opt_num = function Some x -> num x | None -> "null"

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let detection_to_json d =
  Printf.sprintf
    "{\"mode\": \"%s\", \"heartbeats\": %d, \"suspicions\": %d, \
     \"retractions\": %d, \"false_suspicions\": %d, \"fences\": %d, \
     \"evictions_averted\": %d, \"views_installed\": %d}"
    (escape d.d_mode) d.d_heartbeats d.d_suspicions d.d_retractions
    d.d_false_suspicions d.d_fences d.d_evictions_averted d.d_views_installed

let scenario_to_json s =
  let timeline =
    String.concat ", "
      (List.map (fun (at, g) -> Printf.sprintf "[%s, %s]" (num at) (num g)) s.timeline)
  in
  let violations =
    String.concat ", " (List.map (fun v -> Printf.sprintf "\"%s\"" (escape v)) s.violations)
  in
  let detection =
    match s.detection with None -> "null" | Some d -> detection_to_json d
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"fault_at_us\": %s, \"restart_at_us\": %s, \
     \"baseline_mtps\": %s, \"dip_mtps\": %s, \"recovery_us\": %s, \
     \"committed\": %d, \"aborted\": %d, \"monitors_ok\": %b, \
     \"violations\": [%s], \"detection\": %s, \"timeline\": [%s]}"
    (escape s.name) (num s.fault_at_us) (opt_num s.restart_at_us)
    (num s.baseline_mtps) (num s.dip_mtps) (opt_num s.recovery_us) s.committed
    s.aborted s.monitors_ok violations detection timeline

let to_json t =
  Printf.sprintf "{\"quick\": %b,\n \"seed\": %Ld,\n \"scenarios\": [\n  %s\n ]}\n"
    t.quick t.seed
    (String.concat ",\n  " (List.map scenario_to_json t.scenarios))

let write ~path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc
