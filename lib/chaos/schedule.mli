(** Declarative fault plans.

    A schedule is pure data: a named, seeded list of [(virtual time, fault)]
    steps, printable for bug reports and replayable bit-for-bit — running
    the same schedule on the same cluster seed reproduces the identical
    fault timeline (the chaos analogue of the simulator's determinism
    guarantee).  Schedules say {e what} happens and {e when}; the
    {!Nemesis} is the only component that touches the cluster. *)

type fault =
  | Crash of int                                    (** crash-stop via membership *)
  | Restart of int                                  (** rejoin as a fresh incarnation *)
  | Partition of int * int                          (** symmetric link cut *)
  | Partition_oneway of { src : int; dst : int }    (** drop src->dst only *)
  | Heal of int * int
  | Heal_oneway of { src : int; dst : int }
  | Heal_all
  | Spike of { loss : float; dup : float; delay_us : float }
      (** arm a cluster-wide link-quality spike *)
  | Spike_end
  | Scramble of { prob : float }
      (** arm cluster-wide delivery-order scrambling: each message
          overtakes the latest in-flight one on its link with probability
          [prob] ({!Zeus_net.Fabric.set_scramble} — independent of the
          spike, so the two can overlap) *)
  | Scramble_end
  | Slow of { node : int; factor : float }          (** gray node: latency multiplier *)
  | Slow_end of int

type step = { at_us : float; fault : fault }

type t = private { name : string; seed : int64; steps : step list }
(** [steps] is sorted by [at_us] (stable for equal times). *)

val v : name:string -> ?seed:int64 -> step list -> t
(** Sorts the steps; [seed] (default 0) records provenance for printing. *)

val empty : t
val is_empty : t -> bool
val steps : t -> step list
val length : t -> int
val equal : t -> t -> bool

(** {2 Common fault windows} — each returns the steps of one incident. *)

val crash_restart : node:int -> at_us:float -> down_us:float -> step list
val partition_window : a:int -> b:int -> at_us:float -> duration_us:float -> step list

val oneway_window : src:int -> dst:int -> at_us:float -> duration_us:float -> step list

val spike_window :
  at_us:float ->
  duration_us:float ->
  ?loss:float ->
  ?dup:float ->
  ?delay_us:float ->
  unit ->
  step list

val slow_window : node:int -> factor:float -> at_us:float -> duration_us:float -> step list

val scramble_window :
  at_us:float -> duration_us:float -> ?prob:float -> unit -> step list
(** One delivery-order-scrambling incident ([prob] defaults to 0.3).  Not
    drawn by {!random} — an ordered transport re-orders the permutation
    away, so it is only interesting on [Transport.unordered] clusters,
    which the random plan knows nothing about (and adding it there would
    reshuffle every existing seeded plan). *)

val random :
  seed:int64 ->
  nodes:int ->
  start_us:float ->
  duration_us:float ->
  ?faults:int ->
  unit ->
  t
(** A stochastic plan drawn from its own rng (independent of any engine):
    [faults] incident windows (default 3) of random kinds — crash/restart,
    symmetric and one-sided partitions, loss/dup/delay spikes, slow
    nodes — inside [\[start_us, start_us + duration_us)], with at most one
    node down at a time, every window closed before the end, and a final
    [Heal_all] so the cluster can converge.  Same seed, same plan. *)

val fault_to_string : fault -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
