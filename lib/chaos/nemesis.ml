module Engine = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Trace = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Fabric = Zeus_net.Fabric
module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node

type counters = {
  c_crashes : Metrics.Counter.h;
  c_restarts : Metrics.Counter.h;
  c_partitions : Metrics.Counter.h;
  c_heals : Metrics.Counter.h;
  c_spikes : Metrics.Counter.h;
  c_slow : Metrics.Counter.h;
  c_skipped : Metrics.Counter.h;
}

type t = {
  cluster : Cluster.t;
  schedule : Schedule.t;
  monitor : Monitor.t option;
  counters : counters option;  (* [None] for the empty schedule: zero footprint *)
  mutable applied : (float * Schedule.fault) list;  (* newest first *)
  mutable fired : int;
  mutable skipped : int;
}

let node_of = function
  | Schedule.Crash n | Restart n | Slow { node = n; _ } | Slow_end n -> n
  | Partition (a, _) | Heal (a, _) -> a
  | Partition_oneway { src; _ } | Heal_oneway { src; _ } -> src
  | Heal_all | Spike _ | Spike_end | Scramble _ | Scramble_end -> 0

let instant t fault =
  let tr = Cluster.trace t.cluster in
  if Trace.enabled tr then begin
    let now = Engine.now (Cluster.engine t.cluster) in
    Trace.complete tr ~cat:"chaos" ~pid:(node_of fault) ~start:now ~stop:now
      (Schedule.fault_to_string fault)
  end

(* Heals close an incident; they must not push the monitor's steady-state
   grace window further out, or back-to-back windows would starve it. *)
let disruptive = function
  | Schedule.Crash _ | Restart _ | Partition _ | Partition_oneway _ | Spike _
  | Scramble _ | Slow _ ->
    true
  | Heal _ | Heal_oneway _ | Heal_all | Spike_end | Scramble_end | Slow_end _ -> false

let apply t cnt (fault : Schedule.fault) =
  let c = t.cluster in
  let fabric = Cluster.fabric c in
  let applied =
    match fault with
    | Crash n ->
      if Node.is_alive (Cluster.node c n) then begin
        Cluster.kill c n;
        Metrics.Counter.incr cnt.c_crashes;
        true
      end
      else false
    | Restart n ->
      if not (Node.is_alive (Cluster.node c n)) then begin
        Cluster.rejoin c n;
        Metrics.Counter.incr cnt.c_restarts;
        true
      end
      else false
    | Partition (a, b) ->
      Fabric.partition fabric a b;
      Metrics.Counter.incr cnt.c_partitions;
      true
    | Partition_oneway { src; dst } ->
      Fabric.partition_oneway fabric ~src ~dst;
      Metrics.Counter.incr cnt.c_partitions;
      true
    | Heal (a, b) ->
      Fabric.heal fabric a b;
      Metrics.Counter.incr cnt.c_heals;
      true
    | Heal_oneway { src; dst } ->
      Fabric.heal_oneway fabric ~src ~dst;
      Metrics.Counter.incr cnt.c_heals;
      true
    | Heal_all ->
      Fabric.heal_all fabric;
      Metrics.Counter.incr cnt.c_heals;
      true
    | Spike { loss; dup; delay_us } ->
      Fabric.set_perturb fabric
        (Some { Fabric.p_loss = loss; p_dup = dup; p_delay_us = delay_us });
      Metrics.Counter.incr cnt.c_spikes;
      true
    | Spike_end ->
      Fabric.set_perturb fabric None;
      Metrics.Counter.incr cnt.c_spikes;
      true
    | Scramble { prob } ->
      Fabric.set_scramble fabric prob;
      Metrics.Counter.incr cnt.c_spikes;
      true
    | Scramble_end ->
      Fabric.set_scramble fabric 0.0;
      Metrics.Counter.incr cnt.c_spikes;
      true
    | Slow { node; factor } ->
      Fabric.set_slow fabric node factor;
      Metrics.Counter.incr cnt.c_slow;
      true
    | Slow_end node ->
      Fabric.set_slow fabric node 1.0;
      Metrics.Counter.incr cnt.c_slow;
      true
  in
  if applied then begin
    t.applied <- (Engine.now (Cluster.engine c), fault) :: t.applied;
    instant t fault;
    if disruptive fault then Option.iter Monitor.note_fault t.monitor
  end
  else begin
    t.skipped <- t.skipped + 1;
    Metrics.Counter.incr cnt.c_skipped
  end;
  t.fired <- t.fired + 1

let attach ?monitor cluster schedule =
  let counters =
    if Schedule.is_empty schedule then None
    else begin
      let m = Hub.metrics (Cluster.telemetry cluster) in
      Some
        {
          c_crashes = Metrics.Counter.v m "chaos.crashes";
          c_restarts = Metrics.Counter.v m "chaos.restarts";
          c_partitions = Metrics.Counter.v m "chaos.partitions";
          c_heals = Metrics.Counter.v m "chaos.heals";
          c_spikes = Metrics.Counter.v m "chaos.spikes";
          c_slow = Metrics.Counter.v m "chaos.slow";
          c_skipped = Metrics.Counter.v m "chaos.skipped";
        }
    end
  in
  let t =
    { cluster; schedule; monitor; counters; applied = []; fired = 0; skipped = 0 }
  in
  (match counters with
  | None -> ()
  | Some cnt ->
    let engine = Cluster.engine cluster in
    List.iter
      (fun (s : Schedule.step) ->
        ignore
          (Engine.schedule_at engine ~time:s.at_us (fun () -> apply t cnt s.fault)))
      (Schedule.steps schedule));
  t

let schedule t = t.schedule

let no_oracle t =
  Zeus_membership.Service.mode (Cluster.membership t.cluster)
  = Zeus_membership.Service.Detected
let applied t = List.rev t.applied
let skipped t = t.skipped
let done_ t = t.fired = Schedule.length t.schedule
