module Rng = Zeus_sim.Rng

type fault =
  | Crash of int
  | Restart of int
  | Partition of int * int
  | Partition_oneway of { src : int; dst : int }
  | Heal of int * int
  | Heal_oneway of { src : int; dst : int }
  | Heal_all
  | Spike of { loss : float; dup : float; delay_us : float }
  | Spike_end
  | Scramble of { prob : float }
  | Scramble_end
  | Slow of { node : int; factor : float }
  | Slow_end of int

type step = { at_us : float; fault : fault }
type t = { name : string; seed : int64; steps : step list }

let v ~name ?(seed = 0L) steps =
  { name; seed; steps = List.stable_sort (fun a b -> compare a.at_us b.at_us) steps }

let empty = { name = "empty"; seed = 0L; steps = [] }
let is_empty t = t.steps = []
let steps t = t.steps
let length t = List.length t.steps

let equal a b =
  a.name = b.name && Int64.equal a.seed b.seed
  && List.length a.steps = List.length b.steps
  && List.for_all2 (fun x y -> x.at_us = y.at_us && x.fault = y.fault) a.steps b.steps

(* ---------- incident windows ---------------------------------------------- *)

let crash_restart ~node ~at_us ~down_us =
  [ { at_us; fault = Crash node }; { at_us = at_us +. down_us; fault = Restart node } ]

let partition_window ~a ~b ~at_us ~duration_us =
  [ { at_us; fault = Partition (a, b) }; { at_us = at_us +. duration_us; fault = Heal (a, b) } ]

let oneway_window ~src ~dst ~at_us ~duration_us =
  [
    { at_us; fault = Partition_oneway { src; dst } };
    { at_us = at_us +. duration_us; fault = Heal_oneway { src; dst } };
  ]

let spike_window ~at_us ~duration_us ?(loss = 0.05) ?(dup = 0.05) ?(delay_us = 20.0) () =
  [
    { at_us; fault = Spike { loss; dup; delay_us } };
    { at_us = at_us +. duration_us; fault = Spike_end };
  ]

let slow_window ~node ~factor ~at_us ~duration_us =
  [
    { at_us; fault = Slow { node; factor } };
    { at_us = at_us +. duration_us; fault = Slow_end node };
  ]

let scramble_window ~at_us ~duration_us ?(prob = 0.3) () =
  [
    { at_us; fault = Scramble { prob } };
    { at_us = at_us +. duration_us; fault = Scramble_end };
  ]

(* ---------- stochastic plans ----------------------------------------------- *)

let random ~seed ~nodes ~start_us ~duration_us ?(faults = 3) () =
  let rng = Rng.create seed in
  let stop = start_us +. duration_us in
  (* At most one node down at a time: a second crash before the first
     restart would be a majority loss on small clusters and turns the
     property tests into availability tests. *)
  let crash_free_at = ref start_us in
  let steps = ref [] in
  let add s = steps := s @ !steps in
  for _ = 1 to faults do
    let at = start_us +. Rng.float rng (duration_us *. 0.6) in
    let len =
      Float.min
        (duration_us *. 0.1 +. Rng.float rng (duration_us *. 0.3))
        (stop -. at -. (duration_us *. 0.05))
    in
    if len > 0.0 then begin
      let a = Rng.int rng nodes in
      let b = (a + 1 + Rng.int rng (max 1 (nodes - 1))) mod nodes in
      match Rng.int rng 5 with
      | 0 when at >= !crash_free_at ->
        crash_free_at := at +. len;
        add (crash_restart ~node:a ~at_us:at ~down_us:len)
      | 0 | 1 ->
        if a <> b then add (partition_window ~a ~b ~at_us:at ~duration_us:len)
      | 2 ->
        if a <> b then add (oneway_window ~src:a ~dst:b ~at_us:at ~duration_us:len)
      | 3 ->
        add
          (spike_window ~at_us:at ~duration_us:len ~loss:(Rng.float rng 0.1)
             ~dup:(Rng.float rng 0.1) ~delay_us:(Rng.float rng 30.0) ())
      | _ ->
        add
          (slow_window ~node:a
             ~factor:(2.0 +. Rng.float rng 8.0)
             ~at_us:at ~duration_us:len)
    end
  done;
  (* Whatever happened, end in a healed, fully-populated cluster. *)
  add [ { at_us = stop; fault = Heal_all }; { at_us = stop; fault = Spike_end } ];
  v ~name:(Printf.sprintf "random-%Ld" seed) ~seed !steps

(* ---------- printing ------------------------------------------------------- *)

let fault_to_string = function
  | Crash n -> Printf.sprintf "crash(%d)" n
  | Restart n -> Printf.sprintf "restart(%d)" n
  | Partition (a, b) -> Printf.sprintf "partition(%d,%d)" a b
  | Partition_oneway { src; dst } -> Printf.sprintf "partition_oneway(%d->%d)" src dst
  | Heal (a, b) -> Printf.sprintf "heal(%d,%d)" a b
  | Heal_oneway { src; dst } -> Printf.sprintf "heal_oneway(%d->%d)" src dst
  | Heal_all -> "heal_all"
  | Spike { loss; dup; delay_us } ->
    Printf.sprintf "spike(loss=%.3f,dup=%.3f,delay=%.1fus)" loss dup delay_us
  | Spike_end -> "spike_end"
  | Scramble { prob } -> Printf.sprintf "scramble(p=%.3f)" prob
  | Scramble_end -> "scramble_end"
  | Slow { node; factor } -> Printf.sprintf "slow(%d,x%.1f)" node factor
  | Slow_end n -> Printf.sprintf "slow_end(%d)" n

let pp ppf t =
  Format.fprintf ppf "schedule %S (seed %Ld, %d steps)" t.name t.seed (List.length t.steps);
  List.iter
    (fun s -> Format.fprintf ppf "@.  @[%10.1f us  %s@]" s.at_us (fault_to_string s.fault))
    t.steps

let to_string t = Format.asprintf "%a" pp t
