(** Machine-readable chaos results ([BENCH_faults.json]).

    One {!scenario} per injected fault of the [faults] experiment:
    identity (name, fault/restart instants), throughput (pre-fault
    baseline, worst post-fault window, the full goodput timeline), the
    recovery time extracted by {!Monitor.recovery_us}, commit/abort
    totals, and the monitor verdict.  [to_json] hand-rolls the JSON the
    same way as the other bench emitters — no JSON library in tree. *)

(** Failure-detection observability for a scenario: which membership
    regime it ran under ([d_mode]: ["oracle"] or ["detected"]) and the
    detection counters at the end of the run — so [BENCH_faults.json]
    distinguishes a recovery produced by an oracle-announced crash from
    one the cluster detected itself (and quantifies false suspicions). *)
type detection = {
  d_mode : string;
  d_heartbeats : int;
  d_suspicions : int;
  d_retractions : int;
  d_false_suspicions : int;
  d_fences : int;
  d_evictions_averted : int;
  d_views_installed : int;
}

val detection_of_service : Zeus_membership.Service.t -> detection
(** Snapshot a membership service's {!Zeus_membership.Service.det_stats}. *)

type scenario = {
  name : string;
  fault_at_us : float;
  restart_at_us : float option;
  baseline_mtps : float;     (** mean goodput over the pre-fault windows *)
  dip_mtps : float;          (** worst window between fault and recovery *)
  recovery_us : float option;
  committed : int;
  aborted : int;
  monitors_ok : bool;
  violations : string list;
  detection : detection option;  (** [None] when the run predates tracking *)
  timeline : (float * float) list;  (** [(window_start_us, mtps)] *)
}

type t = {
  quick : bool;
  seed : int64;
  scenarios : scenario list;
}

val of_monitor :
  name:string ->
  fault_at_us:float ->
  ?restart_at_us:float ->
  ?detection:detection ->
  committed:int ->
  aborted:int ->
  Monitor.t ->
  scenario
(** Derive a scenario from a stopped monitor: baseline, dip, recovery and
    verdict all come from the monitor's timeline and final check. *)

val scenario_to_json : scenario -> string
val to_json : t -> string
val write : path:string -> t -> unit
