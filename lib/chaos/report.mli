(** Machine-readable chaos results ([BENCH_faults.json]).

    One {!scenario} per injected fault of the [faults] experiment:
    identity (name, fault/restart instants), throughput (pre-fault
    baseline, worst post-fault window, the full goodput timeline), the
    recovery time extracted by {!Monitor.recovery_us}, commit/abort
    totals, and the monitor verdict.  [to_json] hand-rolls the JSON the
    same way as the other bench emitters — no JSON library in tree. *)

type scenario = {
  name : string;
  fault_at_us : float;
  restart_at_us : float option;
  baseline_mtps : float;     (** mean goodput over the pre-fault windows *)
  dip_mtps : float;          (** worst window between fault and recovery *)
  recovery_us : float option;
  committed : int;
  aborted : int;
  monitors_ok : bool;
  violations : string list;
  timeline : (float * float) list;  (** [(window_start_us, mtps)] *)
}

type t = {
  quick : bool;
  seed : int64;
  scenarios : scenario list;
}

val of_monitor :
  name:string ->
  fault_at_us:float ->
  ?restart_at_us:float ->
  committed:int ->
  aborted:int ->
  Monitor.t ->
  scenario
(** Derive a scenario from a stopped monitor: baseline, dip, recovery and
    verdict all come from the monitor's timeline and final check. *)

val scenario_to_json : scenario -> string
val to_json : t -> string
val write : path:string -> t -> unit
