(** Per-node unreliable failure detector: heartbeat inter-arrival tracking
    with an adaptive suspicion timeout (a windowed phi-accrual variant).

    Each node periodically sends small {!Heartbeat} frames to every peer of
    its current view, and {e every} received payload — heartbeat or
    protocol traffic riding the batched per-peer flows — counts as an
    arrival, so under load the data stream itself carries the liveness
    signal and explicit heartbeats only matter for idle links.

    The estimator keeps, per peer, an EWMA of the inter-arrival mean and
    mean absolute deviation (Jacobson gains: 1/8 and 1/4).  A peer is
    suspected once the current silence exceeds

    {v clamp(mean + phi_factor * dev, min_timeout_us, max_timeout_us) v}

    The floor keeps chatty data flows (µs-scale inter-arrivals) from
    turning one scheduling hiccup into a suspicion; the cap bounds
    detection latency and is the term the deterministic recovery-bound
    tests assert against.  Until [min_samples] arrivals have been observed
    for a peer (fresh start, rejoin grace) the cap is used verbatim.

    This module is a pure state machine — no timers, no transport; the
    {!Service} drives it from heartbeat ticks and message receipt. *)

type Zeus_net.Msg.payload +=
  | Heartbeat of { epoch : int }
        (** Sent unreliably (a lost heartbeat {e is} the signal; the next
            period resends).  [epoch] is the sender's installed view epoch,
            carried for tracing and epoch-skew diagnosis. *)

type config = {
  period_us : float;       (** heartbeat period *)
  phi_factor : float;      (** deviation multiplier over the mean inter-arrival *)
  min_timeout_us : float;  (** suspicion floor (also the false-positive guard) *)
  max_timeout_us : float;  (** suspicion cap — bounds detection latency *)
  min_samples : int;       (** arrivals before the adaptive estimate is trusted *)
}

val default_config : config
(** 200 µs period, phi 4.0, 1.2 ms floor, 2.4 ms cap, 3 samples. *)

type t

val create : config -> node:Zeus_net.Msg.node_id -> nodes:int -> now:float -> t
(** Fresh detector for [node]; every peer starts in the grace state with
    [last_arrival = now]. *)

val note_arrival : t -> src:Zeus_net.Msg.node_id -> now:float -> unit
(** Record a payload received from [src] (self- and out-of-range sources
    are ignored). *)

val timeout_us : t -> peer:Zeus_net.Msg.node_id -> float
(** The suspicion timeout currently in force for [peer]. *)

val silence_us : t -> peer:Zeus_net.Msg.node_id -> now:float -> float
(** Time since the last arrival from [peer]. *)

val suspects : t -> peer:Zeus_net.Msg.node_id -> now:float -> bool
(** Whether the silence from [peer] exceeds its timeout (never suspects
    self). *)

val reset_peer : t -> peer:Zeus_net.Msg.node_id -> now:float -> unit
(** Forget the peer's history and restart its grace window (peer rejoined
    as a fresh incarnation). *)

val reset_all : t -> now:float -> unit
(** Forget everything (this node itself rejoined). *)
