type Zeus_net.Msg.payload += Heartbeat of { epoch : int }

type config = {
  period_us : float;
  phi_factor : float;
  min_timeout_us : float;
  max_timeout_us : float;
  min_samples : int;
}

let default_config =
  {
    period_us = 200.0;
    phi_factor = 4.0;
    min_timeout_us = 1_200.0;
    max_timeout_us = 2_400.0;
    min_samples = 3;
  }

type peer = {
  mutable last_arrival : float;
  mutable mean_ia : float;  (* EWMA inter-arrival *)
  mutable dev_ia : float;   (* EWMA mean absolute deviation *)
  mutable samples : int;
}

type t = { node : int; config : config; peers : peer array }

let fresh_peer config ~now =
  { last_arrival = now; mean_ia = config.period_us; dev_ia = 0.0; samples = 0 }

let create config ~node ~nodes ~now =
  { node; config; peers = Array.init nodes (fun _ -> fresh_peer config ~now) }

let note_arrival t ~src ~now =
  if src <> t.node && src >= 0 && src < Array.length t.peers then begin
    let p = t.peers.(src) in
    let ia = now -. p.last_arrival in
    if p.samples = 0 then p.mean_ia <- Float.max ia t.config.period_us
    else begin
      (* Jacobson-style smoothing, as in the transport's RTO estimator. *)
      let err = ia -. p.mean_ia in
      p.mean_ia <- p.mean_ia +. (err /. 8.0);
      p.dev_ia <- p.dev_ia +. ((Float.abs err -. p.dev_ia) /. 4.0)
    end;
    p.samples <- p.samples + 1;
    p.last_arrival <- now
  end

let timeout_us t ~peer =
  let p = t.peers.(peer) in
  if p.samples < t.config.min_samples then t.config.max_timeout_us
  else
    Float.min t.config.max_timeout_us
      (Float.max t.config.min_timeout_us
         (p.mean_ia +. (t.config.phi_factor *. p.dev_ia)))

let silence_us t ~peer ~now = now -. t.peers.(peer).last_arrival

let suspects t ~peer ~now =
  peer <> t.node && silence_us t ~peer ~now > timeout_us t ~peer

let reset_peer t ~peer ~now = t.peers.(peer) <- fresh_peer t.config ~now

let reset_all t ~now =
  Array.iteri (fun i _ -> t.peers.(i) <- fresh_peer t.config ~now) t.peers
