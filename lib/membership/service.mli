(** Lease-based reliable membership (§3.1).

    The paper relies on a ZooKeeper-with-leases scheme: failures are
    detected unreliably, but a membership update is installed across the
    deployment only after every node lease has expired, so all live nodes
    observe the same sequence of views (epochs).  We model that external
    service directly: [kill] crashes a node at the fabric level, and after
    [detect_us + lease_us] of virtual time the next view (epoch + 1) is
    delivered to every live node, with a small per-node skew so that
    epoch-mismatch handling in the protocols is actually exercised. *)

type t

val create :
  ?lease_us:float -> ?detect_us:float -> ?skew_us:float -> Zeus_net.Transport.t -> t

val view : t -> View.t
(** The service's latest installed view. *)

val node_view : t -> Zeus_net.Msg.node_id -> View.t
(** The view currently held by a given node (it may lag the service's during
    the skew window). *)

val epoch_at : t -> Zeus_net.Msg.node_id -> int

val is_live : t -> Zeus_net.Msg.node_id -> bool
(** Whether the service's latest view includes the node. *)

val stable : t -> bool
(** No reconfiguration in flight: every node the current view calls live
    has installed that view.  Online invariant monitors sample only in
    stable windows — mid-reconfiguration states are the protocols' problem,
    not a monitor false positive. *)

val subscribe : t -> Zeus_net.Msg.node_id -> (View.t -> unit) -> unit
(** Called (in subscription order) each time the node installs a new view. *)

val kill : t -> Zeus_net.Msg.node_id -> unit
(** Crash the node now; a view excluding it is installed after
    detection + lease expiry. *)

val rejoin : t -> Zeus_net.Msg.node_id -> unit
(** Revive a crashed node and install a view including it. *)
