(** Lease-based reliable membership (§3.1), in two modes.

    The paper relies on a ZooKeeper-with-leases scheme: failures are
    detected {e unreliably}, but a membership update is installed across
    the deployment only after every node lease has expired, so all live
    nodes observe the same sequence of views (epochs).

    {b [Oracle]} (default) models that external service as an omniscient
    one: [kill] crashes a node at the fabric level and, after
    [detect_us + lease_us] of virtual time, the next view (epoch + 1) is
    delivered to every live node with a small per-node skew.  Nothing is
    ever actually detected — the service is {e told}.

    {b [Detected]} puts a real unreliable detector underneath the same
    lease machinery.  Every node periodically sends small heartbeats over
    the transport's unreliable path and feeds {e every} received payload
    (heartbeat or batched protocol traffic — the per-peer flows double as
    a liveness signal) into a per-peer {!Detector}.  A node raises a
    suspicion when a peer's silence exceeds the adaptive timeout and
    retracts it when traffic resumes.  The service — still modeling the
    external ZooKeeper, reachable out-of-band — aggregates suspicions: once
    a {e quorum} (majority of the other live nodes) suspects a peer it
    starts the lease clock, and at expiry, if the quorum still stands,
    installs the node-excluding view.  A suspect that was in fact alive
    (false suspicion: one-way partition, gray node, delay spike) is
    {e fenced}: its lease died, so it is force-crashed at the fabric level
    — it observes its own eviction — and must rejoin as a fresh
    incarnation (via the fence hook, or an automatic re-register after
    [rejoin_backoff_us]).  A suspicion quorum that collapses before lease
    expiry (traffic resumed) is an {e averted} eviction: no view change,
    no fence.

    [kill] in [Detected] mode only crashes the fabric; reconfiguration
    happens iff the peers detect the silence end-to-end.  [rejoin] stays
    an announcement in both modes — re-registering with ZooKeeper is an
    explicit session creation, not something detected.

    Counters (registered on the telemetry hub, prefix ["membership."]):
    heartbeats sent, suspicions raised/retracted, false suspicions,
    fences, evictions averted, views installed; each detection-phase
    transition also emits a zero-length ["membership"] trace instant. *)

type mode = Oracle | Detected

type detection = {
  detector : Detector.config;
  rejoin_backoff_us : float;
      (** how long a fenced (falsely-suspected-but-alive) node waits
          before automatically re-registering, when no fence hook is
          installed *)
}

val default_detection : detection

(** Detection-side observability (all zero in [Oracle] mode). *)
type det_stats = {
  heartbeats : int;        (** heartbeat frames handed to the fabric *)
  suspicions : int;        (** reporter->suspect transitions raised *)
  retractions : int;       (** suspicions withdrawn after traffic resumed *)
  false_suspicions : int;  (** evictions of nodes that were in fact alive *)
  fences : int;            (** force-crashes of falsely-suspected nodes *)
  evictions_averted : int; (** lease expiries where the quorum had collapsed *)
  views_installed : int;   (** views installed (both modes) *)
}

type t

val create :
  ?lease_us:float ->
  ?detect_us:float ->
  ?skew_us:float ->
  ?mode:mode ->
  ?detection:detection ->
  ?telemetry:Zeus_telemetry.Hub.t ->
  Zeus_net.Transport.t ->
  t
(** In [Detected] mode this installs a default transport handler per node
    (so a standalone service detects on its own); {!Zeus_core.Node}
    replaces those handlers and routes payloads through {!observe}
    instead. *)

val mode : t -> mode
val detection : t -> detection

val view : t -> View.t
(** The service's latest installed view. *)

val node_view : t -> Zeus_net.Msg.node_id -> View.t
(** The view currently held by a given node (it may lag the service's during
    the skew window). *)

val epoch_at : t -> Zeus_net.Msg.node_id -> int

val is_live : t -> Zeus_net.Msg.node_id -> bool
(** Whether the service's latest view includes the node. *)

val stable : t -> bool
(** No reconfiguration in flight: every node the current view calls live
    has installed that view.  Online invariant monitors sample only in
    stable windows — mid-reconfiguration states are the protocols' problem,
    not a monitor false positive. *)

val subscribe : t -> Zeus_net.Msg.node_id -> (View.t -> unit) -> unit
(** Called (in subscription order) each time the node installs a new view.
    Stored reversed and normalized at install time, so subscribing is O(1)
    however many subscribers a node accumulates. *)

val kill : t -> Zeus_net.Msg.node_id -> unit
(** Crash the node now.  [Oracle]: a view excluding it is installed after
    detection + lease expiry.  [Detected]: fabric-level crash only — the
    view changes iff the surviving nodes detect the silence. *)

val rejoin : t -> Zeus_net.Msg.node_id -> unit
(** Revive a crashed node and install a view including it (an explicit
    re-registration in both modes).  In [Detected] mode, re-registering a
    node the current view still calls live first installs the excluding
    view: the re-registration proves the old incarnation's session died
    (crash + restart inside the detection window), and peers must observe
    the incarnation boundary to recover its lost state. *)

(** {2 Detected-mode surface} (no-ops / [false] in [Oracle] mode) *)

val observe : t -> dst:Zeus_net.Msg.node_id -> src:Zeus_net.Msg.node_id ->
  Zeus_net.Msg.payload -> bool
(** Feed a received payload into [dst]'s detector; returns [true] iff the
    payload was a membership heartbeat (consumed — do not dispatch it to
    the protocol agents).  Node receive handlers call this first. *)

val suspected : t -> by:Zeus_net.Msg.node_id -> Zeus_net.Msg.node_id -> bool
(** Whether [by] currently reports the node as suspected. *)

val det_stats : t -> det_stats

val detection_bound_us : t -> float
(** Worst-case crash-to-view-installed latency the detector configuration
    guarantees: one heartbeat period of arrival slack, one period of
    suspicion-check granularity, the suspicion-timeout cap, the lease, and
    the install skew.  Deterministic recovery tests assert against this. *)

val set_fence_hook : t -> (Zeus_net.Msg.node_id -> unit) -> unit
(** Called after a falsely-suspected-but-alive node has been fenced
    (force-crashed) and the excluding view installed.  The hook owns the
    node's rejoin (e.g. {!Zeus_core.Cluster} resets the node's protocol
    state and re-registers it); without a hook the service re-registers
    the fenced node itself after [rejoin_backoff_us]. *)

val suspend : t -> unit
(** Cancel the standing heartbeat/suspicion timers so the engine can
    drain ({!Zeus_core.Cluster.run_quiesce} calls this); {!resume}
    re-arms them. *)

val resume : t -> unit
