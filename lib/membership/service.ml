module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng
module Metrics = Zeus_telemetry.Metrics
module Trace = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport

type mode = Oracle | Detected

type detection = { detector : Detector.config; rejoin_backoff_us : float }

let default_detection =
  { detector = Detector.default_config; rejoin_backoff_us = 1_500.0 }

type det_stats = {
  heartbeats : int;
  suspicions : int;
  retractions : int;
  false_suspicions : int;
  fences : int;
  evictions_averted : int;
  views_installed : int;
}

type counters = {
  c_heartbeats : Metrics.Counter.h;
  c_suspicions : Metrics.Counter.h;
  c_retractions : Metrics.Counter.h;
  c_false : Metrics.Counter.h;
  c_fences : Metrics.Counter.h;
  c_averted : Metrics.Counter.h;
  c_views : Metrics.Counter.h;
}

type t = {
  transport : Transport.t;
  lease_us : float;
  detect_us : float;
  skew_us : float;
  rng : Rng.t;
  mode : mode;
  detection : detection;
  mutable view : View.t;
  node_views : View.t array;
  subscribers : (View.t -> unit) list array;  (* reversed: newest first *)
  (* --- Detected-mode state (empty arrays in Oracle mode) --- *)
  detectors : Detector.t array;
  suspected_by : bool array array;  (* suspected_by.(suspect).(reporter) *)
  evicting : bool array;            (* lease clock running for this suspect *)
  tick_events : Engine.event_id option array;
  mutable suspended : bool;
  mutable fence_hook : (int -> unit) option;
  counters : counters;
  trace : Trace.t;
}

let fabric t = Transport.fabric t.transport
let engine t = Fabric.engine (fabric t)

let mode t = t.mode
let detection t = t.detection
let view t = t.view
let node_view t n = t.node_views.(n)
let epoch_at t n = t.node_views.(n).View.epoch
let is_live t n = View.is_live t.view n

let stable t =
  (* Every node the service believes live holds the current epoch: no view
     install is in flight (skew window) and no kill/rejoin is pending. *)
  let ok = ref true in
  Array.iteri
    (fun n v ->
      if View.is_live t.view n && v.View.epoch <> t.view.View.epoch then ok := false)
    t.node_views;
  !ok

let subscribe t n fn = t.subscribers.(n) <- fn :: t.subscribers.(n)

let instant t name =
  if Trace.enabled t.trace then begin
    let now = Engine.now (engine t) in
    Trace.complete t.trace ~cat:"membership" ~pid:0 ~start:now ~stop:now name
  end

let install t next =
  t.view <- next;
  Metrics.Counter.incr t.counters.c_views;
  instant t (Printf.sprintf "view(%d)" next.View.epoch);
  Array.iteri
    (fun node _ ->
      if View.is_live next node then begin
        let skew = Rng.float t.rng t.skew_us in
        ignore
          (Engine.schedule (engine t) ~after:skew (fun () ->
               (* A node may have crashed between scheduling and delivery. *)
               if
                 Fabric.is_alive (fabric t) node
                 && next.View.epoch > t.node_views.(node).View.epoch
               then begin
                 t.node_views.(node) <- next;
                 (* Subscribers are stored reversed (newest first) so that
                    [subscribe] is O(1); normalize to subscription order
                    once per install. *)
                 List.iter (fun fn -> fn next) (List.rev t.subscribers.(node))
               end))
      end)
    t.node_views

(* ---------- suspicion aggregation (Detected mode) ------------------------ *)

(* Quorum: a majority of the current view's live nodes other than the
   suspect itself.  Recomputed against the view both when the quorum forms
   and at lease expiry, so evictions and rejoins compose. *)
let quorum_held t suspect =
  View.is_live t.view suspect
  &&
  let others = List.filter (fun n -> n <> suspect) (View.live_list t.view) in
  let need = (List.length others / 2) + 1 in
  let have = List.length (List.filter (fun r -> t.suspected_by.(suspect).(r)) others) in
  need > 0 && have >= need

let clear_suspicions_of t node =
  Array.iteri (fun r _ -> t.suspected_by.(node).(r) <- false) t.suspected_by.(node)

let do_rejoin t node =
  Transport.recover t.transport node;
  if t.mode = Detected then begin
    let now = Engine.now (engine t) in
    (* Fresh incarnation: its old suspicions (as reporter) and the
       suspicions of it (as suspect) are void, and every detector grants
       it a new grace window. *)
    clear_suspicions_of t node;
    Array.iter (fun row -> row.(node) <- false) t.suspected_by;
    Array.iteri
      (fun i d ->
        if i = node then Detector.reset_all d ~now else Detector.reset_peer d ~peer:node ~now)
      t.detectors;
    (* Re-registration of a node the view still calls live: the old
       incarnation crashed and returned inside the detection window, so no
       peer ever suspected it — but its session is dead all the same (a new
       registration proves it).  Evict the old incarnation first, or the
       peers would never learn that its state is gone and recovery for its
       replicas would never run.  (Oracle mode needs no such fence: [kill]
       already scheduled the eviction by fiat.) *)
    if View.is_live t.view node then install t (View.without t.view node)
  end;
  ignore
    (Engine.schedule (engine t) ~after:t.detect_us (fun () ->
         if not (View.is_live t.view node) then install t (View.with_node t.view node)))

let lease_expired t suspect =
  t.evicting.(suspect) <- false;
  if quorum_held t suspect then begin
    let was_alive = Fabric.is_alive (fabric t) suspect in
    if was_alive then begin
      (* False suspicion: the suspect is alive but its lease is gone.  It
         is fenced out — force-crashed at the fabric level, which is how
         it observes its own eviction — and must rejoin as a fresh
         incarnation. *)
      Metrics.Counter.incr t.counters.c_false;
      Metrics.Counter.incr t.counters.c_fences;
      instant t (Printf.sprintf "fence(%d)" suspect);
      Transport.crash t.transport suspect
    end;
    install t (View.without t.view suspect);
    clear_suspicions_of t suspect;
    if was_alive then begin
      match t.fence_hook with
      | Some hook -> hook suspect
      | None ->
        ignore
          (Engine.schedule (engine t) ~after:t.detection.rejoin_backoff_us (fun () ->
               if not (Fabric.is_alive (fabric t) suspect) then do_rejoin t suspect))
    end
  end
  else if View.is_live t.view suspect then begin
    (* Traffic resumed and the quorum collapsed before the lease ran out:
       the false suspicion cost nothing. *)
    Metrics.Counter.incr t.counters.c_averted;
    instant t (Printf.sprintf "averted(%d)" suspect)
  end

let maybe_evict t suspect =
  if (not t.evicting.(suspect)) && quorum_held t suspect then begin
    t.evicting.(suspect) <- true;
    instant t (Printf.sprintf "lease_wait(%d)" suspect);
    ignore (Engine.schedule (engine t) ~after:t.lease_us (fun () -> lease_expired t suspect))
  end

let report t ~reporter ~suspect =
  t.suspected_by.(suspect).(reporter) <- true;
  Metrics.Counter.incr t.counters.c_suspicions;
  instant t (Printf.sprintf "suspect(%d->%d)" reporter suspect)

let retract t ~reporter ~suspect =
  t.suspected_by.(suspect).(reporter) <- false;
  Metrics.Counter.incr t.counters.c_retractions;
  instant t (Printf.sprintf "retract(%d->%d)" reporter suspect)

(* ---------- heartbeat / suspicion tick (Detected mode) -------------------- *)

let rec arm_tick t n ~after =
  t.tick_events.(n) <- Some (Engine.schedule (engine t) ~after (fun () -> tick t n))

and tick t n =
  t.tick_events.(n) <- None;
  if not t.suspended then begin
    let d = t.detection.detector in
    if Fabric.is_alive (fabric t) n then begin
      let myview = t.node_views.(n) in
      let now = Engine.now (engine t) in
      List.iter
        (fun peer ->
          if peer <> n then begin
            (* Unreliable on purpose: a lost heartbeat IS the signal, and
               the next period resends; retransmitting into a dead node
               would only mask the silence.  Batched protocol flows carry
               the same signal implicitly via [observe]. *)
            Transport.send_unreliable t.transport ~src:n ~dst:peer ~size:16
              (Detector.Heartbeat { epoch = myview.View.epoch });
            Metrics.Counter.incr t.counters.c_heartbeats
          end)
        (View.live_list myview);
      List.iter
        (fun peer ->
          (* Judge only peers the service still calls live: during the
             install-skew window this node's own view may lag and re-raise
             a suspicion of a node already evicted — it could never form a
             quorum ([quorum_held] checks the service view) but would stand
             unretracted and pollute the counters. *)
          if peer <> n && View.is_live t.view peer then begin
            let sus = Detector.suspects t.detectors.(n) ~peer ~now in
            if sus && not t.suspected_by.(peer).(n) then report t ~reporter:n ~suspect:peer
            else if (not sus) && t.suspected_by.(peer).(n) then
              retract t ~reporter:n ~suspect:peer;
            (* Re-check standing suspicions every period so an eviction
               deferred by a transiently broken quorum is retried. *)
            if sus then maybe_evict t peer
          end)
        (View.live_list myview)
    end;
    arm_tick t n ~after:d.period_us
  end

(* ---------- public surface ------------------------------------------------ *)

let observe t ~dst ~src payload =
  match t.mode with
  | Oracle -> (match payload with Detector.Heartbeat _ -> true | _ -> false)
  | Detected ->
    if Fabric.is_alive (fabric t) dst then
      Detector.note_arrival t.detectors.(dst) ~src ~now:(Engine.now (engine t));
    (match payload with Detector.Heartbeat _ -> true | _ -> false)

let suspected t ~by node = t.mode = Detected && t.suspected_by.(node).(by)

let det_stats t =
  {
    heartbeats = Metrics.Counter.get t.counters.c_heartbeats;
    suspicions = Metrics.Counter.get t.counters.c_suspicions;
    retractions = Metrics.Counter.get t.counters.c_retractions;
    false_suspicions = Metrics.Counter.get t.counters.c_false;
    fences = Metrics.Counter.get t.counters.c_fences;
    evictions_averted = Metrics.Counter.get t.counters.c_averted;
    views_installed = Metrics.Counter.get t.counters.c_views;
  }

let detection_bound_us t =
  let d = t.detection.detector in
  (* One period of arrival slack (the last heartbeat may land just after
     the crash instant), the timeout cap, one period of suspicion-check
     granularity, the lease, and the install skew. *)
  (2.0 *. d.Detector.period_us) +. d.Detector.max_timeout_us +. t.lease_us +. t.skew_us

let set_fence_hook t hook = t.fence_hook <- Some hook

let suspend t =
  if t.mode = Detected && not t.suspended then begin
    t.suspended <- true;
    Array.iteri
      (fun i ev ->
        Option.iter (Engine.cancel (engine t)) ev;
        t.tick_events.(i) <- None)
      t.tick_events
  end

let stagger d n = d.Detector.period_us *. (0.25 +. (0.5 *. float_of_int (n + 1)))

let resume t =
  if t.mode = Detected && t.suspended then begin
    t.suspended <- false;
    Array.iteri (fun n _ -> arm_tick t n ~after:(stagger t.detection.detector n))
      t.tick_events
  end

let kill t node =
  Transport.crash t.transport node;
  match t.mode with
  | Detected ->
    (* No oracle: the view changes iff the peers detect the silence. *)
    ()
  | Oracle ->
    ignore
      (Engine.schedule (engine t) ~after:(t.detect_us +. t.lease_us) (fun () ->
           (* Derive from the view current at expiry so concurrent kills and
              rejoins compose into a single monotone epoch sequence. *)
           if View.is_live t.view node then install t (View.without t.view node)))

let rejoin t node = do_rejoin t node

let create ?(lease_us = 2_000.0) ?(detect_us = 1_000.0) ?(skew_us = 5.0)
    ?(mode = Oracle) ?(detection = default_detection) ?telemetry transport =
  let fabric = Transport.fabric transport in
  let nodes = Fabric.nodes fabric in
  let view = View.initial ~nodes in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let m = Hub.metrics hub in
  let detected = mode = Detected in
  let now = Engine.now (Fabric.engine fabric) in
  let t =
    {
      transport;
      lease_us;
      detect_us;
      skew_us;
      rng = Engine.fork_rng (Fabric.engine fabric);
      mode;
      detection;
      view;
      node_views = Array.make nodes view;
      subscribers = Array.make nodes [];
      detectors =
        (if detected then
           Array.init nodes (fun n -> Detector.create detection.detector ~node:n ~nodes ~now)
         else [||]);
      suspected_by =
        (if detected then Array.init nodes (fun _ -> Array.make nodes false) else [||]);
      evicting = (if detected then Array.make nodes false else [||]);
      tick_events = (if detected then Array.make nodes None else [||]);
      suspended = false;
      fence_hook = None;
      counters =
        {
          c_heartbeats = Metrics.Counter.v m "membership.heartbeats_sent";
          c_suspicions = Metrics.Counter.v m "membership.suspicions";
          c_retractions = Metrics.Counter.v m "membership.retractions";
          c_false = Metrics.Counter.v m "membership.false_suspicions";
          c_fences = Metrics.Counter.v m "membership.fences";
          c_averted = Metrics.Counter.v m "membership.evictions_averted";
          c_views = Metrics.Counter.v m "membership.views_installed";
        };
      trace = Hub.trace hub;
    }
  in
  if detected then begin
    for n = 0 to nodes - 1 do
      (* Standalone default: consume heartbeats and feed the detector.
         Zeus_core.Node replaces this handler with the full protocol
         dispatch chain, which calls [observe] first. *)
      Transport.set_handler transport n (fun ~src payload ->
          ignore (observe t ~dst:n ~src payload));
      arm_tick t n ~after:(stagger detection.detector n)
    done
  end;
  t
