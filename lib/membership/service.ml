module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng

type t = {
  transport : Zeus_net.Transport.t;
  lease_us : float;
  detect_us : float;
  skew_us : float;
  rng : Rng.t;
  mutable view : View.t;
  node_views : View.t array;
  subscribers : (View.t -> unit) list array;
}

let create ?(lease_us = 2_000.0) ?(detect_us = 1_000.0) ?(skew_us = 5.0) transport =
  let fabric = Zeus_net.Transport.fabric transport in
  let nodes = Zeus_net.Fabric.nodes fabric in
  let view = View.initial ~nodes in
  {
    transport;
    lease_us;
    detect_us;
    skew_us;
    rng = Engine.fork_rng (Zeus_net.Fabric.engine fabric);
    view;
    node_views = Array.make nodes view;
    subscribers = Array.make nodes [];
  }

let view t = t.view
let node_view t n = t.node_views.(n)
let epoch_at t n = t.node_views.(n).View.epoch
let is_live t n = View.is_live t.view n

let stable t =
  (* Every node the service believes live holds the current epoch: no view
     install is in flight (skew window) and no kill/rejoin is pending. *)
  let ok = ref true in
  Array.iteri
    (fun n v ->
      if View.is_live t.view n && v.View.epoch <> t.view.View.epoch then ok := false)
    t.node_views;
  !ok

let subscribe t n fn = t.subscribers.(n) <- t.subscribers.(n) @ [ fn ]

let engine t = Zeus_net.Fabric.engine (Zeus_net.Transport.fabric t.transport)

let install t next =
  t.view <- next;
  Array.iteri
    (fun node _ ->
      if View.is_live next node then begin
        let skew = Rng.float t.rng t.skew_us in
        ignore
          (Engine.schedule (engine t) ~after:skew (fun () ->
               (* A node may have crashed between scheduling and delivery. *)
               if
                 Zeus_net.Fabric.is_alive (Zeus_net.Transport.fabric t.transport) node
                 && next.View.epoch > t.node_views.(node).View.epoch
               then begin
                 t.node_views.(node) <- next;
                 List.iter (fun fn -> fn next) t.subscribers.(node)
               end))
      end)
    t.node_views

let kill t node =
  Zeus_net.Transport.crash t.transport node;
  ignore
    (Engine.schedule (engine t) ~after:(t.detect_us +. t.lease_us) (fun () ->
         (* Derive from the view current at expiry so concurrent kills and
            rejoins compose into a single monotone epoch sequence. *)
         if View.is_live t.view node then install t (View.without t.view node)))

let rejoin t node =
  Zeus_net.Transport.recover t.transport node;
  ignore
    (Engine.schedule (engine t) ~after:t.detect_us (fun () ->
         if not (View.is_live t.view node) then install t (View.with_node t.view node)))
