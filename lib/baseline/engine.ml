module Sim = Zeus_sim.Engine
module Resource = Zeus_sim.Resource
module Rng = Zeus_sim.Rng
module Metrics = Zeus_telemetry.Metrics
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module Config = Zeus_core.Config
module Spec = Zeus_workload.Spec

type txn_ref = { coord : int; seq : int }

type Zeus_net.Msg.payload +=
  | B_read of { txn : txn_ref; keys : int list; one_sided : bool }
  | B_read_rep of { txn : txn_ref; versions : (int * int) list }
  | B_lock of { txn : txn_ref; entries : (int * int) list }  (* key, expected ver *)
  | B_lock_rep of { txn : txn_ref; ok : bool }
  | B_validate of { txn : txn_ref; entries : (int * int) list }
  | B_validate_rep of { txn : txn_ref; ok : bool }
  | B_log of { txn : txn_ref; keys : int list; bytes : int }
  | B_log_rep of { txn : txn_ref }
  | B_ping of { txn : txn_ref }  (* profile extra commit rounds *)
  | B_ping_rep of { txn : txn_ref }
  | B_commit of { txn : txn_ref; keys : int list }
  | B_commit_rep of { txn : txn_ref }
  | B_abort of { txn : txn_ref; keys : int list }

type entry = { mutable version : int; mutable locked_by : txn_ref option }

type txn_state = {
  tref : txn_ref;
  spec : Spec.t;
  mutable awaiting : int;
  mutable phase_ok : bool;
  mutable versions : (int * int) list;
  mutable locked : (int * int list) list;  (* primary node, keys locked there *)
  mutable on_phase_done : bool -> unit;
  mutable attempt : int;
  k : bool -> unit;
}

type node = {
  id : int;
  ds : Resource.t;
  app : Resource.t;
  locks : (int, entry) Hashtbl.t;
  mutable txn_seq : int;
  txns : (int, txn_state) Hashtbl.t;
}

type t = {
  engine : Sim.t;
  transport : Transport.t;
  config : Config.t;
  profile : Profile.t;
  primary_of : int -> int;
  nodes : node array;
  rng : Rng.t;
  metrics : Metrics.t;
  c_committed : Metrics.Counter.h;
  c_aborted : Metrics.Counter.h;
  c_retries : Metrics.Counter.h;
}

let engine t = t.engine
let profile t = t.profile
let metrics t = t.metrics
let committed t = Metrics.Counter.get t.c_committed
let aborted t = Metrics.Counter.get t.c_aborted

let entry_of t node key =
  match Hashtbl.find_opt t.nodes.(node).locks key with
  | Some e -> e
  | None ->
    let e = { version = 1; locked_by = None } in
    Hashtbl.replace t.nodes.(node).locks key e;
    e

let backups t key =
  let p = t.primary_of key in
  List.init
    (min (t.config.Config.replication_degree - 1) (t.config.Config.nodes - 1))
    (fun i -> (p + i + 1) mod t.config.Config.nodes)

let group_by_primary t keys =
  List.fold_left
    (fun acc key ->
      let p = t.primary_of key in
      match List.assoc_opt p acc with
      | Some l ->
        l := key :: !l;
        acc
      | None -> (p, ref [ key ]) :: acc)
    [] keys
  |> List.map (fun (p, l) -> (p, !l))

let send t ~src ~dst ?size payload = Transport.send t.transport ~src ~dst ?size payload

(* ---------- primary-side handlers ----------------------------------------- *)

let handle_read t ~node ~src (txn : txn_ref) keys =
  let versions = List.map (fun key -> (key, (entry_of t node key).version)) keys in
  send t ~src:node ~dst:src ~size:(16 + (16 * List.length versions)) (B_read_rep { txn; versions })

let try_lock t ~node (txn : txn_ref) entries =
  let ok =
    List.for_all
      (fun (key, expected) ->
        let e = entry_of t node key in
        (e.locked_by = None || e.locked_by = Some txn) && e.version = expected)
      entries
  in
  if ok then
    List.iter (fun (key, _) -> (entry_of t node key).locked_by <- Some txn) entries;
  ok

let validate_ok t ~node (txn : txn_ref) entries =
  List.for_all
    (fun (key, expected) ->
      let e = entry_of t node key in
      e.version = expected && (e.locked_by = None || e.locked_by = Some txn))
    entries

let apply_commit t ~node (txn : txn_ref) keys =
  List.iter
    (fun key ->
      let e = entry_of t node key in
      if e.locked_by = Some txn then begin
        e.version <- e.version + 1;
        e.locked_by <- None
      end)
    keys

let release_locks t ~node (txn : txn_ref) keys =
  List.iter
    (fun key ->
      let e = entry_of t node key in
      if e.locked_by = Some txn then e.locked_by <- None)
    keys

(* ---------- coordinator ---------------------------------------------------- *)

let phase_reply t (txn : txn_ref) ~ok =
  let coord = t.nodes.(txn.coord) in
  match Hashtbl.find_opt coord.txns txn.seq with
  | None -> ()
  | Some st ->
    if not ok then st.phase_ok <- false;
    st.awaiting <- st.awaiting - 1;
    if st.awaiting = 0 then st.on_phase_done st.phase_ok

let record_versions t (txn : txn_ref) versions =
  let coord = t.nodes.(txn.coord) in
  match Hashtbl.find_opt coord.txns txn.seq with
  | None -> ()
  | Some st -> st.versions <- versions @ st.versions

(* Run one phase: [local] performs the local part immediately and returns
   its success; [groups] are (dst, sender) pairs where sender dispatches the
   message.  [done_] is called once every reply (plus the local part) is in. *)
let run_phase _t st ~locals ~remotes ~done_ =
  st.awaiting <- List.length remotes + 1;
  st.phase_ok <- true;
  st.on_phase_done <- done_;
  List.iter (fun send_fn -> send_fn ()) remotes;
  let local_ok = List.for_all (fun f -> f ()) locals in
  if not local_ok then st.phase_ok <- false;
  st.awaiting <- st.awaiting - 1;
  if st.awaiting = 0 then st.on_phase_done st.phase_ok

let finish t st ~ok =
  let coord = t.nodes.(st.tref.coord) in
  Hashtbl.remove coord.txns st.tref.seq;
  Metrics.Counter.incr (if ok then t.c_committed else t.c_aborted);
  st.k ok

let backoff t attempt =
  let d =
    t.config.Config.backoff_base_us *. (2.0 ** float_of_int (min attempt 10))
  in
  Float.min d t.config.Config.backoff_max_us *. (0.5 +. Rng.float t.rng 1.0)

let rec attempt_txn t ~home ~spec ~attempt k =
  let coord = t.nodes.(home) in
  let seq = coord.txn_seq in
  coord.txn_seq <- seq + 1;
  let tref = { coord = home; seq } in
  let st =
    {
      tref;
      spec;
      awaiting = 0;
      phase_ok = true;
      versions = [];
      locked = [];
      on_phase_done = (fun _ -> ());
      attempt;
      k;
    }
  in
  Hashtbl.replace coord.txns seq st;
  (* Execution (read) phase after the transaction logic's compute time. *)
  Resource.submit coord.app
    ~service:(spec.Spec.exec_us *. t.profile.Profile.exec_scale)
    (fun () -> read_phase t st)

and retry t st =
  let home = st.tref.coord in
  (* Release any locks we hold. *)
  List.iter
    (fun (node, keys) ->
      if node = home then release_locks t ~node st.tref keys
      else send t ~src:home ~dst:node ~size:48 (B_abort { txn = st.tref; keys }))
    st.locked;
  Hashtbl.remove t.nodes.(home).txns st.tref.seq;
  Metrics.Counter.incr t.c_retries;
  if st.attempt >= t.config.Config.max_retries then begin
    Metrics.Counter.incr t.c_aborted;
    st.k false
  end
  else
    ignore
      (Sim.schedule t.engine ~after:(backoff t st.attempt) (fun () ->
           attempt_txn t ~home ~spec:st.spec ~attempt:(st.attempt + 1) st.k))

and read_phase t st =
  let home = st.tref.coord in
  let keys = st.spec.Spec.reads @ st.spec.Spec.writes in
  let groups = group_by_primary t keys in
  let locals, remote_groups = List.partition (fun (p, _) -> p = home) groups in
  let locals =
    List.map
      (fun (_, keys) () ->
        st.versions <-
          List.map (fun key -> (key, (entry_of t home key).version)) keys @ st.versions;
        true)
      locals
  in
  let remotes =
    List.map
      (fun (p, keys) () ->
        send t ~src:home ~dst:p
          ~size:(32 + (8 * List.length keys))
          (B_read { txn = st.tref; keys; one_sided = t.profile.Profile.one_sided_reads }))
      remote_groups
  in
  run_phase t st ~locals ~remotes ~done_:(fun ok ->
      if not ok then retry t st else lock_validate_phase t st)

and lock_validate_phase t st =
  if st.spec.Spec.read_only then validate_phase t st ~after:(fun ok ->
      if ok then finish t st ~ok:true else retry t st)
  else begin
    let home = st.tref.coord in
    let wgroups = group_by_primary t st.spec.Spec.writes in
    st.locked <- wgroups;
    let entries_of keys =
      List.map (fun key -> (key, List.assoc key st.versions)) keys
    in
    let locals, remote_groups = List.partition (fun (p, _) -> p = home) wgroups in
    let locals =
      List.map (fun (_, keys) () -> try_lock t ~node:home st.tref (entries_of keys)) locals
    in
    let remotes =
      List.map
        (fun (p, keys) () ->
          send t ~src:home ~dst:p
            ~size:(32 + (16 * List.length keys))
            (B_lock { txn = st.tref; entries = entries_of keys }))
        remote_groups
    in
    let after_locks ok =
      if not ok then retry t st
      else if t.profile.Profile.combined_lock_validate then log_phase t st
      else validate_phase t st ~after:(fun ok -> if ok then log_phase t st else retry t st)
    in
    if t.profile.Profile.combined_lock_validate then begin
      (* FaSST: validation of read keys rides the same round. *)
      let vgroups = group_by_primary t st.spec.Spec.reads in
      let vlocals, vremotes = List.partition (fun (p, _) -> p = home) vgroups in
      let locals =
        locals
        @ List.map
            (fun (_, keys) () -> validate_ok t ~node:home st.tref (entries_of keys))
            vlocals
      in
      let remotes =
        remotes
        @ List.map
            (fun (p, keys) () ->
              send t ~src:home ~dst:p
                ~size:(32 + (16 * List.length keys))
                (B_validate { txn = st.tref; entries = entries_of keys }))
            vremotes
      in
      run_phase t st ~locals ~remotes ~done_:(fun ok ->
          if ok then log_phase t st else retry t st)
    end
    else run_phase t st ~locals ~remotes ~done_:after_locks
  end

and validate_phase t st ~after =
  let home = st.tref.coord in
  let keys =
    if st.spec.Spec.read_only then st.spec.Spec.reads
    else st.spec.Spec.reads @ st.spec.Spec.writes
  in
  if st.spec.Spec.read_only && List.length keys <= 1 then after true
  else begin
    let entries_of keys = List.map (fun key -> (key, List.assoc key st.versions)) keys in
    let groups = group_by_primary t keys in
    let locals, remote_groups = List.partition (fun (p, _) -> p = home) groups in
    let locals =
      List.map (fun (_, ks) () -> validate_ok t ~node:home st.tref (entries_of ks)) locals
    in
    let remotes =
      List.map
        (fun (p, ks) () ->
          send t ~src:home ~dst:p
            ~size:(32 + (16 * List.length ks))
            (B_validate { txn = st.tref; entries = entries_of ks }))
        remote_groups
    in
    run_phase t st ~locals ~remotes ~done_:after
  end

and log_phase t st =
  let home = st.tref.coord in
  (* One log record per backup node covering its keys. *)
  let by_backup = Hashtbl.create 4 in
  List.iter
    (fun key ->
      List.iter
        (fun b ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_backup b) in
          Hashtbl.replace by_backup b (key :: cur))
        (backups t key))
    st.spec.Spec.writes;
  let remotes =
    Hashtbl.fold
      (fun b keys acc ->
        if b = home then acc
        else
          (fun () ->
            send t ~src:home ~dst:b
              ~size:(64 + (st.spec.Spec.payload * List.length keys))
              (B_log { txn = st.tref; keys; bytes = st.spec.Spec.payload }))
          :: acc)
      by_backup []
  in
  run_phase t st ~locals:[] ~remotes ~done_:(fun ok ->
      if not ok then retry t st else extra_phase t st t.profile.Profile.commit_extra_rtts)

and extra_phase t st n =
  if n <= 0 then commit_phase t st
  else begin
    let home = st.tref.coord in
    let peers =
      List.filter (fun (p, _) -> p <> home) (group_by_primary t st.spec.Spec.writes)
    in
    let remotes =
      List.map
        (fun (p, _) () -> send t ~src:home ~dst:p ~size:32 (B_ping { txn = st.tref }))
        peers
    in
    run_phase t st ~locals:[] ~remotes ~done_:(fun _ -> extra_phase t st (n - 1))
  end

and commit_phase t st =
  let home = st.tref.coord in
  let groups = group_by_primary t st.spec.Spec.writes in
  let locals, remote_groups = List.partition (fun (p, _) -> p = home) groups in
  let locals =
    List.map
      (fun (_, keys) () ->
        apply_commit t ~node:home st.tref keys;
        true)
      locals
  in
  let remotes =
    List.map
      (fun (p, keys) () ->
        send t ~src:home ~dst:p
          ~size:(32 + (8 * List.length keys))
          (B_commit { txn = st.tref; keys }))
      remote_groups
  in
  run_phase t st ~locals ~remotes ~done_:(fun _ -> finish t st ~ok:true)

(* ---------- dispatch ------------------------------------------------------- *)

let handle t ~node ~src payload =
  match payload with
  | B_read { txn; keys; one_sided = _ } -> handle_read t ~node ~src txn keys
  | B_read_rep { txn; versions } ->
    record_versions t txn versions;
    phase_reply t txn ~ok:true
  | B_lock { txn; entries } ->
    let ok = try_lock t ~node txn entries in
    send t ~src:node ~dst:src ~size:32 (B_lock_rep { txn; ok })
  | B_lock_rep { txn; ok } -> phase_reply t txn ~ok
  | B_validate { txn; entries } ->
    let ok = validate_ok t ~node txn entries in
    send t ~src:node ~dst:src ~size:32 (B_validate_rep { txn; ok })
  | B_validate_rep { txn; ok } -> phase_reply t txn ~ok
  | B_log { txn; keys = _; bytes = _ } ->
    send t ~src:node ~dst:src ~size:32 (B_log_rep { txn })
  | B_log_rep { txn } -> phase_reply t txn ~ok:true
  | B_ping { txn } -> send t ~src:node ~dst:src ~size:32 (B_ping_rep { txn })
  | B_ping_rep { txn } -> phase_reply t txn ~ok:true
  | B_commit { txn; keys } ->
    apply_commit t ~node txn keys;
    send t ~src:node ~dst:src ~size:32 (B_commit_rep { txn })
  | B_commit_rep { txn } -> phase_reply t txn ~ok:true
  | B_abort { txn; keys } -> release_locks t ~node txn keys
  | _ -> ()

let payload_cost t payload =
  let c = t.config.Config.msg_proc_us *. t.profile.Profile.msg_scale in
  match payload with
  | B_read { one_sided = true; _ } ->
    (* RDMA one-sided read: the remote CPU is not involved; the NIC serves
       it.  Model a token DMA cost. *)
    0.02
  | B_read { keys; _ } ->
    c +. (t.profile.Profile.read_handler_us *. float_of_int (List.length keys))
  | B_read_rep { versions; _ } ->
    c +. (t.profile.Profile.read_finish_us *. float_of_int (List.length versions))
  | B_log { keys; bytes; _ } ->
    c +. (float_of_int (bytes * List.length keys) *. t.config.Config.byte_proc_us)
  | _ -> c

let create ?(profile = Profile.fasst) ?(config = Config.default) ~primary_of () =
  let engine = Sim.create ~seed:config.Config.seed () in
  let fabric = Fabric.create engine ~nodes:config.Config.nodes config.Config.fabric in
  let transport = Transport.create ~config:config.Config.transport fabric in
  let nodes =
    Array.init config.Config.nodes (fun id ->
        {
          id;
          ds = Resource.create engine ~servers:config.Config.ds_threads;
          app = Resource.create engine ~servers:config.Config.app_threads;
          locks = Hashtbl.create 4096;
          txn_seq = 0;
          txns = Hashtbl.create 256;
        })
  in
  let metrics = Metrics.create () in
  let t =
    {
      engine;
      transport;
      config;
      profile;
      primary_of;
      nodes;
      rng = Sim.fork_rng engine;
      metrics;
      c_committed = Metrics.Counter.v metrics "baseline.committed";
      c_aborted = Metrics.Counter.v metrics "baseline.aborted";
      c_retries = Metrics.Counter.v metrics "baseline.retries";
    }
  in
  Array.iter
    (fun node ->
      Transport.set_handler transport node.id (fun ~src payload ->
          Resource.submit node.ds ~service:(payload_cost t payload) (fun () ->
              handle t ~node:node.id ~src payload)))
    nodes;
  t

let submit t ~home spec k = attempt_txn t ~home ~spec ~attempt:0 k

let run_load t ?coroutines ~warmup_us ~duration_us ~gen () =
  let coroutines =
    Option.value coroutines ~default:(16 * t.config.Config.app_threads)
  in
  let t0 = Sim.now t.engine in
  let start = t0 +. warmup_us in
  let stop = start +. duration_us in
  let committed = ref 0 and aborted = ref 0 in
  let latencies = Zeus_sim.Stats.Samples.create ~cap:50_000 (Sim.fork_rng t.engine) in
  for home = 0 to t.config.Config.nodes - 1 do
    for c = 0 to coroutines - 1 do
      let rec loop () =
        if Sim.now t.engine < stop then begin
          let issued_at = Sim.now t.engine in
          submit t ~home (gen ~home) (fun ok ->
              let now = Sim.now t.engine in
              if now >= start && now < stop then begin
                if ok then begin
                  incr committed;
                  Zeus_sim.Stats.Samples.add latencies (now -. issued_at)
                end
                else incr aborted
              end;
              loop ())
        end
      in
      ignore
        (Sim.schedule t.engine
           ~after:(0.01 *. float_of_int ((home * coroutines) + c))
           loop)
    done
  done;
  Sim.run ~until:(stop +. 2_000.0) t.engine;
  let c = !committed and a = !aborted in
  {
    Zeus_workload.Driver.committed = c;
    aborted = a;
    retries = 0;
    duration_us;
    mtps = float_of_int c /. duration_us;
    abort_rate = (if c + a = 0 then 0.0 else float_of_int a /. float_of_int (c + a));
    lat_p50_us = Zeus_sim.Stats.Samples.percentile latencies 50.0;
    lat_p99_us = Zeus_sim.Stats.Samples.percentile latencies 99.0;
  }
