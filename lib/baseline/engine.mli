(** Baseline distributed transactions: OCC with two-phase commit and
    primary-backup replication over the simulated fabric (§6.1).

    Keys are statically sharded: [primary_of key] never changes (no dynamic
    ownership — this is exactly what Zeus adds).  A transaction from node
    [c] executes:

    + {e read} — versioned reads from every key's primary (remote = 1 RTT;
      one-sided profiles skip remote CPU);
    + {e lock + validate} — write keys are locked at their primaries iff
      unchanged, read keys re-validated (one combined round for FaSST-like
      profiles, two serial rounds otherwise); any conflict aborts and
      retries with back-off;
    + {e log} — write values are logged at every backup of each written key;
    + {e commit} — primaries bump versions and unlock (plus any profile
      extra rounds).

    The engine stores versions and locks (not values): it exists to measure
    protocol cost on identical workloads, as the paper does with published
    baseline numbers. *)

type t

val create :
  ?profile:Profile.t ->
  ?config:Zeus_core.Config.t ->
  primary_of:(int -> int) ->
  unit ->
  t
(** Shares the Zeus cost model ({!Zeus_core.Config}): same fabric, same
    per-message CPU, same thread counts. *)

val engine : t -> Zeus_sim.Engine.t
val profile : t -> Profile.t

val submit : t -> home:int -> Zeus_workload.Spec.t -> (bool -> unit) -> unit
(** Run one transaction from coordinator [home]; the callback receives
    [true] on commit, [false] after [max_retries] aborts. *)

val run_load :
  t ->
  ?coroutines:int ->
  warmup_us:float ->
  duration_us:float ->
  gen:(home:int -> Zeus_workload.Spec.t) ->
  unit ->
  Zeus_workload.Driver.result
(** Closed-loop load from every node ([coroutines] concurrent transactions
    per node, defaulting to 16 per app thread — modelling FaSST's coroutine
    multiplexing). *)

val committed : t -> int
val aborted : t -> int

val metrics : t -> Zeus_telemetry.Metrics.t
(** Typed registry ([baseline.committed], [baseline.aborted],
    [baseline.retries]). *)
