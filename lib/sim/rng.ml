(* The 64-bit state lives in an 8-byte buffer rather than a [mutable
   int64] record field: [Bytes.get/set_int64_le] compile to raw unboxed
   loads and stores, so a draw allocates nothing for the state update
   (a boxed-int64 field would re-box on every write).  The sequences are
   bit-identical to the previous representation. *)
type t = Bytes.t

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 seed;
  b

let[@inline] int64 t =
  let s = Int64.add (Bytes.get_int64_le t 0) golden_gamma in
  Bytes.set_int64_le t 0 s;
  mix s

let split t =
  let seed = int64 t in
  create seed

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value stays non-negative in a 63-bit native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let float t bound =
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (bits /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L
let chance t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

module Zipf = struct
  type nonrec rng = t [@@warning "-34"]

  type t = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
  }

  let zeta n theta =
    let sum = ref 0.0 in
    for i = 1 to n do
      sum := !sum +. (1.0 /. (float_of_int i ** theta))
    done;
    !sum

  let create ~n ~theta =
    assert (n > 0);
    if theta = 0.0 then { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0 }
    else begin
      let zetan = zeta n theta in
      let zeta2 = zeta 2 theta in
      let alpha = 1.0 /. (1.0 -. theta) in
      let eta =
        (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
        /. (1.0 -. (zeta2 /. zetan))
      in
      { n; theta; alpha; zetan; eta }
    end

  let sample t rng =
    if t.theta = 0.0 then int rng t.n
    else begin
      let u = float rng 1.0 in
      let uz = u *. t.zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. (0.5 ** t.theta) then 1
      else begin
        let v = float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha) in
        let k = int_of_float v in
        if k >= t.n then t.n - 1 else if k < 0 then 0 else k
      end
    end
end
