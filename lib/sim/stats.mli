(** Measurement utilities: running summaries, latency samples with
    percentiles/CDFs, and bucketed time series for throughput timelines. *)

(** Running scalar summary (count / mean / min / max). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end

(** Latency sample set.  Stores up to [cap] samples by reservoir sampling so
    memory stays bounded on long runs; percentiles are computed on demand. *)
module Samples : sig
  type t

  val create : ?cap:int -> Rng.t -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile t 99.9] — linear interpolation between stored samples.
      Returns [nan] when empty. *)

  val cdf : t -> points:int -> (float * float) list
  (** [(value, cumulative fraction)] pairs suitable for plotting. *)

  val values : t -> float array
  (** Snapshot of the stored samples (at most [cap]). *)
end

(** Named monotonic event counters (protocol/engine observability). *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  (** Unknown names read as [0]. *)

  val cell : t -> string -> int ref
  (** Resolve (registering on first use) the counter's storage cell.
      Typed metric handles ({!Zeus_telemetry.Metrics.Counter}) hold this
      ref so the hashtable lookup is paid once, at registration. *)

  val to_list : t -> (string * int) list
  (** All counters, sorted by name. *)
end

(** Counts bucketed by virtual time — throughput timelines. *)
module Timeseries : sig
  type t

  val create : bucket:float -> t
  (** [bucket] is the width in µs of each bucket. *)

  val add : t -> time:float -> float -> unit

  val buckets : t -> (float * float) list
  (** [(bucket_start_time, sum)] pairs in time order, including empty
      buckets between the first and last used ones. *)

  val rate : t -> (float * float) list
  (** [(bucket_start_time, sum / bucket_width)] — per-µs rates. *)
end

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted a 99.0] on an ascending ([Float.compare]-sorted)
    array.  NaN-safe: NaN elements (sorted to the front) are skipped, [p]
    is clamped to [0, 100], and the result is [nan] only when no real
    samples remain. *)
