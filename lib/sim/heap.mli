(** Array-backed binary min-heap, used as the simulator's event queue. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] returns an empty heap ordered by [leq] (total preorder). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit
(** Empty the heap while keeping the backing array, so a pooled heap's
    next fill re-allocates nothing.  Alias of {!reset}. *)

val reset : 'a t -> unit
(** Capacity-preserving clear: [length] drops to 0, the backing storage
    is retained at its high-water capacity. *)
