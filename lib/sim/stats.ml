let percentile_of_sorted a p =
  (* NaN-safe: with [Float.compare] ordering, NaNs sort before every real
     number, so skipping the NaN prefix leaves a clean ascending range. *)
  let len = Array.length a in
  let first = ref 0 in
  while !first < len && Float.is_nan a.(!first) do incr first done;
  let base = !first in
  let n = len - base in
  let p = if Float.is_nan p then 50.0 else Float.max 0.0 (Float.min 100.0 p) in
  if n = 0 then nan
  else if n = 1 then a.(base)
  else begin
    let a = Array.sub a base n in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    let lo = max 0 (min (n - 1) lo) and hi = max 0 (min (n - 1) hi) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end
  end

module Summary = struct
  (* All-float record: OCaml stores it flat, so [add]'s field updates are
     raw stores — a mixed record would box a fresh float per assignment,
     and [add] runs once per histogram observation. *)
  type t = {
    mutable count : float;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0.0; sum = 0.0; min = infinity; max = neg_infinity }

  let add t v =
    t.count <- t.count +. 1.0;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v

  let count t = int_of_float t.count
  let mean t = if t.count = 0.0 then nan else t.sum /. t.count
  let min t = t.min
  let max t = t.max
  let total t = t.sum
end

module Samples = struct
  type t = {
    cap : int;
    rng : Rng.t;
    mutable seen : int;
    sum : float array;  (* one cell: unboxed accumulator (a mutable float
                           field in this mixed record would box per add) *)
    mutable data : float array;
    mutable size : int;
  }

  let create ?(cap = 100_000) rng =
    { cap; rng; seen = 0; sum = [| 0.0 |]; data = [||]; size = 0 }

  let add t v =
    t.seen <- t.seen + 1;
    t.sum.(0) <- t.sum.(0) +. v;
    if t.size < t.cap then begin
      if t.size = Array.length t.data then begin
        let ncap = Stdlib.max 64 (Stdlib.min t.cap (2 * Stdlib.max 1 (Array.length t.data))) in
        let ndata = Array.make ncap 0.0 in
        Array.blit t.data 0 ndata 0 t.size;
        t.data <- ndata
      end;
      t.data.(t.size) <- v;
      t.size <- t.size + 1
    end
    else begin
      (* Reservoir sampling keeps each seen value with equal probability. *)
      let j = Rng.int t.rng t.seen in
      if j < t.cap then t.data.(j) <- v
    end

  let count t = t.seen
  let mean t = if t.seen = 0 then nan else t.sum.(0) /. float_of_int t.seen

  let sorted t =
    let a = Array.sub t.data 0 t.size in
    Array.sort Float.compare a;
    a

  let percentile t p = percentile_of_sorted (sorted t) p

  let values t = Array.sub t.data 0 t.size

  let cdf t ~points =
    let a = sorted t in
    let n = Array.length a in
    if n = 0 then []
    else begin
      let step = Stdlib.max 1 (n / points) in
      let rec collect i acc =
        if i >= n then List.rev ((a.(n - 1), 1.0) :: acc)
        else collect (i + step) ((a.(i), float_of_int (i + 1) /. float_of_int n) :: acc)
      in
      collect 0 []
    end
end

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let cell t name =
    match Hashtbl.find_opt t name with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.replace t name c;
      c

  let incr ?(by = 1) t name =
    let c = cell t name in
    c := !c + by
  let get t name = match Hashtbl.find_opt t name with Some c -> !c | None -> 0

  let to_list t =
    List.sort compare (Hashtbl.fold (fun name c acc -> (name, !c) :: acc) t [])
end

module Timeseries = struct
  type t = { bucket : float; table : (int, float) Hashtbl.t }

  let create ~bucket =
    assert (bucket > 0.0);
    { bucket; table = Hashtbl.create 64 }

  let add t ~time v =
    let idx = int_of_float (time /. t.bucket) in
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt t.table idx) in
    Hashtbl.replace t.table idx (cur +. v)

  let buckets t =
    if Hashtbl.length t.table = 0 then []
    else begin
      let lo = Hashtbl.fold (fun k _ acc -> min k acc) t.table max_int in
      let hi = Hashtbl.fold (fun k _ acc -> max k acc) t.table min_int in
      let rec collect i acc =
        if i < lo then acc
        else begin
          let v = Option.value ~default:0.0 (Hashtbl.find_opt t.table i) in
          collect (i - 1) ((float_of_int i *. t.bucket, v) :: acc)
        end
      in
      collect hi []
    end

  let rate t = List.map (fun (time, v) -> (time, v /. t.bucket)) (buckets t)
end
