(* Monomorphic, pooled event core.

   The generic closure-based [Heap.t] of boxed event records paid an
   indirect [leq] call per comparison, a 5-word allocation per scheduled
   event, and kept cancelled transport timers (RTO, delayed-ack) in the
   queue until they surfaced.  This engine instead keeps:

   - an {e event slab}: parallel arrays [e_fn]/[e_gen] indexed by slot,
     recycled through a free-slot stack, so steady-state scheduling
     allocates nothing beyond the caller's closure;
   - a {e heap} of parallel arrays [h_time]/[h_seq]/[h_id] with the
     [(time, seq)] comparison inlined (no closure, no boxing);
   - {e generation-tagged ids}: an [event_id] packs (slot, generation);
     cancel and dispatch bump the slot's generation, so a heap entry is
     live iff its packed generation still matches — reusing a slot can
     never resurrect a stale handle (ABA safety);
   - {e eager compaction}: cancelled entries are counted and, once they
     outnumber half the heap (past a 64-entry floor), filtered out in one
     pass followed by a Floyd build-heap, so timer churn cannot inflate
     the heap's depth. *)

let slot_bits = 26
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl (Sys.int_size - 1 - slot_bits)) - 1
let ignore_fn () = ()

type event_id = int

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable live : int;
  mutable dispatched : int;
  (* event slab, indexed by slot *)
  mutable e_fn : (unit -> unit) array;
  mutable e_gen : int array;
  mutable free : int array;  (* free-slot stack *)
  mutable free_top : int;
  mutable slab_next : int;  (* next never-used slot *)
  (* binary min-heap on (time, seq), parallel arrays *)
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable h_id : int array;
  mutable h_size : int;
  mutable stale : int;  (* cancelled entries still in the heap *)
  root_rng : Rng.t;
}

let create ?(seed = 42L) () =
  {
    clock = 0.0;
    seq = 0;
    live = 0;
    dispatched = 0;
    e_fn = Array.make 256 ignore_fn;
    e_gen = Array.make 256 0;
    free = Array.make 256 0;
    free_top = 0;
    slab_next = 0;
    h_time = Array.make 256 0.0;
    h_seq = Array.make 256 0;
    h_id = Array.make 256 0;
    h_size = 0;
    stale = 0;
    root_rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.root_rng
let fork_rng t = Rng.split t.root_rng
let pending t = t.live
let events_dispatched t = t.dispatched

(* ---- slab ---- *)

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    let cap = Array.length t.e_fn in
    if t.slab_next = cap then begin
      let ncap = 2 * cap in
      let nfn = Array.make ncap ignore_fn in
      Array.blit t.e_fn 0 nfn 0 cap;
      t.e_fn <- nfn;
      let ngen = Array.make ncap 0 in
      Array.blit t.e_gen 0 ngen 0 cap;
      t.e_gen <- ngen;
      let nfree = Array.make ncap 0 in
      Array.blit t.free 0 nfree 0 t.free_top;
      t.free <- nfree
    end;
    let s = t.slab_next in
    t.slab_next <- s + 1;
    s
  end

let free_slot t s =
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

(* Bump the generation and release the slot: any packed id minted for the
   old generation is stale from here on. *)
let retire_slot t s =
  t.e_gen.(s) <- (t.e_gen.(s) + 1) land gen_mask;
  t.e_fn.(s) <- ignore_fn;
  free_slot t s

let id_live t id = t.e_gen.(id land slot_mask) = id lsr slot_bits

(* ---- heap ---- *)

(* Hole-style sift: carry the inserted element in locals, shift entries
   into the hole, write the element once at its final position. *)
let sift_up t i0 time seq id =
  let i = ref i0 and moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = t.h_time.(p) in
    if pt < time || (pt = time && t.h_seq.(p) < seq) then moving := false
    else begin
      t.h_time.(!i) <- pt;
      t.h_seq.(!i) <- t.h_seq.(p);
      t.h_id.(!i) <- t.h_id.(p);
      i := p
    end
  done;
  t.h_time.(!i) <- time;
  t.h_seq.(!i) <- seq;
  t.h_id.(!i) <- id

let sift_down t i0 time seq id =
  let n = t.h_size in
  let i = ref i0 and moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= n then moving := false
    else begin
      let r = l + 1 in
      let c =
        if
          r < n
          && (t.h_time.(r) < t.h_time.(l)
             || (t.h_time.(r) = t.h_time.(l) && t.h_seq.(r) < t.h_seq.(l)))
        then r
        else l
      in
      let ct = t.h_time.(c) in
      if ct < time || (ct = time && t.h_seq.(c) < seq) then begin
        t.h_time.(!i) <- ct;
        t.h_seq.(!i) <- t.h_seq.(c);
        t.h_id.(!i) <- t.h_id.(c);
        i := c
      end
      else moving := false
    end
  done;
  t.h_time.(!i) <- time;
  t.h_seq.(!i) <- seq;
  t.h_id.(!i) <- id

let heap_push t time seq id =
  let cap = Array.length t.h_time in
  if t.h_size = cap then begin
    let ncap = 2 * cap in
    let ntime = Array.make ncap 0.0 in
    Array.blit t.h_time 0 ntime 0 cap;
    t.h_time <- ntime;
    let nseq = Array.make ncap 0 in
    Array.blit t.h_seq 0 nseq 0 cap;
    t.h_seq <- nseq;
    let nid = Array.make ncap 0 in
    Array.blit t.h_id 0 nid 0 cap;
    t.h_id <- nid
  end;
  let i = t.h_size in
  t.h_size <- i + 1;
  sift_up t i time seq id

let remove_min t =
  let n = t.h_size - 1 in
  t.h_size <- n;
  if n > 0 then sift_down t 0 t.h_time.(n) t.h_seq.(n) t.h_id.(n)

(* Drop every stale entry in one pass, then Floyd build-heap over the
   survivors: O(n) total, amortized O(1) per cancelled timer. *)
let compact t =
  let n = t.h_size in
  let w = ref 0 in
  for r = 0 to n - 1 do
    let id = t.h_id.(r) in
    if id_live t id then begin
      t.h_time.(!w) <- t.h_time.(r);
      t.h_seq.(!w) <- t.h_seq.(r);
      t.h_id.(!w) <- id;
      incr w
    end
  done;
  t.h_size <- !w;
  t.stale <- 0;
  for i = (!w / 2) - 1 downto 0 do
    sift_down t i t.h_time.(i) t.h_seq.(i) t.h_id.(i)
  done

(* ---- scheduling ---- *)

let schedule_at t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let slot = alloc_slot t in
  t.e_fn.(slot) <- fn;
  let id = (t.e_gen.(slot) lsl slot_bits) lor slot in
  let seq = t.seq in
  t.seq <- seq + 1;
  t.live <- t.live + 1;
  heap_push t time seq id;
  id

let schedule t ~after fn =
  let after = if after < 0.0 then 0.0 else after in
  schedule_at t ~time:(t.clock +. after) fn

let cancel t id =
  let slot = id land slot_mask in
  if slot < Array.length t.e_gen && t.e_gen.(slot) = id lsr slot_bits then begin
    retire_slot t slot;
    t.live <- t.live - 1;
    t.stale <- t.stale + 1;
    if t.stale > 64 && 2 * t.stale > t.h_size then compact t
  end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let stop = ref false in
  while not !stop do
    if t.h_size = 0 then stop := true
    else begin
      let id = t.h_id.(0) in
      if not (id_live t id) then begin
        (* Stale top: drain it whatever the deadline or budget, exactly
           as the old engine skipped cancelled records at pop. *)
        remove_min t;
        t.stale <- t.stale - 1
      end
      else begin
        let time = t.h_time.(0) in
        let past_deadline =
          match until with Some u -> time > u | None -> false
        in
        if past_deadline || !budget <= 0 then stop := true
        else begin
          let slot = id land slot_mask in
          let fn = t.e_fn.(slot) in
          retire_slot t slot;
          remove_min t;
          t.live <- t.live - 1;
          t.clock <- time;
          t.dispatched <- t.dispatched + 1;
          decr budget;
          fn ()
        end
      end
    end
  done;
  (* Live events remain iff the heap still holds a non-stale entry; stale
     leftovers alone never hold the clock back from the bound. *)
  match until with
  | Some u when t.clock < u && t.live > 0 -> t.clock <- u
  | _ -> ()
