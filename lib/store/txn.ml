type abort_reason =
  | Lock_conflict of Types.key
  | Invalidated of Types.key
  | Not_replica of Types.key
  | Ownership_refused of Types.key
  | Node_dead

let pp_abort ppf = function
  | Lock_conflict k -> Format.fprintf ppf "lock-conflict(#%d)" k
  | Invalidated k -> Format.fprintf ppf "invalidated(#%d)" k
  | Not_replica k -> Format.fprintf ppf "not-replica(#%d)" k
  | Ownership_refused k -> Format.fprintf ppf "ownership-refused(#%d)" k
  | Node_dead -> Format.fprintf ppf "node-dead"

type outcome = Committed | Aborted of abort_reason

type update = { key : Types.key; version : int; data : Value.t; freed : bool }

type t = {
  table : Table.t;
  mutable thread : int;
  mutable read_only : bool;
  (* write txn state *)
  mutable locked : Types.key list;       (* locks taken, newest first *)
  copies : (Types.key, Value.t) Hashtbl.t;  (* private copies (open_write) *)
  mutable creates : (Types.key * Value.t) list;
  mutable frees : Types.key list;
  (* read-only txn state: (key, version) snapshots *)
  mutable snapshots : (Types.key * int) list;
  mutable finished : bool;
}

let create ~read_only table ~thread =
  {
    table;
    thread;
    read_only;
    locked = [];
    copies = Hashtbl.create 8;
    creates = [];
    frees = [];
    snapshots = [];
    finished = false;
  }

let create_write table ~thread = create ~read_only:false table ~thread
let create_read table ~thread = create ~read_only:true table ~thread

(* Recycle a finished transaction in place: per-attempt state is dropped
   but the copies table keeps its buckets, so a pooled transaction's next
   attempt allocates nothing.  [Hashtbl.clear] (not [reset]) is the point:
   reset would shrink the bucket array back to its initial size. *)
let reinit t ~read_only ~thread =
  assert (t.finished || (t.locked = [] && t.snapshots = []));
  t.thread <- thread;
  t.read_only <- read_only;
  t.locked <- [];
  Hashtbl.clear t.copies;
  t.creates <- [];
  t.frees <- [];
  t.snapshots <- [];
  t.finished <- false

let is_read_only t = t.read_only
let thread t = t.thread

let release_locks t =
  List.iter
    (fun key ->
      match Table.find t.table key with
      | Some obj -> Obj.unlock obj ~thread:t.thread
      | None -> ())
    t.locked;
  t.locked <- []

let abort t =
  if not t.finished then begin
    t.finished <- true;
    release_locks t;
    Hashtbl.clear t.copies
  end

let fail t reason =
  abort t;
  Error reason

let take_lock t obj =
  (* Already-locked check is O(1) on the object itself: local locks are
     strictly per-thread and released at commit/abort, so [lock_thread =
     this thread] can only mean this very transaction took it (and already
     pushed the key onto [locked] for release). *)
  match obj.Obj.lock_thread with
  | Some th when th = t.thread -> Ok ()
  | _ ->
    if Obj.can_lock obj ~thread:t.thread then begin
      Obj.lock obj ~thread:t.thread;
      t.locked <- obj.Obj.key :: t.locked;
      Ok ()
    end
    else Error (Lock_conflict obj.Obj.key)

let created_value t key =
  List.assoc_opt key t.creates

let open_read t key =
  assert (not t.finished);
  match created_value t key with
  | Some v -> Ok v
  | None ->
    (match Table.find t.table key with
    | None -> fail t (Not_replica key)
    | Some obj ->
      if t.read_only then begin
        (* A reader must not return a value with a pending reliable commit. *)
        if obj.Obj.t_state <> Types.T_valid then fail t (Invalidated key)
        else begin
          t.snapshots <- (key, obj.Obj.t_version) :: t.snapshots;
          Ok obj.Obj.data
        end
      end
      else begin
        match take_lock t obj with
        | Error reason -> fail t reason
        | Ok () ->
          (match Hashtbl.find_opt t.copies key with
          | Some copy -> Ok copy
          | None -> Ok obj.Obj.data)
      end)

let open_write t key =
  assert (not t.finished);
  assert (not t.read_only);
  match created_value t key with
  | Some v -> Ok v
  | None ->
    (match Table.find t.table key with
    | None -> fail t (Not_replica key)
    | Some obj ->
      (match take_lock t obj with
      | Error reason -> fail t reason
      | Ok () ->
        (match Hashtbl.find_opt t.copies key with
        | Some copy -> Ok copy
        | None ->
          let copy = Bytes.copy obj.Obj.data in
          Hashtbl.replace t.copies key copy;
          Ok copy)))

let put t key data =
  assert (not t.finished);
  assert (not t.read_only);
  if List.mem_assoc key t.creates then
    t.creates <- (key, data) :: List.remove_assoc key t.creates
  else begin
    assert (List.mem key t.locked);
    Hashtbl.replace t.copies key data
  end

let create_obj t key data =
  assert (not t.finished);
  assert (not t.read_only);
  t.creates <- (key, data) :: t.creates

let free_obj t key =
  assert (not t.finished);
  assert (not t.read_only);
  if List.mem_assoc key t.creates then begin
    t.creates <- List.remove_assoc key t.creates;
    Ok ()
  end
  else begin
    match Table.find t.table key with
    | None -> fail t (Not_replica key)
    | Some obj ->
      (match take_lock t obj with
      | Error reason -> fail t reason
      | Ok () ->
        t.frees <- key :: t.frees;
        Ok ())
  end

let written t key =
  Hashtbl.mem t.copies key || List.mem_assoc key t.creates || List.mem key t.frees

let commit_read_only t =
  (* Single validation pass that remembers WHICH snapshot failed: the
     abort reason names the actual invalidated key, not whatever happened
     to sit at the head of the snapshot list. *)
  let rec validate = function
    | [] ->
      t.finished <- true;
      Ok []
    | (key, version) :: rest -> (
      match Table.find t.table key with
      | Some obj when obj.Obj.t_state = Types.T_valid && obj.Obj.t_version = version
        ->
        validate rest
      | Some _ | None -> fail t (Invalidated key))
  in
  validate t.snapshots

let publish t obj data ~freed =
  obj.Obj.data <- data;
  obj.Obj.t_version <- obj.Obj.t_version + 1;
  obj.Obj.t_state <- Types.T_write;
  obj.Obj.pending_rc <- obj.Obj.pending_rc + 1;
  obj.Obj.last_writer_thread <- t.thread;
  Obj.unlock obj ~thread:t.thread;
  { key = obj.Obj.key; version = obj.Obj.t_version; data; freed }

let commit_write t =
  let updates = ref [] in
  (* Publish private copies (skip objects that are also freed). *)
  Hashtbl.iter
    (fun key data ->
      if not (List.mem key t.frees) then begin
        let obj = Table.get t.table key in
        updates := publish t obj data ~freed:false :: !updates
      end)
    t.copies;
  (* Freed objects: bump version, mark freed; removed once replicated. *)
  List.iter
    (fun key ->
      let obj = Table.get t.table key in
      updates := publish t obj obj.Obj.data ~freed:true :: !updates)
    t.frees;
  (* Created objects: installed as owned, version 1, pending replication. *)
  List.iter
    (fun (key, data) ->
      let obj = Obj.create ~key ~role:Types.Owner ~version:1 data in
      obj.Obj.t_state <- Types.T_write;
      obj.Obj.pending_rc <- 1;
      obj.Obj.last_writer_thread <- t.thread;
      Table.install t.table obj;
      updates := { key; version = 1; data; freed = false } :: !updates)
    t.creates;
  release_locks t;
  t.finished <- true;
  Ok !updates

let local_commit t =
  assert (not t.finished);
  if t.read_only then commit_read_only t else commit_write t
