type t = bytes

let empty = Bytes.create 0
let of_string s = Bytes.of_string s
let to_string b = Bytes.to_string b

let of_ints ints =
  let n = List.length ints in
  let b = Bytes.create (8 * n) in
  List.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) ints;
  b

let to_ints b =
  let n = Bytes.length b / 8 in
  List.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (8 * i)))

let of_int v = of_ints [ v ]

let to_int b =
  match to_ints b with
  | v :: _ -> v
  | [] -> invalid_arg "Value.to_int: empty value"

let padded fields ~size =
  let len = max size (8 * List.length fields) in
  let b = Bytes.make len '\000' in
  List.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) fields;
  b

let size = Bytes.length
let equal = Bytes.equal
