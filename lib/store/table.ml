(* Hot-path note: [find] dominates simulator profiles (every read, write,
   validation and replicated apply goes through it), so small non-negative
   keys — the common case for every workload generator — live in a dense
   array indexed by key.  Negative or very large keys spill into a Hashtbl
   so the interface stays total. *)

type t = {
  node : Types.node_id;
  mutable dense : Obj.t option array; (* slot [k] holds the object with key k *)
  sparse : (Types.key, Obj.t) Hashtbl.t;
  mutable count : int;
}

(* Past this the dense array stops growing and keys spill to [sparse];
   bounds worst-case memory at 8 MiB of slots per node. *)
let max_dense = 1 lsl 20

let create ~node =
  { node; dense = Array.make 1024 None; sparse = Hashtbl.create 16; count = 0 }

let node t = t.node

let find t key =
  if key >= 0 && key < Array.length t.dense then t.dense.(key)
  else Hashtbl.find_opt t.sparse key

let mem t key =
  if key >= 0 && key < Array.length t.dense then
    match t.dense.(key) with Some _ -> true | None -> false
  else Hashtbl.mem t.sparse key

let get t key =
  match find t key with
  | Some o -> o
  | None -> raise Not_found

let grow t key =
  let cap = ref (Array.length t.dense) in
  while key >= !cap do
    cap := !cap * 2
  done;
  let dense = Array.make !cap None in
  Array.blit t.dense 0 dense 0 (Array.length t.dense);
  t.dense <- dense

let install t obj =
  let key = obj.Obj.key in
  if key >= 0 && key < max_dense then begin
    if key >= Array.length t.dense then grow t key;
    (match t.dense.(key) with None -> t.count <- t.count + 1 | Some _ -> ());
    t.dense.(key) <- Some obj
  end
  else begin
    if not (Hashtbl.mem t.sparse key) then t.count <- t.count + 1;
    Hashtbl.replace t.sparse key obj
  end

let remove t key =
  if key >= 0 && key < Array.length t.dense then begin
    match t.dense.(key) with
    | Some _ ->
      t.count <- t.count - 1;
      t.dense.(key) <- None
    | None -> ()
  end
  else if Hashtbl.mem t.sparse key then begin
    t.count <- t.count - 1;
    Hashtbl.remove t.sparse key
  end

let size t = t.count

let iter t fn =
  Array.iter (function Some o -> fn o | None -> ()) t.dense;
  Hashtbl.iter (fun _ o -> fn o) t.sparse

let keys t =
  let acc = Hashtbl.fold (fun k _ acc -> k :: acc) t.sparse [] in
  let acc = ref acc in
  for k = Array.length t.dense - 1 downto 0 do
    (match t.dense.(k) with Some _ -> acc := k :: !acc | None -> ())
  done;
  !acc
