(** Local transactional memory (§7): the single-node half of a Zeus
    transaction.

    A write transaction takes thread-local ownership of every object it
    opens (the "simplified, local version of the ownership protocol" of §3),
    mutates {e private copies} only — which gives opacity (§6.2) — and on
    [local_commit] publishes all copies atomically: data swapped in,
    [t_version] bumped, [t_state = Write], and the object accounted to this
    thread's reliable-commit pipeline.  Securing the {e node-level}
    ownership of objects before opening them is the caller's job
    ({!Zeus_core.Node} does it via the ownership protocol).

    A read-only transaction (§5.3) buffers [(t_version, t_data)] snapshots
    at open time and verifies at commit that every object is still [Valid]
    with an unchanged version. *)

type abort_reason =
  | Lock_conflict of Types.key   (** another thread holds local ownership *)
  | Invalidated of Types.key     (** read-only: pending reliable commit *)
  | Not_replica of Types.key     (** object not stored on this node *)
  | Ownership_refused of Types.key  (** node-level ownership NACKed (set by core) *)
  | Node_dead                    (** coordinator crashed mid-transaction *)

val pp_abort : Format.formatter -> abort_reason -> unit

type outcome = Committed | Aborted of abort_reason

type t

val create_write : Table.t -> thread:int -> t
val create_read : Table.t -> thread:int -> t

val reinit : t -> read_only:bool -> thread:int -> unit
(** Recycle a {e finished} (committed or aborted) transaction for a fresh
    attempt on the same table.  All per-attempt state is dropped; the
    private-copy table keeps its bucket array, so a pooled transaction's
    steady state allocates nothing per attempt.  Callers pool per thread —
    a transaction must never be shared across threads. *)

val is_read_only : t -> bool
val thread : t -> int

val open_read : t -> Types.key -> (Value.t, abort_reason) result
(** In a write transaction this also takes the local lock (strict 2PL); in a
    read-only transaction it snapshots [(version, data)]. *)

val open_write : t -> Types.key -> (Value.t, abort_reason) result
(** Take the local lock and return the transaction-private copy. *)

val put : t -> Types.key -> Value.t -> unit
(** Replace the private copy of an object previously opened for write. *)

val create_obj : t -> Types.key -> Value.t -> unit
(** [malloc]: a new object owned by this node, visible after commit. *)

val free_obj : t -> Types.key -> (unit, abort_reason) result
(** [free]: delete an object (requires write access). *)

val written : t -> Types.key -> bool

(** Updates published by a local commit, to be replicated. *)
type update = {
  key : Types.key;
  version : int;
  data : Value.t;
  freed : bool;
}

val local_commit : t -> (update list, abort_reason) result
(** Atomically publish the transaction.  For a read-only transaction this is
    the validation step and the update list is empty.  On [Error] the
    transaction has been aborted and all its locks released. *)

val abort : t -> unit
(** Release locks and discard private copies. *)
