(** Per-key, per-node decayed access counters (the locality engine's input).

    Each tracked key carries one exponentially-weighted rate per node,
    decayed with a configurable half-life so that old accesses fade and the
    counters approximate "recent accesses per half-life window".  Memory is
    bounded: at most [capacity] keys are tracked, and inserting beyond that
    evicts the coldest entries — cold keys are exactly the ones no placement
    decision cares about.

    All operations are deterministic functions of the recorded event
    sequence and the supplied clock values; nothing here draws randomness. *)

open Zeus_store

type config = {
  half_life_us : float;  (** decay: a rate halves every [half_life_us] *)
  capacity : int;        (** max tracked keys; beyond it the coldest go *)
}

val default_config : config

type t

val create : ?config:config -> nodes:int -> unit -> t

val record : t -> key:Types.key -> node:Types.node_id -> now:float -> unit
(** One access to [key] by [node] at virtual time [now]. *)

val rate : t -> key:Types.key -> node:Types.node_id -> now:float -> float
(** Decayed access rate of [node] on [key]; [0.] for untracked keys. *)

val rates : t -> key:Types.key -> now:float -> float array
(** Per-node decayed rates (a fresh array of length [nodes]). *)

val total : t -> key:Types.key -> now:float -> float

val top_node : t -> key:Types.key -> now:float -> (Types.node_id * float) option
(** Hottest accessor and its rate; ties break to the lowest node id.
    [None] when the key is untracked or fully decayed. *)

val last_accessor : t -> key:Types.key -> Types.node_id option

val tracked : t -> int
(** Number of keys currently tracked — bounded by [capacity]. *)

val iter : t -> (Types.key -> unit) -> unit
