(** Placement policy: when to prefetch ownership, when to provision an
    extra reader replica, when to pin a thrashing key.

    The planner is stateful per key and applies two stabilizers:

    - {e hysteresis}: a prefetch fires only when the predicted accessor's
      recent rate beats the current holder's by [hysteresis] (or the
      prediction is directional), the prediction clears the confidence bar,
      and [cooldown_us] has passed since the key's last ownership move —
      migration must be strictly cheaper than staying put, with margin;
    - {e anti-ping-pong}: a key observed to migrate [pingpong_moves] times
      within [pingpong_window_us] while bouncing between ≤ 2 nodes is
      declared thrashing and pinned for [pin_us] at the node holding it at
      detection (executing that pin costs zero further migrations); further
      speculative movement is suppressed, and the caller is expected to
      re-route the key's transactions to the pin target (e.g.
      {!Zeus_lb.Balancer.reassign}) so the fighting stops at the source. *)

open Zeus_store

type config = {
  hysteresis : float;          (** frequency-mode rate advantage required *)
  min_rate : float;            (** ignore keys colder than this *)
  cooldown_us : float;         (** min quiet time after a move *)
  pingpong_window_us : float;
  pingpong_moves : int;        (** moves within the window that mean thrash *)
  pin_us : float;              (** how long a pin lasts *)
  read_replicate_ratio : float;
      (** a node reading this share of a remote key's accesses (with no
          writes observed from it) gets a reader replica instead of
          ownership *)
}

val default_config : config

type decision =
  | Stay
  | Prefetch of { target : Types.node_id; directional : bool }
      (** move ownership to [target] ahead of its next access *)
  | Replicate of Types.node_id
      (** provision a reader replica at the node (read-mostly hot key) *)
  | Pin of Types.node_id
      (** thrashing: keep (or place) the key at the node and re-route *)

val pp_decision : Format.formatter -> decision -> unit

type t

val create : ?config:config -> unit -> t

val note_migration : t -> key:Types.key -> owner:Types.node_id -> now:float -> unit
(** Feed every observed ownership change (including this node's own wins). *)

val note_read_interest : t -> key:Types.key -> node:Types.node_id -> unit
(** A node accessed the key read-only (candidate for [Replicate]). *)

val pinned : t -> key:Types.key -> now:float -> Types.node_id option
(** The pin target while a pin is active, [None] otherwise. *)

val decide :
  t ->
  predictor:Predictor.t ->
  log:Access_log.t ->
  key:Types.key ->
  holder:Types.node_id ->
  now:float ->
  decision
(** Plan for [key] currently placed at [holder].  Returns [Stay] unless a
    move/replica/pin is justified under the thresholds above. *)

val migrations : t -> key:Types.key -> int
(** Total migrations observed for [key] (ping-pong tests). *)

val pins_set : t -> int
