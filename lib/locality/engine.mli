(** Per-node predictive locality engine (integration of the subsystem).

    The engine turns ownership placement from reactive to predictive while
    changing {e nothing} about the protocols: it only watches (access and
    arbitration events), plans (hysteresis + anti-ping-pong policy), and
    acts through the ordinary ownership API, rate-limited.

    Data flow on every node:

    {v
      txn path ──────────────► note_local_access ─┐
      ownership agent (driver/arbiter observer) ──┤► Access_log + Predictor
      ownership changes ──────► note_owner_change ┘        │
                                                           ▼
      idle-gap timer per owned key ──────────────────► Planner.decide
            │ Stay          │ Prefetch t             │ Pin t / Replicate t
            ▼               ▼                        ▼
           (nothing)   L_hint ──► node t:        on_pin callback
                       Migrator.prefetch         (e.g. Balancer.reassign)
                       (token bucket)
    v}

    A prefetch plan is executed by the {e predicted} node (hint + pull), so
    the data and the arbitration flow exactly as in a reactive acquire.
    Hints fire only after a key has gone idle locally for [idle_gap_us] —
    migrating a key still in active local use is how ping-pong starts, so
    idleness is the precondition, and the planner's hysteresis and pinning
    stabilize whatever the idle trigger still gets wrong.

    With [enabled = false] (the default) the engine is never constructed
    and every code path in the node runtime is byte-identical to the seed
    reactive behaviour. *)

open Zeus_store

type config = {
  enabled : bool;
  log : Access_log.config;
  predictor : Predictor.config;
  planner : Planner.config;
  migrator : Migrator.config;
  idle_gap_us : float;
      (** local silence on an owned key before the planner is consulted *)
}

val default_config : config
(** [enabled = false]: seed behaviour. *)

val enabled_default : config
(** [default_config] with [enabled = true] — the experiments' baseline. *)

type t

val create :
  ?telemetry:Zeus_telemetry.Hub.t ->
  config:config ->
  node:Types.node_id ->
  nodes:int ->
  engine:Zeus_sim.Engine.t ->
  transport:Zeus_net.Transport.t ->
  agent:Zeus_ownership.Agent.t ->
  is_owner:(Types.key -> bool) ->
  unit ->
  t

(** {1 Event feeds} *)

val note_local_access : t -> key:Types.key -> write:bool -> unit
(** Called by the node runtime on every transactional access. *)

val note_request : t -> key:Types.key -> kind:Zeus_ownership.Messages.kind ->
  requester:Types.node_id -> unit
(** Called when this node drives/arbitrates an ownership request. *)

val note_owner_change : t -> key:Types.key -> owner:Types.node_id -> unit
(** Called when an ownership change validates at this node. *)

val handle : t -> src:Types.node_id -> Zeus_net.Msg.payload -> bool
(** Process a locality hint; [false] if the payload is not ours. *)

(** {1 Placement output} *)

val route_for_key : t -> Types.key -> Types.node_id option
(** Pin-aware routing: the pin target while a key is pinned, else [None].
    Load balancers consult this to send a thrashing key's transactions
    where the key is pinned. *)

val set_on_pin : t -> (key:Types.key -> target:Types.node_id -> unit) -> unit
(** Invoked (once per pin) on the node a key gets pinned to — wire this to
    {!Zeus_lb.Balancer.reassign} to re-route at the source. *)

(** {1 Introspection} *)

val access_log : t -> Access_log.t
val predictor : t -> Predictor.t
val planner : t -> Planner.t
val migrator : t -> Migrator.t

val metrics : t -> Zeus_telemetry.Metrics.t
(** The engine's typed registry (counters under ["locality."]). *)

val counters : t -> (string * int) list
(** Snapshot of the registry's counters: ["locality.hints_sent"],
    ["locality.hints_received"], ["locality.prefetch_hits"],
    ["locality.prefetch_misses"], ["locality.migrations_observed"],
    ["locality.replicate_hints"], … *)

val prefetch_hits : t -> int
val prefetch_misses : t -> int
val hints_sent : t -> int
val migrations_observed : t -> int
