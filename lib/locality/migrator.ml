module Engine = Zeus_sim.Engine
module Own = Zeus_ownership
open Zeus_store

type config = { bucket : float; refill_per_ms : float }

let default_config = { bucket = 8.0; refill_per_ms = 2.0 }

type t = {
  config : config;
  agent : Own.Agent.t;
  engine : Engine.t;
  inflight : (Types.key, unit) Hashtbl.t;
  mutable level : float;
  mutable refilled_at : float;
  mutable n_issued : int;
  mutable n_won : int;
  mutable n_refused : int;
  mutable n_limited : int;
}

let create ?(config = default_config) ~agent ~engine () =
  {
    config;
    agent;
    engine;
    inflight = Hashtbl.create 32;
    level = config.bucket;
    refilled_at = Engine.now engine;
    n_issued = 0;
    n_won = 0;
    n_refused = 0;
    n_limited = 0;
  }

let refill t =
  let now = Engine.now t.engine in
  let dt_ms = (now -. t.refilled_at) /. 1_000.0 in
  if dt_ms > 0.0 then begin
    t.level <- Float.min t.config.bucket (t.level +. (dt_ms *. t.config.refill_per_ms));
    t.refilled_at <- now
  end

let take t =
  refill t;
  if t.level >= 1.0 then begin
    t.level <- t.level -. 1.0;
    true
  end
  else begin
    t.n_limited <- t.n_limited + 1;
    false
  end

let request ?parent t ~key ~kind ~k =
  if Hashtbl.mem t.inflight key then false
  else if not (take t) then false
  else begin
    Hashtbl.replace t.inflight key ();
    t.n_issued <- t.n_issued + 1;
    Own.Agent.request ?parent t.agent ~key ~kind ~k:(fun result ->
        Hashtbl.remove t.inflight key;
        (match result with
        | Ok () -> t.n_won <- t.n_won + 1
        | Error _ -> t.n_refused <- t.n_refused + 1);
        k result);
    true
  end

let prefetch ?parent t ~key ~k = request ?parent t ~key ~kind:Own.Messages.Acquire ~k
let add_reader ?parent t ~key ~k = request ?parent t ~key ~kind:Own.Messages.Add_reader ~k

let issued t = t.n_issued
let won t = t.n_won
let refused t = t.n_refused
let rate_limited t = t.n_limited

let tokens t =
  refill t;
  t.level
