(** Plan execution, rate-limited.

    Plans become {e ordinary} ownership requests through
    {!Zeus_ownership.Agent.request} — a prefetch is indistinguishable from a
    reactive acquire on the wire, so every protocol guarantee (arbitration,
    recovery, single-owner) carries over unchanged.  A token bucket caps the
    request rate so speculative traffic never starves foreground
    transactions: when the bucket is empty the plan is simply dropped
    (prediction is best-effort; the reactive path remains correct). *)

open Zeus_store

type config = {
  bucket : float;          (** burst capacity, in requests *)
  refill_per_ms : float;   (** sustained prefetch budget, requests per ms *)
}

val default_config : config

type t

val create :
  ?config:config ->
  agent:Zeus_ownership.Agent.t ->
  engine:Zeus_sim.Engine.t ->
  unit ->
  t

val prefetch :
  ?parent:Zeus_telemetry.Trace.span ->
  t ->
  key:Types.key ->
  k:((unit, Zeus_ownership.Messages.nack_reason) result -> unit) ->
  bool
(** Acquire ownership of [key] at this node ahead of need.  Returns [false]
    (and does nothing) when rate-limited or when an identical prefetch is
    already in flight; otherwise [k] fires with the request's outcome.
    [parent] links the underlying arbitration span to the prefetch span. *)

val add_reader :
  ?parent:Zeus_telemetry.Trace.span ->
  t ->
  key:Types.key ->
  k:((unit, Zeus_ownership.Messages.nack_reason) result -> unit) ->
  bool
(** Provision a reader replica at this node (read-mostly plans). *)

(** Counters *)

val issued : t -> int
val won : t -> int

val refused : t -> int
(** NACKed or timed out. *)

val rate_limited : t -> int

val tokens : t -> float
(** Current bucket level (tests). *)
