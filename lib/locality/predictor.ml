open Zeus_store

type mode = Frequency | Directional | Auto

type config = { mode : mode; history : int; min_confidence : float }

let default_config = { mode = Auto; history = 4; min_confidence = 0.55 }

type prediction = { target : Types.node_id; confidence : float; directional : bool }

type track = {
  mutable owners : (Types.node_id * float) list;  (* newest first, ≤ history *)
  mutable dwell_us : float option;                (* EWMA inter-migration gap *)
}

type t = {
  config : config;
  nodes : int;
  tracks : (Types.key, track) Hashtbl.t;
}

let create ?(config = default_config) ~nodes () =
  { config; nodes; tracks = Hashtbl.create 256 }

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let note_owner t ~key ~owner ~now =
  let tr =
    match Hashtbl.find_opt t.tracks key with
    | Some tr -> tr
    | None ->
      let tr = { owners = []; dwell_us = None } in
      (* the track table inherits the access log's bound rationale: keys
         whose moves we no longer remember simply fall back to frequency *)
      if Hashtbl.length t.tracks >= 8_192 then Hashtbl.reset t.tracks;
      Hashtbl.replace t.tracks key tr;
      tr
  in
  match tr.owners with
  | (prev, _) :: _ when prev = owner -> ()  (* re-confirmation, no move *)
  | (_, at) :: _ ->
    let gap = now -. at in
    tr.dwell_us <-
      Some (match tr.dwell_us with None -> gap | Some d -> (0.5 *. d) +. (0.5 *. gap));
    tr.owners <- take t.config.history ((owner, now) :: tr.owners)
  | [] -> tr.owners <- [ (owner, now) ]

let directional_prediction t key =
  match Hashtbl.find_opt t.tracks key with
  | None -> None
  | Some tr -> (
    match tr.owners with
    | (o3, _) :: (o2, _) :: rest ->
      let d1 = (o3 - o2 + t.nodes) mod t.nodes in
      let consistent =
        match rest with
        | (o1, _) :: _ -> (o2 - o1 + t.nodes) mod t.nodes = d1
        | [] -> false
      in
      if d1 <> 0 && consistent then
        (* two consecutive moves with the same delta: strong pattern *)
        Some { target = (o3 + d1) mod t.nodes; confidence = 0.9; directional = true }
      else None
    | _ -> None)

let frequency_prediction ~log ~key ~now =
  match Access_log.top_node log ~key ~now with
  | None -> None
  | Some (node, r) ->
    let tot = Access_log.total log ~key ~now in
    if tot <= 0.0 then None
    else Some { target = node; confidence = r /. tot; directional = false }

let predict t ~log ~key ~now =
  let p =
    match t.config.mode with
    | Directional -> directional_prediction t key
    | Frequency -> frequency_prediction ~log ~key ~now
    | Auto -> (
      match directional_prediction t key with
      | Some _ as p -> p
      | None -> frequency_prediction ~log ~key ~now)
  in
  match p with
  | Some pr when pr.confidence >= t.config.min_confidence -> p
  | Some _ | None -> None

let expected_dwell_us t ~key =
  match Hashtbl.find_opt t.tracks key with Some tr -> tr.dwell_us | None -> None

let forget t ~key = Hashtbl.remove t.tracks key
let tracked t = Hashtbl.length t.tracks
