open Zeus_store

type config = { half_life_us : float; capacity : int }

let default_config = { half_life_us = 5_000.0; capacity = 4_096 }

type entry = {
  ewma : float array;          (* one decayed rate per node *)
  mutable last : float;        (* time of the last decay application *)
  mutable last_node : Types.node_id;
}

type t = {
  config : config;
  nodes : int;
  entries : (Types.key, entry) Hashtbl.t;
}

let create ?(config = default_config) ~nodes () =
  { config; nodes; entries = Hashtbl.create (min config.capacity 256) }

let decay_factor t ~from_ ~to_ =
  if to_ <= from_ then 1.0
  else Float.exp (-.Float.log 2.0 *. (to_ -. from_) /. t.config.half_life_us)

let refresh t e ~now =
  let f = decay_factor t ~from_:e.last ~to_:now in
  if f < 1.0 then begin
    for n = 0 to t.nodes - 1 do
      e.ewma.(n) <- e.ewma.(n) *. f
    done;
    e.last <- Float.max e.last now
  end

let entry_total e = Array.fold_left ( +. ) 0.0 e.ewma

(* Eviction: drop everything that has decayed to noise; if that frees
   nothing (all tracked keys genuinely warm), drop the single coldest.
   O(capacity), runs only when a new key would exceed the bound. *)
let evict t ~now =
  let doomed = ref [] in
  Hashtbl.iter
    (fun key e ->
      refresh t e ~now;
      if entry_total e < 0.05 then doomed := key :: !doomed)
    t.entries;
  List.iter (Hashtbl.remove t.entries) !doomed;
  if Hashtbl.length t.entries >= t.config.capacity then begin
    let coldest = ref None in
    Hashtbl.iter
      (fun key e ->
        let tot = entry_total e in
        match !coldest with
        | Some (_, best) when best <= tot -> ()
        | _ -> coldest := Some (key, tot))
      t.entries;
    match !coldest with Some (key, _) -> Hashtbl.remove t.entries key | None -> ()
  end

let record t ~key ~node ~now =
  match Hashtbl.find_opt t.entries key with
  | Some e ->
    refresh t e ~now;
    e.ewma.(node) <- e.ewma.(node) +. 1.0;
    e.last_node <- node
  | None ->
    if Hashtbl.length t.entries >= t.config.capacity then evict t ~now;
    let e = { ewma = Array.make t.nodes 0.0; last = now; last_node = node } in
    e.ewma.(node) <- 1.0;
    Hashtbl.replace t.entries key e

let rate t ~key ~node ~now =
  match Hashtbl.find_opt t.entries key with
  | None -> 0.0
  | Some e -> e.ewma.(node) *. decay_factor t ~from_:e.last ~to_:now

let rates t ~key ~now =
  match Hashtbl.find_opt t.entries key with
  | None -> Array.make t.nodes 0.0
  | Some e ->
    let f = decay_factor t ~from_:e.last ~to_:now in
    Array.map (fun r -> r *. f) e.ewma

let total t ~key ~now =
  match Hashtbl.find_opt t.entries key with
  | None -> 0.0
  | Some e -> entry_total e *. decay_factor t ~from_:e.last ~to_:now

let top_node t ~key ~now =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some e ->
    let f = decay_factor t ~from_:e.last ~to_:now in
    let best = ref None in
    for n = 0 to t.nodes - 1 do
      let r = e.ewma.(n) *. f in
      match !best with
      | Some (_, br) when br >= r -> ()
      | _ -> if r > 0.0 then best := Some (n, r)
    done;
    !best

let last_accessor t ~key =
  Option.map (fun e -> e.last_node) (Hashtbl.find_opt t.entries key)

let tracked t = Hashtbl.length t.entries
let iter t f = Hashtbl.iter (fun key _ -> f key) t.entries
