open Zeus_store

type config = {
  hysteresis : float;
  min_rate : float;
  cooldown_us : float;
  pingpong_window_us : float;
  pingpong_moves : int;
  pin_us : float;
  read_replicate_ratio : float;
}

let default_config =
  {
    hysteresis = 2.0;
    min_rate = 0.5;
    cooldown_us = 200.0;
    pingpong_window_us = 2_000.0;
    pingpong_moves = 4;
    pin_us = 20_000.0;
    read_replicate_ratio = 0.6;
  }

type decision =
  | Stay
  | Prefetch of { target : Types.node_id; directional : bool }
  | Replicate of Types.node_id
  | Pin of Types.node_id

let pp_decision ppf = function
  | Stay -> Format.pp_print_string ppf "stay"
  | Prefetch { target; directional } ->
    Format.fprintf ppf "prefetch(n%d%s)" target (if directional then ",dir" else "")
  | Replicate n -> Format.fprintf ppf "replicate(n%d)" n
  | Pin n -> Format.fprintf ppf "pin(n%d)" n

type kstate = {
  mutable moves : (Types.node_id * float) list;  (* newest first, bounded *)
  mutable n_moves : int;
  mutable last_move : float;
  mutable pinned_until : float;
  mutable pin_target : Types.node_id;
  mutable readers : Types.node_id list;          (* read-only interest *)
}

type t = {
  config : config;
  keys : (Types.key, kstate) Hashtbl.t;
  mutable n_pins : int;
}

let create ?(config = default_config) () =
  { config; keys = Hashtbl.create 256; n_pins = 0 }

let kstate t key =
  match Hashtbl.find_opt t.keys key with
  | Some s -> s
  | None ->
    let s =
      {
        moves = [];
        n_moves = 0;
        last_move = neg_infinity;
        pinned_until = neg_infinity;
        pin_target = -1;
        readers = [];
      }
    in
    if Hashtbl.length t.keys >= 8_192 then Hashtbl.reset t.keys;
    Hashtbl.replace t.keys key s;
    s

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let note_migration t ~key ~owner ~now =
  let s = kstate t key in
  (match s.moves with
  | (prev, _) :: _ when prev = owner -> ()
  | _ ->
    s.moves <- take 8 ((owner, now) :: s.moves);
    s.n_moves <- s.n_moves + 1;
    s.last_move <- now;
    (* a node that takes ownership is a writer, not a reader candidate *)
    s.readers <- List.filter (fun n -> n <> owner) s.readers;
    (* ping-pong: enough recent moves bouncing between at most two nodes
       declares thrash; pin where the key landed — executing the pin then
       costs zero further migrations, and the caller re-routes traffic. *)
    let recent =
      List.filter (fun (_, at) -> now -. at <= t.config.pingpong_window_us) s.moves
    in
    if List.length recent >= t.config.pingpong_moves then begin
      let contenders =
        List.sort_uniq compare (List.map (fun (n, _) -> n) recent)
      in
      if List.length contenders <= 2 && now >= s.pinned_until then begin
        s.pinned_until <- now +. t.config.pin_us;
        s.pin_target <- owner;
        t.n_pins <- t.n_pins + 1
      end
    end)

let note_read_interest t ~key ~node =
  let s = kstate t key in
  if not (List.mem node s.readers) then s.readers <- node :: s.readers

let pinned t ~key ~now =
  match Hashtbl.find_opt t.keys key with
  | Some s when now < s.pinned_until -> Some s.pin_target
  | Some _ | None -> None

let decide t ~predictor ~log ~key ~holder ~now =
  match pinned t ~key ~now with
  | Some target -> Pin target
  | None -> (
    let s = Hashtbl.find_opt t.keys key in
    let in_cooldown =
      match s with
      | Some s -> now -. s.last_move < t.config.cooldown_us
      | None -> false
    in
    if in_cooldown then Stay
    else
      match Predictor.predict predictor ~log ~key ~now with
      | None -> Stay
      | Some { Predictor.target; directional; _ } ->
        if target = holder then Stay
        else if directional then Prefetch { target; directional = true }
        else begin
          let r_target = Access_log.rate log ~key ~node:target ~now in
          let r_holder = Access_log.rate log ~key ~node:holder ~now in
          let tot = Access_log.total log ~key ~now in
          if r_target < t.config.min_rate then Stay
          else if
            (match s with Some s -> List.mem target s.readers | None -> false)
            && tot > 0.0
            && r_target /. tot >= t.config.read_replicate_ratio
          then Replicate target
          else if r_target >= t.config.hysteresis *. Float.max r_holder 0.05 then
            Prefetch { target; directional = false }
          else Stay
        end)

let migrations t ~key =
  match Hashtbl.find_opt t.keys key with Some s -> s.n_moves | None -> 0

let pins_set t = t.n_pins
