module Sim = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Tspan = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Transport = Zeus_net.Transport
module Own = Zeus_ownership
open Zeus_store

type hint_kind = Hint_own | Hint_read

type Zeus_net.Msg.payload +=
  | L_hint of { key : Types.key; kind : hint_kind; from_ : Types.node_id }

type config = {
  enabled : bool;
  log : Access_log.config;
  predictor : Predictor.config;
  planner : Planner.config;
  migrator : Migrator.config;
  idle_gap_us : float;
}

let default_config =
  {
    enabled = false;
    log = Access_log.default_config;
    predictor = Predictor.default_config;
    planner = Planner.default_config;
    migrator = Migrator.default_config;
    idle_gap_us = 60.0;
  }

let enabled_default = { default_config with enabled = true }

type t = {
  config : config;
  node : Types.node_id;
  engine : Sim.t;
  transport : Transport.t;
  is_owner : Types.key -> bool;
  log : Access_log.t;
  predictor : Predictor.t;
  planner : Planner.t;
  migrator : Migrator.t;
  (* Typed metric handles over a per-engine registry. *)
  metrics : Metrics.t;
  tspans : Tspan.t;
  c_prefetch_hits : Metrics.Counter.h;
  c_prefetch_misses : Metrics.Counter.h;
  c_hints_sent : Metrics.Counter.h;
  c_replicate_hints : Metrics.Counter.h;
  c_hints_received : Metrics.Counter.h;
  c_replicate_hints_received : Metrics.Counter.h;
  c_migrations_observed : Metrics.Counter.h;
  c_plans : Metrics.Counter.h;
  c_pins_applied : Metrics.Counter.h;
  last_access : (Types.key, float) Hashtbl.t;   (* local accesses on owned keys *)
  idle_armed : (Types.key, unit) Hashtbl.t;     (* an idle check is scheduled *)
  hinted : (Types.key, unit) Hashtbl.t;         (* hinted this ownership tenure *)
  prefetched : (Types.key, unit) Hashtbl.t;     (* won by prefetch, unused yet *)
  reacted_pins : (Types.key, float) Hashtbl.t;  (* pin deadlines already acted on *)
  mutable on_pin : (key:Types.key -> target:Types.node_id -> unit) option;
}

let create ?telemetry ~config ~node ~nodes ~engine ~transport ~agent ~is_owner () =
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let metrics = Metrics.create () in
  {
    config;
    node;
    engine;
    transport;
    is_owner;
    log = Access_log.create ~config:config.log ~nodes ();
    predictor = Predictor.create ~config:config.predictor ~nodes ();
    planner = Planner.create ~config:config.planner ();
    migrator = Migrator.create ~config:config.migrator ~agent ~engine ();
    metrics;
    tspans = Hub.trace hub;
    c_prefetch_hits = Metrics.Counter.v metrics "locality.prefetch_hits";
    c_prefetch_misses = Metrics.Counter.v metrics "locality.prefetch_misses";
    c_hints_sent = Metrics.Counter.v metrics "locality.hints_sent";
    c_replicate_hints = Metrics.Counter.v metrics "locality.replicate_hints";
    c_hints_received = Metrics.Counter.v metrics "locality.hints_received";
    c_replicate_hints_received =
      Metrics.Counter.v metrics "locality.replicate_hints_received";
    c_migrations_observed = Metrics.Counter.v metrics "locality.migrations_observed";
    c_plans = Metrics.Counter.v metrics "locality.plans";
    c_pins_applied = Metrics.Counter.v metrics "locality.pins_applied";
    last_access = Hashtbl.create 256;
    idle_armed = Hashtbl.create 64;
    hinted = Hashtbl.create 64;
    prefetched = Hashtbl.create 32;
    reacted_pins = Hashtbl.create 16;
    on_pin = None;
  }

let access_log t = t.log
let predictor t = t.predictor
let planner t = t.planner
let migrator t = t.migrator
let metrics t = t.metrics
let counters t = Metrics.counters t.metrics

let prefetch_hits t = Metrics.Counter.get t.c_prefetch_hits
let prefetch_misses t = Metrics.Counter.get t.c_prefetch_misses
let hints_sent t = Metrics.Counter.get t.c_hints_sent
let migrations_observed t = Metrics.Counter.get t.c_migrations_observed

let set_on_pin t f = t.on_pin <- Some f

let route_for_key t key = Planner.pinned t.planner ~key ~now:(Sim.now t.engine)

let send_hint t ~dst ~key ~kind =
  Metrics.Counter.incr
    (match kind with Hint_own -> t.c_hints_sent | Hint_read -> t.c_replicate_hints);
  Transport.send t.transport ~src:t.node ~dst ~size:24
    (L_hint { key; kind; from_ = t.node })

(* ---------- planning: consult the planner once a held key goes idle ------ *)

let plan_key t key =
  if t.is_owner key && not (Hashtbl.mem t.hinted key) then begin
    let now = Sim.now t.engine in
    Metrics.Counter.incr t.c_plans;
    match
      Planner.decide t.planner ~predictor:t.predictor ~log:t.log ~key ~holder:t.node ~now
    with
    | Planner.Stay | Planner.Pin _ -> ()
      (* a pin is acted on where the key lands (note_owner_change); while
         pinned here, routing keeps the traffic here — nothing to execute *)
    | Planner.Prefetch { target; _ } when target <> t.node ->
      Hashtbl.replace t.hinted key ();
      send_hint t ~dst:target ~key ~kind:Hint_own
    | Planner.Prefetch _ -> ()
    | Planner.Replicate target when target <> t.node ->
      Hashtbl.replace t.hinted key ();
      send_hint t ~dst:target ~key ~kind:Hint_read
    | Planner.Replicate _ -> ()
  end

(* A check that lands within [slop] of the idle deadline counts as idle:
   re-arming by the exact float remainder can round to a zero delay and
   refire at the same instant forever. *)
let idle_slop_us = 0.5

let rec arm_idle_check t key ~after =
  if not (Hashtbl.mem t.idle_armed key) then begin
    Hashtbl.replace t.idle_armed key ();
    ignore
      (Sim.schedule t.engine ~after (fun () ->
           Hashtbl.remove t.idle_armed key;
           match Hashtbl.find_opt t.last_access key with
           | None -> ()
           | Some last ->
             let remaining =
               t.config.idle_gap_us -. (Sim.now t.engine -. last)
             in
             if remaining <= idle_slop_us then plan_key t key
             else arm_idle_check t key ~after:remaining))
  end

(* ---------- event feeds --------------------------------------------------- *)

let note_local_access t ~key ~write =
  let now = Sim.now t.engine in
  Access_log.record t.log ~key ~node:t.node ~now;
  if Hashtbl.mem t.prefetched key then begin
    Hashtbl.remove t.prefetched key;
    Metrics.Counter.incr t.c_prefetch_hits
  end;
  if write then begin
    Hashtbl.replace t.last_access key now;
    arm_idle_check t key ~after:t.config.idle_gap_us
  end

let note_request t ~key ~kind ~requester =
  let now = Sim.now t.engine in
  Access_log.record t.log ~key ~node:requester ~now;
  match kind with
  | Own.Messages.Add_reader -> Planner.note_read_interest t.planner ~key ~node:requester
  | Own.Messages.Acquire | Own.Messages.Remove_reader _ -> ()

let note_owner_change t ~key ~owner =
  let now = Sim.now t.engine in
  Metrics.Counter.incr t.c_migrations_observed;
  Predictor.note_owner t.predictor ~key ~owner ~now;
  Planner.note_migration t.planner ~key ~owner ~now;
  if owner <> t.node then begin
    Hashtbl.remove t.hinted key;
    Hashtbl.remove t.last_access key;
    if Hashtbl.mem t.prefetched key then begin
      Hashtbl.remove t.prefetched key;
      Metrics.Counter.incr t.c_prefetch_misses
    end
  end
  else Hashtbl.remove t.hinted key;
  (* A fresh pin whose target is this node re-routes at the source. *)
  match Planner.pinned t.planner ~key ~now with
  | Some target when target = t.node -> (
    let deadline_known =
      match Hashtbl.find_opt t.reacted_pins key with
      | Some d -> now < d
      | None -> false
    in
    if not deadline_known then begin
      Hashtbl.replace t.reacted_pins key (now +. t.config.planner.Planner.pin_us);
      Metrics.Counter.incr t.c_pins_applied;
      match t.on_pin with Some f -> f ~key ~target | None -> ()
    end)
  | Some _ | None -> ()

(* ---------- hint handling ------------------------------------------------- *)

let handle t ~src:_ = function
  | L_hint { key; kind; from_ } ->
    (match kind with
    | Hint_own ->
      Metrics.Counter.incr t.c_hints_received;
      let pinned_elsewhere =
        match route_for_key t key with Some n -> n <> t.node | None -> false
      in
      if (not pinned_elsewhere) && not (t.is_owner key) then begin
        (* Span per prefetch, linked back to the hinting node (whose plan —
           triggered by its transactions on the key — sent us here). *)
        let sp =
          Tspan.start_span t.tspans ~cat:"locality" ~pid:t.node
            ~args:
              [ ("key", string_of_int key); ("hinted_by", string_of_int from_) ]
            "prefetch"
        in
        let issued =
          Migrator.prefetch ~parent:sp t.migrator ~key ~k:(fun result ->
              (match result with
              | Ok () ->
                Hashtbl.replace t.prefetched key ();
                Tspan.finish t.tspans ~args:[ ("result", "won") ] sp
              | Error _ -> Tspan.finish t.tspans ~args:[ ("result", "refused") ] sp))
        in
        if not issued then
          Tspan.finish t.tspans ~args:[ ("result", "rate_limited") ] sp
      end
    | Hint_read ->
      Metrics.Counter.incr t.c_replicate_hints_received;
      if not (t.is_owner key) then
        ignore (Migrator.add_reader t.migrator ~key ~k:(fun _ -> ())));
    true
  | _ -> false
