(** Next-accessor prediction.

    Two modes, combined per key:

    - {e directional} (mobility-aware): the predictor watches each key's
      owner trajectory.  A key whose last ownership moves step by a constant
      node delta (a commuter crossing tiles: shard [h] → [h+1] → [h+2]) is
      predicted to continue in that direction, with a dwell-time estimate
      (EWMA of the observed inter-migration intervals) saying {e when};
    - {e frequency}: otherwise the hottest accessor in the
      {!Access_log} is the predicted next accessor, with confidence equal to
      its share of the key's total rate.

    The predictor is a deterministic function of the fed event sequence —
    it draws no randomness, so two replicas fed the same events agree. *)

open Zeus_store

type mode = Frequency | Directional | Auto
(** [Auto] tries the directional pattern first and falls back to frequency. *)

type config = {
  mode : mode;
  history : int;          (** owner moves remembered per key (≥ 2) *)
  min_confidence : float; (** predictions below this are suppressed *)
}

val default_config : config

type prediction = {
  target : Types.node_id;
  confidence : float;       (** in [0, 1] *)
  directional : bool;       (** [true] when the trajectory pattern fired *)
}

type t

val create : ?config:config -> nodes:int -> unit -> t

val note_owner : t -> key:Types.key -> owner:Types.node_id -> now:float -> unit
(** Feed an observed ownership change (from the ownership agent). *)

val predict : t -> log:Access_log.t -> key:Types.key -> now:float -> prediction option
(** Predicted next accessor of [key], excluding nobody: callers compare
    [target] against the current owner themselves. *)

val expected_dwell_us : t -> key:Types.key -> float option
(** EWMA of the key's inter-migration interval; [None] before two moves. *)

val forget : t -> key:Types.key -> unit
val tracked : t -> int
