(** Closed-loop load driver.

    Models the paper's setup of "enough colocated clients to saturate each
    evaluated system" (§8): every app thread of every participating node
    issues transactions back-to-back.  Only completions inside the
    measurement window (after warm-up) are counted.

    {b Retry.}  By default an aborted transaction is dropped (counted and
    replaced by a fresh one) — the historical behaviour, and the right one
    for measuring raw abort rates.  Passing [retry] makes the driver
    re-issue an aborted transaction up to [max_attempts] total issues,
    spaced by capped exponential backoff ([base_us * 2^(attempt-1)], capped
    at [cap_us]) with a deterministic avalanche-hash jitter of the
    (node, thread, seq, attempt) identity — no rng draw, so a retrying run
    perturbs no other seeded decision.  A transaction that eventually
    commits is counted {e once}, with latency measured from its first
    issue; only a transaction that exhausts its attempts counts as
    aborted.  Each re-issue bumps the [driver.retries] counter (registered
    on the cluster hub only when retrying is on). *)

(** [max_attempts] is total issues per logical transaction (>= 1). *)
type retry = { max_attempts : int; base_us : float; cap_us : float }

val default_retry : retry
(** 3 attempts, 20 µs base, 400 µs cap. *)

type result = {
  committed : int;
  aborted : int;       (** logical transactions that exhausted their attempts *)
  retries : int;       (** re-issues inside the measurement window *)
  duration_us : float;
  mtps : float;        (** committed transactions per µs × 10⁶ / 10⁶ = Mtps *)
  abort_rate : float;
  lat_p50_us : float;  (** committed-transaction latency percentiles *)
  lat_p99_us : float;
}

val pp_result : Format.formatter -> result -> unit

val run :
  Zeus_core.Cluster.t ->
  ?nodes:int list ->
  ?threads:int ->
  ?retry:retry ->
  warmup_us:float ->
  duration_us:float ->
  issue:(Zeus_core.Node.t -> thread:int -> seq:int -> (bool -> unit) -> unit) ->
  unit ->
  result
(** [issue node ~thread ~seq done_] must run exactly one transaction and
    call [done_ committed] at its completion.  [nodes] defaults to all,
    [threads] to the configured app threads per node, [retry] to none. *)
