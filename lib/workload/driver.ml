module Engine = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Hub = Zeus_telemetry.Hub
module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node

type retry = { max_attempts : int; base_us : float; cap_us : float }

let default_retry = { max_attempts = 3; base_us = 20.0; cap_us = 400.0 }

type result = {
  committed : int;
  aborted : int;
  retries : int;
  duration_us : float;
  mtps : float;
  abort_rate : float;
  lat_p50_us : float;
  lat_p99_us : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%.3f Mtps (%d committed, %d aborted, %.1f%% aborts, p50 %.1fus, p99 %.1fus)"
    r.mtps r.committed r.aborted (100.0 *. r.abort_rate) r.lat_p50_us r.lat_p99_us

(* Pure avalanche hash of the attempt identity, as in the transport's
   retransmission backoff: deterministic (same seed, same schedule) yet
   de-synchronizing threads whose aborts collided at the same instant. *)
let retry_jitter ~node ~thread ~seq ~attempt =
  let h =
    (node * 0x9e3779b1) lxor (thread * 0x85ebca6b) lxor (seq * 0xc2b2ae35)
    lxor ((attempt + 1) * 0x27d4eb2f)
  in
  float_of_int (h land 0xffff) /. 65536.0

let retry_delay r ~node ~thread ~seq ~attempt =
  let raw = r.base_us *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min raw r.cap_us in
  capped *. (1.0 +. (0.25 *. retry_jitter ~node ~thread ~seq ~attempt))

let run cluster ?nodes ?threads ?retry ~warmup_us ~duration_us ~issue () =
  let engine = Cluster.engine cluster in
  let config = Cluster.config cluster in
  let node_ids =
    match nodes with
    | Some ns -> ns
    | None -> List.init (Cluster.nodes cluster) (fun i -> i)
  in
  let threads = Option.value threads ~default:config.Zeus_core.Config.app_threads in
  let t0 = Engine.now engine in
  let start = t0 +. warmup_us in
  let stop = start +. duration_us in
  let committed = ref 0 and aborted = ref 0 and retried = ref 0 in
  (* Registered on the cluster hub only when retrying is on, so a plain
     run's counter registry is byte-identical to before. *)
  let c_retries =
    match retry with
    | None -> None
    | Some _ ->
      Some (Metrics.Counter.v (Hub.metrics (Cluster.telemetry cluster)) "driver.retries")
  in
  (* One standalone histogram per run: log-scale buckets survive past the
     reservoir cap, and a fresh instance needs no reset between runs. *)
  let latencies = Metrics.Histogram.create "driver.latency_us" in
  List.iter
    (fun id ->
      let node = Cluster.node cluster id in
      for thread = 0 to threads - 1 do
        let seq = ref 0 in
        let rec loop () =
          if Engine.now engine < stop && Node.is_alive node then begin
            let s = !seq in
            incr seq;
            let issued_at = Engine.now engine in
            (* [attempt] counts issues of this logical transaction; a retried
               commit is counted once, with latency from the first issue. *)
            let rec submit attempt =
              issue node ~thread ~seq:s (fun ok ->
                  let now = Engine.now engine in
                  let counting = now >= start && now < stop in
                  if ok then begin
                    if counting then begin
                      incr committed;
                      Metrics.Histogram.observe latencies (now -. issued_at)
                    end;
                    loop ()
                  end
                  else
                    match retry with
                    | Some r when attempt < r.max_attempts && now < stop ->
                      if counting then incr retried;
                      Option.iter Metrics.Counter.incr c_retries;
                      let after =
                        retry_delay r ~node:id ~thread ~seq:s ~attempt
                      in
                      ignore
                        (Engine.schedule engine ~after (fun () ->
                             if Node.is_alive node then submit (attempt + 1)
                             else loop ()))
                    | _ ->
                      if counting then incr aborted;
                      loop ())
            in
            submit 1
          end
        in
        (* Stagger thread start to avoid artificial phase locking. *)
        ignore
          (Engine.schedule engine
             ~after:(0.01 *. float_of_int ((id * threads) + thread))
             loop)
      done)
    node_ids;
  Engine.run ~until:stop engine;
  (* Drain in-flight transactions and replication without counting them. *)
  Engine.run ~until:(stop +. 5_000.0) engine;
  let c = !committed and a = !aborted in
  {
    committed = c;
    aborted = a;
    retries = !retried;
    duration_us;
    mtps = float_of_int c /. duration_us;
    abort_rate =
      (if c + a = 0 then 0.0 else float_of_int a /. float_of_int (c + a));
    lat_p50_us = Metrics.Histogram.percentile latencies 50.0;
    lat_p99_us = Metrics.Histogram.percentile latencies 99.0;
  }
