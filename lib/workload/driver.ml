module Engine = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node

type result = {
  committed : int;
  aborted : int;
  duration_us : float;
  mtps : float;
  abort_rate : float;
  lat_p50_us : float;
  lat_p99_us : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%.3f Mtps (%d committed, %d aborted, %.1f%% aborts, p50 %.1fus, p99 %.1fus)"
    r.mtps r.committed r.aborted (100.0 *. r.abort_rate) r.lat_p50_us r.lat_p99_us

let run cluster ?nodes ?threads ~warmup_us ~duration_us ~issue () =
  let engine = Cluster.engine cluster in
  let config = Cluster.config cluster in
  let node_ids =
    match nodes with
    | Some ns -> ns
    | None -> List.init (Cluster.nodes cluster) (fun i -> i)
  in
  let threads = Option.value threads ~default:config.Zeus_core.Config.app_threads in
  let t0 = Engine.now engine in
  let start = t0 +. warmup_us in
  let stop = start +. duration_us in
  let committed = ref 0 and aborted = ref 0 in
  (* One standalone histogram per run: log-scale buckets survive past the
     reservoir cap, and a fresh instance needs no reset between runs. *)
  let latencies = Metrics.Histogram.create "driver.latency_us" in
  List.iter
    (fun id ->
      let node = Cluster.node cluster id in
      for thread = 0 to threads - 1 do
        let seq = ref 0 in
        let rec loop () =
          if Engine.now engine < stop && Node.is_alive node then begin
            let s = !seq in
            incr seq;
            let issued_at = Engine.now engine in
            issue node ~thread ~seq:s (fun ok ->
                let now = Engine.now engine in
                if now >= start && now < stop then begin
                  if ok then begin
                    incr committed;
                    Metrics.Histogram.observe latencies (now -. issued_at)
                  end
                  else incr aborted
                end;
                loop ())
          end
        in
        (* Stagger thread start to avoid artificial phase locking. *)
        ignore
          (Engine.schedule engine
             ~after:(0.01 *. float_of_int ((id * threads) + thread))
             loop)
      done)
    node_ids;
  Engine.run ~until:stop engine;
  (* Drain in-flight transactions and replication without counting them. *)
  Engine.run ~until:(stop +. 5_000.0) engine;
  let c = !committed and a = !aborted in
  {
    committed = c;
    aborted = a;
    duration_us;
    mtps = float_of_int c /. duration_us;
    abort_rate =
      (if c + a = 0 then 0.0 else float_of_int a /. float_of_int (c + a));
    lat_p50_us = Metrics.Histogram.percentile latencies 50.0;
    lat_p99_us = Metrics.Histogram.percentile latencies 99.0;
  }
