(** Transport ablation: batched vs unbatched reliable messaging.

    The paper's DPDK messaging layer batches protocol messages per peer and
    amortizes acknowledgements; the legacy simulator transport sent one
    frame per protocol message plus one dedicated 16-byte ack each.  This
    experiment runs the same workloads under both transports and reports
    the per-transaction message, byte, and simulator-event budgets:

    - {e Smallbank}, 3 nodes, default fabric — the acceptance workload:
      batching must cut fabric messages/txn by ≥ 30% without reducing
      committed throughput;
    - {e handover} (fig. 7's workload, 3 nodes, 2.5% handovers) — a mix of
      commit replication and ownership arbitration fan-outs.

    Events dispatched per committed transaction is the simulator's
    wall-clock proxy: per-message retransmit timers and per-frame delivery
    events dominate the heap, so batching shows up directly there. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module W = Zeus_workload

type arm = {
  committed : int;
  mtps : float;
  abort_rate : float;
  p50 : float;
  p99 : float;
  messages : int;  (** fabric frames in the measurement window *)
  bytes : int;
  events : int;  (** simulator events dispatched in the window *)
  retransmissions : int;
  frames : int;  (** transport data frames (whole run) *)
  payloads : int;  (** protocol payloads carried (whole run) *)
  mean_occupancy : float;  (** payloads per data frame *)
  piggybacked_acks : int;
  standalone_acks : int;
}

type results = {
  quick : bool;
  smallbank : arm * arm;  (** unbatched, batched *)
  handover : arm * arm;
}

let per_txn v a = if a.committed = 0 then 0.0 else float_of_int v /. float_of_int a.committed
let msgs_per_txn a = per_txn a.messages a
let bytes_per_txn a = per_txn a.bytes a
let events_per_txn a = per_txn a.events a

(* The batched-Smallbank arm's cluster (the acceptance workload) — its hub
   feeds the per-phase breakdown table.  Assigned only after [compute]'s
   sweep so the arms themselves stay sweep-pure (see sweep.ml). *)
let phase_cluster = ref None

(* Run one arm: build the cluster, install the workload, and measure the
   fabric/engine deltas over the driver's measurement window.  Returns the
   arm and its cluster (for the phase-breakdown table). *)
let measure ~config ~warmup_us ~duration_us ~setup =
  let cluster = Cluster.create ~config () in
  let eng = Cluster.engine cluster in
  let fab = Cluster.fabric cluster in
  let issue = setup cluster in
  let msgs0 = ref 0 and bytes0 = ref 0 and events0 = ref 0 and rtx0 = ref 0 in
  let msgs1 = ref 0 and bytes1 = ref 0 and events1 = ref 0 and rtx1 = ref 0 in
  let snap (m, b, ev, rt) =
    m := Fabric.messages_sent fab;
    b := Fabric.bytes_sent fab;
    ev := Engine.events_dispatched eng;
    rt := Transport.retransmissions (Cluster.transport cluster)
  in
  ignore (Engine.schedule eng ~after:warmup_us (fun () -> snap (msgs0, bytes0, events0, rtx0)));
  ignore
    (Engine.schedule eng ~after:(warmup_us +. duration_us) (fun () ->
         snap (msgs1, bytes1, events1, rtx1)));
  let r = W.Driver.run cluster ~warmup_us ~duration_us ~issue () in
  let st = Transport.stats (Cluster.transport cluster) in
  {
    committed = r.W.Driver.committed;
    mtps = r.W.Driver.mtps;
    abort_rate = r.W.Driver.abort_rate;
    p50 = r.W.Driver.lat_p50_us;
    p99 = r.W.Driver.lat_p99_us;
    messages = !msgs1 - !msgs0;
    bytes = !bytes1 - !bytes0;
    events = !events1 - !events0;
    retransmissions = !rtx1 - !rtx0;
    frames = st.Transport.frames;
    payloads = st.Transport.payloads;
    mean_occupancy = st.Transport.mean_occupancy;
    piggybacked_acks = st.Transport.piggybacked_acks;
    standalone_acks = st.Transport.standalone_acks;
  },
  cluster

let smallbank_setup (s : Exp.scale) cluster =
  let config = Cluster.config cluster in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w =
    W.Smallbank.create ~accounts_per_node:s.Exp.objects_per_node
      ~nodes:config.Config.nodes ~remote_frac:0.0 rng
  in
  Cluster.populate_n cluster ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  fun node ~thread ~seq:_ done_ ->
    W.Spec.run_on_zeus node ~thread
      (W.Smallbank.gen w ~home:(Node.id node))
      (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed))

let handover_setup (s : Exp.scale) cluster =
  let config = Cluster.config cluster in
  let nodes = config.Config.nodes in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let users_per_node = s.Exp.objects_per_node in
  let stations_per_node = max 20 (users_per_node / 200) in
  let w =
    W.Handover.create ~users_per_node ~stations_per_node ~nodes ~handover_frac:0.025
      ~remote_handover_frac:0.3 rng
  in
  Cluster.populate_n cluster ~n:(W.Handover.total_keys w)
    ~owner_of:(fun k -> W.Handover.home_of_key w k)
    (fun k ->
      Bytes.copy
        (if W.Handover.is_user_key w k then W.Handover.user_context
         else W.Handover.station_context));
  let stash = Array.make_matrix nodes config.Config.app_threads None in
  fun node ~thread ~seq:_ done_ ->
    let home = Node.id node in
    let spec =
      match stash.(home).(thread) with
      | Some s ->
        stash.(home).(thread) <- None;
        s
      | None ->
        let s1, s2 =
          W.Handover.gen w ~home ~thread ~threads:(Array.length stash.(home))
        in
        stash.(home).(thread) <- s2;
        s1
    in
    W.Spec.run_on_zeus node ~thread spec (fun outcome ->
        done_ (outcome = Zeus_store.Txn.Committed))

let one ~quick ~batched ~setup =
  let s = Exp.scale_of ~quick in
  let transport =
    if batched then Transport.default_config
    else Transport.unbatched Transport.default_config
  in
  let config = { Config.default with Config.nodes = 3; transport } in
  measure ~config ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
    ~setup:(setup s)

let compute ~quick =
  (* Four independent simulations: sweep them (bit-identical to running
     sequentially), then pick the batched-Smallbank cluster for the
     phase-breakdown table. *)
  let arms =
    Sweep.map
      (fun (batched, setup) -> one ~quick ~batched ~setup)
      [
        (false, smallbank_setup);
        (true, smallbank_setup);
        (false, handover_setup);
        (true, handover_setup);
      ]
  in
  match arms with
  | [ (sb_u, _); (sb_b, sb_cluster); (ho_u, _); (ho_b, _) ] ->
    phase_cluster := Some sb_cluster;
    { quick; smallbank = (sb_u, sb_b); handover = (ho_u, ho_b) }
  | _ -> assert false

let last = ref None
let last_results () = !last

let print_pair title (unbatched, batched) =
  let f = Printf.sprintf in
  let delta get =
    let u = get unbatched and b = get batched in
    if u = 0.0 then "n/a" else f "%+.1f%%" (100.0 *. ((b -. u) /. u))
  in
  Exp.print_kv title
    [
      ( "messages/txn",
        f "unbatched %.2f -> batched %.2f (%s)" (msgs_per_txn unbatched)
          (msgs_per_txn batched) (delta msgs_per_txn) );
      ( "bytes/txn",
        f "unbatched %.1f -> batched %.1f (%s)" (bytes_per_txn unbatched)
          (bytes_per_txn batched) (delta bytes_per_txn) );
      ( "events/txn",
        f "unbatched %.1f -> batched %.1f (%s)" (events_per_txn unbatched)
          (events_per_txn batched) (delta events_per_txn) );
      ( "committed Mtps",
        f "unbatched %.3f -> batched %.3f (%s)" unbatched.mtps batched.mtps
          (delta (fun a -> a.mtps)) );
      ( "p50/p99 latency (us)",
        f "unbatched %.1f/%.1f -> batched %.1f/%.1f" unbatched.p50 unbatched.p99
          batched.p50 batched.p99 );
      ( "batch occupancy (payloads/frame)",
        f "%.2f mean (%d payloads in %d frames)" batched.mean_occupancy
          batched.payloads batched.frames );
      ( "acks",
        f "piggybacked %d, standalone %d (unbatched: %d per-message)"
          batched.piggybacked_acks batched.standalone_acks unbatched.standalone_acks );
      ( "retransmissions (window)",
        f "unbatched %d -> batched %d" unbatched.retransmissions batched.retransmissions
      );
    ]

let run ~quick =
  let r = compute ~quick in
  last := Some r;
  print_pair "transport: Smallbank, 3 nodes, default fabric" r.smallbank;
  print_pair "transport: handovers (2.5%, 3 nodes)" r.handover;
  Option.iter
    (Exp.print_phase_breakdown
       "transport: per-phase txn latency (Smallbank, batched)")
    !phase_cluster
