(** Domain-parallel map over independent sweep points (DESIGN.md §12).

    Every sweep point in this directory builds its own {!Zeus_core.Cluster}
    — engine, clock, RNG streams, telemetry hub — from a seed fixed by the
    experiment, so two points share no mutable state and a point's result
    is a pure function of its parameters.  That makes the sweep
    embarrassingly parallel: [map f points] farms the points out to
    [jobs ()] domains and returns the results in input order, bit-identical
    to a sequential run whatever the job count.

    Two rules keep that true (enforced by convention, asserted by the
    [-j 1] vs [-j N] determinism test):

    - point functions must not touch cross-point mutable state (the
      [last_cluster]-style refs the printers use are assigned {e after}
      the map, from its ordered results);
    - point functions must not print — {!Tlog} writes straight to the
      process-wide stdout/stderr, so table rendering stays in the
      sequential caller. *)

(* Process-wide default, set once by the CLI's [-j] flag before any
   experiment runs; individual maps can override. *)
let jobs = ref 1

let set_jobs n = jobs := max 1 n
let get_jobs () = !jobs

let map ?jobs:override f xs =
  let j = match override with Some j -> j | None -> !jobs in
  let items = Array.of_list xs in
  let n = Array.length items in
  if j <= 1 || n <= 1 then List.map f xs
  else begin
    let j = min j n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f items.(i));
        worker ()
      end
    in
    (* The calling domain is one of the workers: [j] jobs means [j - 1]
       spawned domains plus this one. *)
    let spawned = Array.init (j - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end
