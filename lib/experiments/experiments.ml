(** Registry of every reproduced table/figure and ablation (DESIGN.md §3). *)

let all : (string * string * (quick:bool -> unit)) list =
  [
    ("table2", "Table 2: benchmark summary", Table2.run);
    ("verify", "exhaustive model checking of both protocols", Verify.run);
    ("locality", "remote-transaction fractions (Boston, Venmo, TPC-C)", Locality.run);
    ("predictive", "locality engine: reactive vs predictive placement", Predictive.run);
    ("fig7", "Handovers: ideal vs Zeus, 2.5%/5%", Fig7.run);
    ("fig8", "Smallbank vs remote write transactions", Fig8.run);
    ("fig9", "TATP vs remote write transactions", Fig9.run);
    ("fig10-12", "Voter migrations + ownership latency CDF", Voter_figs.run);
    ("fig13-15", "legacy applications: gateway, SCTP, Nginx", Apps_figs.run);
    ("tpcc", "executed TPC-C (extension beyond the paper)", Tpcc_fig.run);
    ("ablations", "pipeline depth, replication degree, read-only, object size", Ablations.run);
    ("transport", "batched vs unbatched reliable transport (messages/bytes/events per txn)", Transport_ab.run);
    ("faults", "Smallbank under follower/owner/directory crashes: dip + recovery time", Faults.run);
    ("detection", "heartbeat period x suspicion threshold: detection latency vs false positives", Detection.run);
    ("perf", "simulator wall-clock harness: events/sec, GC per event, -j sweep scaling", Perf.run);
  ]

let names () = List.map (fun (id, _, _) -> id) all

let run_one ~quick id =
  match List.find_opt (fun (i, _, _) -> i = id) all with
  | Some (_, _, f) ->
    f ~quick;
    true
  | None -> false

let run_all ~quick =
  List.iter
    (fun (_, _, f) ->
      f ~quick;
      Zeus_telemetry.Tlog.flush_info ())
    all
