(** Figure 7: cellular handovers — all-local ideal vs Zeus with 2.5 % and
    5 % handovers, on 3 and 6 nodes. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload

(* A handover is two transactions; [stash] holds the second one so each
   driver slot still runs exactly one transaction. *)
let issue_fn w stash node ~thread done_ =
  let home = Node.id node in
  let spec =
    match stash.(home).(thread) with
    | Some s ->
      stash.(home).(thread) <- None;
      s
    | None ->
      let s1, s2 = W.Handover.gen w ~home ~thread ~threads:(Array.length stash.(home)) in
      stash.(home).(thread) <- s2;
      s1
  in
  W.Spec.run_on_zeus node ~thread spec (fun outcome ->
      done_ (outcome = Zeus_store.Txn.Committed))

(* The most recent point's cluster — its hub feeds the per-phase table. *)
let last_cluster = ref None

(* One sweep point, pure in its parameters (own cluster, own RNG streams,
   no printing, no shared refs) so [Sweep.map] can run points on separate
   domains with bit-identical results. *)
type point = {
  mtps : float;
  committed : int;
  final_clock_us : float;
  events : int;
  cluster : Cluster.t;
}

let point ~quick ~nodes ~handover_frac ~remote_handover_frac =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let users_per_node = s.Exp.objects_per_node in
  let stations_per_node = max 20 (users_per_node / 200) in
  let w =
    W.Handover.create ~users_per_node ~stations_per_node ~nodes ~handover_frac
      ~remote_handover_frac rng
  in
  Cluster.populate_n cluster ~n:(W.Handover.total_keys w)
    ~owner_of:(fun k -> W.Handover.home_of_key w k)
    (fun k ->
      Bytes.copy
        (if W.Handover.is_user_key w k then W.Handover.user_context
         else W.Handover.station_context));
  let threads = config.Config.app_threads in
  let stash = Array.make_matrix nodes threads None in
  let r =
    W.Driver.run cluster ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
      ~issue:(fun node ~thread ~seq:_ done_ -> issue_fn w stash node ~thread done_)
      ()
  in
  let eng = Cluster.engine cluster in
  {
    mtps = r.W.Driver.mtps;
    committed = r.W.Driver.committed;
    final_clock_us = Engine.now eng;
    events = Engine.events_dispatched eng;
    cluster;
  }

let run ~quick =
  let rng = Zeus_sim.Rng.create 7L in
  (* RNG draws happen up front and sequentially; the resulting spec list
     is then mapped (possibly across domains) by [Sweep.map]. *)
  let specs =
    List.concat_map
      (fun nodes ->
        let remote = W.Mobility.remote_handover_fraction ~trips:5_000 ~nodes rng in
        [
          ( Printf.sprintf "all-local ideal (%d nodes)" nodes,
            nodes, 0.025, 0.0 );
          ( Printf.sprintf "Zeus 2.5%% handovers (%d nodes)" nodes,
            nodes, 0.025, remote );
          ( Printf.sprintf "Zeus 5%% handovers (%d nodes)" nodes,
            nodes, 0.05, remote );
        ])
      [ 3; 6 ]
  in
  let points =
    Sweep.map
      (fun (_, nodes, handover_frac, remote_handover_frac) ->
        point ~quick ~nodes ~handover_frac ~remote_handover_frac)
      specs
  in
  (match List.rev points with
  | p :: _ -> last_cluster := Some p.cluster
  | [] -> ());
  let series =
    List.map2
      (fun (label, nodes, _, _) p ->
        { Exp.label; points = [ (float_of_int nodes, p.mtps) ] })
      specs points
  in
  Exp.print_figure
    {
      Exp.id = "fig7";
      title = "Handovers: all-local ideal vs Zeus, 2.5%/5% handovers";
      x_axis = "nodes";
      y_axis = "Mtps";
      series;
      paper =
        [
          "Zeus within 4-9% of the all-local ideal";
          "throughput scales linearly with node count";
        ];
      notes = [ Exp.scale_note ~quick ];
    };
  Option.iter
    (Exp.print_phase_breakdown "fig7: per-phase txn latency (last Zeus point)")
    !last_cluster
