(** Transport ablation: batched vs unbatched reliable messaging on
    Smallbank and the handover workload (messages, bytes, and simulator
    events per committed transaction). *)

type arm = {
  committed : int;
  mtps : float;
  abort_rate : float;
  p50 : float;
  p99 : float;
  messages : int;  (** fabric frames in the measurement window *)
  bytes : int;
  events : int;  (** simulator events dispatched in the window *)
  retransmissions : int;
  frames : int;  (** transport data frames (whole run) *)
  payloads : int;  (** protocol payloads carried (whole run) *)
  mean_occupancy : float;  (** payloads per data frame *)
  piggybacked_acks : int;
  standalone_acks : int;
}

type results = {
  quick : bool;
  smallbank : arm * arm;  (** (unbatched, batched) *)
  handover : arm * arm;
}

val msgs_per_txn : arm -> float
val bytes_per_txn : arm -> float
val events_per_txn : arm -> float

val compute : quick:bool -> results
val run : quick:bool -> unit

val last_results : unit -> results option
(** The most recent [run]'s results — the bench harness reads these to emit
    [BENCH_transport.json]. *)
