(** Performance under failures (§8): Smallbank through crash and recovery.

    The paper's fault experiment kills one replica while the cluster serves
    Smallbank and reports the throughput dip and the time until goodput
    recovers (bounded by detection + lease expiry, ~3 ms here).  Three
    scenarios, one crashed role each, on a 4-node cluster with a 2-replica
    directory (nodes 0 and 1) and replication degree 3:

    - {e follower}: accounts homed on nodes 0–2, node 3 crashes — a pure
      reader replica (it owns nothing and holds no directory).  Reliable
      commits of the keys it backs stall until the view change removes it;
    - {e owner}: nodes 0–1 drive with a remote fraction against accounts
      homed on node 2, which crashes — every transaction on its accounts
      must wait for the view change and then re-arbitrate ownership from a
      surviving replica;
    - {e directory}: accounts homed on nodes 1–3, node 0 crashes — it
      drives no traffic and owns nothing, so the dip isolates the loss of
      a directory replica (ownership arbitration continues on the
      remaining replica after the view change).

    A fourth scenario, {e follower-detected}, repeats the follower crash
    with [membership_mode = Detected]: no oracle announces the crash — the
    survivors' heartbeat detectors must suspect node 3, reach a quorum and
    wait out the lease before the view change, so comparing it against
    {e follower} isolates the price of real end-to-end failure detection.

    A fifth scenario, {e reorder}, crashes nobody: the cluster runs on
    [Transport.unordered] (exactly-once delivery, no per-flow order) and
    the nemesis scrambles delivery order mid-run — the commit protocol's
    sequence-aware clear marks must keep goodput flat where the legacy
    arrival-order clearing would wedge followers.

    Each scenario runs under a {!Zeus_chaos.Schedule} executed by the
    {!Zeus_chaos.Nemesis} with a {!Zeus_chaos.Monitor} attached: the
    goodput timeline (500 µs windows over the surviving drivers) yields
    the recovery time — fault injection until two consecutive windows back
    at 90 % of the pre-fault mean — and the online single-owner and
    version-monotonicity checks plus the post-quiesce convergence check
    must all pass. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload
module Chaos = Zeus_chaos

type results = { quick : bool; seed : int64; scenarios : Chaos.Report.scenario list }

let seed = 7L

(* One scenario: a fresh 4-node cluster, Smallbank homed on [home_shift ..
   home_shift+2], a resilient closed loop on [drive] (unlike
   [W.Driver.run], it survives a driving node's crash window by polling
   for the rejoin), and a crash/restart window on [crash_node] executed by
   the nemesis. *)
let run_scenario ?(mode = Zeus_membership.Service.Oracle) ?(extra_down_us = 0.0)
    ?(transport = Zeus_net.Transport.default_config) ?scramble ~quick ~name
    ~home_shift ~drive ~crash_node ~remote_frac () =
  let warmup_us = if quick then 1_500.0 else 3_000.0 in
  let fault_at_us = warmup_us +. if quick then 5_000.0 else 8_000.0 in
  (* [extra_down_us] stretches the crash window for Detected mode: the view
     change only lands after detect + suspicion quorum + lease (~4 ms), so
     without the stretch the node would rejoin before the post-eviction
     goodput plateau is even observable. *)
  let down_us = (if quick then 6_000.0 else 9_000.0) +. extra_down_us in
  let restart_at_us = fault_at_us +. down_us in
  let end_us = restart_at_us +. if quick then 6_000.0 else 10_000.0 in
  (* auto_trim off: with 4 nodes and degree 3, a remote acquisition's trim
     can wedge the object's o_state (the pre-existing protocol corner noted
     in the predictive experiment), which shows up here as goodput decaying
     all run long — with trims off the pre-fault baseline is flat. *)
  let config =
    {
      Config.default with
      Config.nodes = 4;
      dir_replicas = 2;
      seed;
      app_threads = 6;
      auto_trim = false;
      membership_mode = mode;
      transport;
    }
  in
  let c = Cluster.create ~config () in
  let eng = Cluster.engine c in
  let rng = Engine.fork_rng eng in
  let accounts = if quick then 60 else 150 in
  let w = W.Smallbank.create ~accounts_per_node:accounts ~nodes:3 ~remote_frac rng in
  Cluster.populate_n c ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> home_shift + W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  let monitor = Chaos.Monitor.attach ~observed:drive c in
  (* [scramble = Some prob] swaps the incident: instead of a crash, the
     nemesis arms delivery-order scrambling for the same window — only
     meaningful on an unordered transport, where the permutation actually
     reaches the protocol layer. *)
  let schedule =
    Chaos.Schedule.v ~name ~seed
      (match scramble with
      | Some prob ->
        Chaos.Schedule.scramble_window ~at_us:fault_at_us ~duration_us:down_us ~prob ()
      | None ->
        Chaos.Schedule.crash_restart ~node:crash_node ~at_us:fault_at_us ~down_us)
  in
  let nemesis = Chaos.Nemesis.attach ~monitor c schedule in
  let issuing = ref true in
  let committed0 = ref 0 and aborted0 = ref 0 in
  List.iter
    (fun n ->
      let node = Cluster.node c n in
      for thread = 0 to config.Config.app_threads - 1 do
        let rec loop () =
          if !issuing then begin
            if Node.is_alive node then
              W.Spec.run_on_zeus node ~thread
                (W.Smallbank.gen w ~home:(Node.id node - home_shift))
                (fun _ -> loop ())
            else
              (* crashed driver: poll for the rejoin instead of dying *)
              ignore (Engine.schedule eng ~after:250.0 (fun () -> loop ()))
          end
        in
        ignore
          (Engine.schedule eng
             ~after:(0.1 *. float_of_int ((n * config.Config.app_threads) + thread))
             (fun () -> loop ()))
      done)
    drive;
  ignore
    (Engine.schedule eng ~after:warmup_us (fun () ->
         committed0 := Cluster.total_committed c;
         aborted0 := Cluster.total_aborted c));
  Cluster.run c ~until_us:end_us;
  issuing := false;
  Chaos.Monitor.stop monitor;
  Cluster.run_quiesce c ~max_us:(end_us +. 100_000.0) ();
  assert (Chaos.Nemesis.done_ nemesis);
  Chaos.Report.of_monitor ~name ~fault_at_us ~restart_at_us
    ~detection:(Chaos.Report.detection_of_service (Cluster.membership c))
    ~committed:(Cluster.total_committed c - !committed0)
    ~aborted:(Cluster.total_aborted c - !aborted0)
    monitor

let compute ~quick =
  let scenarios =
    [
      run_scenario ~quick ~name:"follower" ~home_shift:0 ~drive:[ 0; 1; 2 ]
        ~crash_node:3 ~remote_frac:0.2 ();
      run_scenario ~quick ~name:"owner" ~home_shift:0 ~drive:[ 0; 1 ] ~crash_node:2
        ~remote_frac:0.35 ();
      run_scenario ~quick ~name:"directory" ~home_shift:1 ~drive:[ 1; 2; 3 ]
        ~crash_node:0 ~remote_frac:0.2 ();
      (* Same crash as [follower], but nothing tells the membership service:
         the survivors must detect the silence, reach a suspicion quorum and
         wait out the lease before the view change — recovery here measures
         the whole detect → suspect → lease → install pipeline. *)
      run_scenario ~mode:Zeus_membership.Service.Detected
        ~extra_down_us:(if quick then 8_000.0 else 12_000.0) ~quick
        ~name:"follower-detected" ~home_shift:0 ~drive:[ 0; 1; 2 ] ~crash_node:3
        ~remote_frac:0.2 ();
      (* No crash at all: the whole cluster runs on the unordered transport
         (exactly-once, {e no} per-flow order) and the nemesis scrambles
         delivery order for the incident window.  The sequence-aware clear
         marks must keep commit streams draining — goodput barely dips and
         every monitor stays green; on the legacy arrival-order clearing
         this scenario wedges. *)
      run_scenario
        ~transport:(Zeus_net.Transport.unordered Zeus_net.Transport.default_config)
        ~scramble:0.5 ~quick ~name:"reorder" ~home_shift:0 ~drive:[ 0; 1; 2 ]
        ~crash_node:3 ~remote_frac:0.2 ();
    ]
  in
  { quick; seed; scenarios }

let last = ref None
let last_results () = !last

let report r = { Chaos.Report.quick = r.quick; seed = r.seed; scenarios = r.scenarios }

let print_scenario (s : Chaos.Report.scenario) =
  Exp.print_kv
    (Printf.sprintf "faults: %s crash at %.0f us" s.Chaos.Report.name
       s.Chaos.Report.fault_at_us)
    ([
      ("baseline goodput (Mtps)", Printf.sprintf "%.4f" s.Chaos.Report.baseline_mtps);
      ("worst window (Mtps)", Printf.sprintf "%.4f" s.Chaos.Report.dip_mtps);
      ( "recovery (us)",
        match s.Chaos.Report.recovery_us with
        | Some r -> Printf.sprintf "%.0f" r
        | None -> "never" );
      ("committed / aborted", Printf.sprintf "%d / %d" s.Chaos.Report.committed s.Chaos.Report.aborted);
      ("monitors", if s.Chaos.Report.monitors_ok then "ok" else "VIOLATION");
    ]
    @
    match s.Chaos.Report.detection with
    | Some d when d.Chaos.Report.d_mode = "detected" ->
      [
        ( "detection",
          Printf.sprintf "%d suspicions, %d false, %d averted, %d views"
            d.Chaos.Report.d_suspicions d.Chaos.Report.d_false_suspicions
            d.Chaos.Report.d_evictions_averted d.Chaos.Report.d_views_installed );
      ]
    | _ -> [])

let run ~quick =
  let r = compute ~quick in
  last := Some r;
  List.iter print_scenario r.scenarios;
  List.iter
    (fun (s : Chaos.Report.scenario) ->
      List.iter
        (fun v -> Zeus_telemetry.Tlog.warnf "faults/%s: %s" s.Chaos.Report.name v)
        s.Chaos.Report.violations)
    r.scenarios
