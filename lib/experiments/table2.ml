(** Table 2: summary of the evaluated benchmarks. *)

module Tlog = Zeus_telemetry.Tlog

let run ~quick:_ =
  let rows =
    [
      Zeus_workload.Handover.table_summary;
      Zeus_workload.Smallbank.table_summary;
      Zeus_workload.Tatp.table_summary;
      Zeus_workload.Voter.table_summary;
    ]
  in
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "\n== table2: Summary of evaluated benchmarks ==\n";
  pf "  %-10s %7s %8s %4s %9s\n" "benchmark" "tables" "columns" "txs" "read txs";
  List.iter
    (fun (name, tables, columns, txs, read_pct) ->
      pf "  %-10s %7d %8d %4d %8d%%\n" name tables columns txs read_pct)
    rows;
  pf
    "  paper: Handovers 5/36/4/0%%, Smallbank 3/6/6/15%%, TATP 4/51/7/80%%, Voter 3/9/1/0%%\n";
  Tlog.info_string (Buffer.contents buf);
  Tlog.flush_info ()
