(** Domain-parallel map over independent sweep points.

    Points must be pure functions of their parameters (own cluster, own
    RNGs, no printing); see the implementation notes and DESIGN.md §12. *)

val set_jobs : int -> unit
(** Set the process-wide default job count (clamped to >= 1).  Wired to
    the [-j N] flag of [bench/main.exe] and [zeus_cli run]. *)

val get_jobs : unit -> int

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, running up to [jobs]
    domains in parallel (default: {!get_jobs}), and returns the results
    in input order.  With [jobs <= 1] this is exactly [List.map]. *)
