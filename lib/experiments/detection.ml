(** Failure-detection sweep (an ablation of §3.1's membership service).

    The paper assumes an external membership service with unreliable
    detection and leases; this experiment measures the reproduction's
    end-to-end detector ([membership_mode = Detected]) across the two
    knobs that govern it — heartbeat period and suspicion-timeout floor
    (the cap is fixed at twice the floor).  Per configuration:

    - {e crash arm}: 4-node Smallbank (nodes 0–2 drive, accounts homed
      there), node 3 — a pure follower — crashes with {e no} oracle
      announcement.  Measured: crash until the survivors installed the
      excluding view, checked against the configuration's analytical
      bound ({!Zeus_membership.Service.detection_bound_us}), and whether
      commits progressed after the view change;
    - {e noise arm}: the same cluster, no crash, but a cluster-wide
      loss/dup/delay spike in the middle of the run.  Measured: suspicion
      churn (raised / retracted), evictions averted at lease expiry, and
      — the failure mode that matters — false suspicions, i.e. live nodes
      actually evicted and fenced.

    The tension the sweep exposes: shorter periods and lower floors
    detect faster (crash arm) but suspect more readily under loss (noise
    arm).  The adaptive per-peer timeout keeps the false-positive side
    flat until the floor drops near the spike's induced silence. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Service = Zeus_membership.Service
module Detector = Zeus_membership.Detector
module View = Zeus_membership.View
module W = Zeus_workload
module Chaos = Zeus_chaos

type combo = {
  period_us : float;
  min_timeout_us : float;
  bound_us : float;
  detect_latency_us : float option;
  within_bound : bool;
  recovered : bool;
  crash_suspicions : int;
  noise_suspicions : int;
  noise_retractions : int;
  noise_false_suspicions : int;
  noise_evictions_averted : int;
  noise_views_installed : int;
}

type results = { quick : bool; seed : int64; combos : combo list }

let seed = 11L

let detection_of ~period_us ~min_timeout_us =
  {
    Service.default_detection with
    Service.detector =
      {
        Detector.default_config with
        Detector.period_us;
        min_timeout_us;
        max_timeout_us = 2.0 *. min_timeout_us;
      };
  }

let make_cluster ~quick ~period_us ~min_timeout_us =
  let config =
    {
      Config.default with
      Config.nodes = 4;
      dir_replicas = 2;
      seed;
      app_threads = 4;
      auto_trim = false;
      membership_mode = Service.Detected;
      detection = detection_of ~period_us ~min_timeout_us;
    }
  in
  let c = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine c) in
  let accounts = if quick then 40 else 100 in
  let w =
    W.Smallbank.create ~accounts_per_node:accounts ~nodes:3 ~remote_frac:0.2 rng
  in
  Cluster.populate_n c ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  (c, w)

(* Closed loops on nodes 0-2 (node 3 never drives, so the crash arm's
   victim is a pure follower), resilient to the victim's absence. *)
let drive c w ~issuing =
  let eng = Cluster.engine c in
  let threads = (Cluster.config c).Config.app_threads in
  List.iter
    (fun n ->
      let node = Cluster.node c n in
      for thread = 0 to threads - 1 do
        let rec loop () =
          if !issuing then begin
            if Node.is_alive node then
              W.Spec.run_on_zeus node ~thread
                (W.Smallbank.gen w ~home:(Node.id node))
                (fun _ -> loop ())
            else ignore (Engine.schedule eng ~after:250.0 (fun () -> loop ()))
          end
        in
        ignore
          (Engine.schedule eng
             ~after:(0.1 *. float_of_int ((n * threads) + thread))
             (fun () -> loop ()))
      done)
    [ 0; 1; 2 ]

let crash_arm ~quick ~period_us ~min_timeout_us =
  let c, w = make_cluster ~quick ~period_us ~min_timeout_us in
  let eng = Cluster.engine c in
  let svc = Cluster.membership c in
  let bound = Service.detection_bound_us svc in
  let fault_at = 1_500.0 +. if quick then 2_500.0 else 5_000.0 in
  let end_us = fault_at +. bound +. if quick then 4_000.0 else 8_000.0 in
  let issuing = ref true in
  drive c w ~issuing;
  let installed_at = ref None in
  let committed_at_install = ref 0 in
  Service.subscribe svc 0 (fun v ->
      if !installed_at = None && not (View.is_live v 3) then begin
        installed_at := Some (Engine.now eng);
        committed_at_install := Cluster.total_committed c
      end);
  ignore (Engine.schedule eng ~after:fault_at (fun () -> Cluster.kill c 3));
  Cluster.run c ~until_us:end_us;
  issuing := false;
  Cluster.run_quiesce c ~max_us:100_000.0 ();
  let stats = Service.det_stats svc in
  let latency = Option.map (fun at -> at -. fault_at) !installed_at in
  let recovered =
    match !installed_at with
    | None -> false
    | Some _ -> Cluster.total_committed c > !committed_at_install
  in
  ( latency,
    bound,
    (match latency with Some l -> l <= bound | None -> false),
    recovered,
    stats.Service.suspicions )

let noise_arm ~quick ~period_us ~min_timeout_us =
  let c, w = make_cluster ~quick ~period_us ~min_timeout_us in
  let spike_at = 2_500.0 in
  let spike_dur = if quick then 2_000.0 else 4_000.0 in
  let end_us = spike_at +. spike_dur +. 3_000.0 in
  let schedule =
    Chaos.Schedule.v ~name:"detection-noise" ~seed
      (Chaos.Schedule.spike_window ~at_us:spike_at ~duration_us:spike_dur ~loss:0.15
         ~dup:0.02 ~delay_us:30.0 ())
  in
  let nemesis = Chaos.Nemesis.attach c schedule in
  let issuing = ref true in
  drive c w ~issuing;
  Cluster.run c ~until_us:end_us;
  issuing := false;
  Cluster.run_quiesce c ~max_us:100_000.0 ();
  assert (Chaos.Nemesis.done_ nemesis);
  Service.det_stats (Cluster.membership c)

let run_combo ~quick (period_us, min_timeout_us) =
  let detect_latency_us, bound_us, within_bound, recovered, crash_suspicions =
    crash_arm ~quick ~period_us ~min_timeout_us
  in
  let n = noise_arm ~quick ~period_us ~min_timeout_us in
  {
    period_us;
    min_timeout_us;
    bound_us;
    detect_latency_us;
    within_bound;
    recovered;
    crash_suspicions;
    noise_suspicions = n.Service.suspicions;
    noise_retractions = n.Service.retractions;
    noise_false_suspicions = n.Service.false_suspicions;
    noise_evictions_averted = n.Service.evictions_averted;
    noise_views_installed = n.Service.views_installed;
  }

let compute ~quick =
  let periods = if quick then [ 150.0; 300.0 ] else [ 100.0; 200.0; 400.0 ] in
  let floors = if quick then [ 900.0; 1_800.0 ] else [ 600.0; 1_200.0; 2_400.0 ] in
  (* Each combo builds its own cluster from [seed], so the grid is an
     independent sweep: farm it out (bit-identical to sequential). *)
  let grid = List.concat_map (fun p -> List.map (fun f -> (p, f)) floors) periods in
  let combos = Sweep.map (run_combo ~quick) grid in
  { quick; seed; combos }

let last = ref None
let last_results () = !last

let print_combo c =
  Exp.print_kv
    (Printf.sprintf "detection: period %.0f us, timeout floor %.0f us" c.period_us
       c.min_timeout_us)
    [
      ( "crash: detect latency (us)",
        match c.detect_latency_us with
        | Some l -> Printf.sprintf "%.0f (bound %.0f)" l c.bound_us
        | None -> Printf.sprintf "never (bound %.0f)" c.bound_us );
      ("crash: within bound", if c.within_bound then "yes" else "NO");
      ("crash: recovered", if c.recovered then "yes" else "NO");
      ("crash: suspicions", string_of_int c.crash_suspicions);
      ( "noise: suspicions raised/retracted",
        Printf.sprintf "%d / %d" c.noise_suspicions c.noise_retractions );
      ( "noise: false suspicions / averted",
        Printf.sprintf "%d / %d" c.noise_false_suspicions c.noise_evictions_averted );
      ("noise: views installed", string_of_int c.noise_views_installed);
    ]

let run ~quick =
  let r = compute ~quick in
  last := Some r;
  List.iter print_combo r.combos
