(** Reactive vs predictive ownership placement (the locality engine).

    Three scenarios, each run once with the engine disabled (the paper's
    reactive placement — the seed behaviour) and once enabled:

    - {e trajectory}: the handover pattern of §2.1 driven end-to-end — mobile
      users hop node → node+1, dwelling for a burst of writes and then
      travelling (an access gap) before reappearing at the next node.  The
      directional predictor should prefetch each user's state into the next
      node during the travel gap, so the first transaction after a handover
      finds it local;
    - {e skew}: a small set of hot objects each fought over by two nodes
      (cross-frontend sessions).  Reactive placement ping-pongs them on
      every write; the planner should detect the thrash, pin each key, and
      the pin re-routes the fighting transactions to the pin target;
    - {e uniform}: perfectly partitioned local traffic — the engine has
      nothing to improve and must not regress tail latency.

    The rerouted execution in the skew scenario models the balancer
    forwarding the request to the pin target; the forwarding hop itself is
    not charged (it is identical in both arms' request paths). *)

module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng
module Stats = Zeus_sim.Stats
module Tlog = Zeus_telemetry.Tlog
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Txn = Zeus_store.Txn
module Loc = Zeus_locality
module W = Zeus_workload

type arm = {
  committed : int;
  remote : int;      (** committed write txns that needed an ownership request *)
  p50 : float;
  p99 : float;
  hits : int;        (** prefetched keys touched by a local txn while owned *)
  misses : int;      (** prefetched keys lost before any local access *)
  hints : int;
  pins : int;
  reassigns : int;
}

type results = { quick : bool; trajectory : arm * arm; skew : arm * arm; uniform : arm * arm }

let remote_fraction a =
  if a.committed = 0 then 0.0 else float_of_int a.remote /. float_of_int a.committed

let hit_rate a =
  if a.hits + a.misses = 0 then 0.0
  else float_of_int a.hits /. float_of_int (a.hits + a.misses)

(* Experiment-tuned engine: shorter post-move cooldown than the default (a
   handover dwell is only a few hundred µs here) and a prefetch budget sized
   to the handover rate — the conservative library default is for workloads
   where speculation is a side dish, not the point. *)
let tuned ~bucket ~refill_per_ms =
  {
    Loc.Engine.enabled_default with
    Loc.Engine.planner = { Loc.Planner.default_config with Loc.Planner.cooldown_us = 120.0 };
    migrator = { Loc.Migrator.bucket; refill_per_ms };
  }

let sum_own c =
  let s = ref 0 in
  for i = 0 to Cluster.nodes c - 1 do
    s := !s + Node.txns_with_ownership (Cluster.node c i)
  done;
  !s

(* Engine counters summed over nodes; pins from node 0's planner (every
   directory node observes the same migration stream, so each planner
   reaches the same pin — summing would multiple-count one decision). *)
let loc_stats c =
  let hits = ref 0 and misses = ref 0 and hints = ref 0 in
  for i = 0 to Cluster.nodes c - 1 do
    match Node.locality (Cluster.node c i) with
    | None -> ()
    | Some e ->
      hits := !hits + Loc.Engine.prefetch_hits e;
      misses := !misses + Loc.Engine.prefetch_misses e;
      hints := !hints + Loc.Engine.hints_sent e
  done;
  let pins =
    match Node.locality (Cluster.node c 0) with
    | Some e -> Loc.Planner.pins_set (Loc.Engine.planner e)
    | None -> 0
  in
  (!hits, !misses, !hints, pins)

(* The predictive-trajectory cluster — its hub feeds the per-phase table. *)
let phase_cluster = ref None

let incr_body ctx key commit =
  Node.read_write ctx key (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ -> commit ())

(* ---------- trajectory (handover) ---------- *)

let run_trajectory ~quick ~predictive =
  let nodes = 4 and users_per_node = 6 in
  let interval = 30.0 and accesses = 6 and gap = 150.0 in
  let warmup = if quick then 1_200.0 else 2_000.0 in
  let duration = if quick then 2_400.0 else 8_000.0 in
  let locality =
    if predictive then tuned ~bucket:32.0 ~refill_per_ms:150.0
    else Loc.Engine.default_config
  in
  (* auto_trim off (both arms): with 4 nodes and degree 3 a handover to the
     one non-replica node triggers a trim whose Remove_reader arbitration can
     leave the fresh owner's o_state invalid, wedging the session object —
     a pre-existing protocol corner unrelated to placement policy. *)
  let config = { Config.default with Config.nodes; seed = 11L; auto_trim = false; locality } in
  let c = Cluster.create ~config () in
  if predictive then phase_cluster := Some c;
  let eng = Cluster.engine c in
  let users = nodes * users_per_node in
  (* one session object per user, starting at the user's first cell *)
  Cluster.populate_n c ~n:users ~owner_of:(fun u -> u mod nodes) (fun _ -> Value.of_int 0);
  let start = warmup and stop = warmup +. duration in
  let committed = ref 0 in
  let lat = Stats.Samples.create ~cap:50_000 (Engine.fork_rng eng) in
  (* Open-loop per user: [accesses] writes spaced [interval] apart at the
     current cell, then a travel gap, then the next cell.  Users sharing a
     start cell are staggered by cohort so each (cell, thread) pair hosts at
     most one user at a time. *)
  let rec dwell u at_node writes_done =
    if writes_done >= accesses then
      ignore
        (Engine.schedule eng ~after:gap (fun () -> dwell u ((at_node + 1) mod nodes) 0))
    else begin
      let node = Cluster.node c at_node in
      let t0 = Engine.now eng in
      Node.run_write node ~thread:(u / nodes)
        ~body:(fun ctx commit -> incr_body ctx u commit)
        (fun outcome ->
          let now = Engine.now eng in
          (match outcome with
          | Txn.Committed when now >= start && now < stop ->
            incr committed;
            Stats.Samples.add lat (now -. t0)
          | _ -> ());
          ignore (Engine.schedule eng ~after:interval (fun () -> dwell u at_node (writes_done + 1))))
    end
  in
  for u = 0 to users - 1 do
    ignore
      (Engine.schedule eng
         ~after:(7.0 *. float_of_int (u / nodes))
         (fun () -> dwell u (u mod nodes) 0))
  done;
  let own0 = ref 0 in
  ignore (Engine.schedule_at eng ~time:start (fun () -> own0 := sum_own c));
  Cluster.run c ~until_us:stop;
  let remote = sum_own c - !own0 in
  if Tlog.enabled Tlog.Debug then begin
    for i = 0 to nodes - 1 do
      let n = Cluster.node c i in
      Tlog.debugf ~src:"predictive"
        "[traj] node %d: committed=%d aborted=%d retries=%d own_txns=%d" i
        (Node.committed n) (Node.aborted n) (Node.retries n)
        (Node.txns_with_ownership n);
      match Node.locality n with
      | Some e ->
        List.iter
          (fun (k, v) -> Tlog.debugf ~src:"predictive" "    %s=%d" k v)
          (Loc.Engine.counters e)
      | None -> ()
    done
  end;
  let hits, misses, hints, pins = loc_stats c in
  {
    committed = !committed;
    remote;
    p50 = Stats.Samples.percentile lat 50.0;
    p99 = Stats.Samples.percentile lat 99.0;
    hits;
    misses;
    hints;
    pins;
    reassigns = 0;
  }

(* ---------- skewed two-node contention (ping-pong) ---------- *)

(* Each hot object is a session fought over by exactly two frontends: the
   clients behind node A and node B both write it, and locality-based
   request routing (each client talks to its nearest node) means neither
   side goes through a shared balancer.  Reactively the object's ownership
   ping-pongs on every alternating write; the planner should detect the
   thrash, pin the key where it landed, and the pin — pushed to the
   balancer tier with [reassign] and consulted by the frontends — ends the
   migration churn by executing both sides at the pin target. *)
let run_skew ~quick ~predictive =
  let nodes = 3 in
  let hot_keys = 6 and hot_base = 500 in
  let interval = 40.0 in
  let warmup = if quick then 1_000.0 else 1_500.0 in
  let duration = if quick then 2_500.0 else 8_000.0 in
  let locality =
    if predictive then tuned ~bucket:8.0 ~refill_per_ms:20.0
    else Loc.Engine.default_config
  in
  (* Thread slot [2h + side] is globally reserved for key h's writer on
     that side, so a rerouted execution never collides with another loop. *)
  let config =
    { Config.default with Config.nodes; app_threads = 2 * hot_keys; seed = 23L; locality }
  in
  let c = Cluster.create ~config () in
  let eng = Cluster.engine c in
  Cluster.populate_n c ~n:hot_keys ~base:hot_base
    ~owner_of:(fun h -> h mod nodes)
    (fun _ -> Value.of_int 0);
  let balancer = ref None in
  (* Authoritative pin routing as the frontends see it: written by on_pin
     (the node where the key landed), read by every writer loop. *)
  let pin_route : (int, int) Hashtbl.t = Hashtbl.create 16 in
  if predictive then begin
    let b =
      Zeus_lb.Balancer.create ~node:0 ~lb_nodes:[ 0 ]
        ~backends:(List.init nodes (fun i -> i))
        (Cluster.transport c)
    in
    Node.set_app_handler (Cluster.node c 0) (fun ~src payload ->
        ignore (Zeus_lb.Balancer.handle b ~src payload));
    (match Node.locality (Cluster.node c 0) with
    | Some e0 -> Zeus_lb.Balancer.set_placement_hint b (Loc.Engine.route_for_key e0)
    | None -> ());
    for i = 0 to nodes - 1 do
      match Node.locality (Cluster.node c i) with
      | Some e ->
        Loc.Engine.set_on_pin e (fun ~key ~target ->
            Hashtbl.replace pin_route key target;
            Zeus_lb.Balancer.reassign b ~key target (fun () -> ()))
      | None -> ()
    done;
    balancer := Some b
  end;
  let start = warmup and stop = warmup +. duration in
  let committed = ref 0 in
  let lat = Stats.Samples.create ~cap:50_000 (Engine.fork_rng eng) in
  (* Writer loop [side] of key h lives at pair node [side]; the two sides
     start half an interval apart so writes alternate A,B,A,B. *)
  let rec writer h side =
    let key = hot_base + h in
    let origin = (h + side) mod nodes in
    let target = match Hashtbl.find_opt pin_route key with Some t -> t | None -> origin in
    let t0 = Engine.now eng in
    Node.run_write (Cluster.node c target) ~thread:((2 * h) + side)
      ~body:(fun ctx commit -> incr_body ctx key commit)
      (fun outcome ->
        let now = Engine.now eng in
        (match outcome with
        | Txn.Committed when now >= start && now < stop ->
          incr committed;
          Stats.Samples.add lat (now -. t0)
        | _ -> ());
        ignore (Engine.schedule eng ~after:interval (fun () -> writer h side)))
  in
  for h = 0 to hot_keys - 1 do
    for side = 0 to 1 do
      ignore
        (Engine.schedule eng
           ~after:((3.0 *. float_of_int h) +. (interval /. 2.0 *. float_of_int side))
           (fun () -> writer h side))
    done
  done;
  let own0 = ref 0 in
  ignore (Engine.schedule_at eng ~time:start (fun () -> own0 := sum_own c));
  Cluster.run c ~until_us:stop;
  let remote = sum_own c - !own0 in
  if Tlog.enabled Tlog.Debug then begin
    for i = 0 to nodes - 1 do
      let n = Cluster.node c i in
      Tlog.debugf ~src:"predictive"
        "[skew] node %d: committed=%d aborted=%d retries=%d own_txns=%d" i
        (Node.committed n) (Node.aborted n) (Node.retries n)
        (Node.txns_with_ownership n);
      match Node.locality n with
      | Some e ->
        List.iter
          (fun (k, v) -> Tlog.debugf ~src:"predictive" "    %s=%d" k v)
          (Loc.Engine.counters e)
      | None -> ()
    done
  end;
  let hits, misses, hints, pins = loc_stats c in
  {
    committed = !committed;
    remote;
    p50 = Stats.Samples.percentile lat 50.0;
    p99 = Stats.Samples.percentile lat 99.0;
    hits;
    misses;
    hints;
    pins;
    reassigns =
      (match !balancer with Some b -> Zeus_lb.Balancer.reassigns b | None -> 0);
  }

(* ---------- uniform (no-regression check) ---------- *)

let run_uniform ~quick ~predictive =
  let nodes = 3 in
  let ppn = 128 in
  let warmup = if quick then 500.0 else 1_000.0 in
  let duration = if quick then 2_000.0 else 6_000.0 in
  let locality =
    if predictive then Loc.Engine.enabled_default else Loc.Engine.default_config
  in
  let config = { Config.default with Config.nodes; seed = 31L; locality } in
  let c = Cluster.create ~config () in
  let eng = Cluster.engine c in
  Cluster.populate_n c ~n:(nodes * ppn) ~owner_of:(fun i -> i / ppn) (fun _ -> Value.of_int 0);
  let rngs =
    Array.init nodes (fun _ ->
        Array.init config.Config.app_threads (fun _ -> Engine.fork_rng eng))
  in
  let issue node ~thread ~seq:_ done_ =
    let id = Node.id node in
    let k = (id * ppn) + Rng.int rngs.(id).(thread) ppn in
    Node.run_write node ~thread
      ~body:(fun ctx commit -> incr_body ctx k commit)
      (fun o -> done_ (match o with Txn.Committed -> true | Txn.Aborted _ -> false))
  in
  let own0 = ref 0 and own1 = ref 0 in
  ignore (Engine.schedule eng ~after:warmup (fun () -> own0 := sum_own c));
  ignore (Engine.schedule eng ~after:(warmup +. duration) (fun () -> own1 := sum_own c));
  let r = W.Driver.run c ~warmup_us:warmup ~duration_us:duration ~issue () in
  let hits, misses, hints, pins = loc_stats c in
  {
    committed = r.W.Driver.committed;
    remote = !own1 - !own0;
    p50 = r.W.Driver.lat_p50_us;
    p99 = r.W.Driver.lat_p99_us;
    hits;
    misses;
    hints;
    pins;
    reassigns = 0;
  }

(* ---------- driver ---------- *)

let compute ~quick =
  let stage name f =
    Tlog.debugf ~src:"predictive" "%s..." name;
    let r = f () in
    Tlog.debugf ~src:"predictive" "%s done" name;
    r
  in
  {
    quick;
    trajectory =
      ( stage "trajectory/reactive" (fun () -> run_trajectory ~quick ~predictive:false),
        stage "trajectory/predictive" (fun () -> run_trajectory ~quick ~predictive:true) );
    skew =
      ( stage "skew/reactive" (fun () -> run_skew ~quick ~predictive:false),
        stage "skew/predictive" (fun () -> run_skew ~quick ~predictive:true) );
    uniform =
      ( stage "uniform/reactive" (fun () -> run_uniform ~quick ~predictive:false),
        stage "uniform/predictive" (fun () -> run_uniform ~quick ~predictive:true) );
  }

let last = ref None
let last_results () = !last

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let print_pair title extra (reactive, predictive) =
  Exp.print_kv title
    ([
       ( "remote txn fraction",
         Printf.sprintf "reactive %s -> predictive %s" (pct (remote_fraction reactive))
           (pct (remote_fraction predictive)) );
       ( "p50 latency (us)",
         Printf.sprintf "reactive %.1f -> predictive %.1f" reactive.p50 predictive.p50 );
       ( "p99 latency (us)",
         Printf.sprintf "reactive %.1f -> predictive %.1f" reactive.p99 predictive.p99 );
       ( "committed (window)",
         Printf.sprintf "reactive %d -> predictive %d" reactive.committed
           predictive.committed );
     ]
    @ extra predictive)

let run ~quick =
  let r = compute ~quick in
  last := Some r;
  print_pair "predictive: trajectory handovers (directional prefetch)"
    (fun p ->
      [
        ("prefetch hit rate", Printf.sprintf "%s (%d hits, %d misses)" (pct (hit_rate p)) p.hits p.misses);
        ("hints sent", string_of_int p.hints);
      ])
    r.trajectory;
  print_pair "predictive: two-node hot-key contention (anti-ping-pong pin)"
    (fun p ->
      [
        ("pins set (node 0 planner)", string_of_int p.pins);
        ("balancer reassigns", string_of_int p.reassigns);
      ])
    r.skew;
  print_pair "predictive: uniform partitioned load (no-regression check)"
    (fun p -> [ ("hints sent (should be ~0)", string_of_int p.hints) ])
    r.uniform;
  Option.iter
    (Exp.print_phase_breakdown
       "predictive: per-phase txn latency (trajectory, predictive)")
    !phase_cluster
