module Tlog = Zeus_telemetry.Tlog
module Metrics = Zeus_telemetry.Metrics
module Hub = Zeus_telemetry.Hub

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  x_axis : string;
  y_axis : string;
  series : series list;
  paper : string list;
  notes : string list;
}

let hrule width = String.make width '-'

(* Tables render into a buffer and go out in one [Tlog.info_string] block:
   the severity gate is the entry point's, not each printf's. *)
let print_figure f =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "\n== %s: %s ==\n" f.id f.title;
  List.iter
    (fun s ->
      pf "  %s  [%s -> %s]\n" s.label f.x_axis f.y_axis;
      List.iter (fun (x, y) -> pf "    %10.3f  %10.3f\n" x y) s.points)
    f.series;
  if f.paper <> [] then begin
    pf "  paper reports:\n";
    List.iter (fun p -> pf "    - %s\n" p) f.paper
  end;
  List.iter (fun n -> pf "  note: %s\n" n) f.notes;
  pf "  %s\n" (hrule 60);
  Tlog.info_string (Buffer.contents buf);
  Tlog.flush_info ()

let print_kv title kvs =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "\n== %s ==\n" title;
  List.iter (fun (k, v) -> pf "  %-42s %s\n" k v) kvs;
  Tlog.info_string (Buffer.contents buf);
  Tlog.flush_info ()

(* The txn.* phase histograms accumulate on the cluster hub regardless of
   tracing; any experiment that ran transactions can print the breakdown. *)
let print_phase_breakdown title cluster =
  let hub = Zeus_core.Cluster.telemetry cluster in
  (* Present in pipeline order (registration order is arbitrary). *)
  let rank n =
    match n with
    | "txn.ownership_us" -> 0
    | "txn.execute_us" -> 1
    | "txn.local_commit_us" -> 2
    | "txn.replication_us" -> 3
    | "txn.e2e_us" -> 4
    | _ -> 5
  in
  let phases =
    List.filter
      (fun (n, h) ->
        String.length n > 4 && String.sub n 0 4 = "txn."
        && Metrics.Histogram.count h > 0)
      (Metrics.histograms (Hub.metrics hub))
    |> List.sort (fun (a, _) (b, _) -> compare (rank a, a) (rank b, b))
  in
  if phases <> [] then begin
    let buf = Buffer.create 512 in
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pf "\n== %s ==\n" title;
    pf "  %-16s %9s %10s %10s %10s %10s\n" "phase" "count" "mean us" "p50 us"
      "p99 us" "max us";
    List.iter
      (fun (n, h) ->
        let phase = String.sub n 4 (String.length n - 4) in
        pf "  %-16s %9d %10.2f %10.2f %10.2f %10.2f\n" phase
          (Metrics.Histogram.count h) (Metrics.Histogram.mean h)
          (Metrics.Histogram.percentile h 50.0)
          (Metrics.Histogram.percentile h 99.0)
          (Metrics.Histogram.max h))
      phases;
    Tlog.info_string (Buffer.contents buf);
    Tlog.flush_info ()
  end

let scale_note ~quick =
  if quick then "quick mode: tiny population, short runs (smoke only)"
  else
    "scaled deployment: populations ~1/50 of the paper's, virtual-time runs \
     of tens of ms instead of seconds; shapes and ratios are comparable, \
     absolute counts are not"

type scale = { duration_us : float; warmup_us : float; objects_per_node : int }

let scale_of ~quick =
  if quick then { duration_us = 3_000.0; warmup_us = 500.0; objects_per_node = 2_000 }
  else { duration_us = 15_000.0; warmup_us = 2_000.0; objects_per_node = 10_000 }
