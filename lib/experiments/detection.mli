(** Failure-detection sweep: heartbeat period × suspicion threshold.

    For each configuration the experiment runs a crash arm (detection
    latency of a real follower crash, checked against the configuration's
    analytical bound) and a noise arm (a loss/delay spike with no crash:
    false-suspicion pressure).  [BENCH_detection.json] records both. *)

type combo = {
  period_us : float;          (** heartbeat period swept *)
  min_timeout_us : float;     (** suspicion-timeout floor swept (cap = 2x) *)
  bound_us : float;           (** analytical crash-to-view bound *)
  detect_latency_us : float option;
      (** crash arm: crash until the survivors installed the excluding
          view; [None] if the view never changed *)
  within_bound : bool;        (** crash arm: latency <= bound *)
  recovered : bool;           (** crash arm: commits progressed post-view *)
  crash_suspicions : int;     (** crash arm: suspicions raised *)
  noise_suspicions : int;     (** noise arm: suspicions raised under spike *)
  noise_retractions : int;
  noise_false_suspicions : int; (** noise arm: live nodes actually evicted *)
  noise_evictions_averted : int;
  noise_views_installed : int;
}

type results = { quick : bool; seed : int64; combos : combo list }

val last_results : unit -> results option
(** Results of the most recent {!run} (consumed by the bench JSON
    emitter). *)

val run : quick:bool -> unit
