(** Performance under failures (§8): Smallbank goodput through crash and
    recovery, with the online invariant monitors armed. *)

type results = {
  quick : bool;
  seed : int64;
  scenarios : Zeus_chaos.Report.scenario list;
}

val last_results : unit -> results option
(** Results of the most recent {!run} (consumed by the bench JSON
    emitter). *)

val report : results -> Zeus_chaos.Report.t

val run : quick:bool -> unit
