(** Reactive vs predictive ownership placement: the locality engine driven
    end-to-end on a trajectory (handover) workload, a two-node hot-key
    contention workload, and a uniform no-regression check. *)

type arm = {
  committed : int;
  remote : int;   (** committed write txns that needed an ownership request *)
  p50 : float;
  p99 : float;
  hits : int;
  misses : int;
  hints : int;
  pins : int;
  reassigns : int;
}

type results = {
  quick : bool;
  trajectory : arm * arm;  (** (reactive, predictive) *)
  skew : arm * arm;
  uniform : arm * arm;
}

val remote_fraction : arm -> float
val hit_rate : arm -> float

val compute : quick:bool -> results
val run : quick:bool -> unit

val last_results : unit -> results option
(** The most recent [run]'s results — the bench harness reads these to emit
    [BENCH_locality.json]. *)
