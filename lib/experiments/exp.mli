(** Experiment plumbing: result tables and printers shared by every
    figure/table reproduction, plus the paper-reported values we compare
    against (EXPERIMENTS.md records the outcomes). *)

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;            (** e.g. "fig8" *)
  title : string;
  x_axis : string;
  y_axis : string;
  series : series list;
  paper : string list;    (** what the paper reports, for eyeballing shape *)
  notes : string list;
}

val print_figure : figure -> unit
(** Render as an aligned text table at [Tlog] level [Info]. *)

val print_kv : string -> (string * string) list -> unit

val print_phase_breakdown : string -> Zeus_core.Cluster.t -> unit
(** Per-phase transaction-latency table (ownership / execute /
    local-commit / replication / end-to-end) from the cluster hub's
    [txn.*] histograms; silent if no transaction committed. *)

val scale_note : quick:bool -> string

(** Deployment scaled down from the paper's testbed; [quick] shrinks it
    further for smoke runs. *)
type scale = {
  duration_us : float;
  warmup_us : float;
  objects_per_node : int;
}

val scale_of : quick:bool -> scale
