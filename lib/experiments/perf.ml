(** Wall-clock performance harness (the perf trajectory, DESIGN.md §12).

    Everything else in this directory measures {e protocol} metrics in
    virtual time; this experiment measures the {e simulator itself} in
    wall-clock time, since the event loop is what bounds every sweep we
    can afford to run.  Two measurements:

    - {e smallbank run}: the transport ablation's acceptance workload
      (Smallbank, 3 nodes, default fabric, quick-scale population) run for
      a fixed virtual duration; reported as simulator events dispatched
      per wall-clock second plus GC allocation per event.  Repeated a few
      times on fresh clusters, best repetition kept (wall-clock noise is
      one-sided).  Compared against the checked-in pre-overhaul baseline
      ([bench/perf_baseline.json]) — the perf-smoke CI gate fails on a
      > 25 % events/sec regression;
    - {e sweep scaling}: a fig7-style handover sweep run twice through
      {!Sweep.map} — [-j 1] and [-j 4] — reporting the wall-clock ratio
      and checking the per-point results are bit-identical (committed
      counts and final virtual clocks), i.e. that parallelism never leaks
      into simulation results. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Jsonv = Zeus_telemetry.Jsonv
module W = Zeus_workload

type run_stats = {
  wall_s : float;
  events : int;
  events_per_sec : float;
  committed : int;
  sim_us : float;  (** virtual time simulated in the measured window *)
  minor_words : float;  (** GC words allocated during the run *)
  major_words : float;
  words_per_event : float;
}

type results = {
  quick : bool;
  repeats : int;
  cores : int;  (** [Domain.recommended_domain_count] on this machine *)
  smallbank : run_stats;
  baseline_events_per_sec : float option;
      (** pre-overhaul events/sec from [bench/perf_baseline.json] *)
  speedup : float option;  (** smallbank events/sec vs that baseline *)
  regression_ok : bool;  (** speedup >= 0.75 (or no baseline to compare) *)
  sweep_points : int;
  sweep_jobs : int;
  sweep_j1_wall_s : float;
  sweep_jn_wall_s : float;
  sweep_speedup : float;  (** j1 wall / jN wall *)
  sweep_identical : bool;
      (** per-point (committed, final clock, events) identical across -j *)
}

(* ---- smallbank events/sec ---- *)

let smallbank_run ~duration_us =
  let s = Exp.scale_of ~quick:true in
  let config = { Config.default with Config.nodes = 3 } in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w =
    W.Smallbank.create ~accounts_per_node:s.Exp.objects_per_node
      ~nodes:config.Config.nodes ~remote_frac:0.0 rng
  in
  Cluster.populate_n cluster ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  let issue node ~thread ~seq:_ done_ =
    W.Spec.run_on_zeus node ~thread
      (W.Smallbank.gen w ~home:(Node.id node))
      (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed))
  in
  let eng = Cluster.engine cluster in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r =
    W.Driver.run cluster ~warmup_us:s.Exp.warmup_us ~duration_us ~issue ()
  in
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let wall_s = Float.max (t1 -. t0) 1e-9 in
  let events = Engine.events_dispatched eng in
  let minor = g1.Gc.minor_words -. g0.Gc.minor_words in
  let major = g1.Gc.major_words -. g0.Gc.major_words in
  {
    wall_s;
    events;
    events_per_sec = float_of_int events /. wall_s;
    committed = r.W.Driver.committed;
    sim_us = Engine.now eng;
    minor_words = minor;
    major_words = major;
    words_per_event =
      (if events = 0 then 0.0 else minor /. float_of_int events);
  }

let best_smallbank ~repeats ~duration_us =
  let best = ref (smallbank_run ~duration_us) in
  for _ = 2 to repeats do
    let r = smallbank_run ~duration_us in
    if r.events_per_sec > !best.events_per_sec then best := r
  done;
  !best

(* ---- checked-in baseline ---- *)

let baseline_path = "bench/perf_baseline.json"

let read_baseline () =
  if not (Sys.file_exists baseline_path) then None
  else
    let ic = open_in_bin baseline_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Jsonv.parse s with
    | Error _ -> None
    | Ok v ->
      Option.bind (Jsonv.member "events_per_sec" v) Jsonv.to_float

(* ---- sweep scaling ---- *)

(* Four equal-cost fig7-style points: balanced work is what a [-j 4]
   speedup measurement wants. *)
let sweep_specs = [ 0.0; 0.1; 0.2; 0.3 ]

let sweep_once ~quick ~jobs =
  let t0 = Unix.gettimeofday () in
  let points =
    Sweep.map ~jobs
      (fun remote_handover_frac ->
        let p =
          Fig7.point ~quick ~nodes:3 ~handover_frac:0.025 ~remote_handover_frac
        in
        (p.Fig7.committed, p.Fig7.final_clock_us, p.Fig7.events))
      sweep_specs
  in
  (Unix.gettimeofday () -. t0, points)

(* ---- experiment ---- *)

let compute ~quick =
  let repeats = if quick then 5 else 7 in
  let duration_us = if quick then 10_000.0 else 50_000.0 in
  let smallbank = best_smallbank ~repeats ~duration_us in
  let baseline = read_baseline () in
  let speedup =
    Option.map (fun b -> smallbank.events_per_sec /. b) baseline
  in
  let regression_ok = match speedup with None -> true | Some s -> s >= 0.75 in
  let sweep_jobs = 4 in
  let j1_wall, j1_points = sweep_once ~quick ~jobs:1 in
  let jn_wall, jn_points = sweep_once ~quick ~jobs:sweep_jobs in
  {
    quick;
    repeats;
    cores = Domain.recommended_domain_count ();
    smallbank;
    baseline_events_per_sec = baseline;
    speedup;
    regression_ok;
    sweep_points = List.length sweep_specs;
    sweep_jobs;
    sweep_j1_wall_s = j1_wall;
    sweep_jn_wall_s = jn_wall;
    sweep_speedup = j1_wall /. Float.max jn_wall 1e-9;
    sweep_identical = j1_points = jn_points;
  }

let last = ref None
let last_results () = !last

let run ~quick =
  let r = compute ~quick in
  last := Some r;
  let f = Printf.sprintf in
  Exp.print_kv "perf: simulator wall-clock harness"
    [
      ( "smallbank events/sec",
        f "%.0f (%d events in %.3f s, best of %d)" r.smallbank.events_per_sec
          r.smallbank.events r.smallbank.wall_s r.repeats );
      ( "vs checked-in baseline",
        match (r.baseline_events_per_sec, r.speedup) with
        | Some b, Some s -> f "%.0f events/sec -> %.2fx" b s
        | _ -> "no baseline recorded" );
      ("committed txns", string_of_int r.smallbank.committed);
      ( "GC minor words/event",
        f "%.1f (%.2e minor, %.2e major)" r.smallbank.words_per_event
          r.smallbank.minor_words r.smallbank.major_words );
      ( "sweep wall-clock",
        f "-j 1 %.3f s -> -j %d %.3f s (%.2fx, %d cores)" r.sweep_j1_wall_s
          r.sweep_jobs r.sweep_jn_wall_s r.sweep_speedup r.cores );
      ( "sweep results bit-identical",
        if r.sweep_identical then "yes" else "NO" );
    ]
