(** Figure 8: Smallbank throughput while varying the fraction of write
    transactions that require an ownership change, vs the FaSST- and
    DrTM-like baselines at static (drifted-to-random) sharding.

    All points (Zeus and baseline) run through {!Sweep.map}, so [-j N]
    spreads them across domains with bit-identical results. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload
module B = Zeus_baseline

let zeus_point ~quick ~nodes ~remote_frac =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w =
    W.Smallbank.create ~accounts_per_node:s.Exp.objects_per_node ~nodes ~remote_frac rng
  in
  Cluster.populate_n cluster ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  let r =
    W.Driver.run cluster ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
      ~issue:(fun node ~thread ~seq:_ done_ ->
        W.Spec.run_on_zeus node ~thread
          (W.Smallbank.gen w ~home:(Node.id node))
          (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed)))
      ()
  in
  let owntxn = ref 0 in
  for i = 0 to nodes - 1 do
    owntxn := !owntxn + Node.txns_with_ownership (Cluster.node cluster i)
  done;
  (* x-axis: % of write transactions (85 % of the mix) needing ownership *)
  let writes = 0.85 *. float_of_int r.W.Driver.committed in
  (100.0 *. float_of_int !owntxn /. Float.max 1.0 writes, r.W.Driver.mtps, r, cluster)

let baseline_point ~quick ~nodes profile =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let rng = Zeus_sim.Rng.create 7L in
  (* Static sharding after the access pattern drifted to (almost) random
     placement (§8.2). *)
  let w =
    W.Smallbank.create ~accounts_per_node:s.Exp.objects_per_node ~nodes
      ~remote_frac:(1.0 -. (1.0 /. float_of_int nodes))
      ~local_reads:false rng
  in
  let eng =
    B.Engine.create ~profile ~config ~primary_of:(fun k -> W.Smallbank.home_of_key w k) ()
  in
  let r =
    B.Engine.run_load eng ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
      ~gen:(fun ~home -> W.Smallbank.gen w ~home)
      ()
  in
  r.W.Driver.mtps

let run ~quick =
  let fracs =
    if quick then [ 0.0; 0.02; 0.05 ]
    else [ 0.0; 0.005; 0.01; 0.02; 0.03; 0.05; 0.08; 0.12 ]
  in
  (* Every point — Zeus and baseline alike — is an independent simulation,
     so flatten them all into one [Sweep.map] and rebuild the series from
     the ordered results afterwards (printing and the shared refs stay in
     this sequential caller; see sweep.ml). *)
  let tasks =
    List.map (fun f -> `Zeus (3, f)) fracs
    @ List.map (fun f -> `Zeus (6, f)) fracs
    @ [
        `Flat (3, B.Profile.fasst);
        `Flat (6, B.Profile.fasst);
        `Flat (3, B.Profile.drtm);
        `Flat (6, B.Profile.drtm);
      ]
  in
  let results =
    Sweep.map
      (function
        | `Zeus (nodes, f) ->
          let x, y, r, cluster = zeus_point ~quick ~nodes ~remote_frac:f in
          `Zeus_r (x, y, r, cluster)
        | `Flat (nodes, profile) -> `Flat_r (baseline_point ~quick ~nodes profile))
      tasks
  in
  let nfracs = List.length fracs in
  let zeus_r = List.filteri (fun i _ -> i < 2 * nfracs) results in
  let flat_r = List.filteri (fun i _ -> i >= 2 * nfracs) results in
  let zeus_points n =
    List.filteri (fun i _ -> i / nfracs = n) zeus_r
    |> List.map (function
         | `Zeus_r (x, y, r, cluster) -> (x, y, r, cluster)
         | `Flat_r _ -> assert false)
  in
  let latency_notes = ref [] in
  let last_cluster = ref None in
  let zeus idx nodes =
    let pts = zeus_points idx in
    List.iter2
      (fun f (_, _, r, cluster) ->
        last_cluster := Some cluster;
        if f = 0.0 then
          latency_notes :=
            Printf.sprintf
              "Zeus txn latency at 0%% remote (%d nodes): p50 %.1fus, p99 %.1fus"
              nodes r.W.Driver.lat_p50_us r.W.Driver.lat_p99_us
            :: !latency_notes)
      fracs pts;
    {
      Exp.label = Printf.sprintf "Zeus (%d nodes)" nodes;
      points = List.map (fun (x, y, _, _) -> (x, y)) pts;
    }
  in
  let flats =
    List.map2
      (fun (nodes, profile) r ->
        let y = match r with `Flat_r y -> y | `Zeus_r _ -> assert false in
        {
          Exp.label =
            Printf.sprintf "%s (%d nodes, static sharding)" profile.B.Profile.name nodes;
          points = [ (0.0, y); (30.0, y) ];
        })
      [ (3, B.Profile.fasst); (6, B.Profile.fasst); (3, B.Profile.drtm); (6, B.Profile.drtm) ]
      flat_r
  in
  let series = zeus 0 3 :: zeus 1 6 :: flats in
  Exp.print_figure
    {
      Exp.id = "fig8";
      title = "Smallbank while varying remote write transactions";
      x_axis = "% write txns needing ownership change";
      y_axis = "Mtps";
      series;
      paper =
        [
          "Zeus ~35% over FaSST and ~100% over DrTM at Venmo-level remote fractions";
          "break-even vs FaSST below ~5%, vs DrTM below ~20% ownership-change txns";
          "3- and 6-node trends identical";
        ];
      notes = Exp.scale_note ~quick :: List.rev !latency_notes;
    };
  Option.iter
    (Exp.print_phase_breakdown "fig8: per-phase txn latency (last Zeus point)")
    !last_cluster
