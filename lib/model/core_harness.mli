(** Bounded exploration of the {e real} sans-I/O protocol cores.

    {!Ownership_spec} and {!Commit_spec} model-check independent
    re-statements of the protocols; this harness closes the gap between
    model and implementation by driving the production state machines —
    {!Zeus_ownership.Core} and {!Zeus_commit.Core} — through the same
    {!Explorer.bfs}.  Each world holds one core per node plus the minimal
    interpreter around it (a model replica store, a message multiset,
    armed timers, the membership epoch); transitions feed real inputs and
    execute the returned effects exactly as the simulator interpreters do.

    Scenarios and invariants mirror the spec modules, so the two checkers
    cross-validate each other: a behaviour divergence shows up as either a
    violation here or a state-count discrepancy there. *)

(** Ownership core under contention, duplication, crash-stop failure and
    arb-replay (scenario of {!Ownership_spec}: 3 directory replicas, node 0
    owns key 0 with readers {1, 2}, node 3 a non-replica). *)
module Ownership : sig
  type config = {
    requesters : int list;  (** nodes issuing Acquire intents *)
    crashable : int list;   (** nodes that may crash (at most one does) *)
    dup_budget : int;       (** how many deliveries may be duplicated *)
    fifo : bool;
        (** [false] (default, and the historical behaviour): the net is an
            arbitrarily reordered multiset — the ownership protocol has
            never assumed link order, and this pins that.  [true]
            restricts delivery to each link's oldest message (the ordered
            transport), a strict subset of the reordered behaviours. *)
  }

  val default_config : config

  type state

  val pp_state : Format.formatter -> state -> unit

  val explore : ?config:config -> ?max_states:int -> unit -> state Explorer.stats
end

(** Commit core under pipelining, partial streams, duplication and
    coordinator crash + replay (scenario of {!Commit_spec}: coordinator 0,
    object X on followers 1-2, object Y on follower 1 only). *)
module Commit : sig
  type txn = [ `X | `XY | `Y ]

  type config = {
    txns : txn list;  (** the coordinator's pipeline schedule *)
    crash : bool;     (** allow a coordinator crash *)
    dup_budget : int;
    fifo : bool;
        (** [true]: each link delivers in send order, matching the batched
            reliable transport / RDMA RC; duplication is an in-order double
            delivery.  [false]: the net is an arbitrarily reordered
            multiset — [Transport.unordered].  With the sequence-aware
            clear marks (the default) the protocol passes under both. *)
    clear_marks : Zeus_commit.Core.clear_marks;
        (** [Sequenced] (default): R-VALs carry explicit slot watermarks.
            [Legacy]: the historical arrival-order clearing; combined with
            [fifo = false] it reproduces the VAL-overtakes-first-INV
            buffering deadlock — [zeus_cli model]'s pinned negative
            control. *)
  }

  val default_config : config

  type state

  val pp_state : Format.formatter -> state -> unit

  val explore : ?config:config -> ?max_states:int -> unit -> state Explorer.stats
end
