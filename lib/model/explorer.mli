(** Bounded exhaustive state-space exploration.

    The paper model-checks the ownership and reliable-commit protocols in
    TLA+ against crash-stop failures, message reordering and duplication
    (§8).  This module is the executable analogue: breadth-first search
    over {e every} interleaving of a pure protocol specification
    ({!Ownership_spec}, {!Commit_spec}), checking an invariant in every
    reached state and a liveness-style predicate in every quiescent
    (transition-free) state. *)

type 'state stats = {
  explored : int;          (** distinct states visited *)
  transitions : int;
  quiescent : int;         (** states with no enabled transition *)
  max_depth : int;
  violation : ('state * string) option;
      (** first invariant (or quiescence-condition) violation found *)
  trace : 'state list;
      (** path from an initial state to the violation (empty if none) *)
}

val bfs :
  init:'state list ->
  next:('state -> 'state list) ->
  ?key:('state -> string) ->
  invariant:('state -> (unit, string) result) ->
  ?at_quiescence:('state -> (unit, string) result) ->
  ?max_states:int ->
  unit ->
  'state stats
(** [next] must return every successor of a state (all enabled transitions).
    States are deduplicated structurally (their marshalled bytes), so specs
    should keep their representations canonical (sorted collections).
    States whose in-memory representation is {e not} canonical — e.g. the
    real sans-I/O cores, whose token allocators and hashtable layouts vary
    with history ({!Core_harness}) — must pass an explicit canonical [key]:
    two states with equal keys are treated as the same state, so the key
    must capture everything that influences future behaviour.  Exploration
    stops at [max_states] (default 500_000) or at the first violation. *)
