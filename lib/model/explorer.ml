type 'state stats = {
  explored : int;
  transitions : int;
  quiescent : int;
  max_depth : int;
  violation : ('state * string) option;
  trace : 'state list;
}

let bfs ~init ~next ?key ~invariant ?at_quiescence ?(max_states = 500_000) () =
  (* By default states are deduplicated on their full marshalled
     representation: the default polymorphic hash only samples a few
     constructors of these deep states, which would collapse the table into
     collision chains.  Worlds whose representation is not canonical (token
     allocators, hashtable layouts, closures) pass an explicit canonical
     [key] instead. *)
  let key =
    match key with Some f -> f | None -> fun s -> Marshal.to_string s []
  in
  let seen = Hashtbl.create 65_536 in
  let parent = Hashtbl.create 65_536 in
  let queue = Queue.create () in
  let explored = ref 0 in
  let transitions = ref 0 in
  let quiescent = ref 0 in
  let max_depth = ref 0 in
  let violation = ref None in
  let enqueue ?from depth state =
    let k = key state in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      (match from with Some p -> Hashtbl.replace parent k p | None -> ());
      Queue.push (depth, state) queue
    end
  in
  List.iter (enqueue 0) init;
  (try
     while not (Queue.is_empty queue) do
       if !explored >= max_states then raise Exit;
       let depth, state = Queue.pop queue in
       incr explored;
       if depth > !max_depth then max_depth := depth;
       (match invariant state with
       | Ok () -> ()
       | Error msg ->
         violation := Some (state, msg);
         raise Exit);
       let succs = next state in
       if succs = [] then begin
         incr quiescent;
         match at_quiescence with
         | Some check -> (
           match check state with
           | Ok () -> ()
           | Error msg ->
             violation := Some (state, "at quiescence: " ^ msg);
             raise Exit)
         | None -> ()
       end
       else
         List.iter
           (fun s ->
             incr transitions;
             enqueue ~from:state (depth + 1) s)
           succs
     done
   with Exit -> ());
  let trace =
    match !violation with
    | None -> []
    | Some (bad, _) ->
      let rec walk s acc =
        match Hashtbl.find_opt parent (key s) with
        | Some p -> walk p (s :: acc)
        | None -> s :: acc
      in
      walk bad []
  in
  {
    explored = !explored;
    transitions = !transitions;
    quiescent = !quiescent;
    max_depth = !max_depth;
    violation = !violation;
    trace;
  }
