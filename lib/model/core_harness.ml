(* Bounded exploration of the REAL sans-I/O protocol cores.

   Where {!Ownership_spec} and {!Commit_spec} re-state the protocols as
   independent pure models (a cross-check, like the paper's TLA+), this
   harness drives the production state machines — {!Zeus_ownership.Core}
   and {!Zeus_commit.Core} — through {!Explorer.bfs}.  A world holds one
   core per node plus a model-level interpreter around each: a tiny
   replica store, a message multiset, armed timers, and the membership
   epoch.  Transitions feed real inputs (deliveries, API calls, timer
   fires, view changes) and execute the returned effects exactly as the
   simulator interpreters do, so every interleaving the checker visits is
   a behaviour the deployed code can exhibit.

   Worlds are deduplicated on {!OC.fingerprint}/{!CC.fingerprint}-based
   keys rather than their marshalled bytes: the cores' token allocators
   and hashtable layouts vary with history, and a timer fire that re-arms
   would otherwise never converge. *)

module OC = Zeus_ownership.Core
module OM = Zeus_ownership.Messages
module ODir = Zeus_ownership.Directory
module CC = Zeus_commit.Core
module CM = Zeus_commit.Messages
open Zeus_store

(* ---------- shared: the network multiset --------------------------------- *)

type msg = { m_src : Types.node_id; m_dst : Types.node_id; payload : Zeus_net.Msg.payload }

(* Structural equality/compare work on payloads: extension constructors
   compare by their unique ids, the remaining fields are plain data. *)
let remove_one x xs =
  let rec go = function
    | [] -> []
    | y :: tl -> if y = x then tl else y :: go tl
  in
  go xs

(* FIFO view of the net: each directed link's oldest message.  Both
   harnesses keep [net] in per-link send order (sends tail-append), so
   filtering to first-per-link yields exactly the messages an ordered
   transport could deliver next. *)
let link_heads net =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun m ->
      let l = (m.m_src, m.m_dst) in
      if Hashtbl.mem seen l then false
      else begin
        Hashtbl.add seen l ();
        true
      end)
    net

let pp_sep_semi ppf () = Format.pp_print_string ppf ";"
let pp_nodes ppf ns =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:pp_sep_semi Format.pp_print_int)
    ns

let pp_req_id ppf (r : OM.request_id) = Format.fprintf ppf "n%d#%d" r.origin r.seq

let pp_snap ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some (d : OM.data_snapshot) -> Format.fprintf ppf "v%d" d.t_version

let pp_node_opt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some n -> Format.fprintf ppf "n%d" n

let pp_update ppf (u : Txn.update) =
  Format.fprintf ppf "(k%d v%d%s)" u.key u.version (if u.freed then " freed" else "")

let pp_updates = Format.pp_print_list ~pp_sep:pp_sep_semi pp_update

let pp_payload ppf = function
  | OM.O_req { req_id; key; kind; requester; requester_has_data; epoch } ->
    Format.fprintf ppf "REQ(%a k%d %a from n%d%s e%d)" pp_req_id req_id key
      OM.pp_kind kind requester
      (if requester_has_data then " has-data" else "")
      epoch
  | OM.O_inv
      { req_id; key; o_ts; base_ts; new_replicas; kind; requester; arbiters;
        data_from; recovery; driver; epoch } ->
    Format.fprintf ppf "INV(%a k%d %a base %a %a %a from n%d arb %a data %a%s drv n%d e%d)"
      pp_req_id req_id key Ots.pp o_ts Ots.pp base_ts Replicas.pp new_replicas
      OM.pp_kind kind requester pp_nodes arbiters pp_node_opt data_from
      (if recovery then " recovery" else "")
      driver epoch
  | OM.O_ack { req_id; key; o_ts; new_replicas; arbiters; sender; data; epoch } ->
    Format.fprintf ppf "ACK(%a k%d %a %a arb %a by n%d data %a e%d)" pp_req_id
      req_id key Ots.pp o_ts Replicas.pp new_replicas pp_nodes arbiters sender
      pp_snap data epoch
  | OM.O_val { key; o_ts; epoch } ->
    Format.fprintf ppf "VAL(k%d %a e%d)" key Ots.pp o_ts epoch
  | OM.O_nack { req_id; key; o_ts; reason; epoch } ->
    Format.fprintf ppf "NACK(%a k%d %s %a e%d)" pp_req_id req_id key
      (match o_ts with Some ts -> Format.asprintf "%a" Ots.pp ts | None -> "-")
      OM.pp_nack reason epoch
  | OM.O_resp { req_id; key; o_ts; new_replicas; arbiters; data; epoch } ->
    Format.fprintf ppf "RESP(%a k%d %a %a arb %a data %a e%d)" pp_req_id req_id
      key Ots.pp o_ts Replicas.pp new_replicas pp_nodes arbiters pp_snap data
      epoch
  | OM.O_recovery_done { node; epoch } ->
    Format.fprintf ppf "RECOVERY-DONE(n%d e%d)" node epoch
  | OM.O_register { key; replicas } ->
    Format.fprintf ppf "REGISTER(k%d %a)" key Replicas.pp replicas
  | OM.O_forget { key } -> Format.fprintf ppf "FORGET(k%d)" key
  | CM.R_inv { tx; epoch; followers; writes; prev_val; replay } ->
    Format.fprintf ppf "R-INV(%a e%d to %a [%a]%s%s)" CM.pp_tx tx epoch pp_nodes
      followers pp_updates writes
      (if prev_val then " prev-val" else "")
      (if replay then " replay" else "")
  | CM.R_ack { tx; sender } -> Format.fprintf ppf "R-ACK(%a by n%d)" CM.pp_tx tx sender
  | CM.R_val { tx; upto; epoch } ->
    Format.fprintf ppf "R-VAL(%a upto %d e%d)" CM.pp_tx tx upto epoch
  | _ -> Format.pp_print_string ppf "?"

let pp_msg ppf m = Format.fprintf ppf "n%d->n%d %a" m.m_src m.m_dst pp_payload m.payload

let pp_net ppf net =
  let lines = List.sort compare (List.map (Format.asprintf "  %a" pp_msg) net) in
  List.iter (fun l -> Format.fprintf ppf "%s@," l) lines

(* ========================================================================== *)
(* Ownership                                                                  *)
(* ========================================================================== *)

module Ownership = struct
  (* Same scenario as {!Ownership_spec}: nodes 0-2 are directory replicas,
     node 0 initially owns key 0 with readers {1, 2}, node 3 is a
     non-replica.  Acquire intents race through real drivers; one
     crash-stop failure triggers a view change and arb-replay. *)

  let nnodes = 4
  let key0 = 0
  let dirs = [ 0; 1; 2 ]
  let dir _ = dirs

  (* [fifo = false] (the default, and the only mode that ever existed
     here) treats the net as an arbitrarily reordered multiset: the
     ownership protocol has never assumed link order, and running the
     scenarios this way pins that.  [fifo = true] is the strict subset of
     behaviours an ordered transport exhibits. *)
  type config = {
    requesters : int list;
    crashable : int list;
    dup_budget : int;
    fifo : bool;
  }

  let default_config =
    { requesters = [ 1; 3 ]; crashable = [ 0; 1 ]; dup_budget = 0; fifo = false }

  (* Timeouts at zero: the model is untimed ([now] stays 0.0), so every
     "old enough to replay" check passes and the replay decision is purely
     the checker's. *)
  let model_config =
    { OC.request_timeout_us = 0.0; replay_after_us = 0.0; replay_sweep_us = 0.0 }

  (* One node's replica of the object, at the granularity the core's
     [facts] and store effects actually touch. *)
  type mobj = {
    mutable exists : bool;
    mutable role : Types.role;
    mutable o_state : Types.o_state;
    mutable o_ts : Ots.t;
    mutable version : int;
  }

  type state = {
    cores : OC.state array;
    stores : mobj array;
    mutable net : msg list;
    mutable timers : (Types.node_id * int * OC.timer_kind) list;
    mutable waiting : (Types.node_id * int) list;
        (** issued requests whose continuation has not fired (node, seq) *)
    mutable to_issue : Types.node_id list;
    mutable crashed : Types.node_id option;
    mutable epoch : int;
    mutable epoch_pending : bool;
    mutable dups_left : int;
  }

  let fab_live w j = w.crashed <> Some j

  (* The membership view lags a crash until the epoch tick. *)
  let view_live w j = fab_live w j || w.epoch_pending

  let env w i =
    {
      OC.now = 0.0;
      epoch = w.epoch;
      live = Array.init nnodes (view_live w);
      self_alive = fab_live w i;
      trace_on = false;
    }

  let snapshot (m : mobj) =
    if m.exists then Some { OM.value = Value.empty; t_version = m.version }
    else None

  (* Effect interpreter — the model-store analogue of {!Zeus_ownership.Agent},
     with apply semantics at the granularity of {!Zeus_core.Node}. *)
  let exec_eff w i eff =
    let m = w.stores.(i) in
    match eff with
    | OC.Send { dst; payload; _ } ->
      (* Tail-append: the list stays in per-link send order, which the
         [fifo = true] delivery rule reads; an order-free multiset
         ([fifo = false]) does not care. *)
      w.net <- w.net @ [ { m_src = i; m_dst = dst; payload } ]
    | OC.Send_ack_local_data { dst; req_id; key; o_ts; new_replicas; arbiters; epoch } ->
      w.net <-
        w.net
        @ [
            {
              m_src = i;
              m_dst = dst;
              payload =
                OM.O_ack
                  { req_id; key; o_ts; new_replicas; arbiters; sender = i;
                    data = snapshot m; epoch };
            };
          ]
    | OC.Flush -> ()
    | OC.Set_timer { token; kind = OC.T_replay _ as kind; _ } ->
      w.timers <- (i, token, kind) :: w.timers
    | OC.Set_timer _ -> ()
        (* request timeouts and their cleanup never fire in the untimed
           model, exactly as in the specs *)
    | OC.Cancel_timer token ->
      w.timers <- List.filter (fun (n, tok, _) -> not (n = i && tok = token)) w.timers
    | OC.Apply_arbiter { kind; o_ts; _ } ->
      if m.exists then begin
        m.o_ts <- o_ts;
        match kind with
        | OM.Acquire -> if m.role = Types.Owner then m.role <- Types.Reader
        | OM.Add_reader -> ()
        | OM.Remove_reader r -> if r = i then m.exists <- false
      end
    | OC.Apply_requester { kind; o_ts; data; _ } -> (
      match kind with
      | OM.Remove_reader r ->
        if m.exists then begin
          m.o_ts <- o_ts;
          if r = i then m.exists <- false
        end
      | OM.Acquire | OM.Add_reader ->
        if not m.exists then begin
          m.exists <- true;
          m.version <- (match data with Some d -> d.OM.t_version | None -> 0)
        end
        else (
          match data with
          | Some d when d.OM.t_version > m.version -> m.version <- d.OM.t_version
          | _ -> ());
        m.role <- (match kind with OM.Acquire -> Types.Owner | _ -> Types.Reader);
        m.o_ts <- o_ts;
        m.o_state <- Types.O_valid)
    | OC.Set_o_state { o_state; _ } -> if m.exists then m.o_state <- o_state
    | OC.Restore_request_state _ ->
      if m.exists && m.o_state = Types.O_request then m.o_state <- Types.O_valid
    | OC.Drop_dead_replicas _ -> ()
    | OC.Notify_request _ | OC.Notify_owner_change _ -> ()
    | OC.Unblock { seq; _ } ->
      w.waiting <- List.filter (fun (n, s) -> not (n = i && s = seq)) w.waiting
    | OC.Telemetry _ -> ()

  let feed w i input =
    let _, effs = OC.handle ~dir w.cores.(i) input in
    List.iter (exec_eff w i) effs

  (* Store facts sampled exactly as the simulator interpreter samples them;
     [busy] is the branch point the checker injects in place of the commit
     layer's [is_busy]. *)
  let facts_for w i ~busy (payload : Zeus_net.Msg.payload) =
    let m = w.stores.(i) in
    match payload with
    | OM.O_req _ -> { OC.no_facts with OC.f_busy = busy }
    | OM.O_inv _ ->
      if m.exists then
        { OC.f_exists = true; f_o_ts = m.o_ts; f_is_owner = m.role = Types.Owner;
          f_busy = busy; f_snapshot = None }
      else { OC.no_facts with OC.f_busy = busy }
    | OM.O_ack { req_id; key; _ } ->
      {
        OC.no_facts with
        OC.f_exists = m.exists;
        f_snapshot =
          (if req_id.OM.origin <> i && OC.has_replay w.cores.(i) key then snapshot m
           else None);
      }
    | OM.O_resp _ ->
      if m.exists then { OC.no_facts with OC.f_exists = true; f_o_ts = m.o_ts }
      else OC.no_facts
    | _ -> OC.no_facts

  (* A delivery consults the owner's busy flag only when the destination
     actually owns a valid copy — the only case the core reads [f_busy]. *)
  let busy_branches w (msg : msg) =
    let m = w.stores.(msg.m_dst) in
    let applicable =
      (match msg.payload with OM.O_req _ | OM.O_inv _ -> true | _ -> false)
      && fab_live w msg.m_dst && m.exists
      && m.role = Types.Owner
    in
    if applicable then [ false; true ] else [ false ]

  let deliver w (msg : msg) ~busy =
    if fab_live w msg.m_dst then
      feed w msg.m_dst
        (OC.Deliver
           { src = msg.m_src; payload = msg.payload;
             facts = facts_for w msg.m_dst ~busy msg.payload;
             env = env w msg.m_dst })

  let issue w r =
    w.to_issue <- List.filter (fun x -> x <> r) w.to_issue;
    if fab_live w r then begin
      let seq = OC.next_seq w.cores.(r) in
      w.waiting <- (r, seq) :: w.waiting;
      feed w r
        (OC.Api_request
           { key = key0; kind = OM.Acquire;
             facts = { OC.no_facts with OC.f_exists = w.stores.(r).exists };
             env = env w r })
    end

  let crash w v =
    w.crashed <- Some v;
    w.epoch_pending <- true

  (* The membership service installs the new view everywhere, then the
     commit layer (empty in this world) drains instantly and announces
     recovery-done — un-gating the directories once every node's
     announcement arrives. *)
  let tick w =
    w.epoch <- w.epoch + 1;
    w.epoch_pending <- false;
    for i = 0 to nnodes - 1 do
      if fab_live w i then
        feed w i
          (OC.View_change
             { view_epoch = w.epoch; live = Array.init nnodes (view_live w);
               env = env w i })
    done;
    for i = 0 to nnodes - 1 do
      if fab_live w i then feed w i (OC.Api_recovery_done { epoch = w.epoch; env = env w i })
    done

  let fire w i token kind =
    w.timers <- List.filter (fun (n, tok, _) -> not (n = i && tok = token)) w.timers;
    let facts =
      match kind with
      | OC.T_replay _ -> { OC.no_facts with OC.f_snapshot = snapshot w.stores.(i) }
      | _ -> OC.no_facts
    in
    feed w i (OC.Timer_fire { token; kind; facts; env = env w i })

  (* Drop state that can no longer influence behaviour, keeping the world
     representation canonical: messages to / timers of the dead, and
     replay timers whose pending arbitration moved on (the zombie timers
     the simulator lets fire harmlessly). *)
  let normalize w =
    (match w.crashed with
    | Some v ->
      w.net <- List.filter (fun m -> m.m_dst <> v) w.net;
      w.timers <- List.filter (fun (n, _, _) -> n <> v) w.timers;
      w.waiting <- List.filter (fun (n, _) -> n <> v) w.waiting;
      w.to_issue <- List.filter (fun r -> r <> v) w.to_issue
    | None -> ());
    w.timers <-
      List.filter
        (fun (i, _, k) ->
          match k with
          | OC.T_replay { key; o_ts } -> (
            match OC.pending_ts w.cores.(i) key with
            | Some ts -> Ots.equal ts o_ts
            | None -> false)
          | _ -> false)
        w.timers

  let copy w =
    {
      cores = Array.map OC.copy w.cores;
      stores = Array.map (fun m -> { m with exists = m.exists }) w.stores;
      net = w.net;
      timers = w.timers;
      waiting = w.waiting;
      to_issue = w.to_issue;
      crashed = w.crashed;
      epoch = w.epoch;
      epoch_pending = w.epoch_pending;
      dups_left = w.dups_left;
    }

  let init_world config =
    let w =
      {
        cores =
          Array.init nnodes (fun i ->
              OC.create ~config:model_config ~self:i ~nodes:nnodes ());
        stores =
          Array.init nnodes (fun i ->
              if i < 3 then
                { exists = true;
                  role = (if i = 0 then Types.Owner else Types.Reader);
                  o_state = Types.O_valid; o_ts = Ots.zero; version = 0 }
              else
                { exists = false; role = Types.Reader; o_state = Types.O_valid;
                  o_ts = Ots.zero; version = 0 });
        net = [];
        timers = [];
        waiting = [];
        to_issue = config.requesters;
        crashed = None;
        epoch = 0;
        epoch_pending = false;
        dups_left = config.dup_budget;
      }
    in
    let replicas = Replicas.v ~owner:0 ~readers:[ 1; 2 ] in
    List.iter (fun d -> feed w d (OC.Api_seed { key = key0; replicas })) dirs;
    w

  (* An armed replay timer is meaningful to fire when the arbitration it
     watches is still pending and nothing about its timestamp is in
     flight — the executable reading of "blocked long enough". *)
  let mentions_ts w ts =
    List.exists
      (fun m ->
        match m.payload with
        | OM.O_inv { o_ts; _ } | OM.O_ack { o_ts; _ } | OM.O_val { o_ts; _ }
        | OM.O_resp { o_ts; _ } ->
          Ots.equal o_ts ts
        | OM.O_nack { o_ts = Some ts'; _ } -> Ots.equal ts' ts
        | _ -> false)
      w.net

  let replay_fires w =
    if w.epoch_pending then []
    else
      List.filter
        (fun (i, _, k) ->
          match k with
          | OC.T_replay { o_ts; _ } -> fab_live w i && not (mentions_ts w o_ts)
          | _ -> false)
        w.timers

  (* At most one fire per (node, kind): duplicates left by view-change
     re-arming are interchangeable. *)
  let dedup_fires fires =
    List.fold_left
      (fun acc ((i, _, k) as f) ->
        if List.exists (fun (j, _, k') -> i = j && k = k') acc then acc
        else acc @ [ f ])
      [] fires

  let transitions config w =
    let succs = ref [] in
    let push f =
      let w' = copy w in
      f w';
      normalize w';
      succs := w' :: !succs
    in
    let deliverable =
      if config.fifo then link_heads w.net else List.sort_uniq compare w.net
    in
    List.iter
      (fun msg ->
        List.iter
          (fun busy ->
            push (fun w' ->
                w'.net <- remove_one msg w'.net;
                deliver w' msg ~busy);
            if w.dups_left > 0 then
              if config.fifo then
                (* An in-order duplicate: the frame is delivered twice
                   back-to-back, never leapfrogged by later traffic. *)
                push (fun w' ->
                    w'.dups_left <- w'.dups_left - 1;
                    w'.net <- remove_one msg w'.net;
                    deliver w' msg ~busy;
                    deliver w' msg ~busy)
              else
                push (fun w' ->
                    w'.dups_left <- w'.dups_left - 1;
                    deliver w' msg ~busy))
          (busy_branches w msg))
      deliverable;
    List.iter (fun r -> push (fun w' -> issue w' r)) w.to_issue;
    if w.crashed = None then
      List.iter (fun v -> push (fun w' -> crash w' v)) config.crashable;
    if w.epoch_pending then push tick;
    List.iter (fun (i, token, kind) -> push (fun w' -> fire w' i token kind))
      (dedup_fires (replay_fires w));
    !succs

  (* ---------- invariants -------------------------------------------------- *)

  let all_nodes = List.init nnodes Fun.id

  let owners w =
    List.filter
      (fun i ->
        fab_live w i
        &&
        let m = w.stores.(i) in
        m.exists && m.role = Types.Owner && m.o_state = Types.O_valid)
      all_nodes

  (* Live directory replicas whose entry is in the applied (valid) state. *)
  let valid_entries w =
    List.filter_map
      (fun d ->
        if fab_live w d then
          match ODir.find (OC.directory w.cores.(d)) key0 with
          | Some e when e.ODir.pending = None && e.ODir.o_state = Types.O_valid ->
            Some (d, e)
          | _ -> None
        else None)
      dirs

  let canon_reps w (r : Replicas.t) =
    let r = Replicas.drop_dead r ~live:(fab_live w) in
    { r with Replicas.readers = List.sort compare r.Replicas.readers }

  let invariant w =
    match owners w with
    | _ :: _ :: _ as os ->
      Error (Format.asprintf "two live valid owners: %a" pp_nodes os)
    | _ ->
      let rec agree = function
        | [] -> Ok ()
        | (d1, (e1 : ODir.entry)) :: rest -> (
          match
            List.find_opt
              (fun (_, (e2 : ODir.entry)) ->
                Ots.equal e1.ODir.o_ts e2.ODir.o_ts
                && canon_reps w e1.ODir.replicas <> canon_reps w e2.ODir.replicas)
              rest
          with
          | Some (d2, e2) ->
            Error
              (Format.asprintf
                 "dirs n%d/n%d disagree at %a: %a vs %a (modulo dead)" d1 d2
                 Ots.pp e1.ODir.o_ts Replicas.pp e1.ODir.replicas Replicas.pp
                 e2.ODir.replicas)
          | None -> agree rest)
      in
      agree (valid_entries w)

  let at_quiescence w =
    let live_nodes = List.filter (fab_live w) all_nodes in
    match
      List.find_opt (fun i -> OC.pending_ts w.cores.(i) key0 <> None) live_nodes
    with
    | Some i -> Error (Format.asprintf "n%d: pending arbitration never resolved" i)
    | None -> (
      match w.waiting with
      | (n, seq) :: _ ->
        Error (Format.asprintf "n%d: request #%d never reached a verdict" n seq)
      | [] -> (
        let entries = valid_entries w in
        match owners w with
        | [] ->
          if w.crashed = None then Error "no live owner without a crash"
          else begin
            (* permanently orphaned is allowed only if every freshest
               surviving directory names the dead node (or nobody) *)
            let max_ts =
              List.fold_left
                (fun acc (_, (e : ODir.entry)) ->
                  if Ots.compare e.ODir.o_ts acc > 0 then e.ODir.o_ts else acc)
                Ots.zero entries
            in
            match
              List.find_opt
                (fun (_, (e : ODir.entry)) ->
                  Ots.equal e.ODir.o_ts max_ts
                  &&
                  match e.ODir.replicas.Replicas.owner with
                  | Some o -> fab_live w o
                  | None -> false)
                entries
            with
            | Some (d, e) ->
              Error
                (Format.asprintf
                   "no live valid owner, yet dir n%d's freshest entry names live n%d"
                   d
                   (Option.get e.ODir.replicas.Replicas.owner))
            | None -> Ok ()
          end
        | [ o ] -> (
          let owner_ts = w.stores.(o).o_ts in
          match
            List.find_opt
              (fun (_, (e : ODir.entry)) ->
                if Ots.equal e.ODir.o_ts owner_ts then
                  e.ODir.replicas.Replicas.owner <> Some o
                else Ots.compare e.ODir.o_ts owner_ts > 0)
              entries
          with
          | Some (d, e) ->
            Error
              (Format.asprintf "dir n%d at %a contradicts owner n%d at %a" d
                 Ots.pp e.ODir.o_ts o Ots.pp owner_ts)
          | None -> Ok ())
        | os -> Error (Format.asprintf "two live valid owners: %a" pp_nodes os)))

  (* ---------- canonical key / display ------------------------------------- *)

  let pp_timer ppf = function
    | OC.T_replay { key; o_ts } -> Format.fprintf ppf "replay(k%d %a)" key Ots.pp o_ts
    | OC.T_timeout { seq; key; _ } -> Format.fprintf ppf "timeout(#%d k%d)" seq key
    | OC.T_cleanup { seq; _ } -> Format.fprintf ppf "cleanup(#%d)" seq

  let pp_mobj ppf (m : mobj) =
    if m.exists then
      Format.fprintf ppf "%a %a %a v%d" Types.pp_role m.role Types.pp_o_state
        m.o_state Ots.pp m.o_ts m.version
    else Format.pp_print_string ppf "-"

  let fingerprint config w =
    let b = Buffer.create 1024 in
    let add fmt = Format.kasprintf (Buffer.add_string b) fmt in
    add "e%d%s crash=%s dup=%d issue=%a;"
      w.epoch
      (if w.epoch_pending then "+p" else "")
      (match w.crashed with Some v -> "n" ^ string_of_int v | None -> "-")
      w.dups_left pp_nodes (List.sort compare w.to_issue);
    Array.iteri
      (fun i m ->
        if fab_live w i then
          add "n%d[%a | %s];" i pp_mobj m (OC.fingerprint w.cores.(i))
        else add "n%d[dead];" i)
      w.stores;
    (* Under FIFO links the per-link order is behaviour — fold it into the
       key link by link; a reordering net is an order-free multiset. *)
    let net =
      if config.fifo then
        let links =
          List.sort_uniq compare (List.map (fun m -> (m.m_src, m.m_dst)) w.net)
        in
        List.map
          (fun (s, d) ->
            let ps =
              List.filter_map
                (fun m ->
                  if m.m_src = s && m.m_dst = d then
                    Some (Format.asprintf "%a" pp_payload m.payload)
                  else None)
                w.net
            in
            Format.asprintf "n%d->n%d:[%s]" s d (String.concat "|" ps))
          links
      else List.sort compare (List.map (Format.asprintf "%a" pp_msg) w.net)
    in
    add "net{%s};" (String.concat " " net);
    let timers =
      List.sort_uniq compare
        (List.map (fun (i, _, k) -> Format.asprintf "n%d:%a" i pp_timer k) w.timers)
    in
    add "timers{%s};" (String.concat " " timers);
    let waiting =
      List.sort compare (List.map (fun (n, s) -> Printf.sprintf "n%d#%d" n s) w.waiting)
    in
    add "waiting{%s}" (String.concat " " waiting);
    Buffer.contents b

  let pp_state ppf w =
    Format.fprintf ppf "@[<v>epoch %d%s  crashed %s  dups %d  to-issue %a@,"
      w.epoch
      (if w.epoch_pending then " (tick pending)" else "")
      (match w.crashed with Some v -> "n" ^ string_of_int v | None -> "-")
      w.dups_left pp_nodes w.to_issue;
    Array.iteri
      (fun i m ->
        if fab_live w i then
          Format.fprintf ppf "n%d: %a  dir %s@," i pp_mobj m
            (match ODir.find (OC.directory w.cores.(i)) key0 with
            | Some e ->
              Format.asprintf "%a %a %a%s" Types.pp_o_state e.ODir.o_state Ots.pp
                e.ODir.o_ts Replicas.pp e.ODir.replicas
                (match e.ODir.pending with
                | Some p -> Format.asprintf " pending %a" Ots.pp p.ODir.o_ts
                | None -> "")
            | None -> "-")
        else Format.fprintf ppf "n%d: dead@," i)
      w.stores;
    List.iter
      (fun (i, _, k) -> Format.fprintf ppf "timer n%d %a@," i pp_timer k)
      w.timers;
    List.iter (fun (n, s) -> Format.fprintf ppf "waiting n%d#%d@," n s) w.waiting;
    pp_net ppf w.net;
    Format.fprintf ppf "@]"

  let explore ?(config = default_config) ?max_states () =
    Explorer.bfs
      ~init:[ init_world config ]
      ~next:(transitions config) ~key:(fingerprint config) ~invariant
      ~at_quiescence ?max_states ()
end

(* ========================================================================== *)
(* Commit                                                                     *)
(* ========================================================================== *)

module Commit = struct
  (* Same scenario as {!Commit_spec}: coordinator node 0 pipelines a fixed
     transaction schedule over object X (on followers 1 and 2) and object Y
     (on follower 1 only — a partial stream), with optional duplication and
     a coordinator crash followed by follower replay. *)

  let coord = 0
  let nnodes = 3
  let obj_x = 0
  let obj_y = 1
  let replicas_of k = if k = obj_x then [ 0; 1; 2 ] else [ 0; 1 ]
  let has i k = List.mem i (replicas_of k)

  type txn = [ `X | `XY | `Y ]

  type config = {
    txns : txn list;
    crash : bool;
    dup_budget : int;
    fifo : bool;
    clear_marks : CC.clear_marks;
  }

  let default_config =
    {
      txns = [ `Y; `XY; `X ];
      crash = true;
      dup_budget = 0;
      fifo = true;
      clear_marks = CC.Sequenced;
    }

  type cobj = { mutable ver : int; mutable valid : bool }

  type state = {
    cores : CC.state array;
    stores : cobj array array;  (** [node].(object) — meaningful where [has] *)
    mutable net : msg list;
    mutable issued : int;
    mutable crashed : bool;
    mutable epoch : int;
    mutable epoch_pending : bool;
    mutable dups_left : int;
  }

  let fab_live w j = not (w.crashed && j = coord)
  let view_live w j = fab_live w j || w.epoch_pending

  let env w _i =
    { CC.epoch = w.epoch; live = Array.init nnodes (view_live w); trace_on = false }

  (* Effect interpreter: the store transforms run their per-update loops
     against the model store, with the spec's has-guard — a node only
     tracks objects it is configured to replicate. *)
  let exec_eff w i eff =
    match eff with
    | CC.Send { dst; payload; _ } ->
      (* Appended at the tail so the list order is the per-link send order —
         the FIFO delivery rule below depends on it. *)
      w.net <- w.net @ [ { m_src = i; m_dst = dst; payload } ]
    | CC.Flush -> ()
    | CC.Validate_local { writes } ->
      List.iter
        (fun (u : Txn.update) ->
          let m = w.stores.(i).(u.key) in
          if m.ver = u.version then m.valid <- true)
        writes
    | CC.Apply_writes { writes; _ } ->
      List.iter
        (fun (u : Txn.update) ->
          if has i u.key then begin
            let m = w.stores.(i).(u.key) in
            if u.version > m.ver then begin
              m.ver <- u.version;
              m.valid <- false
            end
          end)
        writes
    | CC.Validate_stored { writes } ->
      List.iter
        (fun (u : Txn.update) ->
          if has i u.key then begin
            let m = w.stores.(i).(u.key) in
            if m.ver = u.version then m.valid <- true
          end)
        writes
    | CC.Durable _ -> ()
    | CC.Drained _ -> ()
    | CC.Telemetry _ -> ()

  let feed w i input =
    let _, effs = CC.handle w.cores.(i) input in
    List.iter (exec_eff w i) effs

  let objs_of = function `X -> [ obj_x ] | `Y -> [ obj_y ] | `XY -> [ obj_x; obj_y ]

  (* A local commit: bump + invalidate the coordinator's copies (what
     [Txn.local_commit] does), then hand the updates to the real core. *)
  let do_commit w txn =
    w.issued <- w.issued + 1;
    let updates =
      List.map
        (fun k ->
          let m = w.stores.(coord).(k) in
          m.ver <- m.ver + 1;
          m.valid <- false;
          { Txn.key = k; version = m.ver; data = Value.empty; freed = false })
        (objs_of txn)
    in
    let replica_sets = List.map (fun (u : Txn.update) -> replicas_of u.Txn.key) updates in
    feed w coord
      (CC.Api_commit
         { thread = 0; updates; replica_sets; has_durable = false; env = env w coord })

  let deliver w (msg : msg) =
    if fab_live w msg.m_dst then
      feed w msg.m_dst
        (CC.Deliver { src = msg.m_src; payload = msg.payload; env = env w msg.m_dst })

  let crash w =
    w.crashed <- true;
    w.epoch_pending <- true;
    w.net <- List.filter (fun m -> m.m_dst <> coord) w.net

  let tick w =
    w.epoch <- w.epoch + 1;
    w.epoch_pending <- false;
    for i = 0 to nnodes - 1 do
      if fab_live w i then
        feed w i
          (CC.View_change
             { view_epoch = w.epoch; live = Array.init nnodes (view_live w);
               env = env w i })
    done

  let copy w =
    {
      cores = Array.map CC.copy w.cores;
      stores = Array.map (Array.map (fun m -> { m with ver = m.ver })) w.stores;
      net = w.net;
      issued = w.issued;
      crashed = w.crashed;
      epoch = w.epoch;
      epoch_pending = w.epoch_pending;
      dups_left = w.dups_left;
    }

  let init_world config =
    {
      cores =
        Array.init nnodes (fun i ->
            CC.create ~clear_marks:config.clear_marks ~self:i ~nodes:nnodes ());
      stores =
        Array.init nnodes (fun _ -> Array.init 2 (fun _ -> { ver = 0; valid = true }));
      net = [];
      issued = 0;
      crashed = false;
      epoch = 0;
      epoch_pending = false;
      dups_left = config.dup_budget;
    }

  (* With [fifo = true] only each link's oldest message is deliverable —
     the deployed ordered transport (batched reliable messaging, the
     paper's RDMA RC).  With [fifo = false] the net is an arbitrarily
     reordered multiset — [Transport.unordered] or a multipath fabric.
     Since the sequence-aware clear marks ([CC.Sequenced], the default)
     the protocol passes under both; [clear_marks = CC.Legacy] +
     [fifo = false] reproduces the historical VAL-overtakes-first-INV
     buffering deadlock, kept as [zeus_cli model]'s negative control. *)
  let transitions config w =
    let succs = ref [] in
    let push f =
      let w' = copy w in
      f w';
      succs := w' :: !succs
    in
    let deliverable =
      if config.fifo then link_heads w.net else List.sort_uniq compare w.net
    in
    List.iter
      (fun msg ->
        push (fun w' ->
            w'.net <- remove_one msg w'.net;
            deliver w' msg);
        if w.dups_left > 0 then
          if config.fifo then
            (* An in-order duplicate: the frame is delivered twice
               back-to-back (a retransmitted window overlapping delivery
               with receive-side dedup off). *)
            push (fun w' ->
                w'.dups_left <- w'.dups_left - 1;
                w'.net <- remove_one msg w'.net;
                deliver w' msg;
                deliver w' msg)
          else
            push (fun w' ->
                w'.dups_left <- w'.dups_left - 1;
                deliver w' msg))
      deliverable;
    (if not w.crashed then
       match List.nth_opt config.txns w.issued with
       | Some txn -> push (fun w' -> do_commit w' txn)
       | None -> ());
    if config.crash && not w.crashed && w.issued > 0 then push crash;
    if w.epoch_pending then push tick;
    !succs

  (* ---------- invariants -------------------------------------------------- *)

  let all_nodes = List.init nnodes Fun.id

  let invariant w =
    let bad = ref (Ok ()) in
    List.iter
      (fun k ->
        let valids =
          List.filter_map
            (fun i ->
              if fab_live w i && has i k && w.stores.(i).(k).valid then
                Some (i, w.stores.(i).(k).ver)
              else None)
            all_nodes
        in
        match valids with
        | (i1, v1) :: rest -> (
          match List.find_opt (fun (_, v) -> v <> v1) rest with
          | Some (i2, v2) ->
            if !bad = Ok () then
              bad :=
                Error
                  (Format.asprintf
                     "object %d: valid copies disagree (n%d@v%d vs n%d@v%d)" k i1
                     v1 i2 v2)
          | None -> ())
        | [] -> ())
      [ obj_x; obj_y ];
    !bad

  let at_quiescence config w =
    let live_nodes = List.filter (fab_live w) all_nodes in
    let followers = List.filter (fun i -> i <> coord) live_nodes in
    match List.find_opt (fun i -> CC.buffered_invs w.cores.(i) > 0) followers with
    | Some i ->
      (* The reordering deadlock's signature: an R-INV waiting forever for
         a predecessor slot that already cleared. *)
      Error (Format.asprintf "n%d still holds buffered R-INVs" i)
    | None -> (
    match List.find_opt (fun i -> CC.stored_invs w.cores.(i) > 0) followers with
    | Some i -> Error (Format.asprintf "n%d still holds stored R-INVs" i)
    | None -> (
      match List.find_opt (fun i -> CC.replaying_count w.cores.(i) > 0) live_nodes with
      | Some i -> Error (Format.asprintf "n%d's replay never finished" i)
      | None -> (
        match
          List.find_opt (fun i -> CC.recovering_epoch w.cores.(i) <> None) live_nodes
        with
        | Some i -> Error (Format.asprintf "n%d's recovery drain never completed" i)
        | None ->
          if not w.crashed then begin
            if w.issued < List.length config.txns then
              Error "schedule never fully issued"
            else if CC.inflight w.cores.(coord) > 0 then
              Error "coordinator slots never validated"
            else
              let stale =
                List.concat_map
                  (fun i ->
                    List.filter_map
                      (fun k ->
                        if has i k then begin
                          let m = w.stores.(i).(k) in
                          if (not m.valid) || m.ver <> w.stores.(coord).(k).ver then
                            Some (i, k)
                          else None
                        end
                        else None)
                      [ obj_x; obj_y ])
                  live_nodes
              in
              match stale with
              | (i, k) :: _ ->
                Error
                  (Format.asprintf
                     "n%d's object %d did not converge to the coordinator (v%d, \
                      coordinator v%d, valid %b)"
                     i k w.stores.(i).(k).ver w.stores.(coord).(k).ver
                     w.stores.(i).(k).valid)
              | [] -> Ok ()
          end
          else begin
            (* survivors must agree on X and hold fully validated copies
               of everything they replicate *)
            if w.stores.(1).(obj_x).ver <> w.stores.(2).(obj_x).ver then
              Error
                (Format.asprintf "survivors diverge on X: n1@v%d vs n2@v%d"
                   w.stores.(1).(obj_x).ver w.stores.(2).(obj_x).ver)
            else
              match
                List.find_opt
                  (fun (i, k) -> has i k && not w.stores.(i).(k).valid)
                  [ (1, obj_x); (1, obj_y); (2, obj_x) ]
              with
              | Some (i, k) ->
                Error (Format.asprintf "n%d's object %d never revalidated" i k)
              | None -> Ok ()
          end)))

  (* ---------- canonical key / display ------------------------------------- *)

  let pp_store ppf (w, i) =
    List.iter
      (fun k ->
        if has i k then
          Format.fprintf ppf "%s:v%d%s "
            (if k = obj_x then "X" else "Y")
            w.stores.(i).(k).ver
            (if w.stores.(i).(k).valid then "" else "*"))
      [ obj_x; obj_y ]

  let fingerprint config w =
    let b = Buffer.create 1024 in
    let add fmt = Format.kasprintf (Buffer.add_string b) fmt in
    add "e%d%s crash=%b dup=%d issued=%d;"
      w.epoch
      (if w.epoch_pending then "+p" else "")
      w.crashed w.dups_left w.issued;
    Array.iteri
      (fun i _ ->
        if fab_live w i then
          add "n%d[%a| %s];" i pp_store (w, i) (CC.fingerprint w.cores.(i))
        else add "n%d[dead];" i)
      w.cores;
    (* Under FIFO links the per-link order is behaviour — fold it into the
       key link by link; a reordering net is an order-free multiset. *)
    let net_part =
      if config.fifo then
        let links =
          List.sort_uniq compare (List.map (fun m -> (m.m_src, m.m_dst)) w.net)
        in
        String.concat " "
          (List.map
             (fun (s, d) ->
               let ps =
                 List.filter_map
                   (fun m ->
                     if m.m_src = s && m.m_dst = d then
                       Some (Format.asprintf "%a" pp_payload m.payload)
                     else None)
                   w.net
               in
               Format.asprintf "n%d->n%d:[%s]" s d (String.concat "|" ps))
             links)
      else
        String.concat " "
          (List.sort compare (List.map (Format.asprintf "%a" pp_msg) w.net))
    in
    add "net{%s}" net_part;
    Buffer.contents b

  let pp_state ppf w =
    Format.fprintf ppf "@[<v>epoch %d%s  crashed %b  dups %d  issued %d@,"
      w.epoch
      (if w.epoch_pending then " (tick pending)" else "")
      w.crashed w.dups_left w.issued;
    Array.iteri
      (fun i _ ->
        if fab_live w i then
          Format.fprintf ppf
            "n%d: %a inflight %d stored %d replaying %d@," i pp_store (w, i)
            (CC.inflight w.cores.(i))
            (CC.stored_invs w.cores.(i))
            (CC.replaying_count w.cores.(i))
        else Format.fprintf ppf "n%d: dead@," i)
      w.cores;
    pp_net ppf w.net;
    Format.fprintf ppf "@]"

  let explore ?(config = default_config) ?max_states () =
    Explorer.bfs
      ~init:[ init_world config ]
      ~next:(transitions config) ~key:(fingerprint config) ~invariant
      ~at_quiescence:(at_quiescence config) ?max_states ()
end
