module Rng = Zeus_sim.Rng
module Value = Zeus_store.Value

type t = {
  hermes : Hermes.t;
  rng : Rng.t;
  mutable backends : Zeus_net.Msg.node_id list;
  mutable placement_hint : (int -> Zeus_net.Msg.node_id option) option;
  mutable hits : int;
  mutable misses : int;
  mutable hint_hits : int;
  mutable reassigns : int;
}

let create ~node ~lb_nodes ~backends transport =
  {
    hermes = Hermes.create ~node ~replicas:lb_nodes transport;
    rng =
      Zeus_sim.Engine.fork_rng
        (Zeus_net.Fabric.engine (Zeus_net.Transport.fabric transport));
    backends;
    placement_hint = None;
    hits = 0;
    misses = 0;
    hint_hits = 0;
    reassigns = 0;
  }

let hermes t = t.hermes
let hits t = t.hits
let misses t = t.misses
let hint_hits t = t.hint_hits
let reassigns t = t.reassigns
let set_backends t backends = t.backends <- backends
let set_placement_hint t f = t.placement_hint <- Some f

let route t ~key k =
  (* A placement engine's pin overrides the sticky map: a thrashing key's
     requests must follow the pin immediately, not after the reassign
     write propagates. *)
  match match t.placement_hint with Some f -> f key | None -> None with
  | Some dst ->
    t.hint_hits <- t.hint_hits + 1;
    k dst
  | None ->
    Hermes.read_wait t.hermes key (fun v ->
        match v with
        | Some dst ->
          t.hits <- t.hits + 1;
          k (Value.to_int dst)
        | None ->
          t.misses <- t.misses + 1;
          let dst = List.nth t.backends (Rng.int t.rng (List.length t.backends)) in
          Hermes.write t.hermes ~key (Value.of_int dst) (fun () -> k dst))

let reassign t ~key dst k =
  t.reassigns <- t.reassigns + 1;
  Hermes.write t.hermes ~key (Value.of_int dst) k

let handle t ~src payload = Hermes.handle t.hermes ~src payload
