(** Application-level load balancer (§3.1).

    Extracts a key from each request and forwards all requests with the
    same key to the same backend: the key→destination map lives in a
    {!Hermes} replica on each balancer node.  On a miss the balancer picks
    a destination (uniformly among the live backends), records it, and
    forwards — so transactions on the same objects keep landing on the same
    Zeus node, which is what makes ownership stick. *)

type t

val create :
  node:Zeus_net.Msg.node_id ->
  lb_nodes:Zeus_net.Msg.node_id list ->
  backends:Zeus_net.Msg.node_id list ->
  Zeus_net.Transport.t ->
  t

val hermes : t -> Hermes.t

val route : t -> key:int -> (Zeus_net.Msg.node_id -> unit) -> unit
(** Destination backend for a request on [key]; assigns one on first
    sight. *)

val set_backends : t -> Zeus_net.Msg.node_id list -> unit
(** Scale-out / scale-in: future assignments use the new backend set
    (existing assignments are sticky). *)

val set_placement_hint : t -> (int -> Zeus_net.Msg.node_id option) -> unit
(** Placement-engine override consulted before the sticky map — wire to
    {!Zeus_locality.Engine.route_for_key} so transactions on a key the
    locality planner pinned follow the pin immediately.  [None] falls
    through to normal routing. *)

val reassign : t -> key:int -> Zeus_net.Msg.node_id -> (unit -> unit) -> unit
(** Explicitly re-pin a key (e.g. spreading a hot object §2.2, or a
    locality-engine pin made durable). *)

val handle : t -> src:Zeus_net.Msg.node_id -> Zeus_net.Msg.payload -> bool
val hits : t -> int
val misses : t -> int

val hint_hits : t -> int
(** Requests routed by the placement hint. *)

val reassigns : t -> int
