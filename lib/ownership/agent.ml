(* Simulator interpreter for the sans-I/O ownership core ({!Core}).

   Everything protocol lives in [Core]; this module only (a) samples the
   runtime facts an input needs (time, epoch, view, store lookups), and
   (b) executes the returned effects, in order, against the simulator:
   transport sends, engine timers, store callbacks, telemetry, and the
   caller's continuation.  Closures never enter the core — continuations
   are keyed by request seq, timers and spans by core-allocated tokens.

   The unblock / timer / span maps deliberately survive {!reset}: the
   pre-split agent's closures outlived a fresh-incarnation reset (stale
   timeout timers still unblocked their pre-crash callers), and the core's
   zombie-timeout path reproduces that — see [Core.T_timeout]. *)

module Engine = Zeus_sim.Engine
module Stats = Zeus_sim.Stats
module Metrics = Zeus_telemetry.Metrics
module Tspan = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Transport = Zeus_net.Transport
module Service = Zeus_membership.Service
module View = Zeus_membership.View
open Zeus_store
open Messages

type callbacks = {
  is_busy : Types.key -> bool;
  apply_arbiter :
    key:Types.key ->
    kind:Messages.kind ->
    o_ts:Ots.t ->
    replicas:Replicas.t ->
    requester:Types.node_id ->
    unit;
  apply_requester :
    key:Types.key ->
    kind:Messages.kind ->
    o_ts:Ots.t ->
    replicas:Replicas.t ->
    data:Messages.data_snapshot option ->
    unit;
}

type config = Core.config = {
  request_timeout_us : float;
  replay_after_us : float;
  replay_sweep_us : float;
}

type observer = {
  on_request :
    key:Types.key -> kind:Messages.kind -> requester:Types.node_id -> unit;
  on_owner_change : key:Types.key -> owner:Types.node_id -> unit;
}

let default_config = Core.default_config

type t = {
  core : Core.state;
  node : Types.node_id;
  dir_nodes_of : Types.key -> Types.node_id list;
  table : Table.t;
  membership : Service.t;
  cb : callbacks;
  transport : Transport.t;
  engine : Engine.t;
  unblocks : (int, (unit, nack_reason) result -> unit) Hashtbl.t;
  timers : (int, Engine.event_id) Hashtbl.t;
  spans : (int, Tspan.span) Hashtbl.t;
  mutable span_parent : Tspan.span;
      (* parent for the span the in-flight [Api_request] starts *)
  latency : Stats.Samples.t;
  metrics : Metrics.t;
  tspans : Tspan.t;
  c_started : Metrics.Counter.h;
  c_won : Metrics.Counter.h;
  c_nacked : Metrics.Counter.h;
  c_timeout : Metrics.Counter.h;
  c_replays : Metrics.Counter.h;
  c_driven : Metrics.Counter.h;
  h_arb_us : Metrics.Histogram.h;
  mutable observer : observer option;
  mutable io_tap : (Core.input -> Core.eff list -> unit) option;
}

let trace = Core.trace
let node t = t.node
let directory t = Core.directory t.core
let set_observer t obs = t.observer <- Some obs
let set_io_tap t tap = t.io_tap <- Some tap
let core_fingerprint t = Core.fingerprint t.core
let latency_samples t = t.latency
let requests_started t = Metrics.Counter.get t.c_started
let requests_won t = Metrics.Counter.get t.c_won
let requests_nacked t = Metrics.Counter.get t.c_nacked
let requests_timed_out t = Metrics.Counter.get t.c_timeout
let replays_started t = Metrics.Counter.get t.c_replays
let requests_driven t = Metrics.Counter.get t.c_driven
let metrics t = t.metrics

(* ---------- runtime sampling --------------------------------------------- *)

let env t =
  {
    Core.now = Engine.now t.engine;
    epoch = Service.epoch_at t.membership t.node;
    live = (Service.node_view t.membership t.node).View.live;
    self_alive = Zeus_net.Fabric.is_alive (Transport.fabric t.transport) t.node;
    trace_on = Tspan.enabled t.tspans;
  }

let snapshot t key =
  match Table.find t.table key with
  | Some obj -> Some { value = Bytes.copy obj.Obj.data; t_version = obj.Obj.t_version }
  | None -> None

let facts_for t payload =
  match payload with
  | O_req { key; _ } -> { Core.no_facts with Core.f_busy = t.cb.is_busy key }
  | O_inv { key; _ } -> (
    let f_busy = t.cb.is_busy key in
    match Table.find t.table key with
    | Some obj ->
      {
        Core.f_exists = true;
        f_o_ts = obj.Obj.o_ts;
        f_is_owner = Obj.is_owner obj;
        f_busy;
        f_snapshot = None;
      }
    | None -> { Core.no_facts with Core.f_busy })
  | O_ack { req_id; key; _ } ->
    {
      Core.no_facts with
      Core.f_exists = Table.mem t.table key;
      f_snapshot =
        (* only a replay driver's completion can consult the snapshot *)
        (if req_id.origin <> t.node && Core.has_replay t.core key then
           snapshot t key
         else None);
    }
  | O_resp { key; _ } -> (
    match Table.find t.table key with
    | Some obj ->
      { Core.no_facts with Core.f_exists = true; f_o_ts = obj.Obj.o_ts }
    | None -> Core.no_facts)
  | _ -> Core.no_facts

let timer_facts t = function
  | Core.T_replay { key; _ } ->
    { Core.no_facts with Core.f_snapshot = snapshot t key }
  | Core.T_timeout _ | Core.T_cleanup _ -> Core.no_facts

(* ---------- effect execution --------------------------------------------- *)

let counter_handle t = function
  | Core.C_started -> t.c_started
  | Core.C_won -> t.c_won
  | Core.C_nacked -> t.c_nacked
  | Core.C_timeout -> t.c_timeout
  | Core.C_replays -> t.c_replays
  | Core.C_driven -> t.c_driven

let restore_request_state t key =
  match Table.find t.table key with
  | Some obj when obj.Obj.o_state = Types.O_request -> obj.Obj.o_state <- Types.O_valid
  | Some _ | None -> ()

let exec_telemetry t = function
  | Core.Count c -> Metrics.Counter.incr (counter_handle t c)
  | Core.Arb_latency dt ->
    Stats.Samples.add t.latency dt;
    Metrics.Histogram.observe t.h_arb_us dt
  | Core.Span_start { token; key; kind; driver } ->
    let span =
      Tspan.start_span t.tspans ~cat:"ownership" ~pid:t.node ~parent:t.span_parent
        ~args:
          [
            ("key", string_of_int key);
            ("kind", Format.asprintf "%a" Messages.pp_kind kind);
            ("driver", if driver = t.node then "local" else "remote");
            ("driver_node", string_of_int driver);
          ]
        "arbitration"
    in
    Hashtbl.replace t.spans token span
  | Core.Span_finish { token; outcome } -> (
    match Hashtbl.find_opt t.spans token with
    | Some span ->
      let args =
        match outcome with
        | Core.Granted -> [ ("result", "granted") ]
        | Core.Timeout -> [ ("result", "timeout") ]
        | Core.Denied reason ->
          [
            ("result", "denied");
            ("reason", Format.asprintf "%a" pp_nack reason);
          ]
      in
      Tspan.finish t.tspans ~args span
    | None -> ())
  | Core.Span_forget token -> Hashtbl.remove t.spans token

let rec exec_eff t (e : Core.eff) =
  match e with
  | Core.Send { dst; size; payload } ->
    Transport.send t.transport ~src:t.node ~dst ~size payload
  | Core.Send_ack_local_data { dst; req_id; key; o_ts; new_replicas; arbiters; epoch }
    ->
    let data = snapshot t key in
    Transport.send t.transport ~src:t.node ~dst
      ~size:(64 + match data with Some s -> Value.size s.value | None -> 0)
      (O_ack
         { req_id; key; o_ts; new_replicas; arbiters; sender = t.node; data; epoch })
  | Core.Flush -> Transport.flush t.transport t.node
  | Core.Set_timer { token; after; kind } ->
    let ev =
      Engine.schedule t.engine ~after (fun () ->
          Hashtbl.remove t.timers token;
          feed t
            (Core.Timer_fire
               { token; kind; facts = timer_facts t kind; env = env t }))
    in
    Hashtbl.replace t.timers token ev
  | Core.Cancel_timer token -> (
    match Hashtbl.find_opt t.timers token with
    | Some ev ->
      Engine.cancel t.engine ev;
      Hashtbl.remove t.timers token
    | None -> ())
  | Core.Apply_arbiter { key; kind; o_ts; replicas; requester } ->
    t.cb.apply_arbiter ~key ~kind ~o_ts ~replicas ~requester
  | Core.Apply_requester { key; kind; o_ts; replicas; data } ->
    t.cb.apply_requester ~key ~kind ~o_ts ~replicas ~data
  | Core.Set_o_state { key; o_state } -> (
    match Table.find t.table key with
    | Some obj -> obj.Obj.o_state <- o_state
    | None -> ())
  | Core.Restore_request_state key -> restore_request_state t key
  | Core.Drop_dead_replicas { live } ->
    Table.iter t.table (fun obj ->
        if Obj.is_owner obj then
          match obj.Obj.o_replicas with
          | Some r ->
            obj.Obj.o_replicas <- Some (Replicas.drop_dead r ~live:(fun n -> live.(n)))
          | None -> ())
  | Core.Notify_request { key; kind; requester } -> (
    match t.observer with
    | Some o -> o.on_request ~key ~kind ~requester
    | None -> ())
  | Core.Notify_owner_change { key; owner } -> (
    match t.observer with
    | Some o -> o.on_owner_change ~key ~owner
    | None -> ())
  | Core.Unblock { seq; result } -> (
    match Hashtbl.find_opt t.unblocks seq with
    | Some k ->
      Hashtbl.remove t.unblocks seq;
      k result
    | None -> ())
  | Core.Telemetry tele -> exec_telemetry t tele

and feed t input =
  let _, effs = Core.handle ~dir:t.dir_nodes_of t.core input in
  (match t.io_tap with Some tap -> tap input effs | None -> ());
  List.iter (exec_eff t) effs

(* ---------- public API ---------------------------------------------------- *)

let request ?(parent = Tspan.null_span) t ~key ~kind ~k =
  let seq = Core.next_seq t.core in
  Hashtbl.replace t.unblocks seq k;
  t.span_parent <- parent;
  feed t
    (Core.Api_request
       {
         key;
         kind;
         facts = { Core.no_facts with Core.f_exists = Table.mem t.table key };
         env = env t;
       });
  t.span_parent <- Tspan.null_span

let handle t ~src payload =
  if Core.handles_payload payload then begin
    feed t (Core.Deliver { src; payload; facts = facts_for t payload; env = env t });
    true
  end
  else false

let seed_directory t key replicas = feed t (Core.Api_seed { key; replicas })
let register_object t key replicas =
  feed t (Core.Api_register { key; replicas; env = env t })

let forget_object t key = feed t (Core.Api_forget { key; env = env t })

let announce_recovery_done t ~epoch =
  feed t (Core.Api_recovery_done { epoch; env = env t })

let on_view_change t (v : View.t) =
  feed t
    (Core.View_change { view_epoch = v.View.epoch; live = v.View.live; env = env t })

let reset t = feed t Core.Reset

let create ?(config = default_config) ?telemetry ~node ~dir_nodes_of ~table ~membership
    ~callbacks transport =
  let engine = Zeus_net.Fabric.engine (Transport.fabric transport) in
  let nodes = Zeus_net.Fabric.nodes (Transport.fabric transport) in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let metrics = Metrics.create () in
  let t =
    {
      core = Core.create ~config ~self:node ~nodes ();
      node;
      dir_nodes_of;
      table;
      membership;
      cb = callbacks;
      transport;
      engine;
      unblocks = Hashtbl.create 64;
      timers = Hashtbl.create 64;
      spans = Hashtbl.create 64;
      span_parent = Tspan.null_span;
      latency = Stats.Samples.create (Engine.fork_rng engine);
      metrics;
      tspans = Hub.trace hub;
      c_started = Metrics.Counter.v metrics "ownership.requests_started";
      c_won = Metrics.Counter.v metrics "ownership.requests_won";
      c_nacked = Metrics.Counter.v metrics "ownership.requests_nacked";
      c_timeout = Metrics.Counter.v metrics "ownership.requests_timed_out";
      c_replays = Metrics.Counter.v metrics "ownership.replays_started";
      c_driven = Metrics.Counter.v metrics "ownership.requests_driven";
      h_arb_us = Metrics.Histogram.v metrics "ownership.arbitration_us";
      observer = None;
      io_tap = None;
    }
  in
  Service.subscribe membership node (fun v -> on_view_change t v);
  t
