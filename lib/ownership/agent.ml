module Engine = Zeus_sim.Engine
module Stats = Zeus_sim.Stats
module Metrics = Zeus_telemetry.Metrics
module Tspan = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Transport = Zeus_net.Transport
module Service = Zeus_membership.Service
module View = Zeus_membership.View
open Zeus_store
open Messages

type callbacks = {
  is_busy : Types.key -> bool;
  apply_arbiter :
    key:Types.key ->
    kind:Messages.kind ->
    o_ts:Ots.t ->
    replicas:Replicas.t ->
    requester:Types.node_id ->
    unit;
  apply_requester :
    key:Types.key ->
    kind:Messages.kind ->
    o_ts:Ots.t ->
    replicas:Replicas.t ->
    data:Messages.data_snapshot option ->
    unit;
}

type config = {
  request_timeout_us : float;
  replay_after_us : float;
  replay_sweep_us : float;
}

type observer = {
  on_request :
    key:Types.key -> kind:Messages.kind -> requester:Types.node_id -> unit;
  on_owner_change : key:Types.key -> owner:Types.node_id -> unit;
}

let default_config =
  { request_timeout_us = 500.0; replay_after_us = 300.0; replay_sweep_us = 500.0 }

type outstanding = {
  o_req_id : request_id;
  o_key : Types.key;
  o_kind : kind;
  started : float;
  mutable acks : Types.node_id list;
  mutable proto : (Ots.t * Replicas.t * Types.node_id list) option;
  mutable data : data_snapshot option;
  mutable unblock : ((unit, nack_reason) result -> unit) option;
  mutable timer : Engine.event_id option;
  o_span : Tspan.span;  (* one span per arbitration round-trip *)
}

type replay = {
  r_pending : Directory.pending;
  r_key : Types.key;
  mutable r_acks : Types.node_id list;
  mutable r_data : data_snapshot option;
}

type t = {
  config : config;
  node : Types.node_id;
  dir_nodes_of : Types.key -> Types.node_id list;
  table : Table.t;
  membership : Service.t;
  cb : callbacks;
  transport : Transport.t;
  engine : Engine.t;
  directory : Directory.t;
      (* every node can host directory entries (with the distributed
         directory of §6.2 each node is a directory replica for a slice of
         the keyspace); whether this node arbitrates a given key is decided
         by [dir_nodes_of] *)
  side_pending : (Types.key, Directory.pending) Hashtbl.t;
      (* arbiter pending state for keys with no directory entry here *)
  outstanding : (int, outstanding) Hashtbl.t;
  replays : (Types.key, replay) Hashtbl.t;
  mutable req_seq : int;
  mutable rr : int;
  (* directory-side recovery gate (§5.1): epoch being drained and which
     nodes have not yet reported recovery-done *)
  mutable gate_epoch : int;
  gate_waiting : (Types.node_id, unit) Hashtbl.t;
  mutable prev_live : bool array;
  latency : Stats.Samples.t;
  (* Typed counter handles over a per-agent registry: per-node stats stay
     separate while a typo'd metric name is a compile error. *)
  metrics : Metrics.t;
  tspans : Tspan.t;
  c_started : Metrics.Counter.h;
  c_won : Metrics.Counter.h;
  c_nacked : Metrics.Counter.h;
  c_timeout : Metrics.Counter.h;
  c_replays : Metrics.Counter.h;
  c_driven : Metrics.Counter.h;
  h_arb_us : Metrics.Histogram.h;
  mutable observer : observer option;
      (* locality engine's tap on arbitration traffic (passive: observing
         never changes protocol behaviour) *)
}

let trace : (string -> unit) option ref = ref None
let tracef fmt =
  match !trace with
  | Some f -> Format.kasprintf f fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let node t = t.node
let directory t = t.directory
let set_observer t obs = t.observer <- Some obs

let notify_request t ~key ~kind ~requester =
  match t.observer with
  | Some o -> o.on_request ~key ~kind ~requester
  | None -> ()

let notify_owner_change t ~key ~kind ~owner =
  match (t.observer, kind) with
  | Some o, Acquire -> o.on_owner_change ~key ~owner
  | Some _, (Add_reader | Remove_reader _) | None, _ -> ()
let latency_samples t = t.latency
let requests_started t = Metrics.Counter.get t.c_started
let requests_won t = Metrics.Counter.get t.c_won
let requests_nacked t = Metrics.Counter.get t.c_nacked
let requests_timed_out t = Metrics.Counter.get t.c_timeout
let replays_started t = Metrics.Counter.get t.c_replays
let requests_driven t = Metrics.Counter.get t.c_driven
let metrics t = t.metrics

let epoch t = Service.epoch_at t.membership t.node
let view t = Service.node_view t.membership t.node
let live t n = View.is_live (view t) n
let send t ~dst ?size payload = Transport.send t.transport ~src:t.node ~dst ?size payload

(* Arbitration is on the application's critical path: ring the transport
   doorbell after each fan-out burst (the INV broadcast to arbiters, the
   ACK/VAL replies of one handler activation) so the burst leaves coalesced
   at the current instant instead of waiting out the flush window. *)
let doorbell t = Transport.flush t.transport t.node

let dedup nodes =
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] nodes

(* ---------- unified arbiter state (directory entry or side table) -------- *)

let is_dir_for t key = List.mem t.node (t.dir_nodes_of key)

let dir_entry t key =
  if is_dir_for t key then Directory.find t.directory key else None

let find_pending t key =
  match dir_entry t key with
  | Some e -> e.Directory.pending
  | None -> Hashtbl.find_opt t.side_pending key

let applied_ts t key =
  match dir_entry t key with
  | Some e -> e.Directory.o_ts
  | None -> (
    match Table.find t.table key with Some obj -> obj.Obj.o_ts | None -> Ots.zero)

let set_obj_ostate t key state =
  match Table.find t.table key with
  | Some obj -> obj.Obj.o_state <- state
  | None -> ()

let[@warning "-32"] clear_pending t key =
  (match dir_entry t key with
  | Some e ->
    (match e.Directory.pending with
    | Some p ->
      tracef "n%d clears pending key=%d ts=%s" t.node key
        (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
    | None -> ());
    Directory.clear_pending e
  | None -> Hashtbl.remove t.side_pending key);
  set_obj_ostate t key Types.O_valid;
  Hashtbl.remove t.replays key

(* Apply a validated arbitration at this arbiter.  A directory replica
   that lost its entry (fresh incarnation after a rejoin) re-learns it
   here: the validated request carries the authoritative metadata. *)
let apply_pending_here t key (p : Directory.pending) =
  tracef "n%d applies arbitration key=%d ts=%s req=n%d" t.node key
    (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
    p.Directory.requester;
  let replicas = Replicas.drop_dead p.Directory.new_replicas ~live:(live t) in
  (match dir_entry t key with
  | Some e ->
    Directory.apply_pending e;
    e.Directory.replicas <- replicas
  | None ->
    if is_dir_for t key then begin
      Directory.register t.directory key replicas;
      match Directory.find t.directory key with
      | Some e -> e.Directory.o_ts <- p.Directory.o_ts
      | None -> ()
    end;
    Hashtbl.remove t.side_pending key);
  Hashtbl.remove t.replays key;
  set_obj_ostate t key Types.O_valid;
  notify_owner_change t ~key ~kind:p.Directory.kind ~owner:p.Directory.requester;
  if p.Directory.requester <> t.node then
    t.cb.apply_arbiter ~key ~kind:p.Directory.kind ~o_ts:p.Directory.o_ts ~replicas
      ~requester:p.Directory.requester

let snapshot t key =
  match Table.find t.table key with
  | Some obj -> Some { value = Bytes.copy obj.Obj.data; t_version = obj.Obj.t_version }
  | None -> None

(* ---------- arb-replay (§4.1): a blocked arbiter re-drives -------------- *)

(* Driver-side finish used when the requester is dead: the replay driver
   applies the (dead-filtered) request itself and VALs the live arbiters. *)
let finish_replay_driverside t r =
  let p = r.r_pending in
  apply_pending_here t r.r_key p;
  List.iter
    (fun a ->
      if a <> t.node && live t a then
        send t ~dst:a ~size:48
          (O_val { key = r.r_key; o_ts = p.Directory.o_ts; epoch = epoch t }))
    p.Directory.arbiters;
  Hashtbl.remove t.replays r.r_key

let replay_check_complete t r =
  let p = r.r_pending in
  let needed = List.filter (fun a -> live t a) p.Directory.arbiters in
  if List.for_all (fun a -> List.mem a r.r_acks) needed then begin
    (* The designated data source may have died with the coordinator; any
       live replica-arbiter (often this replayer) can supply the value. *)
    if r.r_data = None then r.r_data <- snapshot t r.r_key;
    tracef "n%d replay-complete key=%d req=n%d data=%b" t.node r.r_key
      p.Directory.requester (r.r_data <> None);
    if live t p.Directory.requester then
      send t ~dst:p.Directory.requester
        ~size:(64 + match r.r_data with Some d -> Value.size d.value | None -> 0)
        (O_resp
           {
             req_id = p.Directory.req_id;
             key = r.r_key;
             o_ts = p.Directory.o_ts;
             new_replicas = p.Directory.new_replicas;
             arbiters = p.Directory.arbiters;
             data = r.r_data;
             epoch = epoch t;
           })
    else finish_replay_driverside t r
  end

let start_replay t key (p : Directory.pending) =
  if not (Hashtbl.mem t.replays key) then begin
    tracef "n%d replays key=%d ts=%s req=n%d" t.node key
      (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
      p.Directory.requester;
    Metrics.Counter.incr t.c_replays;
    (* Re-select the data source if the original one died: any live
       replica of the pending placement can attach the value. *)
    let p =
      match p.Directory.data_from with
      | Some src when not (live t src) ->
        let candidates =
          List.filter
            (fun a ->
              live t a
              && Replicas.is_replica p.Directory.new_replicas a
              && a <> p.Directory.requester)
            p.Directory.arbiters
        in
        { p with Directory.data_from = (match candidates with c :: _ -> Some c | [] -> None) }
      | _ -> p
    in
    let r = { r_pending = p; r_key = key; r_acks = [ t.node ]; r_data = None } in
    if p.Directory.data_from = Some t.node then r.r_data <- snapshot t key;
    tracef "n%d replay key=%d arbiters=[%s] data_from=%s" t.node key
      (String.concat ";" (List.map string_of_int p.Directory.arbiters))
      (match p.Directory.data_from with Some n -> string_of_int n | None -> "-");
    Hashtbl.replace t.replays key r;
    let e = epoch t in
    List.iter
      (fun a ->
        if a <> t.node && live t a then
          send t ~dst:a ~size:128
            (O_inv
               {
                 req_id = p.Directory.req_id;
                 key;
                 o_ts = p.Directory.o_ts;
                 base_ts = p.Directory.base_ts;
                 new_replicas = p.Directory.new_replicas;
                 kind = p.Directory.kind;
                 requester = p.Directory.requester;
                 arbiters = p.Directory.arbiters;
                 data_from = p.Directory.data_from;
                 recovery = true;
                 driver = t.node;
                 epoch = e;
               }))
      p.Directory.arbiters;
    replay_check_complete t r
  end

(* A pending arbitration that has not resolved within [replay_after_us]
   (lost VAL, dead requester or driver, ...) is re-driven by this arbiter;
   the replay is idempotent so several arbiters may do this concurrently. *)
let rec arm_replay_check t key o_ts =
  ignore
    (Engine.schedule t.engine ~after:t.config.replay_after_us (fun () ->
         if Zeus_net.Fabric.is_alive (Transport.fabric t.transport) t.node then begin
           match find_pending t key with
           | Some p when Ots.equal p.Directory.o_ts o_ts ->
             Hashtbl.remove t.replays key;
             start_replay t key p;
             doorbell t;
             arm_replay_check t key o_ts
           | Some p ->
             tracef "n%d replay-check key=%d ts mismatch (pend=%s, armed=%s)" t.node key
               (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
               (Format.asprintf "%a" Ots.pp o_ts)
           | None -> tracef "n%d replay-check key=%d no pending" t.node key
         end))

let set_pending t key (p : Directory.pending) =
  (match dir_entry t key with
  | Some e -> Directory.set_pending e p
  | None -> Hashtbl.replace t.side_pending key p);
  (* The paper's arbiters set o_state = Invalid on INV (§4.1): a local
     replica under arbitration must not be used by new transactions until
     the request validates or rolls back. *)
  set_obj_ostate t key Types.O_invalid;
  arm_replay_check t key p.Directory.o_ts

(* ---------- requester ---------------------------------------------------- *)

let restore_request_state t key =
  match Table.find t.table key with
  | Some obj when obj.Obj.o_state = Types.O_request -> obj.Obj.o_state <- Types.O_valid
  | Some _ | None -> ()

let finish_outstanding t o result =
  (match o.timer with Some ev -> Engine.cancel t.engine ev | None -> ());
  o.timer <- None;
  (* Close the arbitration span (idempotent — a timeout may already have
     stamped it). *)
  (match result with
  | Ok () -> Tspan.finish t.tspans ~args:[ ("result", "granted") ] o.o_span
  | Error reason ->
    Tspan.finish t.tspans
      ~args:
        [
          ("result", "denied");
          ("reason", Format.asprintf "%a" pp_nack reason);
        ]
      o.o_span);
  (match o.unblock with
  | Some k ->
    o.unblock <- None;
    if Result.is_error result then restore_request_state t o.o_key;
    k result
  | None -> ())

(* Would applying this win leave us an owner without the object's value?
   (The data source died mid-arbitration.)  Refusing to apply keeps the
   arbitration pending at the arbiters, whose next replay re-selects a
   live data source. *)
let missing_data t ~key ~kind ~data =
  (match kind with Acquire | Add_reader -> true | Remove_reader _ -> false)
  && data = None
  && not (Table.mem t.table key)

(* The requester has all ACKs: apply first (§4.1), unblock, then VAL. *)
let requester_apply_and_val t ~req_id ~key ~kind ~o_ts ~replicas ~arbiters ~data =
  tracef "n%d applies own win key=%d ts=%s" t.node key (Format.asprintf "%a" Ots.pp o_ts);
  ignore req_id;
  let replicas = Replicas.drop_dead replicas ~live:(live t) in
  t.cb.apply_requester ~key ~kind ~o_ts ~replicas ~data;
  (* If we are also a directory replica, our own metadata must reflect the
     new placement immediately. *)
  (match dir_entry t key with
  | Some e ->
    (match e.Directory.pending with
    | Some p ->
      tracef "n%d own-win drops pending key=%d ts=%s" t.node key
        (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
    | None -> ());
    e.Directory.o_ts <- o_ts;
    e.Directory.replicas <- replicas;
    Directory.clear_pending e
  | None -> Hashtbl.remove t.side_pending key);
  Hashtbl.remove t.replays key;
  notify_owner_change t ~key ~kind ~owner:t.node;
  let e = epoch t in
  List.iter
    (fun a -> if a <> t.node then send t ~dst:a ~size:48 (O_val { key; o_ts; epoch = e }))
    arbiters

let check_complete t o =
  match o.proto with
  | None -> ()
  | Some (o_ts, replicas, arbiters) ->
    if List.for_all (fun a -> a = t.node || List.mem a o.acks) arbiters then begin
      Hashtbl.remove t.outstanding o.o_req_id.seq;
      if missing_data t ~key:o.o_key ~kind:o.o_kind ~data:o.data then
        (* won, but the value never arrived (data source died): fail the
           caller and let arb-replay re-drive with a live source *)
        finish_outstanding t o (Error Unavailable)
      else begin
        requester_apply_and_val t ~req_id:o.o_req_id ~key:o.o_key ~kind:o.o_kind ~o_ts
          ~replicas ~arbiters ~data:o.data;
        Metrics.Counter.incr t.c_won;
        let dt = Engine.now t.engine -. o.started in
        Stats.Samples.add t.latency dt;
        Metrics.Histogram.observe t.h_arb_us dt;
        finish_outstanding t o (Ok ())
      end
    end

let request ?(parent = Tspan.null_span) t ~key ~kind ~k =
  tracef "n%d requests %s for key %d" t.node (Format.asprintf "%a" Messages.pp_kind kind) key;
  Metrics.Counter.incr t.c_started;
  let seq = t.req_seq in
  t.req_seq <- seq + 1;
  let req_id = { origin = t.node; seq } in
  let live_dirs = List.filter (fun d -> live t d) (t.dir_nodes_of key) in
  match live_dirs with
  | [] -> k (Error Unavailable)
  | _ ->
    let driver =
      (* Prefer driving locally when we are a directory replica that knows
         the key (2-hop fast path, §4.2); a freshly rejoined replica that
         lost its entries falls back to a peer. *)
      if List.mem t.node live_dirs && dir_entry t key <> None then t.node
      else begin
        let candidates =
          match List.filter (fun d -> d <> t.node) live_dirs with
          | [] -> live_dirs
          | l -> l
        in
        t.rr <- t.rr + 1;
        List.nth candidates (t.rr mod List.length candidates)
      end
    in
    let o =
      {
        o_req_id = req_id;
        o_key = key;
        o_kind = kind;
        started = Engine.now t.engine;
        acks = [];
        proto = None;
        data = None;
        unblock = Some k;
        timer = None;
        o_span =
          (* Guarded: the args include a [Format.asprintf], far too heavy
             to evaluate when tracing is off. *)
          (if Tspan.enabled t.tspans then
             Tspan.start_span t.tspans ~cat:"ownership" ~pid:t.node ~parent
               ~args:
                 [
                   ("key", string_of_int key);
                   ("kind", Format.asprintf "%a" Messages.pp_kind kind);
                   ("driver", if driver = t.node then "local" else "remote");
                   ("driver_node", string_of_int driver);
                 ]
               "arbitration"
           else Tspan.null_span);
      }
    in
    Hashtbl.replace t.outstanding seq o;
    (match Table.find t.table key with
    | Some obj -> obj.Obj.o_state <- Types.O_request
    | None -> ());
    o.timer <-
      Some
        (Engine.schedule t.engine ~after:t.config.request_timeout_us (fun () ->
             o.timer <- None;
             if o.unblock <> None then begin
               Metrics.Counter.incr t.c_timeout;
               Tspan.finish t.tspans ~args:[ ("result", "timeout") ] o.o_span;
               finish_outstanding t o (Error Busy);
               (* Keep the record a while longer: a late win is still
                  applied (the app's retry then finds it owns the object).
                  Afterwards the self-contained O_resp path takes over. *)
               ignore
                 (Engine.schedule t.engine ~after:(4.0 *. t.config.request_timeout_us)
                    (fun () -> Hashtbl.remove t.outstanding seq))
             end));
    send t ~dst:driver ~size:64
      (O_req
         {
           req_id;
           key;
           kind;
           requester = t.node;
           requester_has_data = Table.mem t.table key;
           epoch = epoch t;
         });
    doorbell t

(* ---------- driver (a directory node serving REQ) ------------------------ *)

let nack t ~dst ~req_id ~key ?o_ts reason =
  send t ~dst ~size:48 (O_nack { req_id; key; o_ts; reason; epoch = epoch t })

let compute_replicas replicas kind ~requester =
  match kind with
  | Acquire -> Replicas.promote replicas ~new_owner:requester
  | Add_reader -> Replicas.add_reader replicas requester
  | Remove_reader r -> Replicas.remove_reader replicas r

let gate_active t = t.gate_epoch >= 0 && Hashtbl.length t.gate_waiting > 0

let handle_req t ~req_id ~key ~kind ~requester ~requester_has_data =
  if not (is_dir_for t key) then ()
  else (
    Metrics.Counter.incr t.c_driven;
    notify_request t ~key ~kind ~requester;
    match Directory.find t.directory key with
    | None -> nack t ~dst:requester ~req_id ~key Unknown_key
    | Some entry ->
      let replicas = entry.Directory.replicas in
      let owner = replicas.Replicas.owner in
      let owner_dead = match owner with Some o -> not (live t o) | None -> true in
      if gate_active t && owner_dead then nack t ~dst:requester ~req_id ~key Recovering
      else if entry.Directory.pending <> None then nack t ~dst:requester ~req_id ~key Busy
      else if kind = Acquire && owner = Some requester then
        (* Already the owner (e.g. a retried request that in fact won):
           confirm trivially with a single-arbiter ACK. *)
        send t ~dst:requester ~size:64
          (O_ack
             {
               req_id;
               key;
               o_ts = entry.Directory.o_ts;
               new_replicas = replicas;
               arbiters = [ t.node ];
               sender = t.node;
               data = None;
               epoch = epoch t;
             })
      else begin
        let need_data =
          (* The requester's has-data flag can be stale: it may have been
             trimmed as a reader after sampling it (a Remove_reader it has
             not yet applied).  The directory's replica list is the
             authority — ship the value unless the requester both claims
             and is recorded to hold a replica. *)
          (match kind with Acquire | Add_reader -> true | Remove_reader _ -> false)
          && not (requester_has_data && Replicas.is_replica replicas requester)
        in
        let data_from =
          if not need_data then None
          else
            match owner with
            | Some o when live t o -> Some o
            | _ -> List.find_opt (fun r -> live t r) replicas.Replicas.readers
        in
        if need_data && data_from = None then
          nack t ~dst:requester ~req_id ~key Unavailable
        else begin
          let o_ts = Ots.next entry.Directory.o_ts ~node:t.node in
          let arbiters =
            let extra =
              (match owner with Some o when live t o -> [ o ] | _ -> [])
              @ (match data_from with Some nd -> [ nd ] | None -> [])
              @ (match kind with Remove_reader r when live t r -> [ r ] | _ -> [])
            in
            List.filter (fun a -> a <> requester)
              (dedup (List.filter (fun dn -> live t dn) (t.dir_nodes_of key) @ extra))
          in
          (* Fast path: the driver is itself the (busy) owner. *)
          if owner = Some t.node && t.cb.is_busy key then
            nack t ~dst:requester ~req_id ~key Busy
          else begin
            let p =
              {
                Directory.req_id;
                o_ts;
                base_ts = entry.Directory.o_ts;
                new_replicas = compute_replicas replicas kind ~requester;
                kind;
                requester;
                arbiters;
                data_from;
                driving = true;
                born = Engine.now t.engine;
              }
            in
            set_pending t key p;
            let e = epoch t in
            List.iter
              (fun a ->
                if a <> t.node then
                  send t ~dst:a ~size:128
                    (O_inv
                       {
                         req_id;
                         key;
                         o_ts;
                         base_ts = p.Directory.base_ts;
                         new_replicas = p.Directory.new_replicas;
                         kind;
                         requester;
                         arbiters;
                         data_from;
                         recovery = false;
                         driver = t.node;
                         epoch = e;
                       }))
              arbiters;
            (* The driver is an arbiter too: its own ACK. *)
            let data = if data_from = Some t.node then snapshot t key else None in
            send t ~dst:requester
              ~size:(64 + match data with Some s -> Value.size s.value | None -> 0)
              (O_ack
                 {
                   req_id;
                   key;
                   o_ts;
                   new_replicas = p.Directory.new_replicas;
                   arbiters;
                   sender = t.node;
                   data;
                   epoch = e;
                 })
          end
        end
      end)

(* ---------- arbiter ------------------------------------------------------ *)

let handle_inv t ~req_id ~key ~o_ts ~base_ts ~new_replicas ~kind ~requester ~arbiters
    ~data_from ~recovery ~driver =
  let reply_dst = if recovery then driver else requester in
  let reply_data () = if data_from = Some t.node then snapshot t key else None in
  let ack () =
    let data = reply_data () in
    send t ~dst:reply_dst
      ~size:(64 + match data with Some s -> Value.size s.value | None -> 0)
      (O_ack
         {
           req_id;
           key;
           o_ts;
           new_replicas;
           arbiters;
           sender = t.node;
           data;
           epoch = epoch t;
         })
  in
  let applied = applied_ts t key in
  let pend = find_pending t key in
  if Ots.equal o_ts applied then ack () (* already applied: idempotent re-ACK *)
  else if match pend with Some p -> Ots.equal p.Directory.o_ts o_ts | None -> false
  then ack () (* already buffered: re-ACK *)
  else begin
    let beats_applied = Ots.(o_ts > applied) in
    let beats_pending =
      match pend with Some p -> Ots.(o_ts > p.Directory.o_ts) | None -> true
    in
    if beats_applied && beats_pending then begin
      (* If we were driving a competing (lower-ts) request, it just lost:
         tell its requester (§4.1, contention resolution). *)
      (match pend with
      | Some p when p.Directory.driving ->
        nack t ~dst:p.Directory.requester ~req_id:p.Directory.req_id ~key
          Lost_arbitration
      | Some _ | None -> ());
      (* A buffered arbitration this INV was *based on* has provably won
         (its requester applied it and the new driver's entry reflects it):
         apply it now rather than losing its effects to the replacement —
         its VAL may never reach us, and the successor may roll back.
         (Found via randomized fault injection: dropping it could leave a
         demotion unapplied and two live owners.) *)
      (match pend with
      | Some p when Ots.equal p.Directory.o_ts base_ts -> apply_pending_here t key p
      | Some _ | None -> ());
      let busy_here =
        t.cb.is_busy key
        && ((match Table.find t.table key with
            | Some obj -> Obj.is_owner obj
            | None -> false)
           || match kind with Remove_reader r -> r = t.node | _ -> false)
      in
      if busy_here then
        (* Owner-side busy NACK (§4.1): tell the requester so its
           application retries, but do NOT roll the arbiters back and do
           not buffer — an arbitration, once started, always completes
           (the arbiters' replays keep re-driving it; we ACK when the
           pipeline quiesces).  An earlier design rolled the arbiters back
           here; the model checker showed the rollback can race ahead of
           the arbitration's own in-flight INVs, leaving a zombie
           arbitration that later resurrects over a newer owner. *)
        begin
          tracef "n%d busy-nacks INV key=%d ts=%s req=n%d rec=%b" t.node key
            (Format.asprintf "%a" Ots.pp o_ts) requester recovery;
          nack t ~dst:requester ~req_id ~key Busy
        end
      else begin
        tracef "n%d buffers INV key=%d ts=%s req=n%d rec=%b" t.node key
          (Format.asprintf "%a" Ots.pp o_ts) requester recovery;
        set_pending t key
          {
            Directory.req_id;
            o_ts;
            base_ts;
            new_replicas;
            kind;
            requester;
            arbiters;
            data_from;
            driving = false;
            born = Engine.now t.engine;
          };
        ack ()
      end
    end
    else
      (* stale or beaten INV — ignore; its requester can never collect
         all ACKs, and its driver will learn when the winner's INV reaches it. *)
      tracef "n%d ignores stale INV key=%d ts=%s applied=%s pend=%s rec=%b" t.node
        key
        (Format.asprintf "%a" Ots.pp o_ts)
        (Format.asprintf "%a" Ots.pp applied)
        (match pend with
        | Some p -> Format.asprintf "%a" Ots.pp p.Directory.o_ts
        | None -> "-")
        recovery
  end

let handle_val t ~key ~o_ts =
  match find_pending t key with
  | Some p when Ots.equal p.Directory.o_ts o_ts -> apply_pending_here t key p
  | Some _ | None -> ()

(* ---------- dispatch ------------------------------------------------------ *)

let handle_ack t ~req_id ~key ~o_ts ~new_replicas ~arbiters ~sender ~data =
  if req_id.origin = t.node then begin
    match Hashtbl.find_opt t.outstanding req_id.seq with
    | Some o ->
      (match o.proto with
      | None -> o.proto <- Some (o_ts, new_replicas, arbiters)
      | Some (ts0, _, _) ->
        if not (Ots.equal ts0 o_ts) then o.proto <- Some (o_ts, new_replicas, arbiters));
      (match data with Some _ -> o.data <- data | None -> ());
      if not (List.mem sender o.acks) then o.acks <- sender :: o.acks;
      check_complete t o
    | None -> ()
  end
  else begin
    (* Recovery ACK: we are (one of) the replay driver(s) for this key. *)
    match Hashtbl.find_opt t.replays key with
    | Some r when Ots.equal r.r_pending.Directory.o_ts o_ts ->
      (match data with Some _ -> r.r_data <- data | None -> ());
      if not (List.mem sender r.r_acks) then r.r_acks <- sender :: r.r_acks;
      replay_check_complete t r
    | Some _ | None -> ()
  end

let handle_nack t ~req_id ~key ~o_ts ~reason =
  ignore key;
  ignore o_ts;
  if req_id.origin = t.node then begin
    match Hashtbl.find_opt t.outstanding req_id.seq with
    | Some o ->
      Hashtbl.remove t.outstanding req_id.seq;
      Metrics.Counter.incr t.c_nacked;
      finish_outstanding t o (Error reason)
    | None -> ()
  end

let handle_resp t ~req_id ~key ~o_ts ~new_replicas ~arbiters ~data =
  (* Replay driver confirmed our (possibly long forgotten) win: apply first,
     then VAL, exactly as in the failure-free path.  Idempotent. *)
  if missing_data t ~key ~kind:Acquire ~data then
    tracef "n%d drops RESP key=%d ts=%s (no data anywhere)" t.node key
      (Format.asprintf "%a" Ots.pp o_ts)
  else
  (match Hashtbl.find_opt t.outstanding req_id.seq with
  | Some o ->
    Hashtbl.remove t.outstanding req_id.seq;
    Metrics.Counter.incr t.c_won;
    let dt = Engine.now t.engine -. o.started in
    Stats.Samples.add t.latency dt;
    Metrics.Histogram.observe t.h_arb_us dt;
    requester_apply_and_val t ~req_id ~key ~kind:o.o_kind ~o_ts ~replicas:new_replicas
      ~arbiters ~data;
    finish_outstanding t o (Ok ())
  | None ->
    let applied = applied_ts t key in
    let pend_matches =
      match find_pending t key with
      | Some p -> Ots.equal p.Directory.o_ts o_ts
      | None -> false
    in
    (* Apply only a RESP that is new to us (or completes the exact pending
       arbitration).  A stale RESP for an old request must not clobber a
       newer pending arbitration — found by the model checker. *)
    if Ots.(o_ts > applied) || pend_matches then
      requester_apply_and_val t ~req_id ~key ~kind:Acquire ~o_ts ~replicas:new_replicas
        ~arbiters ~data
    else
      (* Already applied (or superseded): the replay driver is only missing
         our VALs — re-broadcast them so the blocked arbiters validate.
         Found by the model checker: without this, an arbiter whose VAL was
         lost across an epoch change replays forever while the requester
         ignores every RESP. *)
      let e = epoch t in
      List.iter
        (fun a ->
          if a <> t.node && live t a then
            send t ~dst:a ~size:48 (O_val { key; o_ts; epoch = e }))
        arbiters)

let handle_recovery_done t ~sender ~msg_epoch =
  if msg_epoch = t.gate_epoch then begin
    Hashtbl.remove t.gate_waiting sender;
    if Hashtbl.length t.gate_waiting = 0 then t.gate_epoch <- -1
  end

let handle_payload t ~src payload =
  let e = epoch t in
  match payload with
  | O_req { req_id; key; kind; requester; requester_has_data; epoch } ->
    if epoch = e then handle_req t ~req_id ~key ~kind ~requester ~requester_has_data;
    true
  | O_inv
      {
        req_id;
        key;
        o_ts;
        base_ts;
        new_replicas;
        kind;
        requester;
        arbiters;
        data_from;
        recovery;
        driver;
        epoch;
      } ->
    if epoch = e then
      handle_inv t ~req_id ~key ~o_ts ~base_ts ~new_replicas ~kind ~requester ~arbiters
        ~data_from ~recovery ~driver;
    true
  | O_ack { req_id; key; o_ts; new_replicas; arbiters; sender; data; epoch } ->
    if epoch = e then handle_ack t ~req_id ~key ~o_ts ~new_replicas ~arbiters ~sender ~data;
    true
  | O_val { key; o_ts; epoch } ->
    if epoch = e then handle_val t ~key ~o_ts;
    true
  | O_nack { req_id; key; o_ts; reason; epoch } ->
    if epoch = e then handle_nack t ~req_id ~key ~o_ts ~reason;
    true
  | O_resp { req_id; key; o_ts; new_replicas; arbiters; data; epoch } ->
    if epoch = e then handle_resp t ~req_id ~key ~o_ts ~new_replicas ~arbiters ~data;
    true
  | O_recovery_done { node; epoch } ->
    handle_recovery_done t ~sender:node ~msg_epoch:epoch;
    ignore src;
    true
  | O_register { key; replicas } ->
    if is_dir_for t key then Directory.register t.directory key replicas;
    true
  | O_forget { key } ->
    Directory.forget t.directory key;
    true
  | _ -> false

let handle t ~src payload =
  let handled = handle_payload t ~src payload in
  if handled then doorbell t;
  handled

(* ---------- registration, recovery, membership --------------------------- *)

let seed_directory t key replicas =
  if is_dir_for t key then Directory.register t.directory key replicas

let register_object t key replicas =
  List.iter
    (fun dn ->
      if dn = t.node then seed_directory t key replicas
      else if live t dn then send t ~dst:dn ~size:64 (O_register { key; replicas }))
    (t.dir_nodes_of key)

let forget_object t key =
  List.iter
    (fun dn ->
      if dn = t.node then Directory.forget t.directory key
      else if live t dn then send t ~dst:dn ~size:48 (O_forget { key }))
    (t.dir_nodes_of key)

(* With the distributed directory any node may host gated entries, so the
   announcement goes to every live node. *)
let announce_recovery_done t ~epoch:ep =
  List.iter
    (fun dn ->
      if dn = t.node then handle_recovery_done t ~sender:t.node ~msg_epoch:ep
      else if live t dn then
        send t ~dst:dn ~size:32 (O_recovery_done { node = t.node; epoch = ep }))
    (View.live_list (view t));
  doorbell t

let on_view_change t (v : View.t) =
  let lost = ref false in
  Array.iteri
    (fun i was -> if was && not (View.is_live v i) then lost := true)
    t.prev_live;
  t.prev_live <- Array.copy v.View.live;
  let alive n = View.is_live v n in
  (* Drop dead nodes from applied metadata (§4.1). *)
  Directory.drop_dead t.directory ~live:alive;
  Table.iter t.table (fun obj ->
      if Obj.is_owner obj then
        match obj.Obj.o_replicas with
        | Some r -> obj.Obj.o_replicas <- Some (Replicas.drop_dead r ~live:alive)
        | None -> ());
  (* Fail requests from the previous epoch; the application retries. *)
  let stale = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.outstanding [] in
  List.iter
    (fun seq ->
      match Hashtbl.find_opt t.outstanding seq with
      | Some o ->
        Hashtbl.remove t.outstanding seq;
        finish_outstanding t o (Error Busy)
      | None -> ())
    stale;
  Hashtbl.reset t.replays;
  (* Directory replicas gate orphaned objects until every live node has
     drained pending reliable commits from dead coordinators (§5.1). *)
  if !lost then begin
    t.gate_epoch <- v.View.epoch;
    Hashtbl.reset t.gate_waiting;
    List.iter (fun n -> Hashtbl.replace t.gate_waiting n ()) (View.live_list v)
  end;
  (* Blocked arbitrations are re-driven shortly (arb-replay). *)
  let pendings = ref [] in
  Directory.iter t.directory (fun e ->
      match e.Directory.pending with
      | Some p -> pendings := (e.Directory.key, p) :: !pendings
      | None -> ());
  Hashtbl.iter (fun key p -> pendings := (key, p) :: !pendings) t.side_pending;
  List.iter
    (fun (key, (p : Directory.pending)) -> arm_replay_check t key p.Directory.o_ts)
    !pendings

(* Fresh-incarnation reset (a rejoining node returns empty, §3.1's
   crash-stop model): all protocol state is dropped; directory entries are
   re-learnt lazily from validated arbitrations. *)
let reset t =
  Hashtbl.reset t.side_pending;
  Hashtbl.reset t.outstanding;
  Hashtbl.reset t.replays;
  Hashtbl.reset t.gate_waiting;
  t.gate_epoch <- -1;
  let keys = ref [] in
  Directory.iter t.directory (fun e -> keys := e.Directory.key :: !keys);
  List.iter (Directory.forget t.directory) !keys

let create ?(config = default_config) ?telemetry ~node ~dir_nodes_of ~table ~membership
    ~callbacks transport =
  let engine = Zeus_net.Fabric.engine (Transport.fabric transport) in
  let nodes = Zeus_net.Fabric.nodes (Transport.fabric transport) in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let metrics = Metrics.create () in
  let t =
    {
      config;
      node;
      dir_nodes_of;
      table;
      membership;
      cb = callbacks;
      transport;
      engine;
      directory = Directory.create ~node;
      side_pending = Hashtbl.create 64;
      outstanding = Hashtbl.create 64;
      replays = Hashtbl.create 16;
      req_seq = 0;
      rr = node;
      gate_epoch = -1;
      gate_waiting = Hashtbl.create 8;
      prev_live = Array.make nodes true;
      latency = Stats.Samples.create (Engine.fork_rng engine);
      metrics;
      tspans = Hub.trace hub;
      c_started = Metrics.Counter.v metrics "ownership.requests_started";
      c_won = Metrics.Counter.v metrics "ownership.requests_won";
      c_nacked = Metrics.Counter.v metrics "ownership.requests_nacked";
      c_timeout = Metrics.Counter.v metrics "ownership.requests_timed_out";
      c_replays = Metrics.Counter.v metrics "ownership.replays_started";
      c_driven = Metrics.Counter.v metrics "ownership.requests_driven";
      h_arb_us = Metrics.Histogram.v metrics "ownership.arbitration_us";
      observer = None;
    }
  in
  Service.subscribe membership node (fun v -> on_view_change t v);
  t
