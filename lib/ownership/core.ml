(* Sans-I/O core of the ownership protocol (§4).

   Every protocol decision lives here as a pure state machine:
   [handle st input] mutates [st] (hashtables and counters only — no
   closures, no engine handles, no sockets) and returns the ordered list
   of effects the surrounding runtime must execute.  The simulator agent
   ({!Agent}), the model-checking harness ({!Zeus_model.Core_harness}) and
   input-log replay all drive this same code.

   Environment access is inverted: anything the old agent read from the
   runtime mid-handler (virtual time, membership epoch and view, store
   lookups) arrives pre-sampled in {!env} and {!facts}.  Anything it wrote
   (sends, timers, store mutations, telemetry, the caller's continuation)
   leaves as an {!eff}.  The interpreter must execute effects in emission
   order, immediately after [handle] returns — the orderings below mirror
   the original call sites exactly, which is what keeps the simulator's
   event sequence bit-identical to the pre-split agent. *)

open Zeus_store
open Messages

type config = {
  request_timeout_us : float;
  replay_after_us : float;
  replay_sweep_us : float;
}

let default_config =
  { request_timeout_us = 500.0; replay_after_us = 300.0; replay_sweep_us = 500.0 }

(* Runtime facts sampled once per input, before [handle] runs. *)
type env = {
  now : float;  (** virtual time (only compared/subtracted, never advanced) *)
  epoch : int;  (** this node's membership epoch *)
  live : bool array;  (** this node's membership view *)
  self_alive : bool;  (** fabric-level liveness of this node *)
  trace_on : bool;  (** span recording armed (guards span-token allocation) *)
}

(* Store facts about the key an input concerns.  [no_facts] is correct for
   inputs that never consult the store (VAL, NACK, recovery-done, ...). *)
type facts = {
  f_exists : bool;  (** [Table.mem table key] *)
  f_o_ts : Ots.t;  (** the local replica's applied [o_ts] ([Ots.zero] if none) *)
  f_is_owner : bool;
  f_busy : bool;  (** the commit layer's [is_busy key] *)
  f_snapshot : data_snapshot option;
      (** copy of the local replica's value, for replay bookkeeping only *)
}

let no_facts =
  { f_exists = false; f_o_ts = Ots.zero; f_is_owner = false; f_busy = false;
    f_snapshot = None }

(* Timers carry everything their fire handler needs: after a
   fresh-incarnation [Reset] the outstanding record is gone, but — exactly
   like the closures they replace — stale timers still fire and must
   unblock the pre-crash caller. *)
type timer_kind =
  | T_timeout of { seq : int; key : Types.key; span : int }
  | T_cleanup of { seq : int; span : int }
  | T_replay of { key : Types.key; o_ts : Ots.t }

type counter = C_started | C_won | C_nacked | C_timeout | C_replays | C_driven

type outcome = Granted | Denied of nack_reason | Timeout

type telemetry =
  | Count of counter
  | Arb_latency of float  (** winning round-trip, µs (samples + histogram) *)
  | Span_start of
      { token : int; key : Types.key; kind : kind; driver : Types.node_id }
  | Span_finish of { token : int; outcome : outcome }
  | Span_forget of int  (** span token will never be referenced again *)

type eff =
  | Send of { dst : Types.node_id; size : int; payload : Zeus_net.Msg.payload }
  | Send_ack_local_data of {
      dst : Types.node_id;
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      new_replicas : Replicas.t;
      arbiters : Types.node_id list;
      epoch : int;
    }
      (** an O_ack whose [data] is this node's *current* snapshot of [key]:
          the interpreter copies the value at effect-execution time, after
          any preceding [Apply_arbiter] in the same list (mirrors the old
          agent snapshotting at the send call site, and keeps the hot path
          free of speculative copies) *)
  | Flush  (** transport doorbell *)
  | Set_timer of { token : int; after : float; kind : timer_kind }
  | Cancel_timer of int
  | Apply_arbiter of {
      key : Types.key;
      kind : kind;
      o_ts : Ots.t;
      replicas : Replicas.t;
      requester : Types.node_id;
    }
  | Apply_requester of {
      key : Types.key;
      kind : kind;
      o_ts : Ots.t;
      replicas : Replicas.t;
      data : data_snapshot option;
    }
  | Set_o_state of { key : Types.key; o_state : Types.o_state }
  | Restore_request_state of Types.key
      (** local replica back to [O_valid] iff still [O_request] *)
  | Drop_dead_replicas of { live : bool array }
      (** owner-held [o_replicas] in the store shed dead nodes *)
  | Notify_request of
      { key : Types.key; kind : kind; requester : Types.node_id }
  | Notify_owner_change of { key : Types.key; owner : Types.node_id }
  | Unblock of { seq : int; result : (unit, nack_reason) result }
      (** resume the caller registered for request [seq] *)
  | Telemetry of telemetry

type input =
  | Deliver of
      { src : Types.node_id; payload : Zeus_net.Msg.payload; facts : facts;
        env : env }
  | Api_request of { key : Types.key; kind : kind; facts : facts; env : env }
  | Api_register of { key : Types.key; replicas : Replicas.t; env : env }
  | Api_forget of { key : Types.key; env : env }
  | Api_seed of { key : Types.key; replicas : Replicas.t }
  | Api_recovery_done of { epoch : int; env : env }
  | Timer_fire of { token : int; kind : timer_kind; facts : facts; env : env }
  | View_change of { view_epoch : int; live : bool array; env : env }
  | Reset

(* ---------- state -------------------------------------------------------- *)

type outstanding = {
  o_req_id : request_id;
  o_key : Types.key;
  o_kind : kind;
  started : float;
  mutable acks : Types.node_id list;
  mutable proto : (Ots.t * Replicas.t * Types.node_id list) option;
  mutable data : data_snapshot option;
  mutable live_req : bool;
      (** caller not yet unblocked (the old agent's [unblock <> None]) *)
  mutable timer : int option;  (** armed timeout token *)
  o_span : int;  (** span token, [-1] when tracing was off at request time *)
}

type replay = {
  r_pending : Directory.pending;
  r_key : Types.key;
  mutable r_acks : Types.node_id list;
  mutable r_data : data_snapshot option;
}

type state = {
  config : config;
  self : Types.node_id;
  directory : Directory.t;
  side_pending : (Types.key, Directory.pending) Hashtbl.t;
  outstanding : (int, outstanding) Hashtbl.t;
  replays : (Types.key, replay) Hashtbl.t;
  mutable req_seq : int;
  mutable rr : int;
  mutable gate_epoch : int;
  gate_waiting : (Types.node_id, unit) Hashtbl.t;
  mutable prev_live : bool array;
  mutable token_seq : int;  (** timer + span token allocator *)
}

let create ?(config = default_config) ~self ~nodes () =
  {
    config;
    self;
    directory = Directory.create ~node:self;
    side_pending = Hashtbl.create 64;
    outstanding = Hashtbl.create 64;
    replays = Hashtbl.create 16;
    req_seq = 0;
    rr = self;
    gate_epoch = -1;
    gate_waiting = Hashtbl.create 8;
    prev_live = Array.make nodes true;
    token_seq = 0;
  }

let directory st = st.directory
let next_seq st = st.req_seq

let has_replay st key = Hashtbl.mem st.replays key

let pending_ts st key =
  let p =
    match Directory.find st.directory key with
    | Some e -> e.Directory.pending
    | None -> Hashtbl.find_opt st.side_pending key
  in
  Option.map (fun (p : Directory.pending) -> p.Directory.o_ts) p

let handles_payload = function
  | O_req _ | O_inv _ | O_ack _ | O_val _ | O_nack _ | O_resp _
  | O_recovery_done _ | O_register _ | O_forget _ ->
    true
  | _ -> false

let trace : (string -> unit) option ref = ref None

let tracef fmt =
  match !trace with
  | Some f -> Format.kasprintf f fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* ---------- per-input context -------------------------------------------- *)

type ctx = {
  st : state;
  env : env;
  dir : Types.key -> Types.node_id list;
  emit : eff -> unit;
}

let live c n = c.env.live.(n)

let dedup nodes =
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] nodes

let is_dir_for c key = List.mem c.st.self (c.dir key)

let dir_entry c key =
  if is_dir_for c key then Directory.find c.st.directory key else None

let find_pending c key =
  match dir_entry c key with
  | Some e -> e.Directory.pending
  | None -> Hashtbl.find_opt c.st.side_pending key

let applied_ts c key ~facts =
  match dir_entry c key with Some e -> e.Directory.o_ts | None -> facts.f_o_ts

let fresh_token st =
  let tok = st.token_seq in
  st.token_seq <- tok + 1;
  tok

(* ---------- arbiter-side apply ------------------------------------------- *)

let apply_pending_here c key (p : Directory.pending) =
  let st = c.st in
  tracef "n%d applies arbitration key=%d ts=%s req=n%d" st.self key
    (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
    p.Directory.requester;
  let replicas = Replicas.drop_dead p.Directory.new_replicas ~live:(live c) in
  (match dir_entry c key with
  | Some e ->
    Directory.apply_pending e;
    e.Directory.replicas <- replicas
  | None ->
    if is_dir_for c key then begin
      Directory.register st.directory key replicas;
      match Directory.find st.directory key with
      | Some e -> e.Directory.o_ts <- p.Directory.o_ts
      | None -> ()
    end;
    Hashtbl.remove st.side_pending key);
  Hashtbl.remove st.replays key;
  c.emit (Set_o_state { key; o_state = Types.O_valid });
  (match p.Directory.kind with
  | Acquire ->
    c.emit (Notify_owner_change { key; owner = p.Directory.requester })
  | Add_reader | Remove_reader _ -> ());
  if p.Directory.requester <> st.self then
    c.emit
      (Apply_arbiter
         {
           key;
           kind = p.Directory.kind;
           o_ts = p.Directory.o_ts;
           replicas;
           requester = p.Directory.requester;
         })

(* ---------- arb-replay (§4.1) -------------------------------------------- *)

let finish_replay_driverside c r =
  let st = c.st in
  let p = r.r_pending in
  apply_pending_here c r.r_key p;
  List.iter
    (fun a ->
      if a <> st.self && live c a then
        c.emit
          (Send
             {
               dst = a;
               size = 48;
               payload =
                 O_val { key = r.r_key; o_ts = p.Directory.o_ts; epoch = c.env.epoch };
             }))
    p.Directory.arbiters;
  Hashtbl.remove st.replays r.r_key

let replay_check_complete c ~snap r =
  let p = r.r_pending in
  let needed = List.filter (fun a -> live c a) p.Directory.arbiters in
  if List.for_all (fun a -> List.mem a r.r_acks) needed then begin
    if r.r_data = None then r.r_data <- snap;
    tracef "n%d replay-complete key=%d req=n%d data=%b" c.st.self r.r_key
      p.Directory.requester (r.r_data <> None);
    if live c p.Directory.requester then
      c.emit
        (Send
           {
             dst = p.Directory.requester;
             size =
               (64 + match r.r_data with Some d -> Value.size d.value | None -> 0);
             payload =
               O_resp
                 {
                   req_id = p.Directory.req_id;
                   key = r.r_key;
                   o_ts = p.Directory.o_ts;
                   new_replicas = p.Directory.new_replicas;
                   arbiters = p.Directory.arbiters;
                   data = r.r_data;
                   epoch = c.env.epoch;
                 };
           })
    else finish_replay_driverside c r
  end

let start_replay c ~snap key (p : Directory.pending) =
  let st = c.st in
  if not (Hashtbl.mem st.replays key) then begin
    tracef "n%d replays key=%d ts=%s req=n%d" st.self key
      (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
      p.Directory.requester;
    c.emit (Telemetry (Count C_replays));
    let p =
      match p.Directory.data_from with
      | Some src when not (live c src) ->
        let candidates =
          List.filter
            (fun a ->
              live c a
              && Replicas.is_replica p.Directory.new_replicas a
              && a <> p.Directory.requester)
            p.Directory.arbiters
        in
        { p with
          Directory.data_from =
            (match candidates with cand :: _ -> Some cand | [] -> None) }
      | _ -> p
    in
    let r = { r_pending = p; r_key = key; r_acks = [ st.self ]; r_data = None } in
    if p.Directory.data_from = Some st.self then r.r_data <- snap;
    tracef "n%d replay key=%d arbiters=[%s] data_from=%s" st.self key
      (String.concat ";" (List.map string_of_int p.Directory.arbiters))
      (match p.Directory.data_from with Some n -> string_of_int n | None -> "-");
    Hashtbl.replace st.replays key r;
    let e = c.env.epoch in
    List.iter
      (fun a ->
        if a <> st.self && live c a then
          c.emit
            (Send
               {
                 dst = a;
                 size = 128;
                 payload =
                   O_inv
                     {
                       req_id = p.Directory.req_id;
                       key;
                       o_ts = p.Directory.o_ts;
                       base_ts = p.Directory.base_ts;
                       new_replicas = p.Directory.new_replicas;
                       kind = p.Directory.kind;
                       requester = p.Directory.requester;
                       arbiters = p.Directory.arbiters;
                       data_from = p.Directory.data_from;
                       recovery = true;
                       driver = st.self;
                       epoch = e;
                     };
               }))
      p.Directory.arbiters;
    replay_check_complete c ~snap r
  end

let arm_replay_check c key o_ts =
  let tok = fresh_token c.st in
  c.emit
    (Set_timer
       { token = tok; after = c.st.config.replay_after_us; kind = T_replay { key; o_ts } })

let set_pending c key (p : Directory.pending) =
  (match dir_entry c key with
  | Some e -> Directory.set_pending e p
  | None -> Hashtbl.replace c.st.side_pending key p);
  c.emit (Set_o_state { key; o_state = Types.O_invalid });
  arm_replay_check c key p.Directory.o_ts

(* ---------- requester ---------------------------------------------------- *)

let finish_outstanding c o result =
  (match o.timer with Some tok -> c.emit (Cancel_timer tok) | None -> ());
  o.timer <- None;
  if o.o_span >= 0 then
    c.emit
      (Telemetry
         (Span_finish
            {
              token = o.o_span;
              outcome =
                (match result with Ok () -> Granted | Error r -> Denied r);
            }));
  if o.live_req then begin
    o.live_req <- false;
    if Result.is_error result then c.emit (Restore_request_state o.o_key);
    c.emit (Unblock { seq = o.o_req_id.seq; result })
  end

let missing_data ~kind ~data ~f_exists =
  (match kind with Acquire | Add_reader -> true | Remove_reader _ -> false)
  && data = None
  && not f_exists

let requester_apply_and_val c ~req_id ~key ~kind ~o_ts ~replicas ~arbiters ~data =
  let st = c.st in
  tracef "n%d applies own win key=%d ts=%s" st.self key
    (Format.asprintf "%a" Ots.pp o_ts);
  ignore req_id;
  let replicas = Replicas.drop_dead replicas ~live:(live c) in
  c.emit (Apply_requester { key; kind; o_ts; replicas; data });
  (match dir_entry c key with
  | Some e ->
    (match e.Directory.pending with
    | Some p ->
      tracef "n%d own-win drops pending key=%d ts=%s" st.self key
        (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
    | None -> ());
    e.Directory.o_ts <- o_ts;
    e.Directory.replicas <- replicas;
    Directory.clear_pending e
  | None -> Hashtbl.remove st.side_pending key);
  Hashtbl.remove st.replays key;
  (match kind with
  | Acquire -> c.emit (Notify_owner_change { key; owner = st.self })
  | Add_reader | Remove_reader _ -> ());
  let e = c.env.epoch in
  List.iter
    (fun a ->
      if a <> st.self then
        c.emit (Send { dst = a; size = 48; payload = O_val { key; o_ts; epoch = e } }))
    arbiters

let check_complete c o ~f_exists =
  let st = c.st in
  match o.proto with
  | None -> ()
  | Some (o_ts, replicas, arbiters) ->
    if List.for_all (fun a -> a = st.self || List.mem a o.acks) arbiters then begin
      Hashtbl.remove st.outstanding o.o_req_id.seq;
      (if missing_data ~kind:o.o_kind ~data:o.data ~f_exists then
         finish_outstanding c o (Error Unavailable)
       else begin
         requester_apply_and_val c ~req_id:o.o_req_id ~key:o.o_key ~kind:o.o_kind
           ~o_ts ~replicas ~arbiters ~data:o.data;
         c.emit (Telemetry (Count C_won));
         c.emit (Telemetry (Arb_latency (c.env.now -. o.started)));
         finish_outstanding c o (Ok ())
       end);
      if o.o_span >= 0 then c.emit (Telemetry (Span_forget o.o_span))
    end

let api_request c ~key ~kind ~facts =
  let st = c.st in
  tracef "n%d requests %s for key %d" st.self
    (Format.asprintf "%a" Messages.pp_kind kind)
    key;
  c.emit (Telemetry (Count C_started));
  let seq = st.req_seq in
  st.req_seq <- seq + 1;
  let req_id = { origin = st.self; seq } in
  let live_dirs = List.filter (fun d -> live c d) (c.dir key) in
  match live_dirs with
  | [] -> c.emit (Unblock { seq; result = Error Unavailable })
  | _ ->
    let driver =
      if List.mem st.self live_dirs && dir_entry c key <> None then st.self
      else begin
        let candidates =
          match List.filter (fun d -> d <> st.self) live_dirs with
          | [] -> live_dirs
          | l -> l
        in
        st.rr <- st.rr + 1;
        List.nth candidates (st.rr mod List.length candidates)
      end
    in
    let span =
      if c.env.trace_on then begin
        let tok = fresh_token st in
        c.emit (Telemetry (Span_start { token = tok; key; kind; driver }));
        tok
      end
      else -1
    in
    let o =
      {
        o_req_id = req_id;
        o_key = key;
        o_kind = kind;
        started = c.env.now;
        acks = [];
        proto = None;
        data = None;
        live_req = true;
        timer = None;
        o_span = span;
      }
    in
    Hashtbl.replace st.outstanding seq o;
    c.emit (Set_o_state { key; o_state = Types.O_request });
    let tok = fresh_token st in
    o.timer <- Some tok;
    c.emit
      (Set_timer
         {
           token = tok;
           after = st.config.request_timeout_us;
           kind = T_timeout { seq; key; span };
         });
    c.emit
      (Send
         {
           dst = driver;
           size = 64;
           payload =
             O_req
               {
                 req_id;
                 key;
                 kind;
                 requester = st.self;
                 requester_has_data = facts.f_exists;
                 epoch = c.env.epoch;
               };
         });
    c.emit Flush

(* ---------- driver (a directory node serving REQ) ------------------------ *)

let nack c ~dst ~req_id ~key ?o_ts reason =
  c.emit
    (Send
       { dst; size = 48; payload = O_nack { req_id; key; o_ts; reason; epoch = c.env.epoch } })

let compute_replicas replicas kind ~requester =
  match kind with
  | Acquire -> Replicas.promote replicas ~new_owner:requester
  | Add_reader -> Replicas.add_reader replicas requester
  | Remove_reader r -> Replicas.remove_reader replicas r

let gate_active st = st.gate_epoch >= 0 && Hashtbl.length st.gate_waiting > 0

let handle_req c ~req_id ~key ~kind ~requester ~requester_has_data ~facts =
  let st = c.st in
  if not (is_dir_for c key) then ()
  else (
    c.emit (Telemetry (Count C_driven));
    c.emit (Notify_request { key; kind; requester });
    match Directory.find st.directory key with
    | None -> nack c ~dst:requester ~req_id ~key Unknown_key
    | Some entry ->
      let replicas = entry.Directory.replicas in
      let owner = replicas.Replicas.owner in
      let owner_dead = match owner with Some o -> not (live c o) | None -> true in
      if gate_active st && owner_dead then nack c ~dst:requester ~req_id ~key Recovering
      else if entry.Directory.pending <> None then nack c ~dst:requester ~req_id ~key Busy
      else if kind = Acquire && owner = Some requester then
        c.emit
          (Send
             {
               dst = requester;
               size = 64;
               payload =
                 O_ack
                   {
                     req_id;
                     key;
                     o_ts = entry.Directory.o_ts;
                     new_replicas = replicas;
                     arbiters = [ st.self ];
                     sender = st.self;
                     data = None;
                     epoch = c.env.epoch;
                   };
             })
      else begin
        let need_data =
          (match kind with Acquire | Add_reader -> true | Remove_reader _ -> false)
          && not (requester_has_data && Replicas.is_replica replicas requester)
        in
        let data_from =
          if not need_data then None
          else
            match owner with
            | Some o when live c o -> Some o
            | _ -> List.find_opt (fun r -> live c r) replicas.Replicas.readers
        in
        if need_data && data_from = None then
          nack c ~dst:requester ~req_id ~key Unavailable
        else begin
          let o_ts = Ots.next entry.Directory.o_ts ~node:st.self in
          let arbiters =
            let extra =
              (match owner with Some o when live c o -> [ o ] | _ -> [])
              @ (match data_from with Some nd -> [ nd ] | None -> [])
              @ (match kind with Remove_reader r when live c r -> [ r ] | _ -> [])
            in
            List.filter
              (fun a -> a <> requester)
              (dedup (List.filter (fun dn -> live c dn) (c.dir key) @ extra))
          in
          if owner = Some st.self && facts.f_busy then
            nack c ~dst:requester ~req_id ~key Busy
          else begin
            let p =
              {
                Directory.req_id;
                o_ts;
                base_ts = entry.Directory.o_ts;
                new_replicas = compute_replicas replicas kind ~requester;
                kind;
                requester;
                arbiters;
                data_from;
                driving = true;
                born = c.env.now;
              }
            in
            set_pending c key p;
            let e = c.env.epoch in
            List.iter
              (fun a ->
                if a <> st.self then
                  c.emit
                    (Send
                       {
                         dst = a;
                         size = 128;
                         payload =
                           O_inv
                             {
                               req_id;
                               key;
                               o_ts;
                               base_ts = p.Directory.base_ts;
                               new_replicas = p.Directory.new_replicas;
                               kind;
                               requester;
                               arbiters;
                               data_from;
                               recovery = false;
                               driver = st.self;
                               epoch = e;
                             };
                       }))
              arbiters;
            if data_from = Some st.self then
              c.emit
                (Send_ack_local_data
                   {
                     dst = requester;
                     req_id;
                     key;
                     o_ts;
                     new_replicas = p.Directory.new_replicas;
                     arbiters;
                     epoch = e;
                   })
            else
              c.emit
                (Send
                   {
                     dst = requester;
                     size = 64;
                     payload =
                       O_ack
                         {
                           req_id;
                           key;
                           o_ts;
                           new_replicas = p.Directory.new_replicas;
                           arbiters;
                           sender = st.self;
                           data = None;
                           epoch = e;
                         };
                   })
          end
        end
      end)

(* ---------- arbiter ------------------------------------------------------ *)

let handle_inv c ~req_id ~key ~o_ts ~base_ts ~new_replicas ~kind ~requester
    ~arbiters ~data_from ~recovery ~driver ~facts =
  let st = c.st in
  let reply_dst = if recovery then driver else requester in
  let ack () =
    if data_from = Some st.self then
      c.emit
        (Send_ack_local_data
           { dst = reply_dst; req_id; key; o_ts; new_replicas; arbiters;
             epoch = c.env.epoch })
    else
      c.emit
        (Send
           {
             dst = reply_dst;
             size = 64;
             payload =
               O_ack
                 {
                   req_id;
                   key;
                   o_ts;
                   new_replicas;
                   arbiters;
                   sender = st.self;
                   data = None;
                   epoch = c.env.epoch;
                 };
           })
  in
  let applied = applied_ts c key ~facts in
  let pend = find_pending c key in
  if Ots.equal o_ts applied then ack ()
  else if match pend with Some p -> Ots.equal p.Directory.o_ts o_ts | None -> false
  then ack ()
  else begin
    let beats_applied = Ots.(o_ts > applied) in
    let beats_pending =
      match pend with Some p -> Ots.(o_ts > p.Directory.o_ts) | None -> true
    in
    if beats_applied && beats_pending then begin
      (match pend with
      | Some p when p.Directory.driving ->
        nack c ~dst:p.Directory.requester ~req_id:p.Directory.req_id ~key
          Lost_arbitration
      | Some _ | None -> ());
      (* Track the store transforms an applied base-arbitration performs, so
         the busy decision below sees the post-apply store exactly as the
         pre-split agent (which re-read the table) did. *)
      let f_exists = ref facts.f_exists
      and f_is_owner = ref facts.f_is_owner
      and f_busy = ref facts.f_busy in
      (match pend with
      | Some p when Ots.equal p.Directory.o_ts base_ts ->
        apply_pending_here c key p;
        if p.Directory.requester <> st.self then begin
          match p.Directory.kind with
          | Acquire -> if !f_is_owner then f_is_owner := false
          | Remove_reader r when r = st.self ->
            f_exists := false;
            f_is_owner := false;
            f_busy := false
          | Add_reader | Remove_reader _ -> ()
        end
      | Some _ | None -> ());
      let busy_here =
        !f_busy
        && ((!f_exists && !f_is_owner)
           || match kind with Remove_reader r -> r = st.self | _ -> false)
      in
      if busy_here then begin
        tracef "n%d busy-nacks INV key=%d ts=%s req=n%d rec=%b" st.self key
          (Format.asprintf "%a" Ots.pp o_ts)
          requester recovery;
        nack c ~dst:requester ~req_id ~key Busy
      end
      else begin
        tracef "n%d buffers INV key=%d ts=%s req=n%d rec=%b" st.self key
          (Format.asprintf "%a" Ots.pp o_ts)
          requester recovery;
        set_pending c key
          {
            Directory.req_id;
            o_ts;
            base_ts;
            new_replicas;
            kind;
            requester;
            arbiters;
            data_from;
            driving = false;
            born = c.env.now;
          };
        ack ()
      end
    end
    else
      tracef "n%d ignores stale INV key=%d ts=%s applied=%s pend=%s rec=%b" st.self
        key
        (Format.asprintf "%a" Ots.pp o_ts)
        (Format.asprintf "%a" Ots.pp applied)
        (match pend with
        | Some p -> Format.asprintf "%a" Ots.pp p.Directory.o_ts
        | None -> "-")
        recovery
  end

let handle_val c ~key ~o_ts =
  match find_pending c key with
  | Some p when Ots.equal p.Directory.o_ts o_ts -> apply_pending_here c key p
  | Some _ | None -> ()

(* ---------- dispatch ------------------------------------------------------ *)

let handle_ack c ~req_id ~key ~o_ts ~new_replicas ~arbiters ~sender ~data ~facts =
  let st = c.st in
  if req_id.origin = st.self then begin
    match Hashtbl.find_opt st.outstanding req_id.seq with
    | Some o ->
      (match o.proto with
      | None -> o.proto <- Some (o_ts, new_replicas, arbiters)
      | Some (ts0, _, _) ->
        if not (Ots.equal ts0 o_ts) then o.proto <- Some (o_ts, new_replicas, arbiters));
      (match data with Some _ -> o.data <- data | None -> ());
      if not (List.mem sender o.acks) then o.acks <- sender :: o.acks;
      check_complete c o ~f_exists:facts.f_exists
    | None -> ()
  end
  else begin
    match Hashtbl.find_opt st.replays key with
    | Some r when Ots.equal r.r_pending.Directory.o_ts o_ts ->
      (match data with Some _ -> r.r_data <- data | None -> ());
      if not (List.mem sender r.r_acks) then r.r_acks <- sender :: r.r_acks;
      replay_check_complete c ~snap:facts.f_snapshot r
    | Some _ | None -> ()
  end

let handle_nack c ~req_id ~key ~o_ts ~reason =
  ignore key;
  ignore o_ts;
  let st = c.st in
  if req_id.origin = st.self then begin
    match Hashtbl.find_opt st.outstanding req_id.seq with
    | Some o ->
      Hashtbl.remove st.outstanding req_id.seq;
      c.emit (Telemetry (Count C_nacked));
      finish_outstanding c o (Error reason);
      if o.o_span >= 0 then c.emit (Telemetry (Span_forget o.o_span))
    | None -> ()
  end

let handle_resp c ~req_id ~key ~o_ts ~new_replicas ~arbiters ~data ~facts =
  let st = c.st in
  if missing_data ~kind:Acquire ~data ~f_exists:facts.f_exists then
    tracef "n%d drops RESP key=%d ts=%s (no data anywhere)" st.self key
      (Format.asprintf "%a" Ots.pp o_ts)
  else
    match Hashtbl.find_opt st.outstanding req_id.seq with
    | Some o ->
      Hashtbl.remove st.outstanding req_id.seq;
      c.emit (Telemetry (Count C_won));
      c.emit (Telemetry (Arb_latency (c.env.now -. o.started)));
      requester_apply_and_val c ~req_id ~key ~kind:o.o_kind ~o_ts
        ~replicas:new_replicas ~arbiters ~data;
      finish_outstanding c o (Ok ());
      if o.o_span >= 0 then c.emit (Telemetry (Span_forget o.o_span))
    | None ->
      let applied = applied_ts c key ~facts in
      let pend_matches =
        match find_pending c key with
        | Some p -> Ots.equal p.Directory.o_ts o_ts
        | None -> false
      in
      if Ots.(o_ts > applied) || pend_matches then
        requester_apply_and_val c ~req_id ~key ~kind:Acquire ~o_ts
          ~replicas:new_replicas ~arbiters ~data
      else
        let e = c.env.epoch in
        List.iter
          (fun a ->
            if a <> st.self && live c a then
              c.emit
                (Send { dst = a; size = 48; payload = O_val { key; o_ts; epoch = e } }))
          arbiters

let handle_recovery_done st ~sender ~msg_epoch =
  if msg_epoch = st.gate_epoch then begin
    Hashtbl.remove st.gate_waiting sender;
    if Hashtbl.length st.gate_waiting = 0 then st.gate_epoch <- -1
  end

let deliver c ~src ~facts payload =
  let st = c.st in
  let e = c.env.epoch in
  (match payload with
  | O_req { req_id; key; kind; requester; requester_has_data; epoch } ->
    if epoch = e then handle_req c ~req_id ~key ~kind ~requester ~requester_has_data ~facts
  | O_inv
      {
        req_id;
        key;
        o_ts;
        base_ts;
        new_replicas;
        kind;
        requester;
        arbiters;
        data_from;
        recovery;
        driver;
        epoch;
      } ->
    if epoch = e then
      handle_inv c ~req_id ~key ~o_ts ~base_ts ~new_replicas ~kind ~requester
        ~arbiters ~data_from ~recovery ~driver ~facts
  | O_ack { req_id; key; o_ts; new_replicas; arbiters; sender; data; epoch } ->
    if epoch = e then
      handle_ack c ~req_id ~key ~o_ts ~new_replicas ~arbiters ~sender ~data ~facts
  | O_val { key; o_ts; epoch } -> if epoch = e then handle_val c ~key ~o_ts
  | O_nack { req_id; key; o_ts; reason; epoch } ->
    if epoch = e then handle_nack c ~req_id ~key ~o_ts ~reason
  | O_resp { req_id; key; o_ts; new_replicas; arbiters; data; epoch } ->
    if epoch = e then handle_resp c ~req_id ~key ~o_ts ~new_replicas ~arbiters ~data ~facts
  | O_recovery_done { node; epoch } ->
    handle_recovery_done st ~sender:node ~msg_epoch:epoch;
    ignore src
  | O_register { key; replicas } ->
    if is_dir_for c key then Directory.register st.directory key replicas
  | O_forget { key } -> Directory.forget st.directory key
  | _ -> ());
  c.emit Flush

(* ---------- timers ------------------------------------------------------- *)

let timer_fire c ~facts kind =
  let st = c.st in
  match kind with
  | T_replay { key; o_ts } ->
    if c.env.self_alive then begin
      match find_pending c key with
      | Some p when Ots.equal p.Directory.o_ts o_ts ->
        Hashtbl.remove st.replays key;
        start_replay c ~snap:facts.f_snapshot key p;
        c.emit Flush;
        arm_replay_check c key o_ts
      | Some p ->
        tracef "n%d replay-check key=%d ts mismatch (pend=%s, armed=%s)" st.self key
          (Format.asprintf "%a" Ots.pp p.Directory.o_ts)
          (Format.asprintf "%a" Ots.pp o_ts)
      | None -> tracef "n%d replay-check key=%d no pending" st.self key
    end
  | T_timeout { seq; key; span } -> begin
    match Hashtbl.find_opt st.outstanding seq with
    | Some o ->
      o.timer <- None;
      if o.live_req then begin
        c.emit (Telemetry (Count C_timeout));
        if o.o_span >= 0 then
          c.emit (Telemetry (Span_finish { token = o.o_span; outcome = Timeout }));
        finish_outstanding c o (Error Busy);
        (* Keep the record a while longer: a late win is still applied (the
           app's retry then finds it owns the object). *)
        let tok = fresh_token st in
        c.emit
          (Set_timer
             {
               token = tok;
               after = 4.0 *. st.config.request_timeout_us;
               kind = T_cleanup { seq; span = o.o_span };
             })
      end
    | None ->
      (* A fresh-incarnation [Reset] wiped the record, but — exactly like
         the closure this timer replaces — the pre-crash caller must still
         be timed out and unblocked. *)
      c.emit (Telemetry (Count C_timeout));
      if span >= 0 then begin
        c.emit (Telemetry (Span_finish { token = span; outcome = Timeout }));
        c.emit (Telemetry (Span_finish { token = span; outcome = Denied Busy }))
      end;
      c.emit (Restore_request_state key);
      c.emit (Unblock { seq; result = Error Busy });
      let tok = fresh_token st in
      c.emit
        (Set_timer
           {
             token = tok;
             after = 4.0 *. st.config.request_timeout_us;
             kind = T_cleanup { seq; span };
           })
  end
  | T_cleanup { seq; span } -> begin
    match Hashtbl.find_opt st.outstanding seq with
    | Some o ->
      Hashtbl.remove st.outstanding seq;
      if o.o_span >= 0 then c.emit (Telemetry (Span_forget o.o_span))
    | None -> if span >= 0 then c.emit (Telemetry (Span_forget span))
  end

(* ---------- registration, recovery, membership --------------------------- *)

let seed_directory c key replicas =
  if is_dir_for c key then Directory.register c.st.directory key replicas

let api_register c ~key ~replicas =
  List.iter
    (fun dn ->
      if dn = c.st.self then seed_directory c key replicas
      else if live c dn then
        c.emit (Send { dst = dn; size = 64; payload = O_register { key; replicas } }))
    (c.dir key)

let api_forget c ~key =
  List.iter
    (fun dn ->
      if dn = c.st.self then Directory.forget c.st.directory key
      else if live c dn then
        c.emit (Send { dst = dn; size = 48; payload = O_forget { key } }))
    (c.dir key)

let api_recovery_done c ~epoch:ep =
  let st = c.st in
  let live_list =
    let acc = ref [] in
    Array.iteri (fun i l -> if l then acc := i :: !acc) c.env.live;
    List.rev !acc
  in
  List.iter
    (fun dn ->
      if dn = st.self then handle_recovery_done st ~sender:st.self ~msg_epoch:ep
      else if live c dn then
        c.emit
          (Send { dst = dn; size = 32; payload = O_recovery_done { node = st.self; epoch = ep } }))
    live_list;
  c.emit Flush

let view_change c ~view_epoch ~(vlive : bool array) =
  let st = c.st in
  let lost = ref false in
  Array.iteri (fun i was -> if was && not vlive.(i) then lost := true) st.prev_live;
  st.prev_live <- Array.copy vlive;
  let alive n = vlive.(n) in
  Directory.drop_dead st.directory ~live:alive;
  c.emit (Drop_dead_replicas { live = Array.copy vlive });
  let stale = Hashtbl.fold (fun seq _ acc -> seq :: acc) st.outstanding [] in
  List.iter
    (fun seq ->
      match Hashtbl.find_opt st.outstanding seq with
      | Some o ->
        Hashtbl.remove st.outstanding seq;
        finish_outstanding c o (Error Busy);
        if o.o_span >= 0 then c.emit (Telemetry (Span_forget o.o_span))
      | None -> ())
    stale;
  Hashtbl.reset st.replays;
  if !lost then begin
    st.gate_epoch <- view_epoch;
    Hashtbl.reset st.gate_waiting;
    Array.iteri (fun n l -> if l then Hashtbl.replace st.gate_waiting n ()) vlive
  end;
  let pendings = ref [] in
  Directory.iter st.directory (fun e ->
      match e.Directory.pending with
      | Some p -> pendings := (e.Directory.key, p) :: !pendings
      | None -> ());
  Hashtbl.iter (fun key p -> pendings := (key, p) :: !pendings) st.side_pending;
  List.iter
    (fun (key, (p : Directory.pending)) -> arm_replay_check c key p.Directory.o_ts)
    !pendings

let reset st =
  Hashtbl.reset st.side_pending;
  Hashtbl.reset st.outstanding;
  Hashtbl.reset st.replays;
  Hashtbl.reset st.gate_waiting;
  st.gate_epoch <- -1;
  let keys = ref [] in
  Directory.iter st.directory (fun e -> keys := e.Directory.key :: !keys);
  List.iter (Directory.forget st.directory) !keys

(* ---------- the one entry point ------------------------------------------ *)

let no_env =
  { now = 0.0; epoch = 0; live = [||]; self_alive = true; trace_on = false }

let env_of = function
  | Deliver { env; _ }
  | Api_request { env; _ }
  | Api_register { env; _ }
  | Api_forget { env; _ }
  | Api_recovery_done { env; _ }
  | Timer_fire { env; _ }
  | View_change { env; _ } ->
    env
  | Api_seed _ | Reset -> no_env

let handle ~dir st input =
  let acc = ref [] in
  let emit e = acc := e :: !acc in
  let c = { st; env = env_of input; dir; emit } in
  (match input with
  | Deliver { src; payload; facts; _ } -> deliver c ~src ~facts payload
  | Api_request { key; kind; facts; _ } -> api_request c ~key ~kind ~facts
  | Api_register { key; replicas; _ } -> api_register c ~key ~replicas
  | Api_forget { key; _ } -> api_forget c ~key
  | Api_seed { key; replicas } -> seed_directory c key replicas
  | Api_recovery_done { epoch; _ } -> api_recovery_done c ~epoch
  | Timer_fire { kind; facts; _ } -> timer_fire c ~facts kind
  | View_change { view_epoch; live; _ } -> view_change c ~view_epoch ~vlive:live
  | Reset -> reset st);
  (st, List.rev !acc)

(* ---------- deep copy + canonical fingerprint (model checking) ----------- *)

let copy_outstanding o =
  {
    o_req_id = o.o_req_id;
    o_key = o.o_key;
    o_kind = o.o_kind;
    started = o.started;
    acks = o.acks;
    proto = o.proto;
    data = o.data;
    live_req = o.live_req;
    timer = o.timer;
    o_span = o.o_span;
  }

let copy_replay r =
  { r_pending = r.r_pending; r_key = r.r_key; r_acks = r.r_acks; r_data = r.r_data }

let copy st =
  let directory = Directory.create ~node:st.self in
  Directory.iter st.directory (fun e ->
      Directory.register directory e.Directory.key e.Directory.replicas;
      match Directory.find directory e.Directory.key with
      | Some e' ->
        e'.Directory.o_state <- e.Directory.o_state;
        e'.Directory.o_ts <- e.Directory.o_ts;
        e'.Directory.replicas <- e.Directory.replicas;
        e'.Directory.pending <- e.Directory.pending
      | None -> ());
  let side_pending = Hashtbl.copy st.side_pending in
  let outstanding = Hashtbl.create (Hashtbl.length st.outstanding * 2 + 1) in
  Hashtbl.iter (fun k o -> Hashtbl.replace outstanding k (copy_outstanding o)) st.outstanding;
  let replays = Hashtbl.create (Hashtbl.length st.replays * 2 + 1) in
  Hashtbl.iter (fun k r -> Hashtbl.replace replays k (copy_replay r)) st.replays;
  {
    config = st.config;
    self = st.self;
    directory;
    side_pending;
    outstanding;
    replays;
    req_seq = st.req_seq;
    rr = st.rr;
    gate_epoch = st.gate_epoch;
    gate_waiting = Hashtbl.copy st.gate_waiting;
    prev_live = Array.copy st.prev_live;
    token_seq = st.token_seq;
  }

(* The fingerprint is canonical: hashtables are dumped in sorted key order
   and timer/span tokens are reduced to presence bits, so two states that
   differ only in allocation history (token counters) or table iteration
   order collapse to one explored state. *)

let pp_snap ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some d -> Format.fprintf ppf "v%d:%s" d.t_version (Bytes.to_string d.value)

let pp_pending ppf (p : Directory.pending) =
  Format.fprintf ppf "{r=n%d.%d ts=%a base=%a nr=%a k=%a req=n%d arb=[%s] df=%s d=%b b=%g}"
    p.Directory.req_id.origin p.Directory.req_id.seq Ots.pp p.Directory.o_ts Ots.pp
    p.Directory.base_ts Replicas.pp p.Directory.new_replicas Messages.pp_kind
    p.Directory.kind p.Directory.requester
    (String.concat ";" (List.map string_of_int p.Directory.arbiters))
    (match p.Directory.data_from with Some n -> string_of_int n | None -> "-")
    p.Directory.driving p.Directory.born

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let fingerprint st =
  let b = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer b in
  Format.fprintf ppf "n%d rr=%d seq=%d gate=%d gw=[%s] pl=[%s]@," st.self st.rr
    st.req_seq st.gate_epoch
    (String.concat ";"
       (List.map (fun (n, ()) -> string_of_int n) (sorted_bindings st.gate_waiting)))
    (String.concat ";"
       (Array.to_list (Array.map (fun l -> if l then "1" else "0") st.prev_live)));
  let dir_entries = ref [] in
  Directory.iter st.directory (fun e -> dir_entries := e :: !dir_entries);
  let dir_entries =
    List.sort (fun a b -> compare a.Directory.key b.Directory.key) !dir_entries
  in
  List.iter
    (fun (e : Directory.entry) ->
      Format.fprintf ppf "D%d %a %a %a %a@," e.Directory.key Types.pp_o_state
        e.Directory.o_state Ots.pp e.Directory.o_ts Replicas.pp e.Directory.replicas
        (Format.pp_print_option ~none:(fun ppf () -> Format.pp_print_string ppf "-") pp_pending)
        e.Directory.pending)
    dir_entries;
  List.iter
    (fun (key, p) -> Format.fprintf ppf "S%d %a@," key pp_pending p)
    (sorted_bindings st.side_pending);
  List.iter
    (fun (seq, o) ->
      Format.fprintf ppf "O%d k=%d %a t0=%g acks=[%s] proto=%s data=%a live=%b tmr=%b@,"
        seq o.o_key Messages.pp_kind o.o_kind o.started
        (String.concat ";" (List.map string_of_int (List.sort compare o.acks)))
        (match o.proto with
        | None -> "-"
        | Some (ts, nr, arb) ->
          Format.asprintf "%a/%a/[%s]" Ots.pp ts Replicas.pp nr
            (String.concat ";" (List.map string_of_int arb)))
        pp_snap o.data o.live_req (o.timer <> None))
    (sorted_bindings st.outstanding);
  List.iter
    (fun (key, r) ->
      Format.fprintf ppf "R%d %a acks=[%s] data=%a@," key pp_pending r.r_pending
        (String.concat ";" (List.map string_of_int (List.sort compare r.r_acks)))
        pp_snap r.r_data)
    (sorted_bindings st.replays);
  Format.pp_print_flush ppf ();
  Buffer.contents b
