(** Sans-I/O core of the ownership protocol (§4).

    A pure state machine: {!handle} consumes one {!input} (a protocol
    message, an API call, a timer fire, a view change) and returns the
    ordered {!eff} list its runtime must execute — sends, timers, store
    callbacks, telemetry, caller unblocks.  No simulator, transport or
    telemetry handle appears anywhere in the state: the same code is driven
    by the simulator interpreter ({!Agent}), by bounded model checking over
    real states ({!Zeus_model.Core_harness}) and by input-log replay.

    Contract for interpreters:

    - sample {!env} and {!facts} {e before} calling [handle] (they are the
      core's only window onto time, membership and the store);
    - execute the returned effects {e in order, immediately}, before
      feeding the next input — handlers never advance time, so in-order
      execution reproduces the pre-split agent's I/O sequence exactly;
    - route timer fires back with the same {!timer_kind} that armed them;
    - keep feeding armed timers even across {!Reset} (crash-stop rejoin):
      stale timers deliberately survive and time out pre-crash callers. *)

open Zeus_store

type config = {
  request_timeout_us : float;
  replay_after_us : float;
  replay_sweep_us : float;
}

val default_config : config

(** Runtime environment sampled once per input. *)
type env = {
  now : float;
  epoch : int;
  live : bool array;
  self_alive : bool;
  trace_on : bool;
}

(** Store facts about the key an input concerns; [no_facts] for inputs
    that never consult the store. *)
type facts = {
  f_exists : bool;
  f_o_ts : Ots.t;
  f_is_owner : bool;
  f_busy : bool;
  f_snapshot : Messages.data_snapshot option;
}

val no_facts : facts

type timer_kind =
  | T_timeout of { seq : int; key : Types.key; span : int }
  | T_cleanup of { seq : int; span : int }
  | T_replay of { key : Types.key; o_ts : Ots.t }

type counter = C_started | C_won | C_nacked | C_timeout | C_replays | C_driven
type outcome = Granted | Denied of Messages.nack_reason | Timeout

type telemetry =
  | Count of counter
  | Arb_latency of float
  | Span_start of
      { token : int; key : Types.key; kind : Messages.kind; driver : Types.node_id }
  | Span_finish of { token : int; outcome : outcome }
  | Span_forget of int

type eff =
  | Send of { dst : Types.node_id; size : int; payload : Zeus_net.Msg.payload }
  | Send_ack_local_data of {
      dst : Types.node_id;
      req_id : Messages.request_id;
      key : Types.key;
      o_ts : Ots.t;
      new_replicas : Replicas.t;
      arbiters : Types.node_id list;
      epoch : int;
    }
      (** O_ack carrying this node's current snapshot of [key], taken by
          the interpreter at effect-execution time *)
  | Flush
  | Set_timer of { token : int; after : float; kind : timer_kind }
  | Cancel_timer of int
  | Apply_arbiter of {
      key : Types.key;
      kind : Messages.kind;
      o_ts : Ots.t;
      replicas : Replicas.t;
      requester : Types.node_id;
    }
  | Apply_requester of {
      key : Types.key;
      kind : Messages.kind;
      o_ts : Ots.t;
      replicas : Replicas.t;
      data : Messages.data_snapshot option;
    }
  | Set_o_state of { key : Types.key; o_state : Types.o_state }
  | Restore_request_state of Types.key
  | Drop_dead_replicas of { live : bool array }
  | Notify_request of
      { key : Types.key; kind : Messages.kind; requester : Types.node_id }
  | Notify_owner_change of { key : Types.key; owner : Types.node_id }
  | Unblock of { seq : int; result : (unit, Messages.nack_reason) result }
  | Telemetry of telemetry

type input =
  | Deliver of
      { src : Types.node_id; payload : Zeus_net.Msg.payload; facts : facts;
        env : env }
  | Api_request of
      { key : Types.key; kind : Messages.kind; facts : facts; env : env }
  | Api_register of { key : Types.key; replicas : Replicas.t; env : env }
  | Api_forget of { key : Types.key; env : env }
  | Api_seed of { key : Types.key; replicas : Replicas.t }
  | Api_recovery_done of { epoch : int; env : env }
  | Timer_fire of { token : int; kind : timer_kind; facts : facts; env : env }
  | View_change of { view_epoch : int; live : bool array; env : env }
  | Reset

type state

val create : ?config:config -> self:Types.node_id -> nodes:int -> unit -> state

val handle :
  dir:(Types.key -> Types.node_id list) -> state -> input -> state * eff list
(** Process one input.  [dir] is the (static) directory-placement function,
    passed per call so [state] stays marshal-free of closures.  The
    returned state is the argument, mutated in place; the effect list must
    be executed in order before the next input. *)

val directory : state -> Directory.t
val next_seq : state -> int
(** The seq the next {!Api_request} will use — interpreters register the
    caller's continuation under it before feeding the input. *)

val has_replay : state -> Types.key -> bool
(** An arb-replay for [key] is in flight (interpreters use it to decide
    whether an incoming O_ack needs [f_snapshot] sampled). *)

val pending_ts : state -> Types.key -> Ots.t option
(** The [o_ts] of the arbitration this node holds pending for [key]
    (directory entry or side-buffer), if any — the model checker uses it
    to decide which armed replay timers are meaningful to fire. *)

val handles_payload : Zeus_net.Msg.payload -> bool

val trace : (string -> unit) option ref
(** Debug hook: protocol-event trace lines (tests and debugging).  Purely
    observational — never affects state or effects. *)

val copy : state -> state
(** Deep copy, for branching exploration. *)

val fingerprint : state -> string
(** Canonical dump: hashtables in sorted order, timer/span tokens reduced
    to presence bits — states differing only in allocation history
    collapse together. *)
