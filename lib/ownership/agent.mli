(** Per-node agent of the reliable ownership protocol (§4).

    One agent runs on every node and plays all three roles:

    - {e requester}: [request] sends REQ to a directory node, collects the
      arbiters' ACKs, applies the new placement {e first} (§4.1), unblocks
      the caller after 1.5 RTT, and broadcasts VAL;
    - {e driver}: a directory node receiving REQ stamps the request with
      [o_ts = (obj_ver + 1, self)] and invalidates the other arbiters;
    - {e arbiter}: directory replicas, the current owner, and (when the
      owner is dead or the data must come from elsewhere) a designated
      reader buffer the pending arbitration, ACK, and apply on VAL.

    Contention is resolved by lexicographic [o_ts]: an arbiter only
    processes an INV that beats both its applied and pending timestamps,
    and a driver that processes a competitor's INV NACKs its own requester.
    Because every directory replica arbitrates every request, two
    concurrent requests always share an arbiter that picks the single
    winner.

    Failures: epoch-tagged messages are dropped across view changes; any
    blocked arbiter replays the idempotent arbitration ({e arb-replay})
    acting as driver, finishing with RESP to a live requester (who still
    applies first) or driver-side VALs when the requester died (§4.1). *)

open Zeus_store

(** Hooks into the node runtime (the store and commit layers). *)
type callbacks = {
  is_busy : Types.key -> bool;
      (** owner-side: the object is in a still-executing or
          still-replicating transaction, so the request must be NACKed *)
  apply_arbiter :
    key:Types.key ->
    kind:Messages.kind ->
    o_ts:Ots.t ->
    replicas:Replicas.t ->
    requester:Types.node_id ->
    unit;
      (** a request validated at this node: demote/trim/update the local
          replica accordingly *)
  apply_requester :
    key:Types.key ->
    kind:Messages.kind ->
    o_ts:Ots.t ->
    replicas:Replicas.t ->
    data:Messages.data_snapshot option ->
    unit;
      (** this node's own request won: install the object/access level *)
}

type config = Core.config = {
  request_timeout_us : float;
      (** requester gives up (the app will retry with backoff) *)
  replay_after_us : float;
      (** how long an arbitration may stay pending before a blocked arbiter
          initiates arb-replay *)
  replay_sweep_us : float;  (** period of the stuck-arbitration sweep *)
}

val default_config : config

(** Passive tap on arbitration traffic, for placement engines
    ({!Zeus_locality}): observing never changes protocol behaviour. *)
type observer = {
  on_request : key:Types.key -> kind:Messages.kind -> requester:Types.node_id -> unit;
      (** this node is driving a request (it sees every requester of the
          keys it arbitrates for) *)
  on_owner_change : key:Types.key -> owner:Types.node_id -> unit;
      (** an [Acquire] validated at this node; [owner] is the new owner *)
}

type t

val trace : (string -> unit) option ref
(** Debug hook: protocol-event trace lines (tests and debugging). *)

val create :
  ?config:config ->
  ?telemetry:Zeus_telemetry.Hub.t ->
  node:Types.node_id ->
  dir_nodes_of:(Types.key -> Types.node_id list) ->
  table:Table.t ->
  membership:Zeus_membership.Service.t ->
  callbacks:callbacks ->
  Zeus_net.Transport.t ->
  t
(** The agent does not install transport handlers; the node runtime routes
    payloads to {!handle}.  [create] subscribes to membership changes.
    With [telemetry] and tracing enabled, every arbitration round-trip
    emits a span (category ["ownership"]) tagged with the key, kind,
    local-vs-remote driver, and its outcome
    (granted / denied / timeout). *)

val node : t -> Types.node_id

val set_observer : t -> observer -> unit
(** Install the (single) traffic observer. *)

val directory : t -> Directory.t
(** This node's directory shard: entries for the keys whose [dir_nodes_of]
    set contains this node (all keys, with the single replicated directory
    of §4; a hash slice with the distributed directory of §6.2). *)

val request :
  ?parent:Zeus_telemetry.Trace.span ->
  t ->
  key:Types.key ->
  kind:Messages.kind ->
  k:((unit, Messages.nack_reason) result -> unit) ->
  unit
(** Start an ownership request; [k] fires exactly once, when the request is
    applied locally (the 1.5-RTT unblock point), NACKed, or timed out.
    [parent] links the arbitration span to the transaction that needs the
    object. *)

val register_object : t -> Types.key -> Replicas.t -> unit
(** Creation path: install directory metadata (local directory replica
    synchronously, remote ones by reliable message). *)

val forget_object : t -> Types.key -> unit

val seed_directory : t -> Types.key -> Replicas.t -> unit
(** Bootstrap only: install directory metadata locally with no messaging. *)

val announce_recovery_done : t -> epoch:int -> unit
(** The commit layer drained all pending reliable commits from dead
    coordinators for [epoch]; tell the directory replicas so they resume
    serving requests for orphaned objects (§5.1). *)

val handle : t -> src:Types.node_id -> Zeus_net.Msg.payload -> bool
(** Process one protocol message; [false] if the payload is not ours. *)

val reset : t -> unit
(** Fresh-incarnation reset for a rejoining node: drop all protocol state
    (the crash-stop model of §3.1 — a returning node knows nothing).
    Directory entries are re-learnt from subsequent arbitrations. *)

(** Observability *)

val latency_samples : t -> Zeus_sim.Stats.Samples.t
(** Requester-observed latency of successful requests, µs. *)

val requests_started : t -> int
val requests_won : t -> int
val requests_nacked : t -> int
val requests_timed_out : t -> int
val replays_started : t -> int

val requests_driven : t -> int
(** REQs this node served as a driver — the per-node directory load that
    the distributed directory of §6.2 spreads. *)

val metrics : t -> Zeus_telemetry.Metrics.t
(** The agent's typed registry (counters under ["ownership."], plus the
    ["ownership.arbitration_us"] histogram). *)

(** Record / replay *)

val set_io_tap : t -> (Core.input -> Core.eff list -> unit) -> unit
(** Observe every (input, effects) pair fed through the sans-I/O core, in
    order.  Inputs embed their sampled [env]/[facts], so a recorded
    sequence replayed into a fresh {!Core.state} reproduces the same
    states and effect lists deterministically. *)

val core_fingerprint : t -> string
(** {!Core.fingerprint} of the live core (replay-equivalence checks). *)
