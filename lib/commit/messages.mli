(** Wire messages of the reliable commit protocol (§5, Figure 4). *)

open Zeus_store

(** Reliable commits are ordered within per-thread pipelines (§5.2, §7):
    [pipe] identifies the coordinator thread and [slot] is the
    monotonically increasing [local_tx_id] within it. *)
type pipe_id = { node : Types.node_id; thread : int }

type tx_id = { pipe : pipe_id; slot : int }

val pp_tx : Format.formatter -> tx_id -> unit

type Zeus_net.Msg.payload +=
  | R_inv of {
      tx : tx_id;
      epoch : int;
      followers : Types.node_id list;
      writes : Txn.update list;
      prev_val : bool;
          (** the coordinator has already broadcast R-VALs for the previous
              slot of this pipeline, so a partial-stream follower may treat
              it as cleared (§5.2) *)
      replay : bool;  (** replayed by a follower after a coordinator crash *)
    }
  | R_ack of { tx : tx_id; sender : Types.node_id }
  | R_val of { tx : tx_id; upto : int; epoch : int }
      (** [upto] is the sequence-aware clear mark: every slot [<= upto] of
          this pipe had completed replication when the VAL was sent (the
          coordinator's contiguous commit watermark; [-1] when the sender
          cannot vouch for earlier slots, e.g. a crash replay).  [epoch] is
          the sender's view epoch, fencing stragglers of a reset
          incarnation on the unknown-pipe adoption path. *)
