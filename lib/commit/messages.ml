open Zeus_store

type pipe_id = { node : Types.node_id; thread : int }
type tx_id = { pipe : pipe_id; slot : int }

let pp_tx ppf tx = Format.fprintf ppf "n%d.t%d#%d" tx.pipe.node tx.pipe.thread tx.slot

type Zeus_net.Msg.payload +=
  | R_inv of {
      tx : tx_id;
      epoch : int;
      followers : Types.node_id list;
      writes : Txn.update list;
      prev_val : bool;
      replay : bool;
    }
  | R_ack of { tx : tx_id; sender : Types.node_id }
  | R_val of { tx : tx_id; upto : int; epoch : int }
