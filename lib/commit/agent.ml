(* Thin interpreter over {!Core}: samples the environment, feeds inputs,
   and executes the returned effects against the real engine — transport
   sends, store transforms, telemetry, the caller's durability
   continuation.  All protocol logic lives in the sans-I/O core. *)

module Metrics = Zeus_telemetry.Metrics
module Tspan = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Transport = Zeus_net.Transport
module Service = Zeus_membership.Service
module View = Zeus_membership.View
open Zeus_store

type callbacks = {
  on_freed : Types.key -> unit;
  recovery_drained : epoch:int -> unit;
}

type t = {
  core : Core.state;
  node : Types.node_id;
  table : Table.t;
  membership : Service.t;
  cb : callbacks;
  transport : Transport.t;
  durables : (int * int, unit -> unit) Hashtbl.t;  (* (thread, slot) *)
  spans : (int, Tspan.span) Hashtbl.t;  (* span token -> live span *)
  mutable span_parent : Tspan.span;
  metrics : Metrics.t;
  tspans : Tspan.t;
  c_started : Metrics.Counter.h;
  c_durable : Metrics.Counter.h;
  c_replays : Metrics.Counter.h;
  mutable io_tap : (Core.input -> Core.eff list -> unit) option;
}

let node t = t.node
let commits_started t = Metrics.Counter.get t.c_started
let commits_durable t = Metrics.Counter.get t.c_durable
let replays_started t = Metrics.Counter.get t.c_replays
let metrics t = t.metrics
let inflight t = Core.inflight t.core
let stored_invs t = Core.stored_invs t.core
let buffered_invs t = Core.buffered_invs t.core
let set_io_tap t f = t.io_tap <- Some f
let core_fingerprint t = Core.fingerprint t.core

(* ---------- runtime sampling --------------------------------------------- *)

let env t =
  {
    Core.epoch = Service.epoch_at t.membership t.node;
    live = (Service.node_view t.membership t.node).View.live;
    trace_on = Tspan.enabled t.tspans;
  }

(* ---------- effect execution --------------------------------------------- *)

(* Reliably committed: validate unchanged objects locally, finish freed
   ones, and release the pipelining guard ([pending_rc]). *)
let validate_local t writes =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj ->
        obj.Obj.pending_rc <- obj.Obj.pending_rc - 1;
        if obj.Obj.t_version = u.version then begin
          if u.freed then begin
            Table.remove t.table u.key;
            t.cb.on_freed u.key
          end
          else obj.Obj.t_state <- Types.T_valid
        end
      | None -> ())
    writes

(* Apply the writes of an R-INV version-monotonically (§5.1).  Receiving an
   R-INV for an object we do not store means the coordinator just made us a
   reader of it (object creation, §7 malloc) — install it.  Replays never
   install: a reader that was reliably removed must not resurrect. *)
let apply_writes t ~install writes =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj ->
        if u.version > obj.Obj.t_version then begin
          obj.Obj.data <- u.data;
          obj.Obj.t_version <- u.version;
          obj.Obj.t_state <- Types.T_invalid
        end
      | None ->
        if install && not u.freed then begin
          let obj = Obj.create ~key:u.key ~role:Types.Reader ~version:u.version u.data in
          obj.Obj.t_state <- Types.T_invalid;
          Table.install t.table obj
        end)
    writes

(* An R-VAL (or equivalent) for a stored R-INV: validate objects whose
   version is unchanged, complete frees. *)
let validate_stored t writes =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj ->
        if obj.Obj.t_version = u.version then begin
          if u.freed then Table.remove t.table u.key
          else if obj.Obj.t_state = Types.T_invalid then obj.Obj.t_state <- Types.T_valid
        end
      | None -> ())
    writes

let exec_telemetry t = function
  | Core.Count C_started -> Metrics.Counter.incr t.c_started
  | Core.Count C_durable -> Metrics.Counter.incr t.c_durable
  | Core.Count C_replays -> Metrics.Counter.incr t.c_replays
  | Core.Span_start { token; thread; slot; followers; writes } ->
    let span =
      Tspan.start_span t.tspans ~cat:"commit" ~pid:t.node ~tid:thread
        ~parent:t.span_parent
        ~args:
          [
            ("slot", string_of_int slot);
            ("followers", string_of_int followers);
            ("writes", string_of_int writes);
          ]
        "replication_ack"
    in
    Hashtbl.replace t.spans token span
  | Core.Span_finish token -> (
    match Hashtbl.find_opt t.spans token with
    | Some span ->
      Hashtbl.remove t.spans token;
      Tspan.finish t.tspans span
    | None -> ())

let exec_eff t = function
  | Core.Send { dst; size; payload } ->
    Transport.send t.transport ~src:t.node ~dst ~size payload
  | Core.Flush ->
    (* Reliable-commit traffic is a natural batch AND off the application's
       critical path, so it rides the transport's full flush window; the
       core rings the doorbell only where extra delay could stall recovery
       (replays on a view change). *)
    Transport.flush t.transport t.node
  | Core.Validate_local { writes } -> validate_local t writes
  | Core.Apply_writes { install; writes } -> apply_writes t ~install writes
  | Core.Validate_stored { writes } -> validate_stored t writes
  | Core.Durable { tx } -> (
    let key = (tx.Messages.pipe.thread, tx.Messages.slot) in
    match Hashtbl.find_opt t.durables key with
    | Some k ->
      Hashtbl.remove t.durables key;
      k ()
    | None -> ())
  | Core.Drained { epoch } -> t.cb.recovery_drained ~epoch
  | Core.Telemetry tele -> exec_telemetry t tele

let feed t input =
  let _, effs = Core.handle t.core input in
  (match t.io_tap with Some f -> f input effs | None -> ());
  List.iter (exec_eff t) effs

(* ---------- public API ---------------------------------------------------- *)

let commit ?(parent = Tspan.null_span) t ~thread ~updates ?on_durable () =
  let replica_sets =
    List.map
      (fun (u : Txn.update) ->
        match Table.find t.table u.key with
        | Some obj -> (
          match obj.Obj.o_replicas with Some r -> Replicas.all r | None -> [])
        | None -> [])
      updates
  in
  let has_durable =
    match on_durable with
    | Some k ->
      Hashtbl.replace t.durables (thread, Core.peek_slot t.core ~thread) k;
      true
    | None -> false
  in
  t.span_parent <- parent;
  feed t (Core.Api_commit { thread; updates; replica_sets; has_durable; env = env t });
  t.span_parent <- Tspan.null_span

let handle t ~src payload =
  if Core.handles_payload payload then begin
    feed t (Core.Deliver { src; payload; env = env t });
    true
  end
  else false

let on_view_change t (v : View.t) =
  feed t
    (Core.View_change { view_epoch = v.View.epoch; live = v.View.live; env = env t })

(* Fresh-incarnation reset for a rejoining node.  The pending durability
   continuations and spans die with the protocol state (commit has no
   timers, so unlike ownership there is no zombie path to preserve). *)
let reset t =
  feed t Core.Reset;
  Hashtbl.reset t.durables;
  Hashtbl.reset t.spans

let create ?telemetry ?clear_marks ~node ~table ~membership ~callbacks transport =
  let nodes = Zeus_net.Fabric.nodes (Transport.fabric transport) in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let metrics = Metrics.create () in
  let t =
    {
      core = Core.create ?clear_marks ~self:node ~nodes ();
      node;
      table;
      membership;
      cb = callbacks;
      transport;
      durables = Hashtbl.create 16;
      spans = Hashtbl.create 16;
      span_parent = Tspan.null_span;
      metrics;
      tspans = Hub.trace hub;
      c_started = Metrics.Counter.v metrics "commit.commits_started";
      c_durable = Metrics.Counter.v metrics "commit.commits_durable";
      c_replays = Metrics.Counter.v metrics "commit.replays_started";
      io_tap = None;
    }
  in
  Service.subscribe membership node (fun v -> on_view_change t v);
  t
