module Engine = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Tspan = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub
module Transport = Zeus_net.Transport
module Service = Zeus_membership.Service
module View = Zeus_membership.View
open Zeus_store
open Messages

type callbacks = {
  on_freed : Types.key -> unit;
  recovery_drained : epoch:int -> unit;
}

(* Coordinator-side in-flight slot. *)
type slot_state = {
  s_tx : tx_id;
  s_writes : Txn.update list;
  s_followers : Types.node_id list;
  mutable s_missing : Types.node_id list;
  mutable s_extra_vals : Types.node_id list;
      (* partial-stream followers of the next slot to include in this
         slot's R-VAL broadcast (§5.2) *)
  s_on_durable : (unit -> unit) option;
  s_span : Tspan.span;  (* replication round-trip: R-INV out to all ACKs in *)
}

type pipeline = { mutable next_slot : int; slots : (int, slot_state) Hashtbl.t }

(* Follower-side record of an applied R-INV, held for replay until R-VAL. *)
type stored_inv = {
  i_tx : tx_id;
  i_followers : Types.node_id list;
  i_writes : Txn.update list;
}

type buffered_inv = {
  b_followers : Types.node_id list;
  b_writes : Txn.update list;
  b_src : Types.node_id;
}

type follower_pipe = {
  mutable cleared_upto : int;
      (* all slots <= this are applied here or validated by the coordinator *)
  stored : (int, stored_inv) Hashtbl.t;
  buffered : (int, buffered_inv) Hashtbl.t;
}

type t = {
  node : Types.node_id;
  table : Table.t;
  membership : Service.t;
  cb : callbacks;
  transport : Transport.t;
  engine : Engine.t;
  pipelines : (int, pipeline) Hashtbl.t;  (* by thread *)
  follower_pipes : (pipe_id, follower_pipe) Hashtbl.t;
  replaying : (tx_id, slot_state) Hashtbl.t;
  mutable prev_live : bool array;
  mutable recovering_epoch : int option;
  metrics : Metrics.t;
  tspans : Tspan.t;
  c_started : Metrics.Counter.h;
  c_durable : Metrics.Counter.h;
  c_replays : Metrics.Counter.h;
}

let node t = t.node
let commits_started t = Metrics.Counter.get t.c_started
let commits_durable t = Metrics.Counter.get t.c_durable
let replays_started t = Metrics.Counter.get t.c_replays
let metrics t = t.metrics

let epoch t = Service.epoch_at t.membership t.node
let view t = Service.node_view t.membership t.node
let live t n = View.is_live (view t) n
let send t ~dst ?size payload = Transport.send t.transport ~src:t.node ~dst ?size payload

(* Reliable-commit traffic (R-INV broadcasts, the ACK/VAL replies) is a
   natural batch AND off the application's critical path: the caller's
   commit callback fires at local commit (§5.2), so replication latency is
   hidden by pipelining.  It therefore rides the transport's full flush
   window — bursts from nearby activations coalesce into one frame per
   follower — and the doorbell is rung only where extra delay could stall
   recovery (replays on a view change). *)
let doorbell t = Transport.flush t.transport t.node

let inflight t =
  Hashtbl.fold (fun _ p acc -> acc + Hashtbl.length p.slots) t.pipelines 0

let stored_invs t =
  Hashtbl.fold (fun _ fp acc -> acc + Hashtbl.length fp.stored) t.follower_pipes 0

let writes_size writes =
  List.fold_left (fun acc (u : Txn.update) -> acc + Value.size u.data + 16) 64 writes

(* ---------- coordinator -------------------------------------------------- *)

let get_pipe t thread =
  match Hashtbl.find_opt t.pipelines thread with
  | Some p -> p
  | None ->
    let p = { next_slot = 0; slots = Hashtbl.create 32 } in
    Hashtbl.replace t.pipelines thread p;
    p

(* Reliably committed: validate unchanged objects locally, finish freed
   ones, and release the pipelining guard ([pending_rc]). *)
let validate_local t (s : slot_state) =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj ->
        obj.Obj.pending_rc <- obj.Obj.pending_rc - 1;
        if obj.Obj.t_version = u.version then begin
          if u.freed then begin
            Table.remove t.table u.key;
            t.cb.on_freed u.key
          end
          else obj.Obj.t_state <- Types.T_valid
        end
      | None -> ())
    s.s_writes;
  Metrics.Counter.incr t.c_durable;
  match s.s_on_durable with Some k -> k () | None -> ()

let finish_slot t pipe (s : slot_state) =
  Hashtbl.remove pipe.slots s.s_tx.slot;
  Tspan.finish t.tspans s.s_span;
  validate_local t s;
  let recipients =
    List.filter (fun n -> live t n) (s.s_followers @ s.s_extra_vals)
  in
  List.iter (fun f -> send t ~dst:f ~size:32 (R_val { tx = s.s_tx })) recipients

let commit ?(parent = Tspan.null_span) t ~thread ~updates ?on_durable () =
  Metrics.Counter.incr t.c_started;
  let pipe = get_pipe t thread in
  let slot = pipe.next_slot in
  pipe.next_slot <- slot + 1;
  let tx = { pipe = { node = t.node; thread }; slot } in
  let followers =
    List.fold_left
      (fun acc (u : Txn.update) ->
        match Table.find t.table u.key with
        | Some obj -> (
          match obj.Obj.o_replicas with
          | Some r ->
            List.fold_left
              (fun acc n -> if n = t.node || List.mem n acc then acc else n :: acc)
              acc (Replicas.all r)
          | None -> acc)
        | None -> acc)
      [] updates
  in
  let followers = List.filter (fun f -> live t f) followers in
  if followers = [] then begin
    (* Replication degree 1 (or all backups dead): durable immediately. *)
    let s =
      {
        s_tx = tx;
        s_writes = updates;
        s_followers = [];
        s_missing = [];
        s_extra_vals = [];
        s_on_durable = on_durable;
        s_span = Tspan.null_span;
      }
    in
    validate_local t s
  end
  else begin
    let s =
      {
        s_tx = tx;
        s_writes = updates;
        s_followers = followers;
        s_missing = followers;
        s_extra_vals = [];
        s_on_durable = on_durable;
        s_span =
          (* Guarded so the args (three string_of_int) are only built when
             tracing is live — this runs once per write commit. *)
          (if Tspan.enabled t.tspans then
             Tspan.start_span t.tspans ~cat:"commit" ~pid:t.node ~tid:thread
               ~parent
               ~args:
                 [
                   ("slot", string_of_int slot);
                   ("followers", string_of_int (List.length followers));
                   ("writes", string_of_int (List.length updates));
                 ]
               "replication_ack"
           else Tspan.null_span);
      }
    in
    Hashtbl.replace pipe.slots slot s;
    let prev = Hashtbl.find_opt pipe.slots (slot - 1) in
    let e = epoch t in
    let size = writes_size updates in
    List.iter
      (fun f ->
        let prev_val =
          match prev with
          | None -> true (* previous slot already validated (or none) *)
          | Some ps ->
            (* A partial-stream follower (§5.2): it will not see slot-1's
               R-INV, so include it in slot-1's R-VAL broadcast. *)
            if not (List.mem f ps.s_followers || List.mem f ps.s_extra_vals) then
              ps.s_extra_vals <- f :: ps.s_extra_vals;
            false
        in
        send t ~dst:f ~size
          (R_inv { tx; epoch = e; followers; writes = updates; prev_val; replay = false }))
      followers
  end

(* ---------- follower ------------------------------------------------------ *)

let get_follower_pipe t pipe_id =
  match Hashtbl.find_opt t.follower_pipes pipe_id with
  | Some fp -> fp
  | None ->
    let fp = { cleared_upto = -1; stored = Hashtbl.create 32; buffered = Hashtbl.create 8 } in
    Hashtbl.replace t.follower_pipes pipe_id fp;
    fp

let dead_stored_count t =
  Hashtbl.fold
    (fun (pid : pipe_id) fp acc ->
      if live t pid.node then acc else acc + Hashtbl.length fp.stored)
    t.follower_pipes 0

let check_drained t =
  match t.recovering_epoch with
  | Some e when dead_stored_count t = 0 ->
    t.recovering_epoch <- None;
    t.cb.recovery_drained ~epoch:e
  | Some _ | None -> ()

(* Apply the writes of an R-INV version-monotonically (§5.1).  Receiving an
   R-INV for an object we do not store means the coordinator just made us a
   reader of it (object creation, §7 malloc) — install it.  Replays never
   install: a reader that was reliably removed must not resurrect. *)
let apply_writes t ~install writes =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj ->
        if u.version > obj.Obj.t_version then begin
          obj.Obj.data <- u.data;
          obj.Obj.t_version <- u.version;
          obj.Obj.t_state <- Types.T_invalid
        end
      | None ->
        if install && not u.freed then begin
          let obj = Obj.create ~key:u.key ~role:Types.Reader ~version:u.version u.data in
          obj.Obj.t_state <- Types.T_invalid;
          Table.install t.table obj
        end)
    writes

(* An R-VAL (or equivalent) for a stored R-INV: validate objects whose
   version is unchanged, complete frees, discard the stored record. *)
let validate_stored t fp slot (si : stored_inv) =
  List.iter
    (fun (u : Txn.update) ->
      match Table.find t.table u.key with
      | Some obj ->
        if obj.Obj.t_version = u.version then begin
          if u.freed then Table.remove t.table u.key
          else if obj.Obj.t_state = Types.T_invalid then obj.Obj.t_state <- Types.T_valid
        end
      | None -> ())
    si.i_writes;
  Hashtbl.remove fp.stored slot;
  check_drained t

let rec drain_buffered t pipe_id fp =
  let next = fp.cleared_upto + 1 in
  match Hashtbl.find_opt fp.buffered next with
  | Some b ->
    Hashtbl.remove fp.buffered next;
    apply_slot t pipe_id fp ~slot:next ~followers:b.b_followers ~writes:b.b_writes
      ~src:b.b_src ~install:true;
    drain_buffered t pipe_id fp
  | None -> ()

and apply_slot t pipe_id fp ~slot ~followers ~writes ~src ~install =
  apply_writes t ~install writes;
  Hashtbl.replace fp.stored slot
    { i_tx = { pipe = pipe_id; slot }; i_followers = followers; i_writes = writes };
  if slot > fp.cleared_upto then fp.cleared_upto <- slot;
  send t ~dst:src ~size:32 (R_ack { tx = { pipe = pipe_id; slot }; sender = t.node })

let handle_inv t ~src ~tx ~followers ~writes ~prev_val ~replay =
  let fp = get_follower_pipe t tx.pipe in
  if Hashtbl.mem fp.stored tx.slot || tx.slot <= fp.cleared_upto then
    (* Duplicate (e.g. retransmission or concurrent replays): re-ACK. *)
    send t ~dst:src ~size:32 (R_ack { tx; sender = t.node })
  else begin
    if prev_val && tx.slot - 1 > fp.cleared_upto then fp.cleared_upto <- tx.slot - 1;
    if replay || fp.cleared_upto >= tx.slot - 1 then begin
      apply_slot t tx.pipe fp ~slot:tx.slot ~followers ~writes ~src ~install:(not replay);
      drain_buffered t tx.pipe fp
    end
    else
      (* Out of pipeline order: hold until the previous slot clears. *)
      Hashtbl.replace fp.buffered tx.slot
        { b_followers = followers; b_writes = writes; b_src = src }
  end

let handle_val t ~tx =
  match Hashtbl.find_opt t.follower_pipes tx.pipe with
  | None -> ()
  | Some fp ->
    (match Hashtbl.find_opt fp.stored tx.slot with
    | Some si -> validate_stored t fp tx.slot si
    | None -> ());
    if tx.slot > fp.cleared_upto then begin
      fp.cleared_upto <- tx.slot;
      drain_buffered t tx.pipe fp
    end

(* ---------- replay after a coordinator crash (§5.1) ---------------------- *)

let finish_replay t (s : slot_state) =
  Hashtbl.remove t.replaying s.s_tx;
  (* Validate our own stored copy, then R-VAL the other followers. *)
  (match Hashtbl.find_opt t.follower_pipes s.s_tx.pipe with
  | Some fp -> (
    match Hashtbl.find_opt fp.stored s.s_tx.slot with
    | Some si -> validate_stored t fp s.s_tx.slot si
    | None -> ())
  | None -> ());
  List.iter (fun f -> send t ~dst:f ~size:32 (R_val { tx = s.s_tx })) s.s_followers

let start_replay t (si : stored_inv) =
  if not (Hashtbl.mem t.replaying si.i_tx) then begin
    Metrics.Counter.incr t.c_replays;
    let others = List.filter (fun f -> f <> t.node && live t f) si.i_followers in
    let s =
      {
        s_tx = si.i_tx;
        s_writes = si.i_writes;
        s_followers = others;
        s_missing = others;
        s_extra_vals = [];
        s_on_durable = None;
        s_span = Tspan.null_span;
      }
    in
    if others = [] then finish_replay t s
    else begin
      Hashtbl.replace t.replaying si.i_tx s;
      let e = epoch t in
      let size = writes_size si.i_writes in
      List.iter
        (fun f ->
          send t ~dst:f ~size
            (R_inv
               {
                 tx = si.i_tx;
                 epoch = e;
                 followers = si.i_followers;
                 writes = si.i_writes;
                 prev_val = false;
                 replay = true;
               }))
        others
    end
  end

let handle_ack t ~tx ~sender =
  if tx.pipe.node = t.node then begin
    match Hashtbl.find_opt t.pipelines tx.pipe.thread with
    | None -> ()
    | Some pipe -> (
      match Hashtbl.find_opt pipe.slots tx.slot with
      | None -> ()
      | Some s ->
        s.s_missing <- List.filter (fun f -> f <> sender) s.s_missing;
        if s.s_missing = [] then finish_slot t pipe s)
  end
  else begin
    match Hashtbl.find_opt t.replaying tx with
    | None -> ()
    | Some s ->
      s.s_missing <- List.filter (fun f -> f <> sender) s.s_missing;
      if s.s_missing = [] then finish_replay t s
  end

(* ---------- membership --------------------------------------------------- *)

let on_view_change t (v : View.t) =
  let died = ref [] and revived = ref [] in
  Array.iteri
    (fun i was ->
      if was && not (View.is_live v i) then died := i :: !died
      else if (not was) && View.is_live v i then revived := i :: !revived)
    t.prev_live;
  t.prev_live <- Array.copy v.View.live;
  (* A rejoined node is a fresh incarnation: its pipelines restart at slot
     zero, so any stale follower-side pipe state must go. *)
  List.iter
    (fun node ->
      let stale =
        Hashtbl.fold
          (fun (pid : pipe_id) _ acc -> if pid.node = node then pid :: acc else acc)
          t.follower_pipes []
      in
      List.iter (Hashtbl.remove t.follower_pipes) stale)
    !revived;
  if !died <> [] then begin
    let alive n = View.is_live v n in
    (* Coordinator side: dead followers can never ack. *)
    Hashtbl.iter
      (fun _ pipe ->
        let slots = Hashtbl.fold (fun _ s acc -> s :: acc) pipe.slots [] in
        List.iter
          (fun s ->
            s.s_missing <- List.filter alive s.s_missing;
            if s.s_missing = [] then finish_slot t pipe s)
          slots)
      t.pipelines;
    (* Replayer side likewise. *)
    let replays = Hashtbl.fold (fun _ s acc -> s :: acc) t.replaying [] in
    List.iter
      (fun s ->
        s.s_missing <- List.filter alive s.s_missing;
        if s.s_missing = [] then finish_replay t s)
      replays;
    (* Follower side: discard unappliable buffers of dead pipes and replay
       every applied R-INV of a dead coordinator (§5.1). *)
    t.recovering_epoch <- Some v.View.epoch;
    Hashtbl.iter
      (fun (pid : pipe_id) fp ->
        if not (alive pid.node) then begin
          Hashtbl.reset fp.buffered;
          Hashtbl.iter (fun _ si -> start_replay t si) fp.stored
        end)
      t.follower_pipes;
    check_drained t
  end;
  (* The epoch just bumped.  Any R-INV of a still-open slot (or replay) may
     have been sent under the old epoch and fenced off by a follower that
     installed this view first; the transport is reliable, so nothing below
     us retries.  Re-drive the missing followers at the new epoch —
     followers that did apply the original take the duplicate path and
     simply re-ACK.  (Found via the detected-mode fault experiment: one
     fenced R-INV left a commit waiting forever for its ACK, holding the
     written keys busy against every ownership arb-replay.) *)
  let e = v.View.epoch in
  Hashtbl.iter
    (fun _ pipe ->
      Hashtbl.iter
        (fun _ (s : slot_state) ->
          let size = writes_size s.s_writes in
          List.iter
            (fun f ->
              if View.is_live v f then begin
                let prev_val =
                  match Hashtbl.find_opt pipe.slots (s.s_tx.slot - 1) with
                  | None -> true
                  | Some ps ->
                    if not (List.mem f ps.s_followers || List.mem f ps.s_extra_vals)
                    then ps.s_extra_vals <- f :: ps.s_extra_vals;
                    false
                in
                send t ~dst:f ~size
                  (R_inv
                     {
                       tx = s.s_tx;
                       epoch = e;
                       followers = s.s_followers;
                       writes = s.s_writes;
                       prev_val;
                       replay = false;
                     })
              end)
            s.s_missing)
        pipe.slots)
    t.pipelines;
  Hashtbl.iter
    (fun _ (s : slot_state) ->
      let size = writes_size s.s_writes in
      List.iter
        (fun f ->
          if View.is_live v f then
            send t ~dst:f ~size
              (R_inv
                 {
                   tx = s.s_tx;
                   epoch = e;
                   followers = s.s_followers;
                   writes = s.s_writes;
                   prev_val = false;
                   replay = true;
                 }))
        s.s_missing)
    t.replaying;
  doorbell t

(* Fresh-incarnation reset for a rejoining node. *)
let reset t =
  Hashtbl.reset t.pipelines;
  Hashtbl.reset t.follower_pipes;
  Hashtbl.reset t.replaying;
  t.recovering_epoch <- None

(* ---------- dispatch ------------------------------------------------------ *)

let handle t ~src payload =
  match payload with
  | R_inv { tx; epoch = e; followers; writes; prev_val; replay } ->
    (* Fence STALE epochs only.  A future-epoch R-INV comes from a peer
       that installed the next view before us; views are monotone and we
       will install it within the skew bound, so the traffic is not a
       pre-reconfiguration zombie — and dropping it loses the delivery for
       good, because the transport is reliable and nothing above it
       retries.  Exception: a sender we still see as dead is a rejoined
       incarnation whose follower-pipe state we will wipe when its revival
       view reaches us, so accepting its slots early would store state the
       wipe then destroys — keep fencing those. *)
    if e = epoch t || (e > epoch t && live t src) then
      handle_inv t ~src ~tx ~followers ~writes ~prev_val ~replay;
    true
  | R_ack { tx; sender } ->
    handle_ack t ~tx ~sender;
    true
  | R_val { tx } ->
    handle_val t ~tx;
    true
  | _ -> false

let create ?telemetry ~node ~table ~membership ~callbacks transport =
  let engine = Zeus_net.Fabric.engine (Transport.fabric transport) in
  let nodes = Zeus_net.Fabric.nodes (Transport.fabric transport) in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let metrics = Metrics.create () in
  let t =
    {
      node;
      table;
      membership;
      cb = callbacks;
      transport;
      engine;
      pipelines = Hashtbl.create 16;
      follower_pipes = Hashtbl.create 64;
      replaying = Hashtbl.create 16;
      prev_live = Array.make nodes true;
      recovering_epoch = None;
      metrics;
      tspans = Hub.trace hub;
      c_started = Metrics.Counter.v metrics "commit.commits_started";
      c_durable = Metrics.Counter.v metrics "commit.commits_durable";
      c_replays = Metrics.Counter.v metrics "commit.replays_started";
    }
  in
  Service.subscribe membership node (fun v -> on_view_change t v);
  ignore t.engine;
  t
