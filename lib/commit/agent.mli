(** Per-node agent of the reliable commit protocol (§5).

    {b Coordinator side.}  After a successful local commit, {!commit} opens
    a slot in the calling thread's pipeline and broadcasts R-INV (with the
    new [(t_version, t_data)] of every modified object) to the transaction's
    followers — the readers of the modified objects.  The application is
    {e never} blocked: subsequent transactions on the same objects proceed
    immediately (§5.2).  When every live follower has R-ACKed, the
    coordinator validates locally ([t_state = Valid] iff the version is
    unchanged, i.e. no newer pipelined transaction rewrote the object) and
    broadcasts R-VAL.

    {b Follower side.}  R-INVs apply version-monotonically and in pipeline
    order: slot [s] applies only once slot [s - 1] is known cleared — by
    having been applied here, by an R-VAL, or by the piggybacked [prev_val]
    bit for partial-stream followers.  Applied R-INVs are held until R-VAL
    for replay (§5.1).

    {b Recovery.}  When the membership excludes a coordinator, every
    follower re-drives the {e applied} R-INVs of the dead node's pipelines
    (idempotent, thanks to version checks) and reports to the ownership
    layer once drained, which un-gates ownership requests for the dead
    node's objects. *)

open Zeus_store

type callbacks = {
  on_freed : Types.key -> unit;
      (** coordinator side: a freed object finished replicating — release
          any external metadata (e.g. the ownership directory entry) *)
  recovery_drained : epoch:int -> unit;
      (** all pending reliable commits from coordinators that died in
          [epoch]'s reconfiguration have been drained at this node *)
}

type t

val create :
  ?telemetry:Zeus_telemetry.Hub.t ->
  ?clear_marks:Core.clear_marks ->
  node:Types.node_id ->
  table:Table.t ->
  membership:Zeus_membership.Service.t ->
  callbacks:callbacks ->
  Zeus_net.Transport.t ->
  t
(** [clear_marks] (default {!Core.Sequenced}) selects the follower-side
    R-VAL discipline — see {!Core.clear_marks}. *)

val node : t -> Types.node_id

val commit :
  ?parent:Zeus_telemetry.Trace.span ->
  t ->
  thread:int ->
  updates:Txn.update list ->
  ?on_durable:(unit -> unit) ->
  unit ->
  unit
(** Start the reliable commit of a locally committed transaction.  The
    updates must all be to objects this node owns ([t_state = Write],
    versions already bumped by {!Zeus_store.Txn.local_commit}).
    [on_durable] fires when the transaction is reliably committed (all
    followers acked) — callers use it for replication-lag metrics and
    post-replication actions, never to block the application.  With
    tracing enabled, each replicated slot records a ["replication_ack"]
    span (R-INV broadcast to last follower ACK) under [parent]. *)

val handle : t -> src:Types.node_id -> Zeus_net.Msg.payload -> bool

val reset : t -> unit
(** Fresh-incarnation reset for a rejoining node. *)

val inflight : t -> int
(** Coordinator-side slots not yet validated. *)

val stored_invs : t -> int
(** Follower-side R-INVs held for replay. *)

val buffered_invs : t -> int
(** Follower-side R-INVs buffered behind an unhandled predecessor slot. *)

val commits_started : t -> int
val commits_durable : t -> int
val replays_started : t -> int

val metrics : t -> Zeus_telemetry.Metrics.t
(** The agent's typed registry (counters under ["commit."]). *)

(** Record / replay *)

val set_io_tap : t -> (Core.input -> Core.eff list -> unit) -> unit
(** Observe every (input, effects) pair fed through the sans-I/O core, in
    order.  Inputs embed their sampled [env] (and, for [Api_commit], the
    pre-sampled replica sets), so a recorded sequence replayed into a
    fresh {!Core.state} reproduces the same states and effect lists
    deterministically. *)

val core_fingerprint : t -> string
(** {!Core.fingerprint} of the live core (replay-equivalence checks). *)
