(* Sans-I/O core of the reliable commit protocol (§5).

   Same architecture as {!Zeus_ownership.Core}: [handle st input] mutates
   the pipeline/follower state in place and returns the ordered effect
   list its runtime must execute.  Store access is inverted two ways:
   reads arrive pre-sampled in the input (the per-update replica sets of
   an {!Api_commit}), writes leave as the three coarse store transforms
   the old agent performed inline ({!Validate_local}, {!Apply_writes},
   {!Validate_stored}) — the simulator interpreter runs them against the
   real {!Zeus_store.Table}, the model harness against its model store. *)

open Zeus_store
open Messages

type env = { epoch : int; live : bool array; trace_on : bool }

type counter = C_started | C_durable | C_replays

type telemetry =
  | Count of counter
  | Span_start of
      { token : int; thread : int; slot : int; followers : int; writes : int }
  | Span_finish of int
      (** replication span closed; the token is dead afterwards *)

type eff =
  | Send of { dst : Types.node_id; size : int; payload : Zeus_net.Msg.payload }
  | Flush
  | Validate_local of { writes : Txn.update list }
      (** coordinator durable: per update, [pending_rc - 1]; on version
          match, freed objects are removed (firing the runtime's
          [on_freed]) and unchanged ones revalidate *)
  | Apply_writes of { install : bool; writes : Txn.update list }
      (** follower applies an R-INV version-monotonically; [install] for
          unknown objects only outside replay *)
  | Validate_stored of { writes : Txn.update list }
      (** follower R-VAL: version-equal objects revalidate or complete
          their free *)
  | Durable of { tx : tx_id }
      (** the [on_durable] continuation registered for this slot fires *)
  | Drained of { epoch : int }
      (** all dead coordinators' stored R-INVs drained ([recovery_drained]) *)
  | Telemetry of telemetry

type input =
  | Deliver of { src : Types.node_id; payload : Zeus_net.Msg.payload; env : env }
  | Api_commit of {
      thread : int;
      updates : Txn.update list;
      replica_sets : Types.node_id list list;
          (** per update, in order: [Replicas.all] of the object's
              owner-held [o_replicas] ([[]] when absent) *)
      has_durable : bool;
      env : env;
    }
  | View_change of { view_epoch : int; live : bool array; env : env }
  | Reset

(* ---------- state -------------------------------------------------------- *)

type clear_marks = Legacy | Sequenced

type slot_state = {
  s_tx : tx_id;
  s_writes : Txn.update list;
  s_followers : Types.node_id list;
  mutable s_missing : Types.node_id list;
  mutable s_extra_vals : Types.node_id list;
  s_has_durable : bool;
  s_span : int;  (* span token, -1 when tracing was off *)
}

type pipeline = {
  mutable next_slot : int;
  mutable done_upto : int;
      (* contiguous commit watermark: every slot <= done_upto has validated
         locally (it was removed from [slots], or never entered them — the
         no-follower fast path); this is the [upto] clear mark R-VALs carry *)
  slots : (int, slot_state) Hashtbl.t;
}

type stored_inv = {
  i_tx : tx_id;
  i_followers : Types.node_id list;
  i_writes : Txn.update list;
}

type buffered_inv = {
  b_followers : Types.node_id list;
  b_writes : Txn.update list;
  b_src : Types.node_id;
}

type follower_pipe = {
  mutable cleared_upto : int;
  marks : (int, unit) Hashtbl.t;
      (* Sequenced mode only: slots above [cleared_upto] known handled
         (stored or cleared by a VAL) while earlier slots are still open at
         the coordinator; compacted into [cleared_upto] as gaps close *)
  stored : (int, stored_inv) Hashtbl.t;
  buffered : (int, buffered_inv) Hashtbl.t;
}

type state = {
  self : Types.node_id;
  mode : clear_marks;
  pipelines : (int, pipeline) Hashtbl.t;
  follower_pipes : (pipe_id, follower_pipe) Hashtbl.t;
  replaying : (tx_id, slot_state) Hashtbl.t;
  mutable prev_live : bool array;
  mutable recovering_epoch : int option;
  mutable token_seq : int;
}

let create ?(clear_marks = Sequenced) ~self ~nodes () =
  {
    self;
    mode = clear_marks;
    pipelines = Hashtbl.create 16;
    follower_pipes = Hashtbl.create 64;
    replaying = Hashtbl.create 16;
    prev_live = Array.make nodes true;
    recovering_epoch = None;
    token_seq = 0;
  }

let inflight st =
  Hashtbl.fold (fun _ p acc -> acc + Hashtbl.length p.slots) st.pipelines 0

let stored_invs st =
  Hashtbl.fold (fun _ fp acc -> acc + Hashtbl.length fp.stored) st.follower_pipes 0

let buffered_invs st =
  Hashtbl.fold
    (fun _ fp acc -> acc + Hashtbl.length fp.buffered)
    st.follower_pipes 0

let replaying_count st = Hashtbl.length st.replaying
let recovering_epoch st = st.recovering_epoch
let clear_marks_mode st = st.mode

let peek_slot st ~thread =
  match Hashtbl.find_opt st.pipelines thread with
  | Some p -> p.next_slot
  | None -> 0

let handles_payload = function R_inv _ | R_ack _ | R_val _ -> true | _ -> false

let writes_size writes =
  List.fold_left (fun acc (u : Txn.update) -> acc + Value.size u.data + 16) 64 writes

type ctx = { st : state; env : env; emit : eff -> unit }

let live c n = c.env.live.(n)

let fresh_token st =
  let tok = st.token_seq in
  st.token_seq <- tok + 1;
  tok

(* ---------- coordinator -------------------------------------------------- *)

let get_pipe st thread =
  match Hashtbl.find_opt st.pipelines thread with
  | Some p -> p
  | None ->
    let p = { next_slot = 0; done_upto = -1; slots = Hashtbl.create 32 } in
    Hashtbl.replace st.pipelines thread p;
    p

(* A slot not in [slots] but below [next_slot] has validated locally —
   either [finish_slot] removed it or the no-follower fast path never
   inserted it — so the watermark may advance over it. *)
let advance_done pipe =
  while
    pipe.done_upto + 1 < pipe.next_slot
    && not (Hashtbl.mem pipe.slots (pipe.done_upto + 1))
  do
    pipe.done_upto <- pipe.done_upto + 1
  done

let validate_local c (s : slot_state) =
  c.emit (Validate_local { writes = s.s_writes });
  c.emit (Telemetry (Count C_durable));
  if s.s_has_durable then c.emit (Durable { tx = s.s_tx })

(* The clear mark a VAL carries is per recipient: the highest slot [f] need
   not wait for.  Starting from the contiguous [done_upto] watermark, every
   further slot is vouched if it validated (left [slots]) or if [f] is not
   among its missing acks — then [f] either already applied it (and holds
   its own mark) or was never a follower, so no R-INV for it can ever reach
   [f], re-driven or not.  The scan stops at the first slot still missing
   [f]'s ack: vouching {e that} would let a still-in-flight R-INV be
   dedup-acked without applying.  This carries exactly the knowledge the
   legacy receiver inferred from link order, so on FIFO transports the two
   modes behave identically.  The scan is also capped at the VAL's own slot:
   vouching higher slots would be sound but would clear {e more} than the
   legacy jump, perturbing apply timing on FIFO runs for no benefit. *)
let upto_for pipe f ~slot =
  let u = ref pipe.done_upto in
  let blocked = ref false in
  while (not !blocked) && !u + 1 <= slot do
    match Hashtbl.find_opt pipe.slots (!u + 1) with
    | None -> incr u
    | Some s -> if List.mem f s.s_missing then blocked := true else incr u
  done;
  !u

let finish_slot c pipe (s : slot_state) =
  Hashtbl.remove pipe.slots s.s_tx.slot;
  advance_done pipe;
  if s.s_span >= 0 then c.emit (Telemetry (Span_finish s.s_span));
  validate_local c s;
  let recipients =
    List.filter (fun n -> live c n) (s.s_followers @ s.s_extra_vals)
  in
  let epoch = c.env.epoch in
  List.iter
    (fun f ->
      c.emit
        (Send
           {
             dst = f;
             size = 32;
             payload =
               R_val
                 { tx = s.s_tx; upto = upto_for pipe f ~slot:s.s_tx.slot; epoch };
           }))
    recipients

let api_commit c ~thread ~updates ~replica_sets ~has_durable =
  let st = c.st in
  c.emit (Telemetry (Count C_started));
  let pipe = get_pipe st thread in
  let slot = pipe.next_slot in
  pipe.next_slot <- slot + 1;
  let tx = { pipe = { node = st.self; thread }; slot } in
  let followers =
    List.fold_left
      (fun acc all ->
        List.fold_left
          (fun acc n -> if n = st.self || List.mem n acc then acc else n :: acc)
          acc all)
      [] replica_sets
  in
  let followers = List.filter (fun f -> live c f) followers in
  if followers = [] then begin
    let s =
      {
        s_tx = tx;
        s_writes = updates;
        s_followers = [];
        s_missing = [];
        s_extra_vals = [];
        s_has_durable = has_durable;
        s_span = -1;
      }
    in
    validate_local c s
  end
  else begin
    let span =
      if c.env.trace_on then begin
        let tok = fresh_token st in
        c.emit
          (Telemetry
             (Span_start
                {
                  token = tok;
                  thread;
                  slot;
                  followers = List.length followers;
                  writes = List.length updates;
                }));
        tok
      end
      else -1
    in
    let s =
      {
        s_tx = tx;
        s_writes = updates;
        s_followers = followers;
        s_missing = followers;
        s_extra_vals = [];
        s_has_durable = has_durable;
        s_span = span;
      }
    in
    Hashtbl.replace pipe.slots slot s;
    let prev = Hashtbl.find_opt pipe.slots (slot - 1) in
    let e = c.env.epoch in
    let size = writes_size updates in
    List.iter
      (fun f ->
        let prev_val =
          match prev with
          | None -> true
          | Some ps ->
            if not (List.mem f ps.s_followers || List.mem f ps.s_extra_vals) then
              ps.s_extra_vals <- f :: ps.s_extra_vals;
            false
        in
        c.emit
          (Send
             {
               dst = f;
               size;
               payload =
                 R_inv
                   { tx; epoch = e; followers; writes = updates; prev_val; replay = false };
             }))
      followers
  end

(* ---------- follower ------------------------------------------------------ *)

let get_follower_pipe st pipe_id =
  match Hashtbl.find_opt st.follower_pipes pipe_id with
  | Some fp -> fp
  | None ->
    let fp =
      {
        cleared_upto = -1;
        marks = Hashtbl.create 8;
        stored = Hashtbl.create 32;
        buffered = Hashtbl.create 8;
      }
    in
    Hashtbl.replace st.follower_pipes pipe_id fp;
    fp

(* ---- sequence-aware clear marks (Sequenced mode) ----
   [cleared fp s] means slot [s] of the pipe is handled at this follower:
   its writes were applied and stored here, or a clear mark (watermark or
   individual VAL) proved the slot completed without involving us.  The
   watermark [cleared_upto] absorbs marks as they become contiguous, so
   [marks] only holds the sparse frontier above coordinator-side gaps. *)

let cleared fp slot = slot <= fp.cleared_upto || Hashtbl.mem fp.marks slot

let compact_marks fp =
  while Hashtbl.mem fp.marks (fp.cleared_upto + 1) do
    Hashtbl.remove fp.marks (fp.cleared_upto + 1);
    fp.cleared_upto <- fp.cleared_upto + 1
  done

let mark_handled fp slot =
  if slot > fp.cleared_upto then Hashtbl.replace fp.marks slot ();
  compact_marks fp

let advance_cleared fp upto =
  if upto > fp.cleared_upto then begin
    fp.cleared_upto <- upto;
    let stale = Hashtbl.fold (fun s () acc -> if s <= upto then s :: acc else acc) fp.marks [] in
    List.iter (Hashtbl.remove fp.marks) stale
  end;
  compact_marks fp

let dead_stored_count c =
  Hashtbl.fold
    (fun (pid : pipe_id) fp acc ->
      if live c pid.node then acc else acc + Hashtbl.length fp.stored)
    c.st.follower_pipes 0

let check_drained c =
  match c.st.recovering_epoch with
  | Some e when dead_stored_count c = 0 ->
    c.st.recovering_epoch <- None;
    c.emit (Drained { epoch = e })
  | Some _ | None -> ()

let validate_stored c fp slot (si : stored_inv) =
  c.emit (Validate_stored { writes = si.i_writes });
  Hashtbl.remove fp.stored slot;
  check_drained c

(* Legacy drain: the watermark is the only clear mark, so only the exactly
   contiguous next slot can unblock. *)
let rec drain_buffered c pipe_id fp =
  match c.st.mode with
  | Legacy -> (
    let next = fp.cleared_upto + 1 in
    match Hashtbl.find_opt fp.buffered next with
    | Some b ->
      Hashtbl.remove fp.buffered next;
      apply_slot c pipe_id fp ~slot:next ~followers:b.b_followers ~writes:b.b_writes
        ~src:b.b_src ~install:true;
      drain_buffered c pipe_id fp
    | None -> ())
  | Sequenced ->
    (* Sequenced: a sparse mark can unblock any buffered slot whose
       predecessor just became handled, not only the contiguous next one.
       Ascending order keeps the effect stream identical to the legacy
       contiguous drain when marks happen to be contiguous (FIFO runs). *)
    let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) fp.buffered []) in
    let progressed = ref false in
    List.iter
      (fun slot ->
        if Hashtbl.mem fp.buffered slot && (slot = 0 || cleared fp (slot - 1)) then begin
          let b = Hashtbl.find fp.buffered slot in
          Hashtbl.remove fp.buffered slot;
          apply_slot c pipe_id fp ~slot ~followers:b.b_followers ~writes:b.b_writes
            ~src:b.b_src ~install:true;
          progressed := true
        end)
      keys;
    if !progressed then drain_buffered c pipe_id fp

and apply_slot c pipe_id fp ~slot ~followers ~writes ~src ~install =
  c.emit (Apply_writes { install; writes });
  Hashtbl.replace fp.stored slot
    { i_tx = { pipe = pipe_id; slot }; i_followers = followers; i_writes = writes };
  (match c.st.mode with
  | Legacy -> if slot > fp.cleared_upto then fp.cleared_upto <- slot
  | Sequenced -> mark_handled fp slot);
  c.emit
    (Send
       {
         dst = src;
         size = 32;
         payload = R_ack { tx = { pipe = pipe_id; slot }; sender = c.st.self };
       })

let handle_inv c ~src ~tx ~followers ~writes ~prev_val ~replay =
  let fp = get_follower_pipe c.st tx.pipe in
  if Hashtbl.mem fp.stored tx.slot || cleared fp tx.slot then
    c.emit (Send { dst = src; size = 32; payload = R_ack { tx; sender = c.st.self } })
  else begin
    (if prev_val && tx.slot - 1 > fp.cleared_upto then
       match c.st.mode with
       | Legacy -> fp.cleared_upto <- tx.slot - 1
       | Sequenced -> advance_cleared fp (tx.slot - 1));
    let pred_handled =
      match c.st.mode with
      | Legacy -> fp.cleared_upto >= tx.slot - 1
      | Sequenced -> cleared fp (tx.slot - 1)
    in
    if replay || pred_handled then begin
      apply_slot c tx.pipe fp ~slot:tx.slot ~followers ~writes ~src
        ~install:(not replay);
      drain_buffered c tx.pipe fp
    end
    else
      Hashtbl.replace fp.buffered tx.slot
        { b_followers = followers; b_writes = writes; b_src = src }
  end

(* Legacy receiver: an R-VAL for an unknown pipe is dropped, not adopted,
   and clearing is the bare arrival-order watermark [cleared_upto :=
   tx.slot].  That is only sound when each link delivers payloads in order
   (the RDMA RC assumption of §3.1): under arbitrary reordering an
   extra-val VAL overtaking the pipe's first R-INV leaves that INV
   buffered forever — the liveness hole Core_harness reproduces with
   [fifo = false] + [clear_marks:Legacy], kept as the pinned negative
   control in [zeus_cli model]. *)
let handle_val_legacy c ~tx =
  match Hashtbl.find_opt c.st.follower_pipes tx.pipe with
  | None -> ()
  | Some fp ->
    (match Hashtbl.find_opt fp.stored tx.slot with
    | Some si -> validate_stored c fp tx.slot si
    | None -> ());
    if tx.slot > fp.cleared_upto then begin
      fp.cleared_upto <- tx.slot;
      drain_buffered c tx.pipe fp
    end

(* Sequenced receiver (default): ordering is carried by the message, not
   the link.  The VAL clears exactly what its sender can vouch for — its
   own slot, plus the carried [upto] watermark (every slot <= upto had
   completed replication at send time, so a slot this node stored below it
   was already applied here, and a slot it never saw cannot involve it) —
   never the arrival-order [tx.slot] jump of the legacy path, which under
   reordering would silently clear still-open earlier slots.  A VAL for an
   unknown pipe is {e adopted}: the pipe is created and the clear marks
   recorded, so the overtaken first R-INV finds its predecessor handled
   when it lands.  Epoch fencing keeps the PR 9 invariant: adoption is
   refused for stale-incarnation stragglers (see [deliver]). *)
let handle_val c ~tx ~upto =
  let fp = get_follower_pipe c.st tx.pipe in
  (match Hashtbl.find_opt fp.stored tx.slot with
  | Some si -> validate_stored c fp tx.slot si
  | None -> ());
  advance_cleared fp upto;
  mark_handled fp tx.slot;
  drain_buffered c tx.pipe fp

(* ---------- replay after a coordinator crash (§5.1) ---------------------- *)

let finish_replay c (s : slot_state) =
  let st = c.st in
  Hashtbl.remove st.replaying s.s_tx;
  (match Hashtbl.find_opt st.follower_pipes s.s_tx.pipe with
  | Some fp -> (
    match Hashtbl.find_opt fp.stored s.s_tx.slot with
    | Some si -> validate_stored c fp s.s_tx.slot si
    | None -> ())
  | None -> ());
  (* A replayer cannot vouch for earlier slots of the dead pipe (it may
     not have stored them), so the replay VAL carries no watermark: it
     clears exactly its own slot. *)
  let epoch = c.env.epoch in
  List.iter
    (fun f ->
      c.emit
        (Send { dst = f; size = 32; payload = R_val { tx = s.s_tx; upto = -1; epoch } }))
    s.s_followers

let start_replay c (si : stored_inv) =
  let st = c.st in
  if not (Hashtbl.mem st.replaying si.i_tx) then begin
    c.emit (Telemetry (Count C_replays));
    let others = List.filter (fun f -> f <> st.self && live c f) si.i_followers in
    let s =
      {
        s_tx = si.i_tx;
        s_writes = si.i_writes;
        s_followers = others;
        s_missing = others;
        s_extra_vals = [];
        s_has_durable = false;
        s_span = -1;
      }
    in
    if others = [] then finish_replay c s
    else begin
      Hashtbl.replace st.replaying si.i_tx s;
      let e = c.env.epoch in
      let size = writes_size si.i_writes in
      List.iter
        (fun f ->
          c.emit
            (Send
               {
                 dst = f;
                 size;
                 payload =
                   R_inv
                     {
                       tx = si.i_tx;
                       epoch = e;
                       followers = si.i_followers;
                       writes = si.i_writes;
                       prev_val = false;
                       replay = true;
                     };
               }))
        others
    end
  end

let handle_ack c ~tx ~sender =
  let st = c.st in
  if tx.pipe.node = st.self then begin
    match Hashtbl.find_opt st.pipelines tx.pipe.thread with
    | None -> ()
    | Some pipe -> (
      match Hashtbl.find_opt pipe.slots tx.slot with
      | None -> ()
      | Some s ->
        s.s_missing <- List.filter (fun f -> f <> sender) s.s_missing;
        if s.s_missing = [] then finish_slot c pipe s)
  end
  else begin
    match Hashtbl.find_opt st.replaying tx with
    | None -> ()
    | Some s ->
      s.s_missing <- List.filter (fun f -> f <> sender) s.s_missing;
      if s.s_missing = [] then finish_replay c s
  end

(* ---------- membership --------------------------------------------------- *)

let view_change c ~view_epoch ~(vlive : bool array) =
  let st = c.st in
  let died = ref [] and revived = ref [] in
  Array.iteri
    (fun i was ->
      if was && not vlive.(i) then died := i :: !died
      else if (not was) && vlive.(i) then revived := i :: !revived)
    st.prev_live;
  st.prev_live <- Array.copy vlive;
  List.iter
    (fun node ->
      let stale =
        Hashtbl.fold
          (fun (pid : pipe_id) _ acc -> if pid.node = node then pid :: acc else acc)
          st.follower_pipes []
      in
      List.iter (Hashtbl.remove st.follower_pipes) stale)
    !revived;
  if !died <> [] then begin
    let alive n = vlive.(n) in
    Hashtbl.iter
      (fun _ pipe ->
        let slots = Hashtbl.fold (fun _ s acc -> s :: acc) pipe.slots [] in
        List.iter
          (fun s ->
            s.s_missing <- List.filter alive s.s_missing;
            if s.s_missing = [] then finish_slot c pipe s)
          slots)
      st.pipelines;
    let replays = Hashtbl.fold (fun _ s acc -> s :: acc) st.replaying [] in
    List.iter
      (fun s ->
        s.s_missing <- List.filter alive s.s_missing;
        if s.s_missing = [] then finish_replay c s)
      replays;
    st.recovering_epoch <- Some view_epoch;
    Hashtbl.iter
      (fun (pid : pipe_id) fp ->
        if not (alive pid.node) then begin
          Hashtbl.reset fp.buffered;
          Hashtbl.iter (fun _ si -> start_replay c si) fp.stored
        end)
      st.follower_pipes;
    check_drained c
  end;
  (* Re-drive open slots / replays at the new epoch (stale-only fencing on
     the receive side would otherwise lose one fenced R-INV for good). *)
  let e = view_epoch in
  Hashtbl.iter
    (fun _ pipe ->
      Hashtbl.iter
        (fun _ (s : slot_state) ->
          let size = writes_size s.s_writes in
          List.iter
            (fun f ->
              if vlive.(f) then begin
                let prev_val =
                  match Hashtbl.find_opt pipe.slots (s.s_tx.slot - 1) with
                  | None -> true
                  | Some ps ->
                    if not (List.mem f ps.s_followers || List.mem f ps.s_extra_vals)
                    then ps.s_extra_vals <- f :: ps.s_extra_vals;
                    false
                in
                c.emit
                  (Send
                     {
                       dst = f;
                       size;
                       payload =
                         R_inv
                           {
                             tx = s.s_tx;
                             epoch = e;
                             followers = s.s_followers;
                             writes = s.s_writes;
                             prev_val;
                             replay = false;
                           };
                     })
              end)
            s.s_missing)
        pipe.slots)
    st.pipelines;
  Hashtbl.iter
    (fun _ (s : slot_state) ->
      let size = writes_size s.s_writes in
      List.iter
        (fun f ->
          if vlive.(f) then
            c.emit
              (Send
                 {
                   dst = f;
                   size;
                   payload =
                     R_inv
                       {
                         tx = s.s_tx;
                         epoch = e;
                         followers = s.s_followers;
                         writes = s.s_writes;
                         prev_val = false;
                         replay = true;
                       };
                 }))
        s.s_missing)
    st.replaying;
  c.emit Flush

let reset st =
  Hashtbl.reset st.pipelines;
  Hashtbl.reset st.follower_pipes;
  Hashtbl.reset st.replaying;
  st.recovering_epoch <- None

(* ---------- dispatch ------------------------------------------------------ *)

let deliver c ~src payload =
  match payload with
  | R_inv { tx; epoch = e; followers; writes; prev_val; replay } ->
    (* Fence stale epochs only; accept future epochs from live peers (they
       installed the next view first) but keep fencing senders we still see
       as dead — their rejoin wipe has not reached us yet. *)
    if e = c.env.epoch || (e > c.env.epoch && live c src) then
      handle_inv c ~src ~tx ~followers ~writes ~prev_val ~replay
  | R_ack { tx; sender } -> handle_ack c ~tx ~sender
  | R_val { tx; upto; epoch = e } -> (
    match c.st.mode with
    | Legacy -> handle_val_legacy c ~tx
    | Sequenced ->
      (* A VAL for a pipe we already track is always safe to process: its
         claims (slot committed, slots <= upto committed) are monotone
         facts, valid across view changes.  A VAL for an {e unknown} pipe
         is adopted only under the R-INV fence — current epoch, or a
         future epoch from a live peer: a stale-epoch straggler may
         predate a fence-and-reset of this pipe's incarnation, and a
         fresh incarnation must not resurrect pipe state (PR 9). *)
      if
        Hashtbl.mem c.st.follower_pipes tx.pipe
        || e = c.env.epoch
        || (e > c.env.epoch && live c src)
      then handle_val c ~tx ~upto)
  | _ -> ()

let no_env = { epoch = 0; live = [||]; trace_on = false }

let env_of = function
  | Deliver { env; _ } | Api_commit { env; _ } | View_change { env; _ } -> env
  | Reset -> no_env

let handle st input =
  let acc = ref [] in
  let emit e = acc := e :: !acc in
  let c = { st; env = env_of input; emit } in
  (match input with
  | Deliver { src; payload; _ } -> deliver c ~src payload
  | Api_commit { thread; updates; replica_sets; has_durable; _ } ->
    api_commit c ~thread ~updates ~replica_sets ~has_durable
  | View_change { view_epoch; live; _ } -> view_change c ~view_epoch ~vlive:live
  | Reset -> reset st);
  (st, List.rev !acc)

(* ---------- deep copy + canonical fingerprint (model checking) ----------- *)

let copy_slot (s : slot_state) =
  {
    s_tx = s.s_tx;
    s_writes = s.s_writes;
    s_followers = s.s_followers;
    s_missing = s.s_missing;
    s_extra_vals = s.s_extra_vals;
    s_has_durable = s.s_has_durable;
    s_span = s.s_span;
  }

let copy st =
  let pipelines = Hashtbl.create 16 in
  Hashtbl.iter
    (fun thread p ->
      let slots = Hashtbl.create (Hashtbl.length p.slots * 2 + 1) in
      Hashtbl.iter (fun k s -> Hashtbl.replace slots k (copy_slot s)) p.slots;
      Hashtbl.replace pipelines thread
        { next_slot = p.next_slot; done_upto = p.done_upto; slots })
    st.pipelines;
  let follower_pipes = Hashtbl.create 64 in
  Hashtbl.iter
    (fun pid fp ->
      Hashtbl.replace follower_pipes pid
        {
          cleared_upto = fp.cleared_upto;
          marks = Hashtbl.copy fp.marks;
          stored = Hashtbl.copy fp.stored;
          buffered = Hashtbl.copy fp.buffered;
        })
    st.follower_pipes;
  let replaying = Hashtbl.create 16 in
  Hashtbl.iter (fun k s -> Hashtbl.replace replaying k (copy_slot s)) st.replaying;
  {
    self = st.self;
    mode = st.mode;
    pipelines;
    follower_pipes;
    replaying;
    prev_live = Array.copy st.prev_live;
    recovering_epoch = st.recovering_epoch;
    token_seq = st.token_seq;
  }

let pp_writes ppf writes =
  List.iter
    (fun (u : Txn.update) ->
      Format.fprintf ppf "(%d v%d %s%s)" u.Txn.key u.Txn.version
        (Bytes.to_string u.Txn.data)
        (if u.Txn.freed then " freed" else ""))
    writes

let pp_slot ppf (s : slot_state) =
  Format.fprintf ppf "{%a w=%a f=[%s] m=[%s] xv=[%s] d=%b}" Messages.pp_tx s.s_tx
    pp_writes s.s_writes
    (String.concat ";" (List.map string_of_int s.s_followers))
    (String.concat ";" (List.map string_of_int (List.sort compare s.s_missing)))
    (String.concat ";" (List.map string_of_int (List.sort compare s.s_extra_vals)))
    s.s_has_durable

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let fingerprint st =
  let b = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer b in
  Format.fprintf ppf "n%d rec=%s pl=[%s]@," st.self
    (match st.recovering_epoch with Some e -> string_of_int e | None -> "-")
    (String.concat ";"
       (Array.to_list (Array.map (fun l -> if l then "1" else "0") st.prev_live)));
  List.iter
    (fun (thread, p) ->
      Format.fprintf ppf "P%d next=%d done=%d@," thread p.next_slot p.done_upto;
      List.iter
        (fun (slot, s) -> Format.fprintf ppf " s%d %a@," slot pp_slot s)
        (sorted_bindings p.slots))
    (sorted_bindings st.pipelines);
  List.iter
    (fun ((pid : pipe_id), fp) ->
      Format.fprintf ppf "F n%d.t%d cleared=%d marks=[%s]@," pid.node pid.thread
        fp.cleared_upto
        (String.concat ";"
           (List.map string_of_int
              (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) fp.marks []))));
      List.iter
        (fun (slot, (si : stored_inv)) ->
          Format.fprintf ppf " i%d f=[%s] w=%a@," slot
            (String.concat ";" (List.map string_of_int si.i_followers))
            pp_writes si.i_writes)
        (sorted_bindings fp.stored);
      List.iter
        (fun (slot, (bi : buffered_inv)) ->
          Format.fprintf ppf " b%d src=n%d f=[%s] w=%a@," slot bi.b_src
            (String.concat ";" (List.map string_of_int bi.b_followers))
            pp_writes bi.b_writes)
        (sorted_bindings fp.buffered))
    (sorted_bindings st.follower_pipes);
  List.iter
    (fun ((tx : tx_id), s) ->
      ignore tx;
      Format.fprintf ppf "R %a@," pp_slot s)
    (sorted_bindings st.replaying);
  Format.pp_print_flush ppf ();
  Buffer.contents b
