(** Sans-I/O core of the reliable commit protocol (§5).

    A pure state machine mirroring {!Zeus_ownership.Core}: {!handle}
    consumes one {!input} and returns the ordered {!eff} list its runtime
    must execute.  Store access is inverted in both directions: reads
    arrive pre-sampled inside the input (the [replica_sets] of an
    {!Api_commit}), writes leave as three coarse store transforms
    ({!Validate_local}, {!Apply_writes}, {!Validate_stored}) whose
    per-update loops the interpreter runs verbatim against its store —
    the real {!Zeus_store.Table} in the simulator, a model store under
    the checker.

    Contract for interpreters: sample {!env} before calling [handle] and
    execute the returned effects in order, immediately.  Unlike the
    ownership core there are no timers and no per-key facts — commit
    state is entirely protocol-side. *)

open Zeus_store

(** Runtime environment sampled once per input. *)
type env = { epoch : int; live : bool array; trace_on : bool }

type counter = C_started | C_durable | C_replays

type telemetry =
  | Count of counter
  | Span_start of
      { token : int; thread : int; slot : int; followers : int; writes : int }
  | Span_finish of int

type eff =
  | Send of { dst : Types.node_id; size : int; payload : Zeus_net.Msg.payload }
  | Flush
  | Validate_local of { writes : Txn.update list }
      (** coordinator durable: per update, release the [pending_rc]
          pipelining guard; on version match, freed objects are removed
          (firing the runtime's [on_freed]) and unchanged ones
          revalidate *)
  | Apply_writes of { install : bool; writes : Txn.update list }
      (** follower applies an R-INV version-monotonically; [install]
          unknown objects only outside replay *)
  | Validate_stored of { writes : Txn.update list }
      (** follower R-VAL: version-equal objects revalidate or complete
          their free *)
  | Durable of { tx : Messages.tx_id }
      (** the [on_durable] continuation registered for this slot fires *)
  | Drained of { epoch : int }
      (** every dead coordinator's stored R-INVs are drained
          ([recovery_drained]) *)
  | Telemetry of telemetry

type input =
  | Deliver of { src : Types.node_id; payload : Zeus_net.Msg.payload; env : env }
  | Api_commit of {
      thread : int;
      updates : Txn.update list;
      replica_sets : Types.node_id list list;
          (** per update, in order: [Replicas.all] of the object's
              owner-held [o_replicas]; [[]] when the object or its
              replica set is absent *)
      has_durable : bool;
      env : env;
    }
  | View_change of { view_epoch : int; live : bool array; env : env }
  | Reset

type state

(** How a follower interprets R-VAL clear marks.

    [Sequenced] (default): ordering is carried by the messages themselves —
    R-VALs clear exactly the slots their sender can vouch for (their own
    slot plus the carried [upto] watermark), a VAL reaching a node with no
    state for its pipe is adopted (creating the pipe) under the same epoch
    fence as R-INVs, and buffered R-INVs drain on explicit slot marks.
    The protocol is live under arbitrary per-link reordering
    ([Zeus_net.Transport.unordered], multipath fabrics).

    [Legacy]: the historical arrival-order discipline — a VAL jumps the
    watermark to its own slot and unknown-pipe VALs are dropped — which is
    only live when each link delivers in order (the RDMA RC assumption of
    §3.1).  Kept as a compat knob so the model checker can pin the known
    VAL-overtakes-first-INV deadlock as a negative control. *)
type clear_marks = Legacy | Sequenced

val create : ?clear_marks:clear_marks -> self:Types.node_id -> nodes:int -> unit -> state
val handle : state -> input -> state * eff list

val clear_marks_mode : state -> clear_marks

val peek_slot : state -> thread:int -> int
(** The slot the next {!Api_commit} on [thread] will occupy — interpreters
    register the caller's [on_durable] continuation under
    [(thread, slot)] before feeding the input. *)

val handles_payload : Zeus_net.Msg.payload -> bool

val inflight : state -> int
(** Coordinator-side open slots (all pipelines). *)

val stored_invs : state -> int
(** Follower-side stored R-INVs awaiting validation. *)

val buffered_invs : state -> int
(** Follower-side R-INVs buffered behind an unhandled predecessor slot —
    permanently nonzero at quiescence means the reordering deadlock. *)

val replaying_count : state -> int
(** Dead-coordinator slots this node is currently re-driving. *)

val recovering_epoch : state -> int option
(** The epoch whose drain is still outstanding, if any ({!Drained} has not
    fired yet). *)

val copy : state -> state
(** Deep copy, for branching exploration. *)

val fingerprint : state -> string
(** Canonical dump: hashtables in sorted order, span tokens reduced to
    presence bits — states differing only in allocation history collapse
    together. *)
