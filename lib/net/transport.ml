module Engine = Zeus_sim.Engine
module Metrics = Zeus_telemetry.Metrics
module Trace = Zeus_telemetry.Trace
module Hub = Zeus_telemetry.Hub

type config = {
  rto_us : float;
  rto_backoff : float;
  rto_max_us : float;
  max_retries : int;
  dedup : bool;
  batching : bool;
  flush_window_us : float;
  delayed_ack_us : float;
  max_batch : int;
  max_ooo : int;
  ordered : bool;
}

let default_config =
  {
    rto_us = 40.0;
    rto_backoff = 2.0;
    rto_max_us = 2_000.0;
    max_retries = 50;
    dedup = true;
    batching = true;
    flush_window_us = 2.0;
    delayed_ack_us = 8.0;
    max_batch = 32;
    max_ooo = 512;
    ordered = true;
  }

let unbatched config = { config with batching = false }
let unordered config = { config with ordered = false }

(* Retransmission timeout after [retries] consecutive retransmissions with
   no window progress: capped exponential backoff, so a partitioned or dead
   peer is probed at a collapsing rate instead of hammered at 1/rto forever.
   The jitter is a pure avalanche hash of the flow identity and retry count
   — deterministic (same seed, same timers) yet de-synchronizing peer flows
   that backed off at the same instant. *)
let backoff_jitter ~src ~dst ~retries =
  let h =
    (src * 0x9e3779b1) lxor (dst * 0x85ebca6b) lxor ((retries + 1) * 0xc2b2ae35)
  in
  float_of_int (h land 0xffff) /. 65536.0

let rto_after config ~src ~dst ~retries =
  let raw = config.rto_us *. (config.rto_backoff ** float_of_int retries) in
  let capped = Float.min raw config.rto_max_us in
  capped *. (1.0 +. (0.1 *. backoff_jitter ~src ~dst ~retries))

(* Wire framing.  A [Batch] replaces N [Data]+[Ack] pairs: its size is the
   sum of its payloads plus one header, and it piggybacks the cumulative
   ack of the reverse-direction flow.  [inc] is the sender incarnation of
   the flow: it is bumped whenever a flow is reset (endpoint crash, or the
   sender giving up on an undeliverable window), so frames and acks of a
   previous incarnation can never be confused with the fresh stream that
   restarts at sequence 0. *)
let batch_header_bytes = 24
let ack_bytes = 16

type Msg.payload +=
  | Data of { seq : int; inc : int; inner : Msg.payload; size : int }
  | Ack of { seq : int; inc : int }
  | Batch of {
      inc : int;
      first_seq : int;
      items : (Msg.payload * int) list;
      ack : int;  (** cumulative ack for the reverse flow *)
      ack_inc : int;
    }
  | Ack_cum of { upto : int; inc : int }
  | Ring_hole  (** filler for empty send-ring slots; never hits the wire *)

let hole : Msg.payload * int = (Ring_hole, 0)

(* Legacy (unbatched) per-message in-flight record. *)
type pending = {
  p_dst : Msg.node_id;
  p_payload : Msg.payload;
  p_size : int;
  mutable p_retries : int;
  mutable p_timer : Engine.event_id option;
}

(* One directed flow src->dst.  The record holds both the sender-side state
   (living at [src]) and the receiver-side state (living at [dst]); in the
   simulator they share a cell, on real hardware they would be split. *)
type flow = {
  f_src : Msg.node_id;
  f_dst : Msg.node_id;
  (* ---- sender side (at src) ---- *)
  mutable tx_inc : int;
  mutable next_seq : int;
  mutable acked_upto : int;  (* cumulative: all seqs <= this are acked *)
  mutable flushed_upto : int;  (* all seqs <= this have hit the fabric once *)
  (* Batched: the unacked window lives in a power-of-two ring indexed by
     [seq land (cap - 1)] — O(1) store per send, nothing to delete on ack
     (advancing [acked_upto] abandons the slots), and frame assembly reuses
     the stored (payload, size) pairs instead of re-packing a hashtable.
     [ring_enq] holds enqueue timestamps for the trace's batch residency. *)
  mutable ring : (Msg.payload * int) array;
  mutable ring_enq : float array;
  inflight : (int, pending) Hashtbl.t;  (* legacy: per-message records *)
  mutable queued : bool;  (* on the source node's dirty list *)
  mutable rto_ev : Engine.event_id option;
  mutable rto_progress_at : float;  (* last time the window advanced *)
  mutable tx_retries : int;
  (* ---- receiver side (at dst) ---- *)
  mutable rx_inc : int;  (* sender incarnation currently accepted *)
  mutable watermark : int;  (* all seqs <= this delivered (cumulative) *)
  ooo : (int, Msg.payload * int) Hashtbl.t;
      (* batched: out-of-order payloads held for in-order delivery *)
  seen_ahead : (int, unit) Hashtbl.t;
      (* legacy: seqs delivered above the watermark (bounded by the
         in-flight span instead of the old ever-growing [seen] table) *)
  mutable rx_acked_upto : int;  (* highest watermark ever acked back *)
  mutable ack_owed : bool;
  mutable dack_ev : Engine.event_id option;
}

type t = {
  fabric : Fabric.t;
  config : config;
  handlers : (src:Msg.node_id -> Msg.payload -> unit) option array;
  flows : flow array array;  (* flows.(src).(dst) *)
  (* One flush event per NODE, serving every dirty flow it sources: a
     protocol burst to K peers costs one engine event, not K. *)
  dirty : flow list ref array;
  node_flush_ev : Engine.event_id option array;
  (* Typed metric handles (registered once in [create]; a typo here is a
     compile error, and the hot path touches a resolved ref directly). *)
  c_retransmissions : Metrics.Counter.h;
  c_backoff : Metrics.Counter.h;
  c_frames : Metrics.Counter.h;
  c_payloads : Metrics.Counter.h;
  c_acks_piggybacked : Metrics.Counter.h;
  c_acks_standalone : Metrics.Counter.h;
  h_occupancy : Metrics.Histogram.h;
  trace : Trace.t;
}

type stats = {
  frames : int;
  payloads : int;
  retransmitted : int;
  piggybacked_acks : int;
  standalone_acks : int;
  mean_occupancy : float;
  max_occupancy : float;
}

let fresh_flow ~src ~dst =
  {
    f_src = src;
    f_dst = dst;
    tx_inc = 0;
    next_seq = 0;
    acked_upto = -1;
    flushed_upto = -1;
    ring = Array.make 16 hole;
    ring_enq = Array.make 16 0.0;
    inflight = Hashtbl.create 16;
    queued = false;
    rto_ev = None;
    rto_progress_at = 0.0;
    tx_retries = 0;
    rx_inc = 0;
    watermark = -1;
    ooo = Hashtbl.create 16;
    seen_ahead = Hashtbl.create 16;
    rx_acked_upto = -1;
    ack_owed = false;
    dack_ev = None;
  }

let fabric t = t.fabric
let engine t = Fabric.engine t.fabric
let retransmissions t = Metrics.Counter.get t.c_retransmissions
let backoffs t = Metrics.Counter.get t.c_backoff

let flow_rto t fl ~retries =
  rto_after t.config ~src:fl.f_src ~dst:fl.f_dst ~retries

let stats t =
  {
    frames = Metrics.Counter.get t.c_frames;
    payloads = Metrics.Counter.get t.c_payloads;
    retransmitted = Metrics.Counter.get t.c_retransmissions;
    piggybacked_acks = Metrics.Counter.get t.c_acks_piggybacked;
    standalone_acks = Metrics.Counter.get t.c_acks_standalone;
    mean_occupancy = Metrics.Histogram.mean t.h_occupancy;
    max_occupancy =
      (if Metrics.Histogram.count t.h_occupancy = 0 then 0.0
       else Metrics.Histogram.max t.h_occupancy);
  }

let set_handler t node fn = t.handlers.(node) <- Some fn

let deliver t ~dst ~src inner =
  match t.handlers.(dst) with Some fn -> fn ~src inner | None -> ()

(* Unacked seqs currently held by the batched sender. *)
let tx_window fl = fl.next_seq - 1 - fl.acked_upto

(* Grow the ring to hold the current window.  Entries keep their slot
   [seq land (cap - 1)], so doubling re-places every live seq. *)
let ring_grow fl =
  let cap = Array.length fl.ring in
  if tx_window fl > cap then begin
    let ncap = 2 * cap in
    let nring = Array.make ncap hole in
    let nenq = Array.make ncap 0.0 in
    for s = fl.acked_upto + 1 to fl.next_seq - 1 do
      nring.(s land (ncap - 1)) <- fl.ring.(s land (cap - 1));
      nenq.(s land (ncap - 1)) <- fl.ring_enq.(s land (cap - 1))
    done;
    fl.ring <- nring;
    fl.ring_enq <- nenq
  end

(* Introspection for the property tests: bounded-state invariants.  The
   ring window only exists in batched mode — the legacy path tracks
   in-flight messages individually and never advances [acked_upto]. *)
let tx_backlog t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc fl ->
          acc
          + (if t.config.batching then tx_window fl else 0)
          + Hashtbl.length fl.inflight)
        acc row)
    0 t.flows

let rx_backlog t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc fl -> acc + Hashtbl.length fl.ooo + Hashtbl.length fl.seen_ahead)
        acc row)
    0 t.flows

(* ---------- timer plumbing ------------------------------------------------ *)
(* Every timer field is nulled as the first action of its callback, so a
   later [Engine.cancel] can never double-cancel an already-fired event. *)

let cancel_node_flush t node =
  match t.node_flush_ev.(node) with
  | Some ev ->
    Engine.cancel (engine t) ev;
    t.node_flush_ev.(node) <- None
  | None -> ()

let cancel_rto t fl =
  match fl.rto_ev with
  | Some ev ->
    Engine.cancel (engine t) ev;
    fl.rto_ev <- None
  | None -> ()

let cancel_dack t fl =
  match fl.dack_ev with
  | Some ev ->
    Engine.cancel (engine t) ev;
    fl.dack_ev <- None
  | None -> ()

let cancel_pending_timer t p =
  match p.p_timer with
  | Some ev ->
    Engine.cancel (engine t) ev;
    p.p_timer <- None
  | None -> ()

(* ---------- flow resets (crash, recover, sender give-up) ----------------- *)

(* Drop the sender side of a flow and start a fresh incarnation: the next
   message goes out as seq 0 of [tx_inc + 1], which the receiver adopts by
   resetting its window, so the new stream is never mistaken for duplicates
   of the old one. *)
let reset_tx t fl =
  cancel_rto t fl;
  Hashtbl.iter (fun _ p -> cancel_pending_timer t p) fl.inflight;
  Hashtbl.reset fl.inflight;
  Array.fill fl.ring 0 (Array.length fl.ring) hole;
  fl.tx_inc <- fl.tx_inc + 1;
  fl.next_seq <- 0;
  fl.acked_upto <- -1;
  fl.flushed_upto <- -1;
  fl.tx_retries <- 0

let clear_rx_window t fl =
  cancel_dack t fl;
  Hashtbl.reset fl.ooo;
  Hashtbl.reset fl.seen_ahead;
  fl.watermark <- -1;
  fl.rx_acked_upto <- -1;
  fl.ack_owed <- false

(* Receiver-side reset at a crash: also bump the accepted incarnation so
   frames of the dead incarnation still in flight are ignored rather than
   swallowing (or being swallowed by) the rejoined node's fresh seq 0.
   Crash resets bump both ends of a flow by one, so tx_inc and rx_inc stay
   in step; a sender give-up bumps tx_inc alone, which the receiver adopts
   on the first frame of the new incarnation ([inc > rx_inc]). *)
let reset_rx t fl =
  clear_rx_window t fl;
  fl.rx_inc <- fl.rx_inc + 1

let adopt_rx t fl inc =
  clear_rx_window t fl;
  fl.rx_inc <- inc

(* ---------- batched sender ------------------------------------------------ *)

(* Pack seqs [lo..hi] of [fl] into frames of at most [max_batch] payloads.
   Each frame piggybacks the freshest cumulative ack of the reverse flow,
   which discharges any owed standalone ack. *)
let send_window ?(retx = false) t fl ~lo ~hi =
  let rev = t.flows.(fl.f_dst).(fl.f_src) in
  let rec go lo =
    if lo <= hi then begin
      let n = min t.config.max_batch (hi - lo + 1) in
      let mask = Array.length fl.ring - 1 in
      (* Assemble the frame straight from the ring, back to front, reusing
         the stored (payload, size) pairs: one cons per payload, no
         intermediate list, no lookups. *)
      let items = ref [] in
      let size = ref batch_header_bytes in
      for s = lo + n - 1 downto lo do
        let (_, sz) as item = fl.ring.(s land mask) in
        size := !size + sz;
        items := item :: !items
      done;
      let items = !items in
      let size = !size in
      let ack = rev.watermark in
      if rev.ack_owed then begin
        rev.ack_owed <- false;
        Metrics.Counter.incr t.c_acks_piggybacked;
        cancel_dack t rev
      end;
      if ack > rev.rx_acked_upto then rev.rx_acked_upto <- ack;
      Metrics.Counter.incr t.c_frames;
      Metrics.Counter.incr ~by:n t.c_payloads;
      Metrics.Histogram.observe t.h_occupancy (float_of_int n);
      if Trace.enabled t.trace then begin
        (* Batch residency: oldest enqueue on this flow to frame send.
           pid = sending node, tid = destination (one track per flow). *)
        let stop = Engine.now (engine t) in
        let start = ref stop in
        for s = lo to lo + n - 1 do
          let enq = fl.ring_enq.(s land mask) in
          if enq < !start then start := enq
        done;
        let start = !start in
        Trace.complete t.trace ~cat:"transport" ~pid:fl.f_src ~tid:fl.f_dst
          ~start ~stop
          ~args:
            [
              ("dst", string_of_int fl.f_dst);
              ("payloads", string_of_int n);
              ("bytes", string_of_int size);
              ("first_seq", string_of_int lo);
              ("retx", if retx then "true" else "false");
            ]
          "batch"
      end;
      Fabric.send t.fabric ~src:fl.f_src ~dst:fl.f_dst ~size
        (Batch { inc = fl.tx_inc; first_seq = lo; items; ack; ack_inc = rev.rx_inc });
      go (lo + n)
    end
  in
  go lo

let rec on_rto t fl =
  fl.rto_ev <- None;
  if tx_window fl > 0 then begin
    let now = Engine.now (engine t) in
    let deadline = fl.rto_progress_at +. flow_rto t fl ~retries:fl.tx_retries in
    if deadline > now +. 1e-9 then
      (* The window advanced since this timer was armed: push the timer out
         to the oldest-unacked deadline instead of retransmitting. *)
      fl.rto_ev <-
        Some (Engine.schedule (engine t) ~after:(deadline -. now) (fun () -> on_rto t fl))
    else if
      not (Fabric.is_alive t.fabric fl.f_src && Fabric.is_alive t.fabric fl.f_dst)
    then
      (* A dead endpoint is the membership service's problem, not ours. *)
      reset_tx t fl
    else if fl.tx_retries >= t.config.max_retries then reset_tx t fl
    else begin
      (* Go-back-N: resend the whole unacked window as one burst (any
         not-yet-flushed tail included — it is leaving now anyway). *)
      fl.tx_retries <- fl.tx_retries + 1;
      let lo = fl.acked_upto + 1 and hi = fl.next_seq - 1 in
      Metrics.Counter.incr ~by:(hi - lo + 1) t.c_retransmissions;
      Metrics.Counter.incr t.c_backoff;
      send_window ~retx:true t fl ~lo ~hi;
      fl.flushed_upto <- hi;
      fl.rto_progress_at <- now;
      fl.rto_ev <-
        Some
          (Engine.schedule (engine t)
             ~after:(flow_rto t fl ~retries:fl.tx_retries)
             (fun () -> on_rto t fl))
    end
  end

let flush_flow t fl =
  let lo = fl.flushed_upto + 1 and hi = fl.next_seq - 1 in
  if lo <= hi then begin
    send_window t fl ~lo ~hi;
    fl.flushed_upto <- hi;
    if fl.rto_ev = None then begin
      fl.rto_progress_at <- Engine.now (engine t);
      fl.rto_ev <-
        Some
          (Engine.schedule (engine t)
             ~after:(flow_rto t fl ~retries:fl.tx_retries)
             (fun () -> on_rto t fl))
    end
  end

let flush_node t node =
  let flows = !(t.dirty.(node)) in
  t.dirty.(node) := [];
  List.iter
    (fun fl ->
      fl.queued <- false;
      flush_flow t fl)
    flows

let schedule_node_flush t node ~after =
  cancel_node_flush t node;
  t.node_flush_ev.(node) <-
    Some
      (Engine.schedule (engine t) ~after (fun () ->
           t.node_flush_ev.(node) <- None;
           flush_node t node))

let send_batched t fl ~size payload =
  let seq = fl.next_seq in
  fl.next_seq <- seq + 1;
  ring_grow fl;
  let i = seq land (Array.length fl.ring - 1) in
  fl.ring.(i) <- (payload, size);
  fl.ring_enq.(i) <- Engine.now (engine t);
  if not fl.queued then begin
    fl.queued <- true;
    t.dirty.(fl.f_src) := fl :: !(t.dirty.(fl.f_src));
    if t.node_flush_ev.(fl.f_src) = None then
      schedule_node_flush t fl.f_src ~after:t.config.flush_window_us
  end

(* Doorbell: flush [node]'s unflushed frames at the end of the current
   instant instead of waiting out the flush window.  Everything enqueued at
   this timestamp (e.g. all sends of one protocol-handler activation) still
   coalesces, but no latency is added.  A no-op with a zero window, where
   every send already behaves this way. *)
let flush t node =
  if t.config.batching && t.config.flush_window_us > 0.0 then
    match t.node_flush_ev.(node) with
    | Some _ -> schedule_node_flush t node ~after:0.0
    | None -> ()

let apply_cum_ack t fl ~upto ~inc =
  if inc = fl.tx_inc && upto > fl.acked_upto then begin
    (* Advancing [acked_upto] abandons the acked ring slots in place; they
       are overwritten when their index comes around again. *)
    fl.acked_upto <- upto;
    if fl.flushed_upto < upto then fl.flushed_upto <- upto;
    fl.tx_retries <- 0;
    fl.rto_progress_at <- Engine.now (engine t);
    if tx_window fl = 0 then cancel_rto t fl
  end

(* ---------- batched receiver ---------------------------------------------- *)

let rec drain_ooo t fl =
  match Hashtbl.find_opt fl.ooo (fl.watermark + 1) with
  | Some (payload, _) ->
    Hashtbl.remove fl.ooo (fl.watermark + 1);
    fl.watermark <- fl.watermark + 1;
    deliver t ~dst:fl.f_dst ~src:fl.f_src payload;
    drain_ooo t fl
  | None -> ()

let schedule_dack t fl =
  if fl.dack_ev = None then
    fl.dack_ev <-
      Some
        (Engine.schedule (engine t) ~after:t.config.delayed_ack_us (fun () ->
             fl.dack_ev <- None;
             if fl.ack_owed && Fabric.is_alive t.fabric fl.f_dst then begin
               fl.ack_owed <- false;
               if fl.watermark > fl.rx_acked_upto then fl.rx_acked_upto <- fl.watermark;
               Metrics.Counter.incr t.c_acks_standalone;
               Fabric.send t.fabric ~src:fl.f_dst ~dst:fl.f_src ~size:ack_bytes
                 (Ack_cum { upto = fl.watermark; inc = fl.rx_inc })
             end))

let handle_batch t fl ~inc ~first_seq ~items =
  if inc >= fl.rx_inc then begin
    if inc > fl.rx_inc then adopt_rx t fl inc;
    List.iteri
      (fun i ((payload, _) as item) ->
        let seq = first_seq + i in
        if
          seq <= fl.watermark || Hashtbl.mem fl.ooo seq
          || Hashtbl.mem fl.seen_ahead seq
        then begin
          (* Duplicate (a retransmitted window overlapping delivery). *)
          if not t.config.dedup then deliver t ~dst:fl.f_dst ~src:fl.f_src payload
        end
        else if seq = fl.watermark + 1 then begin
          fl.watermark <- seq;
          deliver t ~dst:fl.f_dst ~src:fl.f_src payload;
          if t.config.ordered then drain_ooo t fl
          else
            while Hashtbl.mem fl.seen_ahead (fl.watermark + 1) do
              Hashtbl.remove fl.seen_ahead (fl.watermark + 1);
              fl.watermark <- fl.watermark + 1
            done
        end
        else if t.config.ordered then begin
          if Hashtbl.length fl.ooo < t.config.max_ooo then
            (* Ahead of the watermark: hold for in-order delivery; go-back-N
               retransmission fills the gap.  Beyond [max_ooo] we drop and
               rely on the retransmitted window instead — receive-side state
               stays bounded no matter what the fault injection does. *)
            Hashtbl.replace fl.ooo seq item
        end
        else begin
          (* Unordered mode: deliver ahead of the watermark immediately and
             remember the seq for dedup (bounded by the in-flight span, as
             in the legacy path); the cumulative ack still only covers the
             contiguous prefix, so go-back-N refills the gap and the
             [seen_ahead] check above swallows the resulting overlap. *)
          Hashtbl.replace fl.seen_ahead seq ();
          deliver t ~dst:fl.f_dst ~src:fl.f_src payload
        end)
      items;
    (* Any data frame earns an ack: fresh data to advance the cumulative
       ack, and a fully-duplicate frame means our previous ack was lost. *)
    fl.ack_owed <- true;
    schedule_dack t fl
  end

(* ---------- legacy (unbatched) path --------------------------------------- *)
(* Byte-for-byte the pre-batching behaviour: one Data frame per message,
   one 16-byte Ack per Data frame received, one retransmit timer per
   in-flight message — except that receive-side dedup now uses the
   watermark + [seen_ahead] set (bounded by the in-flight span) instead of
   an ever-growing table, and flow resets use incarnations. *)

let rec arm_retransmit t fl seq p =
  p.p_timer <-
    Some
      (Engine.schedule (engine t)
         ~after:(flow_rto t fl ~retries:p.p_retries)
         (fun () ->
           p.p_timer <- None;
           if Hashtbl.mem fl.inflight seq then begin
             if
               p.p_retries < t.config.max_retries
               && Fabric.is_alive t.fabric fl.f_src
               && Fabric.is_alive t.fabric fl.f_dst
             then begin
               p.p_retries <- p.p_retries + 1;
               Metrics.Counter.incr t.c_retransmissions;
               Metrics.Counter.incr t.c_backoff;
               Fabric.send t.fabric ~src:fl.f_src ~dst:fl.f_dst ~size:p.p_size
                 (Data { seq; inc = fl.tx_inc; inner = p.p_payload; size = p.p_size });
               arm_retransmit t fl seq p
             end
             else Hashtbl.remove fl.inflight seq
           end))

let send_legacy t fl ~size payload =
  let seq = fl.next_seq in
  fl.next_seq <- seq + 1;
  let p =
    { p_dst = fl.f_dst; p_payload = payload; p_size = size; p_retries = 0; p_timer = None }
  in
  ignore p.p_dst;
  Hashtbl.replace fl.inflight seq p;
  Metrics.Counter.incr t.c_frames;
  Metrics.Counter.incr t.c_payloads;
  Metrics.Histogram.observe t.h_occupancy 1.0;
  Fabric.send t.fabric ~src:fl.f_src ~dst:fl.f_dst ~size
    (Data { seq; inc = fl.tx_inc; inner = payload; size });
  arm_retransmit t fl seq p

let handle_data_legacy t fl ~seq ~inc ~inner =
  if inc >= fl.rx_inc then begin
    if inc > fl.rx_inc then adopt_rx t fl inc;
    Metrics.Counter.incr t.c_acks_standalone;
    Fabric.send t.fabric ~src:fl.f_dst ~dst:fl.f_src ~size:ack_bytes
      (Ack { seq; inc });
    if t.config.dedup then begin
      let dup = seq <= fl.watermark || Hashtbl.mem fl.seen_ahead seq in
      if not dup then begin
        if seq = fl.watermark + 1 then begin
          fl.watermark <- seq;
          while Hashtbl.mem fl.seen_ahead (fl.watermark + 1) do
            Hashtbl.remove fl.seen_ahead (fl.watermark + 1);
            fl.watermark <- fl.watermark + 1
          done
        end
        else Hashtbl.replace fl.seen_ahead seq ();
        deliver t ~dst:fl.f_dst ~src:fl.f_src inner
      end
    end
    else deliver t ~dst:fl.f_dst ~src:fl.f_src inner
  end

let handle_ack_legacy t fl ~seq ~inc =
  if inc = fl.tx_inc then
    match Hashtbl.find_opt fl.inflight seq with
    | Some p ->
      cancel_pending_timer t p;
      Hashtbl.remove fl.inflight seq
    | None -> ()

(* ---------- dispatch ------------------------------------------------------ *)

let handle t ~dst ~src payload =
  match payload with
  | Data { seq; inc; inner; size = _ } ->
    handle_data_legacy t t.flows.(src).(dst) ~seq ~inc ~inner
  | Ack { seq; inc } -> handle_ack_legacy t t.flows.(dst).(src) ~seq ~inc
  | Batch { inc; first_seq; items; ack; ack_inc } ->
    (* The piggybacked ack covers OUR data on the reverse flow dst->src. *)
    apply_cum_ack t t.flows.(dst).(src) ~upto:ack ~inc:ack_inc;
    handle_batch t t.flows.(src).(dst) ~inc ~first_seq ~items
  | Ack_cum { upto; inc } -> apply_cum_ack t t.flows.(dst).(src) ~upto ~inc
  | other -> deliver t ~dst ~src other

let create ?(config = default_config) ?telemetry fabric =
  let n = Fabric.nodes fabric in
  let hub = match telemetry with Some h -> h | None -> Hub.none () in
  let m = Hub.metrics hub in
  let t =
    {
      fabric;
      config;
      handlers = Array.make n None;
      flows = Array.init n (fun src -> Array.init n (fun dst -> fresh_flow ~src ~dst));
      dirty = Array.init n (fun _ -> ref []);
      node_flush_ev = Array.make n None;
      c_retransmissions = Metrics.Counter.v m "transport.retransmissions";
      c_backoff = Metrics.Counter.v m "transport.backoff";
      c_frames = Metrics.Counter.v m "transport.frames";
      c_payloads = Metrics.Counter.v m "transport.payloads";
      c_acks_piggybacked = Metrics.Counter.v m "transport.acks_piggybacked";
      c_acks_standalone = Metrics.Counter.v m "transport.acks_standalone";
      h_occupancy = Metrics.Histogram.v m ~lo:1.0 ~decades:3 ~per_decade:10 "transport.batch_occupancy";
      trace = Hub.trace hub;
    }
  in
  for node = 0 to n - 1 do
    Fabric.set_handler fabric node (fun ~src payload -> handle t ~dst:node ~src payload)
  done;
  t

let send t ~src ~dst ?(size = 64) payload =
  let fl = t.flows.(src).(dst) in
  if t.config.batching then send_batched t fl ~size payload
  else send_legacy t fl ~size payload

let send_unreliable t ~src ~dst ?(size = 64) payload =
  Fabric.send t.fabric ~src ~dst ~size payload

(* Crash cleanup is symmetric: the crashed node's own send windows AND
   receive windows die with it, its peers stop retransmitting into the
   void, and the peers' receive windows for the dead node's flows are
   reset with an incarnation bump — so when the node rejoins as a fresh
   incarnation restarting at seq 0, nothing is swallowed as a duplicate
   and no straggler of the old incarnation is accepted. *)
let drop_pending_flush t node =
  cancel_node_flush t node;
  List.iter (fun fl -> fl.queued <- false) !(t.dirty.(node));
  t.dirty.(node) := []

let crash t node =
  Fabric.crash t.fabric node;
  drop_pending_flush t node;
  let n = Fabric.nodes t.fabric in
  for peer = 0 to n - 1 do
    reset_tx t t.flows.(node).(peer);
    reset_rx t t.flows.(node).(peer);
    reset_tx t t.flows.(peer).(node);
    reset_rx t t.flows.(peer).(node)
  done

let recover t node =
  Fabric.recover t.fabric node;
  drop_pending_flush t node;
  let n = Fabric.nodes t.fabric in
  for peer = 0 to n - 1 do
    (* Anything enqueued while dead belongs to the dead incarnation. *)
    reset_tx t t.flows.(node).(peer);
    (* Come back with empty receive windows, keeping the accepted
       incarnation: peers legitimately retransmit their post-crash sends
       once we are back, and those must not be dropped as stale. *)
    clear_rx_window t t.flows.(peer).(node)
  done
