(** Reliable messaging over the unreliable {!Fabric}.

    The paper's datastore ships a custom reliable messaging library over
    DPDK (§3.1, §7): low-level retransmission recovers lost messages,
    receivers deduplicate, and protocol messages to the same peer are
    coalesced into batched frames to amortize per-frame overheads.  This
    module reproduces it with two modes:

    {b Batched} (default, [batching = true]): messages to the same
    destination enqueued within [flush_window_us] (or within one simulator
    instant — the "doorbell") are packed into a single multi-payload
    [Batch] frame whose fabric size is the sum of its parts plus one
    header.  The receiver delivers in order behind a cumulative watermark,
    holding a bounded out-of-order window, and acks the highest in-order
    sequence — piggybacked on reverse-direction batches when possible,
    via a delayed-ack timer otherwise.  Retransmission is go-back-N with
    a single RTO timer per peer flow.  Delivery is order-preserving per
    flow.

    {b Legacy} ([batching = false]): the pre-batching behaviour — one
    [Data] frame per message, one 16-byte [Ack] per frame received, one
    retransmit timer per in-flight message, and delivery that is {e not}
    order-preserving.  Message counts on the fabric are identical to the
    historical transport; only the receive-side dedup bookkeeping changed
    from an unbounded table to a watermark plus bounded set.

    Flows carry incarnation numbers: any reset (endpoint crash, sender
    give-up) bumps the incarnation, so a rejoined node restarting at
    sequence 0 is never swallowed as a duplicate and stragglers from the
    old incarnation are ignored. *)

type config = {
  rto_us : float;  (** base retransmission timeout *)
  rto_backoff : float;
      (** multiplier applied per consecutive retransmission without window
          progress (capped exponential backoff with deterministic jitter);
          progress resets the timeout to [rto_us].  [1.0] restores the
          historical fixed-rate behaviour *)
  rto_max_us : float;  (** backoff ceiling *)
  max_retries : int;
      (** give up after this many retransmissions (a crashed peer is the
          membership service's problem) *)
  dedup : bool;  (** deduplicate on the receive side *)
  batching : bool;  (** coalesce frames + cumulative acks (default on) *)
  flush_window_us : float;
      (** how long an enqueued message may wait for companions before its
          flow is flushed; 0 = flush at the end of the current instant *)
  delayed_ack_us : float;
      (** how long the receiver withholds a standalone cumulative ack
          hoping to piggyback it on reverse-direction data *)
  max_batch : int;  (** max payloads packed into one [Batch] frame *)
  max_ooo : int;
      (** receive-side out-of-order window; payloads beyond it are dropped
          and recovered by retransmission, keeping state bounded; only
          read in ordered mode *)
  ordered : bool;
      (** [true] (default): per-flow in-order delivery — payloads ahead of
          the cumulative watermark are held in the OOO window until the
          gap fills (the RDMA RC contract of §3.1).  [false]: payloads
          ahead of the watermark deliver {e immediately} (multipath /
          QUIC-datagram-style fabrics); still exactly-once, no longer
          in-order.  The commit protocol's sequence-aware clear marks
          ([Zeus_commit.Core.Sequenced]) keep it live either way. *)
}

val default_config : config

val unbatched : config -> config
(** [unbatched c] is [c] with [batching = false] — the historical
    one-frame-per-message transport, for ablations.  The legacy path was
    never order-preserving, so [ordered] has no effect on it. *)

val unordered : config -> config
(** [unordered c] is [c] with [ordered = false] — reliable exactly-once
    delivery without the per-flow ordering guarantee. *)

type t

val create : ?config:config -> ?telemetry:Zeus_telemetry.Hub.t -> Fabric.t -> t
(** Installs itself as every node's fabric handler.  With [telemetry],
    frame/payload/ack/retransmission counters register in the hub's typed
    registry (prefix ["transport."]) and — when tracing is enabled — each
    batched frame emits a per-flow batch-residency span (oldest enqueue to
    frame send; [pid] = sender, [tid] = destination). *)

val fabric : t -> Fabric.t

val set_handler : t -> Msg.node_id -> (src:Msg.node_id -> Msg.payload -> unit) -> unit
(** Application-level receive handler for a node. *)

val send : t -> src:Msg.node_id -> dst:Msg.node_id -> ?size:int -> Msg.payload -> unit
(** Reliable send: retransmits until acknowledged or [max_retries] is
    exhausted.  In batched mode the payload is queued on the per-peer flow
    and leaves with the next flush. *)

val flush : t -> Msg.node_id -> unit
(** Doorbell: flush [node]'s pending outgoing frames at the end of the
    current simulator instant instead of waiting out the flush window.
    All sends enqueued at the current timestamp still coalesce; no latency
    is added.  Protocol agents ring this after a fan-out burst.  No-op in
    legacy mode or with a zero flush window. *)

val send_unreliable : t -> src:Msg.node_id -> dst:Msg.node_id -> ?size:int -> Msg.payload -> unit
(** Plain fabric send, bypassing retransmission (used for traffic where the
    protocol layer has its own replay, and in tests). *)

val crash : t -> Msg.node_id -> unit
(** Crash the node at fabric level and reset transport state {e
    symmetrically}: the node's own send and receive windows, its peers'
    retransmission state toward it, and its peers' receive windows for its
    flows (with an incarnation bump, so the rejoined node's fresh sequence
    0 is not deduplicated away). *)

val recover : t -> Msg.node_id -> unit

val retransmissions : t -> int
(** Total retransmitted payloads (observability for tests/benches). *)

val backoffs : t -> int
(** Retransmission bursts fired (each re-armed with a backed-off timeout);
    mirrors the [transport.backoff] counter. *)

val rto_after : config -> src:Msg.node_id -> dst:Msg.node_id -> retries:int -> float
(** The timeout armed after [retries] consecutive retransmissions without
    window progress: [rto_us * rto_backoff^retries], capped at
    [rto_max_us], plus up to 10 % of deterministic per-flow jitter (a pure
    hash of [src], [dst], [retries] — no RNG draw, so arming a timer never
    perturbs the simulation's random streams).  Exposed for tests. *)

type stats = {
  frames : int;  (** data frames handed to the fabric *)
  payloads : int;  (** protocol payloads carried by those frames *)
  retransmitted : int;
  piggybacked_acks : int;  (** cumulative acks carried by reverse data *)
  standalone_acks : int;  (** dedicated ack frames (incl. legacy per-message) *)
  mean_occupancy : float;  (** mean payloads per data frame *)
  max_occupancy : float;
}

val stats : t -> stats

val tx_backlog : t -> int
(** Total unacknowledged sender-side payloads across all flows (0 once the
    network is quiescent — bounded-state invariant for property tests). *)

val rx_backlog : t -> int
(** Total receive-side out-of-order/dedup entries across all flows. *)
