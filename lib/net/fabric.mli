(** Unreliable intra-datacenter message fabric.

    Models the cluster network of the paper's testbed: a one-way base
    latency, a serialization cost proportional to message size (link
    bandwidth), and optional fault injection — probabilistic loss,
    duplication, extra reordering delay — plus crash-stop nodes and
    two-sided partitions.  Delivery invokes the destination's handler at the
    (virtual) arrival time; charging receive CPU is the receiver's job. *)

type config = {
  base_latency_us : float;  (** one-way propagation + switching delay *)
  jitter_us : float;        (** uniform extra delay in [0, jitter] *)
  bandwidth_gbps : float;   (** per-link serialization rate *)
  loss_prob : float;        (** probability a message is dropped *)
  dup_prob : float;         (** probability a message is delivered twice *)
  delay_prob : float;
      (** probability of an extra straggler delay (formerly
          [reorder_prob]); an ordered transport's OOO window re-orders the
          straggler away, so this models jitter, {e not} permutation *)
  delay_extra_us : float;   (** magnitude of that extra delay *)
  permute_prob : float;
      (** probability a message {e overtakes} the latest in-flight message
          on its directed link (lands uniformly inside the in-flight
          horizon) — true per-link delivery permutation, visible to the
          application through [Transport.unordered] or the legacy
          unbatched transport *)
}

val default_config : config
(** 40 Gbps links, 4 µs one-way latency, no fault injection — the paper's
    switch fabric in good health. *)

type t

val create : Zeus_sim.Engine.t -> nodes:int -> config -> t
(** Raises [Invalid_argument] when [nodes <= 0] or the config is
    malformed: any probability outside [0, 1], a negative latency/jitter/
    delay, or a non-positive bandwidth. *)

val engine : t -> Zeus_sim.Engine.t
val nodes : t -> int
val config : t -> config

val set_handler : t -> Msg.node_id -> (src:Msg.node_id -> Msg.payload -> unit) -> unit
(** Install the receive handler for a node.  Replaces any previous one. *)

val send : t -> src:Msg.node_id -> dst:Msg.node_id -> ?size:int -> Msg.payload -> unit
(** Fire-and-forget.  [size] in bytes (default 64, a small protocol
    message).  Self-sends are delivered with negligible latency and no
    fault injection. *)

val crash : t -> Msg.node_id -> unit
(** Crash-stop: all traffic to and from the node is silently dropped, and
    its handler never fires again (until [recover]). *)

val recover : t -> Msg.node_id -> unit
val is_alive : t -> Msg.node_id -> bool

val partition : t -> Msg.node_id -> Msg.node_id -> unit
(** Symmetric partition between two nodes. *)

val heal : t -> Msg.node_id -> Msg.node_id -> unit

val partition_oneway : t -> src:Msg.node_id -> dst:Msg.node_id -> unit
(** One-sided partition: messages [src]->[dst] are dropped while the
    reverse direction keeps flowing (asymmetric link failure — the chaos
    schedules' nastiest primitive, since acks die while data survives). *)

val heal_oneway : t -> src:Msg.node_id -> dst:Msg.node_id -> unit

val heal_all : t -> unit
(** Removes every symmetric and one-sided partition. *)

(** {2 Runtime perturbation (chaos injection)}

    Unlike {!config} fault injection — fixed for the fabric's lifetime —
    these knobs are flipped mid-run by a nemesis: a link-quality spike
    adds loss/duplication probability and a flat delay to every message
    while armed, and a slow ("gray") node multiplies the latency of every
    message it sends or receives without failing outright.  When disabled
    they change neither behaviour nor the rng draw sequence. *)

type perturb = {
  p_loss : float;      (** added to [loss_prob] while armed *)
  p_dup : float;       (** added to [dup_prob] while armed *)
  p_delay_us : float;  (** flat extra one-way delay while armed *)
}

val set_perturb : t -> perturb option -> unit
val perturb : t -> perturb option

val set_scramble : t -> float -> unit
(** Runtime add-on to [permute_prob] while a scramble fault is armed
    ([0.0] disarms; raises [Invalid_argument] outside [0, 1]).  Kept
    separate from {!set_perturb} so a delivery-order scramble can overlap
    a link-quality spike.  Disabled it costs no rng draw. *)

val scramble : t -> float

val set_slow : t -> Msg.node_id -> float -> unit
(** Latency multiplier for every message to or from the node (clamped to
    [>= 1.0]); [1.0] restores full speed. *)

val slow_factor : t -> Msg.node_id -> float

(** Traffic accounting (for the paper's bandwidth comparisons). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_dropped : t -> int
val reset_counters : t -> unit
