module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng

type config = {
  base_latency_us : float;
  jitter_us : float;
  bandwidth_gbps : float;
  loss_prob : float;
  dup_prob : float;
  reorder_prob : float;
  reorder_delay_us : float;
}

let default_config =
  {
    base_latency_us = 4.0;
    jitter_us = 0.3;
    bandwidth_gbps = 40.0;
    loss_prob = 0.0;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    reorder_delay_us = 10.0;
  }

type perturb = { p_loss : float; p_dup : float; p_delay_us : float }

type t = {
  engine : Engine.t;
  nodes : int;
  config : config;
  rng : Rng.t;
  handlers : (src:Msg.node_id -> Msg.payload -> unit) option array;
  alive : bool array;
  partitions : (int * int, unit) Hashtbl.t;
  oneway : (int * int, unit) Hashtbl.t;  (* directed src->dst drops *)
  mutable perturb : perturb option;
  slow : float array;  (* per-node latency multiplier ("gray" degradation) *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

let create engine ~nodes config =
  assert (nodes > 0);
  {
    engine;
    nodes;
    config;
    rng = Engine.fork_rng engine;
    handlers = Array.make nodes None;
    alive = Array.make nodes true;
    partitions = Hashtbl.create 8;
    oneway = Hashtbl.create 8;
    perturb = None;
    slow = Array.make nodes 1.0;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
  }

let engine t = t.engine
let nodes t = t.nodes
let config t = t.config
let set_handler t node fn = t.handlers.(node) <- Some fn
let is_alive t node = t.alive.(node)

let crash t node = t.alive.(node) <- false
let recover t node = t.alive.(node) <- true

let pair a b = if a < b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.partitions (pair a b) ()
let heal t a b = Hashtbl.remove t.partitions (pair a b)

let partition_oneway t ~src ~dst = Hashtbl.replace t.oneway (src, dst) ()
let heal_oneway t ~src ~dst = Hashtbl.remove t.oneway (src, dst)

let heal_all t =
  Hashtbl.reset t.partitions;
  Hashtbl.reset t.oneway

let partitioned t a b = Hashtbl.mem t.partitions (pair a b)
let blocked t ~src ~dst = partitioned t src dst || Hashtbl.mem t.oneway (src, dst)

let set_perturb t p = t.perturb <- p
let perturb t = t.perturb
let set_slow t node factor = t.slow.(node) <- Float.max factor 1.0
let slow_factor t node = t.slow.(node)

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped

let reset_counters t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.messages_dropped <- 0

let deliver t ~src ~dst payload =
  (* Checked at arrival time: a node that crashed in flight drops the
     message, matching a NIC going dark. *)
  if t.alive.(dst) && not (blocked t ~src ~dst) then begin
    match t.handlers.(dst) with
    | Some fn -> fn ~src payload
    | None -> ()
  end
  else t.messages_dropped <- t.messages_dropped + 1

let latency t ~src ~dst ~size =
  let c = t.config in
  let serialize =
    (* bytes -> µs at [bandwidth] Gbps: size * 8 bits / (gbps * 1000 bits/µs) *)
    float_of_int size *. 8.0 /. (c.bandwidth_gbps *. 1000.0)
  in
  (* A slow ("gray") endpoint stretches every message it touches; the
     spike's extra delay is a link-level add-on. *)
  let gray = Float.max t.slow.(src) t.slow.(dst) in
  let spike = match t.perturb with Some p -> p.p_delay_us | None -> 0.0 in
  ((c.base_latency_us +. serialize) *. gray)
  +. spike
  +. Rng.float t.rng c.jitter_us

(* Effective fault probabilities: static config plus the active spike.  The
   rng draw count is independent of whether a spike is active, so arming a
   chaos schedule never perturbs the random sequence of an otherwise
   identical run before the first fault fires. *)
let eff_loss t = match t.perturb with
  | Some p -> Float.min 1.0 (t.config.loss_prob +. p.p_loss)
  | None -> t.config.loss_prob

let eff_dup t = match t.perturb with
  | Some p -> Float.min 1.0 (t.config.dup_prob +. p.p_dup)
  | None -> t.config.dup_prob

let send t ~src ~dst ?(size = 64) payload =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  if not t.alive.(src) then t.messages_dropped <- t.messages_dropped + 1
  else if src = dst then
    ignore (Engine.schedule t.engine ~after:0.05 (fun () -> deliver t ~src ~dst payload))
  else begin
    let c = t.config in
    if Rng.chance t.rng (eff_loss t) then t.messages_dropped <- t.messages_dropped + 1
    else begin
      let base = latency t ~src ~dst ~size in
      let extra =
        if Rng.chance t.rng c.reorder_prob then Rng.float t.rng c.reorder_delay_us
        else 0.0
      in
      let arrival = base +. extra in
      ignore (Engine.schedule t.engine ~after:arrival (fun () -> deliver t ~src ~dst payload));
      if Rng.chance t.rng (eff_dup t) then begin
        let dup_arrival = latency t ~src ~dst ~size +. Rng.float t.rng c.reorder_delay_us in
        ignore
          (Engine.schedule t.engine ~after:dup_arrival (fun () ->
               deliver t ~src ~dst payload))
      end
    end
  end
