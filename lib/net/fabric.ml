module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng

type config = {
  base_latency_us : float;
  jitter_us : float;
  bandwidth_gbps : float;
  loss_prob : float;
  dup_prob : float;
  delay_prob : float;
  delay_extra_us : float;
  permute_prob : float;
}

let default_config =
  {
    base_latency_us = 4.0;
    jitter_us = 0.3;
    bandwidth_gbps = 40.0;
    loss_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    delay_extra_us = 10.0;
    permute_prob = 0.0;
  }

type perturb = { p_loss : float; p_dup : float; p_delay_us : float }

type t = {
  engine : Engine.t;
  nodes : int;
  config : config;
  rng : Rng.t;
  handlers : (src:Msg.node_id -> Msg.payload -> unit) option array;
  alive : bool array;
  partitions : (int * int, unit) Hashtbl.t;
  oneway : (int * int, unit) Hashtbl.t;  (* directed src->dst drops *)
  mutable perturb : perturb option;
  mutable scramble : float;  (* runtime add-on to [permute_prob] (nemesis) *)
  slow : float array;  (* per-node latency multiplier ("gray" degradation) *)
  last_arrival : float array;
      (* per directed link, the latest absolute arrival time scheduled so
         far — the permutation target: an overtaking message lands before
         it.  Maintained unconditionally (no rng cost) so a nemesis can
         arm scrambling mid-run against a warm horizon. *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

let validate_config c =
  let prob name p =
    if p < 0.0 || p > 1.0 || Float.is_nan p then
      invalid_arg (Printf.sprintf "Fabric.create: %s = %g not in [0, 1]" name p)
  in
  let non_neg name v =
    if v < 0.0 || Float.is_nan v then
      invalid_arg (Printf.sprintf "Fabric.create: %s = %g is negative" name v)
  in
  prob "loss_prob" c.loss_prob;
  prob "dup_prob" c.dup_prob;
  prob "delay_prob" c.delay_prob;
  prob "permute_prob" c.permute_prob;
  non_neg "base_latency_us" c.base_latency_us;
  non_neg "jitter_us" c.jitter_us;
  non_neg "delay_extra_us" c.delay_extra_us;
  if c.bandwidth_gbps <= 0.0 || Float.is_nan c.bandwidth_gbps then
    invalid_arg
      (Printf.sprintf "Fabric.create: bandwidth_gbps = %g not positive"
         c.bandwidth_gbps)

let create engine ~nodes config =
  if nodes <= 0 then invalid_arg "Fabric.create: nodes <= 0";
  validate_config config;
  {
    engine;
    nodes;
    config;
    rng = Engine.fork_rng engine;
    handlers = Array.make nodes None;
    alive = Array.make nodes true;
    partitions = Hashtbl.create 8;
    oneway = Hashtbl.create 8;
    perturb = None;
    scramble = 0.0;
    slow = Array.make nodes 1.0;
    last_arrival = Array.make (nodes * nodes) neg_infinity;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
  }

let engine t = t.engine
let nodes t = t.nodes
let config t = t.config
let set_handler t node fn = t.handlers.(node) <- Some fn
let is_alive t node = t.alive.(node)

let crash t node = t.alive.(node) <- false
let recover t node = t.alive.(node) <- true

let pair a b = if a < b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.partitions (pair a b) ()
let heal t a b = Hashtbl.remove t.partitions (pair a b)

let partition_oneway t ~src ~dst = Hashtbl.replace t.oneway (src, dst) ()
let heal_oneway t ~src ~dst = Hashtbl.remove t.oneway (src, dst)

let heal_all t =
  Hashtbl.reset t.partitions;
  Hashtbl.reset t.oneway

let partitioned t a b = Hashtbl.mem t.partitions (pair a b)
let blocked t ~src ~dst = partitioned t src dst || Hashtbl.mem t.oneway (src, dst)

let set_perturb t p = t.perturb <- p
let perturb t = t.perturb

let set_scramble t p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg (Printf.sprintf "Fabric.set_scramble: %g not in [0, 1]" p);
  t.scramble <- p

let scramble t = t.scramble
let set_slow t node factor = t.slow.(node) <- Float.max factor 1.0
let slow_factor t node = t.slow.(node)

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped

let reset_counters t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.messages_dropped <- 0

let deliver t ~src ~dst payload =
  (* Checked at arrival time: a node that crashed in flight drops the
     message, matching a NIC going dark. *)
  if t.alive.(dst) && not (blocked t ~src ~dst) then begin
    match t.handlers.(dst) with
    | Some fn -> fn ~src payload
    | None -> ()
  end
  else t.messages_dropped <- t.messages_dropped + 1

let latency t ~src ~dst ~size =
  let c = t.config in
  let serialize =
    (* bytes -> µs at [bandwidth] Gbps: size * 8 bits / (gbps * 1000 bits/µs) *)
    float_of_int size *. 8.0 /. (c.bandwidth_gbps *. 1000.0)
  in
  (* A slow ("gray") endpoint stretches every message it touches; the
     spike's extra delay is a link-level add-on. *)
  let gray = Float.max t.slow.(src) t.slow.(dst) in
  let spike = match t.perturb with Some p -> p.p_delay_us | None -> 0.0 in
  ((c.base_latency_us +. serialize) *. gray)
  +. spike
  +. Rng.float t.rng c.jitter_us

(* Effective fault probabilities: static config plus the active spike.  The
   rng draw count is independent of whether a spike is active, so arming a
   chaos schedule never perturbs the random sequence of an otherwise
   identical run before the first fault fires. *)
let eff_loss t = match t.perturb with
  | Some p -> Float.min 1.0 (t.config.loss_prob +. p.p_loss)
  | None -> t.config.loss_prob

let eff_dup t = match t.perturb with
  | Some p -> Float.min 1.0 (t.config.dup_prob +. p.p_dup)
  | None -> t.config.dup_prob

let eff_permute t = Float.min 1.0 (t.config.permute_prob +. t.scramble)

(* Record the latest scheduled arrival on a directed link; returns the
   absolute arrival time.  Pure float bookkeeping — no rng draw, so
   tracking while permutation is disabled never perturbs a run. *)
let note_arrival t ~src ~dst ~now ~after =
  let i = (src * t.nodes) + dst in
  let abs = now +. after in
  if abs > t.last_arrival.(i) then t.last_arrival.(i) <- abs

let send t ~src ~dst ?(size = 64) payload =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  if not t.alive.(src) then t.messages_dropped <- t.messages_dropped + 1
  else if src = dst then
    ignore (Engine.schedule t.engine ~after:0.05 (fun () -> deliver t ~src ~dst payload))
  else begin
    let c = t.config in
    if Rng.chance t.rng (eff_loss t) then t.messages_dropped <- t.messages_dropped + 1
    else begin
      let now = Engine.now t.engine in
      let base = latency t ~src ~dst ~size in
      let extra =
        if Rng.chance t.rng c.delay_prob then Rng.float t.rng c.delay_extra_us
        else 0.0
      in
      let arrival = base +. extra in
      (* True permutation: with probability [eff_permute], land this
         message {e before} the latest in-flight one on the link (uniform
         inside the in-flight horizon) instead of behind it.  Unlike the
         [delay_prob] straggler — which an ordered transport's OOO window
         re-orders away — this genuinely swaps delivery order.  Guarded so
         a disabled knob costs no rng draw. *)
      let arrival =
        let p = eff_permute t in
        if p > 0.0 && Rng.chance t.rng p then begin
          let horizon = t.last_arrival.((src * t.nodes) + dst) -. now in
          if horizon > 1e-9 then Rng.float t.rng horizon else arrival
        end
        else arrival
      in
      note_arrival t ~src ~dst ~now ~after:arrival;
      ignore (Engine.schedule t.engine ~after:arrival (fun () -> deliver t ~src ~dst payload));
      if Rng.chance t.rng (eff_dup t) then begin
        let dup_arrival = latency t ~src ~dst ~size +. Rng.float t.rng c.delay_extra_us in
        note_arrival t ~src ~dst ~now ~after:dup_arrival;
        ignore
          (Engine.schedule t.engine ~after:dup_arrival (fun () ->
               deliver t ~src ~dst payload))
      end
    end
  end
