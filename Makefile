.PHONY: all build test check bench bench-quick clean

all: build

build:
	dune build

test: build
	dune runtest

# What CI runs: full build, the whole test suite, and a quick smoke of the
# locality-engine experiment (also exercises the BENCH_locality.json path).
check: test
	dune exec bench/main.exe -- --quick predictive

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
	rm -f BENCH_locality.json
