.PHONY: all build test check bench bench-quick bench-smoke trace-smoke clean

all: build

build:
	dune build

test: build
	dune runtest

# What CI runs: full build, the whole test suite, and a quick smoke of the
# locality-engine experiment (also exercises the BENCH_locality.json path).
check: test
	dune exec bench/main.exe -- --quick predictive

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Quick transport ablation (batched vs unbatched) + sanity-check that the
# machine-readable BENCH_transport.json came out well-formed.
bench-smoke: build
	rm -f BENCH_transport.json
	dune exec bench/main.exe -- --quick transport
	@test -s BENCH_transport.json || { echo "bench-smoke: BENCH_transport.json missing or empty" >&2; exit 1; }
	@for key in smallbank handover unbatched batched messages_per_txn bytes_per_txn events_per_txn committed mean_occupancy; do \
	  grep -q "\"$$key\"" BENCH_transport.json || { echo "bench-smoke: key \"$$key\" missing from BENCH_transport.json" >&2; exit 1; }; \
	done
	@echo "bench-smoke: BENCH_transport.json OK"

# Quick traced Smallbank run.  The trace subcommand itself validates the
# exported file (parses as Chrome trace JSON, every committed transaction
# carries ownership/execute/replicate spans with nested sim-time bounds)
# and exits non-zero on any violation.
trace-smoke: build
	rm -f trace.json
	dune exec bin/zeus_cli.exe -- trace --workload smallbank --quick --out trace.json
	@test -s trace.json || { echo "trace-smoke: trace.json missing or empty" >&2; exit 1; }
	@echo "trace-smoke: trace.json OK"

clean:
	dune clean
	rm -f BENCH_locality.json BENCH_transport.json trace.json
