.PHONY: all build test check bench bench-quick bench-smoke chaos-smoke detect-smoke trace-smoke perf-smoke model-smoke perf-baseline clean

all: build

build:
	dune build

test: build
	dune runtest

# What CI runs: full build, the whole test suite, and a quick smoke of the
# locality-engine experiment (also exercises the BENCH_locality.json path).
check: test
	dune exec bench/main.exe -- --quick predictive

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Quick transport ablation (batched vs unbatched) + sanity-check that the
# machine-readable BENCH_transport.json came out well-formed.
bench-smoke: build
	rm -f BENCH_transport.json
	dune exec bench/main.exe -- --quick transport
	@test -s BENCH_transport.json || { echo "bench-smoke: BENCH_transport.json missing or empty" >&2; exit 1; }
	@for key in smallbank handover unbatched batched messages_per_txn bytes_per_txn events_per_txn committed mean_occupancy; do \
	  grep -q "\"$$key\"" BENCH_transport.json || { echo "bench-smoke: key \"$$key\" missing from BENCH_transport.json" >&2; exit 1; }; \
	done
	@echo "bench-smoke: BENCH_transport.json OK"

# Quick fault-injection run (Smallbank under follower / owner / directory
# crashes) + sanity-check of the machine-readable BENCH_faults.json: all
# expected keys present, every scenario's goodput recovered (no
# "recovery_us": null), and every invariant monitor passed.
chaos-smoke: build
	rm -f BENCH_faults.json
	dune exec bench/main.exe -- --quick faults
	@test -s BENCH_faults.json || { echo "chaos-smoke: BENCH_faults.json missing or empty" >&2; exit 1; }
	@for key in follower owner directory reorder baseline_mtps dip_mtps recovery_us timeline monitors_ok; do \
	  grep -q "\"$$key\"" BENCH_faults.json || { echo "chaos-smoke: key \"$$key\" missing from BENCH_faults.json" >&2; exit 1; }; \
	done
	@if grep -q '"recovery_us": null' BENCH_faults.json; then \
	  echo "chaos-smoke: a scenario never recovered its goodput" >&2; exit 1; fi
	@if grep -q '"monitors_ok": false' BENCH_faults.json; then \
	  echo "chaos-smoke: an invariant monitor reported a violation" >&2; exit 1; fi
	@echo "chaos-smoke: BENCH_faults.json OK"

# Quick failure-detection sweep (heartbeat period x suspicion-timeout floor,
# Detected membership mode) + sanity-check of BENCH_detection.json: all
# expected keys present, every configuration detected the follower crash
# (no "detect_latency_us": null), every detection landed within its
# analytical bound, and commits progressed after every view change.
detect-smoke: build
	rm -f BENCH_detection.json
	dune exec bench/main.exe -- --quick detection
	@test -s BENCH_detection.json || { echo "detect-smoke: BENCH_detection.json missing or empty" >&2; exit 1; }
	@for key in period_us min_timeout_us bound_us detect_latency_us within_bound recovered noise_false_suspicions noise_evictions_averted; do \
	  grep -q "\"$$key\"" BENCH_detection.json || { echo "detect-smoke: key \"$$key\" missing from BENCH_detection.json" >&2; exit 1; }; \
	done
	@if grep -q '"detect_latency_us": null' BENCH_detection.json; then \
	  echo "detect-smoke: a configuration never detected the crash" >&2; exit 1; fi
	@if grep -q '"within_bound": false' BENCH_detection.json; then \
	  echo "detect-smoke: a detection exceeded its analytical bound" >&2; exit 1; fi
	@if grep -q '"recovered": false' BENCH_detection.json; then \
	  echo "detect-smoke: commits did not progress after a view change" >&2; exit 1; fi
	@echo "detect-smoke: BENCH_detection.json OK"

# Quick traced Smallbank run.  The trace subcommand itself validates the
# exported file (parses as Chrome trace JSON, every committed transaction
# carries ownership/execute/replicate spans with nested sim-time bounds)
# and exits non-zero on any violation.
trace-smoke: build
	rm -f trace.json
	dune exec bin/zeus_cli.exe -- trace --workload smallbank --quick --out trace.json
	@test -s trace.json || { echo "trace-smoke: trace.json missing or empty" >&2; exit 1; }
	@echo "trace-smoke: trace.json OK"

# Quick wall-clock perf run (simulator events/sec + -j sweep scaling) +
# sanity-check of BENCH_perf.json: all expected keys present, events/sec no
# worse than 25% below the checked-in baseline (bench/perf_baseline.json),
# and the -j1 vs -jN sweep bit-identical.
perf-smoke: build
	rm -f BENCH_perf.json
	dune exec bench/main.exe -- --quick perf
	@test -s BENCH_perf.json || { echo "perf-smoke: BENCH_perf.json missing or empty" >&2; exit 1; }
	@for key in events_per_sec words_per_event speedup regression_ok sweep identical cores; do \
	  grep -q "\"$$key\"" BENCH_perf.json || { echo "perf-smoke: key \"$$key\" missing from BENCH_perf.json" >&2; exit 1; }; \
	done
	@if grep -q '"regression_ok": false' BENCH_perf.json; then \
	  echo "perf-smoke: events/sec regressed >25% vs bench/perf_baseline.json" >&2; exit 1; fi
	@if grep -q '"identical": false' BENCH_perf.json; then \
	  echo "perf-smoke: -j1 and -jN sweeps diverged (parallelism leaked into results)" >&2; exit 1; fi
	@echo "perf-smoke: BENCH_perf.json OK"

# Bounded model check of the REAL sans-I/O protocol cores (ownership and
# commit), driven through Explorer.bfs: interleavings, duplication, crash +
# arb-replay/commit-replay, plus a negative control that reproduces the
# known reordering deadlock on non-FIFO links.  The subcommand exits
# non-zero on any invariant violation or a suspiciously small state space;
# per-scenario explored-state counts land in the log.
model-smoke: build
	rm -f model-smoke.log
	dune exec bin/zeus_cli.exe -- model --quick --trace > model-smoke.log 2>&1 || { cat model-smoke.log >&2; exit 1; }
	@cat model-smoke.log
	@grep -q "states explored across" model-smoke.log || { echo "model-smoke: no state-count summary in output" >&2; exit 1; }
	@grep -q "reordered links" model-smoke.log || { echo "model-smoke: reordering scenarios missing from run" >&2; exit 1; }
	@echo "model-smoke: real-core exploration OK"

# Re-capture the wall-clock reference on this machine: run the perf harness
# and copy its best smallbank events/sec into bench/perf_baseline.json.
# Use when the reference hardware changes — the baseline is machine-bound.
perf-baseline: build
	dune exec bench/main.exe -- --quick perf
	@test -s BENCH_perf.json || { echo "perf-baseline: BENCH_perf.json missing" >&2; exit 1; }
	@eps=$$(sed -n 's/.*"smallbank": {"events_per_sec": \([0-9.]*\).*/\1/p' BENCH_perf.json); \
	  test -n "$$eps" || { echo "perf-baseline: could not parse events_per_sec" >&2; exit 1; }; \
	  printf '{"events_per_sec": %s,\n "captured": "%s",\n "state": "%s",\n "note": "Smallbank quick run, 3 nodes, 10 ms virtual, best of 5; machine-dependent — regenerate with '"'"'make perf-baseline'"'"' when the reference hardware changes."}\n' \
	    "$$eps" "$$(date +%F)" "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" > bench/perf_baseline.json; \
	  echo "perf-baseline: recorded $$eps events/sec in bench/perf_baseline.json"

clean:
	dune clean
	rm -f BENCH_locality.json BENCH_transport.json BENCH_faults.json BENCH_detection.json BENCH_perf.json trace.json model-smoke.log
