(* Fault-tolerance demo (§4.1, §5.1).

   Node 0 owns a set of objects and commits a burst of pipelined
   transactions; we crash it while R-INVs are still in flight.  The
   surviving followers replay the pending reliable commits, the membership
   service installs a new epoch, the directory un-gates the orphaned
   objects, and the survivors take over ownership — no committed update is
   lost and all replicas agree. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Table = Zeus_store.Table

let keys = [ 1; 2; 3; 4 ]

let dump cluster label =
  Printf.printf "%s\n" label;
  List.iter
    (fun key ->
      Printf.printf "  key %d:" key;
      List.iter
        (fun n ->
          match Table.find (Node.table (Cluster.node cluster n)) key with
          | Some o ->
            Printf.printf "  n%d=%d(v%d,%s)" n
              (Value.to_int o.Zeus_store.Obj.data)
              o.Zeus_store.Obj.t_version
              (Format.asprintf "%a" Zeus_store.Types.pp_t_state o.Zeus_store.Obj.t_state)
          | None -> Printf.printf "  n%d=-" n)
        [ 0; 1; 2 ];
      print_newline ())
    keys

let () =
  let config = { Config.default with Config.nodes = 3; record_history = true } in
  let cluster = Cluster.create ~config () in
  let engine = Cluster.engine cluster in
  List.iter (fun k -> Cluster.populate cluster ~key:k ~owner:0 (Value.of_int 0)) keys;

  (* a burst of pipelined increments on node 0 *)
  let committed = ref 0 in
  let n0 = Cluster.node cluster 0 in
  let rec burst i =
    if i < 40 then begin
      let key = List.nth keys (i mod List.length keys) in
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx key (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
              commit ()))
        (fun o ->
          if o = Zeus_store.Txn.Committed then incr committed;
          burst (i + 1))
    end
  in
  ignore (Engine.schedule engine ~after:1.0 (fun () -> burst 0));

  (* crash the coordinator mid-burst, replication still in flight *)
  ignore
    (Engine.schedule engine ~after:12.0 (fun () ->
         Printf.printf "[t=%.1f us] CRASH node 0 (coordinator, %d local commits so far)\n"
           (Engine.now engine) !committed;
         Cluster.kill cluster 0));

  Cluster.run_quiesce cluster ~max_us:100_000.0 ();
  dump cluster "-- after recovery (survivors replayed pending commits):";

  (* survivors agree? *)
  let agree =
    List.for_all
      (fun key ->
        let v n =
          Option.map
            (fun o -> (Value.to_int o.Zeus_store.Obj.data, o.Zeus_store.Obj.t_version))
            (Table.find (Node.table (Cluster.node cluster n)) key)
        in
        v 1 = v 2)
      keys
  in
  Printf.printf "survivors agree on every key: %b\n" agree;

  (* survivors take over ownership and continue *)
  Printf.printf "-- node 1 takes over and keeps writing:\n";
  let ok = ref 0 in
  List.iter
    (fun key ->
      Node.run_write (Cluster.node cluster 1) ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx key (fun v -> Value.of_int (Value.to_int v + 100)) (fun _ ->
              commit ()))
        (fun o -> if o = Zeus_store.Txn.Committed then incr ok);
      Cluster.run_quiesce cluster ~max_us:100_000.0 ())
    keys;
  Printf.printf "post-crash writes committed: %d/%d\n" !ok (List.length keys);
  dump cluster "-- final state:";
  match Cluster.check_invariants cluster with
  | Ok () -> Printf.printf "invariants hold\n"
  | Error m -> Printf.printf "INVARIANT VIOLATION: %s\n" m
