(* Cellular handover demo (§2.2, §8.1).

   A mobile user commutes across three base stations hosted on different
   Zeus nodes.  Each control-plane operation is a write transaction on the
   user context and the involved station contexts:

   - service requests / releases touch (user, current station) — local;
   - a handover is two transactions: start on the old node, end on the new
     node; the end transaction drags the user's context over with a single
     ownership request (1.5 RTT), after which everything is local again.

   The demo prints where the user's context lives and how many ownership
   requests the commute needed. *)

module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Own = Zeus_ownership
module Value = Zeus_store.Value

let user = 0
let station n = 100 + n (* station of node n *)

let bump size v =
  let c = try Value.to_int v with Invalid_argument _ -> 0 in
  Value.padded [ c + 1 ] ~size

let write_pair node ~k1 ~k2 label cluster =
  Node.run_write node ~thread:0 ~exec_us:1.5
    ~body:(fun ctx commit ->
      Node.read_write ctx k1 (bump 400) (fun _ ->
          Node.read_write ctx k2 (bump 256) (fun _ -> commit ())))
    (fun outcome ->
      Printf.printf "  %-28s %s\n" label
        (match outcome with
        | Zeus_store.Txn.Committed -> "committed"
        | Zeus_store.Txn.Aborted _ -> "aborted"));
  Cluster.run_quiesce cluster ~max_us:10_000.0 ()

let where cluster =
  let homes =
    List.filter_map
      (fun n ->
        match Node.role (Cluster.node cluster n) user with
        | Some Zeus_store.Types.Owner -> Some n
        | _ -> None)
      [ 0; 1; 2 ]
  in
  match homes with [ n ] -> Printf.sprintf "node %d" n | _ -> "???"

let requests cluster =
  List.fold_left
    (fun acc n ->
      acc + Own.Agent.requests_started (Node.ownership_agent (Cluster.node cluster n)))
    0 [ 0; 1; 2 ]

let () =
  let cluster = Cluster.create ~config:{ Config.default with Config.nodes = 3 } () in
  (* user context on node 0; one station context per node *)
  Cluster.populate cluster ~key:user ~owner:0 (Value.padded [ 0 ] ~size:400);
  List.iter
    (fun n ->
      Cluster.populate cluster ~key:(station n) ~owner:n (Value.padded [ 0 ] ~size:256))
    [ 0; 1; 2 ];

  Printf.printf "user context starts on %s\n" (where cluster);
  Printf.printf "== stationary: service requests and releases at node 0 ==\n";
  for _ = 1 to 3 do
    write_pair (Cluster.node cluster 0) ~k1:user ~k2:(station 0) "service request" cluster;
    write_pair (Cluster.node cluster 0) ~k1:user ~k2:(station 0) "release" cluster
  done;
  Printf.printf "  ownership requests so far: %d (all traffic local)\n" (requests cluster);

  Printf.printf "== commute: handover node 0 -> node 1 ==\n";
  write_pair (Cluster.node cluster 0) ~k1:user ~k2:(station 0) "handover start (old node)"
    cluster;
  write_pair (Cluster.node cluster 1) ~k1:user ~k2:(station 1) "handover end (new node)"
    cluster;
  Printf.printf "  user context now on %s; ownership requests: %d\n" (where cluster)
    (requests cluster);

  Printf.printf "== attached to node 1: traffic local again ==\n";
  let before = requests cluster in
  for _ = 1 to 3 do
    write_pair (Cluster.node cluster 1) ~k1:user ~k2:(station 1) "service request" cluster
  done;
  Printf.printf "  new ownership requests: %d\n" (requests cluster - before);

  Printf.printf "== second handover: node 1 -> node 2 ==\n";
  write_pair (Cluster.node cluster 1) ~k1:user ~k2:(station 1) "handover start (old node)"
    cluster;
  write_pair (Cluster.node cluster 2) ~k1:user ~k2:(station 2) "handover end (new node)"
    cluster;
  Printf.printf "  user context now on %s\n" (where cluster);

  match Cluster.check_invariants cluster with
  | Ok () -> Printf.printf "== invariants hold ==\n"
  | Error m -> Printf.printf "== INVARIANT VIOLATION: %s ==\n" m
