(* Quickstart: a 3-node Zeus deployment with 3-way replication.

   - populate two "bank account" objects on node 0;
   - run a local transfer transaction on node 0 (all accesses local);
   - run the same transfer from node 2: Zeus migrates ownership of both
     accounts to node 2 (1.5-RTT ownership requests), then commits locally;
   - run a consistent read-only transaction on a backup replica;
   - crash node 0 and keep transacting on node 2;
   - finish by checking the paper's invariants on the final state. *)

module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node
module Config = Zeus_core.Config
module Value = Zeus_store.Value
module Txn = Zeus_store.Txn

let alice = 1
let bob = 2

let transfer node ~thread ~amount k =
  Node.run_write node ~thread ~exec_us:1.0
    ~body:(fun ctx commit ->
      Node.read ctx alice (fun a ->
          Node.read ctx bob (fun b ->
              Node.write ctx alice (Value.of_int (Value.to_int a - amount)) (fun () ->
                  Node.write ctx bob (Value.of_int (Value.to_int b + amount)) (fun () ->
                      commit ())))))
    k

let balance_sum node ~thread k =
  Node.run_read node ~thread
    ~body:(fun ctx commit ->
      Node.read ctx alice (fun a ->
          Node.read ctx bob (fun b ->
              let sum = Value.to_int a + Value.to_int b in
              commit ();
              k sum)))
    (fun _ -> ())

let () =
  let config = { Config.default with Config.nodes = 3; record_history = true } in
  let cluster = Cluster.create ~config () in
  Cluster.populate cluster ~key:alice ~owner:0 (Value.of_int 100);
  Cluster.populate cluster ~key:bob ~owner:0 (Value.of_int 100);

  let n0 = Cluster.node cluster 0 and n2 = Cluster.node cluster 2 in

  Printf.printf "== local transaction on node 0 ==\n";
  transfer n0 ~thread:0 ~amount:10 (fun outcome ->
      Printf.printf "  transfer(10): %s\n"
        (match outcome with Txn.Committed -> "committed" | Txn.Aborted _ -> "aborted"));
  Cluster.run_quiesce cluster ~max_us:10_000.0 ();

  Printf.printf "== remote transaction on node 2 (triggers ownership) ==\n";
  transfer n2 ~thread:0 ~amount:25 (fun outcome ->
      Printf.printf "  transfer(25): %s\n"
        (match outcome with Txn.Committed -> "committed" | Txn.Aborted _ -> "aborted"));
  Cluster.run_quiesce cluster ~max_us:10_000.0 ();
  Printf.printf "  node2 now %s of 'alice'\n"
    (match Node.role n2 alice with
    | Some Zeus_store.Types.Owner -> "owner"
    | Some Zeus_store.Types.Reader -> "reader"
    | None -> "non-replica");

  Printf.printf "== read-only transaction on a backup (node 1) ==\n";
  balance_sum (Cluster.node cluster 1) ~thread:0 (fun sum ->
      Printf.printf "  alice + bob = %d (expected 200)\n" sum);
  Cluster.run_quiesce cluster ~max_us:10_000.0 ();

  Printf.printf "== crash node 0; node 2 keeps transacting ==\n";
  Cluster.kill cluster 0;
  Cluster.run_quiesce cluster ~max_us:20_000.0 ();
  transfer n2 ~thread:0 ~amount:5 (fun outcome ->
      Printf.printf "  transfer(5) after crash: %s\n"
        (match outcome with Txn.Committed -> "committed" | Txn.Aborted _ -> "aborted"));
  Cluster.run_quiesce cluster ~max_us:50_000.0 ();

  (match Cluster.check_invariants cluster with
  | Ok () -> Printf.printf "== invariants hold ==\n"
  | Error msg -> Printf.printf "== INVARIANT VIOLATION: %s ==\n" msg);
  Printf.printf "committed=%d aborted=%d ro=%d ownership requests won by n2=%d\n"
    (Cluster.total_committed cluster)
    (Cluster.total_aborted cluster)
    (Cluster.total_ro_committed cluster)
    (Zeus_ownership.Agent.requests_won (Node.ownership_agent n2));
  ignore n0
