examples/handover_demo.mli:
