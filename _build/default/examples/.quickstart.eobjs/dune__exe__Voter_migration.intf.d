examples/voter_migration.mli:
