examples/session_routing.mli:
