examples/quickstart.mli:
