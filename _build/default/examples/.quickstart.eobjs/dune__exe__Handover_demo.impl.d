examples/handover_demo.ml: List Printf Zeus_core Zeus_ownership Zeus_store
