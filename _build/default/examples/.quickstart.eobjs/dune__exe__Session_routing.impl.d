examples/session_routing.ml: List Printf Zeus_lb Zeus_net Zeus_sim
