examples/quickstart.ml: Printf Zeus_core Zeus_ownership Zeus_store
