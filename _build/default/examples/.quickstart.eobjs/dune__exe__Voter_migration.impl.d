examples/voter_migration.ml: Printf Zeus_core Zeus_ownership Zeus_sim Zeus_store
