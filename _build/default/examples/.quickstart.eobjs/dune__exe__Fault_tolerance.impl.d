examples/fault_tolerance.ml: Format List Option Printf Zeus_core Zeus_sim Zeus_store
