(* Application-level load balancing demo (§3.1).

   Zeus assumes an application-level load balancer that forwards all
   requests with the same key to the same server — that is what makes
   ownership stick.  The paper builds it on a Hermes-based replicated KV;
   so do we: two balancer nodes share a key→backend map with linearizable
   writes and local reads.

   The demo routes a stream of requests through both balancers, shows that
   assignments are sticky and shared, re-pins a hot key (the Voter
   popularity scenario), and scales the backend set out. *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module Balancer = Zeus_lb.Balancer

let () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~nodes:2 Fabric.default_config in
  let transport = Transport.create fabric in
  let backends = [ 10; 11; 12 ] in
  let mk node = Balancer.create ~node ~lb_nodes:[ 0; 1 ] ~backends transport in
  let b0 = mk 0 and b1 = mk 1 in
  Transport.set_handler transport 0 (fun ~src p -> ignore (Balancer.handle b0 ~src p));
  Transport.set_handler transport 1 (fun ~src p -> ignore (Balancer.handle b1 ~src p));

  let route balancer name key =
    Balancer.route balancer ~key (fun dst ->
        Printf.printf "  %s routes key %d -> backend %d\n" name key dst);
    Engine.run engine
  in

  Printf.printf "== first sight assigns, then sticks ==\n";
  route b0 "balancer0" 7;
  route b0 "balancer0" 7;
  Printf.printf "== the peer balancer sees the same assignment ==\n";
  route b1 "balancer1" 7;
  Printf.printf "== more keys spread over the backends ==\n";
  List.iter (fun k -> route b0 "balancer0" k) [ 1; 2; 3; 4 ];

  Printf.printf "== operator re-pins hot key 7 to backend 12 ==\n";
  Balancer.reassign b0 ~key:7 12 (fun () -> ());
  Engine.run engine;
  route b1 "balancer1" 7;

  Printf.printf "== scale-out: backend 13 joins; new keys may land on it ==\n";
  Balancer.set_backends b0 (backends @ [ 13 ]);
  Balancer.set_backends b1 (backends @ [ 13 ]);
  List.iter (fun k -> route b1 "balancer1" k) [ 21; 22; 23; 24; 25 ];

  Printf.printf "routing table: %d keys; balancer0 %d hits / %d misses\n"
    (Zeus_lb.Hermes.keys (Balancer.hermes b0))
    (Balancer.hits b0) (Balancer.misses b0)
