(* Popularity-shift demo (§2.2, §8.4).

   A contestant becomes hot on node 0.  Zeus moves her object (and her
   voters' history objects) to a less-loaded node while votes keep
   flowing; the ownership protocol does the move in 1.5-RTT steps without
   ever stopping transaction processing. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

let contestant = 0
let voters = 500
let voter v = 1 + v

let () =
  let cluster = Cluster.create ~config:{ Config.default with Config.nodes = 3 } () in
  let engine = Cluster.engine cluster in
  let rng = Engine.fork_rng engine in
  Cluster.populate cluster ~key:contestant ~owner:0 (Value.of_int 0);
  for v = 0 to voters - 1 do
    Cluster.populate cluster ~key:(voter v) ~owner:0 (Value.of_int 0)
  done;

  (* Hot traffic: one dedicated thread votes continuously at wherever the
     load balancer pins the contestant. *)
  let hot_loc = ref 0 in
  let votes = ref 0 in
  let stop = 30_000.0 in
  let rec vote seq =
    if Engine.now engine < stop then
      Node.run_write (Cluster.node cluster !hot_loc) ~thread:0 ~exec_us:0.5
        ~body:(fun ctx commit ->
          Node.read_write ctx contestant
            (fun v -> Value.of_int (Value.to_int v + 1))
            (fun _ ->
              Node.read_write ctx (voter (Zeus_sim.Rng.int rng voters))
                (fun v -> Value.of_int (Value.to_int v + 1))
                (fun _ -> commit ())))
        (fun outcome ->
          if outcome = Zeus_store.Txn.Committed then incr votes;
          vote (seq + 1))
  in
  ignore (Engine.schedule engine ~after:1.0 (fun () -> vote 0));

  (* At t = 10 ms the operator re-pins the hot contestant to node 1: the
     first vote for each object there acquires its ownership. *)
  ignore
    (Engine.schedule engine ~after:10_000.0 (fun () ->
         Printf.printf "[%5.1f ms] load balancer re-pins hot traffic to node 1\n"
           (Engine.now engine /. 1_000.0);
         hot_loc := 1));

  (* progress reports *)
  let rec report () =
    if Engine.now engine < stop then begin
      let n1 = Cluster.node cluster 1 in
      Printf.printf
        "[%5.1f ms] votes=%6d  ownership transfers to node 1 so far: %5d\n"
        (Engine.now engine /. 1_000.0)
        !votes
        (Zeus_ownership.Agent.requests_won (Node.ownership_agent n1));
      ignore (Engine.schedule engine ~after:5_000.0 report)
    end
  in
  ignore (Engine.schedule engine ~after:5_000.0 report);

  Cluster.run cluster ~until_us:(stop +. 5_000.0);
  Printf.printf "total committed votes: %d\n" !votes;
  Printf.printf "contestant total: %d (must equal committed votes)\n"
    (match
       Zeus_store.Table.find (Node.table (Cluster.node cluster 1)) contestant
     with
    | Some o -> Value.to_int o.Zeus_store.Obj.data
    | None -> -1);
  match Cluster.check_invariants cluster with
  | Ok () -> Printf.printf "invariants hold\n"
  | Error m -> Printf.printf "INVARIANT VIOLATION: %s\n" m
