(* Command-line front end.

     zeus_cli list                 # show reproducible experiments
     zeus_cli run fig8 [--quick]   # regenerate one table/figure
     zeus_cli run all [--quick]    # the whole evaluation
     zeus_cli bench smallbank --nodes 3 --remote 0.02
                                   # one-off Zeus throughput measurement *)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small populations and short runs.")

(* ---- list ---- *)

let list_cmd =
  let run () =
    Printf.printf "%-10s %s\n" "id" "description";
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-10s %s\n" id descr)
      Zeus_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures.")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see $(b,list)) or $(b,all).")
  in
  let run quick id =
    if id = "all" then begin
      Zeus_experiments.Experiments.run_all ~quick;
      `Ok ()
    end
    else if Zeus_experiments.Experiments.run_one ~quick id then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "unknown experiment %S; known: all, %s" id
            (String.concat ", " (Zeus_experiments.Experiments.names ())) )
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate one of the paper's tables/figures (or $(b,all)).")
    Term.(ret (const run $ quick $ id))

(* ---- bench ---- *)

let bench_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some (enum [ ("smallbank", `Smallbank); ("tatp", `Tatp) ])) None
      & info [] ~docv:"WORKLOAD" ~doc:"smallbank or tatp.")
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Cluster size.") in
  let remote =
    Arg.(
      value
      & opt float 0.0
      & info [ "remote" ] ~doc:"Fraction of write transactions with drifted accesses.")
  in
  let duration =
    Arg.(value & opt float 15_000.0 & info [ "duration-us" ] ~doc:"Measured window.")
  in
  let run workload nodes remote duration =
    let config = { Zeus_core.Config.default with Zeus_core.Config.nodes } in
    let cluster = Zeus_core.Cluster.create ~config () in
    let rng = Zeus_sim.Engine.fork_rng (Zeus_core.Cluster.engine cluster) in
    let issue, name =
      match workload with
      | `Smallbank ->
        let w =
          Zeus_workload.Smallbank.create ~accounts_per_node:10_000 ~nodes
            ~remote_frac:remote rng
        in
        Zeus_core.Cluster.populate_n cluster ~n:(Zeus_workload.Smallbank.total_keys w)
          ~owner_of:(fun k -> Zeus_workload.Smallbank.home_of_key w k)
          (fun _ -> Bytes.copy Zeus_workload.Smallbank.initial_value);
        ( (fun node ~thread -> Zeus_workload.Smallbank.gen w ~home:(Zeus_core.Node.id node) |> fun s -> (s, thread)),
          "smallbank" )
      | `Tatp ->
        let w =
          Zeus_workload.Tatp.create ~subscribers_per_node:10_000 ~nodes
            ~remote_frac:remote rng
        in
        Zeus_core.Cluster.populate_n cluster ~n:(Zeus_workload.Tatp.total_keys w)
          ~owner_of:(fun k -> Zeus_workload.Tatp.home_of_key w k)
          (fun _ -> Bytes.copy Zeus_workload.Tatp.initial_value);
        ( (fun node ~thread -> Zeus_workload.Tatp.gen w ~home:(Zeus_core.Node.id node) |> fun s -> (s, thread)),
          "tatp" )
    in
    let r =
      Zeus_workload.Driver.run cluster ~warmup_us:2_000.0 ~duration_us:duration
        ~issue:(fun node ~thread ~seq:_ done_ ->
          let spec, thread = issue node ~thread in
          Zeus_workload.Spec.run_on_zeus node ~thread spec (fun o ->
              done_ (o = Zeus_store.Txn.Committed)))
        ()
    in
    Format.printf "%s on %d nodes (remote %.1f%%): %a@." name nodes (100.0 *. remote)
      Zeus_workload.Driver.pp_result r
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"One-off Zeus throughput measurement.")
    Term.(const run $ workload $ nodes $ remote $ duration)

let () =
  let doc = "Zeus: locality-aware distributed transactions (EuroSys '21 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "zeus_cli" ~doc) [ list_cmd; run_cmd; bench_cmd ]))
