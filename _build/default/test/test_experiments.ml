(* Smoke tests for the experiment harness itself: the registry resolves,
   quick runs complete, and the scale presets are sane.  (The heavyweight
   figures run in the bench, not here.) *)

let tc = Helpers.tc
let check = Alcotest.check

let registry_ids () =
  let ids = Zeus_experiments.Experiments.names () in
  List.iter
    (fun required ->
      if not (List.mem required ids) then Alcotest.failf "missing experiment %s" required)
    [
      "table2"; "verify"; "locality"; "fig7"; "fig8"; "fig9"; "fig10-12";
      "fig13-15"; "tpcc"; "ablations";
    ]

let unknown_id_rejected () =
  check Alcotest.bool "unknown id" false
    (Zeus_experiments.Experiments.run_one ~quick:true "nope")

let scales () =
  let q = Zeus_experiments.Exp.scale_of ~quick:true in
  let f = Zeus_experiments.Exp.scale_of ~quick:false in
  check Alcotest.bool "quick smaller" true
    (q.Zeus_experiments.Exp.objects_per_node < f.Zeus_experiments.Exp.objects_per_node);
  check Alcotest.bool "quick shorter" true
    (q.Zeus_experiments.Exp.duration_us < f.Zeus_experiments.Exp.duration_us)

let table2_runs () =
  check Alcotest.bool "table2" true
    (Zeus_experiments.Experiments.run_one ~quick:true "table2")

let locality_runs () =
  check Alcotest.bool "locality" true
    (Zeus_experiments.Experiments.run_one ~quick:true "locality")

let suite =
  [
    tc "registry: all paper artifacts present" registry_ids;
    tc "registry: unknown ids rejected" unknown_id_rejected;
    tc "scales: quick < full" scales;
    tc "table2 runs" table2_runs;
    tc "locality analysis runs" locality_runs;
  ]
