(* Tests for the legacy-application models (§8.5) and their harness. *)

module Engine = Zeus_sim.Engine
module Gateway = Zeus_apps.Gateway
module Sctp = Zeus_apps.Sctp
module Nginx = Zeus_apps.Nginx
module Harness = Zeus_apps.Harness

let tc = Helpers.tc
let check = Alcotest.check

(* ---------- harness ---------- *)

let generator_rate () =
  let e = Engine.create () in
  let count = ref 0 in
  let g = Harness.Generator.create e ~rate_per_us:0.1 ~sink:(fun ~seq:_ -> incr count) in
  Harness.Generator.start g;
  Engine.run ~until:10_000.0 e;
  Harness.Generator.stop g;
  (* ~1000 arrivals expected; Poisson, allow wide band *)
  if !count < 800 || !count > 1_200 then Alcotest.failf "arrivals %d" !count

let worker_serializes () =
  let e = Engine.create () in
  let order = ref [] in
  let w =
    Harness.Worker.create e ~serve:(fun req k ->
        ignore
          (Engine.schedule e ~after:10.0 (fun () ->
               order := req :: !order;
               k ())))
  in
  Harness.Worker.push w 1;
  Harness.Worker.push w 2;
  Harness.Worker.push w 3;
  check Alcotest.int "queued behind head" 2 (Harness.Worker.queue_length w);
  Engine.run e;
  check Alcotest.(list int) "in order" [ 1; 2; 3 ] (List.rev !order);
  check Alcotest.int "completed" 3 (Harness.Worker.completed w)

(* ---------- gateway (fig 13 shape) ---------- *)

let gateway_config = { Gateway.default_config with Gateway.duration_us = 30_000.0 }

let gateway_modes_ordering () =
  let local = (Gateway.run ~config:gateway_config `No_store).Gateway.ktps in
  let redis = (Gateway.run ~config:gateway_config (`Remote_store 120.0)).Gateway.ktps in
  let zeus1 = (Gateway.run ~config:gateway_config (`Zeus 1)).Gateway.ktps in
  let zeus2 = (Gateway.run ~config:gateway_config (`Zeus 2)).Gateway.ktps in
  if redis >= 10.0 then Alcotest.failf "redis too fast: %.1f" redis;
  if Float.abs (zeus1 -. local) /. local > 0.10 then
    Alcotest.failf "zeus1 %.1f should match local %.1f" zeus1 local;
  if zeus2 < 1.3 *. zeus1 then
    Alcotest.failf "two active nodes should scale: %.1f vs %.1f" zeus2 zeus1

let gateway_offered_bound () =
  let r = Gateway.run ~config:gateway_config (`Zeus 2) in
  if r.Gateway.ktps > r.Gateway.offered_ktps +. 1.0 then
    Alcotest.fail "cannot exceed the generator"

(* ---------- sctp (fig 14 shape) ---------- *)

let sctp_config = { Sctp.default_config with Sctp.duration_us = 20_000.0 }

let sctp_zeus_slower () =
  let v = (Sctp.run ~config:sctp_config ~mode:`Vanilla 4096).Sctp.mbps in
  let z = (Sctp.run ~config:sctp_config ~mode:`Zeus 4096).Sctp.mbps in
  if z >= v then Alcotest.failf "replication cannot be free: %.0f vs %.0f" z v;
  let gap = 1.0 -. (z /. v) in
  if gap < 0.2 || gap > 0.75 then Alcotest.failf "gap %.2f out of band" gap

let sctp_gap_shrinks_with_size () =
  let gap size =
    let v = (Sctp.run ~config:sctp_config ~mode:`Vanilla size).Sctp.mbps in
    let z = (Sctp.run ~config:sctp_config ~mode:`Zeus size).Sctp.mbps in
    1.0 -. (z /. v)
  in
  let small = gap 256 and large = gap 16384 in
  if small <= large then
    Alcotest.failf "gap should shrink with size: small %.2f large %.2f" small large

let sctp_throughput_grows_with_size () =
  let t size = (Sctp.run ~config:sctp_config ~mode:`Zeus size).Sctp.mbps in
  if t 16384 <= t 256 then Alcotest.fail "bigger packets, more Mbps"

(* ---------- nginx (fig 15 shape) ---------- *)

let nginx_config = { Nginx.default_config with Nginx.phase_us = 30_000.0 }

let nginx_zeus_matches_plain () =
  let z = (Nginx.run ~config:nginx_config ~with_zeus:true ()).Nginx.total_krps in
  let p = (Nginx.run ~config:nginx_config ~with_zeus:false ()).Nginx.total_krps in
  if Float.abs (z -. p) /. p > 0.10 then
    Alcotest.failf "zeus %.1f should match plain %.1f" z p

let nginx_scales_out_and_in () =
  let r = Nginx.run ~config:nginx_config ~with_zeus:true () in
  let phase_rate lo hi =
    let pts = List.filter (fun (t, _) -> t >= lo && t < hi) r.Nginx.timeline in
    let n = List.length pts in
    if n = 0 then 0.0
    else List.fold_left (fun a (_, v) -> a +. v) 0.0 pts /. float_of_int n
  in
  let p1 = phase_rate 5.0 28.0 in
  let p2 = phase_rate 35.0 58.0 in
  let p3 = phase_rate 65.0 88.0 in
  if p2 < 1.4 *. p1 then Alcotest.failf "scale-out invisible: %.1f -> %.1f" p1 p2;
  if p3 > 1.2 *. p1 then Alcotest.failf "scale-in invisible: %.1f -> %.1f" p1 p3

let suite =
  [
    tc "harness: generator rate" generator_rate;
    tc "harness: worker FIFO" worker_serializes;
    tc "gateway: mode ordering (fig13 shape)" gateway_modes_ordering;
    tc "gateway: bounded by offered load" gateway_offered_bound;
    tc "sctp: replication costs throughput" sctp_zeus_slower;
    tc "sctp: relative gap shrinks with packet size" sctp_gap_shrinks_with_size;
    tc "sctp: throughput grows with packet size" sctp_throughput_grows_with_size;
    tc "nginx: zeus matches no-datastore" nginx_zeus_matches_plain;
    tc "nginx: scale-out and scale-in visible" nginx_scales_out_and_in;
  ]
