(* Model-checking tests: bounded-exhaustive exploration of the protocol
   specifications (the stand-in for the paper's TLA+ checking, §8).
   Deeper explorations run in the bench harness ("verify" experiment). *)

module E = Zeus_model.Explorer
module O = Zeus_model.Ownership_spec
module C = Zeus_model.Commit_spec

let tc = Helpers.tc

let assert_clean name (stats : _ E.stats) ~complete =
  (match stats.E.violation with
  | Some (s, msg) ->
    Alcotest.failf "%s: %s\nstate: %s" name msg (Format.asprintf "%a" O.pp_state s)
  | None -> ());
  Alcotest.(check bool) (name ^ ": explored something") true (stats.E.explored > 100);
  if complete then
    Alcotest.(check bool)
      (name ^ ": exhausted the state space")
      true
      (stats.E.quiescent > 0)

let assert_clean_c name (stats : _ E.stats) =
  (match stats.E.violation with
  | Some (s, msg) ->
    Alcotest.failf "%s: %s\nstate: %s" name msg (Format.asprintf "%a" C.pp_state s)
  | None -> ());
  Alcotest.(check bool) (name ^ ": explored something") true (stats.E.explored > 100)

let ownership_no_faults () =
  (* two racing requesters, healthy network: fully exhaustive *)
  let config = { O.default_config with O.crashable = []; dup_budget = 0 } in
  let stats = O.explore ~config ~max_states:400_000 () in
  assert_clean "ownership/contention" stats ~complete:true;
  Alcotest.(check bool) "complete" true (stats.E.explored < 400_000)

let ownership_duplication () =
  let config = { O.default_config with O.crashable = []; dup_budget = 1 } in
  let stats = O.explore ~config ~max_states:700_000 () in
  assert_clean "ownership/duplication" stats ~complete:true;
  Alcotest.(check bool) "complete" true (stats.E.explored < 700_000)

let ownership_single_requester_crashes () =
  (* one requester, any of {owner, driver/requester} may crash: exhaustive *)
  let config = { O.default_config with O.requesters = [ 3 ]; crashable = [ 0; 1 ] } in
  let stats = O.explore ~config ~max_states:400_000 () in
  assert_clean "ownership/crash" stats ~complete:true;
  Alcotest.(check bool) "complete" true (stats.E.explored < 400_000)

let ownership_contention_with_crash () =
  (* the full default model: two racing requesters x crash of the owner or
     a requester, ~60k states — fully exhaustive *)
  let stats = O.explore ~max_states:400_000 () in
  assert_clean "ownership/contention+crash" stats ~complete:true;
  Alcotest.(check bool) "complete" true (stats.E.explored < 400_000)

let commit_no_faults () =
  let config = { C.default_config with C.crash = false; dup_budget = 0 } in
  let stats = C.explore ~config ~max_states:400_000 () in
  assert_clean_c "commit/pipeline" stats;
  Alcotest.(check bool) "complete" true (stats.E.explored < 400_000)

let commit_duplication () =
  let config = { C.default_config with C.crash = false; dup_budget = 1 } in
  let stats = C.explore ~config ~max_states:400_000 () in
  assert_clean_c "commit/duplication" stats

let commit_crash () =
  let config = { C.default_config with C.crash = true } in
  let stats = C.explore ~config ~max_states:400_000 () in
  assert_clean_c "commit/crash-replay" stats

let commit_longer_pipeline () =
  let config = { C.default_config with C.txns = [ `Y; `XY; `X; `XY ]; crash = false } in
  let stats = C.explore ~config ~max_states:400_000 () in
  assert_clean_c "commit/longer-pipeline" stats

let suite =
  [
    tc "ownership: contention, no faults (exhaustive)" ownership_no_faults;
    tc "ownership: with duplication (exhaustive)" ownership_duplication;
    tc "ownership: crashes, single requester (exhaustive)"
      ownership_single_requester_crashes;
    tc "ownership: contention + crash (exhaustive)" ownership_contention_with_crash;
    tc "commit: pipelined, partial streams (exhaustive)" commit_no_faults;
    tc "commit: with duplication" commit_duplication;
    tc "commit: coordinator crash + replay" commit_crash;
    tc "commit: longer pipeline" commit_longer_pipeline;
  ]
