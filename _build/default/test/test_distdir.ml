(* Tests for the distributed (consistent-hashing) directory of §6.2. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

let tc = Helpers.tc
let check = Alcotest.check

let dist_config ?(nodes = 6) () =
  { Config.default with Config.nodes; distributed_directory = true }

let placement_properties () =
  let config = dist_config () in
  let sets = List.init 500 (fun key -> Config.dir_nodes_for config ~key) in
  List.iter
    (fun set ->
      check Alcotest.int "replica count" config.Config.dir_replicas (List.length set);
      check Alcotest.int "no duplicates" (List.length set)
        (List.length (List.sort_uniq compare set));
      List.iter
        (fun d -> if d < 0 || d >= 6 then Alcotest.failf "node %d out of range" d)
        set)
    sets;
  (* every node hosts directory state for some keys *)
  let hosts = Hashtbl.create 8 in
  List.iter (fun set -> List.iter (fun d -> Hashtbl.replace hosts d ()) set) sets;
  check Alcotest.int "all nodes participate" 6 (Hashtbl.length hosts);
  (* deterministic *)
  check Alcotest.(list int) "stable" (Config.dir_nodes_for config ~key:77)
    (Config.dir_nodes_for config ~key:77)

let acquire_works () =
  let c = Cluster.create ~config:{ (dist_config ()) with Config.record_history = true } () in
  for k = 0 to 49 do
    Cluster.populate c ~key:k ~owner:(k mod 6) (Value.of_int k)
  done;
  (* every node steals a few keys homed elsewhere *)
  for k = 0 to 49 do
    let thief = (k + 3) mod 6 in
    Helpers.expect_committed "remote write"
      (Helpers.write_txn c thief ~keys:[ k ] ~value:(Value.of_int (k + 100)))
  done;
  Helpers.expect_invariants c

let mixed_load_with_crash () =
  let config = { (dist_config ()) with Config.record_history = true } in
  let c = Cluster.create ~config () in
  for k = 0 to 29 do
    Cluster.populate c ~key:k ~owner:(k mod 6) (Value.of_int 0)
  done;
  let engine = Cluster.engine c in
  let rng = Engine.fork_rng engine in
  for home = 0 to 5 do
    let node = Cluster.node c home in
    let rec chain i =
      if i < 25 && Node.is_alive node then
        Node.run_write node ~thread:0
          ~body:(fun ctx commit ->
            Node.read_write ctx (Zeus_sim.Rng.int rng 30)
              (fun v -> Value.of_int (Value.to_int v + 1))
              (fun _ -> commit ()))
          (fun _ -> chain (i + 1))
    in
    ignore (Engine.schedule engine ~after:(float_of_int home) (fun () -> chain 0))
  done;
  ignore (Engine.schedule engine ~after:100.0 (fun () -> Cluster.kill c 4));
  Helpers.drain c ~max_us:5_000_000.0;
  Helpers.expect_invariants c

let directory_load_spreads () =
  (* low-locality traffic: with the single directory only 3 nodes drive
     requests; distributed, all 6 share the load *)
  let run distributed =
    let config =
      { Config.default with Config.nodes = 6; distributed_directory = distributed }
    in
    let c = Cluster.create ~config () in
    for k = 0 to 199 do
      Cluster.populate c ~key:k ~owner:(k mod 6) (Value.of_int 0)
    done;
    let engine = Cluster.engine c in
    for home = 0 to 5 do
      let node = Cluster.node c home in
      let rec chain i =
        if i < 40 then
          Node.run_write node ~thread:0
            ~body:(fun ctx commit ->
              Node.read_write ctx (((home + 1) * 33 + i * 7) mod 200)
                (fun v -> Value.of_int (Value.to_int v + 1))
                (fun _ -> commit ()))
            (fun _ -> chain (i + 1))
      in
      ignore (Engine.schedule engine ~after:(float_of_int home) (fun () -> chain 0))
    done;
    Helpers.drain c ~max_us:5_000_000.0;
    List.map
      (fun i ->
        Zeus_ownership.Agent.requests_driven (Node.ownership_agent (Cluster.node c i)))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let single = run false and dist = run true in
  check Alcotest.int "single: non-directory nodes drive nothing" 0
    (List.nth single 3 + List.nth single 4 + List.nth single 5);
  let driving_nodes = List.length (List.filter (fun d -> d > 0) dist) in
  if driving_nodes < 5 then
    Alcotest.failf "distributed directory should spread drivers, got %d nodes"
      driving_nodes

let rejoin_with_distributed_directory () =
  let c = Cluster.create ~config:(dist_config ~nodes:4 ()) () in
  for k = 0 to 9 do
    Cluster.populate c ~key:k ~owner:(k mod 4) (Value.of_int 0)
  done;
  Cluster.kill c 2;
  Helpers.drain c;
  Helpers.expect_committed "write while down"
    (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 5));
  Cluster.rejoin c 2;
  Helpers.drain c;
  Helpers.expect_committed "write from rejoined node"
    (Helpers.write_txn c 2 ~keys:[ 1 ] ~value:(Value.of_int 6));
  Helpers.expect_invariants c

let suite =
  [
    tc "placement: hashed, balanced, deterministic" placement_properties;
    tc "ownership works across hashed directories" acquire_works;
    tc "mixed load + crash under distributed directory" mixed_load_with_crash;
    tc "directory driver load spreads (§6.2)" directory_load_spreads;
    tc "rejoin under distributed directory" rejoin_with_distributed_directory;
  ]
