(* Tests for the baseline OCC/2PC distributed-commit engine. *)

module Engine = Zeus_sim.Engine
module B = Zeus_baseline
module Spec = Zeus_workload.Spec

let tc = Helpers.tc
let check = Alcotest.check

let setup ?(profile = B.Profile.fasst) () =
  B.Engine.create ~profile ~primary_of:(fun k -> k mod 3) ()

let submit_sync eng ~home spec =
  let result = ref None in
  B.Engine.submit eng ~home spec (fun ok -> result := Some ok);
  Engine.run (B.Engine.engine eng);
  match !result with Some ok -> ok | None -> Alcotest.fail "txn never finished"

let local_txn_commits () =
  let eng = setup () in
  check Alcotest.bool "local" true (submit_sync eng ~home:0 (Spec.write_txn [ 0; 3 ]));
  check Alcotest.int "committed" 1 (B.Engine.committed eng)

let remote_txn_commits () =
  let eng = setup () in
  check Alcotest.bool "remote" true (submit_sync eng ~home:0 (Spec.write_txn [ 1; 2 ]));
  check Alcotest.bool "reads too" true
    (submit_sync eng ~home:0 (Spec.write_txn ~reads:[ 4; 5 ] [ 1 ]))

let read_only_txn () =
  let eng = setup () in
  check Alcotest.bool "ro" true (submit_sync eng ~home:0 (Spec.read_txn [ 1; 2; 3 ]))

let conflicting_txns_serialize () =
  (* many concurrent increments of the same remote keys: all must commit
     eventually (retries) and the version must equal the commit count *)
  let eng = setup () in
  let e = B.Engine.engine eng in
  let remaining = ref 30 in
  for i = 0 to 29 do
    ignore
      (Engine.schedule e ~after:(float_of_int i *. 0.1) (fun () ->
           B.Engine.submit eng ~home:(i mod 3) (Spec.write_txn [ 7 ]) (fun ok ->
               if ok then decr remaining)))
  done;
  Engine.run e;
  check Alcotest.int "all committed after retries" 0 !remaining

let profiles_all_run () =
  List.iter
    (fun profile ->
      let eng = setup ~profile () in
      check Alcotest.bool profile.B.Profile.name true
        (submit_sync eng ~home:0 (Spec.write_txn ~reads:[ 1 ] [ 2; 4 ])))
    [ B.Profile.fasst; B.Profile.farm; B.Profile.drtm ]

let load_run_produces_throughput () =
  let eng = setup () in
  let rng = Zeus_sim.Rng.create 4L in
  let r =
    B.Engine.run_load eng ~coroutines:8 ~warmup_us:200.0 ~duration_us:2_000.0
      ~gen:(fun ~home ->
        Spec.write_txn [ (home + Zeus_sim.Rng.int rng 100) * 3 ])
      ()
  in
  check Alcotest.bool "nonzero throughput" true (r.Zeus_workload.Driver.mtps > 0.0)

let remote_txns_slower_than_local () =
  let profile = B.Profile.fasst in
  let local = B.Engine.create ~profile ~primary_of:(fun _ -> 0) () in
  let spread = B.Engine.create ~profile ~primary_of:(fun k -> k mod 3) () in
  let run eng home =
    let r =
      B.Engine.run_load eng ~coroutines:4 ~warmup_us:200.0 ~duration_us:3_000.0
        ~gen:(fun ~home:_ -> Spec.write_txn [ 1; 2 ])
      ()
    in
    ignore home;
    r.Zeus_workload.Driver.mtps
  in
  (* all keys on node 0: node 0's txns are entirely local *)
  let t_local = run local 0 in
  let t_remote = run spread 0 in
  if t_local <= t_remote then
    Alcotest.failf "local %.3f should beat remote %.3f" t_local t_remote

let suite =
  [
    tc "local transaction" local_txn_commits;
    tc "remote transaction" remote_txn_commits;
    tc "read-only transaction" read_only_txn;
    tc "conflicting transactions serialize" conflicting_txns_serialize;
    tc "all three profiles run" profiles_all_run;
    tc "closed-loop load" load_run_produces_throughput;
    tc "remote transactions cost more" remote_txns_slower_than_local;
  ]
