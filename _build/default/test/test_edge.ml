(* Additional edge cases across the stack. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Table = Zeus_store.Table
module Fabric = Zeus_net.Fabric

let tc = Helpers.tc
let check = Alcotest.check

(* Determinism: the same seed must produce the exact same event count and
   committed count — the property every debugging session depends on. *)
let simulation_deterministic () =
  let run () =
    let c = Helpers.default_cluster ~seed:77L () in
    for k = 0 to 9 do
      Cluster.populate c ~key:k ~owner:(k mod 3) (Value.of_int 0)
    done;
    let engine = Cluster.engine c in
    for n = 0 to 2 do
      let node = Cluster.node c n in
      let rec chain i =
        if i < 15 then
          Node.run_write node ~thread:0
            ~body:(fun ctx commit ->
              Node.read_write ctx (i mod 10)
                (fun v -> Value.of_int (Value.to_int v + 1))
                (fun _ -> commit ()))
            (fun _ -> chain (i + 1))
      in
      ignore (Engine.schedule engine ~after:(float_of_int n) (fun () -> chain 0))
    done;
    Helpers.drain c;
    (Engine.events_dispatched engine, Cluster.total_committed c)
  in
  let a = run () and b = run () in
  check Alcotest.(pair int int) "identical runs" a b

(* Replication degree 1: commits are durable immediately, no messages. *)
let degree_one_no_replication () =
  let config =
    { Config.default with Config.nodes = 3; replication_degree = 1 }
  in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Helpers.drain c;
  let before = Fabric.messages_sent (Cluster.fabric c) in
  Helpers.expect_committed "w" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 1));
  check Alcotest.int "no replication traffic" before
    (Fabric.messages_sent (Cluster.fabric c));
  match Table.find (Node.table (Cluster.node c 0)) 1 with
  | Some o ->
    check Alcotest.bool "immediately valid" true
      (o.Zeus_store.Obj.t_state = Zeus_store.Types.T_valid)
  | None -> Alcotest.fail "object missing"

(* auto_trim off: a non-replica acquire leaves the grown replica set. *)
let no_trim_keeps_extra_replica () =
  let config =
    {
      Config.default with
      Config.nodes = 4;
      replication_degree = 2;
      auto_trim = false;
    }
  in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  let r = ref None in
  Node.acquire_ownership (Cluster.node c 3) 1 (fun x -> r := Some x);
  Helpers.drain c;
  (match !r with Some (Ok ()) -> () | _ -> Alcotest.fail "acquire");
  let holders =
    List.filter (fun i -> Table.mem (Node.table (Cluster.node c i)) 1) [ 0; 1; 2; 3 ]
  in
  check Alcotest.int "replica set grew and stayed" 3 (List.length holders)

(* A demoted owner still serves consistent read-only transactions. *)
let demoted_owner_serves_reads () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 9);
  Helpers.expect_committed "remote write moves ownership"
    (Helpers.write_txn c 2 ~keys:[ 1 ] ~value:(Value.of_int 10));
  check Alcotest.string "demoted" "reader"
    (Helpers.role_name (Node.role (Cluster.node c 0) 1));
  check Alcotest.(option int) "reads newest value" (Some 10) (Helpers.read_value c 0 1)

(* Write transactions read a consistent snapshot even when they abort
   (opacity, §6.2): an aborting transaction never observes two keys mid
   another transaction's update. *)
let opacity_under_conflicts () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 100);
  Cluster.populate c ~key:2 ~owner:0 (Value.of_int 100);
  let n0 = Cluster.node c 0 in
  let engine = Cluster.engine c in
  let torn = ref 0 in
  (* transfers on thread 0 *)
  let rec xfer i =
    if i < 30 then
      Node.run_write n0 ~thread:0
        ~body:(fun ctx commit ->
          Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v - 1)) (fun _ ->
              Node.read_write ctx 2 (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
                  commit ())))
        (fun _ -> xfer (i + 1))
  in
  ignore (Engine.schedule engine ~after:0.0 (fun () -> xfer 0));
  (* write transactions on thread 1 reading both keys (they conflict and
     often retry; every successful read pair must sum to 200) *)
  let rec audit i =
    if i < 30 then
      Node.run_write n0 ~thread:1
        ~body:(fun ctx commit ->
          Node.read ctx 1 (fun a ->
              Node.read ctx 2 (fun b ->
                  if Value.to_int a + Value.to_int b <> 200 then incr torn;
                  commit ())))
        (fun _ -> audit (i + 1))
  in
  ignore (Engine.schedule engine ~after:0.3 (fun () -> audit 0));
  Helpers.drain c;
  check Alcotest.int "no torn snapshot inside write txns" 0 !torn

(* Ownership of a freshly freed key is refused (directory forgets it). *)
let freed_key_unknown () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  Node.run_write (Cluster.node c 0) ~thread:0
    ~body:(fun ctx commit -> Node.delete ctx 1 (fun () -> commit ()))
    (fun o -> Helpers.expect_committed "delete" o);
  Helpers.drain c;
  let r = ref None in
  Node.acquire_ownership (Cluster.node c 1) 1 (fun x -> r := Some x);
  Helpers.drain c;
  match !r with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "acquired a freed object"
  | None -> Alcotest.fail "hung"

(* A rejoined node participates again (fresh epoch). *)
let rejoin_and_write () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.kill c 2;
  Helpers.drain c;
  Helpers.expect_committed "write while down"
    (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 1));
  Cluster.rejoin c 2;
  Helpers.drain c;
  (* the rejoined node can acquire ownership and write *)
  Helpers.expect_committed "write from rejoined node"
    (Helpers.write_txn c 2 ~keys:[ 1 ] ~value:(Value.of_int 2));
  Helpers.expect_invariants c

(* Back-to-back migrations interleaved with writes at every stop. *)
let migrate_write_cycle () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  for round = 1 to 6 do
    let dst = round mod 3 in
    Helpers.expect_committed "write at new home"
      (Helpers.write_txn c dst ~keys:[ 1 ] ~value:(Value.of_int round))
  done;
  List.iter
    (fun n ->
      check Alcotest.(option int) "converged" (Some 6) (Helpers.read_value c n 1))
    [ 0; 1; 2 ];
  Helpers.expect_invariants c

(* Six-node deployment: directory is a strict subset of the nodes. *)
let six_nodes_directory_subset () =
  let config = { Config.default with Config.nodes = 6 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:4 (Value.of_int 5);
  (* node 5 is neither a directory replica nor (initially) a replica *)
  Helpers.expect_committed "far corner write"
    (Helpers.write_txn c 5 ~keys:[ 1 ] ~value:(Value.of_int 6));
  check Alcotest.string "owner" "owner"
    (Helpers.role_name (Node.role (Cluster.node c 5) 1));
  Helpers.expect_invariants c

(* Values larger than one MTU still replicate correctly. *)
let large_values_replicate () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.padded [ 0 ] ~size:16_384);
  let big = Value.padded [ 4242 ] ~size:16_384 in
  Helpers.expect_committed "big write" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:big);
  (match Table.find (Node.table (Cluster.node c 1)) 1 with
  | Some o ->
    check Alcotest.int "size preserved" 16_384 (Value.size o.Zeus_store.Obj.data);
    check Alcotest.int "content" 4242 (Value.to_int o.Zeus_store.Obj.data)
  | None -> Alcotest.fail "replica missing");
  Helpers.expect_invariants c

let suite =
  [
    tc "simulation is deterministic per seed" simulation_deterministic;
    tc "replication degree 1: immediate durability" degree_one_no_replication;
    tc "auto_trim off keeps grown replica set" no_trim_keeps_extra_replica;
    tc "demoted owner serves consistent reads" demoted_owner_serves_reads;
    tc "opacity: write txns never see torn state (§6.2)" opacity_under_conflicts;
    tc "freed keys cannot be re-acquired" freed_key_unknown;
    tc "rejoin: node participates in a new epoch" rejoin_and_write;
    tc "migrate-write cycles converge" migrate_write_cycle;
    tc "six nodes: non-directory non-replica writer" six_nodes_directory_subset;
    tc "large values replicate" large_values_replicate;
  ]
