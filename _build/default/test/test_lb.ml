(* Tests for the Hermes replicated KV and the application-level load
   balancer (§3.1). *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module Hermes = Zeus_lb.Hermes
module Balancer = Zeus_lb.Balancer
module Value = Zeus_store.Value

let tc = Helpers.tc
let check = Alcotest.check

let setup ?(nodes = 3) ?(fabric_config = Fabric.default_config) () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes fabric_config in
  let t = Transport.create f in
  let replicas = List.init nodes (fun i -> i) in
  let hs = List.map (fun n -> Hermes.create ~node:n ~replicas t) replicas in
  List.iteri
    (fun i h ->
      Transport.set_handler t i (fun ~src payload -> ignore (Hermes.handle h ~src payload)))
    hs;
  (e, t, Array.of_list hs)

let write_then_read_everywhere () =
  let e, _, hs = setup () in
  let committed = ref false in
  Hermes.write hs.(0) ~key:1 (Value.of_int 11) (fun () -> committed := true);
  Engine.run e;
  check Alcotest.bool "committed" true !committed;
  Array.iter
    (fun h ->
      check Alcotest.(option int) "local read" (Some 11)
        (Option.map Value.to_int (Hermes.read h 1)))
    hs

let read_blocked_while_invalid () =
  let e, _, hs = setup () in
  Hermes.write hs.(0) ~key:1 (Value.of_int 1) (fun () -> ());
  Engine.run e;
  (* start a write; before it commits, replicas must not serve the key *)
  Hermes.write hs.(0) ~key:1 (Value.of_int 2) (fun () -> ());
  check Alcotest.(option int) "writer invalid during write" None
    (Option.map Value.to_int (Hermes.read hs.(0) 1));
  Engine.run e;
  check Alcotest.(option int) "valid after" (Some 2)
    (Option.map Value.to_int (Hermes.read hs.(0) 1))

let concurrent_writes_converge () =
  let e, _, hs = setup () in
  Hermes.write hs.(0) ~key:1 (Value.of_int 100) (fun () -> ());
  Hermes.write hs.(1) ~key:1 (Value.of_int 200) (fun () -> ());
  Hermes.write hs.(2) ~key:1 (Value.of_int 300) (fun () -> ());
  Engine.run e;
  let v0 = Option.map Value.to_int (Hermes.read hs.(0) 1) in
  let v1 = Option.map Value.to_int (Hermes.read hs.(1) 1) in
  let v2 = Option.map Value.to_int (Hermes.read hs.(2) 1) in
  check Alcotest.(option int) "0=1" v0 v1;
  check Alcotest.(option int) "1=2" v1 v2;
  check Alcotest.bool "some value" true (v0 <> None)

let writes_from_any_replica () =
  let e, _, hs = setup () in
  Hermes.write hs.(2) ~key:9 (Value.of_int 5) (fun () -> ());
  Engine.run e;
  check Alcotest.(option int) "replica-coordinated write" (Some 5)
    (Option.map Value.to_int (Hermes.read hs.(0) 9))

let survives_loss () =
  let e, _, hs =
    setup ~fabric_config:{ Fabric.default_config with Fabric.loss_prob = 0.3 } ()
  in
  for i = 1 to 20 do
    Hermes.write hs.(i mod 3) ~key:i (Value.of_int i) (fun () -> ())
  done;
  Engine.run e;
  for i = 1 to 20 do
    check Alcotest.(option int)
      (Printf.sprintf "key %d" i)
      (Some i)
      (Option.map Value.to_int (Hermes.read hs.(0) i))
  done

let read_wait_retries () =
  let e, _, hs = setup () in
  Hermes.write hs.(0) ~key:1 (Value.of_int 1) (fun () -> ());
  Engine.run e;
  Hermes.write hs.(0) ~key:1 (Value.of_int 2) (fun () -> ());
  let got = ref None in
  Hermes.read_wait hs.(0) 1 (fun v -> got := v);
  Engine.run e;
  check Alcotest.(option int) "waited for validation" (Some 2)
    (Option.map Value.to_int !got)

(* ---------- balancer ---------- *)

let balancer_setup () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes:2 Fabric.default_config in
  let t = Transport.create f in
  let mk n = Balancer.create ~node:n ~lb_nodes:[ 0; 1 ] ~backends:[ 10; 11; 12 ] t in
  let b0 = mk 0 and b1 = mk 1 in
  Transport.set_handler t 0 (fun ~src p -> ignore (Balancer.handle b0 ~src p));
  Transport.set_handler t 1 (fun ~src p -> ignore (Balancer.handle b1 ~src p));
  (e, b0, b1)

let balancer_sticky () =
  let e, b0, _ = balancer_setup () in
  let first = ref None and second = ref None in
  Balancer.route b0 ~key:7 (fun d -> first := Some d);
  Engine.run e;
  Balancer.route b0 ~key:7 (fun d -> second := Some d);
  Engine.run e;
  check Alcotest.(option int) "same destination" !first !second;
  check Alcotest.int "one miss" 1 (Balancer.misses b0);
  check Alcotest.int "one hit" 1 (Balancer.hits b0)

let balancer_shared_across_lbs () =
  let e, b0, b1 = balancer_setup () in
  let d0 = ref None and d1 = ref None in
  Balancer.route b0 ~key:7 (fun d -> d0 := Some d);
  Engine.run e;
  Balancer.route b1 ~key:7 (fun d -> d1 := Some d);
  Engine.run e;
  check Alcotest.(option int) "replicated assignment" !d0 !d1

let balancer_reassign () =
  let e, b0, b1 = balancer_setup () in
  let d = ref None in
  Balancer.route b0 ~key:7 (fun x -> d := Some x);
  Engine.run e;
  Balancer.reassign b0 ~key:7 12 (fun () -> ());
  Engine.run e;
  let d' = ref None in
  Balancer.route b1 ~key:7 (fun x -> d' := Some x);
  Engine.run e;
  check Alcotest.(option int) "moved" (Some 12) !d'

let balancer_scale_set () =
  let e, b0, _ = balancer_setup () in
  Balancer.set_backends b0 [ 42 ];
  let d = ref None in
  Balancer.route b0 ~key:99 (fun x -> d := Some x);
  Engine.run e;
  check Alcotest.(option int) "new backend set" (Some 42) !d

let suite =
  [
    tc "hermes: write then read everywhere" write_then_read_everywhere;
    tc "hermes: invalid keys are not served" read_blocked_while_invalid;
    tc "hermes: concurrent writes converge" concurrent_writes_converge;
    tc "hermes: any replica coordinates" writes_from_any_replica;
    tc "hermes: survives 30% loss" survives_loss;
    tc "hermes: read_wait" read_wait_retries;
    tc "balancer: sticky routing" balancer_sticky;
    tc "balancer: assignments replicated" balancer_shared_across_lbs;
    tc "balancer: reassign" balancer_reassign;
    tc "balancer: backend set changes" balancer_scale_set;
  ]
