(* Tests for the node transaction API, the history checker, and cluster
   invariants. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module History = Zeus_core.History
module Value = Zeus_store.Value
module Txn = Zeus_store.Txn

let tc = Helpers.tc
let check = Alcotest.check

(* ---------- transaction API ---------- *)

let read_write_roundtrip () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 10);
  Helpers.expect_committed "write" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 20));
  check Alcotest.(option int) "read back" (Some 20) (Helpers.read_value c 0 1)

let read_only_on_any_replica () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 33);
  List.iter
    (fun n ->
      check Alcotest.(option int) (Printf.sprintf "replica %d" n) (Some 33)
        (Helpers.read_value c n 1))
    [ 0; 1; 2 ]

let ro_txn_costs_no_messages () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 33);
  Helpers.drain c;
  let before = Zeus_net.Fabric.messages_sent (Cluster.fabric c) in
  ignore (Helpers.read_value c 1 1);
  check Alcotest.int "no network traffic" before
    (Zeus_net.Fabric.messages_sent (Cluster.fabric c))

let local_conflict_retries () =
  (* two threads updating the same key with read-modify-write increments:
     no lost updates despite conflicts *)
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  let n0 = Cluster.node c 0 in
  let pending = ref 20 in
  (* one in-flight transaction per thread, as on real worker threads *)
  for thread = 0 to 1 do
    let rec chain i =
      if i < 10 then
        Node.run_write n0 ~thread
          ~body:(fun ctx commit ->
            Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v + 1)) (fun _ ->
                commit ()))
          (fun o ->
            Helpers.expect_committed "increment" o;
            decr pending;
            chain (i + 1))
    in
    chain 0
  done;
  Helpers.drain c;
  check Alcotest.int "all committed" 0 !pending;
  check Alcotest.(option int) "no lost updates" (Some 20) (Helpers.read_value c 0 1);
  Helpers.expect_invariants c

let abort_after_max_retries () =
  (* requesting ownership of a key whose directory entry does not exist
     aborts after bounded retries instead of hanging *)
  let c = Helpers.default_cluster () in
  let outcome = ref None in
  Node.run_write (Cluster.node c 0) ~thread:0
    ~body:(fun ctx commit -> Node.write ctx 777 (Value.of_int 1) (fun () -> commit ()))
    (fun o -> outcome := Some o);
  Helpers.drain c ~max_us:1_000_000.0;
  match !outcome with
  | Some (Txn.Aborted _) -> ()
  | Some Txn.Committed -> Alcotest.fail "committed on unknown key"
  | None -> Alcotest.fail "hung"

let insert_then_use () =
  let c = Helpers.default_cluster () in
  let n0 = Cluster.node c 0 in
  Node.run_write n0 ~thread:0
    ~body:(fun ctx commit ->
      Node.insert ctx 5 (Value.of_int 50);
      commit ())
    (fun o -> Helpers.expect_committed "insert" o);
  Helpers.drain c;
  (* another node can now take ownership of the created object *)
  Helpers.expect_committed "remote write of created object"
    (Helpers.write_txn c 2 ~keys:[ 5 ] ~value:(Value.of_int 51));
  check Alcotest.(option int) "updated" (Some 51) (Helpers.read_value c 0 5);
  Helpers.expect_invariants c

let cross_node_transfer () =
  (* the quickstart scenario as a test: transfer between accounts whose
     ownership migrates, conservation holds *)
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 100);
  Cluster.populate c ~key:2 ~owner:1 (Value.of_int 100);
  let transfer node amount =
    let done_ = ref false in
    Node.run_write (Cluster.node c node) ~thread:0
      ~body:(fun ctx commit ->
        Node.read_write ctx 1 (fun v -> Value.of_int (Value.to_int v - amount)) (fun _ ->
            Node.read_write ctx 2
              (fun v -> Value.of_int (Value.to_int v + amount))
              (fun _ -> commit ())))
      (fun o ->
        Helpers.expect_committed "transfer" o;
        done_ := true);
    Helpers.drain c;
    check Alcotest.bool "completed" true !done_
  in
  transfer 0 10;
  transfer 2 20;
  transfer 1 5;
  let a = Option.get (Helpers.read_value c 0 1) in
  let b = Option.get (Helpers.read_value c 0 2) in
  check Alcotest.int "conservation" 200 (a + b);
  Helpers.expect_invariants c

let txn_counters () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Helpers.expect_committed "w" (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 1));
  ignore (Helpers.read_value c 1 1);
  check Alcotest.int "committed" 1 (Node.committed (Cluster.node c 0));
  check Alcotest.int "ro committed" 1 (Node.ro_committed (Cluster.node c 1))

let dead_node_rejects_txns () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.kill c 0;
  Helpers.drain c;
  let outcome = ref None in
  Node.run_write (Cluster.node c 0) ~thread:0
    ~body:(fun ctx commit -> Node.write ctx 1 (Value.of_int 1) (fun () -> commit ()))
    (fun o -> outcome := Some o);
  Helpers.drain c;
  match !outcome with
  | Some (Txn.Aborted Txn.Node_dead) -> ()
  | _ -> Alcotest.fail "dead node accepted a transaction"

(* ---------- history checker ---------- *)

let history_accepts_valid () =
  let h = History.create () in
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 1) ] ~time:10.0;
  History.record_durable h ~writes:[ (1, 1) ] ~time:15.0;
  History.record_commit h ~node:0 ~reads:[ (1, 1) ] ~writes:[ (1, 2) ] ~time:20.0;
  History.record_durable h ~writes:[ (1, 2) ] ~time:25.0;
  History.record_ro h ~node:1 ~reads:[ (1, 1) ] ~time:22.0;
  match History.check h with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid history rejected: %s" e

let history_rejects_gap () =
  let h = History.create () in
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 1) ] ~time:10.0;
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 3) ] ~time:20.0;
  match History.check h with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "version gap accepted"

let history_rejects_lost_update () =
  let h = History.create () in
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 1) ] ~time:10.0;
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 2) ] ~time:20.0;
  (* a write that read version 1 but produced version 3 skipped version 2 *)
  History.record_commit h ~node:1 ~reads:[ (1, 1) ] ~writes:[ (1, 3) ] ~time:30.0;
  match History.check h with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale-read write accepted"

let history_rejects_inconsistent_snapshot () =
  let h = History.create () in
  (* key 1: v1 @10 (durable 12), v2 @20 (durable 22)
     key 2: v1 @10 (durable 12), v2 @14 (durable 16)
     reading (1@2, 2@1) is impossible: v2 of key1 exists only from t=20,
     but key2's v1 is gone after t=16 *)
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 1); (2, 1) ] ~time:10.0;
  History.record_durable h ~writes:[ (1, 1); (2, 1) ] ~time:12.0;
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (2, 2) ] ~time:14.0;
  History.record_durable h ~writes:[ (2, 2) ] ~time:16.0;
  History.record_commit h ~node:0 ~reads:[] ~writes:[ (1, 2) ] ~time:20.0;
  History.record_durable h ~writes:[ (1, 2) ] ~time:22.0;
  History.record_ro h ~node:1 ~reads:[ (1, 2); (2, 1) ] ~time:30.0;
  match History.check h with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inconsistent snapshot accepted"

let end_to_end_history_checked () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  Cluster.populate c ~key:2 ~owner:1 (Value.of_int 0);
  for i = 1 to 10 do
    Helpers.expect_committed "w1"
      (Helpers.write_txn c (i mod 3) ~keys:[ 1 ] ~value:(Value.of_int i));
    ignore (Helpers.read_value c ((i + 1) mod 3) 1);
    Helpers.expect_committed "w2"
      (Helpers.write_txn c ((i + 1) mod 3) ~keys:[ 1; 2 ] ~value:(Value.of_int i))
  done;
  (match Cluster.history c with
  | Some h ->
    check Alcotest.bool "history populated" true (History.writes h > 0);
    check Alcotest.bool "ro recorded" true (History.read_only_txns h > 0)
  | None -> Alcotest.fail "history missing");
  Helpers.expect_invariants c

let suite =
  [
    tc "write then read" read_write_roundtrip;
    tc "read-only on every replica (§5.3)" read_only_on_any_replica;
    tc "read-only transactions cost no messages" ro_txn_costs_no_messages;
    tc "local conflicts retry without lost updates" local_conflict_retries;
    tc "bounded retries then abort" abort_after_max_retries;
    tc "insert, replicate, migrate" insert_then_use;
    tc "cross-node transfers conserve money" cross_node_transfer;
    tc "counters" txn_counters;
    tc "dead node rejects transactions" dead_node_rejects_txns;
    tc "history: accepts a valid history" history_accepts_valid;
    tc "history: rejects version gaps" history_rejects_gap;
    tc "history: rejects lost updates" history_rejects_lost_update;
    tc "history: rejects inconsistent RO snapshots" history_rejects_inconsistent_snapshot;
    tc "end-to-end history checking" end_to_end_history_checked;
  ]
