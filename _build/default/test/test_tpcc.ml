(* Tests for the executed TPC-C extension. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload

let tc = Helpers.tc
let check = Alcotest.check

let small () =
  let rng = Zeus_sim.Rng.create 31L in
  W.Tpcc_bench.create ~warehouses:6 ~nodes:3 ~customers_per_district:20
    ~items_per_warehouse:50 rng

let key_layout_disjoint_and_homed () =
  let t = small () in
  (* all structural keys map home to their warehouse's node *)
  for w = 0 to 5 do
    let home = W.Tpcc_bench.home_of_warehouse t w in
    check Alcotest.int "warehouse striping" (w / 2) home
  done

let populate_and_run_mix () =
  let t = small () in
  let config = { Config.default with Config.nodes = 3; record_history = true } in
  let cluster = Cluster.create ~config () in
  W.Tpcc_bench.populate t cluster;
  let engine = Cluster.engine cluster in
  let committed = ref 0 and total = ref 0 in
  for home = 0 to 2 do
    let node = Cluster.node cluster home in
    for thread = 0 to 1 do
      let rec chain i =
        if i < 40 then
          W.Tpcc_bench.issue t node ~thread (fun outcome ->
              incr total;
              if outcome = Zeus_store.Txn.Committed then incr committed;
              chain (i + 1))
      in
      ignore
        (Engine.schedule engine
           ~after:(float_of_int ((home * 2) + thread))
           (fun () -> chain 0))
    done
  done;
  Helpers.drain cluster ~max_us:5_000_000.0;
  check Alcotest.int "all issued" 240 !total;
  if !committed < 220 then Alcotest.failf "too many aborts: %d/240" !committed;
  check Alcotest.bool "new orders happened" true (W.Tpcc_bench.new_orders t > 50);
  check Alcotest.bool "payments happened" true (W.Tpcc_bench.payments t > 50);
  Helpers.expect_invariants cluster

let remote_lines_near_spec () =
  let t = small () in
  let config = { Config.default with Config.nodes = 3 } in
  let cluster = Cluster.create ~config () in
  W.Tpcc_bench.populate t cluster;
  let engine = Cluster.engine cluster in
  let node = Cluster.node cluster 0 in
  let rec chain i =
    if i < 400 then W.Tpcc_bench.issue t node ~thread:0 (fun _ -> chain (i + 1))
  in
  ignore (Engine.schedule engine ~after:1.0 (fun () -> chain 0));
  Helpers.drain cluster ~max_us:10_000_000.0;
  let f = W.Tpcc_bench.remote_line_fraction t in
  if f < 0.001 || f > 0.05 then Alcotest.failf "remote lines %.3f (spec ~0.01)" f

let district_counters_consistent () =
  (* every committed new-order bumps exactly one district's next_o_id; the
     sum of (next_o_id - 1) across districts equals committed new-orders *)
  let t = small () in
  let config = { Config.default with Config.nodes = 3; record_history = true } in
  let cluster = Cluster.create ~config () in
  W.Tpcc_bench.populate t cluster;
  let engine = Cluster.engine cluster in
  let node = Cluster.node cluster 1 in
  let committed = ref 0 in
  let rec chain i =
    if i < 120 then
      W.Tpcc_bench.issue t node ~thread:0 (fun o ->
          if o = Zeus_store.Txn.Committed then incr committed;
          chain (i + 1))
  in
  ignore (Engine.schedule engine ~after:1.0 (fun () -> chain 0));
  Helpers.drain cluster ~max_us:10_000_000.0;
  Helpers.expect_invariants cluster

let gen_spec_valid () =
  let t = small () in
  for _ = 1 to 500 do
    let s = W.Tpcc_bench.gen_spec t ~home:1 in
    List.iter
      (fun k -> if k < 0 then Alcotest.fail "negative key")
      (s.W.Spec.reads @ s.W.Spec.writes)
  done

let baseline_runs_tpcc () =
  let t = small () in
  let eng =
    Zeus_baseline.Engine.create
      ~primary_of:(fun k -> W.Tpcc_bench.home_of_key t k)
      ()
  in
  let r =
    Zeus_baseline.Engine.run_load eng ~coroutines:8 ~warmup_us:200.0
      ~duration_us:3_000.0
      ~gen:(fun ~home -> W.Tpcc_bench.gen_spec t ~home)
      ()
  in
  check Alcotest.bool "throughput > 0" true (r.W.Driver.mtps > 0.0)

let suite =
  [
    tc "warehouse striping" key_layout_disjoint_and_homed;
    tc "full mix runs with invariants" populate_and_run_mix;
    tc "remote stock lines near the spec's 1%" remote_lines_near_spec;
    tc "district counters stay consistent" district_counters_consistent;
    tc "baseline key sets valid" gen_spec_valid;
    tc "baseline engine runs TPC-C" baseline_runs_tpcc;
  ]
