(* Tests for the lease-based membership service. *)

module Engine = Zeus_sim.Engine
module Fabric = Zeus_net.Fabric
module Transport = Zeus_net.Transport
module View = Zeus_membership.View
module Service = Zeus_membership.Service

let tc = Helpers.tc
let check = Alcotest.check

let setup ?(nodes = 3) () =
  let e = Engine.create () in
  let f = Fabric.create e ~nodes Fabric.default_config in
  let t = Transport.create f in
  let m = Service.create ~lease_us:100.0 ~detect_us:50.0 ~skew_us:2.0 t in
  (e, f, m)

let view_ops () =
  let v = View.initial ~nodes:3 in
  check Alcotest.int "epoch 0" 0 v.View.epoch;
  check Alcotest.(list int) "all live" [ 0; 1; 2 ] (View.live_list v);
  let v1 = View.without v 1 in
  check Alcotest.int "epoch bumps" 1 v1.View.epoch;
  check Alcotest.(list int) "1 dead" [ 0; 2 ] (View.live_list v1);
  check Alcotest.bool "is_live" false (View.is_live v1 1);
  let v2 = View.with_node v1 1 in
  check Alcotest.(list int) "rejoined" [ 0; 1; 2 ] (View.live_list v2);
  check Alcotest.int "epoch 2" 2 v2.View.epoch

let kill_updates_after_lease () =
  let e, f, m = setup () in
  Service.kill m 1;
  check Alcotest.bool "fabric crash immediate" false (Fabric.is_alive f 1);
  Engine.run ~until:100.0 e;
  check Alcotest.int "not yet (lease)" 0 (Service.view m).View.epoch;
  Engine.run ~until:400.0 e;
  check Alcotest.int "epoch bumped" 1 (Service.view m).View.epoch;
  check Alcotest.bool "view excludes" false (View.is_live (Service.view m) 1)

let nodes_get_view_with_skew () =
  let e, _, m = setup () in
  let seen = ref [] in
  Service.subscribe m 0 (fun v -> seen := v.View.epoch :: !seen);
  Service.subscribe m 2 (fun v -> seen := (100 + v.View.epoch) :: !seen);
  Service.kill m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.bool "node0 notified" true (List.mem 1 !seen);
  check Alcotest.bool "node2 notified" true (List.mem 101 !seen);
  check Alcotest.int "node epoch" 1 (Service.epoch_at m 0)

let dead_node_not_notified () =
  let e, _, m = setup () in
  let fired = ref false in
  Service.subscribe m 1 (fun _ -> fired := true);
  Service.kill m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.bool "dead node silent" false !fired

let rejoin_bumps_epoch () =
  let e, f, m = setup () in
  Service.kill m 1;
  Engine.run ~until:500.0 e;
  Service.rejoin m 1;
  Engine.run ~until:1_000.0 e;
  check Alcotest.int "epoch 2" 2 (Service.view m).View.epoch;
  check Alcotest.bool "alive again" true (Fabric.is_alive f 1);
  check Alcotest.bool "in view" true (View.is_live (Service.view m) 1)

let two_kills_two_epochs () =
  let e, _, m = setup () in
  Service.kill m 1;
  Engine.run ~until:500.0 e;
  Service.kill m 2;
  Engine.run ~until:1_500.0 e;
  check Alcotest.int "epoch 2" 2 (Service.view m).View.epoch;
  check Alcotest.(list int) "only node0" [ 0 ] (View.live_list (Service.view m))

let suite =
  [
    tc "view: algebra" view_ops;
    tc "kill: view installed after detection + lease" kill_updates_after_lease;
    tc "subscribers notified with skew" nodes_get_view_with_skew;
    tc "dead node gets no view" dead_node_not_notified;
    tc "rejoin" rejoin_bumps_epoch;
    tc "two failures, two epochs" two_kills_two_epochs;
  ]
