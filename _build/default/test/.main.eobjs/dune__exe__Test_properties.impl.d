test/test_properties.ml: Array Gen Helpers Int64 List Printf QCheck QCheck_alcotest Zeus_core Zeus_net Zeus_sim Zeus_store Zeus_workload
