test/test_net.ml: Alcotest Helpers List Zeus_net Zeus_sim
