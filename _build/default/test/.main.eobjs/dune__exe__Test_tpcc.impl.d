test/test_tpcc.ml: Alcotest Helpers List Zeus_baseline Zeus_core Zeus_sim Zeus_store Zeus_workload
