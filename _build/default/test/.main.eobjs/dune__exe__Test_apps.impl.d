test/test_apps.ml: Alcotest Float Helpers List Zeus_apps Zeus_sim
