test/test_workloads.ml: Alcotest Helpers List Zeus_core Zeus_sim Zeus_store Zeus_workload
