test/test_commit.ml: Alcotest Helpers List Option Printf Zeus_commit Zeus_core Zeus_net Zeus_sim Zeus_store
