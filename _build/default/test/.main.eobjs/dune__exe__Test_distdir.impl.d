test/test_distdir.ml: Alcotest Hashtbl Helpers List Zeus_core Zeus_ownership Zeus_sim Zeus_store
