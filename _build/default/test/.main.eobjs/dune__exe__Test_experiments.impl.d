test/test_experiments.ml: Alcotest Helpers List Zeus_experiments
