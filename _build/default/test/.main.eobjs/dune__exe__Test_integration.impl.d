test/test_integration.ml: Alcotest Helpers List Zeus_core Zeus_net Zeus_sim Zeus_store Zeus_workload
