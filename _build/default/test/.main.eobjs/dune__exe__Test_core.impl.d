test/test_core.ml: Alcotest Helpers List Option Printf Zeus_core Zeus_net Zeus_sim Zeus_store
