test/test_ownership.ml: Alcotest Helpers List Option Zeus_core Zeus_ownership Zeus_sim Zeus_store
