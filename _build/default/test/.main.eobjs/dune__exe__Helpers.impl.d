test/helpers.ml: Alcotest Format Option Zeus_core Zeus_store
