test/test_edge.ml: Alcotest Helpers List Zeus_core Zeus_net Zeus_sim Zeus_store
