test/main.mli:
