test/test_lb.ml: Alcotest Array Helpers List Option Printf Zeus_lb Zeus_net Zeus_sim Zeus_store
