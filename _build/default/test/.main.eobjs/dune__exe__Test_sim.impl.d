test/test_sim.ml: Alcotest Array Float Helpers Int64 List QCheck QCheck_alcotest Zeus_sim
