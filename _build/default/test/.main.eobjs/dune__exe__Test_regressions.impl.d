test/test_regressions.ml: Alcotest Helpers Int64 List Zeus_core Zeus_net Zeus_sim Zeus_store
