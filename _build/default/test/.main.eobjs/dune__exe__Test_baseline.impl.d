test/test_baseline.ml: Alcotest Helpers List Zeus_baseline Zeus_sim Zeus_workload
