test/test_smallmodel.ml: Alcotest Helpers List Printf Zeus_core Zeus_net Zeus_sim Zeus_store
