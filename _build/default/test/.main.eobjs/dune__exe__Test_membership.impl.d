test/test_membership.ml: Alcotest Helpers List Zeus_membership Zeus_net Zeus_sim
