test/test_model.ml: Alcotest Format Helpers Zeus_model
