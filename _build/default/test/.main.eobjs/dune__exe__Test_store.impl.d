test/test_store.ml: Alcotest Helpers List Obj Ots Replicas Table Txn Types Value Zeus_store
