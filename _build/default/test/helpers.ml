(* Shared test plumbing: small clusters, drains, common checks. *)

module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value
module Txn = Zeus_store.Txn

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let default_cluster ?(nodes = 3) ?(record_history = true) ?(seed = 42L) ?fabric () =
  let config =
    {
      Config.default with
      Config.nodes;
      record_history;
      seed;
      fabric = Option.value fabric ~default:Config.default.Config.fabric;
    }
  in
  Cluster.create ~config ()

let drain ?(max_us = 100_000.0) cluster = Cluster.run_quiesce cluster ~max_us ()

(* Run a write transaction to completion (drains the simulation). *)
let write_txn cluster node_id ~keys ~value =
  let node = Cluster.node cluster node_id in
  let result = ref None in
  Node.run_write node ~thread:0
    ~body:(fun ctx commit ->
      let rec go = function
        | [] -> commit ()
        | key :: rest -> Node.write ctx key value (fun () -> go rest)
      in
      go keys)
    (fun outcome -> result := Some outcome);
  drain cluster;
  match !result with
  | Some o -> o
  | None -> Alcotest.fail "write transaction never completed"

let read_raw cluster node_id key =
  let node = Cluster.node cluster node_id in
  let result = ref None in
  Node.run_read node ~thread:0
    ~body:(fun ctx commit ->
      Node.read ctx key (fun v ->
          result := Some v;
          commit ()))
    (fun _ -> ());
  drain cluster;
  !result

(* Convenience: integer-coded values, as used throughout the tests. *)
let read_value cluster node_id key = Option.map Value.to_int (read_raw cluster node_id key)

let expect_committed name outcome =
  match outcome with
  | Txn.Committed -> ()
  | Txn.Aborted reason ->
    Alcotest.failf "%s: aborted with %s" name (Format.asprintf "%a" Txn.pp_abort reason)

let expect_invariants cluster =
  match Cluster.check_invariants cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violation: %s" msg

let role_name = function
  | Some Zeus_store.Types.Owner -> "owner"
  | Some Zeus_store.Types.Reader -> "reader"
  | None -> "none"
