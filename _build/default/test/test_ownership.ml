(* Tests for the reliable ownership protocol (§4), driven through full
   clusters so the arbiters, directory and owner all participate. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Own = Zeus_ownership
module Value = Zeus_store.Value
module Types = Zeus_store.Types

let tc = Helpers.tc
let check = Alcotest.check

let acquire cluster node_id key =
  let result = ref None in
  Node.acquire_ownership (Cluster.node cluster node_id) key (fun r -> result := Some r);
  Helpers.drain cluster;
  !result

(* ---------- failure- and contention-free operation ---------- *)

let reader_acquires () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  (match acquire c 2 1 with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "acquire failed");
  check Alcotest.string "new owner" "owner" (Helpers.role_name (Node.role (Cluster.node c 2) 1));
  check Alcotest.string "old owner demoted" "reader"
    (Helpers.role_name (Node.role (Cluster.node c 0) 1));
  Helpers.expect_invariants c

let nonreplica_acquires_with_data () =
  (* 4 nodes, 2-way replication: node 3 is a non-replica and must receive
     the value inside the owner's ACK *)
  let config = { Config.default with Config.nodes = 4; replication_degree = 2 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 123);
  check Alcotest.string "initially non-replica" "none"
    (Helpers.role_name (Node.role (Cluster.node c 3) 1));
  (match acquire c 3 1 with Some (Ok ()) -> () | _ -> Alcotest.fail "acquire");
  check Alcotest.string "owns" "owner" (Helpers.role_name (Node.role (Cluster.node c 3) 1));
  check Alcotest.(option int) "data travelled" (Some 123)
    (Option.map Value.to_int
       (Option.map
          (fun o -> o.Zeus_store.Obj.data)
          (Zeus_store.Table.find (Node.table (Cluster.node c 3)) 1)))

let ownership_latency_is_1_5_rtt () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  ignore (acquire c 2 1);
  let lat = Node.ownership_latency (Cluster.node c 2) in
  let mean = Zeus_sim.Stats.Samples.mean lat in
  (* 1.5 RTT at 4 µs one-way = 12 µs, plus processing; must stay well under
     2 RTT + slack *)
  if mean < 8.0 || mean > 30.0 then Alcotest.failf "unexpected latency %f" mean

let repeated_local_use_no_requests () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  for _ = 1 to 5 do
    Helpers.expect_committed "local write"
      (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 9))
  done;
  check Alcotest.int "no ownership traffic" 0
    (Own.Agent.requests_started (Node.ownership_agent (Cluster.node c 0)))

let write_triggers_acquire_once () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  Helpers.expect_committed "remote write"
    (Helpers.write_txn c 1 ~keys:[ 1 ] ~value:(Value.of_int 6));
  check Alcotest.int "one request" 1
    (Own.Agent.requests_started (Node.ownership_agent (Cluster.node c 1)));
  (* subsequent writes are local *)
  Helpers.expect_committed "now local"
    (Helpers.write_txn c 1 ~keys:[ 1 ] ~value:(Value.of_int 7));
  check Alcotest.int "still one request" 1
    (Own.Agent.requests_started (Node.ownership_agent (Cluster.node c 1)))

let add_reader_request () =
  let config = { Config.default with Config.nodes = 4; replication_degree = 2 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  let result = ref None in
  Node.add_reader (Cluster.node c 3) 1 (fun r -> result := Some r);
  Helpers.drain c;
  (match !result with Some (Ok ()) -> () | _ -> Alcotest.fail "add_reader");
  check Alcotest.string "is reader" "reader"
    (Helpers.role_name (Node.role (Cluster.node c 3) 1));
  check Alcotest.string "owner unchanged" "owner"
    (Helpers.role_name (Node.role (Cluster.node c 0) 1));
  (* the new reader can serve read-only transactions locally *)
  check Alcotest.(option int) "ro read" (Some 5) (Helpers.read_value c 3 1)

let trim_restores_replication_degree () =
  (* non-replica acquire grows the replica set; auto-trim shrinks it back *)
  let config = { Config.default with Config.nodes = 4; replication_degree = 2 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  (match acquire c 3 1 with Some (Ok ()) -> () | _ -> Alcotest.fail "acquire");
  Helpers.drain c;
  let holders =
    List.filter
      (fun i -> Zeus_store.Table.mem (Node.table (Cluster.node c i)) 1)
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.int "back to 2 replicas" 2 (List.length holders);
  Helpers.expect_invariants c

let ping_pong_ownership () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 0);
  for i = 1 to 12 do
    let dst = i mod 3 in
    match acquire c dst 1 with
    | Some (Ok ()) -> ()
    | _ -> Alcotest.failf "acquire %d failed" i
  done;
  Helpers.expect_invariants c

(* ---------- contention ---------- *)

let concurrent_acquires_single_winner () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  let r1 = ref None and r2 = ref None in
  (* both requests start in the same microsecond through different drivers *)
  Node.acquire_ownership (Cluster.node c 1) 1 (fun r -> r1 := Some r);
  Node.acquire_ownership (Cluster.node c 2) 1 (fun r -> r2 := Some r);
  Helpers.drain c;
  let owners =
    List.filter
      (fun i -> Node.role (Cluster.node c i) 1 = Some Types.Owner)
      [ 0; 1; 2 ]
  in
  check Alcotest.int "exactly one owner" 1 (List.length owners);
  Helpers.expect_invariants c

let contention_storm () =
  let c = Helpers.default_cluster ~nodes:6 () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  let outcomes = ref [] in
  for i = 1 to 5 do
    Node.acquire_ownership (Cluster.node c i) 1 (fun r -> outcomes := r :: !outcomes)
  done;
  Helpers.drain c;
  let owners =
    List.filter
      (fun i -> Node.role (Cluster.node c i) 1 = Some Types.Owner)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  check Alcotest.int "single owner after storm" 1 (List.length owners);
  Helpers.expect_invariants c

let busy_owner_nacks () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  (* A transaction holds the object mid-execution on node 0 while node 1
     requests ownership: the owner must NACK, and the requester's
     transaction-level retry eventually wins. *)
  let n0 = Cluster.node c 0 in
  let blocked = ref false in
  Node.run_write n0 ~thread:0
    ~body:(fun ctx commit ->
      Node.write ctx 1 (Value.of_int 50) (fun () ->
          (* stall the transaction long enough for the request to arrive *)
          ignore
            (Engine.schedule (Cluster.engine c) ~after:200.0 (fun () ->
                 blocked := true;
                 commit ()))))
    (fun _ -> ());
  let result = ref None in
  ignore
    (Engine.schedule (Cluster.engine c) ~after:20.0 (fun () ->
         Node.acquire_ownership (Cluster.node c 1) 1 (fun r -> result := Some r)));
  Helpers.drain c;
  check Alcotest.bool "txn finished" true !blocked;
  (match !result with
  | Some (Error _) -> () (* NACKed while busy: acceptable *)
  | Some (Ok ()) ->
    (* or the request landed after commit+replication: then 1 owns it *)
    check Alcotest.string "eventually owner" "owner"
      (Helpers.role_name (Node.role (Cluster.node c 1) 1))
  | None -> Alcotest.fail "no outcome");
  Helpers.expect_invariants c

let unknown_key_nacked () =
  let c = Helpers.default_cluster () in
  match acquire c 1 999 with
  | Some (Error Own.Messages.Unknown_key) -> ()
  | _ -> Alcotest.fail "expected unknown-key NACK"

(* ---------- failures ---------- *)

let owner_dies_reader_takes_over () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  Helpers.expect_committed "seed write"
    (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 42));
  Cluster.kill c 0;
  Helpers.drain c;
  (* node 1 (a reader) writes: it must acquire ownership without the dead
     owner participating *)
  Helpers.expect_committed "write after owner death"
    (Helpers.write_txn c 1 ~keys:[ 1 ] ~value:(Value.of_int 43));
  check Alcotest.string "new owner" "owner"
    (Helpers.role_name (Node.role (Cluster.node c 1) 1));
  check Alcotest.(option int) "value survived" (Some 43) (Helpers.read_value c 2 1);
  Helpers.expect_invariants c

let requester_dies_mid_request () =
  let config = { Config.default with Config.nodes = 4; replication_degree = 2 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  (* node 3 requests, then dies immediately: arb-replay must unblock the
     arbiters, and the object must remain usable *)
  Node.acquire_ownership (Cluster.node c 3) 1 (fun _ -> ());
  ignore (Engine.schedule (Cluster.engine c) ~after:6.0 (fun () -> Cluster.kill c 3));
  Helpers.drain c ~max_us:200_000.0;
  Helpers.expect_committed "survivors can still write"
    (Helpers.write_txn c 1 ~keys:[ 1 ] ~value:(Value.of_int 7));
  Helpers.expect_invariants c

let directory_node_dies () =
  let config = { Config.default with Config.nodes = 4 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:3 (Value.of_int 5);
  Cluster.kill c 2;
  (* node 2 is a directory replica *)
  Helpers.drain c;
  (match acquire c 0 1 with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "acquire with 2 live directory replicas");
  Helpers.expect_invariants c

let driver_dies_mid_arbitration () =
  let config = { Config.default with Config.nodes = 4 } in
  let c = Cluster.create ~config () in
  Cluster.populate c ~key:1 ~owner:3 (Value.of_int 5);
  (* node 3 requests via some directory node; kill directory node 1 just
     after issuing — whichever node drove it, arb-replay must converge *)
  Node.acquire_ownership (Cluster.node c 0) 1 (fun _ -> ());
  ignore (Engine.schedule (Cluster.engine c) ~after:3.0 (fun () -> Cluster.kill c 1));
  Helpers.drain c ~max_us:300_000.0;
  Helpers.expect_committed "post-failure write"
    (Helpers.write_txn c 0 ~keys:[ 1 ] ~value:(Value.of_int 8));
  Helpers.expect_invariants c

let epoch_filtering () =
  let c = Helpers.default_cluster () in
  Cluster.populate c ~key:1 ~owner:0 (Value.of_int 5);
  Cluster.kill c 2;
  Helpers.drain c;
  (* requests keep working in the new epoch *)
  (match acquire c 1 1 with Some (Ok ()) -> () | _ -> Alcotest.fail "new-epoch acquire");
  Helpers.expect_invariants c

let suite =
  [
    tc "reader acquires ownership (1.5 RTT path)" reader_acquires;
    tc "non-replica acquire ships the value" nonreplica_acquires_with_data;
    tc "ownership latency in the expected band" ownership_latency_is_1_5_rtt;
    tc "local use never invokes the protocol" repeated_local_use_no_requests;
    tc "first remote write acquires exactly once" write_triggers_acquire_once;
    tc "add-reader request" add_reader_request;
    tc "auto-trim restores replication degree (§6.2)" trim_restores_replication_degree;
    tc "ownership ping-pong stays consistent" ping_pong_ownership;
    tc "concurrent requests: single winner" concurrent_acquires_single_winner;
    tc "five-way contention storm" contention_storm;
    tc "busy owner NACKs (pending transaction)" busy_owner_nacks;
    tc "unknown key NACKed" unknown_key_nacked;
    tc "owner dies: reader takes over on next write" owner_dies_reader_takes_over;
    tc "requester dies mid-request (arb-replay)" requester_dies_mid_request;
    tc "directory replica dies" directory_node_dies;
    tc "node dies mid-arbitration" driver_dies_mid_arbitration;
    tc "epoch change filters stale requests" epoch_filtering;
  ]
