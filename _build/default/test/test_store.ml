(* Tests for the object store and the local transactional-memory layer. *)

open Zeus_store

let tc = Helpers.tc
let check = Alcotest.check

(* ---------- value codec ---------- *)

let value_roundtrip () =
  check Alcotest.int "int" 42 (Value.to_int (Value.of_int 42));
  check Alcotest.int "negative" (-7) (Value.to_int (Value.of_int (-7)));
  check Alcotest.(list int) "ints" [ 1; 2; 3 ] (Value.to_ints (Value.of_ints [ 1; 2; 3 ]));
  check Alcotest.string "string" "hello" (Value.to_string (Value.of_string "hello"))

let value_padded () =
  let v = Value.padded [ 5; 6 ] ~size:100 in
  check Alcotest.int "size" 100 (Value.size v);
  check Alcotest.int "field decodable" 5 (Value.to_int v)

let value_padded_no_truncate () =
  let v = Value.padded [ 1; 2; 3 ] ~size:8 in
  check Alcotest.int "grows to fit" 24 (Value.size v)

(* ---------- ownership timestamps ---------- *)

let ots_ordering () =
  let a = { Ots.version = 1; node = 2 } in
  let b = { Ots.version = 1; node = 3 } in
  let c = { Ots.version = 2; node = 0 } in
  check Alcotest.bool "node breaks ties" true Ots.(b > a);
  check Alcotest.bool "version dominates" true Ots.(c > b);
  check Alcotest.bool "next is larger" true Ots.(Ots.next a ~node:0 > a);
  check Alcotest.bool "equal" true (Ots.equal a a)

let ots_uniqueness () =
  (* two drivers bumping the same base with distinct node ids never collide *)
  let base = Ots.zero in
  let a = Ots.next base ~node:0 and b = Ots.next base ~node:1 in
  check Alcotest.bool "distinct" false (Ots.equal a b);
  check Alcotest.bool "total order" true Ots.(b > a)

(* ---------- replicas ---------- *)

let replicas_promote () =
  let r = Replicas.v ~owner:0 ~readers:[ 1; 2 ] in
  let r' = Replicas.promote r ~new_owner:2 in
  check Alcotest.bool "new owner" true (Replicas.is_owner r' 2);
  check Alcotest.bool "old owner demoted" true (Replicas.is_reader r' 0);
  check Alcotest.bool "other reader kept" true (Replicas.is_reader r' 1);
  check Alcotest.int "count stable for reader-upgrade" 3 (Replicas.count r')

let replicas_promote_nonreplica () =
  let r = Replicas.v ~owner:0 ~readers:[ 1 ] in
  let r' = Replicas.promote r ~new_owner:3 in
  check Alcotest.int "count grows" 3 (Replicas.count r');
  check Alcotest.bool "owner" true (Replicas.is_owner r' 3)

let replicas_add_remove () =
  let r = Replicas.v ~owner:0 ~readers:[ 1 ] in
  let r = Replicas.add_reader r 2 in
  check Alcotest.int "added" 3 (Replicas.count r);
  let r = Replicas.add_reader r 2 in
  check Alcotest.int "idempotent" 3 (Replicas.count r);
  let r = Replicas.remove_reader r 1 in
  check Alcotest.(list int) "removed" [ 0; 2 ] (Replicas.all r)

let replicas_drop_dead () =
  let r = Replicas.v ~owner:0 ~readers:[ 1; 2 ] in
  let r = Replicas.drop_dead r ~live:(fun n -> n <> 0 && n <> 2) in
  check Alcotest.bool "owner dropped" true (r.Replicas.owner = None);
  check Alcotest.(list int) "reader kept" [ 1 ] r.Replicas.readers

(* ---------- object local-ownership rules ---------- *)

let obj_lock_rules () =
  let o = Obj.create ~key:1 ~role:Types.Owner (Value.of_int 0) in
  check Alcotest.bool "free" true (Obj.can_lock o ~thread:0);
  Obj.lock o ~thread:0;
  check Alcotest.bool "same thread re-lock" true (Obj.can_lock o ~thread:0);
  check Alcotest.bool "other thread blocked" false (Obj.can_lock o ~thread:1);
  Obj.unlock o ~thread:1;
  check Alcotest.bool "unlock by non-holder ignored" false (Obj.can_lock o ~thread:1);
  Obj.unlock o ~thread:0;
  check Alcotest.bool "released" true (Obj.can_lock o ~thread:1)

let obj_pipeline_guard () =
  (* an object in thread 0's still-replicating pipeline cannot switch to
     thread 1 (§5.2), but thread 0 keeps using it *)
  let o = Obj.create ~key:1 ~role:Types.Owner (Value.of_int 0) in
  o.Obj.pending_rc <- 1;
  o.Obj.last_writer_thread <- 0;
  check Alcotest.bool "same pipeline ok" true (Obj.can_lock o ~thread:0);
  check Alcotest.bool "cross pipeline blocked" false (Obj.can_lock o ~thread:1);
  o.Obj.pending_rc <- 0;
  check Alcotest.bool "after replication ok" true (Obj.can_lock o ~thread:1)

(* ---------- table ---------- *)

let table_basics () =
  let t = Table.create ~node:0 in
  check Alcotest.bool "empty" false (Table.mem t 1);
  Table.install t (Obj.create ~key:1 ~role:Types.Owner (Value.of_int 5));
  check Alcotest.bool "mem" true (Table.mem t 1);
  check Alcotest.int "size" 1 (Table.size t);
  check Alcotest.int "value" 5 (Value.to_int (Table.get t 1).Obj.data);
  Table.remove t 1;
  check Alcotest.bool "removed" false (Table.mem t 1)

(* ---------- transactions (local layer) ---------- *)

let fresh_table () =
  let t = Table.create ~node:0 in
  List.iter
    (fun k -> Table.install t (Obj.create ~key:k ~role:Types.Owner ~version:1 (Value.of_int (10 * k))))
    [ 1; 2; 3 ];
  t

let txn_commit_publishes () =
  let t = fresh_table () in
  let txn = Txn.create_write t ~thread:0 in
  (match Txn.open_write txn 1 with Ok _ -> () | Error _ -> Alcotest.fail "open");
  Txn.put txn 1 (Value.of_int 99);
  (match Txn.local_commit txn with
  | Ok [ u ] ->
    check Alcotest.int "version bumped" 2 u.Txn.version;
    check Alcotest.int "published" 99 (Value.to_int (Table.get t 1).Obj.data);
    check Alcotest.bool "t_state write" true ((Table.get t 1).Obj.t_state = Types.T_write);
    check Alcotest.int "pending_rc" 1 (Table.get t 1).Obj.pending_rc
  | Ok _ -> Alcotest.fail "expected one update"
  | Error _ -> Alcotest.fail "commit failed")

let txn_private_copies_isolated () =
  let t = fresh_table () in
  let txn = Txn.create_write t ~thread:0 in
  (match Txn.open_write txn 1 with Ok _ -> () | Error _ -> Alcotest.fail "open");
  Txn.put txn 1 (Value.of_int 99);
  (* The table still shows the old value until commit (opacity). *)
  check Alcotest.int "not yet visible" 10 (Value.to_int (Table.get t 1).Obj.data);
  Txn.abort txn;
  check Alcotest.int "abort discards" 10 (Value.to_int (Table.get t 1).Obj.data);
  check Alcotest.bool "lock released" true (Obj.can_lock (Table.get t 1) ~thread:1)

let txn_lock_conflict () =
  let t = fresh_table () in
  let t1 = Txn.create_write t ~thread:0 in
  let t2 = Txn.create_write t ~thread:1 in
  (match Txn.open_write t1 1 with Ok _ -> () | Error _ -> Alcotest.fail "t1 open");
  (match Txn.open_write t2 1 with
  | Error (Txn.Lock_conflict 1) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected lock conflict");
  (* t2 is aborted; t1 proceeds *)
  match Txn.local_commit t1 with Ok _ -> () | Error _ -> Alcotest.fail "t1 commit"

let txn_read_own_writes () =
  let t = fresh_table () in
  let txn = Txn.create_write t ~thread:0 in
  (match Txn.open_write txn 1 with Ok _ -> () | Error _ -> Alcotest.fail "open");
  Txn.put txn 1 (Value.of_int 77);
  (match Txn.open_read txn 1 with
  | Ok v -> check Alcotest.int "sees own write" 77 (Value.to_int v)
  | Error _ -> Alcotest.fail "read");
  Txn.abort txn

let txn_create_and_free () =
  let t = fresh_table () in
  let txn = Txn.create_write t ~thread:0 in
  Txn.create_obj txn 9 (Value.of_int 900);
  (match Txn.open_read txn 9 with
  | Ok v -> check Alcotest.int "created visible in txn" 900 (Value.to_int v)
  | Error _ -> Alcotest.fail "read created");
  (match Txn.free_obj txn 1 with Ok () -> () | Error _ -> Alcotest.fail "free");
  (match Txn.local_commit txn with
  | Ok updates ->
    check Alcotest.int "two updates" 2 (List.length updates);
    check Alcotest.bool "created installed" true (Table.mem t 9);
    let freed = List.find (fun u -> u.Txn.key = 1) updates in
    check Alcotest.bool "freed flagged" true freed.Txn.freed
  | Error _ -> Alcotest.fail "commit")

let txn_ro_snapshot_validates () =
  let t = fresh_table () in
  let ro = Txn.create_read t ~thread:5 in
  (match Txn.open_read ro 1 with Ok _ -> () | Error _ -> Alcotest.fail "ro read");
  (match Txn.local_commit ro with Ok [] -> () | _ -> Alcotest.fail "ro commit")

let txn_ro_aborts_on_version_change () =
  let t = fresh_table () in
  let ro = Txn.create_read t ~thread:5 in
  (match Txn.open_read ro 1 with Ok _ -> () | Error _ -> Alcotest.fail "ro read");
  (* concurrent writer bumps the version before validation *)
  let w = Txn.create_write t ~thread:0 in
  (match Txn.open_write w 1 with Ok _ -> () | Error _ -> Alcotest.fail "w open");
  Txn.put w 1 (Value.of_int 1);
  (match Txn.local_commit w with Ok _ -> () | Error _ -> Alcotest.fail "w commit");
  match Txn.local_commit ro with
  | Error (Txn.Invalidated _) -> ()
  | _ -> Alcotest.fail "expected invalidation abort"

let txn_ro_aborts_on_invalid_state () =
  let t = fresh_table () in
  (Table.get t 2).Obj.t_state <- Types.T_invalid;
  let ro = Txn.create_read t ~thread:5 in
  match Txn.open_read ro 2 with
  | Error (Txn.Invalidated 2) -> ()
  | _ -> Alcotest.fail "reader must not return an invalidated object"

let txn_not_replica () =
  let t = fresh_table () in
  let ro = Txn.create_read t ~thread:0 in
  match Txn.open_read ro 42 with
  | Error (Txn.Not_replica 42) -> ()
  | _ -> Alcotest.fail "expected not-replica"

let txn_multi_write_single_version_bump () =
  let t = fresh_table () in
  let txn = Txn.create_write t ~thread:0 in
  (match Txn.open_write txn 1 with Ok _ -> () | Error _ -> Alcotest.fail "open");
  Txn.put txn 1 (Value.of_int 1);
  Txn.put txn 1 (Value.of_int 2);
  Txn.put txn 1 (Value.of_int 3);
  match Txn.local_commit txn with
  | Ok [ u ] ->
    check Alcotest.int "one bump" 2 u.Txn.version;
    check Alcotest.int "last value" 3 (Value.to_int (Table.get t 1).Obj.data)
  | _ -> Alcotest.fail "commit"

let suite =
  [
    tc "value: roundtrip codecs" value_roundtrip;
    tc "value: padded" value_padded;
    tc "value: padded never truncates" value_padded_no_truncate;
    tc "ots: lexicographic order" ots_ordering;
    tc "ots: driver timestamps unique" ots_uniqueness;
    tc "replicas: promote demotes old owner" replicas_promote;
    tc "replicas: promote of non-replica grows set" replicas_promote_nonreplica;
    tc "replicas: add/remove readers" replicas_add_remove;
    tc "replicas: drop dead nodes" replicas_drop_dead;
    tc "obj: thread locking rules" obj_lock_rules;
    tc "obj: pipeline switching guard (§5.2)" obj_pipeline_guard;
    tc "table: basics" table_basics;
    tc "txn: commit publishes atomically" txn_commit_publishes;
    tc "txn: private copies give opacity" txn_private_copies_isolated;
    tc "txn: lock conflicts abort" txn_lock_conflict;
    tc "txn: reads own writes" txn_read_own_writes;
    tc "txn: create and free objects" txn_create_and_free;
    tc "txn: read-only snapshot validates" txn_ro_snapshot_validates;
    tc "txn: read-only aborts on version change" txn_ro_aborts_on_version_change;
    tc "txn: read-only refuses invalidated object" txn_ro_aborts_on_invalid_state;
    tc "txn: non-replica read fails" txn_not_replica;
    tc "txn: one version bump per txn" txn_multi_write_single_version_bump;
  ]
