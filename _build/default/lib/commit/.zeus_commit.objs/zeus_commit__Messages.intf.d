lib/commit/messages.mli: Format Txn Types Zeus_net Zeus_store
