lib/commit/messages.ml: Format Txn Types Zeus_net Zeus_store
