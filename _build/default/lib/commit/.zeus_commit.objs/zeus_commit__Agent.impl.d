lib/commit/agent.ml: Array Hashtbl List Messages Obj Replicas Table Txn Types Value Zeus_membership Zeus_net Zeus_sim Zeus_store
