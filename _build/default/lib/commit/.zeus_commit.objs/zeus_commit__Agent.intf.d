lib/commit/agent.mli: Table Txn Types Zeus_membership Zeus_net Zeus_store
