module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

type config = {
  parse_us : float;
  generator_ktps : float;
  users : int;
  duration_us : float;
}

let default_config =
  { parse_us = 60.0; generator_ktps = 27.5; users = 2_000; duration_us = 200_000.0 }

type mode = [ `No_store | `Remote_store of float | `Zeus of int ]
type result = { ktps : float; offered_ktps : float }

let run ?(config = default_config) mode =
  let zconfig =
    { Config.default with Config.nodes = 2; replication_degree = 2; dir_replicas = 2 }
  in
  let cluster = Cluster.create ~config:zconfig () in
  let engine = Cluster.engine cluster in
  let rng = Engine.fork_rng engine in
  (* User contexts: ~400 B, initially owned by node 0. *)
  Cluster.populate_n cluster ~n:config.users
    ~owner_of:(fun u -> if mode = `Zeus 2 then u mod 2 else 0)
    (fun _ -> Value.padded [ 0 ] ~size:400);
  let active = match mode with `Zeus n -> n | `No_store | `Remote_store _ -> 1 in
  let serve node_id req k =
    let user = req in
    match mode with
    | `No_store -> ignore (Engine.schedule engine ~after:config.parse_us k)
    | `Remote_store rtt ->
      (* Legacy blocking access: parse, then stall the thread for a full
         kernel-stack round trip to the remote store. *)
      ignore (Engine.schedule engine ~after:(config.parse_us +. rtt) k)
    | `Zeus _ ->
      Node.run_write (Cluster.node cluster node_id) ~thread:0 ~exec_us:config.parse_us
        ~body:(fun ctx commit ->
          Node.read_write ctx user
            (fun v ->
              let c = try Value.to_int v with Invalid_argument _ -> 0 in
              Value.padded [ c + 1 ] ~size:400)
            (fun _ -> commit ()))
        (fun _ -> k ())
  in
  let workers =
    Array.init active (fun node_id ->
        Harness.Worker.create engine ~serve:(fun req k -> serve node_id req k))
  in
  let rate = config.generator_ktps /. 1_000.0 in
  let gen =
    Harness.Generator.create engine ~rate_per_us:rate ~sink:(fun ~seq:_ ->
        (* The generator routes each user's requests to the gateway that
           owns its context (the application-level load balancer, §3.1). *)
        let user = Rng.int rng config.users in
        let target = if active = 1 then 0 else user mod 2 in
        Harness.Worker.push workers.(target) user)
  in
  Harness.Generator.start gen;
  Cluster.run cluster ~until_us:config.duration_us;
  Harness.Generator.stop gen;
  let completed = Array.fold_left (fun a w -> a + Harness.Worker.completed w) 0 workers in
  {
    ktps = float_of_int completed /. config.duration_us *. 1_000.0;
    offered_ktps = config.generator_ktps;
  }
