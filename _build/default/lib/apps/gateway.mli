(** Cellular packet-gateway control plane ported to Zeus (§8.5, Figure 13).

    Models the OpenEPC-based gateway: an external signal generator issues
    service-request / release operations; each gateway node parses the
    3GPP signalling (the dominant cost) and then touches the user context
    in a datastore.  The legacy code {e blocks} on every datastore access —
    which is why a remote store (Redis) collapses throughput, while Zeus
    keeps the access local and pipelines replication.

    Configurations (as in Figure 13):
    - [`No_store]: all state in local memory, no replication (upper bound);
    - [`Remote_store rtt]: off-the-shelf remote KV, blocking round trip per
      request, no replication;
    - [`Zeus active]: a two-node Zeus deployment with [active] ∈ {1, 2}
      gateway nodes taking traffic (the other is a passive replica when
      [active = 1]).

    The signal generator saturates at [generator_ktps]; the paper could not
    saturate more than two active nodes for the same reason. *)

type config = {
  parse_us : float;          (** 3GPP message parsing + handling *)
  generator_ktps : float;    (** external load-generator capacity *)
  users : int;
  duration_us : float;
}

val default_config : config

type mode = [ `No_store | `Remote_store of float | `Zeus of int ]

type result = { ktps : float; offered_ktps : float }

val run : ?config:config -> mode -> result
