(** Shared plumbing for the legacy-application models (§8.5): an open-loop
    request generator (the paper's external load generators) and a
    single-threaded blocking worker (the legacy applications process one
    request at a time — that blocking structure is exactly what makes
    porting to FaRM/FaSST hard and to Zeus easy). *)

module Generator : sig
  type t

  val create :
    Zeus_sim.Engine.t -> rate_per_us:float -> sink:(seq:int -> unit) -> t
  (** Poisson arrivals at [rate_per_us]; each arrival invokes [sink]. *)

  val start : t -> unit
  val stop : t -> unit
  val arrivals : t -> int
end

module Worker : sig
  type 'req t

  val create : Zeus_sim.Engine.t -> serve:('req -> (unit -> unit) -> unit) -> 'req t
  (** A worker thread: requests are queued and served one at a time; [serve]
      calls its continuation when the request completes (it may block on
      I/O or a transaction in between). *)

  val push : 'req t -> 'req -> unit
  val completed : 'req t -> int
  val queue_length : 'req t -> int
end
