(** Nginx session-persistence routing on Zeus (§8.5, Figure 15).

    Nginx runs as an application-layer load balancer: it extracts a session
    cookie from each HTTP request and routes to the backend recorded for
    that cookie, assigning one on first sight.  The cookie→backend map
    lives in Zeus (replicated over the two nginx nodes), so lookups are
    local read-only transactions and inserts are local writes with
    pipelined replication — which is why throughput matches the no-datastore
    variant, and why a second nginx node can be added or removed seamlessly
    (it already replicates the map). *)

type config = {
  proxy_us : float;          (** per-request nginx processing *)
  sessions : int;
  new_session_prob : float;
  offered_krps : float;      (** client request rate *)
  phase_us : float;          (** duration of each of the 3 phases: 1 node /
                                 scale-out to 2 / scale-in back to 1 *)
  bucket_us : float;         (** timeline resolution *)
}

val default_config : config

type result = {
  timeline : (float * float) list;  (** (ms, krps) *)
  total_krps : float;
}

val run : ?config:config -> with_zeus:bool -> unit -> result
