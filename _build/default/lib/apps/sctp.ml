module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

type config = {
  per_packet_us : float;
  per_byte_us : float;
  state_bytes : int;
  duration_us : float;
}

let default_config =
  { per_packet_us = 6.0; per_byte_us = 0.0015; state_bytes = 6_800; duration_us = 100_000.0 }

type result = { pkts_per_s : float; mbps : float }

let conn_key = 1

let run ?(config = default_config) ~mode packet_size =
  let zconfig =
    { Config.default with Config.nodes = 2; replication_degree = 2; dir_replicas = 2 }
  in
  let cluster = Cluster.create ~config:zconfig () in
  let engine = Cluster.engine cluster in
  Cluster.populate cluster ~key:conn_key ~owner:0
    (Value.padded [ 0 ] ~size:config.state_bytes);
  let node = Cluster.node cluster 0 in
  let packets = ref 0 in
  let proto_us = config.per_packet_us +. (config.per_byte_us *. float_of_int packet_size) in
  (* Zeus port: the flow thread additionally snapshots the connection state
     into the transaction's private copy and serializes it for the R-INV
     (two passes over ~6.8 KB), plus the unoptimized state-access
     instrumentation the paper mentions; replication itself is pipelined. *)
  let copy_us =
    (2.0 *. float_of_int config.state_bytes *. zconfig.Config.byte_proc_us) +. 8.0
  in
  let stop = config.duration_us in
  let rec loop seq =
    if Engine.now engine < stop then
      match mode with
      | `Vanilla ->
        ignore
          (Engine.schedule engine ~after:proto_us (fun () ->
               incr packets;
               loop (seq + 1)))
      | `Zeus ->
        Node.run_write node ~thread:0
          ~exec_us:(proto_us +. copy_us)
          ~body:(fun ctx commit ->
            Node.read_write ctx conn_key
              (fun _ -> Value.padded [ seq ] ~size:config.state_bytes)
              (fun _ -> commit ()))
          (fun outcome ->
            if outcome = Zeus_store.Txn.Committed then incr packets;
            loop (seq + 1))
  in
  ignore (Engine.schedule engine ~after:0.0 (fun () -> loop 0));
  Cluster.run cluster ~until_us:(stop +. 1_000.0);
  let pkts_per_s = float_of_int !packets /. config.duration_us *. 1e6 in
  { pkts_per_s; mbps = pkts_per_s *. float_of_int packet_size *. 8.0 /. 1e6 }
