module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng
module Stats = Zeus_sim.Stats
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Value = Zeus_store.Value

type config = {
  proxy_us : float;
  sessions : int;
  new_session_prob : float;
  offered_krps : float;
  phase_us : float;
  bucket_us : float;
}

let default_config =
  {
    proxy_us = 25.0;
    sessions = 5_000;
    new_session_prob = 0.02;
    offered_krps = 60.0;
    phase_us = 100_000.0;
    bucket_us = 10_000.0;
  }

type result = { timeline : (float * float) list; total_krps : float }

let run ?(config = default_config) ~with_zeus () =
  let zconfig =
    { Config.default with Config.nodes = 2; replication_degree = 2; dir_replicas = 2 }
  in
  let cluster = Cluster.create ~config:zconfig () in
  let engine = Cluster.engine cluster in
  let rng = Engine.fork_rng engine in
  let ts = Stats.Timeseries.create ~bucket:config.bucket_us in
  let active = ref 1 in
  let known = Hashtbl.create 1024 in
  (* Each nginx node: one worker; per request it looks up (or assigns) the
     cookie's backend in the replicated map, then proxies. *)
  let serve node_id session k =
    let finish () =
      ignore
        (Engine.schedule engine ~after:config.proxy_us (fun () ->
             Stats.Timeseries.add ts ~time:(Engine.now engine) 1.0;
             k ()))
    in
    if not with_zeus then finish ()
    else begin
      let node = Cluster.node cluster node_id in
      if Hashtbl.mem known session then
        Node.run_read node ~thread:0
          ~body:(fun ctx commit -> Node.read ctx session (fun _ -> commit ()))
          (fun _ -> finish ())
      else begin
        Hashtbl.replace known session ();
        Node.run_write node ~thread:0
          ~body:(fun ctx commit ->
            Node.insert ctx session (Value.of_int (session mod 2));
            commit ())
          (fun _ -> finish ())
      end
    end
  in
  let workers =
    Array.init 2 (fun node_id ->
        Harness.Worker.create engine ~serve:(fun req k -> serve node_id req k))
  in
  let next_session = ref 0 in
  let gen =
    Harness.Generator.create engine
      ~rate_per_us:(config.offered_krps /. 1_000.0)
      ~sink:(fun ~seq ->
        let session =
          if Rng.chance rng config.new_session_prob || !next_session = 0 then begin
            incr next_session;
            !next_session
          end
          else 1 + Rng.int rng !next_session
        in
        let target = if !active = 1 then 0 else seq mod 2 in
        Harness.Worker.push workers.(target) session)
  in
  Harness.Generator.start gen;
  ignore (Engine.schedule engine ~after:config.phase_us (fun () -> active := 2));
  ignore (Engine.schedule engine ~after:(2.0 *. config.phase_us) (fun () -> active := 1));
  Cluster.run cluster ~until_us:(3.0 *. config.phase_us);
  Harness.Generator.stop gen;
  let completed = Array.fold_left (fun a w -> a + Harness.Worker.completed w) 0 workers in
  {
    timeline =
      List.map
        (fun (t, rate) -> (t /. 1_000.0, rate *. 1_000.0))
        (Stats.Timeseries.rate ts);
    total_krps = float_of_int completed /. (3.0 *. config.phase_us) *. 1_000.0;
  }
