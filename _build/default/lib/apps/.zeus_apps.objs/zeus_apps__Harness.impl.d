lib/apps/harness.ml: Queue Zeus_sim
