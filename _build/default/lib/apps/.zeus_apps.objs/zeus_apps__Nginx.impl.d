lib/apps/nginx.ml: Array Harness Hashtbl List Zeus_core Zeus_sim Zeus_store
