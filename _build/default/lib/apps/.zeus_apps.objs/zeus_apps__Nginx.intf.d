lib/apps/nginx.mli:
