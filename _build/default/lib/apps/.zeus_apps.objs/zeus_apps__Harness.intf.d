lib/apps/harness.mli: Zeus_sim
