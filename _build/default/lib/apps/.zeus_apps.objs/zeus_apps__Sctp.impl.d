lib/apps/sctp.ml: Zeus_core Zeus_sim Zeus_store
