lib/apps/gateway.mli:
