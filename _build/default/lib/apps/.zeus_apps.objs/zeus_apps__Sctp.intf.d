lib/apps/sctp.mli:
