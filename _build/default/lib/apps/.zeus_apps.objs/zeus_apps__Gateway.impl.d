lib/apps/gateway.ml: Array Harness Zeus_core Zeus_sim Zeus_store
