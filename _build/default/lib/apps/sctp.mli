(** usrsctp-style SCTP transport ported to Zeus (§8.5, Figure 14).

    Every packet transmission is one Zeus transaction that updates the
    connection state (~6.8 KB, which Zeus replicates so a node failure
    looks to the peer like recoverable network loss).  The port keeps the
    original single-flow processing thread: Zeus transactions pipeline, so
    the thread never waits for replication — but it does pay the CPU cost
    of snapshotting and serializing the large state on every packet, which
    is the paper's reported ~40 % slowdown at large packet sizes (bigger
    relative cost at small packets). *)

type config = {
  per_packet_us : float;      (** fixed SCTP processing per packet *)
  per_byte_us : float;        (** payload handling per byte *)
  state_bytes : int;          (** replicated connection state (paper: 6.8 KB) *)
  duration_us : float;
}

val default_config : config

type result = { pkts_per_s : float; mbps : float }

val run : ?config:config -> mode:[ `Vanilla | `Zeus ] -> int -> result
(** [run ~mode packet_size] *)
