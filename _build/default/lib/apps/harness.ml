module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng

module Generator = struct
  type t = {
    engine : Engine.t;
    rate : float;
    sink : seq:int -> unit;
    rng : Rng.t;
    mutable running : bool;
    mutable arrivals : int;
  }

  let create engine ~rate_per_us ~sink =
    {
      engine;
      rate = rate_per_us;
      sink;
      rng = Engine.fork_rng engine;
      running = false;
      arrivals = 0;
    }

  let rec arrive t =
    if t.running then begin
      let gap = Rng.exponential t.rng ~mean:(1.0 /. t.rate) in
      ignore
        (Engine.schedule t.engine ~after:gap (fun () ->
             if t.running then begin
               t.arrivals <- t.arrivals + 1;
               t.sink ~seq:t.arrivals;
               arrive t
             end))
    end

  let start t =
    if not t.running then begin
      t.running <- true;
      arrive t
    end

  let stop t = t.running <- false
  let arrivals t = t.arrivals
end

module Worker = struct
  type 'req t = {
    engine : Engine.t;
    serve : 'req -> (unit -> unit) -> unit;
    queue : 'req Queue.t;
    mutable busy : bool;
    mutable completed : int;
  }

  let create engine ~serve =
    { engine; serve; queue = Queue.create (); busy = false; completed = 0 }

  let rec next t =
    if Queue.is_empty t.queue then t.busy <- false
    else begin
      let req = Queue.pop t.queue in
      t.serve req (fun () ->
          t.completed <- t.completed + 1;
          next t)
    end

  let push t req =
    Queue.push req t.queue;
    if not t.busy then begin
      t.busy <- true;
      next t
    end

  let completed t = t.completed
  let queue_length t = Queue.length t.queue
end
