(* See the interface for the model's scope.  The representation is kept
   canonical (sorted lists everywhere) so the explorer can deduplicate
   states structurally. *)

let dirs = [ 0; 1; 2 ]
let all_nodes = [ 0; 1; 2; 3 ]

type config = {
  requesters : int list;
  crashable : int list;
  dup_budget : int;
}

let default_config = { requesters = [ 1; 3 ]; crashable = [ 0; 1 ]; dup_budget = 0 }

type ots = { v : int; n : int }

let ots_zero = { v = 0; n = -1 }
let ots_gt a b = a.v > b.v || (a.v = b.v && a.n > b.n)

type reps = { owner : int option; readers : int list }

type pending = {
  p_ts : ots;
  p_base : ots;  (* the driver's applied o_ts at drive time *)
  p_reps : reps;
  p_requester : int;
  p_arbiters : int list;
  p_driving : bool;
}

type req_state = { r_acks : int list; r_info : (ots * reps * int list) option }

type verdict = Won | Nacked

type nstate = {
  role : [ `Owner | `Reader | `None ];
  ovalid : bool;
  ts : ots;
  reps : reps option;  (* directory metadata (dir replicas and the owner) *)
  pend : pending option;
  req : req_state option;      (* outstanding own request *)
  verdict : verdict option;
  replay_acks : int list option;  (* collecting ACKs as a replay driver *)
}

type msg =
  | Req of { requester : int; dst : int }
  | Inv of {
      ts : ots;
      base : ots;
      reps : reps;
      requester : int;
      arbiters : int list;
      recovery : bool;
      driver : int;
      epoch : int;
      dst : int;
    }
  | Ack of {
      ts : ots;
      reps : reps;
      arbiters : int list;
      sender : int;
      origin : int;  (* the requester whose request this ACK belongs to *)
      epoch : int;
      dst : int;
    }
  | Val of { ts : ots; epoch : int; dst : int }
  | Nack of { dst : int }
  | Resp of { ts : ots; reps : reps; arbiters : int list; epoch : int; dst : int }

type state = {
  nodes : nstate list;  (* index = node id *)
  net : msg list;       (* multiset, kept sorted *)
  crashed : int option;
  epoch : int;          (* membership epoch every live node currently holds *)
  epoch_pending : bool; (* a crash happened, lease not yet expired *)
  to_issue : int list;  (* intents not yet started *)
  dups_left : int;
}

(* ---------- helpers ------------------------------------------------------- *)

let nth state i = List.nth state.nodes i

let update_node state i f =
  { state with nodes = List.mapi (fun j n -> if j = i then f n else n) state.nodes }

(* Fabric liveness: can the node receive messages?  View liveness: does the
   membership view still list it?  They differ between a crash and the
   lease expiry (epoch tick): protocol decisions — arbiter sets, data
   sources, drop_dead, replay completion — use the VIEW, exactly like the
   implementation; only message delivery uses the fabric. *)
let live state i = state.crashed <> Some i

let view_live state i =
  state.crashed <> Some i || state.epoch_pending
let sort_msgs l = List.sort compare l
let send state msgs = { state with net = sort_msgs (msgs @ state.net) }

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest when y = x -> List.rev_append acc rest
    | y :: rest -> go (y :: acc) rest
  in
  go [] l

let is_replica reps node = reps.owner = Some node || List.mem node reps.readers

let promote reps ~new_owner =
  let readers =
    (match reps.owner with Some o when o <> new_owner -> [ o ] | _ -> [])
    @ List.filter (fun r -> r <> new_owner) reps.readers
  in
  { owner = Some new_owner; readers = List.sort compare readers }

let drop_dead state reps =
  {
    owner = (match reps.owner with Some o when view_live state o -> Some o | _ -> None);
    readers = List.filter (view_live state) reps.readers;
  }

(* ---------- initial state ------------------------------------------------- *)

let init_node id =
  let role = if id = 0 then `Owner else if id = 3 then `None else `Reader in
  let initial_reps = { owner = Some 0; readers = [ 1; 2 ] } in
  {
    role;
    ovalid = true;
    ts = ots_zero;
    reps = (if List.mem id dirs || id = 0 then Some initial_reps else None);
    pend = None;
    req = None;
    verdict = None;
    replay_acks = None;
  }

let init config =
  {
    nodes = List.map init_node all_nodes;
    net = [];
    crashed = None;
    epoch = 0;
    epoch_pending = false;
    to_issue = config.requesters;
    dups_left = config.dup_budget;
  }

(* ---------- driver logic (a directory replica serving REQ) ---------------- *)

let drive state ~driver ~requester =
  let d = nth state driver in
  match (d.reps, d.pend) with
  | _, Some _ | None, _ -> send state [ Nack { dst = requester } ]
  | Some reps, None ->
    if reps.owner = Some requester then
      (* trivial confirmation *)
      send state
        [
          Ack
            {
              ts = d.ts;
              reps;
              arbiters = [ driver ];
              sender = driver;
              origin = requester;
              epoch = state.epoch;
              dst = requester;
            };
        ]
    else begin
      let ts = { v = d.ts.v + 1; n = driver } in
      let new_reps = promote reps ~new_owner:requester in
      let data_source =
        if is_replica reps requester then []
        else begin
          match reps.owner with
          | Some o when view_live state o -> [ o ]
          | _ -> (
            match List.filter (view_live state) reps.readers with
            | r :: _ -> [ r ]
            | [] -> [])
        end
      in
      let arbiters =
        List.sort_uniq compare
          (List.filter (view_live state) dirs
          @ (match reps.owner with Some o when view_live state o -> [ o ] | _ -> [])
          @ data_source)
        |> List.filter (fun a -> a <> requester)
      in
      if arbiters = [] then send state [ Nack { dst = requester } ]
      else begin
        let p =
          {
            p_ts = ts;
            p_base = d.ts;
            p_reps = new_reps;
            p_requester = requester;
            p_arbiters = arbiters;
            p_driving = true;
          }
        in
        let state =
          update_node state driver (fun n -> { n with pend = Some p; ovalid = false })
        in
        let invs =
          List.filter_map
            (fun a ->
              if a = driver then None
              else
                Some
                  (Inv
                     {
                       ts;
                       base = d.ts;
                       reps = new_reps;
                       requester;
                       arbiters;
                       recovery = false;
                       driver;
                       epoch = state.epoch;
                       dst = a;
                     }))
            arbiters
        in
        let self_ack =
          Ack
            {
              ts;
              reps = new_reps;
              arbiters;
              sender = driver;
              origin = requester;
              epoch = state.epoch;
              dst = requester;
            }
        in
        send state (self_ack :: invs)
      end
    end

(* ---------- requester apply (wins are applied requester-first, §4.1) ----- *)

let requester_apply state ~me ~ts ~reps ~arbiters =
  let reps = drop_dead state reps in
  let state =
    update_node state me (fun n ->
        {
          n with
          role = `Owner;
          ovalid = true;
          ts;
          reps = Some reps;
          pend = None;
          req = None;
          verdict = Some Won;
        })
  in
  send state
    (List.filter_map
       (fun a ->
         if a = me then None else Some (Val { ts; epoch = state.epoch; dst = a }))
       arbiters)

let check_req_complete state ~me =
  let n = nth state me in
  match n.req with
  | Some { r_acks; r_info = Some (ts, reps, arbiters) }
    when List.for_all (fun a -> a = me || List.mem a r_acks) arbiters ->
    requester_apply state ~me ~ts ~reps ~arbiters
  | _ -> state

(* ---------- arbiter logic -------------------------------------------------- *)

let arbiter_apply state ~me (p : pending) =
  let reps = drop_dead state p.p_reps in
  update_node state me (fun n ->
      let role =
        match n.role with
        | `Owner when p.p_reps.owner <> Some me -> `Reader
        | r -> r
      in
      {
        n with
        role;
        ovalid = true;
        ts = p.p_ts;
        reps = (if List.mem me dirs || p.p_reps.owner = Some me then Some reps else None);
        pend = None;
        replay_acks = None;
      })

(* The owner may be mid-transaction when an INV arrives: it NACKs the
   requester (app-level retry hint) and withholds its ACK — the arbitration
   stays pending at the other arbiters and their replays keep re-driving it
   until the owner is free; it is never rolled back (an earlier rollback
   design produced zombie arbitrations and two owners — see
   EXPERIMENTS.md).  Whether the owner is busy is nondeterministic in the
   model; [handle_inv] therefore returns every possible successor. *)
let busy_branch state ~me ~ts ~requester ~arbiters =
  ignore ts;
  ignore arbiters;
  let n = nth state me in
  if n.role <> `Owner then None
  else Some (send state [ Nack { dst = requester } ])

let handle_inv state ~me ~ts ~base ~reps ~requester ~arbiters ~recovery ~driver =
  let n = nth state me in
  let reply_dst = if recovery then driver else requester in
  let ack =
    Ack
      {
        ts;
        reps;
        arbiters;
        sender = me;
        origin = requester;
        epoch = state.epoch;
        dst = reply_dst;
      }
  in
  if n.ts = ts then [ send state [ ack ] ]
  else begin
    match n.pend with
    | Some p when p.p_ts = ts -> [ send state [ ack ] ]
    | p ->
      let beats_applied = ots_gt ts n.ts in
      let beats_pending =
        match p with Some p -> ots_gt ts p.p_ts | None -> true
      in
      if beats_applied && beats_pending then begin
        (* a driven competitor loses: NACK its requester *)
        let state =
          match p with
          | Some p when p.p_driving ->
            send state [ Nack { dst = p.p_requester } ]
          | _ -> state
        in
        (* a buffered predecessor this INV is based on has provably won:
           apply it before buffering the successor *)
        let state =
          match p with
          | Some p when p.p_ts = base -> arbiter_apply state ~me p
          | _ -> state
        in
        let pnew =
          {
            p_ts = ts;
            p_base = base;
            p_reps = reps;
            p_requester = requester;
            p_arbiters = arbiters;
            p_driving = false;
          }
        in
        let state' =
          update_node state me (fun n ->
              (* a new arbitration resets this arbiter's replay lifecycle
                 (the implementation re-arms its replay timer per o_ts) *)
              { n with pend = Some pnew; ovalid = false; replay_acks = None })
        in
        let accept = send state' [ ack ] in
        if recovery then [ accept ]
        else
          match busy_branch state ~me ~ts ~requester ~arbiters with
          | Some busy -> [ accept; busy ]
          | None -> [ accept ]
      end
      else [ state ] (* stale or beaten: ignore *)
  end

(* ---------- arb-replay ----------------------------------------------------- *)

let start_replay state ~me =
  let n = nth state me in
  match n.pend with
  | None -> state
  | Some p ->
    let state =
      update_node state me (fun n -> { n with replay_acks = Some [ me ] })
    in
    send state
      (List.filter_map
         (fun a ->
           if a = me || not (view_live state a) then None
           else
             Some
               (Inv
                  {
                    ts = p.p_ts;
                    base = p.p_base;
                    reps = p.p_reps;
                    requester = p.p_requester;
                    arbiters = p.p_arbiters;
                    recovery = true;
                    driver = me;
                    epoch = state.epoch;
                    dst = a;
                  }))
         p.p_arbiters)

let replay_check_complete state ~me =
  let n = nth state me in
  match (n.pend, n.replay_acks) with
  | Some p, Some acks
    when List.for_all
           (fun a -> (not (view_live state a)) || List.mem a acks)
           p.p_arbiters ->
    if view_live state p.p_requester then
      send state
        [
          Resp
            {
              ts = p.p_ts;
              reps = p.p_reps;
              arbiters = p.p_arbiters;
              epoch = state.epoch;
              dst = p.p_requester;
            };
        ]
    else begin
      let state = arbiter_apply state ~me p in
      send state
        (List.filter_map
           (fun a ->
             if a = me || not (view_live state a) then None
             else Some (Val { ts = p.p_ts; epoch = state.epoch; dst = a }))
           p.p_arbiters)
    end
  | _ -> state

(* ---------- message delivery ---------------------------------------------- *)

let deliver state msg =
  let dst =
    match msg with
    | Req { dst; _ } | Inv { dst; _ } | Ack { dst; _ } | Val { dst; _ }
    | Nack { dst } | Resp { dst; _ } ->
      dst
  in
  if not (live state dst) then [ state ]
  else begin
    match msg with
    | Req { requester; dst } -> [ drive state ~driver:dst ~requester ]
    | Inv { ts; base; reps; requester; arbiters; recovery; driver; epoch; dst } ->
      if epoch <> state.epoch then [ state ]
      else handle_inv state ~me:dst ~ts ~base ~reps ~requester ~arbiters ~recovery ~driver
    | Ack { ts; reps; arbiters; sender; origin; epoch; dst } ->
      if epoch <> state.epoch then [ state ]
      else begin
        let n = nth state dst in
        (* requester-side ack? (the implementation routes on req_id.origin) *)
        match n.req with
        | Some r when origin = dst ->
          let r =
            {
              r_acks = List.sort_uniq compare (sender :: r.r_acks);
              r_info =
                (match r.r_info with
                | Some (ts0, _, _) when ts0 = ts -> r.r_info
                | _ -> Some (ts, reps, arbiters));
            }
          in
          let state = update_node state dst (fun n -> { n with req = Some r }) in
          [ check_req_complete state ~me:dst ]
        | Some _ | None -> (
          (* replay-driver ack *)
          match (n.pend, n.replay_acks) with
          | Some p, Some acks when p.p_ts = ts ->
            let state =
              update_node state dst (fun n ->
                  { n with replay_acks = Some (List.sort_uniq compare (sender :: acks)) })
            in
            [ replay_check_complete state ~me:dst ]
          | _ -> [ state ])
      end
    | Val { ts; epoch; dst } ->
      if epoch <> state.epoch then [ state ]
      else begin
        let n = nth state dst in
        match n.pend with
        | Some p when p.p_ts = ts -> [ arbiter_apply state ~me:dst p ]
        | _ -> [ state ]
      end
    | Nack { dst } ->
      [
        update_node state dst (fun n ->
            match n.req with
            | Some _ -> { n with req = None; verdict = Some Nacked }
            | None -> n);
      ]
    | Resp { ts; reps; arbiters; epoch; dst } ->
      if epoch <> state.epoch then [ state ]
      else begin
        let n = nth state dst in
        let pend_matches =
          match n.pend with Some p -> p.p_ts = ts | None -> false
        in
        if ots_gt ts n.ts || pend_matches then
          [ requester_apply state ~me:dst ~ts ~reps ~arbiters ]
        else
          (* already applied: the replaying arbiters only need the VALs *)
          [
            send state
              (List.filter_map
                 (fun a ->
                   if a = dst || not (view_live state a) then None
                   else Some (Val { ts; epoch = state.epoch; dst = a }))
                 arbiters);
          ]
      end
  end

(* ---------- transitions ---------------------------------------------------- *)

let issue state requester =
  let state = { state with to_issue = List.filter (fun r -> r <> requester) state.to_issue } in
  if not (live state requester) then state
  else begin
    let state =
      update_node state requester (fun n ->
          { n with req = Some { r_acks = []; r_info = None } })
    in
    (* a directory member drives its own request; others go through the
       first live directory replica (the implementation's requester always
       picks a live driver and re-picks on timeout) *)
    let driver =
      if List.mem requester dirs then requester
      else
        match List.filter (view_live state) dirs with
        | d :: _ -> d
        | [] -> requester (* unreachable with ≤1 crash *)
    in
    if driver = requester then drive state ~driver ~requester
    else send state [ Req { requester; dst = driver } ]
  end

let crash state victim =
  if state.crashed <> None || not (live state victim) then state
  else { state with crashed = Some victim; epoch_pending = true }

(* Lease expiry: every live node installs the new epoch atomically (the
   membership service guarantees a consistent view sequence, §3.1).
   Outstanding requests from the old epoch fail; applied metadata drops the
   dead node. *)
let epoch_tick state =
  let state = { state with epoch = state.epoch + 1; epoch_pending = false } in
  {
    state with
    nodes =
      List.mapi
        (fun i n ->
          if not (live state i) then n
          else
            {
              n with
              req = None;
              verdict =
                (if n.req <> None && n.verdict = None then Some Nacked else n.verdict);
              reps = Option.map (drop_dead state) n.reps;
              replay_acks = None;
            })
        state.nodes;
  }

let next config state =
  ignore config;
  let deliveries =
    List.concat_map
      (fun msg ->
        let consumed = deliver { state with net = remove_one msg state.net } msg in
        let dup =
          if state.dups_left > 0 then
            deliver { state with dups_left = state.dups_left - 1 } msg
          else []
        in
        consumed @ dup)
      (List.sort_uniq compare state.net)
  in
  let issues = List.map (issue state) state.to_issue in
  let crashes =
    if state.crashed = None then List.map (crash state) config.crashable else []
  in
  let ticks = if state.epoch_pending then [ epoch_tick state ] else [] in
  (* Arb-replay models the implementation's per-arbitration timer, which
     re-arms indefinitely: the transition is enabled whenever nothing in
     flight could still resolve the pending arbitration.  BFS deduplication
     folds the resulting retry cycles, so exploration still terminates. *)
  let mentions_ts ts msg =
    match msg with
    | Inv { ts = t; _ } | Ack { ts = t; _ } | Val { ts = t; _ } | Resp { ts = t; _ } ->
      t = ts
    | Req _ | Nack _ -> false
  in
  let replays =
    if not state.epoch_pending then
      List.filter_map
        (fun i ->
          let n = nth state i in
          match n.pend with
          | Some p
            when live state i && not (List.exists (mentions_ts p.p_ts) state.net) ->
            Some (replay_check_complete (start_replay state ~me:i) ~me:i)
          | _ -> None)
        all_nodes
    else []
  in
  List.map
    (fun s -> { s with net = sort_msgs s.net })
    (deliveries @ issues @ crashes @ ticks @ replays)

(* ---------- invariants ----------------------------------------------------- *)

let owners state =
  List.concat
    (List.mapi
       (fun i n -> if live state i && n.role = `Owner && n.ovalid then [ i ] else [])
       state.nodes)

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let invariant state =
  match owners state with
  | _ :: _ :: _ -> err "two live valid owners"
  | _ ->
    (* valid directory replicas with equal timestamps agree on replicas *)
    (* dead nodes are purged from o_replicas lazily (at the epoch tick or
       the next apply), so compare modulo non-live members *)
    let valid_dirs =
      List.filter_map
        (fun d ->
          let n = nth state d in
          if live state d && n.ovalid then
            match n.reps with Some r -> Some (n.ts, drop_dead state r) | None -> None
          else None)
        dirs
    in
    let rec pairwise = function
      | (ts1, r1) :: rest ->
        if
          List.exists (fun (ts2, r2) -> ts1 = ts2 && r1 <> r2) rest
        then err "directory replicas with equal o_ts disagree"
        else pairwise rest
      | [] -> Ok ()
    in
    pairwise valid_dirs

let at_quiescence state =
  if state.epoch_pending then Ok () (* tick still enabled: not truly quiescent *)
  else begin
    let stuck_pend =
      List.exists
        (fun i -> live state i && (nth state i).pend <> None)
        all_nodes
    in
    let stuck_req =
      List.exists (fun i -> live state i && (nth state i).req <> None) all_nodes
    in
    if stuck_pend then err "pending arbitration never resolved"
    else if stuck_req then err "request never reached a verdict"
    else begin
      match owners state with
      | [] ->
        (* acceptable only after a crash; the freshest directory replicas
           must not name a live owner (stale ones may, harmlessly: any
           request through them is still arbitrated by the freshest) *)
        let live_valid =
          List.filter_map
            (fun d ->
              let n = nth state d in
              if live state d && n.ovalid then Some n else None)
            dirs
        in
        let max_ts =
          List.fold_left (fun acc n -> if ots_gt n.ts acc then n.ts else acc) ots_zero
            live_valid
        in
        let dir_claims_live_owner =
          List.exists
            (fun n ->
              n.ts = max_ts
              &&
              match n.reps with
              | Some { owner = Some o; _ } -> live state o
              | _ -> false)
            live_valid
        in
        if dir_claims_live_owner then
          err "freshest directory replicas name a live owner but none exists"
        else if state.crashed = None then err "no owner without any failure"
        else Ok ()
      | [ owner_id ] ->
        (* Timestamp-relative agreement: replicas at the owner's o_ts must
           name it; older replicas may lag after a busy-NACK rollback (the
           next arbitration through them repairs the staleness, and safety
           is preserved because every request is arbitrated by all live
           directory replicas plus the true owner). *)
        let owner_ts = (nth state owner_id).ts in
        let ok =
          List.for_all
            (fun d ->
              let n = nth state d in
              (not (live state d)) || (not n.ovalid)
              ||
              if n.ts = owner_ts then
                match n.reps with
                | Some { owner = Some o; _ } -> o = owner_id
                | _ -> d = owner_id
              else not (ots_gt n.ts owner_ts))
            dirs
        in
        if ok then Ok () else err "directory disagrees with the owner at its o_ts"
      | _ -> err "unreachable"
    end
  end

let pp_msg ppf = function
  | Req { requester; dst } -> Format.fprintf ppf "Req(r%d->%d)" requester dst
  | Inv { ts; base; recovery; driver; dst; requester; _ } ->
    Format.fprintf ppf "Inv(ts=%d.%d base=%d.%d req=%d drv=%d rec=%b ->%d)" ts.v ts.n
      base.v base.n requester driver recovery dst
  | Ack { ts; sender; dst; _ } ->
    Format.fprintf ppf "Ack(ts=%d.%d from=%d ->%d)" ts.v ts.n sender dst
  | Val { ts; dst; _ } -> Format.fprintf ppf "Val(ts=%d.%d ->%d)" ts.v ts.n dst
  | Nack { dst } -> Format.fprintf ppf "Nack(->%d)" dst
  | Resp { ts; dst; _ } -> Format.fprintf ppf "Resp(ts=%d.%d ->%d)" ts.v ts.n dst

let pp_state ppf state =
  Format.fprintf ppf "epoch=%d crashed=%s" state.epoch
    (match state.crashed with Some c -> string_of_int c | None -> "-");
  List.iteri
    (fun i n ->
      Format.fprintf ppf "; n%d=%s%s ts=(%d,%d)%s%s%s" i
        (match n.role with `Owner -> "O" | `Reader -> "R" | `None -> "-")
        (if n.ovalid then "" else "!")
        n.ts.v n.ts.n
        (match n.pend with
        | Some p -> Printf.sprintf " pend(ts=%d.%d req=%d)" p.p_ts.v p.p_ts.n p.p_requester
        | None -> "")
        (if n.req <> None then " REQ" else "")
        (if n.replay_acks <> None then " replaying" else ""))
    state.nodes;
  Format.fprintf ppf "; net=[%a]; to_issue=[%s]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_msg)
    state.net
    (String.concat "," (List.map string_of_int state.to_issue))

let explore ?(config = default_config) ?max_states () =
  Explorer.bfs ~init:[ init config ]
    ~next:(next config)
    ~invariant ~at_quiescence ?max_states ()
