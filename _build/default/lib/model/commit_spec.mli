(** Pure, exhaustively explorable specification of the reliable commit
    protocol (§5) — the executable counterpart of the paper's TLA+ model.

    The model instantiates a coordinator (node 0) and two followers.
    Object X is replicated on both followers, object Y only on follower 1,
    so follower 2 receives a {e partial stream} of the coordinator's
    pipeline and exercises the prev-VAL machinery (§5.2).  The coordinator
    commits a fixed schedule of pipelined transactions; the checker
    explores every interleaving of local commits and message deliveries,
    with optional bounded duplication and a coordinator crash followed by
    follower replay (§5.1).

    Checked in {e every} state:
    - per-object version monotonicity at every node;
    - all copies of an object in [t_state = Valid] carry the same version
      (the paper's "live nodes in Valid have consistent data");
    - followers apply slots in pipeline order.

    Checked in every {e quiescent} state:
    - with the coordinator alive: every replica of every object matches the
      coordinator's committed version and is Valid;
    - after a coordinator crash: the surviving followers agree on every
      object they share, hold Valid copies, and their state corresponds to
      a prefix of the pipeline. *)

type config = {
  txns : [ `X | `Y | `XY ] list;  (** the coordinator's pipeline schedule *)
  crash : bool;                   (** allow a coordinator crash *)
  dup_budget : int;
}

val default_config : config

type state

val pp_state : Format.formatter -> state -> unit

val explore : ?config:config -> ?max_states:int -> unit -> state Explorer.stats
