(* See the interface for the model's scope. *)

type config = {
  txns : [ `X | `Y | `XY ] list;
  crash : bool;
  dup_budget : int;
}

let default_config = { txns = [ `Y; `XY; `X ]; crash = true; dup_budget = 0 }

type objid = X | Y

let readers = function X -> [ 1; 2 ] | Y -> [ 1 ]
let coord = 0

type write = { w_obj : objid; w_ver : int }

type msg =
  | Rinv of {
      slot : int;
      writes : write list;
      followers : int list;
      prev_val : bool;
      replay : bool;
      epoch : int;
      dst : int;
    }
  | Rack of { slot : int; sender : int; epoch : int; dst : int }
  | Rval of { slot : int; epoch : int; dst : int }

type slot_state = {
  s_writes : write list;
  s_followers : int list;
  s_missing : int list;
  s_extra_vals : int list;
}

type stored = { st_slot : int; st_writes : write list; st_followers : int list }

type replaying = { rp_slot : int; rp_missing : int list }

type fstate = {
  ver : int * int;          (* versions of X, Y (0 = never seen) *)
  valid : bool * bool;      (* t_state of X, Y *)
  has : bool * bool;        (* replica of X / Y at all *)
  cleared : int;            (* cleared_upto of the coordinator's pipeline *)
  stored_invs : stored list;   (* sorted by slot *)
  buffered : stored list;      (* received out of order *)
  replay : replaying option;
}

type state = {
  (* coordinator *)
  c_ver : int * int;
  c_valid : bool * bool;
  c_slots : (int * slot_state) list;  (* in-flight, sorted by slot *)
  c_next : int;
  (* followers, index 0 -> node 1, index 1 -> node 2 *)
  f1 : fstate;
  f2 : fstate;
  net : msg list;
  crashed : bool;            (* only the coordinator can crash *)
  epoch : int;
  epoch_pending : bool;
  dups_left : int;
  error : string option;     (* internal assertion raised by a transition *)
}

(* ---------- helpers ------------------------------------------------------- *)

let get_obj (x, y) = function X -> x | Y -> y
let set_obj (x, y) o v = match o with X -> (v, y) | Y -> (x, v)

let init config =
  ignore config;
  {
    c_ver = (0, 0);
    c_valid = (true, true);
    c_slots = [];
    c_next = 0;
    f1 =
      {
        ver = (0, 0);
        valid = (true, true);
        has = (true, true);
        cleared = -1;
        stored_invs = [];
        buffered = [];
        replay = None;
      };
    f2 =
      {
        ver = (0, 0);
        valid = (true, true);
        has = (true, false);
        cleared = -1;
        stored_invs = [];
        buffered = [];
        replay = None;
      };
    net = [];
    crashed = false;
    epoch = 0;
    epoch_pending = false;
    dups_left = config.dup_budget;
    error = None;
  }

let follower state i = if i = 1 then state.f1 else state.f2
let set_follower state i f = if i = 1 then { state with f1 = f } else { state with f2 = f }
let sort_msgs l = List.sort compare l
let send state msgs = { state with net = sort_msgs (msgs @ state.net) }

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest when y = x -> List.rev_append acc rest
    | y :: rest -> go (y :: acc) rest
  in
  go [] l

let fail state msg = { state with error = Some msg }

(* ---------- coordinator --------------------------------------------------- *)

let objs_of = function `X -> [ X ] | `Y -> [ Y ] | `XY -> [ X; Y ]

(* Local commit of the next scheduled transaction: bump versions, open the
   pipeline slot, broadcast R-INVs with per-follower prev-VAL bits. *)
let local_commit config state =
  match List.nth_opt config.txns state.c_next with
  | None -> None
  | Some txn ->
    let slot = state.c_next in
    let objs = objs_of txn in
    let c_ver =
      List.fold_left (fun v o -> set_obj v o (get_obj v o + 1)) state.c_ver objs
    in
    let writes = List.map (fun o -> { w_obj = o; w_ver = get_obj c_ver o }) objs in
    let c_valid = List.fold_left (fun v o -> set_obj v o false) state.c_valid objs in
    let followers = List.sort_uniq compare (List.concat_map readers objs) in
    let state = { state with c_ver; c_valid; c_next = slot + 1 } in
    (* prev-VAL handling (§5.2) *)
    let prev = List.assoc_opt (slot - 1) state.c_slots in
    let prev_val_for, state =
      match prev with
      | None -> ((fun _ -> true), state)
      | Some ps ->
        let extra =
          List.filter
            (fun f ->
              not (List.mem f ps.s_followers || List.mem f ps.s_extra_vals))
            followers
        in
        ( (fun _ -> false),
          {
            state with
            c_slots =
              List.map
                (fun (s, sl) ->
                  if s = slot - 1 then
                    (s, { sl with s_extra_vals = sl.s_extra_vals @ extra })
                  else (s, sl))
                state.c_slots;
          } )
    in
    let slot_state =
      { s_writes = writes; s_followers = followers; s_missing = followers; s_extra_vals = [] }
    in
    let state =
      { state with c_slots = List.sort compare ((slot, slot_state) :: state.c_slots) }
    in
    let invs =
      List.map
        (fun f ->
          Rinv
            {
              slot;
              writes;
              followers;
              prev_val = prev_val_for f;
              replay = false;
              epoch = state.epoch;
              dst = f;
            })
        followers
    in
    Some (send state invs)

let coordinator_validate state slot (sl : slot_state) =
  (* all acks in: validate locally iff version unchanged, broadcast R-VALs *)
  let c_valid =
    List.fold_left
      (fun v (w : write) ->
        if get_obj state.c_ver w.w_obj = w.w_ver then set_obj v w.w_obj true else v)
      state.c_valid sl.s_writes
  in
  let state =
    { state with c_valid; c_slots = List.remove_assoc slot state.c_slots }
  in
  send state
    (List.map
       (fun f -> Rval { slot; epoch = state.epoch; dst = f })
       (List.sort_uniq compare (sl.s_followers @ sl.s_extra_vals)))

(* ---------- follower ------------------------------------------------------- *)

let apply_writes f writes =
  List.fold_left
    (fun f (w : write) ->
      if get_obj f.has w.w_obj && w.w_ver > get_obj f.ver w.w_obj then
        { f with ver = set_obj f.ver w.w_obj w.w_ver; valid = set_obj f.valid w.w_obj false }
      else f)
    f writes

let rec drain_buffered state me =
  let f = follower state me in
  match List.find_opt (fun b -> b.st_slot = f.cleared + 1) f.buffered with
  | Some b ->
    let state =
      set_follower state me
        { f with buffered = List.filter (fun x -> x <> b) f.buffered }
    in
    let state = apply_slot state me ~slot:b.st_slot ~writes:b.st_writes ~followers:b.st_followers in
    drain_buffered state me

  | None -> state

and apply_slot state me ~slot ~writes ~followers =
  let f = follower state me in
  if slot > f.cleared + 1 then fail state "applied a slot out of pipeline order"
  else begin
    let f = apply_writes f writes in
    let f =
      {
        f with
        cleared = max f.cleared slot;
        stored_invs =
          List.sort compare ({ st_slot = slot; st_writes = writes; st_followers = followers } :: f.stored_invs);
      }
    in
    let state = set_follower state me f in
    send state [ Rack { slot; sender = me; epoch = state.epoch; dst = coord } ]
  end

let handle_inv state me ~slot ~writes ~followers ~prev_val ~replay =
  let f = follower state me in
  if List.exists (fun s -> s.st_slot = slot) f.stored_invs || slot <= f.cleared then
    (* duplicate: re-ACK to whoever would be waiting *)
    send state
      [ Rack { slot; sender = me; epoch = state.epoch; dst = (if replay then 3 - me else coord) } ]
  else begin
    let f = if prev_val && slot - 1 > f.cleared then { f with cleared = slot - 1 } else f in
    let state = set_follower state me f in
    if replay then begin
      (* recovery replays bypass pipeline order (version checks protect) *)
      let f = follower state me in
      let f = apply_writes f writes in
      let f =
        {
          f with
          cleared = max f.cleared slot;
          stored_invs =
            List.sort compare
              ({ st_slot = slot; st_writes = writes; st_followers = followers } :: f.stored_invs);
        }
      in
      let state = set_follower state me f in
      send state [ Rack { slot; sender = me; epoch = state.epoch; dst = 3 - me } ]
    end
    else if f.cleared >= slot - 1 then
      drain_buffered (apply_slot state me ~slot ~writes ~followers) me
    else
      set_follower state me
        {
          f with
          buffered =
            List.sort compare
              ({ st_slot = slot; st_writes = writes; st_followers = followers } :: f.buffered);
        }
  end

let validate_stored state me slot =
  let f = follower state me in
  match List.find_opt (fun s -> s.st_slot = slot) f.stored_invs with
  | None ->
    let f = { f with cleared = max f.cleared slot } in
    drain_buffered (set_follower state me f) me
  | Some st ->
    let f =
      List.fold_left
        (fun f (w : write) ->
          if get_obj f.has w.w_obj && get_obj f.ver w.w_obj = w.w_ver then
            { f with valid = set_obj f.valid w.w_obj true }
          else f)
        f st.st_writes
    in
    let f =
      {
        f with
        stored_invs = List.filter (fun s -> s.st_slot <> slot) f.stored_invs;
        cleared = max f.cleared slot;
      }
    in
    drain_buffered (set_follower state me f) me

(* ---------- replay after coordinator crash (§5.1) ------------------------- *)

let start_replay state me slot =
  let f = follower state me in
  match List.find_opt (fun s -> s.st_slot = slot) f.stored_invs with
  | None -> state
  | Some st ->
    let others = List.filter (fun x -> x <> me) st.st_followers in
    if others = [] then validate_stored state me slot
    else begin
      let state =
        set_follower state me { f with replay = Some { rp_slot = slot; rp_missing = others } }
      in
      send state
        (List.map
           (fun o ->
             Rinv
               {
                 slot;
                 writes = st.st_writes;
                 followers = st.st_followers;
                 prev_val = false;
                 replay = true;
                 epoch = state.epoch;
                 dst = o;
               })
           others)
    end

let finish_replay state me slot =
  let f = follower state me in
  let others =
    match List.find_opt (fun s -> s.st_slot = slot) f.stored_invs with
    | Some st -> List.filter (fun x -> x <> me) st.st_followers
    | None -> []
  in
  let state = set_follower state me { f with replay = None } in
  let state = validate_stored state me slot in
  send state (List.map (fun o -> Rval { slot; epoch = state.epoch; dst = o }) others)

(* ---------- delivery ------------------------------------------------------- *)

let deliver state msg =
  match msg with
  | Rinv { dst; slot; writes; followers; prev_val; replay; epoch } ->
    if dst = coord then state (* coordinator never receives R-INVs *)
    else if epoch <> state.epoch then state
    else handle_inv state dst ~slot ~writes ~followers ~prev_val ~replay
  | Rack { slot; sender; epoch; dst } ->
    ignore epoch;
    if dst = coord then begin
      if state.crashed then state
      else begin
        match List.assoc_opt slot state.c_slots with
        | None -> state
        | Some sl ->
          let missing = List.filter (fun f -> f <> sender) sl.s_missing in
          if missing = [] then coordinator_validate state slot sl
          else
            {
              state with
              c_slots =
                List.map
                  (fun (s, x) -> if s = slot then (s, { x with s_missing = missing }) else (s, x))
                  state.c_slots;
            }
      end
    end
    else begin
      (* replay-driver ack *)
      let f = follower state dst in
      match f.replay with
      | Some rp when rp.rp_slot = slot ->
        let missing = List.filter (fun x -> x <> sender) rp.rp_missing in
        if missing = [] then finish_replay state dst slot
        else
          set_follower state dst
            { f with replay = Some { rp with rp_missing = missing } }
      | _ -> state
    end
  | Rval { slot; epoch; dst } ->
    if dst = coord then state
    else if epoch <> state.epoch then state
    else validate_stored state dst slot

(* ---------- transitions ---------------------------------------------------- *)

let epoch_tick state = { state with epoch = state.epoch + 1; epoch_pending = false }

let next config state =
  if state.error <> None then []
  else begin
    let deliveries =
      List.concat_map
        (fun msg ->
          let consumed = deliver { state with net = remove_one msg state.net } msg in
          let dup =
            if state.dups_left > 0 then
              [ deliver { state with dups_left = state.dups_left - 1 } msg ]
            else []
          in
          consumed :: dup)
        (List.sort_uniq compare state.net)
    in
    let commits =
      if state.crashed then []
      else match local_commit config state with Some s -> [ s ] | None -> []
    in
    let crashes =
      if config.crash && not state.crashed && state.c_next > 0 then
        (* crashing drops the coordinator's volatile state and all messages
           addressed to it *)
        [
          {
            state with
            crashed = true;
            epoch_pending = true;
            c_slots = [];
            net = List.filter (function Rack { dst; _ } -> dst <> coord | _ -> true) state.net;
          };
        ]
      else []
    in
    let ticks = if state.epoch_pending then [ epoch_tick state ] else [] in
    let replays =
      if state.crashed && not state.epoch_pending then
        List.concat_map
          (fun me ->
            let f = follower state me in
            if f.replay <> None then []
            else
              List.map (fun st -> start_replay state me st.st_slot) f.stored_invs)
          [ 1; 2 ]
      else []
    in
    List.map
      (fun s -> { s with net = sort_msgs s.net })
      (deliveries @ commits @ crashes @ ticks @ replays)
  end

(* ---------- invariants ----------------------------------------------------- *)

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let invariant state =
  match state.error with
  | Some msg -> Error msg
  | None ->
    (* all Valid copies of an object carry the same version (§8 invariant:
       live nodes in Valid have consistent data) *)
    let check_obj o =
      let copies =
        (if state.crashed || not (get_obj state.c_valid o) then []
         else [ get_obj state.c_ver o ])
        @ List.filter_map
            (fun me ->
              let f = follower state me in
              if get_obj f.has o && get_obj f.valid o then Some (get_obj f.ver o)
              else None)
            [ 1; 2 ]
      in
      match List.sort_uniq compare copies with
      | [] | [ _ ] -> Ok ()
      | versions ->
        err "object %s has valid copies at different versions (%s)"
          (match o with X -> "X" | Y -> "Y")
          (String.concat "," (List.map string_of_int versions))
    in
    (match check_obj X with Ok () -> check_obj Y | e -> e)

let at_quiescence state =
  if state.epoch_pending then Ok ()
  else begin
    let f1 = state.f1 and f2 = state.f2 in
    if not state.crashed then begin
      (* everything must have converged to the coordinator's state *)
      if f1.ver <> state.c_ver then err "follower 1 diverged"
      else if fst f2.ver <> fst state.c_ver then err "follower 2 diverged on X"
      else if f1.valid <> (true, true) || not (fst f2.valid) then
        err "replicas left invalid"
      else if f1.stored_invs <> [] || f2.stored_invs <> [] then
        err "retained R-INVs after validation"
      else Ok ()
    end
    else begin
      (* crash: survivors agree on shared objects, all valid, no residue *)
      if fst f1.ver <> fst f2.ver then err "survivors disagree on X"
      else if f1.valid <> (true, true) || not (fst f2.valid) then
        err "survivors left invalid"
      else if f1.stored_invs <> [] || f2.stored_invs <> [] then
        err "pending replays never drained"
      else if f1.replay <> None || f2.replay <> None then err "replay stuck"
      else Ok ()
    end
  end

let pp_state ppf state =
  Format.fprintf ppf "epoch=%d%s crashed=%b cver=(%d,%d) next=%d" state.epoch
    (if state.epoch_pending then "+" else "")
    state.crashed (fst state.c_ver) (snd state.c_ver) state.c_next;
  List.iter
    (fun (me, f) ->
      Format.fprintf ppf "; f%d ver=(%d,%d) valid=(%b,%b) cleared=%d stored=%d buf=%d" me
        (fst f.ver) (snd f.ver) (fst f.valid) (snd f.valid) f.cleared
        (List.length f.stored_invs) (List.length f.buffered))
    [ (1, state.f1); (2, state.f2) ];
  Format.fprintf ppf "; net=%d" (List.length state.net)

let explore ?(config = default_config) ?max_states () =
  Explorer.bfs ~init:[ init config ]
    ~next:(next config)
    ~invariant ~at_quiescence ?max_states ()
