lib/model/commit_spec.ml: Explorer Format List String
