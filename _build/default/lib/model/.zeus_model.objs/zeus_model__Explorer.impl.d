lib/model/explorer.ml: Hashtbl List Marshal Queue
