lib/model/ownership_spec.ml: Explorer Format List Option Printf String
