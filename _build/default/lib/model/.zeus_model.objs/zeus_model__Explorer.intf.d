lib/model/explorer.mli:
