lib/model/ownership_spec.mli: Explorer Format
