lib/model/commit_spec.mli: Explorer Format
