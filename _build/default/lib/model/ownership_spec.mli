(** Pure, exhaustively explorable specification of the reliable ownership
    protocol (§4) — the executable counterpart of the paper's TLA+ model.

    The model instantiates four nodes: nodes 0–2 are directory replicas,
    node 0 initially owns the object with readers {1, 2}, node 3 is a
    non-replica.  Two Acquire intents (from a reader and from the
    non-replica) race through different drivers; the checker explores every
    interleaving of message deliveries, with optional bounded message
    duplication and one crash-stop failure followed by a membership epoch
    change and arb-replay.

    The fault model matches the paper's §8 checking setup: crash-stop
    failures, message reordering (the network is a multiset) and message
    duplication — loss is recovered below the protocol by the reliable
    transport, so it is not part of the protocol-level model.

    Checked in {e every} state:
    - at most one live node acts as owner ([role = Owner] in a valid
      ownership state);
    - any two live directory replicas in a valid state with the same
      ownership timestamp agree on the replica set.

    Checked in every {e quiescent} state (no messages in flight, no pending
    arbitration):
    - at most one live owner; if one exists, every live valid directory
      replica records exactly that owner;
    - every issued request reached a verdict (won, NACKed, or its requester
      crashed). *)

type config = {
  requesters : int list;  (** nodes issuing Acquire intents (subset of 1..3) *)
  crashable : int list;   (** nodes that may crash (at most one does) *)
  dup_budget : int;       (** how many deliveries may be duplicated *)
}

val default_config : config

type state

val pp_state : Format.formatter -> state -> unit

val explore : ?config:config -> ?max_states:int -> unit -> state Explorer.stats
