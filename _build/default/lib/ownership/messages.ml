open Zeus_store

type kind = Acquire | Add_reader | Remove_reader of Types.node_id

let pp_kind ppf = function
  | Acquire -> Format.pp_print_string ppf "acquire"
  | Add_reader -> Format.pp_print_string ppf "add-reader"
  | Remove_reader n -> Format.fprintf ppf "remove-reader(n%d)" n

type nack_reason = Busy | Lost_arbitration | Recovering | Unavailable | Unknown_key

let pp_nack ppf = function
  | Busy -> Format.pp_print_string ppf "busy"
  | Lost_arbitration -> Format.pp_print_string ppf "lost-arbitration"
  | Recovering -> Format.pp_print_string ppf "recovering"
  | Unavailable -> Format.pp_print_string ppf "unavailable"
  | Unknown_key -> Format.pp_print_string ppf "unknown-key"

type request_id = { origin : Types.node_id; seq : int }
type data_snapshot = { value : Value.t; t_version : int }

type Zeus_net.Msg.payload +=
  | O_req of {
      req_id : request_id;
      key : Types.key;
      kind : kind;
      requester : Types.node_id;
      requester_has_data : bool;
      epoch : int;
    }
  | O_inv of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      base_ts : Ots.t;
          (** the driver's applied [o_ts] when it stamped this request: an
              arbiter holding a pending arbitration with exactly this
              timestamp knows that arbitration won (the driver built on
              it), and applies it before buffering this one *)
      new_replicas : Replicas.t;
      kind : kind;
      requester : Types.node_id;
      arbiters : Types.node_id list;
      data_from : Types.node_id option;
      recovery : bool;
      driver : Types.node_id;
      epoch : int;
    }
  | O_ack of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      new_replicas : Replicas.t;
      arbiters : Types.node_id list;
      sender : Types.node_id;
      data : data_snapshot option;
      epoch : int;
    }
  | O_val of { key : Types.key; o_ts : Ots.t; epoch : int }
  | O_nack of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t option;
      reason : nack_reason;
      epoch : int;
    }
  | O_resp of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      new_replicas : Replicas.t;
      arbiters : Types.node_id list;
      data : data_snapshot option;
      epoch : int;
    }
  | O_recovery_done of { node : Types.node_id; epoch : int }
  | O_register of { key : Types.key; replicas : Replicas.t }
  | O_forget of { key : Types.key }
