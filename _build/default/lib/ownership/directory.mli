(** One directory replica's ownership metadata (§4).

    The directory stores, per object: [o_state], [o_ts] and [o_replicas].
    It is replicated on a fixed set of nodes (three in the paper) which act
    as arbiters for every ownership request.  A pending arbitration is
    buffered next to the last-applied state; it is applied on VAL and simply
    dropped on NACK, which keeps rollback trivial. *)

open Zeus_store

type pending = {
  req_id : Messages.request_id;
  o_ts : Ots.t;
  base_ts : Ots.t;  (** the driver's applied [o_ts] at drive time *)
  new_replicas : Replicas.t;
  kind : Messages.kind;
  requester : Types.node_id;
  arbiters : Types.node_id list;
  data_from : Types.node_id option;
  driving : bool;  (** this node is the request's driver *)
  born : float;    (** virtual time the arbitration reached this node *)
}

type entry = {
  key : Types.key;
  mutable o_state : Types.o_state;
  mutable o_ts : Ots.t;
  mutable replicas : Replicas.t;
  mutable pending : pending option;
}

type t

val create : node:Types.node_id -> t
val node : t -> Types.node_id

val register : t -> Types.key -> Replicas.t -> unit
(** Record a freshly created object (idempotent). *)

val forget : t -> Types.key -> unit
val find : t -> Types.key -> entry option
val size : t -> int
val iter : t -> (entry -> unit) -> unit

val effective_ts : entry -> Ots.t
(** The timestamp new INVs must beat: max of applied and pending. *)

val set_pending : entry -> pending -> unit
val clear_pending : entry -> unit
(** Roll back to the last applied state. *)

val apply_pending : entry -> unit
(** Commit the pending arbitration: applied state := pending, [o_state = Valid]. *)

val drop_dead : t -> live:(Types.node_id -> bool) -> unit
(** Membership reconfiguration: remove non-live nodes from every applied
    [o_replicas] (§4.1).  Pending arbitrations are left for arb-replay. *)
