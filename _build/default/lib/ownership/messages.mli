(** Wire messages of the reliable ownership protocol (§4, Figure 3). *)

open Zeus_store

(** What an ownership (sharding) request asks for (§4, §6.2). *)
type kind =
  | Acquire        (** requester becomes the owner (exclusive write access) *)
  | Add_reader     (** requester becomes a reader (gets the data) *)
  | Remove_reader of Types.node_id
      (** reliably trim a reader, e.g. to restore the replication degree
          after a non-replica acquired ownership (§6.2) *)

val pp_kind : Format.formatter -> kind -> unit

(** Why a request was NACKed. *)
type nack_reason =
  | Busy         (** object has a pending transaction or arbitration *)
  | Lost_arbitration
  | Recovering   (** owner died; reliable-commit recovery not yet drained *)
  | Unavailable  (** no live replica holds the data *)
  | Unknown_key

val pp_nack : Format.formatter -> nack_reason -> unit

type request_id = { origin : Types.node_id; seq : int }

(** Data attached to the current owner's (or designated reader's) ACK when
    the requester does not hold the object. *)
type data_snapshot = { value : Value.t; t_version : int }

type Zeus_net.Msg.payload +=
  | O_req of {
      req_id : request_id;
      key : Types.key;
      kind : kind;
      requester : Types.node_id;
      requester_has_data : bool;
      epoch : int;
    }
  | O_inv of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      base_ts : Ots.t;
          (** the driver's applied [o_ts] when it stamped this request: an
              arbiter holding a pending arbitration with exactly this
              timestamp knows that arbitration won (the driver built on
              it), and applies it before buffering this one *)
      new_replicas : Replicas.t;
      kind : kind;
      requester : Types.node_id;
      arbiters : Types.node_id list;  (** full arbiter set, for ACK counting *)
      data_from : Types.node_id option;
          (** which arbiter must attach the object data to its ACK *)
      recovery : bool;  (** arb-replay: ACKs go to the driver, not requester *)
      driver : Types.node_id;
      epoch : int;
    }
  | O_ack of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      new_replicas : Replicas.t;
      arbiters : Types.node_id list;
      sender : Types.node_id;
      data : data_snapshot option;
      epoch : int;
    }
  | O_val of { key : Types.key; o_ts : Ots.t; epoch : int }
  | O_nack of {
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t option;  (** set when arbiters must roll back a pending INV *)
      reason : nack_reason;
      epoch : int;
    }
  | O_resp of {
      (* recovery only: the replay driver confirms the arbitration win to a
         live requester, which must apply first and then VAL (§4.1). *)
      req_id : request_id;
      key : Types.key;
      o_ts : Ots.t;
      new_replicas : Replicas.t;
      arbiters : Types.node_id list;
      data : data_snapshot option;
      epoch : int;
    }
  | O_recovery_done of { node : Types.node_id; epoch : int }
  | O_register of { key : Types.key; replicas : Replicas.t }
      (** object creation: install directory metadata (idempotent) *)
  | O_forget of { key : Types.key }
      (** object deletion: drop directory metadata *)
