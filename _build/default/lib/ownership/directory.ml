open Zeus_store

type pending = {
  req_id : Messages.request_id;
  o_ts : Ots.t;
  base_ts : Ots.t;
  new_replicas : Replicas.t;
  kind : Messages.kind;
  requester : Types.node_id;
  arbiters : Types.node_id list;
  data_from : Types.node_id option;
  driving : bool;
  born : float;
}

type entry = {
  key : Types.key;
  mutable o_state : Types.o_state;
  mutable o_ts : Ots.t;
  mutable replicas : Replicas.t;
  mutable pending : pending option;
}

type t = { node : Types.node_id; entries : (Types.key, entry) Hashtbl.t }

let create ~node = { node; entries = Hashtbl.create 1024 }
let node t = t.node

let register t key replicas =
  if not (Hashtbl.mem t.entries key) then
    Hashtbl.replace t.entries key
      { key; o_state = Types.O_valid; o_ts = Ots.zero; replicas; pending = None }

let forget t key = Hashtbl.remove t.entries key
let find t key = Hashtbl.find_opt t.entries key
let size t = Hashtbl.length t.entries
let iter t fn = Hashtbl.iter (fun _ e -> fn e) t.entries

let effective_ts entry =
  match entry.pending with
  | Some p when Ots.(p.o_ts > entry.o_ts) -> p.o_ts
  | Some _ | None -> entry.o_ts

let set_pending entry p =
  entry.pending <- Some p;
  entry.o_state <- (if p.driving then Types.O_drive else Types.O_invalid)

let clear_pending entry =
  entry.pending <- None;
  entry.o_state <- Types.O_valid

let apply_pending entry =
  match entry.pending with
  | None -> ()
  | Some p ->
    entry.o_ts <- p.o_ts;
    entry.replicas <- p.new_replicas;
    entry.pending <- None;
    entry.o_state <- Types.O_valid

let drop_dead t ~live =
  Hashtbl.iter
    (fun _ entry -> entry.replicas <- Replicas.drop_dead entry.replicas ~live)
    t.entries
