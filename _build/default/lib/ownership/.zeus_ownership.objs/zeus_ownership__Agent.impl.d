lib/ownership/agent.ml: Array Bytes Directory Format Hashtbl List Messages Obj Ots Replicas Result Table Types Value Zeus_membership Zeus_net Zeus_sim Zeus_store
