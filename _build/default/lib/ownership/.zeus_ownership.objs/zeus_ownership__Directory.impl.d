lib/ownership/directory.ml: Hashtbl Messages Ots Replicas Types Zeus_store
